/**
 * @file
 * Quickstart: place a synthetic demand trace into a 9.6 MW
 * zero-reserved-power room and compare placement policies.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <cstdio>
#include <memory>
#include <vector>

#include "offline/flex_offline.hpp"
#include "offline/metrics.hpp"
#include "offline/policies.hpp"
#include "power/topology.hpp"
#include "workload/trace.hpp"

int
main()
{
  using namespace flex;

  // The paper's Section V-A evaluation room: 4N/3 redundancy, 9.6 MW.
  const power::RoomTopology room(power::RoomConfig::EvaluationRoom());
  std::printf("Room: %d UPSes (4N/3), provisioned %.1f MW, "
              "failover budget %.1f MW, reserved (conventional) %.1f MW\n",
              room.NumUpses(), room.TotalProvisionedPower().megawatts(),
              room.FailoverBudget().megawatts(),
              room.ReservedPower().megawatts());

  // Synthetic short-term demand: 115% of provisioned power, Microsoft-like
  // deployment mix.
  Rng rng(2021);
  const workload::TraceConfig trace_config;
  const std::vector<workload::Deployment> trace = workload::GenerateTrace(
      trace_config, room.TotalProvisionedPower(), rng);
  const workload::CategoryMix mix = workload::MixOf(trace);
  std::printf("Trace: %zu deployments, %.1f MW demand "
              "(%.0f%% SR / %.0f%% cap-able / %.0f%% non-cap-able)\n\n",
              trace.size(),
              workload::TotalAllocatedPower(trace).megawatts(),
              100.0 * mix.software_redundant, 100.0 * mix.capable,
              100.0 * mix.non_capable);

  // Compare the baseline policies with Flex-Offline.
  std::vector<std::unique_ptr<offline::PlacementPolicy>> policies;
  policies.push_back(std::make_unique<offline::RandomPolicy>(7));
  policies.push_back(std::make_unique<offline::BalancedRoundRobinPolicy>());
  policies.push_back(std::make_unique<offline::FlexOfflinePolicy>(
      offline::FlexOfflinePolicy::Short(/*solve_seconds=*/5.0)));

  std::printf("%-22s %10s %12s %10s\n", "policy", "stranded%", "imbalance",
              "placed%");
  for (const auto& policy : policies) {
    const offline::Placement placement = policy->Place(room, trace);
    const offline::PlacementMetrics m =
        offline::EvaluatePlacement(room, placement);
    std::printf("%-22s %9.2f%% %12.4f %9.1f%%\n", policy->Name().c_str(),
                100.0 * m.stranded_fraction, m.throttling_imbalance,
                100.0 * m.placed_fraction);
  }
  return 0;
}
