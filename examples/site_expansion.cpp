/**
 * @file
 * Site expansion study: multiple rooms, overflow routing, and the
 * density stack (Flex + oversubscription).
 *
 * Plans a three-room zero-reserved-power site: demand worth ~2.5 rooms
 * is routed room to room (rejections flow onward, as in the paper's
 * evaluation), then the analysis module prices the density gain of
 * stacking Flex with statistical oversubscription.
 */
#include <cstdio>
#include <memory>

#include "analysis/oversubscription.hpp"
#include "offline/flex_offline.hpp"
#include "offline/metrics.hpp"
#include "offline/site.hpp"
#include "workload/trace.hpp"

int
main()
{
  using namespace flex;

  const power::RoomTopology room_a(power::RoomConfig::EvaluationRoom());
  const power::RoomTopology room_b(power::RoomConfig::EvaluationRoom());
  const power::RoomTopology room_c(power::RoomConfig::EvaluationRoom());

  Rng rng(7);
  workload::TraceConfig demand;
  demand.demand_multiple = 2.5;  // ~2.5 rooms worth of requests
  const auto trace = workload::GenerateTrace(
      demand, room_a.TotalProvisionedPower(), rng);
  std::printf("Site: 3 x %.1f MW rooms | demand: %zu deployments, %.1f MW\n\n",
              room_a.TotalProvisionedPower().megawatts(), trace.size(),
              workload::TotalAllocatedPower(trace).megawatts());

  offline::SitePlacer site(
      {&room_a, &room_b, &room_c}, [] {
        return std::make_unique<offline::FlexOfflinePolicy>(
            offline::FlexOfflinePolicy::Short(2.0));
      });
  const offline::SitePlacement plan = site.Place(trace);

  const power::RoomTopology* rooms[] = {&room_a, &room_b, &room_c};
  for (std::size_t r = 0; r < 3; ++r) {
    const auto& placement = plan.rooms[r];
    if (placement.deployments.empty()) {
      std::printf("room %zu: untouched\n", r);
      continue;
    }
    std::printf("room %zu: %d deployments placed, %.2f MW allocated, "
                "%.1f%% stranded\n",
                r, placement.NumPlaced(),
                placement.PlacedPower().megawatts(),
                100.0 * offline::StrandedPowerFraction(*rooms[r], placement));
  }
  std::printf("site total: %.1f%% of requested power placed, %zu "
              "deployments overflowed the site\n\n",
              100.0 * plan.PlacedFraction(trace), plan.unplaced.size());

  // What the density stack buys at this site.
  analysis::OversubscriptionParams oversub;
  oversub.num_racks = 600;
  const double ratio =
      analysis::EvaluateOversubscription(oversub).oversubscription_ratio;
  std::printf("density vs. a conventional site: Flex +%.0f%%, "
              "+oversubscription (%.2fx) -> +%.0f%% total\n",
              100.0 * analysis::CombinedDensityGain(4, 3, 1.0), ratio,
              100.0 * analysis::CombinedDensityGain(4, 3, ratio));
  return 0;
}
