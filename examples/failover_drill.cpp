/**
 * @file
 * Failover drill: the paper's Section V-C end-to-end emulation.
 *
 * Emulates a 4.8 MW zero-reserved-power room of ~360 racks at 80%
 * utilization, fails a UPS at minute 12, watches Flex-Online shed power
 * within the UPS tolerance window, restores the UPS at minute 24, and
 * prints the resulting timeline and workload impact (Fig. 13).
 *
 * Tracing is always on: the drill ends with the metrics summary table
 * and the per-stage reaction breakdown for the failover episode. Set
 * FLEX_TRACE_OUT=<path> to also dump the reaction traces as JSONL
 * (bit-identical across runs, since every stamp is simulated time).
 */
#include <cstdio>
#include <cstdlib>

#include "emulation/room_emulation.hpp"
#include "obs/export.hpp"
#include "obs/observability.hpp"
#include "power/trip_curve.hpp"

int
main()
{
  using namespace flex;

  // Budget the reaction against the worst-case tolerance window: the
  // survivor UPS at 4N/3 load with end-of-life batteries (~10 s).
  obs::ObservabilityConfig obs_config;
  obs_config.tracer.budget =
      power::TripCurve::ForBatteryLife(power::BatteryLife::kEndOfLife)
          .ToleranceAt(4.0 / 3.0);
  obs::Observability observability(obs_config);

  emulation::EmulationConfig config;
  config.obs = &observability;
  emulation::RoomEmulation emulation(config);

  std::printf("Room: %.1f MW provisioned, %d racks placed\n",
              emulation.topology().TotalProvisionedPower().megawatts(),
              static_cast<int>(
                  offline::BuildRackLayout(emulation.topology(),
                                           emulation.placement())
                      .size()));
  std::printf("Running %0.f minutes of emulated time "
              "(failover at 12 min, restore at 24 min)...\n\n",
              config.end_at.value() / 60.0);

  const emulation::EmulationReport report = emulation.Run();

  std::printf("%8s %10s %10s %10s %10s %8s %8s\n", "t(min)", "UPS0(MW)",
              "UPS1(MW)", "UPS2(MW)", "UPS3(MW)", "off", "capped");
  for (std::size_t i = 0; i < report.series.size(); i += 12) {
    const auto& s = report.series[i];
    std::printf("%8.1f %10.3f %10.3f %10.3f %10.3f %8d %8d\n",
                s.t_seconds / 60.0, s.ups_mw[0], s.ups_mw[1], s.ups_mw[2],
                s.ups_mw[3], s.racks_off, s.racks_capped);
  }

  std::printf("\nRacks: %d total (%d SR / %d cap-able / %d non-cap)\n",
              report.total_racks, report.sr_racks, report.capable_racks,
              report.noncap_racks);
  std::printf("Corrective actions: %.0f%% of SR racks shut down, "
              "%.0f%% of cap-able racks throttled, %d non-cap racks touched\n",
              100.0 * report.sr_shutdown_fraction,
              100.0 * report.capable_capped_fraction, report.noncap_acted);
  std::printf("Enforcement latency: %.2f s  |  time to safe: %.2f s  |  "
              "p99.9 data latency: %.2f s\n",
              report.enforcement_latency_seconds,
              report.time_to_safe_seconds, report.data_latency_p999);
  std::printf("p95 latency increase on throttled racks: mean +%.1f%%, "
              "worst +%.1f%%\n",
              100.0 * report.p95_increase_mean,
              100.0 * report.p95_increase_worst);
  std::printf("Safety: %s (worst overload %.1f%%, longest overload %.1f s)\n",
              report.safety_violated ? "VIOLATED" : "maintained",
              100.0 * (report.worst_overload_fraction - 1.0),
              report.overload_duration_seconds);

  const obs::ReactionTracer& tracer = observability.tracer();
  std::printf("\n%s",
              obs::SummaryTable(observability.metrics().Snapshot(), &tracer)
                  .c_str());

  if (const char* trace_out = std::getenv("FLEX_TRACE_OUT");
      trace_out != nullptr && *trace_out != '\0') {
    if (obs::WriteFile(trace_out, obs::TracesToJsonl(tracer)))
      std::printf("reaction traces written to %s\n", trace_out);
    else
      std::fprintf(stderr, "failed to write %s\n", trace_out);
  }
  return report.safety_violated ? 1 : 0;
}
