/**
 * @file
 * Forensic-bundle replay tool.
 *
 * Two modes:
 *
 *   flex_replay <bundle-dir>
 *     Loads the forensic bundle at <bundle-dir>, re-executes the stored
 *     fault plan on the stored seed in a fresh default room, and diffs
 *     the recorded timeline against the re-execution record by record.
 *     Exit 0 on zero divergence, 2 on divergence, 1 on load errors.
 *
 *   flex_replay --fuzz <seed> [--out <dir>]
 *     Runs the fault fuzzer's plan for <seed> with the flight recorder
 *     attached, dumps a bundle unconditionally (to <dir>, or
 *     FLEX_FORENSICS_DIR, or ./forensics), then immediately replays it —
 *     the round trip that proves a fresh bundle reproduces.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fault/forensics.hpp"
#include "fault/scenario.hpp"

namespace {

int
Usage(const char* argv0)
{
  std::fprintf(stderr,
               "usage: %s <bundle-dir>\n"
               "       %s --fuzz <seed> [--out <dir>]\n",
               argv0, argv0);
  return 1;
}

/** Replays @p bundle_dir against a default room; returns the exit code. */
int
Replay(const std::string& bundle_dir)
{
  using namespace flex;

  const fault::ReplayReport replay = fault::ReplayBundle(bundle_dir);
  if (!replay.loaded) {
    std::fprintf(stderr, "flex_replay: cannot replay %s: %s\n",
                 bundle_dir.c_str(), replay.error.c_str());
    return 1;
  }

  std::printf("bundle:    %s\n", bundle_dir.c_str());
  std::printf("trigger:   %s\n", replay.manifest.trigger.c_str());
  std::printf("scenario:  %s (seed %llu)\n", replay.manifest.scenario.c_str(),
              static_cast<unsigned long long>(replay.manifest.seed));
  std::printf("records:   %zu compared (seq %llu..%llu)\n", replay.compared,
              static_cast<unsigned long long>(replay.manifest.first_sequence),
              static_cast<unsigned long long>(replay.manifest.last_sequence));
  for (const std::string& note : replay.manifest.notes)
    std::printf("note:      %s\n", note.c_str());
  if (!replay.report.violation_summary.empty()) {
    std::printf("replayed violations:\n%s",
                replay.report.violation_summary.c_str());
  } else {
    std::printf("replayed violations: none\n");
  }

  if (replay.divergence.has_value()) {
    std::printf("DIVERGED: %s\n", replay.divergence->Summary().c_str());
    return 2;
  }
  std::printf("replay matched the recorded timeline exactly "
              "(zero divergence)\n");
  return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
  using namespace flex;

  if (argc >= 3 && std::strcmp(argv[1], "--fuzz") == 0) {
    const std::uint64_t seed =
        std::strtoull(argv[2], nullptr, 10);
    fault::ForensicsOptions options;
    options.force_dump = true;
    for (int i = 3; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--out") == 0)
        options.root_dir = argv[i + 1];
    }

    const fault::ScenarioConfig config;
    const fault::RecordedRun run =
        fault::RunRecordedScenario(config, seed, options);
    if (run.bundle_dir.empty()) {
      std::fprintf(stderr, "flex_replay: bundle dump failed: %s\n",
                   run.dump_error.c_str());
      return 1;
    }
    std::printf("recorded seed %llu: %zu records, %zu violation(s)\n",
                static_cast<unsigned long long>(seed), run.records.size(),
                run.report.violations.size());
    std::printf("dumped %s\n\n", run.bundle_dir.c_str());
    return Replay(run.bundle_dir);
  }

  if (argc != 2)
    return Usage(argv[0]);
  return Replay(argv[1]);
}
