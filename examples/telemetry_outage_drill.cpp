/**
 * @file
 * Telemetry outage drill: prove there is no single point of failure.
 *
 * Builds the redundant telemetry pipeline (triple meters, two pollers,
 * two pub/sub buses) plus the rack-manager fleet with its background
 * firmware monitor, then progressively injects failures at every stage
 * and reports whether readings keep flowing and broken rack managers
 * get flagged — the Section IV-C and Section VI production story.
 */
#include <cstdio>
#include <vector>

#include "actuation/firmware_monitor.hpp"
#include "actuation/rack_manager.hpp"
#include "obs/observability.hpp"
#include "online/controller.hpp"
#include "power/topology.hpp"
#include "power/trip_curve.hpp"
#include "sim/event_queue.hpp"
#include "telemetry/pipeline.hpp"

namespace {

using namespace flex;

class SteadyRoom : public telemetry::PowerSource {
 public:
  Watts
  CurrentPower(telemetry::DeviceId device) const override
  {
    return device.kind == telemetry::DeviceKind::kUps ? MegaWatts(1.0)
                                                      : KiloWatts(13.0);
  }
};

/** A small 4-UPS room whose UPS 0 reading can be spiked on demand. */
class FailoverRoom : public telemetry::PowerSource {
 public:
  Watts
  CurrentPower(telemetry::DeviceId device) const override
  {
    if (device.kind == telemetry::DeviceKind::kUps)
      return KiloWatts(device.index == 0 ? ups0_kw : 60.0);
    return KiloWatts(18.0);
  }

  double ups0_kw = 60.0;
};

}  // namespace

int
main()
{
  sim::EventQueue queue;
  SteadyRoom room;
  telemetry::TelemetryPipeline pipeline(queue, room, 4, 40,
                                        telemetry::PipelineConfig{}, 17);
  std::size_t window_count = 0;
  pipeline.Subscribe(
      [&](const telemetry::DeviceReading&) { ++window_count; });
  pipeline.Start();

  auto run_window = [&](const char* label) {
    window_count = 0;
    queue.RunUntil(queue.Now() + Seconds(30.0));
    std::printf("%-52s %6zu readings/30s %s\n", label, window_count,
                window_count > 0 ? "[flowing]" : "[DEAD]");
  };

  std::printf("=== telemetry fault injection ===\n");
  run_window("baseline (everything healthy)");
  pipeline.SetMeterFailed({telemetry::DeviceKind::kUps, 0}, 0, true);
  run_window("one physical meter of UPS 0 failed");
  pipeline.SetPollerFailed(0, true);
  run_window("+ poller 0 failed");
  pipeline.SetBusFailed(0, true);
  run_window("+ pub/sub bus 0 failed");
  pipeline.SetMeterFailed({telemetry::DeviceKind::kUps, 0}, 1, true);
  run_window("+ second meter of UPS 0 failed (quorum lost there)");
  pipeline.SetPollerFailed(1, true);
  run_window("+ poller 1 failed (no pollers left)");
  pipeline.SetPollerFailed(0, false);
  pipeline.SetPollerFailed(1, false);
  pipeline.SetBusFailed(0, false);
  pipeline.SetMeterFailed({telemetry::DeviceKind::kUps, 0}, 0, false);
  pipeline.SetMeterFailed({telemetry::DeviceKind::kUps, 0}, 1, false);
  run_window("everything restored");

  std::printf("\n=== rack-manager background monitoring ===\n");
  actuation::ActuationPlane plane(queue, 40, actuation::RackManagerConfig{},
                                  23);
  actuation::FirmwareMonitorConfig monitor_config;
  monitor_config.probe_period = Seconds(30.0);
  actuation::FirmwareMonitor monitor(queue, plane, monitor_config, 29);
  monitor.OnWarning([&](const actuation::MonitorWarning& warning) {
    std::printf("  [%.0f s] WARNING rack %d: %s\n",
                warning.raised_at.value(), warning.rack_id,
                warning.reason.c_str());
  });
  monitor.Start();
  plane.rack(7).SetUnreachable(true);
  plane.rack(19).SetFirmwareStale(true);
  queue.RunUntil(queue.Now() + Seconds(70.0));
  std::printf("operator remediates: firmware redeployed on rack 19, "
              "network fixed on rack 7\n");
  plane.rack(7).SetUnreachable(false);
  plane.rack(19).RedeployFirmware();
  const std::size_t warnings_before = monitor.warnings().size();
  queue.RunUntil(queue.Now() + Seconds(70.0));
  std::printf("warnings after remediation: %zu new\n",
              monitor.warnings().size() - warnings_before);

  // -------------------------------------------------------------------------
  // Poller crash mid-failover: UPS 0 overloads, and half a second later
  // the poller that would have reported it dies. The surviving poller
  // still carries the reading through, and the reaction tracer shows
  // where the ~seconds went, stage by stage.
  // -------------------------------------------------------------------------
  std::printf("\n=== poller crash mid-failover (reaction tracing) ===\n");
  obs::ObservabilityConfig obs_config;
  obs_config.tracer.budget =
      power::TripCurve::ForBatteryLife(power::BatteryLife::kEndOfLife)
          .ToleranceAt(4.0 / 3.0);
  obs::Observability observability(obs_config);

  sim::EventQueue drill_queue;
  observability.BindClock(drill_queue);
  FailoverRoom failover_room;

  power::RoomConfig room_config;
  room_config.num_ups = 4;
  room_config.redundancy_y = 3;
  room_config.ups_capacity = KiloWatts(100.0);
  room_config.pdu_pairs_per_ups_pair = 1;
  room_config.rows_per_pdu_pair = 1;
  room_config.racks_per_row = 4;
  power::RoomTopology topology(room_config);

  actuation::RackManagerConfig rm_config;
  rm_config.obs = &observability;
  actuation::ActuationPlane drill_plane(drill_queue, 8, rm_config, 31);

  telemetry::PipelineConfig pipeline_config;
  pipeline_config.obs = &observability;
  telemetry::TelemetryPipeline drill_pipeline(drill_queue, failover_room, 4,
                                              8, pipeline_config, 37);

  std::vector<online::ManagedRack> managed;
  for (int i = 0; i < 8; ++i) {
    online::ManagedRack rack;
    rack.rack_id = i;
    rack.workload = i < 4 ? "sr" : "cap";
    rack.category = i < 4 ? workload::Category::kSoftwareRedundant
                          : workload::Category::kNonRedundantCapable;
    rack.pdu_pair = i < 4 ? 0 : 1;
    rack.allocated = KiloWatts(20.0);
    rack.flex_power = KiloWatts(16.0);
    managed.push_back(rack);
  }
  online::ControllerConfig controller_config;
  controller_config.obs = &observability;
  online::FlexController controller(drill_queue, topology, managed,
                                    drill_plane, {}, controller_config, 0);
  drill_pipeline.Subscribe([&](const telemetry::DeviceReading& reading) {
    controller.OnReading(reading);
  });
  drill_pipeline.Start();
  drill_queue.RunUntil(Seconds(30.0));

  std::printf("t=%.1f s: UPS 0 partner fails, survivor spikes to 140 kW\n",
              drill_queue.Now().value());
  failover_room.ups0_kw = 140.0;
  drill_queue.Schedule(Seconds(0.5), [&] {
    std::printf("t=%.1f s: poller 0 crashes mid-failover\n",
                drill_queue.Now().value());
    drill_pipeline.SetPollerFailed(0, true);
  });
  drill_queue.RunUntil(Seconds(60.0));

  const obs::ReactionTracer& tracer = observability.tracer();
  if (tracer.complete_count() == 0) {
    std::printf("no reaction trace completed -- pipeline DEAD\n");
    return 1;
  }
  const obs::ReactionTrace& trace = tracer.traces().front();
  std::printf("reaction trace #%llu (detected by replica %d on UPS %d, "
              "%d corrective actions):\n",
              static_cast<unsigned long long>(trace.id),
              trace.detecting_replica, trace.ups_index, trace.actions);
  for (int s = 0; s < obs::kNumReactionStages; ++s) {
    const auto stage = static_cast<obs::ReactionStage>(s);
    std::printf("  %-14s %+8.3f s\n", obs::ReactionStageName(stage),
                trace.StageLatency(stage).value());
  }
  std::printf("  %-14s %8.3f s against a %.1f s budget -> %s\n", "end-to-end",
              trace.EndToEnd().value(), trace.budget.value(),
              trace.WithinBudget() ? "within budget" : "OVER BUDGET");
  return trace.WithinBudget() ? 0 : 1;
}
