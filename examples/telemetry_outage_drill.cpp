/**
 * @file
 * Telemetry outage drill: prove there is no single point of failure.
 *
 * Builds the redundant telemetry pipeline (triple meters, two pollers,
 * two pub/sub buses) plus the rack-manager fleet with its background
 * firmware monitor, then progressively injects failures at every stage
 * and reports whether readings keep flowing and broken rack managers
 * get flagged — the Section IV-C and Section VI production story.
 */
#include <cstdio>

#include "actuation/firmware_monitor.hpp"
#include "actuation/rack_manager.hpp"
#include "sim/event_queue.hpp"
#include "telemetry/pipeline.hpp"

namespace {

using namespace flex;

class SteadyRoom : public telemetry::PowerSource {
 public:
  Watts
  CurrentPower(telemetry::DeviceId device) const override
  {
    return device.kind == telemetry::DeviceKind::kUps ? MegaWatts(1.0)
                                                      : KiloWatts(13.0);
  }
};

}  // namespace

int
main()
{
  sim::EventQueue queue;
  SteadyRoom room;
  telemetry::TelemetryPipeline pipeline(queue, room, 4, 40,
                                        telemetry::PipelineConfig{}, 17);
  std::size_t window_count = 0;
  pipeline.Subscribe(
      [&](const telemetry::DeviceReading&) { ++window_count; });
  pipeline.Start();

  auto run_window = [&](const char* label) {
    window_count = 0;
    queue.RunUntil(queue.Now() + Seconds(30.0));
    std::printf("%-52s %6zu readings/30s %s\n", label, window_count,
                window_count > 0 ? "[flowing]" : "[DEAD]");
  };

  std::printf("=== telemetry fault injection ===\n");
  run_window("baseline (everything healthy)");
  pipeline.SetMeterFailed({telemetry::DeviceKind::kUps, 0}, 0, true);
  run_window("one physical meter of UPS 0 failed");
  pipeline.SetPollerFailed(0, true);
  run_window("+ poller 0 failed");
  pipeline.SetBusFailed(0, true);
  run_window("+ pub/sub bus 0 failed");
  pipeline.SetMeterFailed({telemetry::DeviceKind::kUps, 0}, 1, true);
  run_window("+ second meter of UPS 0 failed (quorum lost there)");
  pipeline.SetPollerFailed(1, true);
  run_window("+ poller 1 failed (no pollers left)");
  pipeline.SetPollerFailed(0, false);
  pipeline.SetPollerFailed(1, false);
  pipeline.SetBusFailed(0, false);
  pipeline.SetMeterFailed({telemetry::DeviceKind::kUps, 0}, 0, false);
  pipeline.SetMeterFailed({telemetry::DeviceKind::kUps, 0}, 1, false);
  run_window("everything restored");

  std::printf("\n=== rack-manager background monitoring ===\n");
  actuation::ActuationPlane plane(queue, 40, actuation::RackManagerConfig{},
                                  23);
  actuation::FirmwareMonitorConfig monitor_config;
  monitor_config.probe_period = Seconds(30.0);
  actuation::FirmwareMonitor monitor(queue, plane, monitor_config, 29);
  monitor.OnWarning([&](const actuation::MonitorWarning& warning) {
    std::printf("  [%.0f s] WARNING rack %d: %s\n",
                warning.raised_at.value(), warning.rack_id,
                warning.reason.c_str());
  });
  monitor.Start();
  plane.rack(7).SetUnreachable(true);
  plane.rack(19).SetFirmwareStale(true);
  queue.RunUntil(queue.Now() + Seconds(70.0));
  std::printf("operator remediates: firmware redeployed on rack 19, "
              "network fixed on rack 7\n");
  plane.rack(7).SetUnreachable(false);
  plane.rack(19).RedeployFirmware();
  const std::size_t warnings_before = monitor.warnings().size();
  queue.RunUntil(queue.Now() + Seconds(70.0));
  std::printf("warnings after remediation: %zu new\n",
              monitor.warnings().size() - warnings_before);
  return 0;
}
