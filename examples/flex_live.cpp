/**
 * @file
 * Live-observability demo: the failover drill with the embedded HTTP
 * plane attached.
 *
 * Starts the ObservabilityServer on FLEX_LIVE_PORT (default: an
 * ephemeral port, printed at startup), runs the Section V-C failover
 * drill while a LiveHub publishes metrics/traces/recorder tails every
 * sample, then self-scrapes /metrics and prints the first lines so the
 * demo is useful even without a browser. Set FLEX_LIVE_HOLD=<seconds>
 * to keep the server up after the drill for manual curl / Prometheus
 * scraping:
 *
 *   FLEX_LIVE_PORT=9090 FLEX_LIVE_HOLD=600 ./flex_live &
 *   curl -s localhost:9090/metrics | head
 *   curl -s localhost:9090/healthz
 *   curl -s localhost:9090/trace | python3 -m json.tool | head
 *   curl -s localhost:9090/recorder | tail -3
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>

#include "emulation/room_emulation.hpp"
#include "fault/invariant_monitor.hpp"
#include "obs/http_export.hpp"
#include "obs/observability.hpp"
#include "obs/profiler.hpp"
#include "solver/branch_and_bound.hpp"

int
main()
{
  using namespace flex;

  obs::Observability observability;
  obs::LiveHub hub;
  obs::StallWatchdog watchdog;
  watchdog.Start();

  obs::ObservabilityServerConfig server_config;
  if (const char* port = std::getenv("FLEX_LIVE_PORT");
      port != nullptr && *port != '\0')
    server_config.port = std::atoi(port);
  server_config.run_info = {{"example", "flex_live"}, {"seed", "2021"}};
  obs::ObservabilityServer server(hub, server_config);
  server.SetWatchdog(&watchdog);
  server.SetProfiler(&obs::Profiler::Global());
  solver::LiveSolverStats solver_live;
  server.AddLiveGauge("flex_solver_active", [&solver_live] {
    return solver_live.active() ? 1.0 : 0.0;
  });
  server.AddLiveGauge("flex_solver_wave_nodes", [&solver_live] {
    return static_cast<double>(solver_live.wave_nodes.load());
  });
  server.AddLiveGauge("flex_solver_open_nodes", [&solver_live] {
    return static_cast<double>(solver_live.open_nodes.load());
  });
  server.AddLiveGauge("flex_solver_nodes_explored", [&solver_live] {
    return static_cast<double>(solver_live.nodes_explored.load());
  });
  server.AddLiveGauge("flex_solver_basis_hit_rate", [&solver_live] {
    const double attempts =
        static_cast<double>(solver_live.basis_reuse_attempts.load());
    return attempts > 0.0
               ? static_cast<double>(solver_live.basis_reuse_hits.load()) /
                     attempts
               : 0.0;
  });
  if (!server.Start()) {
    std::fprintf(stderr, "failed to start HTTP server\n");
    return 1;
  }
  std::printf("live observability plane on http://localhost:%d\n"
              "  endpoints: /metrics /healthz /trace /recorder\n\n",
              server.port());

  emulation::EmulationConfig config;
  config.obs = &observability;
  config.live = &hub;
  config.watchdog = &watchdog;
  config.solver_live = &solver_live;
  emulation::RoomEmulation emulation(config);
  std::printf("running the failover drill (%0.f emulated minutes)...\n",
              config.end_at.value() / 60.0);
  const emulation::EmulationReport report = emulation.Run();

  std::printf("drill done: safety %s, time to safe %.2f s, "
              "%llu publishes, %llu scrapes served\n\n",
              report.safety_violated ? "VIOLATED" : "maintained",
              report.time_to_safe_seconds,
              static_cast<unsigned long long>(hub.publish_count()),
              static_cast<unsigned long long>(server.requests_served()));

  // Self-scrape so the demo shows real exposition without curl.
  std::istringstream metrics(server.RenderMetrics());
  std::printf("--- /metrics (first 16 lines) ---\n");
  std::string line;
  for (int i = 0; i < 16 && std::getline(metrics, line); ++i)
    std::printf("%s\n", line.c_str());
  int health_status = 0;
  const std::string health = server.RenderHealth(&health_status);
  std::printf("--- /healthz (%d) ---\n%s\n", health_status, health.c_str());

  if (const char* hold = std::getenv("FLEX_LIVE_HOLD");
      hold != nullptr && *hold != '\0') {
    const int seconds = std::atoi(hold);
    std::printf("holding the server open for %d s (FLEX_LIVE_HOLD)...\n",
                seconds);
    std::this_thread::sleep_for(std::chrono::seconds(seconds));
  }

  watchdog.Stop();
  server.Stop();
  return report.safety_violated ? 1 : 0;
}
