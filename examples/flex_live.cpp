/**
 * @file
 * Live-observability demo: the failover drill with the embedded HTTP
 * plane attached.
 *
 * Starts the ObservabilityServer on FLEX_LIVE_PORT (default: an
 * ephemeral port, printed at startup), runs the Section V-C failover
 * drill while a LiveHub publishes metrics/traces/recorder tails every
 * sample, then self-scrapes /metrics and prints the first lines so the
 * demo is useful even without a browser. Set FLEX_LIVE_HOLD=<seconds>
 * to keep the server up after the drill for manual curl / Prometheus
 * scraping:
 *
 *   FLEX_LIVE_PORT=9090 FLEX_LIVE_HOLD=600 ./flex_live &
 *   curl -s localhost:9090/metrics | head
 *   curl -s localhost:9090/healthz
 *   curl -s localhost:9090/trace | python3 -m json.tool | head
 *   curl -s localhost:9090/recorder | tail -3
 *   curl -s localhost:9090/alerts | python3 -m json.tool | head -40
 *   curl -s 'localhost:9090/query?metric=pipeline.readings_delivered&window=120'
 *
 * The drill injects a 60 s telemetry outage during the failover window,
 * so the run is also an alerting walkthrough: watch the built-in
 * TelemetryStalled page go pending -> firing on /alerts (and as
 * ALERTS{...} on /metrics), then resolve when the pollers recover. The
 * firing edge drops a forensic bundle under FLEX_FORENSICS_DIR
 * (default build/forensics) with the full time-series history attached.
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>

#include "emulation/room_emulation.hpp"
#include "fault/invariant_monitor.hpp"
#include "obs/http_export.hpp"
#include "obs/observability.hpp"
#include "obs/profiler.hpp"
#include "solver/branch_and_bound.hpp"

int
main()
{
  using namespace flex;

  obs::Observability observability;
  obs::LiveHub hub;
  obs::StallWatchdog watchdog;
  watchdog.Start();

  obs::ObservabilityServerConfig server_config;
  if (const char* port = std::getenv("FLEX_LIVE_PORT");
      port != nullptr && *port != '\0')
    server_config.port = std::atoi(port);
  server_config.run_info = {{"example", "flex_live"}, {"seed", "2021"}};
  obs::ObservabilityServer server(hub, server_config);
  server.SetWatchdog(&watchdog);
  server.SetProfiler(&obs::Profiler::Global());
  solver::LiveSolverStats solver_live;
  server.AddLiveGauge("flex_solver_active", [&solver_live] {
    return solver_live.active() ? 1.0 : 0.0;
  });
  server.AddLiveGauge("flex_solver_wave_nodes", [&solver_live] {
    return static_cast<double>(solver_live.wave_nodes.load());
  });
  server.AddLiveGauge("flex_solver_open_nodes", [&solver_live] {
    return static_cast<double>(solver_live.open_nodes.load());
  });
  server.AddLiveGauge("flex_solver_nodes_explored", [&solver_live] {
    return static_cast<double>(solver_live.nodes_explored.load());
  });
  server.AddLiveGauge("flex_solver_basis_hit_rate", [&solver_live] {
    const double attempts =
        static_cast<double>(solver_live.basis_reuse_attempts.load());
    return attempts > 0.0
               ? static_cast<double>(solver_live.basis_reuse_hits.load()) /
                     attempts
               : 0.0;
  });
  if (!server.Start()) {
    std::fprintf(stderr, "failed to start HTTP server\n");
    return 1;
  }
  std::printf("live observability plane on http://localhost:%d\n"
              "  endpoints: /metrics /healthz /trace /recorder\n\n",
              server.port());

  emulation::EmulationConfig config;
  config.obs = &observability;
  config.live = &hub;
  config.watchdog = &watchdog;
  config.solver_live = &solver_live;
  // The alerting walkthrough: history + rules on every sample tick, a
  // telemetry outage injected mid-failover to trip TelemetryStalled,
  // and a forensic bundle dumped on the firing edge.
  config.alerts.enabled = true;
  const char* forensics_env = std::getenv("FLEX_FORENSICS_DIR");
  config.alerts.forensics_root =
      forensics_env != nullptr && *forensics_env != '\0' ? forensics_env
                                                         : "forensics";
  config.telemetry_outage_at = Seconds(15.0 * 60.0);
  config.telemetry_outage_until = Seconds(16.0 * 60.0);
  emulation::RoomEmulation emulation(config);
  std::printf("running the failover drill (%0.f emulated minutes, "
              "telemetry outage at t=%.0f..%.0f s)...\n",
              config.end_at.value() / 60.0,
              config.telemetry_outage_at.value(),
              config.telemetry_outage_until.value());
  const emulation::EmulationReport report = emulation.Run();

  std::printf("drill done: safety %s, time to safe %.2f s, "
              "%llu publishes, %llu scrapes served\n\n",
              report.safety_violated ? "VIOLATED" : "maintained",
              report.time_to_safe_seconds,
              static_cast<unsigned long long>(hub.publish_count()),
              static_cast<unsigned long long>(server.requests_served()));

  std::printf("--- alert timeline (%llu fired, fingerprint %016llx) ---\n",
              static_cast<unsigned long long>(report.alerts_fired),
              static_cast<unsigned long long>(report.alert_fingerprint));
  for (const obs::AlertTransition& edge : report.alert_timeline)
    std::printf("  t=%8.1f  %-18s %s -> %s  %s\n", edge.t, edge.rule.c_str(),
                obs::AlertStateName(edge.from), obs::AlertStateName(edge.to),
                edge.message.c_str());
  std::printf("\n");

  // Self-scrape so the demo shows real exposition without curl.
  std::istringstream metrics(server.RenderMetrics());
  std::printf("--- /metrics (first 16 lines) ---\n");
  std::string line;
  for (int i = 0; i < 16 && std::getline(metrics, line); ++i)
    std::printf("%s\n", line.c_str());
  int health_status = 0;
  const std::string health = server.RenderHealth(&health_status);
  std::printf("--- /healthz (%d) ---\n%s\n", health_status, health.c_str());
  std::istringstream alerts(server.RenderAlerts());
  std::printf("--- /alerts (first 12 lines) ---\n");
  for (int i = 0; i < 12 && std::getline(alerts, line); ++i)
    std::printf("%s\n", line.c_str());
  int query_status = 0;
  std::istringstream query(server.RenderQuery(
      "pipeline.readings_delivered", 120.0, 0.0, &query_status));
  std::printf("--- /query?metric=pipeline.readings_delivered&window=120 "
              "(%d, first 2 lines) ---\n", query_status);
  for (int i = 0; i < 2 && std::getline(query, line); ++i)
    std::printf("%s\n", line.c_str());

  if (const char* hold = std::getenv("FLEX_LIVE_HOLD");
      hold != nullptr && *hold != '\0') {
    const int seconds = std::atoi(hold);
    std::printf("holding the server open for %d s (FLEX_LIVE_HOLD)...\n",
                seconds);
    std::this_thread::sleep_for(std::chrono::seconds(seconds));
  }

  watchdog.Stop();
  server.Stop();
  return report.safety_violated ? 1 : 0;
}
