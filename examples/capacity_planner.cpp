/**
 * @file
 * Capacity planner: should this site run zero-reserved-power?
 *
 * Walks the Section III feasibility analysis and the cost model for a
 * site, showing how workload mix and utilization shape the availability
 * a provider can promise and the construction dollars Flex frees up.
 *
 * Usage: capacity_planner [site_MW] [dollars_per_watt]
 */
#include <cstdio>
#include <cstdlib>

#include "analysis/cost.hpp"
#include "analysis/feasibility.hpp"

int
main(int argc, char** argv)
{
  using namespace flex;

  const double site_mw = argc > 1 ? std::atof(argv[1]) : 128.0;
  const double dollars = argc > 2 ? std::atof(argv[2]) : 5.0;

  std::printf("=== Flex capacity plan for a %.0f MW site at $%.2f/W ===\n\n",
              site_mw, dollars);

  // 1. What the reserved power is worth.
  analysis::CostParams cost_params;
  cost_params.site_power = MegaWatts(site_mw);
  cost_params.dollars_per_watt = dollars;
  const analysis::CostResult cost = analysis::EvaluateCost(cost_params);
  std::printf("Going zero-reserved-power (4N/3) deploys %.0f%% more "
              "servers (%.1f MW),\n"
              "saving $%.0fM gross / $%.0fM net of the ~3%% "
              "infrastructure premium.\n\n",
              100.0 * cost.additional_server_fraction,
              cost.additional_capacity.megawatts(),
              cost.gross_savings_dollars / 1e6,
              cost.net_savings_dollars / 1e6);

  // 2. What it costs in availability, across utilization regimes.
  std::printf("%-22s %16s %14s %12s\n", "peak utilization",
              "room nines", "SR nines", "P(shutdown)");
  for (const double peak : {0.65, 0.72, 0.80}) {
    analysis::FeasibilityParams params;
    params.peak_mean_utilization = peak;
    const analysis::FeasibilityResult r =
        analysis::FeasibilityModel(params).Evaluate();
    std::printf("%20.0f%% %16.2f %14.2f %11.5f%%\n", 100.0 * peak,
                r.room_availability_nines, r.sr_availability_nines,
                100.0 * r.p_shutdown_needed);
  }

  // 3. How the workload mix moves the shutdown threshold.
  std::printf("\n%-22s %26s\n", "cap-able power share",
              "shutdown threshold (util)");
  for (const double capable : {0.30, 0.45, 0.56, 0.70}) {
    analysis::FeasibilityParams params;
    params.capable_power_fraction = capable;
    const double threshold =
        analysis::FeasibilityModel(params).ShutdownThresholdUtilization();
    std::printf("%20.0f%% %25.1f%%\n", 100.0 * capable, 100.0 * threshold);
  }

  std::printf("\nReading: more cap-able power lets throttling absorb "
              "bigger overloads before any\n"
              "software-redundant rack has to be shut down.\n");
  return 0;
}
