/**
 * @file
 * Fault-storm throughput bench.
 *
 * Measures the event throughput of the fault-injection stack: fuzzed
 * scenarios with the invariant monitor attached (the configuration the
 * property tests sweep), the same runs without the monitor (isolating
 * its per-event overhead), and a dense storm plan that saturates the
 * schedule with begin/repair events. The first section doubles as a
 * large-scale safety sweep: any invariant violation is reported with
 * its reproducing seed.
 */
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "fault/fault_fuzzer.hpp"
#include "fault/scenario.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double
SecondsSince(Clock::time_point start)
{
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int
main()
{
  using namespace flex;
  bench::PrintHeader("bench_fault_storm", "fault-injection engine",
                     "events/sec under fuzzed fault plans");

  const int seeds = bench::NumTraces(40);
  fault::ScenarioConfig config;

  // --- Fuzzed sweep with the monitor attached -----------------------------
  // One scenario per thread-pool lane (shared pool), reports merged in
  // seed order so violation listings are stable across thread counts.
  std::uint64_t events_monitored = 0;
  std::size_t readings = 0;
  std::size_t faults = 0;
  int violations = 0;
  auto start = Clock::now();
  const std::vector<fault::ScenarioReport> monitored =
      fault::RunFuzzSweep(config, 0, seeds);
  const double monitored_wall = SecondsSince(start);
  for (std::size_t i = 0; i < monitored.size(); ++i) {
    const fault::ScenarioReport& report = monitored[i];
    events_monitored += report.events_executed;
    readings += report.readings_delivered;
    faults += report.fault_trace.size();
    if (!report.violations.empty()) {
      ++violations;
      std::printf("  !! violation at seed %zu:\n%s", i,
                  report.violation_summary.c_str());
    }
  }

  // --- Same sweep without the monitor -------------------------------------
  config.attach_monitor = false;
  std::uint64_t events_bare = 0;
  start = Clock::now();
  for (const fault::ScenarioReport& report :
       fault::RunFuzzSweep(config, 0, seeds))
    events_bare += report.events_executed;
  const double bare_wall = SecondsSince(start);
  config.attach_monitor = true;

  std::printf("\nfuzzed scenarios (%d seeds, %.0f sim-seconds each):\n",
              seeds, config.shape.horizon.value());
  std::printf("  %-28s %12s %14s\n", "", "wall (s)", "events/sec");
  std::printf("  %-28s %12.3f %14.0f\n", "with invariant monitor",
              monitored_wall,
              static_cast<double>(events_monitored) / monitored_wall);
  std::printf("  %-28s %12.3f %14.0f\n", "without monitor", bare_wall,
              static_cast<double>(events_bare) / bare_wall);
  std::printf("  monitor overhead: %+.1f%%\n",
              100.0 * (monitored_wall / bare_wall - 1.0));
  std::printf("  delivered readings: %zu, fault begin/repair events: %zu\n",
              readings, faults);
  std::printf("  invariant violations: %d (must be 0)\n", violations);

  // --- Dense storm: saturate the schedule with fault churn ----------------
  // Repeated short telemetry and actuation faults, all inside the
  // envelope (never both buses / both pollers down at once).
  fault::FaultPlan storm;
  const double horizon = config.shape.horizon.value();
  for (double t = 10.0; t < horizon - 20.0; t += 4.0) {
    fault::FaultEvent poller;
    poller.at = Seconds(t);
    poller.kind = fault::FaultKind::kPollerCrash;
    poller.target = static_cast<int>(t) % config.shape.num_pollers;
    poller.duration = Seconds(1.5);
    storm.Add(poller);

    fault::FaultEvent bus;
    bus.at = Seconds(t + 2.0);
    bus.kind = fault::FaultKind::kBusDelay;
    bus.target = static_cast<int>(t) % config.shape.num_buses;
    bus.magnitude = 0.4;
    bus.duration = Seconds(1.5);
    storm.Add(bus);

    fault::FaultEvent rm;
    rm.at = Seconds(t + 1.0);
    rm.kind = fault::FaultKind::kRackManagerTimeout;
    rm.target = static_cast<int>(t) % config.shape.num_racks;
    rm.magnitude = 1.0;
    rm.duration = Seconds(2.0);
    storm.Add(rm);
  }
  storm.SortByTime();

  start = Clock::now();
  fault::FaultScenario scenario(config, 2021);
  const fault::ScenarioReport report = scenario.Run(storm);
  const double storm_wall = SecondsSince(start);
  std::printf("\ndense storm (%zu scheduled faults, one scenario):\n",
              storm.size());
  std::printf("  executed %llu events in %.3f s wall — %.0f events/sec\n",
              static_cast<unsigned long long>(report.events_executed),
              storm_wall,
              static_cast<double>(report.events_executed) / storm_wall);
  std::printf("  fault begin/repair events fired: %zu\n",
              report.fault_trace.size());
  std::printf("  invariant violations: %zu (must be 0)\n%s",
              report.violations.size(), report.violation_summary.c_str());
  return violations == 0 && report.violations.empty() ? 0 : 1;
}
