/**
 * @file
 * E6 / Section V-A text: impact of deployment sizes.
 *
 * Paper result: capping the largest deployment at 10 racks roughly
 * halves Flex-Offline-Short's median stranded power and throttling
 * imbalance relative to 20-rack deployments.
 *
 * Note on fidelity: our MILP reaches much lower absolute stranding than
 * the paper's ~4% baseline, which compresses the size effect for
 * Flex-Offline (1-2% either way, within solver-budget jitter). The
 * fragmentation mechanism itself is shown cleanly by the Balanced
 * Round-Robin heuristic, where packing quality is not confounded with
 * solve budgets — both are reported.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "placement_study.hpp"

int
main()
{
  using namespace flex;
  bench::PrintHeader("bench_deployment_sizes", "Section V-A (sizes)",
                     "median stranded power vs. maximum deployment size");

  const power::RoomTopology room(power::RoomConfig::EvaluationRoom());
  const int traces = bench::NumTraces();
  const double solve = bench::SolveSeconds() * 2.0;  // damp budget jitter

  std::printf("%-12s %22s %24s %20s\n", "max racks", "BRR stranded (med)",
              "Flex-Short stranded (med)", "Flex-Short imbalance");
  double brr_at[3] = {0, 0, 0};
  double flex_at[3] = {0, 0, 0};
  const int caps[3] = {20, 10, 5};
  for (int i = 0; i < 3; ++i) {
    Rng rng(2021);
    workload::TraceConfig config;
    config.max_deployment_racks = caps[i];
    const auto base = workload::GenerateTrace(
        config, room.TotalProvisionedPower(), rng);
    const auto variants = workload::ShuffledVariants(base, traces, rng);

    offline::BalancedRoundRobinPolicy brr;
    offline::FlexOfflinePolicy flex = offline::FlexOfflinePolicy::Short(solve);
    std::vector<double> brr_stranded;
    std::vector<double> flex_stranded;
    std::vector<double> flex_imbalance;
    for (const auto& variant : variants) {
      brr_stranded.push_back(offline::StrandedPowerFraction(
          room, brr.Place(room, variant)));
      const auto placement = flex.Place(room, variant);
      const auto metrics = offline::EvaluatePlacement(room, placement);
      flex_stranded.push_back(metrics.stranded_fraction);
      flex_imbalance.push_back(metrics.throttling_imbalance);
    }
    brr_at[i] = BoxStats::FromSamples(brr_stranded).median;
    flex_at[i] = BoxStats::FromSamples(flex_stranded).median;
    std::printf("%-12d %21.2f%% %23.2f%% %20.4f\n", caps[i],
                100.0 * brr_at[i], 100.0 * flex_at[i],
                BoxStats::FromSamples(flex_imbalance).median);
  }

  std::printf("\npaper: max-10-rack deployments show roughly half the "
              "stranded power of max-20\n");
  if (brr_at[0] > 0.0 && flex_at[0] > 0.0) {
    std::printf("measured: max-10 / max-20 stranded ratio = %.2f "
                "(heuristic), %.2f (Flex-Offline-Short)\n",
                brr_at[1] / brr_at[0], flex_at[1] / flex_at[0]);
  }
  return 0;
}
