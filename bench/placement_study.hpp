/**
 * @file
 * Shared driver for the Section V-A placement benches (Figs. 9 and 10
 * plus the deployment-size and software-redundant-fraction ablations):
 * generate shuffled demand traces, run every policy on every trace, and
 * collect the stranded-power / throttling-imbalance samples.
 */
#ifndef FLEX_BENCH_PLACEMENT_STUDY_HPP_
#define FLEX_BENCH_PLACEMENT_STUDY_HPP_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "offline/flex_offline.hpp"
#include "offline/metrics.hpp"
#include "offline/policies.hpp"
#include "power/topology.hpp"
#include "workload/trace.hpp"

namespace flex::bench {

/** Metrics of one policy across all trace variants. */
struct PolicyOutcome {
  std::string policy;
  std::vector<double> stranded;   ///< fraction of provisioned power
  std::vector<double> imbalance;  ///< throttling imbalance
  std::vector<double> placed;     ///< fraction of requested power placed
};

/**
 * Builds factories for the paper's five evaluated policies (plus
 * First-Fit). Factories rather than instances: each trace variant gets
 * its own fresh policy so offline::PlaceVariants can run the variants
 * concurrently without sharing mutable policy state.
 */
inline std::vector<offline::PolicyFactory>
MakePolicies(double solve_seconds, bool include_first_fit = false)
{
  std::vector<offline::PolicyFactory> policies;
  policies.push_back([] {
    return std::make_unique<offline::RandomPolicy>(1234);
  });
  policies.push_back([] {
    return std::make_unique<offline::BalancedRoundRobinPolicy>();
  });
  if (include_first_fit) {
    policies.push_back([] {
      return std::make_unique<offline::FirstFitPolicy>();
    });
  }
  policies.push_back([solve_seconds]() -> std::unique_ptr<offline::PlacementPolicy> {
    return std::make_unique<offline::FlexOfflinePolicy>(
        offline::FlexOfflinePolicy::Short(solve_seconds));
  });
  policies.push_back([solve_seconds]() -> std::unique_ptr<offline::PlacementPolicy> {
    return std::make_unique<offline::FlexOfflinePolicy>(
        offline::FlexOfflinePolicy::Long(solve_seconds * 2.0));
  });
  policies.push_back([solve_seconds]() -> std::unique_ptr<offline::PlacementPolicy> {
    return std::make_unique<offline::FlexOfflinePolicy>(
        offline::FlexOfflinePolicy::Oracle(solve_seconds * 8.0));
  });
  return policies;
}

/**
 * Runs every policy over @p num_traces shuffled variants. Variants fan
 * out onto the shared thread pool (offline::PlaceVariants); results are
 * in variant order and identical to a serial run.
 */
inline std::vector<PolicyOutcome>
RunPlacementStudy(const power::RoomTopology& room,
                  const workload::TraceConfig& trace_config, int num_traces,
                  double solve_seconds, std::uint64_t seed = 2021,
                  bool include_first_fit = false)
{
  Rng rng(seed);
  const auto base = workload::GenerateTrace(
      trace_config, room.TotalProvisionedPower(), rng);
  const auto variants = workload::ShuffledVariants(base, num_traces, rng);

  common::ThreadPool& shared = common::ThreadPool::Shared();
  common::ThreadPool* pool = shared.size() > 1 ? &shared : nullptr;

  const auto factories = MakePolicies(solve_seconds, include_first_fit);
  std::vector<PolicyOutcome> outcomes;
  for (const auto& factory : factories) {
    PolicyOutcome outcome;
    outcome.policy = factory()->Name();
    const std::vector<offline::Placement> placements =
        offline::PlaceVariants(room, factory, variants, pool);
    for (const offline::Placement& placement : placements) {
      const offline::PlacementMetrics metrics =
          offline::EvaluatePlacement(room, placement);
      outcome.stranded.push_back(metrics.stranded_fraction);
      outcome.imbalance.push_back(metrics.throttling_imbalance);
      outcome.placed.push_back(metrics.placed_fraction);
    }
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

/** Prints one boxplot row: min/p25/median/p75/max. */
inline void
PrintBoxRow(const std::string& label, const std::vector<double>& samples,
            double scale = 100.0, const char* unit = "%")
{
  const BoxStats box = BoxStats::FromSamples(samples);
  std::printf("%-24s %7.2f %7.2f %7.2f %7.2f %7.2f  %s\n", label.c_str(),
              box.min * scale, box.p25 * scale, box.median * scale,
              box.p75 * scale, box.max * scale, unit);
}

}  // namespace flex::bench

#endif  // FLEX_BENCH_PLACEMENT_STUDY_HPP_
