/**
 * @file
 * Shared driver for the Section V-A placement benches (Figs. 9 and 10
 * plus the deployment-size and software-redundant-fraction ablations):
 * generate shuffled demand traces, run every policy on every trace, and
 * collect the stranded-power / throttling-imbalance samples.
 */
#ifndef FLEX_BENCH_PLACEMENT_STUDY_HPP_
#define FLEX_BENCH_PLACEMENT_STUDY_HPP_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "offline/flex_offline.hpp"
#include "offline/metrics.hpp"
#include "offline/policies.hpp"
#include "power/topology.hpp"
#include "workload/trace.hpp"

namespace flex::bench {

/** Metrics of one policy across all trace variants. */
struct PolicyOutcome {
  std::string policy;
  std::vector<double> stranded;   ///< fraction of provisioned power
  std::vector<double> imbalance;  ///< throttling imbalance
  std::vector<double> placed;     ///< fraction of requested power placed
};

/** Builds the paper's five evaluated policies (plus First-Fit). */
inline std::vector<std::unique_ptr<offline::PlacementPolicy>>
MakePolicies(double solve_seconds, bool include_first_fit = false)
{
  std::vector<std::unique_ptr<offline::PlacementPolicy>> policies;
  policies.push_back(std::make_unique<offline::RandomPolicy>(1234));
  policies.push_back(std::make_unique<offline::BalancedRoundRobinPolicy>());
  if (include_first_fit)
    policies.push_back(std::make_unique<offline::FirstFitPolicy>());
  policies.push_back(std::make_unique<offline::FlexOfflinePolicy>(
      offline::FlexOfflinePolicy::Short(solve_seconds)));
  policies.push_back(std::make_unique<offline::FlexOfflinePolicy>(
      offline::FlexOfflinePolicy::Long(solve_seconds * 2.0)));
  policies.push_back(std::make_unique<offline::FlexOfflinePolicy>(
      offline::FlexOfflinePolicy::Oracle(solve_seconds * 8.0)));
  return policies;
}

/** Runs every policy over @p num_traces shuffled variants. */
inline std::vector<PolicyOutcome>
RunPlacementStudy(const power::RoomTopology& room,
                  const workload::TraceConfig& trace_config, int num_traces,
                  double solve_seconds, std::uint64_t seed = 2021,
                  bool include_first_fit = false)
{
  Rng rng(seed);
  const auto base = workload::GenerateTrace(
      trace_config, room.TotalProvisionedPower(), rng);
  const auto variants = workload::ShuffledVariants(base, num_traces, rng);

  auto policies = MakePolicies(solve_seconds, include_first_fit);
  std::vector<PolicyOutcome> outcomes;
  for (const auto& policy : policies) {
    PolicyOutcome outcome;
    outcome.policy = policy->Name();
    for (const auto& variant : variants) {
      const offline::Placement placement = policy->Place(room, variant);
      const offline::PlacementMetrics metrics =
          offline::EvaluatePlacement(room, placement);
      outcome.stranded.push_back(metrics.stranded_fraction);
      outcome.imbalance.push_back(metrics.throttling_imbalance);
      outcome.placed.push_back(metrics.placed_fraction);
    }
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

/** Prints one boxplot row: min/p25/median/p75/max. */
inline void
PrintBoxRow(const std::string& label, const std::vector<double>& samples,
            double scale = 100.0, const char* unit = "%")
{
  const BoxStats box = BoxStats::FromSamples(samples);
  std::printf("%-24s %7.2f %7.2f %7.2f %7.2f %7.2f  %s\n", label.c_str(),
              box.min * scale, box.p25 * scale, box.median * scale,
              box.p75 * scale, box.max * scale, unit);
}

}  // namespace flex::bench

#endif  // FLEX_BENCH_PLACEMENT_STUDY_HPP_
