/**
 * @file
 * E7 / Section V-A text: how much software-redundant workload Flex needs.
 *
 * Paper result (Flex-Offline-Long, 31% non-cap-able fixed): 0%
 * software-redundant strands ~15% (not enough shave-able power); 5%
 * brings the median down to ~4%, 10% to ~3%; beyond that it stays within
 * about a point.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "placement_study.hpp"

int
main()
{
  using namespace flex;
  bench::PrintHeader("bench_sr_fraction", "Section V-A (SR sweep)",
                     "median stranded power vs. software-redundant share "
                     "(Flex-Offline-Long)");

  const power::RoomTopology room(power::RoomConfig::EvaluationRoom());
  const int traces = bench::NumTraces();
  const double solve = bench::SolveSeconds();
  const double sweep[] = {0.0, 0.05, 0.10, 0.15, 0.20};

  std::printf("%-16s %18s %16s\n", "SR fraction", "median stranded %",
              "median placed %");
  for (const double sr : sweep) {
    Rng rng(2021);
    workload::TraceConfig config;
    config.software_redundant_fraction = sr;
    // Keep the paper's 31% non-cap-able fixed; cap-able takes the rest.
    config.capable_fraction = 1.0 - 0.31 - sr;
    const auto base = workload::GenerateTrace(
        config, room.TotalProvisionedPower(), rng);
    const auto variants = workload::ShuffledVariants(base, traces, rng);
    offline::FlexOfflinePolicy policy =
        offline::FlexOfflinePolicy::Long(solve * 2.0);
    std::vector<double> stranded;
    std::vector<double> placed;
    for (const auto& variant : variants) {
      const auto placement = policy.Place(room, variant);
      const auto metrics = offline::EvaluatePlacement(room, placement);
      stranded.push_back(metrics.stranded_fraction);
      placed.push_back(metrics.placed_fraction);
    }
    std::printf("%13.0f%% %17.2f%% %15.1f%%\n", 100.0 * sr,
                100.0 * BoxStats::FromSamples(stranded).median,
                100.0 * BoxStats::FromSamples(placed).median);
  }

  std::printf("\npaper: 0%% SR -> ~15%% stranded; 5%% -> ~4%%; 10%% -> ~3%%; "
              "more SR changes little\n");
  return 0;
}
