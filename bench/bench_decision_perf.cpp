/**
 * @file
 * Microbenchmark: Algorithm 1 decision latency at room scale.
 *
 * Not a paper artifact — it guards the controller's contribution to the
 * 10-second end-to-end budget: deciding the action set for a ~600-rack
 * room must take milliseconds, leaving the budget to telemetry and
 * actuation.
 */
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "online/decision.hpp"
#include "power/topology.hpp"

namespace {

using namespace flex;
using workload::Category;

online::DecisionInput
MakeRoomScaleInput(int racks_count)
{
  const power::RoomTopology room(power::RoomConfig::EvaluationRoom());
  Rng rng(5);
  online::DecisionInput input;
  for (power::UpsId u = 0; u < room.NumUpses(); ++u) {
    // UPS 0 failed; survivors overloaded ~133%.
    input.ups_power.push_back(
        u == 0 ? Watts(0.0) : room.UpsCapacity(u) * 1.33);
    input.ups_limit.push_back(room.UpsCapacity(u));
  }
  for (power::PduPairId p = 0; p < room.NumPduPairs(); ++p)
    input.pdu_to_ups.push_back(room.UpsesOfPduPair(p));
  for (int i = 0; i < racks_count; ++i) {
    online::RackSnapshot rack;
    rack.rack_id = i;
    const int category = i % 10;
    if (category < 2) {
      rack.category = Category::kSoftwareRedundant;
      rack.workload = "sr-" + std::to_string(i % 3);
    } else if (category < 7) {
      rack.category = Category::kNonRedundantCapable;
      rack.workload = "cap-" + std::to_string(i % 3);
    } else {
      rack.category = Category::kNonRedundantNonCapable;
      rack.workload = "nc";
    }
    rack.pdu_pair = i % room.NumPduPairs();
    rack.current_power = KiloWatts(rng.Uniform(10.0, 16.0));
    rack.flex_power = KiloWatts(12.0);
    input.racks.push_back(std::move(rack));
  }
  return input;
}

void
BM_DecideActionsRoomScale(benchmark::State& state)
{
  const online::DecisionInput input =
      MakeRoomScaleInput(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const online::DecisionResult result = online::DecideActions(input);
    benchmark::DoNotOptimize(result.actions.size());
  }
}
BENCHMARK(BM_DecideActionsRoomScale)
    ->Arg(120)
    ->Arg(360)
    ->Arg(600)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
