/**
 * @file
 * E1 / Fig. 3: workload category distribution across regions.
 *
 * Paper result: across 4 Microsoft regions, a significant share of the
 * deployed capacity is software-redundant or non-redundant-but-cap-able
 * (average used in the evaluation: 13% / 56% / 31%). The synthetic trace
 * generator is the stand-in for production data, so this bench verifies
 * that the traces driving every other experiment match that mix.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "workload/trace.hpp"

int
main()
{
  using namespace flex;
  bench::PrintHeader("bench_workload_mix", "Fig. 3",
                     "workload category mix (by allocated power) per "
                     "region");

  // Four synthetic "regions": per-region mixes spread around the paper's
  // averages, as Fig. 3 shows region-to-region variation.
  const double sr[4] = {0.10, 0.12, 0.15, 0.15};
  const double cap[4] = {0.60, 0.52, 0.55, 0.57};

  std::printf("%-10s %18s %14s %16s\n", "region", "software-redundant",
              "cap-able", "non-cap-able");
  double mean[3] = {0.0, 0.0, 0.0};
  for (int region = 0; region < 4; ++region) {
    workload::TraceConfig config;
    config.software_redundant_fraction = sr[region];
    config.capable_fraction = cap[region];
    Rng rng(100 + static_cast<std::uint64_t>(region));
    const auto trace =
        workload::GenerateTrace(config, MegaWatts(9.6 * 16.0), rng);
    const workload::CategoryMix mix = workload::MixOf(trace);
    std::printf("Region %-3d %17.1f%% %13.1f%% %15.1f%%\n", region + 1,
                100.0 * mix.software_redundant, 100.0 * mix.capable,
                100.0 * mix.non_capable);
    mean[0] += mix.software_redundant / 4.0;
    mean[1] += mix.capable / 4.0;
    mean[2] += mix.non_capable / 4.0;
  }
  std::printf("%-10s %17.1f%% %13.1f%% %15.1f%%\n", "average",
              100.0 * mean[0], 100.0 * mean[1], 100.0 * mean[2]);
  std::printf("\npaper average: 13%% software-redundant, 56%% cap-able, "
              "31%% non-cap-able\n");
  return 0;
}
