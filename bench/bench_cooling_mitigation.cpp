/**
 * @file
 * Section VI (cooling): the cooling mitigation ladder.
 *
 * Paper claim: unlike a power failover (~10 s before cascading
 * failure), losing redundant cooling leaves several minutes before the
 * room overheats, so workload migration to another cooling domain runs
 * first and Flex capping/shutdown is the last resort — which is why
 * zero-reserved-cooling needs no extra infrastructure.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "cooling/cooling_domain.hpp"
#include "power/trip_curve.hpp"
#include "sim/event_queue.hpp"

int
main()
{
  using namespace flex;
  bench::PrintHeader("bench_cooling_mitigation", "Section VI (cooling)",
                     "mitigation windows and the migrate-then-cap ladder");

  // Contrast of mitigation windows.
  const power::TripCurve trip =
      power::TripCurve::ForBatteryLife(power::BatteryLife::kEndOfLife);
  cooling::CoolingDomain window_probe{cooling::CoolingDomainConfig{}};
  window_probe.SetUnitFailed(0, true);
  window_probe.SetUnitFailed(1, true);
  std::printf("mitigation window after losing redundancy:\n");
  std::printf("  power (UPS at 133%% load):      %6.1f s\n",
              trip.ToleranceAt(4.0 / 3.0).value());
  std::printf("  cooling (2 of 4 units lost):   %6.1f s (%.1f minutes)\n\n",
              window_probe.TimeToOverheat(MegaWatts(9.6)).value(),
              window_probe.TimeToOverheat(MegaWatts(9.6)).value() / 60.0);

  // The ladder under increasing severity.
  std::printf("%-22s %12s %14s %12s %10s\n", "failed cooling units",
              "peak temp", "migrated (MW)", "flex engaged", "overheat");
  for (int failures = 1; failures <= 3; ++failures) {
    sim::EventQueue queue;
    cooling::CoolingDomain domain{cooling::CoolingDomainConfig{}};
    Watts load = MegaWatts(9.6);
    Watts cut(0.0);
    cooling::CoolingFailureHandler handler(
        queue, domain, cooling::CoolingMitigationConfig{},
        [&] { return load - cut; },
        [&](Watts needed) { cut = std::max(cut, needed); });
    handler.Start();
    double peak_temp = domain.temperature_c();
    sim::SchedulePeriodic(queue, Seconds(1.0), [&] {
      // EffectiveLoad = raw load - flex cut (via load_source) - migrated.
      domain.Advance(handler.EffectiveLoad(), Seconds(1.0));
      peak_temp = std::max(peak_temp, domain.temperature_c());
      return true;
    });
    // Stagger the failures a minute apart.
    for (int f = 0; f < failures; ++f) {
      queue.Schedule(Minutes(1.0 + f), [&domain, f] {
        domain.SetUnitFailed(f, true);
      });
    }
    queue.RunUntil(Minutes(20.0));
    std::printf("%-22d %10.1f C %14.2f %12s %10s\n", failures, peak_temp,
                handler.migrated_load().megawatts(),
                handler.flex_engagements() > 0 ? "yes" : "no",
                domain.Overheated() ? "YES" : "no");
  }

  std::printf("\npaper: migration handles cooling loss in the minutes "
              "available; Flex actions are the backstop\n");
  return 0;
}
