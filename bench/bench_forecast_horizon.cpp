/**
 * @file
 * Extension ablation (paper Section V-A, future work): combining the
 * certain short-term demand with an uncertain long-term forecast.
 *
 * The paper ends its placement study noting that Oracle's advantage
 * comes from visibility into future demand and proposes combining a
 * certain short horizon with an uncertain forecast. Flex-Offline-
 * Forecast implements that: every Short batch's ILP also sees the rest
 * of the trace as discounted "phantom" deployments that reserve
 * well-shaped room but are never committed. Expectation: stranded power
 * between Flex-Offline-Short and Flex-Offline-Oracle.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "placement_study.hpp"

int
main()
{
  using namespace flex;
  bench::PrintHeader("bench_forecast_horizon", "Section V-A (extension)",
                     "short-horizon batching with an uncertain demand "
                     "forecast");

  const power::RoomTopology room(power::RoomConfig::EvaluationRoom());
  const int traces = bench::NumTraces(6);
  const double solve = bench::SolveSeconds();

  Rng rng(2021);
  const auto base = workload::GenerateTrace(
      workload::TraceConfig{}, room.TotalProvisionedPower(), rng);
  const auto variants = workload::ShuffledVariants(base, traces, rng);

  struct Entry {
    std::string name;
    std::vector<double> stranded;
  };
  std::vector<Entry> entries;
  for (int mode = 0; mode < 4; ++mode) {
    Entry entry;
    for (const auto& variant : variants) {
      offline::FlexOfflinePolicy policy = [&] {
        switch (mode) {
          case 0:
            return offline::FlexOfflinePolicy::Short(solve);
          case 1:
            return offline::FlexOfflinePolicy::ForecastAware(variant, 0.7,
                                                             solve);
          case 2:
            // A perfectly confident forecast: upper bound of the idea.
            return offline::FlexOfflinePolicy::ForecastAware(variant, 1.0,
                                                             solve);
          default:
            return offline::FlexOfflinePolicy::Oracle(solve * 4.0);
        }
      }();
      entry.name = policy.Name() + (mode == 2 ? " (conf 1.0)" : "") +
                   (mode == 1 ? " (conf 0.7)" : "");
      const auto placement = policy.Place(room, variant);
      entry.stranded.push_back(
          offline::StrandedPowerFraction(room, placement));
    }
    entries.push_back(std::move(entry));
  }

  std::printf("%-32s %7s %7s %7s %7s %7s\n", "policy", "min", "p25",
              "median", "p75", "max");
  for (const Entry& entry : entries)
    bench::PrintBoxRow(entry.name, entry.stranded);

  std::printf("\nexpectation: forecast-aware batching lands between "
              "Short and Oracle — the paper's proposed\n"
              "way to lengthen the practical placement horizon\n");
  return 0;
}
