/**
 * @file
 * E3 / Fig. 6: UPS overload tolerance curves.
 *
 * Paper result: at the worst-case 4N/3 failover load of 133%, the
 * end-of-battery-life UPS tolerates 10 seconds, followed by 3.5 minutes
 * of ride-through at 100% while generators start; the begin-of-life
 * battery is substantially more tolerant at every overload level.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "power/trip_curve.hpp"

int
main()
{
  using namespace flex;
  bench::PrintHeader("bench_trip_curves", "Fig. 6",
                     "UPS overload tolerance vs. load, begin/end of "
                     "battery life");

  const power::TripCurve begin =
      power::TripCurve::ForBatteryLife(power::BatteryLife::kBeginOfLife);
  const power::TripCurve end =
      power::TripCurve::ForBatteryLife(power::BatteryLife::kEndOfLife);

  std::printf("%10s %22s %22s\n", "load", "begin-of-life (s)",
              "end-of-life (s)");
  for (const double load :
       {1.05, 1.10, 1.15, 1.20, 1.25, 1.30, 1.33, 1.40, 1.50, 1.75, 2.00}) {
    std::printf("%9.0f%% %22.1f %22.1f\n", 100.0 * load,
                begin.ToleranceAt(load).value(),
                end.ToleranceAt(load).value());
  }
  std::printf("\nride-through at rated load: %.1f minutes (generator "
              "start window)\n",
              power::TripCurve::RideThroughAtRated().value() / 60.0);
  std::printf("paper anchor: 10 s at 133%% load at end of battery life -> "
              "the Flex-Online latency budget\n");
  return 0;
}
