/**
 * @file
 * E2 / Section III: feasibility analysis.
 *
 * Paper result: 99.99% of the time (>= 4 nines) a zero-reserved-power
 * room needs no corrective action; the probability that any
 * software-redundant server must be shut down is only ~0.005%, so those
 * servers still see >= 4 nines of availability (non-redundant servers
 * keep 5 nines — they are at most throttled, never shut down).
 */
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "analysis/feasibility.hpp"
#include "bench_util.hpp"

int
main()
{
  using namespace flex;
  bench::PrintHeader("bench_feasibility", "Section III",
                     "joint probability of maintenance x high utilization");

  const analysis::FeasibilityModel model;
  const analysis::FeasibilityResult r = model.Evaluate();
  const auto& p = model.params();

  std::printf("inputs: peak util %.0f%% +/- %.0f%%, off-peak dip %.0f%%, "
              "unplanned %.0f h/yr, planned %.0f h/yr\n\n",
              100.0 * p.peak_mean_utilization, 100.0 * p.peak_stddev,
              100.0 * p.offpeak_dip, p.unplanned_hours_per_year,
              p.planned_hours_per_year);

  std::printf("%-44s %12s %12s\n", "metric", "paper", "measured");
  std::printf("%-44s %12s %11.4f%%\n",
              "P(utilization > failover budget)", "-",
              100.0 * r.p_high_utilization);
  std::printf("%-44s %12s %11.5f%%\n", "P(corrective action needed)",
              "~0.01%", 100.0 * r.p_corrective_needed);
  std::printf("%-44s %12s %12.2f\n", "room availability (nines)",
              ">= 4", r.room_availability_nines);
  std::printf("%-44s %12s %11.1f%%\n",
              "shutdown threshold utilization", "-",
              100.0 * r.shutdown_threshold_utilization);
  std::printf("%-44s %12s %11.5f%%\n", "P(SR shutdown needed)", "~0.005%",
              100.0 * r.p_shutdown_needed);
  std::printf("%-44s %12s %12.2f\n",
              "software-redundant availability (nines)", ">= 4",
              r.sr_availability_nines);
  std::printf("%-44s %12s %12s\n", "non-redundant availability", "5 nines",
              "5 nines*");
  std::printf("\n* non-redundant workloads are never shut down by Flex — "
              "worst case is throttling,\n  so they retain the room design "
              "availability.\n");

  // Monte Carlo cross-check of the closed-form exceedance integrals,
  // fanned out in fixed chunks across the shared thread pool. The
  // parallel run must fingerprint identically to the serial run (same
  // chunk partition, per-chunk RNG streams, serial chunk-order merge).
  const char* smoke = std::getenv("FLEX_SMOKE");
  const std::uint64_t samples =
      smoke != nullptr && *smoke != '\0' && *smoke != '0' ? 1u << 18
                                                          : 1u << 23;
  using BenchClock = std::chrono::steady_clock;
  auto start = BenchClock::now();
  const analysis::MonteCarloResult serial = model.MonteCarlo(samples, 7, 1);
  const double serial_s =
      std::chrono::duration<double>(BenchClock::now() - start).count();
  start = BenchClock::now();
  const analysis::MonteCarloResult parallel = model.MonteCarlo(samples, 7, 0);
  const double parallel_s =
      std::chrono::duration<double>(BenchClock::now() - start).count();
  const bool hash_match = serial.sample_hash == parallel.sample_hash;
  const double mc_error =
      std::abs(parallel.result.p_high_utilization - r.p_high_utilization);
  // Binomial standard error bounds how far the sampled fraction may sit
  // from the closed form.
  const double tolerance =
      5.0 * std::sqrt(r.p_high_utilization * (1.0 - r.p_high_utilization) /
                      static_cast<double>(samples));

  std::printf("\nMonte Carlo cross-check (%llu samples):\n",
              static_cast<unsigned long long>(samples));
  std::printf("  %-34s %12s %12s\n", "", "closed form", "sampled");
  std::printf("  %-34s %11.4f%% %11.4f%%\n", "P(utilization > budget)",
              100.0 * r.p_high_utilization,
              100.0 * parallel.result.p_high_utilization);
  std::printf("  %-34s %12.2f %12.2f\n", "room availability (nines)",
              r.room_availability_nines,
              parallel.result.room_availability_nines);
  std::printf("  1 lane: %.3fs, %d lanes: %.3fs, hashes %s\n", serial_s,
              parallel.lanes, parallel_s,
              hash_match ? "identical" : "MISMATCH");
  if (!hash_match) {
    std::fprintf(stderr, "FAIL: parallel Monte Carlo diverged from serial\n");
    return 1;
  }
  if (mc_error > tolerance) {
    std::fprintf(stderr,
                 "FAIL: Monte Carlo estimate %.6f vs closed form %.6f "
                 "(tolerance %.6f)\n",
                 parallel.result.p_high_utilization, r.p_high_utilization,
                 tolerance);
    return 1;
  }
  return 0;
}
