/**
 * @file
 * E2 / Section III: feasibility analysis.
 *
 * Paper result: 99.99% of the time (>= 4 nines) a zero-reserved-power
 * room needs no corrective action; the probability that any
 * software-redundant server must be shut down is only ~0.005%, so those
 * servers still see >= 4 nines of availability (non-redundant servers
 * keep 5 nines — they are at most throttled, never shut down).
 */
#include <cstdio>

#include "analysis/feasibility.hpp"
#include "bench_util.hpp"

int
main()
{
  using namespace flex;
  bench::PrintHeader("bench_feasibility", "Section III",
                     "joint probability of maintenance x high utilization");

  const analysis::FeasibilityModel model;
  const analysis::FeasibilityResult r = model.Evaluate();
  const auto& p = model.params();

  std::printf("inputs: peak util %.0f%% +/- %.0f%%, off-peak dip %.0f%%, "
              "unplanned %.0f h/yr, planned %.0f h/yr\n\n",
              100.0 * p.peak_mean_utilization, 100.0 * p.peak_stddev,
              100.0 * p.offpeak_dip, p.unplanned_hours_per_year,
              p.planned_hours_per_year);

  std::printf("%-44s %12s %12s\n", "metric", "paper", "measured");
  std::printf("%-44s %12s %11.4f%%\n",
              "P(utilization > failover budget)", "-",
              100.0 * r.p_high_utilization);
  std::printf("%-44s %12s %11.5f%%\n", "P(corrective action needed)",
              "~0.01%", 100.0 * r.p_corrective_needed);
  std::printf("%-44s %12s %12.2f\n", "room availability (nines)",
              ">= 4", r.room_availability_nines);
  std::printf("%-44s %12s %11.1f%%\n",
              "shutdown threshold utilization", "-",
              100.0 * r.shutdown_threshold_utilization);
  std::printf("%-44s %12s %11.5f%%\n", "P(SR shutdown needed)", "~0.005%",
              100.0 * r.p_shutdown_needed);
  std::printf("%-44s %12s %12.2f\n",
              "software-redundant availability (nines)", ">= 4",
              r.sr_availability_nines);
  std::printf("%-44s %12s %12s\n", "non-redundant availability", "5 nines",
              "5 nines*");
  std::printf("\n* non-redundant workloads are never shut down by Flex — "
              "worst case is throttling,\n  so they retain the room design "
              "availability.\n");
  return 0;
}
