/**
 * @file
 * Microbenchmark: simplex and branch-and-bound performance.
 *
 * Not a paper artifact — it guards the solver substrate's fitness for
 * the Flex-Offline use case (batch ILPs must solve in seconds, well
 * inside the paper's 5-minute Gurobi budget).
 *
 * After the microbenchmarks, prints the convergence curve (bound vs.
 * incumbent over solve time) of one placement-shaped MILP via
 * solver::SolverTrace. Set FLEX_SOLVER_TRACE=<path> to also write the
 * curve as CSV; FLEX_BENCH_JSON appends the solver counters as metrics.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "obs/export.hpp"
#include "solver/branch_and_bound.hpp"
#include "solver/model.hpp"
#include "solver/simplex.hpp"
#include "solver/solver_trace.hpp"

namespace {

using namespace flex;
using namespace flex::solver;

/**
 * A placement-shaped LP: n deployments x p pairs with capacity rows.
 *
 * The first `pinned` deployments carry a placement exclusion — a
 * singleton equality row barring one pair, the shape a real placement
 * run has when an operator has vetoed specific rack assignments. Those
 * rows (and the columns they fix at zero) are exactly what presolve
 * folds away, so a bench model with pinned > 0 exercises the presolve
 * counters; the bare model is presolve-irreducible (no singleton,
 * redundant, or forcing rows).
 */
Model
MakePlacementLp(int deployments, int pairs, bool integer, int pinned = 0)
{
  Rng rng(42);
  Model model;
  std::vector<std::vector<VarIndex>> x(
      static_cast<std::size_t>(deployments));
  for (int d = 0; d < deployments; ++d) {
    for (int p = 0; p < pairs; ++p) {
      const double value = rng.Uniform(0.2, 0.5);
      const VarIndex v = integer
                             ? model.AddBinary("x", value)
                             : model.AddContinuous("x", 0.0, 1.0, value);
      x[static_cast<std::size_t>(d)].push_back(v);
    }
  }
  for (int d = 0; d < deployments; ++d) {
    std::vector<std::pair<VarIndex, double>> terms;
    for (const VarIndex v : x[static_cast<std::size_t>(d)])
      terms.push_back({v, 1.0});
    model.AddConstraint("once", std::move(terms), Relation::kLessEqual, 1.0);
  }
  for (int p = 0; p < pairs; ++p) {
    std::vector<std::pair<VarIndex, double>> terms;
    for (int d = 0; d < deployments; ++d)
      terms.push_back({x[static_cast<std::size_t>(d)][static_cast<std::size_t>(p)],
                       rng.Uniform(0.2, 0.5)});
    model.AddConstraint("cap", std::move(terms), Relation::kLessEqual,
                        0.25 * deployments / pairs);
  }
  for (int d = 0; d < std::min(pinned, deployments); ++d)
    model.AddConstraint(
        "exclude",
        {{x[static_cast<std::size_t>(d)][static_cast<std::size_t>(d % pairs)],
          1.0}},
        Relation::kEqual, 0.0);
  return model;
}

void
BM_SimplexPlacementLp(benchmark::State& state)
{
  const Model model = MakePlacementLp(static_cast<int>(state.range(0)), 12,
                                      /*integer=*/false);
  const SimplexSolver solver;
  for (auto _ : state) {
    const LpResult result = solver.Solve(model);
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_SimplexPlacementLp)->Arg(10)->Arg(20)->Arg(40);

void
BM_BranchAndBoundPlacement(benchmark::State& state)
{
  const Model model = MakePlacementLp(static_cast<int>(state.range(0)), 12,
                                      /*integer=*/true);
  BranchAndBoundSolver::Options options;
  options.time_budget_seconds = 2.0;
  const BranchAndBoundSolver solver(options);
  for (auto _ : state) {
    const MipResult result = solver.Solve(model);
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_BranchAndBoundPlacement)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMillisecond);

void
BM_SimplexKnapsackRelaxation(benchmark::State& state)
{
  Rng rng(7);
  Model model;
  std::vector<std::pair<VarIndex, double>> terms;
  for (int i = 0; i < state.range(0); ++i) {
    const VarIndex v =
        model.AddContinuous("x", 0.0, 1.0, rng.Uniform(1.0, 10.0));
    terms.push_back({v, rng.Uniform(1.0, 10.0)});
  }
  model.AddConstraint("cap", std::move(terms), Relation::kLessEqual,
                      2.0 * state.range(0));
  const SimplexSolver solver;
  for (auto _ : state) {
    const LpResult result = solver.Solve(model);
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_SimplexKnapsackRelaxation)->Arg(100)->Arg(400);

/**
 * Parallel-scaling section: solves the largest placement MILP once
 * serially and once on an explicit pool, checks the incumbents match
 * bit-for-bit (the wave-synchronous search guarantees it under a node
 * budget, which is deterministic — unlike a wall-clock budget), and
 * reports speedup, steal counts, and the basis-reuse hit rate.
 */
void
RunParallelScaling(obs::MetricsRegistry& metrics)
{
  using BenchClock = std::chrono::steady_clock;
  const Model model = MakePlacementLp(20, 12, /*integer=*/true);

  BranchAndBoundSolver::Options options;
  // A node budget (not a time budget) truncates deterministically, so
  // the 1-vs-N comparison is exact even when the tree does not close.
  options.time_budget_seconds = 10.0 * bench::SolveSeconds(3.0);
  options.max_nodes = 4000;

  options.threads = 1;
  const auto serial_start = BenchClock::now();
  const MipResult serial = BranchAndBoundSolver(options).Solve(model);
  const double serial_s =
      std::chrono::duration<double>(BenchClock::now() - serial_start).count();

  // At least two lanes even on small machines: a 1-vs-1 "sweep" only
  // measures pool overhead (speedup ~0.98) and says nothing about
  // scaling. The serial baseline stays at one thread and is recorded
  // alongside the speedup.
  const int threads = std::max(2, common::ThreadPool::ConfiguredThreads());
  common::ThreadPool pool(threads);
  options.threads = 0;
  options.pool = &pool;
  const auto parallel_start = BenchClock::now();
  const MipResult parallel = BranchAndBoundSolver(options).Solve(model);
  const double parallel_s =
      std::chrono::duration<double>(BenchClock::now() - parallel_start)
          .count();

  const bool identical =
      serial.x == parallel.x && serial.objective == parallel.objective &&
      serial.bound == parallel.bound;
  const double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
  const double hit_rate =
      parallel.basis_reuse_attempts > 0
          ? static_cast<double>(parallel.basis_reuse_hits) /
                static_cast<double>(parallel.basis_reuse_attempts)
          : 0.0;

  std::printf("\nParallel scaling (20 deployments x 12 pairs, %lld-node "
              "budget):\n",
              static_cast<long long>(options.max_nodes));
  std::printf("  1 thread : %.3fs, objective %.6f, %lld nodes\n", serial_s,
              serial.objective, static_cast<long long>(serial.nodes_explored));
  std::printf("  %d thread%s: %.3fs, objective %.6f, %lld nodes, %lld "
              "steals\n",
              parallel.threads_used, parallel.threads_used == 1 ? " " : "s",
              parallel_s, parallel.objective,
              static_cast<long long>(parallel.nodes_explored),
              static_cast<long long>(parallel.steal_count));
  std::printf("  speedup %.2fx, incumbents %s, basis reuse %lld/%lld "
              "(%.0f%% hit)\n",
              speedup, identical ? "identical" : "DIVERGED",
              static_cast<long long>(parallel.basis_reuse_hits),
              static_cast<long long>(parallel.basis_reuse_attempts),
              100.0 * hit_rate);

  // Hardware width of this machine, so downstream tooling
  // (scripts/check_budget.sh) can tell "no parallel hardware" apart
  // from a genuine scaling regression before gating on the speedup.
  metrics.gauge("solver.parallel.hw_concurrency")
      .Set(static_cast<double>(std::thread::hardware_concurrency()));
  metrics.gauge("solver.parallel.threads")
      .Set(static_cast<double>(parallel.threads_used));
  metrics.gauge("solver.parallel.baseline_threads")
      .Set(static_cast<double>(serial.threads_used));
  metrics.gauge("solver.parallel.serial_seconds").Set(serial_s);
  metrics.gauge("solver.parallel.parallel_seconds").Set(parallel_s);
  metrics.gauge("solver.parallel.speedup").Set(speedup);
  metrics.gauge("solver.parallel.identical").Set(identical ? 1.0 : 0.0);
  metrics.gauge("solver.parallel.basis_hit_rate").Set(hit_rate);
  metrics.counter("solver.parallel.basis_attempts")
      .Increment(static_cast<double>(parallel.basis_reuse_attempts));
  metrics.counter("solver.parallel.basis_hits")
      .Increment(static_cast<double>(parallel.basis_reuse_hits));
  metrics.counter("solver.parallel.steals")
      .Increment(static_cast<double>(parallel.steal_count));
}

/**
 * Solves one representative placement MILP with a trace attached and
 * prints / exports its convergence curve.
 */
void
PrintConvergenceCurve()
{
  const Model model = MakePlacementLp(16, 12, /*integer=*/true, /*pinned=*/3);
  SolverTrace trace;
  BranchAndBoundSolver::Options options;
  // A node budget truncates deterministically; the wall-clock budget is
  // deliberately generous so it never binds and the counters below
  // (warm hit rate, refactors per LP solve) are machine-independent.
  options.max_nodes = 6000;
  options.time_budget_seconds = 20.0 * bench::SolveSeconds(2.0);
  options.trace = &trace;
  options.trace_node_interval = 16;
  const MipResult result = BranchAndBoundSolver(options).Solve(model);

  std::printf("\nConvergence curve (16 deployments x 12 pairs, 3 pinned, "
              "%lld-node budget):\n",
              static_cast<long long>(options.max_nodes));
  std::printf("%-10s %10s %8s %10s %10s %12s %12s %8s\n", "label",
              "elapsed_s", "nodes", "lp_solves", "pivots", "bound",
              "incumbent", "gap");
  for (const SolverTracePoint& point : trace.points()) {
    char incumbent[32] = "-";
    if (point.has_incumbent)
      std::snprintf(incumbent, sizeof(incumbent), "%.6f", point.incumbent);
    std::printf("%-10s %10.4f %8lld %10lld %10lld %12.6f %12s %8.2e\n",
                point.label.c_str(), point.elapsed_s,
                static_cast<long long>(point.nodes),
                static_cast<long long>(point.lp_solves),
                static_cast<long long>(point.pivots), point.bound, incumbent,
                point.gap);
  }
  std::printf("final: objective %.6f, bound %.6f, gap %.2e, %lld nodes, "
              "%lld LP solves, %lld pivots, basis reuse %lld/%lld\n",
              result.objective, result.bound, result.gap,
              static_cast<long long>(result.nodes_explored),
              static_cast<long long>(result.lp_solves),
              static_cast<long long>(result.simplex_pivots),
              static_cast<long long>(result.basis_reuse_hits),
              static_cast<long long>(result.basis_reuse_attempts));
  std::printf("       %lld dual pivots (%lld warm dual restarts), "
              "%lld refactors, %lld FT updates, %lld propagation prunes "
              "(%lld bounds), presolve -%d rows -%d cols\n",
              static_cast<long long>(result.dual_pivots),
              static_cast<long long>(result.warm_dual_restarts),
              static_cast<long long>(result.simplex_refactors),
              static_cast<long long>(result.eta_updates),
              static_cast<long long>(result.propagation_prunes),
              static_cast<long long>(result.propagated_bounds),
              result.presolve_rows_removed, result.presolve_cols_removed);

  if (const char* path = std::getenv("FLEX_SOLVER_TRACE");
      path != nullptr && *path != '\0') {
    if (obs::WriteFile(path, trace.ToCsv()))
      std::printf("convergence curve written to %s\n", path);
    else
      std::fprintf(stderr, "failed to write %s\n", path);
  }

  obs::Observability observability;
  obs::MetricsRegistry& metrics = observability.metrics();
  metrics.counter("solver.nodes")
      .Increment(static_cast<double>(result.nodes_explored));
  metrics.counter("solver.lp_solves")
      .Increment(static_cast<double>(result.lp_solves));
  metrics.counter("solver.pivots")
      .Increment(static_cast<double>(result.simplex_pivots));
  metrics.counter("solver.trace_points")
      .Increment(static_cast<double>(trace.size()));
  metrics.counter("solver.basis_attempts")
      .Increment(static_cast<double>(result.basis_reuse_attempts));
  metrics.counter("solver.basis_hits")
      .Increment(static_cast<double>(result.basis_reuse_hits));
  metrics.counter("solver.refactors")
      .Increment(static_cast<double>(result.simplex_refactors));
  metrics.counter("solver.eta_updates")
      .Increment(static_cast<double>(result.eta_updates));
  metrics.counter("solver.presolve_rows_removed")
      .Increment(static_cast<double>(result.presolve_rows_removed));
  metrics.counter("solver.presolve_cols_removed")
      .Increment(static_cast<double>(result.presolve_cols_removed));
  metrics.counter("solver.dual_pivots")
      .Increment(static_cast<double>(result.dual_pivots));
  metrics.counter("solver.warm_dual_restarts")
      .Increment(static_cast<double>(result.warm_dual_restarts));
  metrics.counter("solver.propagation_prunes")
      .Increment(static_cast<double>(result.propagation_prunes));
  metrics.counter("solver.propagated_bounds")
      .Increment(static_cast<double>(result.propagated_bounds));
  // The two ratios scripts/check_budget.sh gates on: how often a child
  // node actually reused its parent's factorized basis, and how many
  // refactorizations each LP solve cost (Forrest–Tomlin updates absorb
  // pivots, so this should sit well below 1).
  metrics.gauge("solver.warm_hit_rate")
      .Set(result.basis_reuse_attempts > 0
               ? static_cast<double>(result.basis_reuse_hits) /
                     static_cast<double>(result.basis_reuse_attempts)
               : 0.0);
  metrics.gauge("solver.refactors_per_lp_solve")
      .Set(result.lp_solves > 0
               ? static_cast<double>(result.simplex_refactors) /
                     static_cast<double>(result.lp_solves)
               : 0.0);
  metrics.gauge("solver.objective").Set(result.objective);
  metrics.gauge("solver.bound").Set(result.bound);
  metrics.gauge("solver.gap").Set(result.gap);
  metrics.gauge("solver.threads").Set(static_cast<double>(result.threads_used));
  RunParallelScaling(metrics);
  bench::MaybeExportBenchJson("solver_perf", observability);
}

}  // namespace

int
main(int argc, char** argv)
{
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintConvergenceCurve();
  return 0;
}
