/**
 * @file
 * Microbenchmark: simplex and branch-and-bound performance.
 *
 * Not a paper artifact — it guards the solver substrate's fitness for
 * the Flex-Offline use case (batch ILPs must solve in seconds, well
 * inside the paper's 5-minute Gurobi budget).
 */
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "solver/branch_and_bound.hpp"
#include "solver/model.hpp"
#include "solver/simplex.hpp"

namespace {

using namespace flex;
using namespace flex::solver;

/** A placement-shaped LP: n deployments x p pairs with capacity rows. */
Model
MakePlacementLp(int deployments, int pairs, bool integer)
{
  Rng rng(42);
  Model model;
  std::vector<std::vector<VarIndex>> x(
      static_cast<std::size_t>(deployments));
  for (int d = 0; d < deployments; ++d) {
    for (int p = 0; p < pairs; ++p) {
      const double value = rng.Uniform(0.2, 0.5);
      const VarIndex v = integer
                             ? model.AddBinary("x", value)
                             : model.AddContinuous("x", 0.0, 1.0, value);
      x[static_cast<std::size_t>(d)].push_back(v);
    }
  }
  for (int d = 0; d < deployments; ++d) {
    std::vector<std::pair<VarIndex, double>> terms;
    for (const VarIndex v : x[static_cast<std::size_t>(d)])
      terms.push_back({v, 1.0});
    model.AddConstraint("once", std::move(terms), Relation::kLessEqual, 1.0);
  }
  for (int p = 0; p < pairs; ++p) {
    std::vector<std::pair<VarIndex, double>> terms;
    for (int d = 0; d < deployments; ++d)
      terms.push_back({x[static_cast<std::size_t>(d)][static_cast<std::size_t>(p)],
                       rng.Uniform(0.2, 0.5)});
    model.AddConstraint("cap", std::move(terms), Relation::kLessEqual,
                        0.25 * deployments / pairs);
  }
  return model;
}

void
BM_SimplexPlacementLp(benchmark::State& state)
{
  const Model model = MakePlacementLp(static_cast<int>(state.range(0)), 12,
                                      /*integer=*/false);
  const SimplexSolver solver;
  for (auto _ : state) {
    const LpResult result = solver.Solve(model);
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_SimplexPlacementLp)->Arg(10)->Arg(20)->Arg(40);

void
BM_BranchAndBoundPlacement(benchmark::State& state)
{
  const Model model = MakePlacementLp(static_cast<int>(state.range(0)), 12,
                                      /*integer=*/true);
  BranchAndBoundSolver::Options options;
  options.time_budget_seconds = 2.0;
  const BranchAndBoundSolver solver(options);
  for (auto _ : state) {
    const MipResult result = solver.Solve(model);
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_BranchAndBoundPlacement)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMillisecond);

void
BM_SimplexKnapsackRelaxation(benchmark::State& state)
{
  Rng rng(7);
  Model model;
  std::vector<std::pair<VarIndex, double>> terms;
  for (int i = 0; i < state.range(0); ++i) {
    const VarIndex v =
        model.AddContinuous("x", 0.0, 1.0, rng.Uniform(1.0, 10.0));
    terms.push_back({v, rng.Uniform(1.0, 10.0)});
  }
  model.AddConstraint("cap", std::move(terms), Relation::kLessEqual,
                      2.0 * state.range(0));
  const SimplexSolver solver;
  for (auto _ : state) {
    const LpResult result = solver.Solve(model);
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_SimplexKnapsackRelaxation)->Arg(100)->Arg(400);

}  // namespace

BENCHMARK_MAIN();
