/**
 * @file
 * Room-scale simulation-engine bench.
 *
 * Measures the emulation core's event throughput as the room grows from
 * the paper's 360-rack Section V-C room to a ~10k-rack megaroom, and
 * compares the incremental-aggregation engine against the pre-PR
 * full-rescan path (EmulationConfig::incremental_aggregation = false +
 * the binary-heap event queue — the exact per-tick cost model the old
 * code had: one O(racks) rescan per UPS device per poller tick plus
 * O(racks) walks in every sample, safety check, and peak-action tick).
 *
 * The scale rungs run a room-scale monitoring workload, identical in
 * both modes: rack telemetry at the 30 s cadence production BMS fleets
 * poll ~10k rack meters at (the paper's 2 s cadence is for its 360-rack
 * room), UPS telemetry at 1.5 s, and the safety/trip-curve monitor at
 * 200 Hz — the paper's trip curves resolve overloads down to tens of
 * milliseconds, so 5 ms sampling is what it takes to resolve a
 * 20-50 ms trip window with Nyquist headroom (PMU-class cadence).
 * Each monitor tick costs O(UPSes) incrementally vs O(racks)
 * rescanning, which is precisely the asymmetry this engine exists to
 * remove; the paper rung keeps the paper's own cadences for fidelity.
 *
 * Also proves the parallel sweep's determinism: a 2-lane
 * RunEmulationSweep must produce the same sample hash as the serial
 * run, asserted here and exported to BENCH_room_scale.json.
 *
 * FLEX_SMOKE=1 shrinks everything to seconds of sim time and skips the
 * speedup assertion (tiny rooms are dominated by fixed costs).
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "emulation/room_emulation.hpp"
#include "emulation/sweep.hpp"
#include "obs/http_export.hpp"
#include "obs/profiler.hpp"
#include "solver/branch_and_bound.hpp"

namespace {

using Clock = std::chrono::steady_clock;

bool
SmokeMode()
{
  const char* env = std::getenv("FLEX_SMOKE");
  return env != nullptr && *env != '\0' && *env != '0';
}

/** One engine measurement: construction excluded, Run() timed. */
struct ModeResult {
  flex::emulation::EmulationReport report;
  double wall_s = 0.0;
  double events_per_sec = 0.0;
};

ModeResult
TimeRoom(const flex::emulation::EmulationConfig& config)
{
  flex::emulation::RoomEmulation room(config);
  const auto start = Clock::now();
  ModeResult result;
  result.report = room.Run();
  result.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
  result.events_per_sec =
      static_cast<double>(result.report.events_executed) / result.wall_s;
  return result;
}

}  // namespace

int
main()
{
  using namespace flex;
  bench::PrintHeader("bench_room_scale", "simulation engine",
                     "events/sec: incremental aggregation vs full rescans");
  const bool smoke = SmokeMode();

  // Shortened stage timeline (same shape as Section V-C: setup, steady
  // state, failover, recovery) so the large rooms finish in seconds.
  emulation::EmulationConfig base;
  base.placement_solve_seconds = bench::SolveSeconds(smoke ? 0.2 : 2.0);

  // FLEX_LIVE_PORT=<port> attaches the live observability plane for the
  // whole bench: every rung publishes to the hub, so a Prometheus
  // scraper (or plain curl) can watch the ladder progress in real time.
  // Strictly observer-only — timings and hashes are unaffected.
  obs::LiveHub live_hub;
  obs::StallWatchdog watchdog;
  static solver::LiveSolverStats solver_live;
  obs::ObservabilityServer* live_server = nullptr;
  if (const char* port = std::getenv("FLEX_LIVE_PORT");
      port != nullptr && *port != '\0') {
    obs::ObservabilityServerConfig server_config;
    server_config.port = std::atoi(port);
    server_config.run_info = {{"bench", "room_scale"},
                              {"smoke", smoke ? "1" : "0"}};
    static obs::ObservabilityServer server(live_hub, server_config);
    server.SetWatchdog(&watchdog);
    server.SetProfiler(&obs::Profiler::Global());
    server.AddLiveGauge("flex_solver_active", [] {
      return solver_live.active() ? 1.0 : 0.0;
    });
    server.AddLiveGauge("flex_solver_wave_nodes", [] {
      return static_cast<double>(solver_live.wave_nodes.load());
    });
    server.AddLiveGauge("flex_solver_open_nodes", [] {
      return static_cast<double>(solver_live.open_nodes.load());
    });
    server.AddLiveGauge("flex_solver_nodes_explored", [] {
      return static_cast<double>(solver_live.nodes_explored.load());
    });
    if (server.Start()) {
      live_server = &server;
      watchdog.Start();
      base.live = &live_hub;
      base.watchdog = &watchdog;
      base.solver_live = &solver_live;
      std::printf("live metrics on http://localhost:%d/metrics\n",
                  server.port());
    }
  }
  base.setup_duration = Seconds(smoke ? 5.0 : 30.0);
  base.failover_at = Seconds(smoke ? 10.0 : 60.0);
  base.restore_at = Seconds(smoke ? 15.0 : 100.0);
  base.end_at = Seconds(smoke ? 20.0 : 130.0);

  // Room ladder: the paper's 360-rack emulation room at the paper's own
  // telemetry cadences, then a mid-size and a ~10k-rack megaroom under
  // the room-scale monitoring workload described in the header.
  struct Rung {
    const char* name;
    power::RoomConfig room;
    double rack_poll_s;  // production BMS cadence on the scale rungs
    double monitor_s;    // 0: paper default (safety rides the sampler)
  };
  std::vector<Rung> ladder;
  ladder.push_back({"paper-360", power::RoomConfig::EmulationRoom(),
                    smoke ? 2.0 : 0.0, smoke ? 0.01 : 0.0});
  if (!smoke) {
    power::RoomConfig mid = power::RoomConfig::EmulationRoom();
    mid.num_ups = 8;
    mid.redundancy_y = 7;
    mid.ups_capacity = MegaWatts(4.0);
    mid.pdu_pairs_per_ups_pair = 1;  // 28 PDU pairs
    mid.rows_per_pdu_pair = 4;
    mid.racks_per_row = 20;  // 2240 racks
    mid.pdu_rating = MegaWatts(2.5);
    ladder.push_back({"mid-2240", mid, 30.0, 0.005});

    power::RoomConfig mega = power::RoomConfig::EmulationRoom();
    mega.num_ups = 12;
    mega.redundancy_y = 11;
    mega.ups_capacity = MegaWatts(11.0);
    mega.pdu_pairs_per_ups_pair = 1;  // 66 PDU pairs
    mega.rows_per_pdu_pair = 5;
    mega.racks_per_row = 30;  // 9900 racks
    mega.pdu_rating = MegaWatts(2.5);
    ladder.push_back({"mega-9900", mega, 30.0, 0.005});
  }
  const auto rung_config = [&base](const Rung& rung) {
    emulation::EmulationConfig config = base;
    config.room = rung.room;
    if (rung.rack_poll_s > 0.0)
      config.pipeline.rack_poll_period = Seconds(rung.rack_poll_s);
    config.monitor_period = Seconds(rung.monitor_s);
    return config;
  };

  std::printf("\nincremental engine (calendar queue + running sums):\n");
  std::printf("  %-12s %8s %10s %12s %14s %10s %10s\n", "room", "racks",
              "wall (s)", "events", "events/sec", "monitors", "deltas");
  ModeResult largest;
  int largest_racks = 0;
  for (const Rung& rung : ladder) {
    const ModeResult r = TimeRoom(rung_config(rung));
    std::printf("  %-12s %8d %10.3f %12llu %14.0f %10llu %10llu\n",
                rung.name, r.report.total_racks, r.wall_s,
                static_cast<unsigned long long>(r.report.events_executed),
                r.events_per_sec,
                static_cast<unsigned long long>(r.report.monitor_ticks),
                static_cast<unsigned long long>(r.report.aggregate_deltas));
    largest = r;
    largest_racks = r.report.total_racks;
  }

  // The acceptance measurement: the same largest room and monitoring
  // workload through the pre-PR cost model (full rescans + heap queue).
  emulation::EmulationConfig rescan_config = rung_config(ladder.back());
  rescan_config.incremental_aggregation = false;
  rescan_config.queue_impl = sim::EventQueue::Impl::kHeap;
  const ModeResult rescan = TimeRoom(rescan_config);
  const double speedup = largest.events_per_sec / rescan.events_per_sec;
  const double wall_speedup = rescan.wall_s / largest.wall_s;
  std::printf("\npre-PR full-rescan path, same %d-rack room and workload:\n",
              largest_racks);
  std::printf("  wall %.3f s, %llu events, %.0f events/sec\n", rescan.wall_s,
              static_cast<unsigned long long>(rescan.report.events_executed),
              rescan.events_per_sec);
  std::printf("  incremental speedup: %.1fx events/sec, %.1fx wall "
              "(acceptance: >= 10x events/sec at ~10k racks)\n",
              speedup, wall_speedup);

  // Alerting overhead: the same largest room with the time-series store
  // and alert engine sampling every tick. The history+rules ride the
  // existing sample events (no new events are scheduled), so the event
  // count is identical and the delta is pure per-sample bookkeeping —
  // the acceptance bar is < 2% events/sec at the ~10k-rack rung. The
  // ladder timeline is only ~0.1 s of wall time at this rung, where
  // scheduler and frequency noise alone swings events/sec by >10%, so
  // the overhead measurement stretches the post-restore steady state to
  // ~1 s of wall per run and estimates overhead as the MINIMUM over
  // interleaved plain/alerting pairs: back-to-back runs share machine
  // load so per-pair noise partially cancels, and a real per-sample
  // regression shows up in every pair while a single loaded pair
  // cannot fail the gate on its own.
  emulation::EmulationConfig plain_config = rung_config(ladder.back());
  if (!smoke)
    plain_config.end_at = Seconds(1300.0);
  emulation::EmulationConfig alerting_config = plain_config;
  alerting_config.alerts.enabled = true;
  const int overhead_reps = smoke ? 2 : 5;
  ModeResult plain_best;
  ModeResult alerting_best;
  double overhead_raw_pct = std::numeric_limits<double>::infinity();
  std::vector<double> pair_deltas_pct;
  for (int rep = 0; rep < overhead_reps; ++rep) {
    const ModeResult plain = TimeRoom(plain_config);
    if (plain.events_per_sec > plain_best.events_per_sec)
      plain_best = plain;
    const ModeResult alerting = TimeRoom(alerting_config);
    if (alerting.events_per_sec > alerting_best.events_per_sec)
      alerting_best = alerting;
    const double pair_pct =
        100.0 * (1.0 - alerting.events_per_sec / plain.events_per_sec);
    pair_deltas_pct.push_back(pair_pct);
    overhead_raw_pct = std::min(overhead_raw_pct, pair_pct);
  }
  // The min over noisy pairs can land below zero (the alerting run got
  // the luckier scheduling) — a negative "overhead" is measurement
  // noise, not a speedup, so the reported overhead clamps at zero. The
  // raw per-pair deltas are exported alongside it so the noise floor
  // stays visible in the JSON.
  const double overhead_pct = std::max(0.0, overhead_raw_pct);
  std::printf("\nalerting enabled, same %d-rack room (store + rules on the "
              "sample tick, min over %d interleaved pairs):\n",
              largest_racks, overhead_reps);
  std::printf("  baseline %.0f events/sec, alerting %.0f events/sec, "
              "%llu store samples, %llu alerts fired\n",
              plain_best.events_per_sec, alerting_best.events_per_sec,
              static_cast<unsigned long long>(
                  alerting_best.report.store_samples),
              static_cast<unsigned long long>(
                  alerting_best.report.alerts_fired));
  std::printf("  events/sec overhead: %.2f%% (raw min %.2f%%, acceptance: "
              "< 2%%)\n",
              overhead_pct, overhead_raw_pct);

  // Sweep determinism: 2 variants through 1 lane and through 2 lanes
  // must fingerprint identically (serial merge in seed order).
  emulation::SweepConfig sweep;
  sweep.base = base;  // paper-size room keeps the sweep quick
  sweep.base.failover_at = Seconds(smoke ? 10.0 : 20.0);
  sweep.base.restore_at = Seconds(smoke ? 11.0 : 30.0);
  sweep.base.end_at = Seconds(smoke ? 12.0 : 40.0);
  // Node-budgeted placement: the 1-lane and 2-lane sweeps each rebuild
  // their rooms, so a wall-clock solve budget could truncate the two
  // placements differently and fail the hash compare spuriously.
  sweep.base.placement_solve_seconds = 1e9;
  sweep.base.placement_max_nodes = smoke ? 500 : 4000;
  sweep.variants = 2;
  sweep.threads = 1;
  const emulation::SweepResult serial = emulation::RunEmulationSweep(sweep);
  sweep.threads = 2;
  const emulation::SweepResult parallel = emulation::RunEmulationSweep(sweep);
  const bool hash_match = serial.sample_hash == parallel.sample_hash;
  std::printf("\nparallel sweep determinism (%d variants):\n", sweep.variants);
  std::printf("  1-lane hash %016llx, %d-lane hash %016llx -> %s\n",
              static_cast<unsigned long long>(serial.sample_hash),
              parallel.lanes,
              static_cast<unsigned long long>(parallel.sample_hash),
              hash_match ? "identical" : "MISMATCH");

  obs::Observability observability;
  obs::MetricsRegistry& metrics = observability.metrics();
  metrics.gauge("room.racks").Set(static_cast<double>(largest_racks));
  metrics.gauge("room.monitor_hz")
      .Set(ladder.back().monitor_s > 0.0 ? 1.0 / ladder.back().monitor_s
                                         : 0.0);
  metrics.gauge("room.incremental.events_per_sec")
      .Set(largest.events_per_sec);
  metrics.gauge("room.incremental.wall_s").Set(largest.wall_s);
  metrics.gauge("room.rescan.events_per_sec").Set(rescan.events_per_sec);
  metrics.gauge("room.rescan.wall_s").Set(rescan.wall_s);
  metrics.gauge("room.rescan_speedup").Set(speedup);
  metrics.gauge("room.wall_speedup").Set(wall_speedup);
  metrics.gauge("room.events_executed")
      .Set(static_cast<double>(largest.report.events_executed));
  metrics.gauge("room.monitor_ticks")
      .Set(static_cast<double>(largest.report.monitor_ticks));
  metrics.gauge("room.aggregate_deltas")
      .Set(static_cast<double>(largest.report.aggregate_deltas));
  metrics.gauge("room.aggregate_resyncs")
      .Set(static_cast<double>(largest.report.aggregate_resyncs));
  metrics.gauge("room.verify_rescans")
      .Set(static_cast<double>(largest.report.verify_rescans));
  metrics.gauge("room.alerting.events_per_sec")
      .Set(alerting_best.events_per_sec);
  metrics.gauge("room.alerting.overhead_pct").Set(overhead_pct);
  metrics.gauge("room.alerting.overhead_raw_min_pct").Set(overhead_raw_pct);
  for (std::size_t rep = 0; rep < pair_deltas_pct.size(); ++rep) {
    metrics.gauge("room.alerting.pair_delta_pct." + std::to_string(rep))
        .Set(pair_deltas_pct[rep]);
  }
  metrics.gauge("room.alerting.store_samples")
      .Set(static_cast<double>(alerting_best.report.store_samples));
  metrics.gauge("room.alerting.alerts_fired")
      .Set(static_cast<double>(alerting_best.report.alerts_fired));
  metrics.gauge("room.sweep.lanes").Set(static_cast<double>(parallel.lanes));
  metrics.gauge("room.sweep.hash_match").Set(hash_match ? 1.0 : 0.0);
  bench::MaybeExportBenchJson("bench_room_scale", observability);

  if (live_server != nullptr) {
    live_hub.PublishMetrics(metrics.Snapshot());
    std::printf("\nlive plane served %llu scrapes across %llu publishes\n",
                static_cast<unsigned long long>(
                    live_server->requests_served()),
                static_cast<unsigned long long>(live_hub.publish_count()));
    watchdog.Stop();
    live_server->Stop();
  }

  if (!hash_match) {
    std::fprintf(stderr, "FAIL: parallel sweep diverged from serial run\n");
    return 1;
  }
  if (!smoke && speedup < 10.0) {
    std::fprintf(stderr,
                 "FAIL: incremental speedup %.1fx below the 10x bar\n",
                 speedup);
    return 1;
  }
  if (!smoke && overhead_pct >= 2.0) {
    std::fprintf(stderr,
                 "FAIL: alerting overhead %.2f%% at %d racks breaks the "
                 "2%% events/sec budget\n",
                 overhead_pct, largest_racks);
    return 1;
  }
  return 0;
}
