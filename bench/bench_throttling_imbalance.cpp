/**
 * @file
 * E5 / Fig. 10: throttling imbalance by placement policy.
 *
 * Paper result: Balanced Round-Robin beats Random; the Flex-Offline
 * variants improve further as the batching horizon grows, with
 * Flex-Offline-Long only slightly above Flex-Offline-Oracle.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "placement_study.hpp"

int
main()
{
  using namespace flex;
  bench::PrintHeader("bench_throttling_imbalance", "Fig. 10",
                     "throttling imbalance (max-min recoverable fraction) "
                     "per policy");

  const power::RoomTopology room(power::RoomConfig::EvaluationRoom());
  const workload::TraceConfig trace_config;
  const int traces = bench::NumTraces();
  const double solve = bench::SolveSeconds();
  std::printf("room: %.1f MW 4N/3 | traces: %d | MILP budget: %.1f s/batch\n\n",
              room.TotalProvisionedPower().megawatts(), traces, solve);

  const auto outcomes =
      bench::RunPlacementStudy(room, trace_config, traces, solve, 2021);

  std::printf("%-24s %7s %7s %7s %7s %7s\n", "policy", "min", "p25", "median",
              "p75", "max");
  for (const auto& outcome : outcomes)
    bench::PrintBoxRow(outcome.policy, outcome.imbalance, 1.0, "");

  std::printf("\npaper: imbalance improves Random -> BRR -> Flex-Offline, "
              "and with longer horizons\n");
  return 0;
}
