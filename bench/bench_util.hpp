/**
 * @file
 * Shared helpers for the experiment benches.
 *
 * Each bench binary regenerates one table or figure from the paper
 * (see DESIGN.md's experiment index) and prints paper-vs-measured rows.
 * Heavy ILP benches read FLEX_SOLVE_SECONDS / FLEX_BENCH_TRACES from the
 * environment so CI can trade fidelity for wall-clock time.
 */
#ifndef FLEX_BENCH_BENCH_UTIL_HPP_
#define FLEX_BENCH_BENCH_UTIL_HPP_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/export.hpp"
#include "obs/observability.hpp"

namespace flex::bench {

/** Per-batch MILP budget for Flex-Offline benches (seconds). */
inline double
SolveSeconds(double fallback = 1.0)
{
  if (const char* env = std::getenv("FLEX_SOLVE_SECONDS"))
    return std::atof(env) > 0.0 ? std::atof(env) : fallback;
  return fallback;
}

/** Number of shuffled trace variants (the paper uses 10). */
inline int
NumTraces(int fallback = 10)
{
  if (const char* env = std::getenv("FLEX_BENCH_TRACES")) {
    const int value = std::atoi(env);
    if (value > 0)
      return value;
  }
  return fallback;
}

/** Prints the standard bench header. */
inline void
PrintHeader(const std::string& experiment, const std::string& artifact,
            const std::string& what)
{
  std::printf("=============================================================="
              "==========\n");
  std::printf("%s — reproduces %s: %s\n", experiment.c_str(),
              artifact.c_str(), what.c_str());
  std::printf("=============================================================="
              "==========\n");
}

/**
 * Appends this bench's metrics snapshot as one JSON line to the
 * trajectory file named by FLEX_BENCH_JSON (e.g. BENCH_obs.json).
 * No-op when the variable is unset. @return true when a line was
 * written.
 */
inline bool
MaybeExportBenchJson(const std::string& bench_name,
                     const obs::Observability& observability)
{
  const char* path = std::getenv("FLEX_BENCH_JSON");
  if (path == nullptr || *path == '\0')
    return false;
  const bool ok = obs::AppendLine(
      path, obs::BenchJsonLine(bench_name, observability.metrics().Snapshot()));
  if (ok)
    std::printf("metrics appended to %s\n", path);
  else
    std::fprintf(stderr, "failed to write %s\n", path);
  return ok;
}

}  // namespace flex::bench

#endif  // FLEX_BENCH_BENCH_UTIL_HPP_
