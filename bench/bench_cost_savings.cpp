/**
 * @file
 * E12 / Sections I & VI: construction cost savings.
 *
 * Paper result: Flex increases server deployments by up to 33% (4N/3)
 * and saves $211M ($5/W) to $422M ($10/W) per 128 MW site, against a
 * ~3% infrastructure premium for Flex-ready batteries and upstream
 * devices.
 */
#include <cstdio>

#include "analysis/cost.hpp"
#include "bench_util.hpp"

int
main()
{
  using namespace flex;
  bench::PrintHeader("bench_cost_savings", "Sections I & VI",
                     "savings per 128 MW site vs. construction cost per "
                     "watt");

  std::printf("%8s %12s %14s %14s %14s\n", "$/W", "extra MW",
              "gross ($M)", "premium ($M)", "net ($M)");
  for (const double dollars : {5.0, 7.5, 10.0}) {
    analysis::CostParams params;
    params.dollars_per_watt = dollars;
    const analysis::CostResult r = analysis::EvaluateCost(params);
    std::printf("%8.2f %12.1f %14.1f %14.1f %14.1f\n", dollars,
                r.additional_capacity.megawatts(),
                r.gross_savings_dollars / 1e6, r.premium_dollars / 1e6,
                r.net_savings_dollars / 1e6);
  }

  std::printf("\nredundancy-shape sweep at $5/W:\n");
  std::printf("%8s %14s %14s\n", "design", "extra servers", "gross ($M)");
  const int shapes[][2] = {{2, 1}, {3, 2}, {4, 3}, {5, 4}, {6, 5}};
  for (const auto& shape : shapes) {
    analysis::CostParams params;
    params.redundancy_x = shape[0];
    params.redundancy_y = shape[1];
    const analysis::CostResult r = analysis::EvaluateCost(params);
    std::printf("   %dN/%d %13.1f%% %14.1f\n", shape[0], shape[1],
                100.0 * r.additional_server_fraction,
                r.gross_savings_dollars / 1e6);
  }

  std::printf("\npaper: +33%% servers; $211M at $5/W, $422M at $10/W per "
              "128 MW site; ~3%% premium\n");
  return 0;
}
