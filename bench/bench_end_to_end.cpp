/**
 * @file
 * E10 / Fig. 13: end-to-end Flex-Online emulation.
 *
 * Runs the paper's Section V-C experiment: a 4.8 MW room at ~80%
 * utilization, UPS failure at minute 12, restoration at minute 24.
 * Paper result: survivors spike above 1.2 MW, Flex-Online shuts down
 * ~64% of software-redundant racks and throttles ~51% of cap-able ones
 * within ~2 s, non-cap-able racks stay untouched, and everything
 * recovers after the UPS returns.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "emulation/room_emulation.hpp"
#include "emulation/sweep.hpp"
#include "obs/forensics.hpp"
#include "power/trip_curve.hpp"

int
main()
{
  using namespace flex;
  bench::PrintHeader("bench_end_to_end", "Fig. 13",
                     "UPS and rack power through a failover/recovery cycle");

  // Reaction budget = UPS tolerance at the worst-case 4N/3 failover
  // load, end of battery life (the paper's ~10 s window).
  obs::ObservabilityConfig obs_config;
  obs_config.tracer.budget =
      power::TripCurve::ForBatteryLife(power::BatteryLife::kEndOfLife)
          .ToleranceAt(4.0 / 3.0);
  obs::Observability observability(obs_config);

  emulation::EmulationConfig config;
  config.placement_solve_seconds = bench::SolveSeconds(2.0);
  config.obs = &observability;
  emulation::RoomEmulation emulation(config);
  const emulation::EmulationReport report = emulation.Run();

  std::printf("%8s %9s %9s %9s %9s %12s %6s %7s\n", "t(min)", "UPS0",
              "UPS1", "UPS2", "UPS3", "racks(MW)", "off", "capped");
  for (std::size_t i = 0; i < report.series.size(); i += 12) {
    const auto& s = report.series[i];
    std::printf("%8.1f %9.3f %9.3f %9.3f %9.3f %12.3f %6d %7d\n",
                s.t_seconds / 60.0, s.ups_mw[0], s.ups_mw[1], s.ups_mw[2],
                s.ups_mw[3], s.total_rack_mw, s.racks_off, s.racks_capped);
  }

  std::printf("\n%-46s %10s %10s\n", "metric", "paper", "measured");
  std::printf("%-46s %10s %9.0f%%\n", "software-redundant racks shut down",
              "64%", 100.0 * report.sr_shutdown_fraction);
  std::printf("%-46s %10s %9.0f%%\n", "cap-able racks throttled", "51%",
              100.0 * report.capable_capped_fraction);
  std::printf("%-46s %10s %10d\n", "non-cap-able racks acted on", "0",
              report.noncap_acted);
  std::printf("%-46s %10s %8.1f s\n", "corrective enforcement", "~2 s",
              report.enforcement_latency_seconds);
  std::printf("%-46s %10s %8.1f s\n", "time to bring room safe", "< 10 s",
              report.time_to_safe_seconds);
  std::printf("%-46s %10s %8.2f s\n", "p99.9 data latency", "< 1.5 s",
              report.data_latency_p999);
  std::printf("%-46s %10s %8.1f%%\n", "p95 latency increase (mean)", "+4.7%",
              100.0 * report.p95_increase_mean);
  std::printf("%-46s %10s %8.1f%%\n", "p95 latency increase (worst)", "14%",
              100.0 * report.p95_increase_worst);
  std::printf("%-46s %10s %10d\n", "power-emergency notifications sent",
              "> 0", report.notifications_published);
  std::printf("%-46s %10s %9.0f%%\n",
              "SR service capacity floor (during scale-out)", "-",
              100.0 * report.sr_capacity_min_fraction);
  std::printf("%-46s %10s %9.0f%%\n",
              "SR service capacity after AZ scale-out", "~100%",
              100.0 * report.sr_capacity_after_scaleout);
  std::printf("%-46s %10s %10d\n",
              "local auto-recoveries racing Flex (want 0)", "0",
              report.sr_inhibited_auto_recoveries);
  std::printf("%-46s %10s %9.0f%%\n", "lowest battery state of charge",
              "> 0%", 100.0 * report.min_battery_state_of_charge);
  std::printf("%-46s %10s %10s\n", "battery exhausted (cascading failure)",
              "no", report.battery_tripped ? "YES" : "no");
  std::printf("%-46s %10s %10s\n", "cascading failure", "none",
              report.safety_violated ? "VIOLATED" : "none");

  // Trace-variant sweep: the same room under FLEX_BENCH_TRACES
  // different seeds, fanned out across the shared thread pool (one room
  // per lane, serial merge in seed order). Demonstrates the paper's
  // headline numbers are not an artifact of one trace.
  emulation::SweepConfig sweep;
  sweep.base = config;
  sweep.base.obs = nullptr;  // lanes must not share the registry
  sweep.variants = bench::NumTraces(3);
  sweep.threads = 0;
  const emulation::SweepResult sweep_result =
      emulation::RunEmulationSweep(sweep);
  std::printf("\ntrace variants (%d seeds on %d lane%s):\n", sweep.variants,
              sweep_result.lanes, sweep_result.lanes == 1 ? "" : "s");
  std::printf("  %-6s %10s %10s %12s %10s %8s\n", "seed", "SR off",
              "capped", "safe (s)", "noncap", "safety");
  for (std::size_t i = 0; i < sweep_result.reports.size(); ++i) {
    const emulation::EmulationReport& variant = sweep_result.reports[i];
    std::printf("  %-6llu %9.0f%% %9.0f%% %12.1f %10d %8s\n",
                static_cast<unsigned long long>(config.seed + i),
                100.0 * variant.sr_shutdown_fraction,
                100.0 * variant.capable_capped_fraction,
                variant.time_to_safe_seconds, variant.noncap_acted,
                variant.safety_violated ? "VIOLATED" : "ok");
  }
  std::printf("  merged sample hash %016llx\n",
              static_cast<unsigned long long>(sweep_result.sample_hash));

  const obs::ReactionTracer& tracer = observability.tracer();
  obs::MetricsRegistry& metrics = observability.metrics();
  metrics.gauge("room.sweep.variants")
      .Set(static_cast<double>(sweep.variants));
  metrics.gauge("room.sweep.lanes")
      .Set(static_cast<double>(sweep_result.lanes));
  std::printf("\n%s",
              obs::SummaryTable(observability.metrics().Snapshot(), &tracer)
                  .c_str());
  bench::MaybeExportBenchJson("bench_end_to_end", observability);

  const bool reaction_ok =
      tracer.complete_count() > 0 &&
      tracer.within_budget_count() == tracer.complete_count();
  std::printf("reaction traces: %zu complete, %zu within the %.1f s budget\n",
              tracer.complete_count(), tracer.within_budget_count(),
              obs_config.tracer.budget.value());

  // The flight recorder runs throughout (always-on, fixed-size ring);
  // report what it held so overhead regressions show up in review.
  const obs::FlightRecorder& recorder = observability.recorder();
  std::printf("flight recorder: %zu records retained (capacity %zu, "
              "%llu dropped oldest-first)\n",
              recorder.size(), recorder.capacity(),
              static_cast<unsigned long long>(recorder.dropped_count()));

  const bool failed =
      report.safety_violated || report.battery_tripped || !reaction_ok;
  if (failed) {
    // Leave a forensic bundle behind so the failure can be triaged
    // offline (see EXPERIMENTS.md).
    obs::BundleSpec spec;
    spec.trigger = report.safety_violated ? "safety-violation"
                   : report.battery_tripped ? "battery-trip"
                                            : "reaction-budget-miss";
    spec.scenario = "end-to-end-emulation";
    spec.sim_time_s = config.end_at.value();
    spec.horizon_s = config.end_at.value();
    spec.replayable = false;  // the emulation room is not plan-driven
    spec.records = recorder.Records();
    spec.metrics = &observability.metrics();
    spec.tracer = &tracer;
    const std::string dir = obs::UniqueBundleDir(
        obs::ForensicsRootDir(), "bundle-end-to-end");
    std::string error;
    if (obs::WriteForensicBundle(dir, spec, &error))
      std::printf("forensic bundle: %s\n", dir.c_str());
    else
      std::fprintf(stderr, "bundle dump failed: %s\n", error.c_str());
  }
  return failed ? 1 : 0;
}
