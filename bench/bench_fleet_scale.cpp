/**
 * @file
 * Fleet-scale sharded-engine bench.
 *
 * Drives the FleetEmulation ladder from one ~10k-rack megaroom to an
 * 11-room, 100k+-rack fleet, all lanes stepping in parallel on the
 * shared pool with the serial epoch-barrier merge between tiles.
 * Reports fleet events/sec, per-lane utilization, and the merge
 * barrier's share of wall time — the three numbers that decide whether
 * sharding actually bought throughput or just bought barriers.
 *
 * Also proves the fleet's lane identity the same way the room-scale
 * bench proves the sweep's: a small fleet stepped on 1 lane and on 2
 * lanes must produce the same fleet hash (chained per-room epoch
 * fingerprints + final report hashes), exported as
 * fleet.lane_hash_match.
 *
 * Scaling is measured serial-vs-parallel on the mid fleet rung;
 * check_budget.sh gates the speedup and the 100k-rung events/sec floor
 * only when the machine actually has multiple cores (hw_concurrency is
 * stamped into the JSON by run_benches.sh).
 *
 * FLEX_SMOKE=1 shrinks the fleet to two paper-size rooms on a short
 * timeline — enough to exercise every barrier path in seconds.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "emulation/fleet_emulation.hpp"
#include "obs/http_export.hpp"
#include "power/substation.hpp"

namespace {

using Clock = std::chrono::steady_clock;

bool
SmokeMode()
{
  const char* env = std::getenv("FLEX_SMOKE");
  return env != nullptr && *env != '\0' && *env != '0';
}

struct FleetRun {
  flex::emulation::FleetReport report;
  int racks = 0;
  double wall_s = 0.0;
  double events_per_sec = 0.0;
};

/** Construction (serial placement solves) excluded; Run() timed. */
FleetRun
TimeFleet(const flex::emulation::FleetConfig& config)
{
  flex::emulation::FleetEmulation fleet(config);
  FleetRun run;
  run.racks = fleet.total_racks();
  const auto start = Clock::now();
  run.report = fleet.Run();
  run.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
  run.events_per_sec =
      static_cast<double>(run.report.events_executed) / run.wall_s;
  return run;
}

}  // namespace

int
main()
{
  using namespace flex;
  bench::PrintHeader("bench_fleet_scale", "fleet engine",
                     "sharded multi-room stepping: events/sec, lane "
                     "utilization, merge overhead");
  const bool smoke = SmokeMode();

  // Per-room base: the room-scale bench's megaroom (~9900 racks) under
  // the same room-scale monitoring workload (30 s rack telemetry,
  // 200 Hz safety monitor), on a shortened Section V-C timeline.
  emulation::EmulationConfig room;
  room.placement_solve_seconds = bench::SolveSeconds(smoke ? 0.2 : 2.0);
  room.setup_duration = Seconds(smoke ? 5.0 : 30.0);
  room.failover_at = Seconds(smoke ? 10.0 : 60.0);
  room.restore_at = Seconds(smoke ? 15.0 : 100.0);
  room.end_at = Seconds(smoke ? 20.0 : 130.0);
  room.alerts.enabled = true;  // lane-local stores + engines merge too
  if (!smoke) {
    power::RoomConfig mega = power::RoomConfig::EmulationRoom();
    mega.num_ups = 12;
    mega.redundancy_y = 11;
    mega.ups_capacity = MegaWatts(11.0);
    mega.pdu_pairs_per_ups_pair = 1;  // 66 PDU pairs
    mega.rows_per_pdu_pair = 5;
    mega.racks_per_row = 30;  // 9900 racks
    mega.pdu_rating = MegaWatts(2.5);
    room.room = mega;
    room.pipeline.rack_poll_period = Seconds(30.0);
    room.monitor_period = Seconds(0.005);
  } else {
    room.pipeline.rack_poll_period = Seconds(2.0);
    room.monitor_period = Seconds(0.01);
  }

  const auto fleet_config = [&room, smoke](int rooms, int threads) {
    emulation::FleetConfig config;
    config.room = room;
    config.rooms = rooms;
    config.threads = threads;
    config.epoch = Seconds(smoke ? 5.0 : 10.0);
    config.substation = power::SubstationConfig::ForRooms(
        rooms, room.room, /*headroom_fraction=*/0.9);
    return config;
  };

  // The ladder: every rung steps on the shared pool. The last rung is
  // the acceptance target — 100k+ racks in one fleet.
  const std::vector<int> ladder =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 4, 11};
  std::printf("\nfleet ladder (shared pool, %u hw threads):\n",
              std::thread::hardware_concurrency());
  std::printf("  %-12s %8s %6s %10s %12s %14s %9s %9s\n", "fleet", "racks",
              "lanes", "wall (s)", "events", "events/sec", "lane-util",
              "merge %");
  FleetRun largest;
  for (const int rooms : ladder) {
    const FleetRun run = TimeFleet(fleet_config(rooms, 0));
    std::printf("  %dx%-10d %8d %6d %10.3f %12llu %14.0f %9.2f %9.2f\n",
                rooms, run.racks / std::max(1, rooms), run.racks,
                run.report.lanes, run.wall_s,
                static_cast<unsigned long long>(run.report.events_executed),
                run.events_per_sec, run.report.lane_utilization,
                run.report.merge_overhead_pct);
    largest = run;
  }

  // Serial-vs-parallel scaling on the mid rung (bounded wall time; the
  // 100k rung would double the bench for the same signal).
  const int scaling_rooms = smoke ? 2 : 4;
  const FleetRun serial = TimeFleet(fleet_config(scaling_rooms, 1));
  const FleetRun parallel = TimeFleet(fleet_config(scaling_rooms, 0));
  const double speedup = parallel.events_per_sec / serial.events_per_sec;
  std::printf("\nscaling, %d rooms: serial %.0f events/sec, %d-lane %.0f "
              "events/sec -> %.2fx\n",
              scaling_rooms, serial.events_per_sec, parallel.report.lanes,
              parallel.events_per_sec, speedup);

  // Lane identity: the same small fleet on 1 lane and on 2 lanes must
  // hash identically (node-budgeted placement so machine speed cannot
  // perturb the rooms).
  emulation::EmulationConfig ident_room;
  ident_room.setup_duration = Seconds(5.0);
  ident_room.failover_at = Seconds(10.0);
  ident_room.restore_at = Seconds(15.0);
  ident_room.end_at = Seconds(20.0);
  ident_room.placement_solve_seconds = 1e9;
  ident_room.placement_max_nodes = smoke ? 500 : 4000;
  ident_room.alerts.enabled = true;
  emulation::FleetConfig ident;
  ident.room = ident_room;
  ident.rooms = 2;
  ident.epoch = Seconds(5.0);
  ident.substation =
      power::SubstationConfig::ForRooms(2, ident_room.room, 0.9);
  ident.threads = 1;
  emulation::FleetEmulation one_lane(ident);
  const emulation::FleetReport one = one_lane.Run();
  ident.threads = 2;
  emulation::FleetEmulation two_lanes(ident);
  const emulation::FleetReport two = two_lanes.Run();
  const bool hash_match = one.fleet_hash == two.fleet_hash &&
                          one.alert_fingerprint == two.alert_fingerprint;
  std::printf("\nlane identity (2 rooms): 1-lane hash %016llx, 2-lane hash "
              "%016llx -> %s\n",
              static_cast<unsigned long long>(one.fleet_hash),
              static_cast<unsigned long long>(two.fleet_hash),
              hash_match ? "identical" : "MISMATCH");

  obs::Observability observability;
  obs::MetricsRegistry& metrics = observability.metrics();
  metrics.gauge("fleet.racks").Set(static_cast<double>(largest.racks));
  metrics.gauge("fleet.rooms")
      .Set(static_cast<double>(ladder.back()));
  metrics.gauge("fleet.lanes").Set(static_cast<double>(largest.report.lanes));
  metrics.gauge("fleet.epochs")
      .Set(static_cast<double>(largest.report.epochs));
  metrics.gauge("fleet.wall_s").Set(largest.wall_s);
  metrics.gauge("fleet.events_executed")
      .Set(static_cast<double>(largest.report.events_executed));
  metrics.gauge("fleet.events_per_sec").Set(largest.events_per_sec);
  metrics.gauge("fleet.lane_utilization")
      .Set(largest.report.lane_utilization);
  metrics.gauge("fleet.merge_overhead_pct")
      .Set(largest.report.merge_overhead_pct);
  metrics.gauge("fleet.merge_wall_s").Set(largest.report.merge_wall_seconds);
  metrics.gauge("fleet.step_wall_s").Set(largest.report.step_wall_seconds);
  metrics.gauge("fleet.alert_edges")
      .Set(static_cast<double>(largest.report.alert_timeline.size()));
  metrics.gauge("fleet.substation.peak_utilization")
      .Set(largest.report.peak_substation_utilization);
  metrics.gauge("fleet.substation.overload_epochs")
      .Set(static_cast<double>(largest.report.substation_overload_epochs));
  metrics.gauge("fleet.scaling.rooms")
      .Set(static_cast<double>(scaling_rooms));
  metrics.gauge("fleet.scaling.serial_events_per_sec")
      .Set(serial.events_per_sec);
  metrics.gauge("fleet.scaling.parallel_events_per_sec")
      .Set(parallel.events_per_sec);
  metrics.gauge("fleet.scaling.speedup").Set(speedup);
  metrics.gauge("fleet.lane_hash_match").Set(hash_match ? 1.0 : 0.0);
  bench::MaybeExportBenchJson("bench_fleet_scale", observability);

  if (!hash_match) {
    std::fprintf(stderr, "FAIL: fleet diverged across lane counts\n");
    return 1;
  }
  if (!smoke && largest.racks < 100000) {
    std::fprintf(stderr, "FAIL: largest fleet rung is %d racks (< 100k)\n",
                 largest.racks);
    return 1;
  }
  return 0;
}
