/**
 * @file
 * E14 / Figs. 1 and 4: conventional vs. Flex power profiles.
 *
 * Generates a 48-hour diurnal utilization profile and shows it in both
 * regimes: a conventional room whose allocation is capped at the 75%
 * failover budget (reserved power idle), and a Flex room allocated to
 * 100% whose peaks ride above the failover budget. A supply failure is
 * injected at hour 30: the conventional room stays under the surviving
 * capacity by construction, while the Flex room's corrective actions
 * shave the overdraw within seconds.
 */
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"

int
main()
{
  using namespace flex;
  bench::PrintHeader("bench_power_profiles", "Figs. 1 and 4",
                     "48 h power profile: conventional (25% reserved) vs. "
                     "Flex (zero reserved)");

  const double provisioned_mw = 9.6;
  const double budget_fraction = 0.75;  // 4N/3 failover budget
  const double failure_hour = 30.0;
  const double repair_hour = 33.0;
  Rng rng(7);

  std::printf("%6s %14s %12s %16s %14s\n", "hour", "conventional",
              "flex", "surviving-cap", "flex-action");
  for (double hour = 0.0; hour <= 48.0; hour += 2.0) {
    // Diurnal shape: peak mid-day, 17% dip at night.
    const double diurnal =
        0.72 - 0.085 + 0.085 * std::sin((hour - 6.0) / 24.0 * 2.0 * M_PI);
    const double noise = 0.015 * rng.Normal();
    const double utilization = std::clamp(diurnal + noise, 0.4, 1.0);

    // Conventional: only 75% of provisioned is allocated at all.
    const double conventional = utilization * budget_fraction * provisioned_mw;
    // Flex: the full provisioned power is allocated.
    double flex_draw = utilization * provisioned_mw;

    const bool failed = hour >= failure_hour && hour < repair_hour;
    // Surviving capacity after one of four supplies is lost.
    const double surviving = failed ? provisioned_mw * budget_fraction
                                    : provisioned_mw;
    const char* action = "-";
    if (failed && flex_draw > surviving) {
      action = "shave";
      flex_draw = surviving * 0.98;  // corrective actions engage
    }
    std::printf("%6.0f %11.2f MW %9.2f MW %13.2f MW %14s\n", hour,
                conventional, flex_draw, surviving, action);
  }

  std::printf("\npaper: conventional peaks never exceed the failover "
              "budget (reserve wasted);\n"
              "       Flex rides above it and only shaves during the rare "
              "failure window\n");
  return 0;
}
