/**
 * @file
 * E8 / Figs. 8 and 11: impact function library.
 *
 * Prints the example impact functions for Microsoft's production
 * services (Fig. 8 A/B/C) and the four simulation scenarios (Fig. 11)
 * sampled across the affected-rack fraction axis.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "workload/impact.hpp"

namespace {

void
PrintCurve(const char* name, const flex::workload::ImpactFunction& f)
{
  std::printf("%-14s", name);
  for (double x = 0.0; x <= 1.0001; x += 0.1)
    std::printf(" %5.2f", f(std::min(1.0, x)));
  std::printf("\n");
}

}  // namespace

int
main()
{
  using namespace flex;
  bench::PrintHeader("bench_impact_functions", "Figs. 8 and 11",
                     "impact vs. fraction of affected racks");

  std::printf("%-14s", "x =");
  for (double x = 0.0; x <= 1.0001; x += 0.1)
    std::printf(" %5.2f", x);
  std::printf("\n\nFig. 8 example functions:\n");
  PrintCurve("A (VM svc)", workload::ImpactFunction::Fig8A());
  PrintCurve("B (stateless)", workload::ImpactFunction::Fig8B());
  PrintCurve("C (stateful)", workload::ImpactFunction::Fig8C());

  std::printf("\nFig. 11 scenarios (SR = software-redundant curve, "
              "CAP = cap-able curve):\n");
  for (const auto& scenario : workload::ImpactScenario::AllScenarios()) {
    std::printf("%s:\n", scenario.name.c_str());
    PrintCurve("  SR", scenario.software_redundant);
    PrintCurve("  CAP", scenario.capable);
  }

  std::printf("\npaper: A protects critical management racks; B is free "
              "until ~60%%; C has a free growth buffer.\n");
  return 0;
}
