/**
 * @file
 * E4 / Fig. 9: stranded power by placement policy.
 *
 * Paper result: all policies stay under 10% stranded power; Balanced
 * Round-Robin beats Random; Flex-Offline-Short cuts the median by ~27%
 * vs. Balanced Round-Robin; Flex-Offline-Long matches Short's median
 * with a narrower range; Flex-Offline-Oracle reaches < 2%.
 */
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "obs/export.hpp"
#include "placement_study.hpp"

int
main()
{
  using namespace flex;
  bench::PrintHeader("bench_stranded_power", "Fig. 9",
                     "stranded power (% of provisioned) per policy over "
                     "shuffled demand traces");

  const power::RoomTopology room(power::RoomConfig::EvaluationRoom());
  const workload::TraceConfig trace_config;
  const int traces = bench::NumTraces();
  const double solve = bench::SolveSeconds();
  std::printf("room: %.1f MW 4N/3 | traces: %d | MILP budget: %.1f s/batch\n\n",
              room.TotalProvisionedPower().megawatts(), traces, solve);

  const auto outcomes = bench::RunPlacementStudy(
      room, trace_config, traces, solve, 2021, /*include_first_fit=*/true);

  std::printf("%-24s %7s %7s %7s %7s %7s\n", "policy", "min", "p25", "median",
              "p75", "max");
  double brr_median = 0.0;
  double short_median = 0.0;
  for (const auto& outcome : outcomes) {
    bench::PrintBoxRow(outcome.policy, outcome.stranded);
    const BoxStats box = BoxStats::FromSamples(outcome.stranded);
    if (outcome.policy == "Balanced Round-Robin")
      brr_median = box.median;
    if (outcome.policy == "Flex-Offline-Short")
      short_median = box.median;
  }

  std::printf("\npaper: Flex-Offline-Short median ~27%% below Balanced "
              "Round-Robin; Oracle < 2%%\n");
  if (brr_median > 0.0) {
    std::printf("measured: Flex-Offline-Short median %.1f%% below Balanced "
                "Round-Robin (%.2f%% vs %.2f%%)\n",
                100.0 * (1.0 - short_median / brr_median),
                100.0 * short_median, 100.0 * brr_median);
  }

  // Optional: per-batch MILP convergence curves of one Short placement,
  // as CSV sections separated by "# batch N" comment lines.
  if (const char* path = std::getenv("FLEX_SOLVER_TRACE");
      path != nullptr && *path != '\0') {
    Rng rng(2021);
    const auto demand = workload::GenerateTrace(
        trace_config, room.TotalProvisionedPower(), rng);
    offline::FlexOfflinePolicy policy = offline::FlexOfflinePolicy::Short(solve);
    policy.Place(room, demand);
    std::string csv;
    for (std::size_t i = 0; i < policy.solve_traces().size(); ++i) {
      csv += "# batch " + std::to_string(i) + "\n";
      csv += policy.solve_traces()[i].ToCsv();
    }
    if (obs::WriteFile(path, csv)) {
      std::printf("convergence curves (%zu batches) written to %s\n",
                  policy.solve_traces().size(), path);
    } else {
      std::fprintf(stderr, "failed to write %s\n", path);
    }
  }
  return 0;
}
