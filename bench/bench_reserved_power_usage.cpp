/**
 * @file
 * Comparison claim (paper Sections I & VII): how much of the reserved
 * power each runtime model can allocate.
 *
 * Paper claim: a conventional room strands the entire reserve (25% in
 * 4N/3); CapMaestro-style throttle-only redundancy exploitation
 * recovers part of it; Flex — with availability-aware shutdown of
 * software-redundant racks — can use the entire reserved power. The
 * same Balanced Round-Robin heuristic places the same traces under all
 * three corrective models, isolating the effect of the runtime's
 * capabilities.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "placement_study.hpp"

int
main()
{
  using namespace flex;
  bench::PrintHeader("bench_reserved_power_usage", "Sections I & VII",
                     "allocatable power by corrective-action model");

  const power::RoomTopology room(power::RoomConfig::EvaluationRoom());
  const int traces = bench::NumTraces();
  Rng rng(2021);
  const auto base = workload::GenerateTrace(
      workload::TraceConfig{}, room.TotalProvisionedPower(), rng);
  const auto variants = workload::ShuffledVariants(base, traces, rng);

  const double budget_fraction =
      room.FailoverBudget() / room.TotalProvisionedPower();
  std::printf("room: %.1f MW provisioned, failover budget %.0f%%, reserve "
              "%.0f%%\n\n",
              room.TotalProvisionedPower().megawatts(),
              100.0 * budget_fraction, 100.0 * (1.0 - budget_fraction));

  struct ModelRun {
    offline::BalancedRoundRobinPolicy policy;
    const char* reserve_claim;
  };
  ModelRun runs[] = {
      {offline::MakeConventionalPolicy(), "0% of reserve usable"},
      {offline::MakeCapMaestroLikePolicy(), "part of the reserve"},
      {offline::BalancedRoundRobinPolicy(), "the entire reserve"},
  };

  std::printf("%-34s %12s %16s %22s\n", "corrective model",
              "median alloc", "of provisioned", "reserve utilized");
  for (ModelRun& run : runs) {
    std::vector<double> allocated_fraction;
    for (const auto& variant : variants) {
      const offline::Placement placement =
          run.policy.Place(room, variant);
      allocated_fraction.push_back(placement.PlacedPower() /
                                   room.TotalProvisionedPower());
    }
    const double median = BoxStats::FromSamples(allocated_fraction).median;
    const double reserve_used =
        std::max(0.0, median - budget_fraction) / (1.0 - budget_fraction);
    std::printf("%-34s %9.2f MW %15.1f%% %21.1f%%\n",
                run.policy.Name().c_str(),
                median * room.TotalProvisionedPower().megawatts(),
                100.0 * median, 100.0 * reserve_used);
  }

  std::printf("\npaper: conventional rooms reserve 25%% (4N/3); CapMaestro "
              "uses some of it via throttling;\n"
              "       Flex's availability awareness unlocks all of it\n");
  return 0;
}
