/**
 * @file
 * Sections I & VII: composing Flex with power oversubscription.
 *
 * Paper claim: allocating the reserve (Flex) is orthogonal to
 * oversubscribing underutilized allocations; the two stack. This bench
 * computes the statistically safe oversubscription ratio from the rack
 * utilization model and the combined density gain.
 */
#include <cstdio>

#include "analysis/oversubscription.hpp"
#include "bench_util.hpp"

int
main()
{
  using namespace flex;
  bench::PrintHeader("bench_oversubscription", "Sections I & VII",
                     "density gain of Flex x oversubscription");

  std::printf("safe oversubscription ratio vs. fleet size "
              "(mean util 72%%, stddev 10%%, 1e-4 violation):\n");
  std::printf("%10s %14s %16s\n", "racks", "p(1-1e-4) util", "ratio");
  for (const int racks : {1, 16, 64, 200, 600}) {
    analysis::OversubscriptionParams params;
    params.num_racks = racks;
    const auto result = analysis::EvaluateOversubscription(params);
    std::printf("%10d %13.1f%% %16.2fx\n", racks,
                100.0 * result.provisioning_quantile,
                result.oversubscription_ratio);
  }

  analysis::OversubscriptionParams room;
  room.num_racks = 600;
  const double ratio =
      analysis::EvaluateOversubscription(room).oversubscription_ratio;
  std::printf("\ncombined density gain over a conventional 4N/3 room:\n");
  std::printf("  Flex alone:                +%.0f%%\n",
              100.0 * analysis::CombinedDensityGain(4, 3, 1.0));
  std::printf("  oversubscription alone:    +%.0f%%\n",
              100.0 * (ratio - 1.0));
  std::printf("  Flex + oversubscription:   +%.0f%%\n",
              100.0 * analysis::CombinedDensityGain(4, 3, ratio));
  std::printf("\npaper: the two techniques are orthogonal and can be "
              "combined for further density\n");
  return 0;
}
