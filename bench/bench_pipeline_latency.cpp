/**
 * @file
 * E13 / Section VI: telemetry and actuation latency envelope.
 *
 * Paper result (production): p99.9 data latency under 1.5 s including
 * windowing, ~2 s p99.9 action latency for a ~10 MW room, 3.5 s end to
 * end — comfortably below the ~10 s device tolerance at end of battery
 * life. Also demonstrates that the pipeline keeps delivering through
 * single-component failures (no single point of failure).
 */
#include <cstdio>

#include "actuation/rack_manager.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "obs/observability.hpp"
#include "power/trip_curve.hpp"
#include "sim/event_queue.hpp"
#include "telemetry/pipeline.hpp"

namespace {

using namespace flex;

/** Steady synthetic room: constant truth power per device. */
class SteadySource : public telemetry::PowerSource {
 public:
  Watts
  CurrentPower(telemetry::DeviceId device) const override
  {
    return device.kind == telemetry::DeviceKind::kUps
               ? MegaWatts(1.0)
               : KiloWatts(14.0 + 0.01 * device.index);
  }
};

}  // namespace

int
main()
{
  bench::PrintHeader("bench_pipeline_latency", "Section VI (latency)",
                     "telemetry data latency, action latency, end-to-end "
                     "budget");

  sim::EventQueue queue;
  SteadySource source;
  obs::Observability observability;
  observability.BindClock(queue);
  const int num_racks = 600;  // ~10 MW room at ~16 kW/rack
  telemetry::PipelineConfig pipeline_config;
  pipeline_config.obs = &observability;
  telemetry::TelemetryPipeline pipeline(queue, source, 4, num_racks,
                                        pipeline_config, 2021);
  pipeline.Subscribe([](const telemetry::DeviceReading&) {});
  pipeline.Start();
  queue.RunUntil(Minutes(10.0));
  pipeline.Stop();
  queue.RunUntil(Minutes(10.0) + Seconds(5.0));

  const auto& samples = pipeline.latency_samples();
  std::printf("telemetry: %zu readings delivered over 10 minutes\n",
              pipeline.delivered_count());
  std::printf("%-34s %10s %10s\n", "metric", "paper", "measured");
  std::printf("%-34s %10s %8.2f s\n", "data latency p50", "-",
              Percentile(samples, 50.0));
  std::printf("%-34s %10s %8.2f s\n", "data latency p99", "-",
              Percentile(samples, 99.0));
  const double data_p999 = Percentile(samples, 99.9);
  std::printf("%-34s %10s %8.2f s\n", "data latency p99.9", "< 1.5 s",
              data_p999);

  // Action latency over a burst of cap commands on every rack.
  sim::EventQueue action_queue;
  actuation::RackManagerConfig rm_config;
  rm_config.obs = &observability;
  actuation::ActuationPlane plane(action_queue, num_racks, rm_config, 7);
  for (int r = 0; r < num_racks; ++r)
    plane.rack(r).Throttle(KiloWatts(12.0), [](bool) {});
  action_queue.RunUntil(Seconds(60.0));
  const std::vector<double> action_samples = plane.AllActionLatencies();
  const double action_p999 = Percentile(action_samples, 99.9);
  std::printf("%-34s %10s %8.2f s\n", "action latency p99.9", "~2 s",
              action_p999);

  const double end_to_end = data_p999 + action_p999;
  const power::TripCurve curve =
      power::TripCurve::ForBatteryLife(power::BatteryLife::kEndOfLife);
  const double budget = curve.ToleranceAt(4.0 / 3.0).value();
  std::printf("%-34s %10s %8.2f s\n", "end-to-end (data + action)", "3.5 s",
              end_to_end);
  std::printf("%-34s %10s %8.2f s\n", "UPS tolerance at 133% (budget)",
              "~10 s", budget);
  std::printf("end-to-end %s the tolerance budget\n\n",
              end_to_end < budget ? "fits within" : "EXCEEDS");

  // No single point of failure: kill one component of every stage and
  // confirm readings still flow.
  sim::EventQueue faulty_queue;
  telemetry::TelemetryPipeline faulty(
      faulty_queue, source, 4, 32, telemetry::PipelineConfig{}, 99);
  std::size_t delivered = 0;
  faulty.Subscribe([&](const telemetry::DeviceReading&) { ++delivered; });
  faulty.SetPollerFailed(0, true);
  faulty.SetBusFailed(1, true);
  faulty.SetMeterFailed({telemetry::DeviceKind::kUps, 0}, 0, true);
  faulty.Start();
  faulty_queue.RunUntil(Minutes(1.0));
  std::printf("fault injection (1 poller + 1 bus + 1 meter down): "
              "%zu readings still delivered in 60 s -> %s\n",
              delivered, delivered > 0 ? "no SPOF" : "PIPELINE DEAD");

  // Machine-readable results: the bench-level aggregates go in as
  // gauges next to the component metrics recorded during the run.
  obs::MetricsRegistry& metrics = observability.metrics();
  metrics.gauge("bench.data_latency_p999_s").Set(data_p999);
  metrics.gauge("bench.action_latency_p999_s").Set(action_p999);
  metrics.gauge("bench.end_to_end_s").Set(end_to_end);
  metrics.gauge("bench.budget_s").Set(budget);
  std::printf("\n%s", obs::SummaryTable(metrics.Snapshot()).c_str());
  bench::MaybeExportBenchJson("bench_pipeline_latency", observability);
  return delivered > 0 && end_to_end < budget ? 0 : 1;
}
