/**
 * @file
 * E11 / Section V-C text: p95 latency impact of throttling.
 *
 * Paper result: with flex power at 85% of provisioned rack power, the
 * TPC-E-like benchmark's p95 latency rises only 4.7% on throttled racks
 * (14% worst case during the highest rack power draw). Sweeps the flex
 * power fraction to show how stricter caps trade recoverable power for
 * latency.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "emulation/room_emulation.hpp"

int
main()
{
  using namespace flex;
  bench::PrintHeader("bench_latency_impact", "Section V-C (latency)",
                     "p95 latency inflation of throttled racks vs. flex "
                     "power");

  // Analytic curve first: the M/M/1 tail model at various cap depths for
  // a rack demanding 90% of its allocation.
  const emulation::LatencyModel model(0.25);
  std::printf("analytic p95 inflation for a rack demanding 0.90 of "
              "allocation:\n");
  std::printf("%12s %14s\n", "flex power", "p95 inflation");
  for (const double flex : {0.95, 0.90, 0.85, 0.80, 0.75}) {
    const double speed = emulation::LatencyModel::SpeedUnderCap(
        Watts(0.90), Watts(flex));
    std::printf("%11.0f%% %+13.1f%%\n", 100.0 * flex,
                100.0 * (model.P95Factor(speed) - 1.0));
  }

  // Emulated failover episodes at several flex power settings.
  std::printf("\nemulated failover (shortened timeline):\n");
  std::printf("%12s %16s %17s %14s\n", "flex power", "mean p95 incr",
              "worst p95 incr", "SR shutdown");
  for (const double flex : {0.90, 0.85, 0.80, 0.75}) {
    emulation::EmulationConfig config;
    config.flex_power_fraction = flex;
    config.setup_duration = Seconds(30.0);
    config.failover_at = Seconds(120.0);
    config.restore_at = Seconds(300.0);
    config.end_at = Seconds(360.0);
    config.seed = 40 + static_cast<std::uint64_t>(100.0 * flex);
    emulation::RoomEmulation emulation(config);
    const emulation::EmulationReport report = emulation.Run();
    std::printf("%11.0f%% %+15.1f%% %+16.1f%% %13.0f%%\n", 100.0 * flex,
                100.0 * report.p95_increase_mean,
                100.0 * report.p95_increase_worst,
                100.0 * report.sr_shutdown_fraction);
  }

  std::printf("\npaper: +4.7%% mean and +14%% worst-case p95 at flex power "
              "= 85%%\n");
  return 0;
}
