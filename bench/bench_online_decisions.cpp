/**
 * @file
 * E9 / Fig. 12: Flex-Online corrective actions vs. room utilization.
 *
 * For each impact scenario (Fig. 11) and each room utilization between
 * 74% and 85%, fails every UPS in turn, feeds Algorithm 1 a rack power
 * snapshot drawn from the statistical rack-power model, and reports the
 * mean +/- stdev (across UPS failures) of impacted racks (% of all
 * racks), racks shut down (% of shut-down-able racks) and racks
 * throttled (% of cap-able racks).
 *
 * Paper result: no actions below ~74% utilization; up to 30-40% of racks
 * impacted at the high end; Extreme-1 impacts the fewest racks (most
 * aggressive shutdowns, fewest throttles); Extreme-2 throttles all
 * candidates before shutting anything down.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "offline/flex_offline.hpp"
#include "online/decision.hpp"
#include "power/loads.hpp"
#include "workload/rack_power.hpp"
#include "workload/trace.hpp"

namespace {

using namespace flex;

struct ScenarioRow {
  double utilization;
  RunningStats impacted;
  RunningStats shutdown;
  RunningStats throttled;
};

}  // namespace

int
main()
{
  bench::PrintHeader("bench_online_decisions", "Fig. 12",
                     "Flex-Online corrective actions during failover vs. "
                     "utilization");

  const power::RoomTopology room(power::RoomConfig::EvaluationRoom());
  Rng rng(2021);
  const auto trace = workload::GenerateTrace(
      workload::TraceConfig{}, room.TotalProvisionedPower(), rng);
  offline::FlexOfflinePolicy policy =
      offline::FlexOfflinePolicy::Short(bench::SolveSeconds());
  const offline::Placement placement = policy.Place(room, trace);
  const std::vector<offline::Rack> layout =
      offline::BuildRackLayout(room, placement);

  int sr_total = 0;
  int capable_total = 0;
  std::vector<Watts> allocations;
  for (const offline::Rack& rack : layout) {
    allocations.push_back(rack.allocated);
    if (rack.category == workload::Category::kSoftwareRedundant)
      ++sr_total;
    if (rack.category == workload::Category::kNonRedundantCapable)
      ++capable_total;
  }
  std::printf("placed racks: %zu (%d SR, %d cap-able)\n\n", layout.size(),
              sr_total, capable_total);

  const workload::RackPowerModel power_model;
  for (const workload::ImpactScenario& scenario :
       workload::ImpactScenario::AllScenarios()) {
    // Register the scenario's functions for every workload by category.
    online::ImpactRegistry registry;
    for (const offline::Rack& rack : layout) {
      if (rack.category == workload::Category::kSoftwareRedundant)
        registry.emplace(rack.workload, scenario.software_redundant);
      else if (rack.category == workload::Category::kNonRedundantCapable)
        registry.emplace(rack.workload, scenario.capable);
    }

    std::printf("--- scenario %s ---\n", scenario.name.c_str());
    std::printf("%6s | %16s | %16s | %16s\n", "util", "impacted (% all)",
                "shutdown (% SR)", "throttled (% cap)");
    for (double utilization = 0.74; utilization <= 0.851;
         utilization += 0.01) {
      ScenarioRow row;
      row.utilization = utilization;
      for (power::UpsId failed = 0; failed < room.NumUpses(); ++failed) {
        const std::vector<Watts> draws = power_model.SampleAtUtilization(
            allocations, utilization, rng);
        power::PduPairLoads pdu_loads(
            static_cast<std::size_t>(room.NumPduPairs()), Watts(0.0));
        for (std::size_t i = 0; i < layout.size(); ++i)
          pdu_loads[static_cast<std::size_t>(layout[i].pdu_pair)] += draws[i];

        online::DecisionInput input;
        input.impact = registry;
        input.buffer = KiloWatts(10.0);
        const std::vector<Watts> ups =
            power::FailoverUpsLoads(room, pdu_loads, failed);
        for (power::UpsId u = 0; u < room.NumUpses(); ++u) {
          input.ups_power.push_back(ups[static_cast<std::size_t>(u)]);
          input.ups_limit.push_back(room.UpsCapacity(u));
        }
        for (power::PduPairId p = 0; p < room.NumPduPairs(); ++p)
          input.pdu_to_ups.push_back(room.UpsesOfPduPair(p));
        for (std::size_t i = 0; i < layout.size(); ++i) {
          online::RackSnapshot snapshot;
          snapshot.rack_id = layout[i].id;
          snapshot.workload = layout[i].workload;
          snapshot.category = layout[i].category;
          snapshot.pdu_pair = layout[i].pdu_pair;
          snapshot.current_power = draws[i];
          snapshot.flex_power = layout[i].capped;
          input.racks.push_back(std::move(snapshot));
        }

        const online::DecisionResult result = online::DecideActions(input);
        int shutdowns = 0;
        int throttles = 0;
        for (const online::Action& action : result.actions) {
          if (action.type == online::ActionType::kShutdown)
            ++shutdowns;
          else
            ++throttles;
        }
        row.impacted.Add(100.0 * (shutdowns + throttles) /
                         static_cast<double>(layout.size()));
        row.shutdown.Add(sr_total ? 100.0 * shutdowns / sr_total : 0.0);
        row.throttled.Add(
            capable_total ? 100.0 * throttles / capable_total : 0.0);
      }
      std::printf("%5.0f%% | %7.1f +/- %4.1f | %7.1f +/- %4.1f | "
                  "%7.1f +/- %4.1f\n",
                  100.0 * row.utilization, row.impacted.mean(),
                  row.impacted.stddev(), row.shutdown.mean(),
                  row.shutdown.stddev(), row.throttled.mean(),
                  row.throttled.stddev());
    }
    std::printf("\n");
  }

  std::printf("paper: Extreme-1 impacts the fewest racks (aggressive "
              "shutdown, no throttling);\n"
              "       Extreme-2 throttles everything before any shutdown; "
              "realistic scenarios sit between\n");
  return 0;
}
