#!/usr/bin/env bash
# Runs the two latency benches with machine-readable export enabled,
# collects their metric snapshots into BENCH_obs.json (one JSON line per
# bench), and verifies the paper's temporal safety claim: the p99
# end-to-end reaction must beat the UPS tolerance window (~10 s at end
# of battery life, Section IV-E).
#
# Usage: scripts/check_budget.sh [build-dir] [output-json]
#   build-dir    defaults to ./build (or FLEX_BUILD_DIR)
#   output-json  defaults to <build-dir>/BENCH_obs.json (or FLEX_BENCH_JSON)
#
# Exit status: 0 when the reaction budget holds, non-zero otherwise.
# The export format is line-oriented JSON with fixed key order, so this
# script needs only sed/awk — no JSON parser.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${FLEX_BUILD_DIR:-${repo_root}/build}}"
out_json="${2:-${FLEX_BENCH_JSON:-${build_dir}/BENCH_obs.json}}"

for bench in bench_pipeline_latency bench_end_to_end; do
  if [[ ! -x "${build_dir}/bench/${bench}" ]]; then
    echo "check_budget: ${build_dir}/bench/${bench} not built" >&2
    echo "  (build first: cmake --build ${build_dir} --target ${bench})" >&2
    exit 2
  fi
done

rm -f "${out_json}"
# On failure, bench_end_to_end leaves a forensic bundle here.
forensics_dir="${FLEX_FORENSICS_DIR:-${build_dir}/forensics}"
echo "check_budget: running benches, exporting to ${out_json}"
FLEX_BENCH_JSON="${out_json}" "${build_dir}/bench/bench_pipeline_latency" \
  > "${build_dir}/bench_pipeline_latency.log" 2>&1
# bench_end_to_end exits non-zero when the room violates safety or a
# reaction misses its budget; keep going — the p99 check below decides,
# and the bundle pointer is what the operator triages from.
e2e_status=0
FLEX_BENCH_JSON="${out_json}" FLEX_FORENSICS_DIR="${forensics_dir}" \
  "${build_dir}/bench/bench_end_to_end" \
  > "${build_dir}/bench_end_to_end.log" 2>&1 || e2e_status=$?
if [[ "${e2e_status}" -ne 0 ]]; then
  echo "check_budget: bench_end_to_end exited ${e2e_status}" \
       "(log: ${build_dir}/bench_end_to_end.log)" >&2
fi

e2e_line="$(grep '"bench":"bench_end_to_end"' "${out_json}" | tail -n 1)"
if [[ -z "${e2e_line}" ]]; then
  echo "check_budget: no bench_end_to_end line in ${out_json}" >&2
  exit 2
fi

# "reaction.end_to_end_s":{"type":"histogram",...,"p99":<X>} and
# "reaction.budget_s":{"type":"gauge","value":<Y>}.
p99="$(sed -n \
  's/.*"reaction\.end_to_end_s":{[^}]*"p99":\([0-9eE.+-]*\)}.*/\1/p' \
  <<< "${e2e_line}")"
budget="$(sed -n \
  's/.*"reaction\.budget_s":{[^}]*"value":\([0-9eE.+-]*\)}.*/\1/p' \
  <<< "${e2e_line}")"
if [[ -z "${p99}" || -z "${budget}" ]]; then
  echo "check_budget: reaction metrics missing from ${out_json}" >&2
  exit 2
fi

echo "check_budget: reaction end-to-end p99 = ${p99} s, budget = ${budget} s"
if awk -v p99="${p99}" -v budget="${budget}" \
  'BEGIN { exit !(p99 + 0 < budget + 0) }'; then
  echo "check_budget: OK — reaction fits the tolerance window"
else
  echo "check_budget: FAIL — p99 reaction exceeds the tolerance window" >&2
  bundle="$(ls -dt "${forensics_dir}"/bundle-* 2>/dev/null | head -n 1)"
  if [[ -n "${bundle}" ]]; then
    echo "check_budget: forensic bundle: ${bundle}" >&2
    echo "  (triage recipe: EXPERIMENTS.md; replay: build/examples/flex_replay)" >&2
  fi
  exit 1
fi
