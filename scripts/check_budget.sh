#!/usr/bin/env bash
# Runs the two latency benches with machine-readable export enabled,
# collects their metric snapshots into BENCH_obs.json (one JSON line per
# bench), and verifies the paper's temporal safety claim: the p99
# end-to-end reaction must beat the UPS tolerance window (~10 s at end
# of battery life, Section IV-E).
#
# Usage: scripts/check_budget.sh [build-dir] [output-json]
#   build-dir    defaults to ./build (or FLEX_BUILD_DIR)
#   output-json  defaults to <build-dir>/BENCH_obs.json (or FLEX_BENCH_JSON)
#
# Exit status: 0 when the reaction budget holds, non-zero otherwise.
# The export format is line-oriented JSON with fixed key order, so this
# script needs only sed/awk — no JSON parser.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${FLEX_BUILD_DIR:-${repo_root}/build}}"
out_json="${2:-${FLEX_BENCH_JSON:-${build_dir}/BENCH_obs.json}}"

for bench in bench_pipeline_latency bench_end_to_end; do
  if [[ ! -x "${build_dir}/bench/${bench}" ]]; then
    echo "check_budget: ${build_dir}/bench/${bench} not built" >&2
    echo "  (build first: cmake --build ${build_dir} --target ${bench})" >&2
    exit 2
  fi
done

rm -f "${out_json}"
# Stamped into the export and echoed in the verdict, so a pasted verdict
# line alone identifies the machine width and when the check ran.
hw_concurrency="$(nproc)"
generated_utc="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
# On failure, bench_end_to_end leaves a forensic bundle here.
forensics_dir="${FLEX_FORENSICS_DIR:-${build_dir}/forensics}"
echo "check_budget: running benches, exporting to ${out_json}"
FLEX_BENCH_JSON="${out_json}" "${build_dir}/bench/bench_pipeline_latency" \
  > "${build_dir}/bench_pipeline_latency.log" 2>&1
# bench_end_to_end exits non-zero when the room violates safety or a
# reaction misses its budget; keep going — the p99 check below decides,
# and the bundle pointer is what the operator triages from.
e2e_status=0
FLEX_BENCH_JSON="${out_json}" FLEX_FORENSICS_DIR="${forensics_dir}" \
  "${build_dir}/bench/bench_end_to_end" \
  > "${build_dir}/bench_end_to_end.log" 2>&1 || e2e_status=$?
if [[ "${e2e_status}" -ne 0 ]]; then
  echo "check_budget: bench_end_to_end exited ${e2e_status}" \
       "(log: ${build_dir}/bench_end_to_end.log)" >&2
fi

sed -i "s/^{/{\"hw_concurrency\":${hw_concurrency},\"generated_utc\":\"${generated_utc}\",/" \
  "${out_json}"

e2e_line="$(grep '"bench":"bench_end_to_end"' "${out_json}" | tail -n 1)"
if [[ -z "${e2e_line}" ]]; then
  echo "check_budget: no bench_end_to_end line in ${out_json}" >&2
  exit 2
fi

# "reaction.end_to_end_s":{"type":"histogram",...,"p99":<X>} and
# "reaction.budget_s":{"type":"gauge","value":<Y>}.
p99="$(sed -n \
  's/.*"reaction\.end_to_end_s":{[^}]*"p99":\([0-9eE.+-]*\)}.*/\1/p' \
  <<< "${e2e_line}")"
budget="$(sed -n \
  's/.*"reaction\.budget_s":{[^}]*"value":\([0-9eE.+-]*\)}.*/\1/p' \
  <<< "${e2e_line}")"
if [[ -z "${p99}" || -z "${budget}" ]]; then
  echo "check_budget: reaction metrics missing from ${out_json}" >&2
  exit 2
fi

echo "check_budget: reaction end-to-end p99 = ${p99} s, budget = ${budget} s"
if awk -v p99="${p99}" -v budget="${budget}" \
  'BEGIN { exit !(p99 + 0 < budget + 0) }'; then
  echo "check_budget: OK — reaction fits the tolerance window" \
       "(hw_concurrency=${hw_concurrency}, generated_utc=${generated_utc})"
else
  echo "check_budget: FAIL — p99 reaction exceeds the tolerance window" \
       "(hw_concurrency=${hw_concurrency}, generated_utc=${generated_utc})" >&2
  bundle="$(ls -dt "${forensics_dir}"/bundle-* 2>/dev/null | head -n 1)"
  if [[ -n "${bundle}" ]]; then
    echo "check_budget: forensic bundle: ${bundle}" >&2
    echo "  (triage recipe: EXPERIMENTS.md; replay: build/examples/flex_replay)" >&2
  fi
  exit 1
fi

# Solver warm-restart gates. Both are counter ratios, so they are
# hardware-independent (unlike the speedup gate below): the warm-basis
# hit rate says how often a branching child actually reused a
# factorized basis (adopt/patch/install) instead of going cold, and
# refactors-per-lp-solve says how many full refactorizations each LP
# cost — Forrest–Tomlin updates plus the set-difference basis patch
# keep it well below one. Floors/ceilings lock in the dual-simplex
# warm-restart work against regression.
solver_json="${FLEX_SOLVER_BENCH_JSON:-${repo_root}/BENCH_solver.json}"
min_hit_rate=0.8
max_refactor_rate=0.53
if [[ ! -s "${solver_json}" ]]; then
  echo "check_budget: SKIP solver warm-restart gates — ${solver_json}"        "not found (generate with scripts/run_benches.sh)"
  exit 0
fi
solver_line="$(tail -n 1 "${solver_json}")"
hit_rate="$(sed -n   's/.*"solver\.warm_hit_rate":{[^}]*"value":\([0-9eE.+-]*\)}.*/\1/p'   <<< "${solver_line}")"
refactor_rate="$(sed -n   's/.*"solver\.refactors_per_lp_solve":{[^}]*"value":\([0-9eE.+-]*\)}.*/\1/p'   <<< "${solver_line}")"
if [[ -z "${hit_rate}" || -z "${refactor_rate}" ]]; then
  echo "check_budget: SKIP solver warm-restart gates — no"        "solver.warm_hit_rate / solver.refactors_per_lp_solve in"        "${solver_json} (regenerate with scripts/run_benches.sh)"
else
  echo "check_budget: solver warm hit rate = ${hit_rate}"        "(floor ${min_hit_rate}), refactors per LP solve ="        "${refactor_rate} (ceiling ${max_refactor_rate})"
  if ! awk -v r="${hit_rate}" -v floor="${min_hit_rate}"     'BEGIN { exit !(r + 0 >= floor + 0) }'; then
    echo "check_budget: FAIL — warm-basis hit rate ${hit_rate} is below"          "${min_hit_rate} (branching children are going cold; check the"          "adopt/patch/install warm routes in revised_simplex)" >&2
    exit 1
  fi
  if ! awk -v r="${refactor_rate}" -v ceil="${max_refactor_rate}"     'BEGIN { exit !(r + 0 <= ceil + 0) }'; then
    echo "check_budget: FAIL — ${refactor_rate} refactorizations per LP"          "solve exceeds ${max_refactor_rate} (Forrest–Tomlin updates or"          "the set-difference basis patch stopped absorbing pivots)" >&2
    exit 1
  fi
  echo "check_budget: OK — solver warm-restart health holds"
fi

# Solver parallel-scaling gate. The last line of BENCH_solver.json (the
# widest run of scripts/run_benches.sh's thread sweep) must report a
# >= 1.3x speedup over the serial baseline — but only on hardware that
# can express one: the solver.parallel.hw_concurrency gauge (falling
# back to nproc for snapshots predating the gauge) tells a single-core
# machine apart from a genuine scaling regression.
min_speedup=1.3
if [[ ! -s "${solver_json}" ]]; then
  echo "check_budget: SKIP solver speedup gate — ${solver_json} not found" \
       "(generate with scripts/run_benches.sh)"
  exit 0
fi
solver_line="$(tail -n 1 "${solver_json}")"
speedup="$(sed -n \
  's/.*"solver\.parallel\.speedup":{[^}]*"value":\([0-9eE.+-]*\)}.*/\1/p' \
  <<< "${solver_line}")"
hw="$(sed -n \
  's/.*"solver\.parallel\.hw_concurrency":{[^}]*"value":\([0-9eE.+-]*\)}.*/\1/p' \
  <<< "${solver_line}")"
[[ -n "${hw}" ]] || hw="$(nproc)"
if [[ -z "${speedup}" ]]; then
  echo "check_budget: SKIP solver speedup gate — no solver.parallel.speedup" \
       "in ${solver_json}"
  exit 0
fi
if awk -v hw="${hw}" 'BEGIN { exit !(hw + 0 < 2) }'; then
  echo "check_budget: SKIP solver speedup gate — hw_concurrency=${hw} < 2," \
       "parallel speedup is not measurable on this machine" \
       "(recorded speedup ${speedup}x)"
  exit 0
fi
echo "check_budget: solver parallel speedup = ${speedup}x" \
     "(hw_concurrency=${hw}, floor ${min_speedup}x)"
if awk -v s="${speedup}" -v floor="${min_speedup}" \
  'BEGIN { exit !(s + 0 >= floor + 0) }'; then
  echo "check_budget: OK — solver parallel scaling holds"
else
  echo "check_budget: FAIL — solver parallel speedup ${speedup}x is below" \
       "${min_speedup}x on ${hw}-wide hardware (regression in the" \
       "wave-parallel search or the warm-basis path)" >&2
  exit 1
fi
