#!/usr/bin/env bash
# Runs the two latency benches with machine-readable export enabled,
# collects their metric snapshots into BENCH_obs.json (one JSON line per
# bench), and verifies the paper's temporal safety claim: the p99
# end-to-end reaction must beat the UPS tolerance window (~10 s at end
# of battery life, Section IV-E).
#
# Usage: scripts/check_budget.sh [build-dir] [output-json]
#   build-dir    defaults to ./build (or FLEX_BUILD_DIR)
#   output-json  defaults to <build-dir>/BENCH_obs.json (or FLEX_BENCH_JSON)
#
# Exit status: 0 when the reaction budget holds, non-zero otherwise.
# The export format is line-oriented JSON with fixed key order, so this
# script needs only sed/awk — no JSON parser.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${FLEX_BUILD_DIR:-${repo_root}/build}}"
out_json="${2:-${FLEX_BENCH_JSON:-${build_dir}/BENCH_obs.json}}"

for bench in bench_pipeline_latency bench_end_to_end; do
  if [[ ! -x "${build_dir}/bench/${bench}" ]]; then
    echo "check_budget: ${build_dir}/bench/${bench} not built" >&2
    echo "  (build first: cmake --build ${build_dir} --target ${bench})" >&2
    exit 2
  fi
done

rm -f "${out_json}"
# Stamped into the export and echoed in the verdict, so a pasted verdict
# line alone identifies the machine width and when the check ran.
hw_concurrency="$(nproc)"
generated_utc="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
# On failure, bench_end_to_end leaves a forensic bundle here.
forensics_dir="${FLEX_FORENSICS_DIR:-${build_dir}/forensics}"
echo "check_budget: running benches, exporting to ${out_json}"
FLEX_BENCH_JSON="${out_json}" "${build_dir}/bench/bench_pipeline_latency" \
  > "${build_dir}/bench_pipeline_latency.log" 2>&1
# bench_end_to_end exits non-zero when the room violates safety or a
# reaction misses its budget; keep going — the p99 check below decides,
# and the bundle pointer is what the operator triages from.
e2e_status=0
FLEX_BENCH_JSON="${out_json}" FLEX_FORENSICS_DIR="${forensics_dir}" \
  "${build_dir}/bench/bench_end_to_end" \
  > "${build_dir}/bench_end_to_end.log" 2>&1 || e2e_status=$?
if [[ "${e2e_status}" -ne 0 ]]; then
  echo "check_budget: bench_end_to_end exited ${e2e_status}" \
       "(log: ${build_dir}/bench_end_to_end.log)" >&2
fi

sed -i "s/^{/{\"hw_concurrency\":${hw_concurrency},\"generated_utc\":\"${generated_utc}\",/" \
  "${out_json}"

e2e_line="$(grep '"bench":"bench_end_to_end"' "${out_json}" | tail -n 1)"
if [[ -z "${e2e_line}" ]]; then
  echo "check_budget: no bench_end_to_end line in ${out_json}" >&2
  exit 2
fi

# "reaction.end_to_end_s":{"type":"histogram",...,"p99":<X>} and
# "reaction.budget_s":{"type":"gauge","value":<Y>}.
p99="$(sed -n \
  's/.*"reaction\.end_to_end_s":{[^}]*"p99":\([0-9eE.+-]*\)}.*/\1/p' \
  <<< "${e2e_line}")"
budget="$(sed -n \
  's/.*"reaction\.budget_s":{[^}]*"value":\([0-9eE.+-]*\)}.*/\1/p' \
  <<< "${e2e_line}")"
if [[ -z "${p99}" || -z "${budget}" ]]; then
  echo "check_budget: reaction metrics missing from ${out_json}" >&2
  exit 2
fi

echo "check_budget: reaction end-to-end p99 = ${p99} s, budget = ${budget} s"
if awk -v p99="${p99}" -v budget="${budget}" \
  'BEGIN { exit !(p99 + 0 < budget + 0) }'; then
  echo "check_budget: OK — reaction fits the tolerance window" \
       "(hw_concurrency=${hw_concurrency}, generated_utc=${generated_utc})"
else
  echo "check_budget: FAIL — p99 reaction exceeds the tolerance window" \
       "(hw_concurrency=${hw_concurrency}, generated_utc=${generated_utc})" >&2
  bundle="$(ls -dt "${forensics_dir}"/bundle-* 2>/dev/null | head -n 1)"
  if [[ -n "${bundle}" ]]; then
    echo "check_budget: forensic bundle: ${bundle}" >&2
    echo "  (triage recipe: EXPERIMENTS.md; replay: build/examples/flex_replay)" >&2
  fi
  exit 1
fi

# Fleet-engine gates (BENCH_fleet_scale.json, from scripts/run_benches.sh).
# Lane identity and merge overhead are hardware-independent and always
# enforced: the sharded fleet must hash bit-identically across lane
# counts, and the serial epoch-barrier merge must stay a rounding error
# next to the parallel stepping it synchronizes. The events/sec floor
# (largest ladder rung, 100k+ racks) and the serial-vs-parallel speedup
# only mean something on multi-core hardware and self-skip otherwise,
# same idiom as the solver speedup gate below. This section never
# early-exits the script — the solver gates still run after a skip.
fleet_json="${FLEX_FLEET_BENCH_JSON:-${repo_root}/BENCH_fleet_scale.json}"
max_merge_overhead_pct=5.0
min_fleet_events_per_sec=100000
min_fleet_speedup=1.2
fleet_gauge() {
  sed -n "s/.*\"$1\":{[^}]*\"value\":\([0-9eE.+-]*\)}.*/\1/p" \
    <<< "${fleet_line}"
}
if [[ ! -s "${fleet_json}" ]]; then
  echo "check_budget: SKIP fleet gates — ${fleet_json} not found" \
       "(generate with scripts/run_benches.sh)"
else
  fleet_line="$(tail -n 1 "${fleet_json}")"
  hash_match="$(fleet_gauge 'fleet\.lane_hash_match')"
  merge_pct="$(fleet_gauge 'fleet\.merge_overhead_pct')"
  fleet_events="$(fleet_gauge 'fleet\.events_per_sec')"
  fleet_speedup="$(fleet_gauge 'fleet\.scaling\.speedup')"
  fleet_hw="$(sed -n 's/.*"hw_concurrency":\([0-9]*\),.*/\1/p' \
    <<< "${fleet_line}")"
  [[ -n "${fleet_hw}" ]] || fleet_hw="$(nproc)"
  if [[ -z "${hash_match}" || -z "${merge_pct}" ]]; then
    echo "check_budget: SKIP fleet gates — fleet.lane_hash_match /" \
         "fleet.merge_overhead_pct missing from ${fleet_json}" \
         "(regenerate with scripts/run_benches.sh)"
  else
    if ! awk -v m="${hash_match}" 'BEGIN { exit !(m + 0 == 1) }'; then
      echo "check_budget: FAIL — fleet diverged across lane counts" \
           "(fleet.lane_hash_match=${hash_match}; the epoch-barrier merge" \
           "or a room stepped under contention broke bit-identity)" >&2
      exit 1
    fi
    echo "check_budget: fleet lane identity holds, merge overhead =" \
         "${merge_pct}% (ceiling ${max_merge_overhead_pct}%)"
    if ! awk -v m="${merge_pct}" -v ceil="${max_merge_overhead_pct}" \
      'BEGIN { exit !(m + 0 < ceil + 0) }'; then
      echo "check_budget: FAIL — serial merge barrier consumes ${merge_pct}%" \
           "of fleet wall time (ceiling ${max_merge_overhead_pct}%; look for" \
           "new per-epoch allocation or O(rooms^2) work in the barrier)" >&2
      exit 1
    fi
    if awk -v hw="${fleet_hw}" 'BEGIN { exit !(hw + 0 < 2) }'; then
      echo "check_budget: SKIP fleet scaling gates — hw_concurrency=${fleet_hw}" \
           "< 2, parallel stepping is not measurable on this machine" \
           "(recorded ${fleet_events} events/sec, speedup ${fleet_speedup}x)"
    elif [[ -z "${fleet_events}" || -z "${fleet_speedup}" ]]; then
      echo "check_budget: SKIP fleet scaling gates — fleet.events_per_sec /" \
           "fleet.scaling.speedup missing from ${fleet_json}"
    else
      echo "check_budget: fleet events/sec = ${fleet_events} (floor" \
           "${min_fleet_events_per_sec}), scaling speedup = ${fleet_speedup}x" \
           "(floor ${min_fleet_speedup}x, hw_concurrency=${fleet_hw})"
      if ! awk -v e="${fleet_events}" -v floor="${min_fleet_events_per_sec}" \
        'BEGIN { exit !(e + 0 >= floor + 0) }'; then
        echo "check_budget: FAIL — ${fleet_events} fleet events/sec is below" \
             "${min_fleet_events_per_sec} at the 100k-rack rung (regression" \
             "in room stepping or lane scheduling)" >&2
        exit 1
      fi
      if ! awk -v s="${fleet_speedup}" -v floor="${min_fleet_speedup}" \
        'BEGIN { exit !(s + 0 >= floor + 0) }'; then
        echo "check_budget: FAIL — fleet serial-vs-parallel speedup" \
             "${fleet_speedup}x is below ${min_fleet_speedup}x on" \
             "${fleet_hw}-wide hardware (lanes are serializing; check the" \
             "pool handoff and the barrier)" >&2
        exit 1
      fi
    fi
    echo "check_budget: OK — fleet engine gates hold"
  fi
fi

# Solver warm-restart gates. Both are counter ratios, so they are
# hardware-independent (unlike the speedup gate below): the warm-basis
# hit rate says how often a branching child actually reused a
# factorized basis (adopt/patch/install) instead of going cold, and
# refactors-per-lp-solve says how many full refactorizations each LP
# cost — Forrest–Tomlin updates plus the set-difference basis patch
# keep it well below one. Floors/ceilings lock in the dual-simplex
# warm-restart work against regression.
solver_json="${FLEX_SOLVER_BENCH_JSON:-${repo_root}/BENCH_solver.json}"
min_hit_rate=0.8
max_refactor_rate=0.53
if [[ ! -s "${solver_json}" ]]; then
  echo "check_budget: SKIP solver warm-restart gates — ${solver_json}"        "not found (generate with scripts/run_benches.sh)"
  exit 0
fi
solver_line="$(tail -n 1 "${solver_json}")"
hit_rate="$(sed -n   's/.*"solver\.warm_hit_rate":{[^}]*"value":\([0-9eE.+-]*\)}.*/\1/p'   <<< "${solver_line}")"
refactor_rate="$(sed -n   's/.*"solver\.refactors_per_lp_solve":{[^}]*"value":\([0-9eE.+-]*\)}.*/\1/p'   <<< "${solver_line}")"
if [[ -z "${hit_rate}" || -z "${refactor_rate}" ]]; then
  echo "check_budget: SKIP solver warm-restart gates — no"        "solver.warm_hit_rate / solver.refactors_per_lp_solve in"        "${solver_json} (regenerate with scripts/run_benches.sh)"
else
  echo "check_budget: solver warm hit rate = ${hit_rate}"        "(floor ${min_hit_rate}), refactors per LP solve ="        "${refactor_rate} (ceiling ${max_refactor_rate})"
  if ! awk -v r="${hit_rate}" -v floor="${min_hit_rate}"     'BEGIN { exit !(r + 0 >= floor + 0) }'; then
    echo "check_budget: FAIL — warm-basis hit rate ${hit_rate} is below"          "${min_hit_rate} (branching children are going cold; check the"          "adopt/patch/install warm routes in revised_simplex)" >&2
    exit 1
  fi
  if ! awk -v r="${refactor_rate}" -v ceil="${max_refactor_rate}"     'BEGIN { exit !(r + 0 <= ceil + 0) }'; then
    echo "check_budget: FAIL — ${refactor_rate} refactorizations per LP"          "solve exceeds ${max_refactor_rate} (Forrest–Tomlin updates or"          "the set-difference basis patch stopped absorbing pivots)" >&2
    exit 1
  fi
  echo "check_budget: OK — solver warm-restart health holds"
fi

# Solver parallel-scaling gate. The last line of BENCH_solver.json (the
# widest run of scripts/run_benches.sh's thread sweep) must report a
# >= 1.3x speedup over the serial baseline — but only on hardware that
# can express one: the solver.parallel.hw_concurrency gauge (falling
# back to nproc for snapshots predating the gauge) tells a single-core
# machine apart from a genuine scaling regression.
min_speedup=1.3
if [[ ! -s "${solver_json}" ]]; then
  echo "check_budget: SKIP solver speedup gate — ${solver_json} not found" \
       "(generate with scripts/run_benches.sh)"
  exit 0
fi
solver_line="$(tail -n 1 "${solver_json}")"
speedup="$(sed -n \
  's/.*"solver\.parallel\.speedup":{[^}]*"value":\([0-9eE.+-]*\)}.*/\1/p' \
  <<< "${solver_line}")"
hw="$(sed -n \
  's/.*"solver\.parallel\.hw_concurrency":{[^}]*"value":\([0-9eE.+-]*\)}.*/\1/p' \
  <<< "${solver_line}")"
[[ -n "${hw}" ]] || hw="$(nproc)"
if [[ -z "${speedup}" ]]; then
  echo "check_budget: SKIP solver speedup gate — no solver.parallel.speedup" \
       "in ${solver_json}"
  exit 0
fi
if awk -v hw="${hw}" 'BEGIN { exit !(hw + 0 < 2) }'; then
  echo "check_budget: SKIP solver speedup gate — hw_concurrency=${hw} < 2," \
       "parallel speedup is not measurable on this machine" \
       "(recorded speedup ${speedup}x)"
  exit 0
fi
echo "check_budget: solver parallel speedup = ${speedup}x" \
     "(hw_concurrency=${hw}, floor ${min_speedup}x)"
if awk -v s="${speedup}" -v floor="${min_speedup}" \
  'BEGIN { exit !(s + 0 >= floor + 0) }'; then
  echo "check_budget: OK — solver parallel scaling holds"
else
  echo "check_budget: FAIL — solver parallel speedup ${speedup}x is below" \
       "${min_speedup}x on ${hw}-wide hardware (regression in the" \
       "wave-parallel search or the warm-basis path)" >&2
  exit 1
fi
