#!/usr/bin/env bash
# One-command verification sweep, in dependency order:
#
#   1. configure + build the default tree
#   2. tier-1 ctest suite
#   3. sanitizer suites (ASan/UBSan tree, then TSan tree)
#   4. bench sweep (BENCH_*.json exports, stamped)
#   5. reaction-budget + solver-scaling verdict (check_budget.sh)
#
# Usage: scripts/run_all_checks.sh [build-dir]
#   build-dir  defaults to ./build (or FLEX_BUILD_DIR)
#
# Stage toggles (each skips its stage when set to 1):
#   FLEX_SKIP_SANITIZERS  skip stage 3 (both sanitizer trees)
#   FLEX_SKIP_TSAN        keep ASan/UBSan, skip only the TSan half
#   FLEX_SKIP_BENCHES     skip stages 4 and 5
#
# Exit status: non-zero on the first failing stage (set -e), so CI can
# run this script as the single gate.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${FLEX_BUILD_DIR:-${repo_root}/build}}"

echo "=== run_all_checks [1/5]: configure + build (${build_dir}) ==="
cmake -B "${build_dir}" -S "${repo_root}"
cmake --build "${build_dir}" -j"$(nproc)"

echo "=== run_all_checks [2/5]: tier-1 ctest ==="
(cd "${build_dir}" && ctest --output-on-failure -j"$(nproc)")

if [[ "${FLEX_SKIP_SANITIZERS:-0}" == "1" ]]; then
  echo "=== run_all_checks [3/5]: SKIPPED (FLEX_SKIP_SANITIZERS=1) ==="
else
  echo "=== run_all_checks [3/5]: sanitizer suites ==="
  "${repo_root}/scripts/run_sanitized_tests.sh"
fi

if [[ "${FLEX_SKIP_BENCHES:-0}" == "1" ]]; then
  echo "=== run_all_checks [4/5]: SKIPPED (FLEX_SKIP_BENCHES=1) ==="
  echo "=== run_all_checks [5/5]: SKIPPED (FLEX_SKIP_BENCHES=1) ==="
else
  echo "=== run_all_checks [4/5]: bench sweep ==="
  "${repo_root}/scripts/run_benches.sh" "${build_dir}"
  echo "=== run_all_checks [5/5]: reaction-budget verdict ==="
  "${repo_root}/scripts/check_budget.sh" "${build_dir}"
fi

echo "run_all_checks: all stages passed"
