#!/usr/bin/env bash
# Runs the experiment bench suite with machine-readable export enabled
# and collects each bench's metric snapshot into BENCH_<name>.json at
# the repository root (one JSON line per run; see obs/export.hpp for
# the format). Benches that do not export metrics still run — their
# stdout lands in <build-dir>/bench-logs/<name>.log either way.
#
# Usage: scripts/run_benches.sh [build-dir] [bench-name...]
#   build-dir   defaults to ./build (or FLEX_BUILD_DIR)
#   bench-name  run only the named benches (default: all in build/bench)
#
# Tuning (inherited by every bench):
#   FLEX_SOLVE_SECONDS  per-batch MILP budget (default here: 1)
#   FLEX_BENCH_TRACES   shuffled trace variants (default here: 3)
#
# Exit status: 0 when every bench exited 0; 1 otherwise (all benches
# still run — a failing bench does not stop the sweep).
set -uo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${FLEX_BUILD_DIR:-${repo_root}/build}}"
[[ $# -gt 0 ]] && shift

if [[ ! -d "${build_dir}/bench" ]]; then
  echo "run_benches: ${build_dir}/bench not found (build first)" >&2
  exit 2
fi

# Keep the default sweep fast; CI/users override for fidelity.
export FLEX_SOLVE_SECONDS="${FLEX_SOLVE_SECONDS:-1}"
export FLEX_BENCH_TRACES="${FLEX_BENCH_TRACES:-3}"

# Every exported snapshot is stamped with the machine width and the UTC
# run time, so a BENCH_*.json pulled off a shelf months later still says
# what produced it. The stamp is injected as the first keys of each JSON
# line; downstream sed/grep consumers match with `.*` prefixes and are
# unaffected.
hw_concurrency="$(nproc)"
generated_utc="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
stamp_json() {
  local file="$1"
  [[ -s "${file}" ]] || return 0
  sed -i "s/^{/{\"hw_concurrency\":${hw_concurrency},\"generated_utc\":\"${generated_utc}\",/" \
    "${file}"
}

benches=("$@")
if [[ ${#benches[@]} -eq 0 ]]; then
  for path in "${build_dir}"/bench/*; do
    [[ -x "${path}" && -f "${path}" ]] && benches+=("$(basename "${path}")")
  done
fi

log_dir="${build_dir}/bench-logs"
mkdir -p "${log_dir}"

failures=()
for bench in "${benches[@]}"; do
  # bench_solver_perf only runs in the thread sweep below: a plain run
  # here would duplicate the sweep's final line as BENCH_solver_perf.json
  # (near-identical payloads under two names), and every consumer —
  # check_budget.sh included — reads BENCH_solver.json.
  [[ "${bench}" == "bench_solver_perf" ]] && continue
  binary="${build_dir}/bench/${bench}"
  if [[ ! -x "${binary}" ]]; then
    echo "run_benches: skipping ${bench} (not built)" >&2
    continue
  fi
  out_json="${repo_root}/BENCH_${bench#bench_}.json"
  rm -f "${out_json}"
  echo "run_benches: ${bench} -> ${out_json}"
  if ! FLEX_BENCH_JSON="${out_json}" "${binary}" \
      > "${log_dir}/${bench}.log" 2>&1; then
    echo "run_benches: ${bench} FAILED (see ${log_dir}/${bench}.log)" >&2
    failures+=("${bench}")
  fi
  # Benches without metric export leave no JSON behind; drop the stub.
  [[ -s "${out_json}" ]] || rm -f "${out_json}"
  stamp_json "${out_json}"
done

# Thread-scaling baseline: run the solver bench once per thread count
# and append each snapshot to BENCH_solver.json. Each JSON line carries
# solver.parallel.speedup, solver.parallel.baseline_threads, and
# solver.parallel.basis_hit_rate, so the file records the scaling
# baseline for this machine. The sweep always includes a >= 2-thread
# run: a 1-vs-1 comparison only measures pool overhead (the degenerate
# "speedup 0.98" readings single-core machines used to report).
solver_binary="${build_dir}/bench/bench_solver_perf"
if [[ -x "${solver_binary}" ]]; then
  sweep_json="${repo_root}/BENCH_solver.json"
  rm -f "${sweep_json}"
  hw_threads="${hw_concurrency}"
  thread_counts=(1 2)
  [[ "${hw_threads}" -gt 2 ]] && thread_counts+=("${hw_threads}")
  for threads in "${thread_counts[@]}"; do
    echo "run_benches: bench_solver_perf (FLEX_SOLVER_THREADS=${threads}) -> ${sweep_json}"
    if ! FLEX_BENCH_JSON="${sweep_json}" FLEX_SOLVER_THREADS="${threads}" \
        "${solver_binary}" --benchmark_filter='^$' \
        > "${log_dir}/bench_solver_perf.threads${threads}.log" 2>&1; then
      echo "run_benches: solver thread sweep (${threads}) FAILED" >&2
      failures+=("bench_solver_perf.threads${threads}")
    fi
  done
  [[ -s "${sweep_json}" ]] || rm -f "${sweep_json}"
  stamp_json "${sweep_json}"
fi

if [[ ${#failures[@]} -gt 0 ]]; then
  echo "run_benches: ${#failures[@]} bench(es) failed: ${failures[*]}" >&2
  exit 1
fi
echo "run_benches: all ${#benches[@]} benches passed"
