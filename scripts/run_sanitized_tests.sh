#!/usr/bin/env bash
# Builds the repository with FLEX_SANITIZE=ON (ASan + UBSan) in a
# dedicated build tree and runs the tier-1 ctest suite under it, then
# builds a second tree with FLEX_SANITIZE_THREAD=ON (TSan) and runs the
# concurrency-heavy suites (common/solver/offline) under that.
#
# Usage: scripts/run_sanitized_tests.sh [ctest args...]
#   e.g. scripts/run_sanitized_tests.sh -R fault_test
# Set FLEX_SKIP_TSAN=1 to run only the ASan/UBSan half.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${FLEX_SANITIZE_BUILD_DIR:-${repo_root}/build-asan}"

cmake -B "${build_dir}" -S "${repo_root}" -DFLEX_SANITIZE=ON
cmake --build "${build_dir}" -j"$(nproc)"

# abort_on_error surfaces ASan reports as test failures; the UBSan
# half already aborts via -fno-sanitize-recover=undefined.
export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1:detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"

cd "${build_dir}"
ctest --output-on-failure -j"$(nproc)" "$@"

# Focused pass over the observability stack: the flight recorder, the
# forensic bundle writer/loader and the replay path shuffle raw buffers
# and parse untrusted bundle files, which is exactly where the
# sanitizers earn their keep. gtest_discover_tests registers per-case
# names, so run the two binaries directly rather than matching by
# ctest name. Redundant with a full-suite run above, but cheap, and
# keeps `run_sanitized_tests.sh -R <other>` honest too.
echo "run_sanitized_tests: focused obs/fault recorder pass"
"${build_dir}/tests/obs_test" --gtest_brief=1
"${build_dir}/tests/fault_test" --gtest_brief=1
# The HTTP plane parses raw request bytes off real sockets and renders
# from concurrently-published snapshots — both prime sanitizer targets.
"${build_dir}/tests/obs_http_test" --gtest_brief=1
# Time-series ring arithmetic and the alert state machine index into
# preallocated rings under eviction pressure — classic off-by-one soil.
"${build_dir}/tests/obs_timeseries_test" --gtest_brief=1
"${build_dir}/tests/obs_alerts_test" --gtest_brief=1
# The fleet engine steps rooms on pool lanes and merges at epoch
# barriers; its bit-identity suite doubles as a memory-safety probe of
# the lane-local arenas and the serial merge path.
"${build_dir}/tests/fleet_test" --gtest_brief=1

if [[ "${FLEX_SKIP_TSAN:-0}" == "1" ]]; then
  echo "run_sanitized_tests: FLEX_SKIP_TSAN=1, skipping TSan pass"
  exit 0
fi

# ThreadSanitizer pass: a separate tree (TSan is incompatible with
# ASan), focused on the suites that exercise the thread pool, the
# parallel branch-and-bound waves, the placement fan-out, and the
# HTTP scrape thread racing the sweep lanes. TSan findings abort the
# run via the non-zero exit of the test binary.
tsan_dir="${FLEX_TSAN_BUILD_DIR:-${repo_root}/build-tsan}"
cmake -B "${tsan_dir}" -S "${repo_root}" -DFLEX_SANITIZE_THREAD=ON
cmake --build "${tsan_dir}" -j"$(nproc)"

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
echo "run_sanitized_tests: TSan pass (common/solver/offline suites)"
"${tsan_dir}/tests/common_test" --gtest_brief=1
"${tsan_dir}/tests/solver_test" --gtest_brief=1
"${tsan_dir}/tests/solver_lp_differential_test" --gtest_brief=1
"${tsan_dir}/tests/offline_test" --gtest_brief=1
"${tsan_dir}/tests/obs_http_test" --gtest_brief=1
# Alert/store bit-identity across parallel sweep lanes: lane-local
# stores running under the thread pool must never share state.
"${tsan_dir}/tests/obs_alerts_test" --gtest_brief=1
# Fleet lanes step concurrent RoomEmulations against the epoch barrier;
# any cross-lane write TSan finds here is also a determinism bug.
"${tsan_dir}/tests/fleet_test" --gtest_brief=1
