/**
 * @file
 * Unit tests for the analysis module: Section III feasibility and the
 * cost-savings model.
 */
#include <gtest/gtest.h>

#include "analysis/cost.hpp"
#include "analysis/feasibility.hpp"
#include "common/error.hpp"

namespace flex::analysis {
namespace {

TEST(FeasibilityTest, DefaultsReproduceThePapersHeadlineNumbers)
{
  const FeasibilityModel model;
  const FeasibilityResult result = model.Evaluate();
  // Paper: 99.99% of the time (4 nines) no corrective action is needed.
  EXPECT_GE(result.room_availability_nines, 4.0);
  EXPECT_GE(result.room_availability, 0.9999);
  // Paper: probability of any software-redundant shutdown ~0.005%,
  // giving SR servers at least 4 nines.
  EXPECT_LT(result.p_shutdown_needed, 1e-4);
  EXPECT_GE(result.sr_availability_nines, 4.0);
  // Shutdown needs strictly higher utilization than mere throttling.
  EXPECT_GT(result.shutdown_threshold_utilization, 0.75);
}

TEST(FeasibilityTest, ShutdownIsRarerThanAnyCorrectiveAction)
{
  const FeasibilityModel model;
  const FeasibilityResult result = model.Evaluate();
  EXPECT_LT(result.p_shutdown_needed, result.p_corrective_needed);
}

TEST(FeasibilityTest, FractionOfTimeAboveIsMonotone)
{
  const FeasibilityModel model;
  double previous = 1.0;
  for (double threshold = 0.3; threshold <= 1.0; threshold += 0.05) {
    const double p = model.FractionOfTimeAbove(threshold);
    EXPECT_LE(p, previous + 1e-12);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    previous = p;
  }
}

TEST(FeasibilityTest, MoreUnplannedDowntimeHurtsAvailability)
{
  FeasibilityParams noisy;
  noisy.unplanned_hours_per_year = 10.0;
  const FeasibilityResult base = FeasibilityModel{}.Evaluate();
  const FeasibilityResult worse = FeasibilityModel{noisy}.Evaluate();
  EXPECT_LT(worse.room_availability, base.room_availability);
}

TEST(FeasibilityTest, UnscheduledPlannedMaintenanceHurtsALot)
{
  FeasibilityParams careless;
  careless.planned_in_low_utilization_windows = false;
  const FeasibilityResult base = FeasibilityModel{}.Evaluate();
  const FeasibilityResult worse = FeasibilityModel{careless}.Evaluate();
  // 40 h/yr of planned maintenance at random times dominates the 1 h/yr
  // of unplanned events.
  EXPECT_GT(worse.p_corrective_needed, 10.0 * base.p_corrective_needed);
}

TEST(FeasibilityTest, HigherFlexPowerRaisesShutdownThreshold)
{
  FeasibilityParams deep_caps;
  deep_caps.mean_flex_power_fraction = 0.70;  // deeper throttling possible
  const double deep =
      FeasibilityModel{deep_caps}.ShutdownThresholdUtilization();
  const double shallow = FeasibilityModel{}.ShutdownThresholdUtilization();
  EXPECT_GT(deep, shallow);
}

TEST(FeasibilityTest, MoreCapablePowerRaisesShutdownThreshold)
{
  FeasibilityParams rich;
  rich.capable_power_fraction = 0.80;
  const double more = FeasibilityModel{rich}.ShutdownThresholdUtilization();
  const double base = FeasibilityModel{}.ShutdownThresholdUtilization();
  EXPECT_GE(more, base);
}

TEST(FeasibilityTest, RejectsBadParams)
{
  FeasibilityParams bad;
  bad.peak_stddev = 0.0;
  EXPECT_THROW(FeasibilityModel{bad}, ConfigError);
  bad = FeasibilityParams{};
  bad.failover_budget_fraction = 1.0;
  EXPECT_THROW(FeasibilityModel{bad}, ConfigError);
}

TEST(CostTest, ReproducesThePapers128MwSiteNumbers)
{
  // Paper: $211M at $5/W and $422M at $10/W for a 128 MW site, +33%
  // servers in a 4N/3 design.
  CostParams params;
  const CostResult at5 = EvaluateCost(params);
  EXPECT_NEAR(at5.additional_server_fraction, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(at5.additional_capacity.megawatts(), 128.0 / 3.0, 1e-6);
  EXPECT_NEAR(at5.gross_savings_dollars / 1e6, 213.3, 1.0);

  params.dollars_per_watt = 10.0;
  const CostResult at10 = EvaluateCost(params);
  EXPECT_NEAR(at10.gross_savings_dollars / 1e6, 426.7, 2.0);
  EXPECT_NEAR(at10.gross_savings_dollars, 2.0 * at5.gross_savings_dollars,
              1.0);
}

TEST(CostTest, PremiumReducesNetSavings)
{
  CostParams params;
  const CostResult result = EvaluateCost(params);
  EXPECT_LT(result.net_savings_dollars, result.gross_savings_dollars);
  EXPECT_NEAR(result.premium_dollars,
              0.03 * 128e6 * 5.0, 1.0);
  EXPECT_GT(result.net_savings_dollars, 0.0);
}

TEST(CostTest, OtherRedundancyShapes)
{
  CostParams params;
  params.redundancy_x = 2;  // 2N: all of the second supply is reserve
  params.redundancy_y = 1;
  const CostResult result = EvaluateCost(params);
  EXPECT_NEAR(result.additional_server_fraction, 1.0, 1e-12);
  params.redundancy_x = 5;
  params.redundancy_y = 4;
  EXPECT_NEAR(EvaluateCost(params).additional_server_fraction, 0.25, 1e-12);
}

TEST(CostTest, RejectsBadParams)
{
  CostParams bad;
  bad.site_power = Watts(0.0);
  EXPECT_THROW(EvaluateCost(bad), ConfigError);
  bad = CostParams{};
  bad.redundancy_y = 4;  // y == x
  EXPECT_THROW(EvaluateCost(bad), ConfigError);
  bad = CostParams{};
  bad.dollars_per_watt = 0.0;
  EXPECT_THROW(EvaluateCost(bad), ConfigError);
}

TEST(MonteCarloTest, AgreesWithTheClosedFormModel)
{
  const FeasibilityModel model;
  const FeasibilityResult exact = model.Evaluate();
  const MonteCarloResult mc = model.MonteCarlo(1u << 20, 7, 1);
  EXPECT_EQ(mc.samples, 1u << 20);
  // ~1k-sample-resolution agreement on the utilization exceedances.
  EXPECT_NEAR(mc.result.p_high_utilization, exact.p_high_utilization, 5e-3);
  EXPECT_NEAR(mc.result.p_shutdown_needed, exact.p_shutdown_needed,
              exact.p_shutdown_needed * 0.2 + 1e-7);
  EXPECT_NEAR(mc.result.room_availability, exact.room_availability, 1e-4);
}

TEST(MonteCarloTest, IsBitIdenticalForAnyThreadCount)
{
  // Chunked sampling with one RNG stream per chunk and a serial
  // chunk-order merge: the estimate and the per-chunk fingerprint must
  // not depend on how many lanes the chunks ran on.
  const FeasibilityModel model;
  const MonteCarloResult serial = model.MonteCarlo(1u << 19, 42, 1);
  const MonteCarloResult pool2 = model.MonteCarlo(1u << 19, 42, 2);
  const MonteCarloResult pool3 = model.MonteCarlo(1u << 19, 42, 3);
  EXPECT_EQ(serial.lanes, 1);
  EXPECT_EQ(pool2.lanes, 2);
  EXPECT_EQ(serial.sample_hash, pool2.sample_hash);
  EXPECT_EQ(serial.sample_hash, pool3.sample_hash);
  EXPECT_EQ(serial.result.p_high_utilization,
            pool2.result.p_high_utilization);
  EXPECT_EQ(serial.result.p_shutdown_needed, pool2.result.p_shutdown_needed);
  EXPECT_EQ(serial.result.room_availability, pool3.result.room_availability);
  // Different seeds must change the fingerprint (the hash is real).
  const MonteCarloResult other = model.MonteCarlo(1u << 19, 43, 1);
  EXPECT_NE(serial.sample_hash, other.sample_hash);
}

}  // namespace
}  // namespace flex::analysis
