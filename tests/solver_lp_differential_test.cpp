/**
 * @file
 * Differential test harness for the two simplex implementations.
 *
 * The sparse bounded-variable revised simplex (SimplexImpl::kSparse) is
 * checked against the dense flat-tableau oracle (SimplexImpl::kDense)
 * on hundreds of seeded random LPs spanning all three outcomes
 * (optimal / infeasible / unbounded). The two implementations share no
 * pivoting code — dense materializes bound rows and shifts variables,
 * sparse handles bounds natively on a factorized basis — so agreement
 * on status and objective is strong evidence both are right.
 *
 * Every sparse optimum is additionally verified against its own LP
 * duality certificate (dual feasibility, reduced-cost signs,
 * stationarity, complementary slackness), which does not rely on the
 * oracle at all.
 */
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "solver/model.hpp"
#include "solver/simplex.hpp"

namespace flex::solver {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr int kSeeds = 500;

/** Random bounded-variable LP: mixed relations, fixed/ranged/unbounded
 * variables, both senses. Finite lower bounds keep the dense oracle in
 * its supported regime. */
Model
MakeRandomLp(std::uint64_t seed)
{
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0x243F6A8885A308D3ULL);
  Model m;
  m.SetSense(rng.Bernoulli(0.5) ? Sense::kMaximize : Sense::kMinimize);
  const int n = 1 + static_cast<int>(rng.UniformInt(0, 13));
  const int rows = 1 + static_cast<int>(rng.UniformInt(0, 11));
  for (int j = 0; j < n; ++j) {
    const double lo = rng.Uniform(-5.0, 5.0);
    double hi;
    const double shape = rng.Uniform(0.0, 1.0);
    if (shape < 0.1)
      hi = lo;  // fixed variable
    else if (shape < 0.3)
      hi = kInf;  // ray candidate
    else
      hi = lo + rng.Uniform(0.0, 10.0);
    m.AddContinuous("x" + std::to_string(j), lo, hi,
                    rng.Uniform(-8.0, 8.0));
  }
  for (int i = 0; i < rows; ++i) {
    std::vector<std::pair<VarIndex, double>> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.Bernoulli(0.6))
        terms.emplace_back(j, rng.Uniform(-5.0, 5.0));
    }
    const int rel = static_cast<int>(rng.UniformInt(0, 2));
    m.AddConstraint("c" + std::to_string(i), std::move(terms),
                    static_cast<Relation>(rel), rng.Uniform(-10.0, 10.0));
  }
  return m;
}

/** Checks the sparse solver's own optimality certificate. All
 * quantities are in the minimize orientation the solver documents. */
void
CheckCertificate(const Model& m, const LpResult& r, std::uint64_t seed)
{
  SCOPED_TRACE("seed " + std::to_string(seed));
  const int n = m.NumVariables();
  const int rows = m.NumConstraints();
  ASSERT_EQ(static_cast<int>(r.dual.size()), rows);
  ASSERT_EQ(static_cast<int>(r.reduced_costs.size()), n);
  const double sgn = m.sense() == Sense::kMaximize ? -1.0 : 1.0;
  constexpr double kTol = 1e-6;

  // Primal feasibility of the reported point.
  EXPECT_TRUE(m.IsFeasible(r.x, kTol));

  for (int i = 0; i < rows; ++i) {
    const Constraint& c = m.constraints()[static_cast<std::size_t>(i)];
    const double y = r.dual[static_cast<std::size_t>(i)];
    // Dual feasibility: <= rows price non-positive, >= rows
    // non-negative, equalities unrestricted (minimize orientation).
    if (c.relation == Relation::kLessEqual)
      EXPECT_LE(y, kTol);
    else if (c.relation == Relation::kGreaterEqual)
      EXPECT_GE(y, -kTol);
    // Complementary slackness: a priced row must be tight.
    if (std::fabs(y) > kTol) {
      double activity = 0.0;
      for (const auto& [var, coef] : c.terms)
        activity += coef * r.x[static_cast<std::size_t>(var)];
      EXPECT_NEAR(activity, c.rhs, kTol * std::max(1.0, std::fabs(c.rhs)))
          << "row " << i << " priced at " << y << " but slack";
    }
  }

  for (int j = 0; j < n; ++j) {
    const Variable& v = m.variables()[static_cast<std::size_t>(j)];
    const double xj = r.x[static_cast<std::size_t>(j)];
    const double rc = r.reduced_costs[static_cast<std::size_t>(j)];
    // Stationarity: rc == c_min - A^T y, recomputed from model data.
    double expect = sgn * v.objective;
    for (int i = 0; i < rows; ++i) {
      const Constraint& c = m.constraints()[static_cast<std::size_t>(i)];
      for (const auto& [var, coef] : c.terms) {
        if (var == j)
          expect -= coef * r.dual[static_cast<std::size_t>(i)];
      }
    }
    EXPECT_NEAR(rc, expect, kTol * std::max(1.0, std::fabs(expect)))
        << "stationarity of x" << j;
    // Reduced-cost signs by position. A variable sitting on both bounds
    // (fixed or degenerate narrow range) admits any sign.
    const bool at_lower = xj <= v.lower + 1e-7;
    const bool at_upper = std::isfinite(v.upper) && xj >= v.upper - 1e-7;
    if (at_lower && at_upper)
      continue;
    if (at_lower)
      EXPECT_GE(rc, -kTol) << "x" << j << " at lower bound";
    else if (at_upper)
      EXPECT_LE(rc, kTol) << "x" << j << " at upper bound";
    else
      EXPECT_NEAR(rc, 0.0, kTol) << "x" << j << " basic/interior";
  }
}

TEST(LpDifferentialTest, SparseAgreesWithDenseOracleOn500RandomLps)
{
  SimplexSolver::Options sparse_opts;
  sparse_opts.impl = SimplexImpl::kSparse;
  SimplexSolver::Options dense_opts;
  dense_opts.impl = SimplexImpl::kDense;
  const SimplexSolver sparse(sparse_opts);
  const SimplexSolver dense(dense_opts);

  int optimal = 0;
  int infeasible = 0;
  int unbounded = 0;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const Model m = MakeRandomLp(seed);
    const LpResult rs = sparse.Solve(m);
    const LpResult rd = dense.Solve(m);

    ASSERT_NE(rs.status, LpStatus::kIterationLimit);
    ASSERT_NE(rd.status, LpStatus::kIterationLimit);
    ASSERT_EQ(rs.status, rd.status)
        << "sparse=" << static_cast<int>(rs.status)
        << " dense=" << static_cast<int>(rd.status);

    switch (rs.status) {
      case LpStatus::kOptimal: {
        ++optimal;
        const double scale = std::max(1.0, std::fabs(rd.objective));
        EXPECT_NEAR(rs.objective, rd.objective, 1e-9 * scale);
        CheckCertificate(m, rs, seed);
        // The dense oracle fills no certificate; that asymmetry is the
        // point of keeping it as an independent implementation.
        EXPECT_TRUE(rd.dual.empty());
        break;
      }
      case LpStatus::kInfeasible:
        ++infeasible;
        break;
      case LpStatus::kUnbounded:
        ++unbounded;
        break;
      case LpStatus::kIterationLimit:
        break;
    }
  }

  // The generator must actually exercise all three outcomes, or the
  // differential signal is weaker than it looks.
  EXPECT_GE(optimal, 50) << "generator produced too few optimal LPs";
  EXPECT_GE(infeasible, 10) << "generator produced too few infeasible LPs";
  EXPECT_GE(unbounded, 10) << "generator produced too few unbounded LPs";
}

TEST(LpDifferentialTest, AgreementHoldsUnderBoundOverrides)
{
  // Branch-and-bound exercises SolveWithBounds, not Solve; run a
  // narrower differential sweep through that entry point.
  SimplexSolver::Options dense_opts;
  dense_opts.impl = SimplexImpl::kDense;
  const SimplexSolver sparse;  // defaults to kSparse
  const SimplexSolver dense(dense_opts);
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const Model m = MakeRandomLp(seed);
    Rng rng(seed + 7777);
    BoundOverrides overrides(static_cast<std::size_t>(m.NumVariables()));
    for (int j = 0; j < m.NumVariables(); ++j) {
      if (!rng.Bernoulli(0.3))
        continue;
      const Variable& v = m.variables()[static_cast<std::size_t>(j)];
      const double lo = v.lower + rng.Uniform(0.0, 2.0);
      const double hi = std::isfinite(v.upper)
                            ? std::max(lo, v.upper - rng.Uniform(0.0, 2.0))
                            : lo + rng.Uniform(0.0, 6.0);
      if (lo <= hi)
        overrides[static_cast<std::size_t>(j)] = {lo, hi};
    }
    const LpResult rs = sparse.SolveWithBounds(m, overrides);
    const LpResult rd = dense.SolveWithBounds(m, overrides);
    ASSERT_EQ(rs.status, rd.status);
    if (rs.status == LpStatus::kOptimal) {
      const double scale = std::max(1.0, std::fabs(rd.objective));
      EXPECT_NEAR(rs.objective, rd.objective, 1e-9 * scale);
    }
  }
}

}  // namespace
}  // namespace flex::solver
