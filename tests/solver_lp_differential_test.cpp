/**
 * @file
 * Differential test harness for the two simplex implementations.
 *
 * The sparse bounded-variable revised simplex (SimplexImpl::kSparse) is
 * checked against the dense flat-tableau oracle (SimplexImpl::kDense)
 * on hundreds of seeded random LPs spanning all three outcomes
 * (optimal / infeasible / unbounded). The two implementations share no
 * pivoting code — dense materializes bound rows and shifts variables,
 * sparse handles bounds natively on a factorized basis — so agreement
 * on status and objective is strong evidence both are right.
 *
 * Every sparse optimum is additionally verified against its own LP
 * duality certificate (dual feasibility, reduced-cost signs,
 * stationarity, complementary slackness), which does not rely on the
 * oracle at all.
 */
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "solver/model.hpp"
#include "solver/simplex.hpp"

namespace flex::solver {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr int kSeeds = 500;

/** Random bounded-variable LP: mixed relations, fixed/ranged/unbounded
 * variables, both senses. Finite lower bounds keep the dense oracle in
 * its supported regime. */
Model
MakeRandomLp(std::uint64_t seed)
{
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0x243F6A8885A308D3ULL);
  Model m;
  m.SetSense(rng.Bernoulli(0.5) ? Sense::kMaximize : Sense::kMinimize);
  const int n = 1 + static_cast<int>(rng.UniformInt(0, 13));
  const int rows = 1 + static_cast<int>(rng.UniformInt(0, 11));
  for (int j = 0; j < n; ++j) {
    const double lo = rng.Uniform(-5.0, 5.0);
    double hi;
    const double shape = rng.Uniform(0.0, 1.0);
    if (shape < 0.1)
      hi = lo;  // fixed variable
    else if (shape < 0.3)
      hi = kInf;  // ray candidate
    else
      hi = lo + rng.Uniform(0.0, 10.0);
    m.AddContinuous("x" + std::to_string(j), lo, hi,
                    rng.Uniform(-8.0, 8.0));
  }
  for (int i = 0; i < rows; ++i) {
    std::vector<std::pair<VarIndex, double>> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.Bernoulli(0.6))
        terms.emplace_back(j, rng.Uniform(-5.0, 5.0));
    }
    const int rel = static_cast<int>(rng.UniformInt(0, 2));
    m.AddConstraint("c" + std::to_string(i), std::move(terms),
                    static_cast<Relation>(rel), rng.Uniform(-10.0, 10.0));
  }
  return m;
}

/** Checks the sparse solver's own optimality certificate. All
 * quantities are in the minimize orientation the solver documents. */
void
CheckCertificate(const Model& m, const LpResult& r, std::uint64_t seed)
{
  SCOPED_TRACE("seed " + std::to_string(seed));
  const int n = m.NumVariables();
  const int rows = m.NumConstraints();
  ASSERT_EQ(static_cast<int>(r.dual.size()), rows);
  ASSERT_EQ(static_cast<int>(r.reduced_costs.size()), n);
  const double sgn = m.sense() == Sense::kMaximize ? -1.0 : 1.0;
  constexpr double kTol = 1e-6;

  // Primal feasibility of the reported point.
  EXPECT_TRUE(m.IsFeasible(r.x, kTol));

  for (int i = 0; i < rows; ++i) {
    const Constraint& c = m.constraints()[static_cast<std::size_t>(i)];
    const double y = r.dual[static_cast<std::size_t>(i)];
    // Dual feasibility: <= rows price non-positive, >= rows
    // non-negative, equalities unrestricted (minimize orientation).
    if (c.relation == Relation::kLessEqual)
      EXPECT_LE(y, kTol);
    else if (c.relation == Relation::kGreaterEqual)
      EXPECT_GE(y, -kTol);
    // Complementary slackness: a priced row must be tight.
    if (std::fabs(y) > kTol) {
      double activity = 0.0;
      for (const auto& [var, coef] : c.terms)
        activity += coef * r.x[static_cast<std::size_t>(var)];
      EXPECT_NEAR(activity, c.rhs, kTol * std::max(1.0, std::fabs(c.rhs)))
          << "row " << i << " priced at " << y << " but slack";
    }
  }

  for (int j = 0; j < n; ++j) {
    const Variable& v = m.variables()[static_cast<std::size_t>(j)];
    const double xj = r.x[static_cast<std::size_t>(j)];
    const double rc = r.reduced_costs[static_cast<std::size_t>(j)];
    // Stationarity: rc == c_min - A^T y, recomputed from model data.
    double expect = sgn * v.objective;
    for (int i = 0; i < rows; ++i) {
      const Constraint& c = m.constraints()[static_cast<std::size_t>(i)];
      for (const auto& [var, coef] : c.terms) {
        if (var == j)
          expect -= coef * r.dual[static_cast<std::size_t>(i)];
      }
    }
    EXPECT_NEAR(rc, expect, kTol * std::max(1.0, std::fabs(expect)))
        << "stationarity of x" << j;
    // Reduced-cost signs by position. A variable sitting on both bounds
    // (fixed or degenerate narrow range) admits any sign.
    const bool at_lower = xj <= v.lower + 1e-7;
    const bool at_upper = std::isfinite(v.upper) && xj >= v.upper - 1e-7;
    if (at_lower && at_upper)
      continue;
    if (at_lower)
      EXPECT_GE(rc, -kTol) << "x" << j << " at lower bound";
    else if (at_upper)
      EXPECT_LE(rc, kTol) << "x" << j << " at upper bound";
    else
      EXPECT_NEAR(rc, 0.0, kTol) << "x" << j << " basic/interior";
  }
}

TEST(LpDifferentialTest, SparseAgreesWithDenseOracleOn500RandomLps)
{
  SimplexSolver::Options sparse_opts;
  sparse_opts.impl = SimplexImpl::kSparse;
  SimplexSolver::Options dense_opts;
  dense_opts.impl = SimplexImpl::kDense;
  const SimplexSolver sparse(sparse_opts);
  const SimplexSolver dense(dense_opts);

  int optimal = 0;
  int infeasible = 0;
  int unbounded = 0;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const Model m = MakeRandomLp(seed);
    const LpResult rs = sparse.Solve(m);
    const LpResult rd = dense.Solve(m);

    ASSERT_NE(rs.status, LpStatus::kIterationLimit);
    ASSERT_NE(rd.status, LpStatus::kIterationLimit);
    ASSERT_EQ(rs.status, rd.status)
        << "sparse=" << static_cast<int>(rs.status)
        << " dense=" << static_cast<int>(rd.status);

    switch (rs.status) {
      case LpStatus::kOptimal: {
        ++optimal;
        const double scale = std::max(1.0, std::fabs(rd.objective));
        EXPECT_NEAR(rs.objective, rd.objective, 1e-9 * scale);
        CheckCertificate(m, rs, seed);
        // The dense oracle fills no certificate; that asymmetry is the
        // point of keeping it as an independent implementation.
        EXPECT_TRUE(rd.dual.empty());
        break;
      }
      case LpStatus::kInfeasible:
        ++infeasible;
        break;
      case LpStatus::kUnbounded:
        ++unbounded;
        break;
      case LpStatus::kIterationLimit:
        break;
    }
  }

  // The generator must actually exercise all three outcomes, or the
  // differential signal is weaker than it looks.
  EXPECT_GE(optimal, 50) << "generator produced too few optimal LPs";
  EXPECT_GE(infeasible, 10) << "generator produced too few infeasible LPs";
  EXPECT_GE(unbounded, 10) << "generator produced too few unbounded LPs";
}

TEST(LpDifferentialTest, AgreementHoldsUnderBoundOverrides)
{
  // Branch-and-bound exercises SolveWithBounds, not Solve; run a
  // narrower differential sweep through that entry point.
  SimplexSolver::Options dense_opts;
  dense_opts.impl = SimplexImpl::kDense;
  const SimplexSolver sparse;  // defaults to kSparse
  const SimplexSolver dense(dense_opts);
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const Model m = MakeRandomLp(seed);
    Rng rng(seed + 7777);
    BoundOverrides overrides(static_cast<std::size_t>(m.NumVariables()));
    for (int j = 0; j < m.NumVariables(); ++j) {
      if (!rng.Bernoulli(0.3))
        continue;
      const Variable& v = m.variables()[static_cast<std::size_t>(j)];
      const double lo = v.lower + rng.Uniform(0.0, 2.0);
      const double hi = std::isfinite(v.upper)
                            ? std::max(lo, v.upper - rng.Uniform(0.0, 2.0))
                            : lo + rng.Uniform(0.0, 6.0);
      if (lo <= hi)
        overrides[static_cast<std::size_t>(j)] = {lo, hi};
    }
    const LpResult rs = sparse.SolveWithBounds(m, overrides);
    const LpResult rd = dense.SolveWithBounds(m, overrides);
    ASSERT_EQ(rs.status, rd.status);
    if (rs.status == LpStatus::kOptimal) {
      const double scale = std::max(1.0, std::fabs(rd.objective));
      EXPECT_NEAR(rs.objective, rd.objective, 1e-9 * scale);
    }
  }
}

TEST(LpDifferentialTest, DualSimplexWarmRestartAgreesWithColdOracleOn500Seeds)
{
  // The branch-and-bound warm path: solve an LP, tighten bounds past
  // the optimal point (what branching does), re-solve warm in the same
  // workspace. The warm solve runs the dual-simplex repair; the dense
  // oracle re-solves cold from scratch. Beyond objective agreement,
  // this sweep is what lets the solver *trust* a dual-simplex
  // kInfeasible verdict as a Farkas certificate: the oracle confirms
  // every one independently.
  SimplexSolver::Options dense_opts;
  dense_opts.impl = SimplexImpl::kDense;
  const SimplexSolver sparse;  // defaults to kSparse
  const SimplexSolver dense(dense_opts);
  SimplexWorkspace ws;

  int compared = 0;
  int base_optimal = 0;
  int warm_used = 0;
  int dual_restarts = 0;
  int infeasible_agreed = 0;
  // The generator yields an optimal base LP on roughly one seed in
  // seven (the rest are infeasible or unbounded and have no basis to
  // warm-start from), so sweep a wider seed range to bank 500-seed
  // statistics on the warm path itself.
  for (std::uint64_t seed = 0; seed < 4 * kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const Model m = MakeRandomLp(seed);
    SimplexBasis basis;
    const LpResult base =
        sparse.SolveWithBounds(m, BoundOverrides{}, &ws, nullptr, &basis);
    if (base.status != LpStatus::kOptimal || basis.empty())
      continue;
    ++base_optimal;

    // Branching-style perturbation: cut one or two variables' boxes
    // just past the optimal point — exactly what a branch does, and
    // exactly what pushes the parent-optimal basis out of primal range
    // while usually leaving the child feasible.
    Rng rng(seed * 31 + 17);
    const int n = m.NumVariables();
    BoundOverrides overrides(static_cast<std::size_t>(n));
    // Usually one or two shallow branching cuts (feasible children that
    // the dual phase repairs); sometimes a deep multi-variable cut that
    // drives the child infeasible, exercising the Farkas verdicts.
    const bool deep = rng.Bernoulli(0.25);
    const int cuts = deep ? n : 1 + (rng.Bernoulli(0.4) ? 1 : 0);
    for (int c = 0; c < cuts; ++c) {
      const int j = deep ? c
                         : static_cast<int>(rng.UniformInt(
                               0, static_cast<std::int64_t>(n) - 1));
      if (deep && !rng.Bernoulli(0.4))
        continue;
      const Variable& v = m.variables()[static_cast<std::size_t>(j)];
      const double xj = base.x[static_cast<std::size_t>(j)];
      const double depth = deep ? rng.Uniform(0.0, 1.5)
                                : rng.Uniform(0.05, 0.8);
      double lo = v.lower;
      double hi = v.upper;
      if (rng.Bernoulli(0.5)) {
        hi = std::max(lo, xj - depth);
        if (std::isfinite(v.upper))
          hi = std::min(hi, v.upper);
      } else {
        lo = xj + depth;
        if (std::isfinite(hi))
          lo = std::min(lo, hi);
        lo = std::max(lo, v.lower);
      }
      if (lo <= hi)
        overrides[static_cast<std::size_t>(j)] = {lo, hi};
    }

    const LpResult rw = sparse.SolveWithBounds(m, overrides, &ws, &basis,
                                               nullptr);
    const LpResult rd = dense.SolveWithBounds(m, overrides);
    ASSERT_NE(rw.status, LpStatus::kIterationLimit);
    ASSERT_EQ(rw.status, rd.status)
        << "warm sparse=" << static_cast<int>(rw.status)
        << " cold dense=" << static_cast<int>(rd.status);
    EXPECT_TRUE(rw.warm_start_attempted);
    if (rw.warm_start_used)
      ++warm_used;
    if (rw.warm_dual_restart)
      ++dual_restarts;
    if (rw.status == LpStatus::kInfeasible)
      ++infeasible_agreed;
    if (rw.status == LpStatus::kOptimal) {
      ++compared;
      const double scale = std::max(1.0, std::fabs(rd.objective));
      EXPECT_NEAR(rw.objective, rd.objective, 1e-9 * scale);
      // The certificate is stated against the *effective* bounds; build
      // the equivalent model so the sign checks see the override box.
      Model eff;
      eff.SetSense(m.sense());
      for (int j = 0; j < n; ++j) {
        const Variable& v = m.variables()[static_cast<std::size_t>(j)];
        double lo = v.lower;
        double hi = v.upper;
        if (overrides[static_cast<std::size_t>(j)]) {
          lo = std::max(lo, overrides[static_cast<std::size_t>(j)]->first);
          hi = std::min(hi, overrides[static_cast<std::size_t>(j)]->second);
        }
        eff.AddContinuous(v.name, lo, hi, v.objective);
      }
      for (const Constraint& c : m.constraints()) {
        eff.AddConstraint(c.name,
                          std::vector<std::pair<VarIndex, double>>(
                              c.terms.begin(), c.terms.end()),
                          c.relation, c.rhs);
      }
      CheckCertificate(eff, rw, seed);
    }
  }

  // The sweep must actually exercise the machinery it claims to test.
  EXPECT_GE(base_optimal, 250) << "generator yield collapsed";
  EXPECT_GE(compared, 200) << "too few optimal warm re-solves";
  EXPECT_GE(warm_used, 250) << "warm path fell back cold too often";
  EXPECT_GE(dual_restarts, 80) << "dual-simplex repair rarely engaged";
  EXPECT_GE(infeasible_agreed, 25)
      << "no infeasible children: Farkas verdicts untested";
}

TEST(LpDifferentialTest, ForrestTomlinMatchesFreshLuOverLongPivotSequences)
{
  // Property test of the factorization alone: drive a long random pivot
  // sequence through Forrest–Tomlin updates (refactorizing only on the
  // production schedule), and every few pivots compare Ftran/Btran
  // against a from-scratch LU of the same basis. Solutions are compared
  // by *column* key — the two factorizations may order rows differently
  // — and the Ftran result is additionally verified against the
  // reconstruction identity B x = v, which needs no second
  // factorization at all.
  constexpr int kRefactorInterval = 64;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed * 7919 + 3);
    const int rows = 12 + static_cast<int>(rng.UniformInt(0, 28));
    const int ncols = 3 * rows;

    SparseColumns cols;
    cols.Clear(rows);
    std::vector<char> used(static_cast<std::size_t>(rows), 0);
    for (int c = 0; c < ncols; ++c) {
      // One strong anchor entry per column (keeps every basis we pick
      // comfortably nonsingular) plus a few random off-anchor terms.
      std::fill(used.begin(), used.end(), 0);
      const int anchor = c % rows;
      used[static_cast<std::size_t>(anchor)] = 1;
      cols.row.push_back(anchor);
      cols.value.push_back((rng.Bernoulli(0.5) ? 1.0 : -1.0) *
                           rng.Uniform(1.0, 3.0));
      const int extras = static_cast<int>(rng.UniformInt(0, 4));
      for (int k = 0; k < extras; ++k) {
        const int r = static_cast<int>(
            rng.UniformInt(0, static_cast<std::uint64_t>(rows - 1)));
        if (used[static_cast<std::size_t>(r)])
          continue;
        used[static_cast<std::size_t>(r)] = 1;
        cols.row.push_back(r);
        cols.value.push_back(rng.Uniform(-2.0, 2.0));
      }
      cols.start.push_back(static_cast<int>(cols.row.size()));
    }
    std::vector<double> cost(static_cast<std::size_t>(ncols));
    for (int c = 0; c < ncols; ++c)
      cost[static_cast<std::size_t>(c)] = rng.Uniform(-4.0, 4.0);

    std::vector<int> basic(static_cast<std::size_t>(rows));
    std::vector<char> in_basis(static_cast<std::size_t>(ncols), 0);
    for (int r = 0; r < rows; ++r) {
      basic[static_cast<std::size_t>(r)] = r;
      in_basis[static_cast<std::size_t>(r)] = 1;
    }
    BasisFactorization ft;
    ft.Reset(rows);
    ASSERT_TRUE(ft.Refactorize(cols, basic));

    std::vector<double> alpha(static_cast<std::size_t>(rows));
    for (int step = 0; step < 200; ++step) {
      SCOPED_TRACE("step " + std::to_string(step));
      int q = -1;
      do {
        q = static_cast<int>(
            rng.UniformInt(0, static_cast<std::uint64_t>(ncols - 1)));
      } while (in_basis[static_cast<std::size_t>(q)]);
      std::fill(alpha.begin(), alpha.end(), 0.0);
      for (int k = cols.start[static_cast<std::size_t>(q)];
           k < cols.start[static_cast<std::size_t>(q) + 1]; ++k) {
        alpha[static_cast<std::size_t>(
            cols.row[static_cast<std::size_t>(k)])] =
            cols.value[static_cast<std::size_t>(k)];
      }
      ft.Ftran(alpha);
      int pr = 0;
      for (int r = 1; r < rows; ++r) {
        if (std::fabs(alpha[static_cast<std::size_t>(r)]) >
            std::fabs(alpha[static_cast<std::size_t>(pr)]))
          pr = r;
      }
      if (std::fabs(alpha[static_cast<std::size_t>(pr)]) < 1e-6)
        continue;  // no usable pivot for this column; try another
      in_basis[static_cast<std::size_t>(
          basic[static_cast<std::size_t>(pr)])] = 0;
      basic[static_cast<std::size_t>(pr)] = q;
      in_basis[static_cast<std::size_t>(q)] = 1;
      if (!ft.Update(pr, alpha) ||
          ft.updates_since_refactor() >= kRefactorInterval) {
        ASSERT_TRUE(ft.Refactorize(cols, basic));
      }

      if (step % 10 != 9)
        continue;
      std::vector<int> basic_fresh = basic;
      BasisFactorization lu;
      lu.Reset(rows);
      ASSERT_TRUE(lu.Refactorize(cols, basic_fresh));

      // Ftran: same right-hand side through both factorizations.
      std::vector<double> v(static_cast<std::size_t>(rows));
      for (int r = 0; r < rows; ++r)
        v[static_cast<std::size_t>(r)] = rng.Uniform(-3.0, 3.0);
      std::vector<double> xa = v;
      std::vector<double> xb = v;
      ft.Ftran(xa);
      lu.Ftran(xb);
      std::vector<double> by_col_a(static_cast<std::size_t>(ncols), 0.0);
      std::vector<double> by_col_b(static_cast<std::size_t>(ncols), 0.0);
      for (int r = 0; r < rows; ++r) {
        by_col_a[static_cast<std::size_t>(basic[static_cast<std::size_t>(r)])] =
            xa[static_cast<std::size_t>(r)];
        by_col_b[static_cast<std::size_t>(
            basic_fresh[static_cast<std::size_t>(r)])] =
            xb[static_cast<std::size_t>(r)];
      }
      for (int c = 0; c < ncols; ++c) {
        EXPECT_NEAR(by_col_a[static_cast<std::size_t>(c)],
                    by_col_b[static_cast<std::size_t>(c)],
                    1e-7 * std::max(1.0, std::fabs(by_col_b[
                               static_cast<std::size_t>(c)])))
            << "Ftran disagreement on basic column " << c;
      }
      // Reconstruction identity: B x == v, straight from the column
      // file — independent of either factorization.
      std::vector<double> recon(static_cast<std::size_t>(rows), 0.0);
      for (int r = 0; r < rows; ++r) {
        const int c = basic[static_cast<std::size_t>(r)];
        for (int k = cols.start[static_cast<std::size_t>(c)];
             k < cols.start[static_cast<std::size_t>(c) + 1]; ++k) {
          recon[static_cast<std::size_t>(
              cols.row[static_cast<std::size_t>(k)])] +=
              cols.value[static_cast<std::size_t>(k)] *
              xa[static_cast<std::size_t>(r)];
        }
      }
      for (int r = 0; r < rows; ++r) {
        EXPECT_NEAR(recon[static_cast<std::size_t>(r)],
                    v[static_cast<std::size_t>(r)],
                    1e-7 * std::max(1.0,
                                    std::fabs(v[static_cast<std::size_t>(r)])))
            << "reconstruction residual in row " << r;
      }
      // Btran: feed each factorization the basic costs in its own row
      // order; the resulting duals are per physical row, directly
      // comparable.
      std::vector<double> ya(static_cast<std::size_t>(rows));
      std::vector<double> yb(static_cast<std::size_t>(rows));
      for (int r = 0; r < rows; ++r) {
        ya[static_cast<std::size_t>(r)] =
            cost[static_cast<std::size_t>(basic[static_cast<std::size_t>(r)])];
        yb[static_cast<std::size_t>(r)] = cost[static_cast<std::size_t>(
            basic_fresh[static_cast<std::size_t>(r)])];
      }
      ft.Btran(ya);
      lu.Btran(yb);
      for (int r = 0; r < rows; ++r) {
        EXPECT_NEAR(ya[static_cast<std::size_t>(r)],
                    yb[static_cast<std::size_t>(r)],
                    1e-7 * std::max(1.0,
                                    std::fabs(yb[static_cast<std::size_t>(r)])))
            << "Btran disagreement in row " << r;
      }
    }
  }
}

}  // namespace
}  // namespace flex::solver
