/**
 * @file
 * Unit and integration tests for Flex-Online: Algorithm 1 decisions and
 * the multi-primary controller.
 */
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "actuation/rack_manager.hpp"
#include "common/error.hpp"
#include "obs/observability.hpp"
#include "online/controller.hpp"
#include "online/decision.hpp"
#include "power/topology.hpp"
#include "sim/event_queue.hpp"

namespace flex::online {
namespace {

using workload::Category;
using workload::ImpactFunction;

/**
 * A toy 2-UPS, 1-PDU-pair fixture: every rack hangs off the pair
 * (UPS 0, UPS 1), making recovery accounting easy to verify by hand.
 */
class DecisionTest : public ::testing::Test {
 protected:
  DecisionInput
  MakeInput(Watts ups0, Watts ups1)
  {
    DecisionInput input;
    input.ups_power = {ups0, ups1};
    input.ups_limit = {KiloWatts(100.0), KiloWatts(100.0)};
    input.pdu_to_ups = {{0, 1}};
    input.buffer = KiloWatts(2.0);
    return input;
  }

  RackSnapshot
  MakeRack(int id, const std::string& workload, Category category,
           double power_kw, double flex_kw = 0.0)
  {
    RackSnapshot rack;
    rack.rack_id = id;
    rack.workload = workload;
    rack.category = category;
    rack.pdu_pair = 0;
    rack.current_power = KiloWatts(power_kw);
    rack.flex_power = KiloWatts(flex_kw);
    return rack;
  }
};

TEST_F(DecisionTest, NoOverdrawMeansNoActions)
{
  DecisionInput input = MakeInput(KiloWatts(50.0), KiloWatts(50.0));
  input.racks = {MakeRack(0, "sr", Category::kSoftwareRedundant, 20.0)};
  const DecisionResult result = DecideActions(input);
  EXPECT_TRUE(result.satisfied);
  EXPECT_TRUE(result.actions.empty());
  EXPECT_EQ(result.iterations, 0);
}

TEST_F(DecisionTest, ShutsDownSoftwareRedundantToShavePower)
{
  // UPS 1 failed (0 kW), UPS 0 carries 120 kW > 98 kW threshold.
  DecisionInput input = MakeInput(KiloWatts(120.0), Watts(0.0));
  input.racks = {
      MakeRack(0, "sr", Category::kSoftwareRedundant, 15.0),
      MakeRack(1, "sr", Category::kSoftwareRedundant, 15.0),
      MakeRack(2, "nc", Category::kNonRedundantNonCapable, 30.0)};
  const DecisionResult result = DecideActions(input);
  EXPECT_TRUE(result.satisfied);
  // 120 -> needs to drop below 98: two shutdowns of 15 kW each.
  ASSERT_EQ(result.actions.size(), 2u);
  for (const Action& action : result.actions) {
    EXPECT_EQ(action.type, ActionType::kShutdown);
    EXPECT_NE(action.rack_id, 2);  // never the non-cap-able rack
  }
  EXPECT_LE(result.projected_ups_power[0].kilowatts(), 98.0 + 1e-9);
}

TEST_F(DecisionTest, ThrottleRecoversOnlyAboveFlexPower)
{
  DecisionInput input = MakeInput(KiloWatts(110.0), Watts(0.0));
  // Cap-able rack drawing 30 kW with flex power 18 kW: recovery 12 kW.
  input.racks = {
      MakeRack(0, "cap", Category::kNonRedundantCapable, 30.0, 18.0)};
  const DecisionResult result = DecideActions(input);
  EXPECT_TRUE(result.satisfied);
  ASSERT_EQ(result.actions.size(), 1u);
  EXPECT_EQ(result.actions[0].type, ActionType::kThrottle);
  EXPECT_NEAR(result.actions[0].estimated_recovery.kilowatts(), 12.0, 1e-9);
  EXPECT_NEAR(result.projected_ups_power[0].kilowatts(), 98.0, 1e-9);
}

TEST_F(DecisionTest, RackBelowItsCapRecoversNothingAndIsNotPicked)
{
  DecisionInput input = MakeInput(KiloWatts(110.0), Watts(0.0));
  input.racks = {
      MakeRack(0, "cap", Category::kNonRedundantCapable, 15.0, 18.0),
      MakeRack(1, "sr", Category::kSoftwareRedundant, 20.0)};
  const DecisionResult result = DecideActions(input);
  ASSERT_EQ(result.actions.size(), 1u);
  EXPECT_EQ(result.actions[0].rack_id, 1);  // the SR rack, not the idle cap
}

TEST_F(DecisionTest, ImpactFunctionsSteerTheChoice)
{
  DecisionInput input = MakeInput(KiloWatts(105.0), Watts(0.0));
  input.racks = {
      MakeRack(0, "sr", Category::kSoftwareRedundant, 10.0),
      MakeRack(1, "cap", Category::kNonRedundantCapable, 30.0, 18.0)};
  // Extreme-2: shutting down SR is critical, throttling free.
  input.impact.emplace("sr", ImpactFunction::Critical());
  input.impact.emplace("cap", ImpactFunction::Zero());
  const DecisionResult r2 = DecideActions(input);
  ASSERT_FALSE(r2.actions.empty());
  EXPECT_EQ(r2.actions[0].type, ActionType::kThrottle);

  // Extreme-1: the mirror image.
  input.impact.clear();
  input.impact.emplace("sr", ImpactFunction::Zero());
  input.impact.emplace("cap", ImpactFunction::Critical());
  const DecisionResult r1 = DecideActions(input);
  ASSERT_FALSE(r1.actions.empty());
  EXPECT_EQ(r1.actions[0].type, ActionType::kShutdown);
}

TEST_F(DecisionTest, DefaultBehaviourThrottlesBeforeShuttingDown)
{
  // No impact functions registered: the paper's default is to throttle
  // all cap-able racks before shutting down software-redundant ones.
  DecisionInput input = MakeInput(KiloWatts(105.0), Watts(0.0));
  input.racks = {
      MakeRack(0, "sr", Category::kSoftwareRedundant, 10.0),
      MakeRack(1, "cap", Category::kNonRedundantCapable, 30.0, 25.0)};
  const DecisionResult result = DecideActions(input);
  ASSERT_FALSE(result.actions.empty());
  EXPECT_EQ(result.actions[0].type, ActionType::kThrottle);
}

TEST_F(DecisionTest, UnsatisfiableOverloadReportsNotSatisfied)
{
  DecisionInput input = MakeInput(KiloWatts(150.0), Watts(0.0));
  input.racks = {
      MakeRack(0, "nc", Category::kNonRedundantNonCapable, 150.0)};
  const DecisionResult result = DecideActions(input);
  EXPECT_FALSE(result.satisfied);
  EXPECT_TRUE(result.actions.empty());
}

TEST_F(DecisionTest, AlreadyActedRacksAreNotReSelected)
{
  DecisionInput input = MakeInput(KiloWatts(120.0), Watts(0.0));
  input.racks = {
      MakeRack(0, "sr", Category::kSoftwareRedundant, 15.0),
      MakeRack(1, "sr", Category::kSoftwareRedundant, 15.0)};
  input.already_acted = {0};
  const DecisionResult result = DecideActions(input);
  ASSERT_EQ(result.actions.size(), 1u);
  EXPECT_EQ(result.actions[0].rack_id, 1);
}

TEST_F(DecisionTest, RecoveryGoesToTheSurvivorWhenPartnerIsDead)
{
  // Two pairs: pair 0 on (0,1), pair 1 on (0,1) as well in this toy; use
  // a 3-UPS layout to check split attribution instead.
  DecisionInput input;
  input.ups_power = {KiloWatts(120.0), KiloWatts(60.0), KiloWatts(60.0)};
  input.ups_limit = {KiloWatts(100.0), KiloWatts(100.0), KiloWatts(100.0)};
  input.pdu_to_ups = {{0, 1}, {0, 2}};
  input.buffer = KiloWatts(2.0);
  RackSnapshot rack = MakeRack(0, "sr", Category::kSoftwareRedundant, 30.0);
  rack.pdu_pair = 0;  // connects UPS 0 and healthy UPS 1
  input.racks = {rack};
  const DecisionResult result = DecideActions(input);
  ASSERT_EQ(result.actions.size(), 1u);
  // Both UPSes alive: the 30 kW recovery splits 15/15.
  EXPECT_NEAR(result.projected_ups_power[0].kilowatts(), 105.0, 1e-9);
  EXPECT_NEAR(result.projected_ups_power[1].kilowatts(), 45.0, 1e-9);
}

TEST_F(DecisionTest, MinimumImpactCandidateWins)
{
  DecisionInput input = MakeInput(KiloWatts(102.0), Watts(0.0));
  input.racks = {
      MakeRack(0, "a", Category::kSoftwareRedundant, 10.0),
      MakeRack(1, "b", Category::kSoftwareRedundant, 10.0)};
  // Workload a charges heavily for its first rack; b is free.
  input.impact.emplace("a", ImpactFunction::Linear());
  input.impact.emplace("b", ImpactFunction::Zero());
  const DecisionResult result = DecideActions(input);
  ASSERT_EQ(result.actions.size(), 1u);
  EXPECT_EQ(result.actions[0].rack_id, 1);
  EXPECT_NEAR(result.actions[0].impact_after, 0.0, 1e-12);
}

TEST_F(DecisionTest, ValidatesInputShapes)
{
  DecisionInput input = MakeInput(KiloWatts(50.0), KiloWatts(50.0));
  input.ups_limit.pop_back();
  EXPECT_THROW(DecideActions(input), ConfigError);
  DecisionInput bad_rack = MakeInput(KiloWatts(50.0), KiloWatts(50.0));
  RackSnapshot rack = MakeRack(0, "x", Category::kSoftwareRedundant, 1.0);
  rack.pdu_pair = 7;  // unknown pair
  bad_rack.racks = {rack};
  EXPECT_THROW(DecideActions(bad_rack), ConfigError);
}

TEST(DefaultImpactTest, OrdersCategoriesAsThePaperPrescribes)
{
  const ImpactFunction cap = DefaultImpact(Category::kNonRedundantCapable);
  const ImpactFunction sr = DefaultImpact(Category::kSoftwareRedundant);
  const ImpactFunction nc = DefaultImpact(Category::kNonRedundantNonCapable);
  // Throttling cap-able racks is always cheaper than shutting down SR.
  for (const double f : {0.1, 0.5, 1.0})
    EXPECT_LT(cap(f), sr(f));
  // And non-cap-able racks are critical from the first rack.
  EXPECT_NEAR(nc(0.5), 1.0, 1e-9);
}

/**
 * Controller integration fixture: a small room driven by hand-delivered
 * telemetry readings (no pipeline), with real rack managers.
 */
class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest()
      : topology_(MakeRoomConfig()),
        plane_(queue_, 8, actuation::RackManagerConfig{}, 99)
  {
  }

  static power::RoomConfig
  MakeRoomConfig()
  {
    power::RoomConfig config;
    config.num_ups = 4;
    config.redundancy_y = 3;
    config.ups_capacity = KiloWatts(100.0);
    config.pdu_pairs_per_ups_pair = 1;
    config.rows_per_pdu_pair = 1;
    config.racks_per_row = 4;
    return config;
  }

  std::vector<ManagedRack>
  MakeRacks()
  {
    // 8 racks: 4 software-redundant on pair 0, 4 cap-able on pair 1.
    std::vector<ManagedRack> racks;
    for (int i = 0; i < 8; ++i) {
      ManagedRack rack;
      rack.rack_id = i;
      rack.workload = i < 4 ? "sr" : "cap";
      rack.category = i < 4 ? Category::kSoftwareRedundant
                            : Category::kNonRedundantCapable;
      rack.pdu_pair = i < 4 ? 0 : 1;
      rack.allocated = KiloWatts(20.0);
      rack.flex_power = KiloWatts(16.0);
      racks.push_back(rack);
    }
    return racks;
  }

  void
  DeliverUps(FlexController& controller, int ups, double kw)
  {
    telemetry::DeviceReading reading;
    reading.device = {telemetry::DeviceKind::kUps, ups};
    reading.value = KiloWatts(kw);
    reading.sampled_at = queue_.Now();
    reading.delivered_at = queue_.Now();
    controller.OnReading(reading);
  }

  void
  DeliverRack(FlexController& controller, int rack, double kw)
  {
    telemetry::DeviceReading reading;
    reading.device = {telemetry::DeviceKind::kRack, rack};
    reading.value = KiloWatts(kw);
    reading.sampled_at = queue_.Now();
    reading.delivered_at = queue_.Now();
    controller.OnReading(reading);
  }

  sim::EventQueue queue_;
  power::RoomTopology topology_;
  actuation::ActuationPlane plane_;
};

TEST_F(ControllerTest, ActsOnOverdrawAndEnforcesThroughRackManagers)
{
  FlexController controller(queue_, topology_, MakeRacks(), plane_, {},
                            ControllerConfig{}, 0);
  for (int r = 0; r < 8; ++r)
    DeliverRack(controller, r, 18.0);
  // UPS 0 reads far over its 100 kW limit.
  DeliverUps(controller, 0, 140.0);
  EXPECT_EQ(controller.stats().overdraw_events, 1);
  EXPECT_TRUE(controller.actions_in_force());
  queue_.RunUntil(Seconds(10.0));
  // Some rack manager actually received the command.
  int acted = 0;
  for (int r = 0; r < 8; ++r) {
    const auto& state = plane_.rack(r).state();
    if (!state.powered_on || state.power_cap)
      ++acted;
  }
  EXPECT_GT(acted, 0);
}

TEST_F(ControllerTest, NoActionWithoutOverdraw)
{
  FlexController controller(queue_, topology_, MakeRacks(), plane_, {},
                            ControllerConfig{}, 0);
  DeliverUps(controller, 0, 50.0);
  DeliverUps(controller, 1, 60.0);
  EXPECT_EQ(controller.stats().overdraw_events, 0);
  EXPECT_FALSE(controller.actions_in_force());
}

TEST_F(ControllerTest, ReleasesActionsAfterSustainedHealth)
{
  ControllerConfig config;
  config.release_delay = Seconds(5.0);
  FlexController controller(queue_, topology_, MakeRacks(), plane_, {},
                            config, 0);
  for (int r = 0; r < 8; ++r)
    DeliverRack(controller, r, 18.0);
  DeliverUps(controller, 0, 140.0);
  queue_.RunUntil(Seconds(10.0));
  ASSERT_TRUE(controller.actions_in_force());
  // Health returns: all UPSes well under the release threshold.
  for (int step = 0; step < 10; ++step) {
    for (int u = 0; u < 4; ++u)
      DeliverUps(controller, u, 60.0);
    queue_.RunUntil(queue_.Now() + Seconds(2.0));
  }
  queue_.RunUntil(Seconds(200.0));
  EXPECT_FALSE(controller.actions_in_force());
  EXPECT_GT(controller.stats().restore_commands +
                controller.stats().uncap_commands, 0);
}

TEST_F(ControllerTest, DoesNotReleaseWhileAUpsLooksDead)
{
  ControllerConfig config;
  config.release_delay = Seconds(5.0);
  FlexController controller(queue_, topology_, MakeRacks(), plane_, {},
                            config, 0);
  for (int r = 0; r < 8; ++r)
    DeliverRack(controller, r, 18.0);
  DeliverUps(controller, 0, 140.0);
  queue_.RunUntil(Seconds(10.0));
  ASSERT_TRUE(controller.actions_in_force());
  // UPS 3 reads zero (still failed): others healthy. No release.
  for (int step = 0; step < 20; ++step) {
    DeliverUps(controller, 0, 60.0);
    DeliverUps(controller, 1, 60.0);
    DeliverUps(controller, 2, 60.0);
    DeliverUps(controller, 3, 0.0);
    queue_.RunUntil(queue_.Now() + Seconds(2.0));
  }
  EXPECT_TRUE(controller.actions_in_force());
}

TEST_F(ControllerTest, MultiPrimaryReplicasOvercorrectButStaySafe)
{
  auto racks = MakeRacks();
  FlexController a(queue_, topology_, racks, plane_, {}, ControllerConfig{},
                   0);
  FlexController b(queue_, topology_, racks, plane_, {}, ControllerConfig{},
                   1);
  for (int r = 0; r < 8; ++r) {
    DeliverRack(a, r, 18.0);
    DeliverRack(b, r, 18.0);
  }
  // Both replicas see the same overdraw at skewed times.
  DeliverUps(a, 0, 140.0);
  queue_.RunUntil(Seconds(0.5));
  DeliverUps(b, 0, 140.0);
  queue_.RunUntil(Seconds(10.0));
  // Both acted; the union of actions is at least each replica's set, and
  // the rack state is a consistent (idempotent) outcome.
  EXPECT_TRUE(a.actions_in_force());
  EXPECT_TRUE(b.actions_in_force());
  int acted = 0;
  for (int r = 0; r < 8; ++r) {
    const auto& state = plane_.rack(r).state();
    if (!state.powered_on || state.power_cap)
      ++acted;
  }
  EXPECT_GT(acted, 0);
}

TEST_F(ControllerTest, FallsBackToAllocationWithoutRackTelemetry)
{
  // No rack readings at all: the controller must assume the
  // conservative allocation and still resolve the overdraw.
  FlexController controller(queue_, topology_, MakeRacks(), plane_, {},
                            ControllerConfig{}, 0);
  DeliverUps(controller, 0, 140.0);
  EXPECT_TRUE(controller.actions_in_force());
  queue_.RunUntil(Seconds(10.0));
  int acted = 0;
  for (int r = 0; r < 8; ++r) {
    const auto& state = plane_.rack(r).state();
    if (!state.powered_on || state.power_cap)
      ++acted;
  }
  EXPECT_GT(acted, 0);
}

TEST_F(ControllerTest, PublishesEmergencyAndAllClearNotifications)
{
  NotificationBus bus;
  std::vector<PowerEmergencyNotification> events;
  bus.Subscribe("", [&](const PowerEmergencyNotification& n) {
    events.push_back(n);
  });
  ControllerConfig config;
  config.release_delay = Seconds(5.0);
  FlexController controller(queue_, topology_, MakeRacks(), plane_, {},
                            config, 0, &bus);
  for (int r = 0; r < 8; ++r)
    DeliverRack(controller, r, 18.0);
  DeliverUps(controller, 0, 160.0);
  queue_.RunUntil(Seconds(10.0));
  // The default policy throttles cap-able racks first but a 160 kW
  // overdraw forces SR shutdowns too -> an emergency must have fired.
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().workload, "sr");
  EXPECT_FALSE(events.front().cleared);
  EXPECT_FALSE(events.front().racks.empty());

  // Recovery: the all-clear arrives for the same workload.
  for (int step = 0; step < 10; ++step) {
    for (int u = 0; u < 4; ++u)
      DeliverUps(controller, u, 60.0);
    queue_.RunUntil(queue_.Now() + Seconds(2.0));
  }
  queue_.RunUntil(Seconds(300.0));
  ASSERT_GE(events.size(), 2u);
  EXPECT_TRUE(events.back().cleared);
  EXPECT_EQ(events.back().workload, "sr");
}

TEST_F(ControllerTest, FailoverDrillProducesOneCompleteTraceWithinBudget)
{
  // End-to-end observability check: a failover drill must stitch
  // exactly ONE reaction trace across all five stages, and the reaction
  // must land inside the tolerance window (Section IV-E's temporal
  // safety claim).
  obs::ObservabilityConfig obs_config;
  obs_config.tracer.budget = Seconds(10.0);
  obs::Observability observability(obs_config);
  observability.BindClock(queue_);
  ControllerConfig config;
  config.obs = &observability;
  auto racks = MakeRacks();
  FlexController controller(queue_, topology_, racks, plane_, {}, config, 0);
  FlexController racing(queue_, topology_, racks, plane_, {}, config, 1);
  for (int r = 0; r < 8; ++r) {
    DeliverRack(controller, r, 18.0);
    DeliverRack(racing, r, 18.0);
  }
  queue_.RunUntil(Seconds(2.0));
  // UPS 0's partner fails; the survivor reads far over its limit.
  // Replica 1 sees the same overload a beat later: multi-primary racing
  // that the tracer must absorb into ONE episode.
  DeliverUps(controller, 0, 140.0);
  queue_.RunUntil(Seconds(2.5));
  DeliverUps(racing, 0, 140.0);
  queue_.RunUntil(Seconds(30.0));

  const obs::ReactionTracer& tracer = observability.tracer();
  ASSERT_EQ(tracer.traces().size(), 1u);
  EXPECT_EQ(tracer.complete_count(), 1u);
  const obs::ReactionTrace& trace = tracer.traces().front();
  EXPECT_TRUE(trace.complete);
  EXPECT_EQ(trace.ups_index, 0);
  EXPECT_EQ(trace.detecting_replica, 0);
  EXPECT_GT(trace.actions, 0);
  EXPECT_GE(trace.duplicate_detections, 1);
  // The stage chain is causally ordered and ends inside the window.
  EXPECT_LE(trace.sampled_at.value(), trace.delivered_at.value());
  EXPECT_LE(trace.delivered_at.value(), trace.detected_at.value());
  EXPECT_LE(trace.detected_at.value(), trace.decided_at.value());
  EXPECT_LE(trace.decided_at.value(), trace.enforced_at.value());
  EXPECT_GT(trace.EndToEnd().value(), 0.0);
  EXPECT_LT(trace.EndToEnd().value(), obs_config.tracer.budget.value());
  EXPECT_TRUE(trace.WithinBudget());
  EXPECT_EQ(tracer.within_budget_count(), 1u);

  // Both replicas counted a detection, but the tracer folded them into
  // one episode: exactly one end-to-end sample.
  const obs::MetricsSnapshot snapshot = observability.metrics().Snapshot();
  ASSERT_NE(snapshot.Find("controller.overdraw_detections"), nullptr);
  EXPECT_DOUBLE_EQ(snapshot.Find("controller.overdraw_detections")->value,
                   2.0);
  ASSERT_NE(snapshot.Find("reaction.end_to_end_s"), nullptr);
  EXPECT_EQ(snapshot.Find("reaction.end_to_end_s")->count, 1u);
}

TEST_F(ControllerTest, IgnoresReadingsForUnknownDevices)
{
  FlexController controller(queue_, topology_, MakeRacks(), plane_, {},
                            ControllerConfig{}, 0);
  EXPECT_NO_THROW(DeliverUps(controller, 77, 500.0));
  EXPECT_NO_THROW(DeliverRack(controller, 77, 500.0));
  EXPECT_EQ(controller.stats().overdraw_events, 0);
}

TEST_F(ControllerTest, RejectsBadConfig)
{
  ControllerConfig bad;
  bad.buffer = KiloWatts(-1.0);
  EXPECT_THROW(FlexController(queue_, topology_, MakeRacks(), plane_, {},
                              bad, 0),
               ConfigError);
  bad = ControllerConfig{};
  bad.release_headroom = 1.5;
  EXPECT_THROW(FlexController(queue_, topology_, MakeRacks(), plane_, {},
                              bad, 0),
               ConfigError);
}

// ---------------------------------------------------------------------------
// HoltForecaster (Section IV-D power estimation)
// ---------------------------------------------------------------------------

TEST(HoltForecasterTest, EmptyForecasterReturnsNothing)
{
  const HoltForecaster forecaster;
  EXPECT_FALSE(forecaster.Forecast(Seconds(10.0)).has_value());
  EXPECT_EQ(forecaster.observations(), 0);
}

TEST(HoltForecasterTest, SingleObservationForecastsLevel)
{
  HoltForecaster forecaster;
  forecaster.Observe(Seconds(1.0), KiloWatts(40.0));
  const auto forecast = forecaster.Forecast(Seconds(3.0));
  ASSERT_TRUE(forecast.has_value());
  EXPECT_NEAR(forecast->kilowatts(), 40.0, 1e-9);
  EXPECT_EQ(forecaster.observations(), 1);
}

TEST(HoltForecasterTest, TracksLinearRampAheadOfLastValue)
{
  // A steadily climbing rack: the Holt forecast projected to "now"
  // must beat the raw last reading, which is what the controller needs
  // from ~2 s stale telemetry.
  HoltForecaster forecaster(0.5, 0.3);
  double t = 0.0;
  double value = 100.0;
  for (int i = 0; i < 30; ++i) {
    t += 2.0;
    value += 10.0;  // +5 W/s
    forecaster.Observe(Seconds(t), Watts(value));
  }
  const double true_next = value + 10.0;
  const auto forecast = forecaster.Forecast(Seconds(t + 2.0));
  ASSERT_TRUE(forecast.has_value());
  const double forecast_error = std::abs(forecast->value() - true_next);
  const double last_value_error = std::abs(value - true_next);
  EXPECT_LT(forecast_error, last_value_error);
}

TEST(HoltForecasterTest, ForecastsNeverGoNegative)
{
  HoltForecaster forecaster(0.8, 0.8);
  forecaster.Observe(Seconds(1.0), Watts(100.0));
  forecaster.Observe(Seconds(2.0), Watts(10.0));  // steep decline
  const auto far = forecaster.Forecast(Seconds(60.0));
  ASSERT_TRUE(far.has_value());
  EXPECT_GE(far->value(), 0.0);
}

TEST(HoltForecasterTest, StaleExtrapolationIsDamped)
{
  // The trend must not extrapolate linearly forever: a forecast far
  // beyond the sampling interval stays near the level.
  HoltForecaster forecaster;
  double t = 0.0;
  for (int i = 0; i < 20; ++i) {
    t += 2.0;
    forecaster.Observe(Seconds(t), Watts(1000.0 + 50.0 * i));
  }
  const auto near = forecaster.Forecast(Seconds(t + 2.0));
  const auto far = forecaster.Forecast(Seconds(t + 200.0));
  ASSERT_TRUE(near.has_value());
  ASSERT_TRUE(far.has_value());
  // Undamped linear extrapolation would add ~25 W/s * 198 s ≈ 5 kW.
  EXPECT_LT(far->value() - near->value(), 1000.0);
}

TEST(RackPowerForecasterBankTest, TracksRacksIndependently)
{
  RackPowerForecasterBank bank(3);
  EXPECT_EQ(bank.num_racks(), 3);
  bank.Observe(0, Seconds(1.0), KiloWatts(10.0));
  bank.Observe(2, Seconds(1.0), KiloWatts(30.0));
  EXPECT_TRUE(bank.Forecast(0, Seconds(2.0)).has_value());
  EXPECT_FALSE(bank.Forecast(1, Seconds(2.0)).has_value());
  ASSERT_TRUE(bank.Forecast(2, Seconds(2.0)).has_value());
  EXPECT_NEAR(bank.Forecast(2, Seconds(2.0))->kilowatts(), 30.0, 1e-9);
}

// ---------------------------------------------------------------------------
// NotificationBus (Section IV-D power-emergency notifications)
// ---------------------------------------------------------------------------

TEST(NotificationBusTest, DeliversOnlyToMatchingWorkload)
{
  NotificationBus bus;
  int terasort_seen = 0;
  int tpce_seen = 0;
  bus.Subscribe("terasort", [&](const PowerEmergencyNotification&) {
    ++terasort_seen;
  });
  bus.Subscribe("tpce", [&](const PowerEmergencyNotification&) {
    ++tpce_seen;
  });
  PowerEmergencyNotification notification;
  notification.workload = "terasort";
  notification.racks = {1, 2};
  bus.Publish(notification);
  EXPECT_EQ(terasort_seen, 1);
  EXPECT_EQ(tpce_seen, 0);
  EXPECT_EQ(bus.published_count(), 1u);
}

TEST(NotificationBusTest, EmptyWorkloadSubscribesToEverything)
{
  NotificationBus bus;
  std::vector<std::string> seen;
  bus.Subscribe("", [&](const PowerEmergencyNotification& n) {
    seen.push_back(n.workload);
  });
  PowerEmergencyNotification a;
  a.workload = "alpha";
  PowerEmergencyNotification b;
  b.workload = "beta";
  b.cleared = true;
  bus.Publish(a);
  bus.Publish(b);
  EXPECT_EQ(seen, (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_EQ(bus.published_count(), 2u);
}

TEST(NotificationBusTest, SubscribersFireInSubscriptionOrder)
{
  NotificationBus bus;
  std::vector<int> order;
  bus.Subscribe("w", [&](const PowerEmergencyNotification&) {
    order.push_back(1);
  });
  bus.Subscribe("", [&](const PowerEmergencyNotification&) {
    order.push_back(2);
  });
  bus.Subscribe("w", [&](const PowerEmergencyNotification&) {
    order.push_back(3);
  });
  PowerEmergencyNotification notification;
  notification.workload = "w";
  bus.Publish(notification);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(NotificationBusTest, PublishWithNoSubscribersStillCounts)
{
  NotificationBus bus;
  PowerEmergencyNotification notification;
  notification.workload = "nobody-listens";
  EXPECT_NO_THROW(bus.Publish(notification));
  EXPECT_EQ(bus.published_count(), 1u);
}

}  // namespace
}  // namespace flex::online
