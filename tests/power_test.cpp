/**
 * @file
 * Unit tests for the power substrate: topology, loads, trip curves.
 */
#include <gtest/gtest.h>

#include <cstdint>

#include "common/error.hpp"
#include "power/incremental.hpp"
#include "power/loads.hpp"
#include "power/topology.hpp"
#include "power/trip_curve.hpp"

namespace flex::power {
namespace {

RoomTopology
DefaultRoom()
{
  return RoomTopology(RoomConfig::EvaluationRoom());
}

TEST(TopologyTest, EvaluationRoomMatchesPaper)
{
  const RoomTopology room = DefaultRoom();
  EXPECT_EQ(room.NumUpses(), 4);
  EXPECT_NEAR(room.TotalProvisionedPower().megawatts(), 9.6, 1e-9);
  // 4N/3: failover budget is 75% of provisioned; 25% reserved.
  EXPECT_NEAR(room.FailoverBudget().megawatts(), 7.2, 1e-9);
  EXPECT_NEAR(room.ReservedPower().megawatts(), 2.4, 1e-9);
  EXPECT_EQ(room.NumPduPairs(), 12);  // C(4,2) combos x 2
  EXPECT_EQ(room.NumRows(), 36);
}

TEST(TopologyTest, EmulationRoomMatchesPaper)
{
  const RoomTopology room{RoomConfig::EmulationRoom()};
  EXPECT_NEAR(room.TotalProvisionedPower().megawatts(), 4.8, 1e-9);
  EXPECT_EQ(room.NumRows(), 36);
  EXPECT_EQ(room.RacksPerRow(), 10);
  EXPECT_EQ(room.NumRows() * room.RacksPerRow(), 360);
}

TEST(TopologyTest, EveryPduPairConnectsTwoDistinctUpses)
{
  const RoomTopology room = DefaultRoom();
  for (PduPairId p = 0; p < room.NumPduPairs(); ++p) {
    const auto [u1, u2] = room.UpsesOfPduPair(p);
    EXPECT_NE(u1, u2);
    EXPECT_GE(u1, 0);
    EXPECT_LT(u2, room.NumUpses());
  }
}

TEST(TopologyTest, UpsPairingIsBalanced)
{
  const RoomTopology room = DefaultRoom();
  // Each UPS pairs with each other UPS the same number of times.
  std::vector<std::vector<int>> pair_count(
      4, std::vector<int>(4, 0));
  for (PduPairId p = 0; p < room.NumPduPairs(); ++p) {
    const auto [u1, u2] = room.UpsesOfPduPair(p);
    ++pair_count[static_cast<std::size_t>(u1)][static_cast<std::size_t>(u2)];
    ++pair_count[static_cast<std::size_t>(u2)][static_cast<std::size_t>(u1)];
  }
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      if (a != b) {
        EXPECT_EQ(pair_count[static_cast<std::size_t>(a)]
                            [static_cast<std::size_t>(b)], 2);
      }
    }
  }
  // And each UPS feeds pdu_pairs_per_ups_pair * (x-1) PDU pairs.
  for (UpsId u = 0; u < room.NumUpses(); ++u)
    EXPECT_EQ(room.PduPairsOfUps(u).size(), 6u);
}

TEST(TopologyTest, RowsMapToPduPairsContiguously)
{
  const RoomTopology room = DefaultRoom();
  for (PduPairId p = 0; p < room.NumPduPairs(); ++p) {
    for (const RowId r : room.RowsOfPduPair(p))
      EXPECT_EQ(room.PduPairOfRow(r), p);
  }
}

TEST(TopologyTest, FailoverShareIsUniform)
{
  const RoomTopology room = DefaultRoom();
  for (UpsId f = 0; f < 4; ++f) {
    for (UpsId u = 0; u < 4; ++u) {
      if (f == u)
        EXPECT_DOUBLE_EQ(room.FailoverShare(f, u), 0.0);
      else
        EXPECT_NEAR(room.FailoverShare(f, u), 1.0 / 3.0, 1e-12);
    }
  }
}

TEST(TopologyTest, RejectsInvalidConfigs)
{
  RoomConfig config;
  config.num_ups = 1;
  EXPECT_THROW(RoomTopology{config}, ConfigError);
  config = RoomConfig{};
  config.redundancy_y = 4;  // y must be < x
  EXPECT_THROW(RoomTopology{config}, ConfigError);
  config = RoomConfig{};
  config.ups_capacity = Watts(0.0);
  EXPECT_THROW(RoomTopology{config}, ConfigError);
}

TEST(TopologyTest, SupportsOtherRedundancyShapes)
{
  RoomConfig config;
  config.num_ups = 5;
  config.redundancy_y = 4;  // 5N/4
  const RoomTopology room{config};
  EXPECT_EQ(room.NumPduPairs(), 10 * config.pdu_pairs_per_ups_pair);
  EXPECT_NEAR(room.FailoverBudget() / room.TotalProvisionedPower(), 0.8,
              1e-12);
  for (UpsId u = 1; u < 5; ++u)
    EXPECT_NEAR(room.FailoverShare(0, u), 0.25, 1e-12);
}

TEST(LoadsTest, NormalLoadsSplitPduLoadEvenly)
{
  const RoomTopology room = DefaultRoom();
  PduPairLoads loads(static_cast<std::size_t>(room.NumPduPairs()),
                     Watts(0.0));
  loads[0] = KiloWatts(100.0);  // pair 0 connects UPS 0 and 1
  const std::vector<Watts> ups = NormalUpsLoads(room, loads);
  const auto [u1, u2] = room.UpsesOfPduPair(0);
  EXPECT_NEAR(ups[static_cast<std::size_t>(u1)].kilowatts(), 50.0, 1e-9);
  EXPECT_NEAR(ups[static_cast<std::size_t>(u2)].kilowatts(), 50.0, 1e-9);
  double total = 0.0;
  for (const Watts w : ups)
    total += w.kilowatts();
  EXPECT_NEAR(total, 100.0, 1e-9);
}

TEST(LoadsTest, FailoverTransfersFullPairLoadToSurvivor)
{
  const RoomTopology room = DefaultRoom();
  PduPairLoads loads(static_cast<std::size_t>(room.NumPduPairs()),
                     Watts(0.0));
  loads[0] = KiloWatts(100.0);
  const auto [u1, u2] = room.UpsesOfPduPair(0);
  const std::vector<Watts> after = FailoverUpsLoads(room, loads, u1);
  EXPECT_NEAR(after[static_cast<std::size_t>(u1)].kilowatts(), 0.0, 1e-9);
  EXPECT_NEAR(after[static_cast<std::size_t>(u2)].kilowatts(), 100.0, 1e-9);
}

TEST(LoadsTest, FailoverConservesTotalLoad)
{
  const RoomTopology room = DefaultRoom();
  PduPairLoads loads;
  for (int p = 0; p < room.NumPduPairs(); ++p)
    loads.push_back(KiloWatts(50.0 + 13.0 * p));
  double total_before = 0.0;
  for (const Watts w : loads)
    total_before += w.kilowatts();
  for (UpsId f = 0; f < room.NumUpses(); ++f) {
    const std::vector<Watts> after = FailoverUpsLoads(room, loads, f);
    double total_after = 0.0;
    for (const Watts w : after)
      total_after += w.kilowatts();
    EXPECT_NEAR(total_after, total_before, 1e-6);
    EXPECT_NEAR(after[static_cast<std::size_t>(f)].value(), 0.0, 1e-9);
  }
}

TEST(LoadsTest, BalancedLoadFailoverGivesFourThirdsOnSurvivors)
{
  // The paper's headline: uniform 100% load + one failure = 133% on each
  // survivor in a 4N/3 room.
  const RoomTopology room = DefaultRoom();
  // Load every PDU pair so each UPS is exactly at capacity.
  const Watts per_pair =
      room.TotalProvisionedPower() / room.NumPduPairs();
  PduPairLoads loads(static_cast<std::size_t>(room.NumPduPairs()), per_pair);
  const std::vector<Watts> normal = NormalUpsLoads(room, loads);
  for (UpsId u = 0; u < 4; ++u)
    EXPECT_NEAR(normal[static_cast<std::size_t>(u)] / room.UpsCapacity(u),
                1.0, 1e-9);
  const std::vector<Watts> after = FailoverUpsLoads(room, loads, 0);
  for (UpsId u = 1; u < 4; ++u)
    EXPECT_NEAR(after[static_cast<std::size_t>(u)] / room.UpsCapacity(u),
                4.0 / 3.0, 1e-9);
}

TEST(LoadsTest, StrandedPowerIsCapacityMinusLoad)
{
  const RoomTopology room = DefaultRoom();
  PduPairLoads loads(static_cast<std::size_t>(room.NumPduPairs()),
                     Watts(0.0));
  EXPECT_NEAR(StrandedPower(room, loads).megawatts(), 9.6, 1e-9);
  loads[0] = MegaWatts(1.0);
  EXPECT_NEAR(StrandedPower(room, loads).megawatts(), 8.6, 1e-9);
}

TEST(LoadsTest, SafetyReportFindsWorstScenario)
{
  const RoomTopology room = DefaultRoom();
  PduPairLoads capped(static_cast<std::size_t>(room.NumPduPairs()),
                      Watts(0.0));
  // Overload pair 0 so that failing one of its UPSes breaks the other.
  capped[0] = MegaWatts(3.0);  // survivor would carry 3.0 > 2.4 capacity
  const SafetyReport report = ValidateFailoverSafety(room, capped);
  EXPECT_FALSE(report.safe);
  EXPECT_NEAR(report.worst_overload_fraction, 3.0 / 2.4, 1e-9);
  const auto [u1, u2] = room.UpsesOfPduPair(0);
  EXPECT_TRUE(report.worst_failure == u1 || report.worst_failure == u2);
}

TEST(LoadsTest, SafeRoomPassesValidation)
{
  const RoomTopology room = DefaultRoom();
  // 75% of capacity per UPS is exactly the conventional failover budget:
  // survivors land exactly at 100% after a failure.
  const Watts per_pair = room.FailoverBudget() / room.NumPduPairs();
  PduPairLoads capped(static_cast<std::size_t>(room.NumPduPairs()), per_pair);
  const SafetyReport report = ValidateFailoverSafety(room, capped);
  EXPECT_TRUE(report.safe);
  EXPECT_NEAR(report.worst_overload_fraction, 1.0, 1e-9);
  EXPECT_TRUE(ValidateNormalOperation(room, capped));
}

TEST(LoadsTest, NormalOperationValidationCatchesOverload)
{
  const RoomTopology room = DefaultRoom();
  PduPairLoads loads(static_cast<std::size_t>(room.NumPduPairs()),
                     Watts(0.0));
  // All load on pairs of UPS 0 (pairs 0..5 involve UPS 0 with 2 each for
  // combos (0,1),(0,2),(0,3)).
  for (const PduPairId p : room.PduPairsOfUps(0))
    loads[static_cast<std::size_t>(p)] = MegaWatts(0.9);
  // UPS 0 carries 6 * 0.45 = 2.7 MW > 2.4 MW.
  EXPECT_FALSE(ValidateNormalOperation(room, loads));
}

TEST(LoadsTest, RejectsMalformedInputs)
{
  const RoomTopology room = DefaultRoom();
  PduPairLoads wrong_size(3, Watts(0.0));
  EXPECT_THROW(NormalUpsLoads(room, wrong_size), ConfigError);
  PduPairLoads negative(static_cast<std::size_t>(room.NumPduPairs()),
                        Watts(-1.0));
  EXPECT_THROW(NormalUpsLoads(room, negative), ConfigError);
  PduPairLoads ok(static_cast<std::size_t>(room.NumPduPairs()), Watts(0.0));
  EXPECT_THROW(FailoverUpsLoads(room, ok, 99), ConfigError);
}

TEST(TripCurveTest, EndOfLifeMatchesPaperAnchors)
{
  const TripCurve curve = TripCurve::ForBatteryLife(BatteryLife::kEndOfLife);
  // Paper: 10 seconds at the worst-case 133% failover load.
  EXPECT_NEAR(curve.ToleranceAt(1.33).value(), 10.0, 1e-9);
  // At or below rated load: indefinitely sustainable.
  EXPECT_GE(curve.ToleranceAt(1.0).value(), TripCurve::Indefinite().value());
  EXPECT_GE(curve.ToleranceAt(0.5).value(), TripCurve::Indefinite().value());
}

TEST(TripCurveTest, BeginOfLifeIsMoreTolerant)
{
  const TripCurve begin = TripCurve::ForBatteryLife(BatteryLife::kBeginOfLife);
  const TripCurve end = TripCurve::ForBatteryLife(BatteryLife::kEndOfLife);
  for (const double load : {1.05, 1.1, 1.2, 1.33, 1.5, 1.8}) {
    EXPECT_GT(begin.ToleranceAt(load).value(),
              end.ToleranceAt(load).value())
        << "at load " << load;
  }
}

TEST(TripCurveTest, ToleranceDecreasesWithLoad)
{
  const TripCurve curve = TripCurve::ForBatteryLife(BatteryLife::kEndOfLife);
  double previous = curve.ToleranceAt(1.01).value();
  for (double load = 1.05; load <= 2.0; load += 0.05) {
    const double tolerance = curve.ToleranceAt(load).value();
    EXPECT_LE(tolerance, previous);
    previous = tolerance;
  }
}

TEST(TripCurveTest, RideThroughIsThreeAndAHalfMinutes)
{
  EXPECT_NEAR(TripCurve::RideThroughAtRated().value(), 210.0, 1e-9);
}

TEST(TripCurveTest, RejectsNegativeLoad)
{
  const TripCurve curve = TripCurve::ForBatteryLife(BatteryLife::kEndOfLife);
  EXPECT_THROW(curve.ToleranceAt(-0.1), ConfigError);
}

// ---------------------------------------------------------------------------
// IncrementalUpsLoads: running sums must match the exact load functions.
// ---------------------------------------------------------------------------

TEST(IncrementalUpsLoadsTest, StartsEmptyAndInNormalMode)
{
  const RoomTopology room = DefaultRoom();
  IncrementalUpsLoads agg(room);
  EXPECT_EQ(agg.failed_ups(), -1);
  EXPECT_NEAR(agg.TotalLoad().value(), 0.0, 1e-12);
  for (const Watts w : agg.UpsLoads())
    EXPECT_NEAR(w.value(), 0.0, 1e-12);
}

TEST(IncrementalUpsLoadsTest, DeltasMatchNormalUpsLoads)
{
  const RoomTopology room = DefaultRoom();
  IncrementalUpsLoads agg(room);
  PduPairLoads loads(static_cast<std::size_t>(room.NumPduPairs()),
                     Watts(0.0));
  for (PduPairId p = 0; p < room.NumPduPairs(); ++p) {
    const Watts w(1000.0 * (p + 1));
    loads[static_cast<std::size_t>(p)] = w;
    agg.ApplyDelta(p, w);
  }
  const std::vector<Watts> exact = NormalUpsLoads(room, loads);
  for (UpsId u = 0; u < room.NumUpses(); ++u) {
    EXPECT_NEAR(agg.UpsLoads()[static_cast<std::size_t>(u)].value(),
                exact[static_cast<std::size_t>(u)].value(), 1e-6);
  }
  EXPECT_EQ(agg.delta_count(), static_cast<std::uint64_t>(room.NumPduPairs()));
}

TEST(IncrementalUpsLoadsTest, FailoverRoutesLoadToTheSurvivingSibling)
{
  const RoomTopology room = DefaultRoom();
  IncrementalUpsLoads agg(room);
  PduPairLoads loads(static_cast<std::size_t>(room.NumPduPairs()),
                     Watts(0.0));
  for (PduPairId p = 0; p < room.NumPduPairs(); ++p) {
    const Watts w(500.0 * (room.NumPduPairs() - p));
    loads[static_cast<std::size_t>(p)] = w;
    agg.ApplyDelta(p, w);
  }
  agg.SetFailedUps(1);
  EXPECT_EQ(agg.failed_ups(), 1);
  const std::vector<Watts> exact = FailoverUpsLoads(room, loads, 1);
  for (UpsId u = 0; u < room.NumUpses(); ++u) {
    EXPECT_NEAR(agg.UpsLoads()[static_cast<std::size_t>(u)].value(),
                exact[static_cast<std::size_t>(u)].value(), 1e-6);
  }
  // Deltas applied while failed over keep matching the failover split.
  agg.ApplyDelta(0, Watts(2500.0));
  loads[0] += Watts(2500.0);
  const std::vector<Watts> shifted = FailoverUpsLoads(room, loads, 1);
  for (UpsId u = 0; u < room.NumUpses(); ++u) {
    EXPECT_NEAR(agg.UpsLoads()[static_cast<std::size_t>(u)].value(),
                shifted[static_cast<std::size_t>(u)].value(), 1e-6);
  }
  // Restoring the UPS returns to the normal 50/50 split.
  agg.SetFailedUps(-1);
  const std::vector<Watts> normal = NormalUpsLoads(room, loads);
  for (UpsId u = 0; u < room.NumUpses(); ++u) {
    EXPECT_NEAR(agg.UpsLoads()[static_cast<std::size_t>(u)].value(),
                normal[static_cast<std::size_t>(u)].value(), 1e-6);
  }
}

TEST(IncrementalUpsLoadsTest, ResyncCancelsAccumulatedDrift)
{
  const RoomTopology room = DefaultRoom();
  IncrementalUpsLoads agg(room);
  // Alternating large additions and near-cancelling subtractions are the
  // worst case for += drift.
  for (int round = 0; round < 5000; ++round) {
    const PduPairId p = round % room.NumPduPairs();
    agg.ApplyDelta(p, Watts(1.0e6 + 0.1 * round));
    agg.ApplyDelta(p, Watts(-1.0e6));
  }
  agg.Resync();
  EXPECT_NEAR(agg.MaxUpsErrorWatts(), 0.0, 1e-9);
  const std::vector<Watts> rescan = agg.RescanUpsLoads();
  for (UpsId u = 0; u < room.NumUpses(); ++u) {
    EXPECT_EQ(agg.UpsLoads()[static_cast<std::size_t>(u)].value(),
              rescan[static_cast<std::size_t>(u)].value());
  }
  EXPECT_GE(agg.resync_count(), 1u);
}

TEST(IncrementalUpsLoadsTest, SetAllPduLoadsReplacesTheRunningState)
{
  const RoomTopology room = DefaultRoom();
  IncrementalUpsLoads agg(room);
  agg.ApplyDelta(0, Watts(123456.0));
  PduPairLoads loads(static_cast<std::size_t>(room.NumPduPairs()),
                     Watts(42.0));
  agg.SetAllPduLoads(loads);
  Watts total(0.0);
  for (const Watts w : agg.PduLoads()) {
    EXPECT_NEAR(w.value(), 42.0, 1e-12);
    total += w;
  }
  EXPECT_NEAR(agg.TotalLoad().value(), total.value(), 1e-9);
}

}  // namespace
}  // namespace flex::power
