/**
 * @file
 * Unit and integration tests for Flex-Offline placement: capacity
 * tracking, baseline policies, the ILP policy, and metrics.
 */
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "obs/observability.hpp"
#include "offline/flex_offline.hpp"
#include "offline/metrics.hpp"
#include "offline/policies.hpp"
#include "solver/solver_trace.hpp"
#include "power/loads.hpp"
#include "workload/trace.hpp"

namespace flex::offline {
namespace {

using power::RoomConfig;
using power::RoomTopology;
using workload::Category;
using workload::Deployment;

/** A small 4N/3 room that keeps ILP solves fast in unit tests. */
RoomConfig
SmallRoomConfig()
{
  RoomConfig config;
  config.num_ups = 4;
  config.redundancy_y = 3;
  config.ups_capacity = KiloWatts(600.0);  // 2.4 MW room
  config.pdu_pairs_per_ups_pair = 1;       // 6 PDU pairs
  config.rows_per_pdu_pair = 2;
  config.racks_per_row = 10;
  return config;
}

Deployment
MakeDeployment(int id, Category category, int racks,
               Watts per_rack = KiloWatts(14.4), double flex = 0.8)
{
  Deployment d;
  d.id = id;
  d.workload = std::string(workload::CategoryName(category)) + "-wl";
  d.category = category;
  d.num_racks = racks;
  d.power_per_rack = per_rack;
  d.flex_power_fraction =
      category == Category::kSoftwareRedundant
          ? 0.0
          : (category == Category::kNonRedundantCapable ? flex : 1.0);
  return d;
}

TEST(CapacityTrackerTest, EmptyRoomAcceptsAnyFeasibleDeployment)
{
  const RoomTopology room{SmallRoomConfig()};
  CapacityTracker tracker(room);
  const Deployment d =
      MakeDeployment(0, Category::kNonRedundantCapable, 10);
  EXPECT_EQ(tracker.FeasiblePairs(d).size(),
            static_cast<std::size_t>(room.NumPduPairs()));
}

TEST(CapacityTrackerTest, SpaceConstraintBinds)
{
  const RoomTopology room{SmallRoomConfig()};
  CapacityTracker tracker(room);
  // 20 slots per pair; a 21-rack deployment cannot fit anywhere.
  const Deployment big =
      MakeDeployment(0, Category::kSoftwareRedundant, 21, KiloWatts(1.0));
  EXPECT_TRUE(tracker.FeasiblePairs(big).empty());
  // Two 10-rack deployments fill a pair; the third is rejected there.
  const Deployment d =
      MakeDeployment(1, Category::kSoftwareRedundant, 10, KiloWatts(1.0));
  tracker.Place(d, 0);
  tracker.Place(d, 0);
  EXPECT_FALSE(tracker.CanPlace(d, 0));
  EXPECT_EQ(tracker.FreeSlots(0), 0);
}

TEST(CapacityTrackerTest, NormalOperationConstraintBinds)
{
  const RoomTopology room{SmallRoomConfig()};
  CapacityTracker tracker(room);
  // Software-redundant so failover never binds (CapPow = 0); normal-op
  // limit: UPS capacity 600 kW. One pair of 10 racks x 100 kW = 1 MW puts
  // 500 kW on each of the two UPSes.
  const Deployment d =
      MakeDeployment(0, Category::kSoftwareRedundant, 10, KiloWatts(100.0));
  EXPECT_TRUE(tracker.CanPlace(d, 0));
  tracker.Place(d, 0);
  // A second identical deployment on the same pair would need 1 MW per
  // UPS: violates Eq. 2.
  EXPECT_FALSE(tracker.CanPlace(d, 0));
  // But it fits on the "opposite" pair that shares no UPS with pair 0
  // only if one exists; with 6 pairs over 4 UPSes, pair (2,3) is disjoint
  // from pair (0,1).
  const auto [u1, u2] = room.UpsesOfPduPair(0);
  for (power::PduPairId p = 1; p < room.NumPduPairs(); ++p) {
    const auto [v1, v2] = room.UpsesOfPduPair(p);
    if (v1 != u1 && v1 != u2 && v2 != u1 && v2 != u2) {
      EXPECT_TRUE(tracker.CanPlace(d, p));
      return;
    }
  }
  FAIL() << "no disjoint pair found";
}

TEST(CapacityTrackerTest, FailoverConstraintBindsForNonCapable)
{
  const RoomTopology room{SmallRoomConfig()};
  CapacityTracker tracker(room);
  // Non-cap-able: CapPow = Pow. On failover of one UPS of the pair the
  // survivor carries the full pair load. 10 racks x 55 kW = 550 kW: safe
  // (< 600). Adding 10 more racks makes 1.1 MW on failover: unsafe even
  // though normal operation (550 kW per UPS) is fine.
  const Deployment d = MakeDeployment(
      0, Category::kNonRedundantNonCapable, 10, KiloWatts(55.0));
  EXPECT_TRUE(tracker.CanPlace(d, 0));
  tracker.Place(d, 0);
  EXPECT_FALSE(tracker.CanPlace(d, 0));
}

TEST(CapacityTrackerTest, CapableFlexPowerRelaxesFailover)
{
  const RoomTopology room{SmallRoomConfig()};
  CapacityTracker tracker(room);
  // Same as above but cap-able with flex 0.5: CapPow halves, so failover
  // sees 550 kW and the second deployment fits.
  const Deployment d = MakeDeployment(
      0, Category::kNonRedundantCapable, 10, KiloWatts(55.0), 0.5);
  tracker.Place(d, 0);
  EXPECT_TRUE(tracker.CanPlace(d, 0));
}

TEST(CapacityTrackerTest, CoolingConstraintBinds)
{
  RoomConfig config = SmallRoomConfig();
  // Budget allows only 5 racks of a 14.4 kW / 0.05 CFM/W deployment per
  // row (= 720 CFM each).
  config.row_cooling_cfm = 3600.0;
  const RoomTopology room{config};
  CapacityTracker tracker(room);
  Deployment d = MakeDeployment(0, Category::kSoftwareRedundant, 10);
  d.cfm_per_watt = 0.05;
  // 10 racks need 2 rows' worth of cooling (5 per row): exactly fits the
  // pair's 2 rows.
  EXPECT_TRUE(tracker.CanPlace(d, 0));
  tracker.Place(d, 0);
  // No cooling headroom left under pair 0.
  EXPECT_FALSE(tracker.CanPlace(d, 0));
}

TEST(CapacityTrackerTest, PlaceRejectsInfeasible)
{
  const RoomTopology room{SmallRoomConfig()};
  CapacityTracker tracker(room);
  const Deployment big =
      MakeDeployment(0, Category::kSoftwareRedundant, 21, KiloWatts(1.0));
  EXPECT_THROW(tracker.Place(big, 0), ConfigError);
}

TEST(RackLayoutTest, ExpandsPlacedDeploymentsIntoRacks)
{
  const RoomTopology room{SmallRoomConfig()};
  Placement placement;
  placement.deployments = {
      MakeDeployment(0, Category::kSoftwareRedundant, 15),
      MakeDeployment(1, Category::kNonRedundantCapable, 5),
      MakeDeployment(2, Category::kNonRedundantNonCapable, 10)};
  placement.assignment = {0, 0, 3};
  const std::vector<Rack> racks = BuildRackLayout(room, placement);
  ASSERT_EQ(racks.size(), 30u);
  int per_deployment[3] = {0, 0, 0};
  for (const Rack& r : racks) {
    ++per_deployment[r.deployment];
    EXPECT_EQ(room.PduPairOfRow(r.row), r.pdu_pair);
    if (r.deployment == 0) {
      EXPECT_EQ(r.pdu_pair, 0);
      EXPECT_NEAR(r.capped.value(), 0.0, 1e-9);  // software-redundant
    }
    if (r.deployment == 1) {
      EXPECT_NEAR(r.capped.value(), r.allocated.value() * 0.8, 1e-6);
    }
    if (r.deployment == 2) {
      EXPECT_NEAR(r.capped.value(), r.allocated.value(), 1e-9);
    }
  }
  EXPECT_EQ(per_deployment[0], 15);
  EXPECT_EQ(per_deployment[1], 5);
  EXPECT_EQ(per_deployment[2], 10);
}

TEST(RackLayoutTest, SkipsUnplacedDeployments)
{
  const RoomTopology room{SmallRoomConfig()};
  Placement placement;
  placement.deployments = {MakeDeployment(0, Category::kSoftwareRedundant, 5)};
  placement.assignment = {std::nullopt};
  EXPECT_TRUE(BuildRackLayout(room, placement).empty());
}

TEST(MetricsTest, EmptyPlacementStrandsEverything)
{
  const RoomTopology room{SmallRoomConfig()};
  Placement placement;
  EXPECT_NEAR(StrandedPowerFraction(room, placement), 1.0, 1e-12);
  EXPECT_NEAR(ThrottlingImbalance(room, placement), 0.0, 1e-12);
}

TEST(MetricsTest, StrandedPowerDropsAsPowerIsPlaced)
{
  const RoomTopology room{SmallRoomConfig()};
  Placement placement;
  placement.deployments = {
      MakeDeployment(0, Category::kSoftwareRedundant, 10, KiloWatts(24.0))};
  placement.assignment = {0};
  // 240 kW placed out of 2.4 MW -> 90% stranded.
  EXPECT_NEAR(StrandedPowerFraction(room, placement), 0.9, 1e-9);
}

TEST(MetricsTest, ImbalanceZeroWhenNoOverload)
{
  const RoomTopology room{SmallRoomConfig()};
  // Modest non-capable load that never overloads on failover: r = 0
  // everywhere -> imbalance 0.
  Placement placement;
  placement.deployments = {
      MakeDeployment(0, Category::kNonRedundantNonCapable, 10,
                     KiloWatts(10.0))};
  placement.assignment = {0};
  EXPECT_NEAR(ThrottlingImbalance(room, placement), 0.0, 1e-12);
}

TEST(MetricsTest, ImbalanceDetectsLopsidedPlacement)
{
  const RoomTopology room{SmallRoomConfig()};
  // Load one pair heavily with non-capable power so that failover of one
  // of its UPSes overloads the partner, while other UPSes see nothing.
  Placement placement;
  placement.deployments = {
      MakeDeployment(0, Category::kNonRedundantNonCapable, 10,
                     KiloWatts(70.0))};
  placement.assignment = {0};
  // Failover load on the partner: 700 kW > 600 kW -> r = 100/600 for one
  // (f, u) combo, 0 for others.
  EXPECT_NEAR(ThrottlingImbalance(room, placement), 100.0 / 600.0, 1e-9);
}

TEST(MetricsTest, PlacedPowerFraction)
{
  const RoomTopology room{SmallRoomConfig()};
  Placement placement;
  placement.deployments = {
      MakeDeployment(0, Category::kSoftwareRedundant, 10, KiloWatts(10.0)),
      MakeDeployment(1, Category::kSoftwareRedundant, 10, KiloWatts(10.0))};
  placement.assignment = {0, std::nullopt};
  EXPECT_NEAR(PlacedPowerFraction(placement), 0.5, 1e-12);
}

class PolicyTest : public ::testing::Test {
 protected:
  PolicyTest() : room_(SmallRoomConfig()) {}

  std::vector<Deployment>
  MakeTrace()
  {
    Rng rng(42);
    workload::TraceConfig config;
    return workload::GenerateTrace(config, room_.TotalProvisionedPower(),
                                   rng);
  }

  void
  ExpectValidPlacement(const Placement& placement)
  {
    // Whatever the policy did, the room must be safe: Eq. 2 and Eq. 4.
    EXPECT_TRUE(power::ValidateNormalOperation(
        room_, placement.AllocatedPduLoads(room_)));
    EXPECT_TRUE(power::ValidateFailoverSafety(
                    room_, placement.CappedPduLoads(room_))
                    .safe);
    // And the rack layout must be constructible.
    EXPECT_NO_THROW(BuildRackLayout(room_, placement));
  }

  RoomTopology room_;
};

TEST_F(PolicyTest, RandomPolicyPlacesSafely)
{
  RandomPolicy policy(7);
  const Placement placement = policy.Place(room_, MakeTrace());
  EXPECT_GT(placement.NumPlaced(), 0);
  ExpectValidPlacement(placement);
}

TEST_F(PolicyTest, RandomPolicyIsDeterministicGivenSeed)
{
  const auto trace = MakeTrace();
  RandomPolicy a(7);
  RandomPolicy b(7);
  EXPECT_EQ(a.Place(room_, trace).assignment,
            b.Place(room_, trace).assignment);
}

TEST_F(PolicyTest, BalancedRoundRobinPlacesSafely)
{
  BalancedRoundRobinPolicy policy;
  const Placement placement = policy.Place(room_, MakeTrace());
  EXPECT_GT(placement.NumPlaced(), 0);
  ExpectValidPlacement(placement);
}

TEST_F(PolicyTest, FirstFitPlacesSafely)
{
  FirstFitPolicy policy;
  const Placement placement = policy.Place(room_, MakeTrace());
  EXPECT_GT(placement.NumPlaced(), 0);
  ExpectValidPlacement(placement);
}

TEST_F(PolicyTest, FlexOfflinePlacesSafely)
{
  FlexOfflinePolicy policy = FlexOfflinePolicy::Short(2.0);
  const Placement placement = policy.Place(room_, MakeTrace());
  EXPECT_GT(placement.NumPlaced(), 0);
  ExpectValidPlacement(placement);
}

TEST_F(PolicyTest, FlexOfflineExportsSolveTracesAndMetrics)
{
  obs::Observability observability;
  FlexOfflineConfig config;
  config.solver.time_budget_seconds = 2.0;
  config.obs = &observability;
  FlexOfflinePolicy policy(config);
  const Placement placement = policy.Place(room_, MakeTrace());
  EXPECT_GT(placement.NumPlaced(), 0);

  // One convergence curve per batch, each closed out by a "final" point.
  ASSERT_FALSE(policy.solve_traces().empty());
  for (const solver::SolverTrace& trace : policy.solve_traces()) {
    ASSERT_FALSE(trace.empty());
    EXPECT_EQ(trace.points().back().label, "final");
  }

  EXPECT_GE(observability.metrics().counter("offline.batches").value(),
            1.0);
  EXPECT_GE(
      observability.metrics().counter("offline.deployments_placed").value(),
      static_cast<double>(placement.NumPlaced()));
  EXPECT_GT(observability.metrics().counter("offline.solver.lp_solves").value(),
            0.0);
}

TEST_F(PolicyTest, FlexOfflineBeatsBaselinesOnStrandedPower)
{
  const auto trace = MakeTrace();
  BalancedRoundRobinPolicy brr;
  FlexOfflinePolicy flex = FlexOfflinePolicy::Oracle(5.0);
  const double brr_stranded =
      StrandedPowerFraction(room_, brr.Place(room_, trace));
  const double flex_stranded =
      StrandedPowerFraction(room_, flex.Place(room_, trace));
  EXPECT_LE(flex_stranded, brr_stranded + 1e-9);
}

TEST_F(PolicyTest, OracleDoesNoWorseThanShortOnStranding)
{
  const auto trace = MakeTrace();
  FlexOfflinePolicy oracle = FlexOfflinePolicy::Oracle(5.0);
  FlexOfflinePolicy short_policy = FlexOfflinePolicy::Short(2.0);
  const double oracle_stranded =
      StrandedPowerFraction(room_, oracle.Place(room_, trace));
  const double short_stranded =
      StrandedPowerFraction(room_, short_policy.Place(room_, trace));
  // Oracle sees everything at once; allow a hair of solver noise.
  EXPECT_LE(oracle_stranded, short_stranded + 0.02);
}

TEST_F(PolicyTest, PoliciesRejectWhatCannotFit)
{
  // Demand is 115% of capacity, so some deployments must be rejected.
  BalancedRoundRobinPolicy policy;
  const Placement placement = policy.Place(room_, MakeTrace());
  EXPECT_LT(placement.NumPlaced(),
            static_cast<int>(placement.deployments.size()));
}

TEST_F(PolicyTest, FlexOfflinePlacementIsIdenticalAcrossThreadCounts)
{
  // Same trace solved with the MILP waves on 1, 2, and 8 lanes must
  // produce bit-identical assignments (the wave-synchronous search and
  // the fixed incumbent tie-break guarantee it). Node budget instead of
  // a wall-clock budget so truncation is deterministic too.
  const auto trace = MakeTrace();

  auto place_with = [&](common::ThreadPool* pool) {
    FlexOfflineConfig config;
    config.solver.time_budget_seconds = 30.0;
    config.solver.max_nodes = 400;
    config.solver.pool = pool;
    config.solver.threads = pool == nullptr ? 1 : 0;
    FlexOfflinePolicy policy(config);
    return policy.Place(room_, trace);
  };

  const Placement serial = place_with(nullptr);
  EXPECT_GT(serial.NumPlaced(), 0);
  for (const int threads : {2, 8}) {
    common::ThreadPool pool(threads);
    const Placement parallel = place_with(&pool);
    EXPECT_EQ(parallel.assignment, serial.assignment)
        << "placement diverged at " << threads << " threads";
  }
}

TEST_F(PolicyTest, PlaceVariantsMatchesSerialRuns)
{
  // The batch fan-out must return the same placements, in input order,
  // whether it runs serially or on a pool.
  Rng rng(5);
  const auto base = MakeTrace();
  const auto variants = workload::ShuffledVariants(base, 4, rng);
  const PolicyFactory factory = [] {
    return std::make_unique<BalancedRoundRobinPolicy>();
  };

  const std::vector<Placement> serial =
      PlaceVariants(room_, factory, variants, nullptr);
  common::ThreadPool pool(4);
  const std::vector<Placement> parallel =
      PlaceVariants(room_, factory, variants, &pool);
  ASSERT_EQ(serial.size(), variants.size());
  ASSERT_EQ(parallel.size(), variants.size());
  for (std::size_t i = 0; i < variants.size(); ++i)
    EXPECT_EQ(parallel[i].assignment, serial[i].assignment);
}

TEST_F(PolicyTest, FlexOfflineExportsConcurrencyMetrics)
{
  obs::Observability observability;
  FlexOfflineConfig config;
  config.solver.time_budget_seconds = 2.0;
  config.obs = &observability;
  FlexOfflinePolicy policy(config);
  policy.Place(room_, MakeTrace());
  // Basis-reuse counters flow from the solver into offline metrics.
  EXPECT_GT(
      observability.metrics().counter("offline.solver.basis_attempts").value(),
      0.0);
  EXPECT_GE(observability.metrics().gauge("offline.solver.threads").value(),
            1.0);
}

TEST(FlexOfflineConfigTest, NamedVariantsHaveExpectedBatching)
{
  EXPECT_NEAR(FlexOfflinePolicy::Short().config().batch_capacity_fraction,
              0.33, 1e-12);
  EXPECT_NEAR(FlexOfflinePolicy::Long().config().batch_capacity_fraction,
              0.66, 1e-12);
  EXPECT_GT(FlexOfflinePolicy::Oracle().config().batch_capacity_fraction,
            100.0);
  EXPECT_EQ(FlexOfflinePolicy::Short().Name(), "Flex-Offline-Short");
}

TEST(FlexOfflineConfigTest, RejectsBadConfig)
{
  FlexOfflineConfig config;
  config.batch_capacity_fraction = 0.0;
  EXPECT_THROW(FlexOfflinePolicy{config}, ConfigError);
  config = FlexOfflineConfig{};
  config.imbalance_weight = -1.0;
  EXPECT_THROW(FlexOfflinePolicy{config}, ConfigError);
}

}  // namespace
}  // namespace flex::offline
