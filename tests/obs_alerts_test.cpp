/**
 * @file
 * Tests for the declarative alert engine: every rule kind, the
 * pending→firing→resolved state machine, flight-recorder stamping —
 * and the end-to-end drills the issue demands: a telemetry outage
 * injected during the overload window must produce a bit-identical
 * alert timeline across 1/2/8 sweep threads, and a fault-scenario run
 * whose only trigger is a fired alert must dump a forensic bundle that
 * flex_replay-style ReplayBundle re-executes without divergence.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "emulation/room_emulation.hpp"
#include "emulation/sweep.hpp"
#include "fault/fault_plan.hpp"
#include "fault/forensics.hpp"
#include "fault/scenario.hpp"
#include "obs/alerts.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/timeseries.hpp"

namespace flex {
namespace {

using obs::AlertCompare;
using obs::AlertEngine;
using obs::AlertRule;
using obs::AlertRuleKind;
using obs::AlertSeverity;
using obs::AlertState;
using obs::AlertTransition;
using obs::MetricKind;
using obs::TimeSeriesStore;

AlertRule
ThresholdRule(const std::string& metric, double threshold, double for_s)
{
  AlertRule rule;
  rule.name = "High_" + metric;
  rule.metric = metric;
  rule.kind = AlertRuleKind::kThreshold;
  rule.compare = AlertCompare::kGreaterThan;
  rule.threshold = threshold;
  rule.for_s = for_s;
  return rule;
}

TEST(AlertEngineTest, ThresholdRuleWalksFullStateMachine)
{
  TimeSeriesStore store;
  AlertEngine engine(&store, {ThresholdRule("m", 5.0, 10.0)});

  store.Append("m", MetricKind::kGauge, 0.0, 1.0);
  engine.Evaluate(0.0);
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kInactive);
  EXPECT_TRUE(engine.timeline().empty());

  store.Append("m", MetricKind::kGauge, 10.0, 6.0);
  engine.Evaluate(10.0);
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kPending);
  EXPECT_EQ(engine.pending_count(), 1);
  EXPECT_EQ(engine.firing_count(), 0);

  store.Append("m", MetricKind::kGauge, 15.0, 7.0);
  engine.Evaluate(15.0);  // held 5 s < for_s: still pending
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kPending);

  store.Append("m", MetricKind::kGauge, 20.0, 7.0);
  engine.Evaluate(20.0);  // held 10 s: fires
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kFiring);
  EXPECT_EQ(engine.firing_count(), 1);
  EXPECT_EQ(engine.total_fired(), 1u);

  store.Append("m", MetricKind::kGauge, 25.0, 2.0);
  engine.Evaluate(25.0);  // back under the bound: resolves
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kInactive);
  EXPECT_EQ(engine.statuses()[0].fire_count, 1u);

  const std::vector<AlertTransition>& timeline = engine.timeline();
  ASSERT_EQ(timeline.size(), 3u);
  EXPECT_EQ(timeline[0].to, AlertState::kPending);
  EXPECT_EQ(timeline[0].t, 10.0);
  EXPECT_EQ(timeline[1].to, AlertState::kFiring);
  EXPECT_EQ(timeline[1].t, 20.0);
  EXPECT_EQ(timeline[2].to, AlertState::kInactive);
  EXPECT_EQ(timeline[2].message, "resolved");
}

TEST(AlertEngineTest, PendingClearsWithoutFiringWhenConditionDrops)
{
  TimeSeriesStore store;
  AlertEngine engine(&store, {ThresholdRule("m", 5.0, 30.0)});
  store.Append("m", MetricKind::kGauge, 0.0, 9.0);
  engine.Evaluate(0.0);
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kPending);
  store.Append("m", MetricKind::kGauge, 10.0, 1.0);
  engine.Evaluate(10.0);
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kInactive);
  EXPECT_EQ(engine.total_fired(), 0u);
  ASSERT_EQ(engine.timeline().size(), 2u);
  EXPECT_EQ(engine.timeline()[1].message, "condition cleared");
}

TEST(AlertEngineTest, ZeroForDurationFiresSameTick)
{
  TimeSeriesStore store;
  AlertEngine engine(&store, {ThresholdRule("m", 5.0, 0.0)});
  store.Append("m", MetricKind::kGauge, 3.0, 8.0);
  engine.Evaluate(3.0);
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kFiring);
  // Both edges land on the same tick: pending then firing.
  ASSERT_EQ(engine.timeline().size(), 2u);
  EXPECT_EQ(engine.timeline()[0].to, AlertState::kPending);
  EXPECT_EQ(engine.timeline()[1].to, AlertState::kFiring);
  EXPECT_EQ(engine.timeline()[0].t, engine.timeline()[1].t);
}

TEST(AlertEngineTest, ThresholdMetricComparesAgainstAnotherSeries)
{
  AlertRule rule = ThresholdRule("p99", 0.0, 0.0);
  rule.threshold_metric = "budget";
  TimeSeriesStore store;
  AlertEngine engine(&store, {rule});

  // Bound series missing: rule stays inactive no matter the value.
  store.Append("p99", MetricKind::kGauge, 0.0, 100.0);
  engine.Evaluate(0.0);
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kInactive);

  store.Append("budget", MetricKind::kGauge, 1.0, 10.0);
  store.Append("p99", MetricKind::kGauge, 1.0, 7.0);
  engine.Evaluate(1.0);
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kInactive);  // 7 < 10

  store.Append("p99", MetricKind::kGauge, 2.0, 12.0);
  engine.Evaluate(2.0);
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kFiring);  // 12 > 10
}

TEST(AlertEngineTest, StaleRuleDetectsFlatlinedProgress)
{
  AlertRule rule;
  rule.name = "Stalled";
  rule.metric = "ticks";
  rule.kind = AlertRuleKind::kStale;
  rule.window_s = 4.0;
  rule.for_s = 0.0;
  TimeSeriesStore store;
  AlertEngine engine(&store, {rule});

  // Absent series is fresh, not stale: no firing before first data.
  engine.Evaluate(100.0);
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kInactive);

  store.Append("ticks", MetricKind::kCounter, 0.0, 1.0);
  store.Append("ticks", MetricKind::kCounter, 2.0, 2.0);
  engine.Evaluate(2.0);
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kInactive);

  // Counter keeps re-publishing the same value: no progress.
  store.Append("ticks", MetricKind::kCounter, 5.0, 2.0);
  store.Append("ticks", MetricKind::kCounter, 7.0, 2.0);
  engine.Evaluate(7.0);  // unchanged since t=2: age 5 > 4
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kFiring);
  EXPECT_EQ(engine.statuses()[0].last_value, 5.0);  // the age

  store.Append("ticks", MetricKind::kCounter, 8.0, 3.0);
  engine.Evaluate(8.0);
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kInactive);
}

TEST(AlertEngineTest, RateOfChangeRuleComparesSlope)
{
  AlertRule rule;
  rule.name = "FastGrowth";
  rule.metric = "count";
  rule.kind = AlertRuleKind::kRateOfChange;
  rule.compare = AlertCompare::kGreaterThan;
  rule.threshold = 0.5;
  rule.window_s = 10.0;
  TimeSeriesStore store;
  AlertEngine engine(&store, {rule});

  store.Append("count", MetricKind::kCounter, 0.0, 0.0);
  store.Append("count", MetricKind::kCounter, 10.0, 3.0);
  engine.Evaluate(10.0);  // 0.3/s
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kInactive);

  store.Append("count", MetricKind::kCounter, 20.0, 13.0);
  engine.Evaluate(20.0);  // 1.0/s over the trailing window
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kFiring);
  EXPECT_EQ(engine.statuses()[0].last_value, 1.0);
}

TEST(AlertEngineTest, BurnRateRequiresBothWindows)
{
  AlertRule rule;
  rule.name = "SloBurn";
  rule.metric = "err";
  rule.total_metric = "total";
  rule.kind = AlertRuleKind::kBurnRate;
  rule.slo_target = 0.9;  // error budget 10%
  rule.burn_factor = 5.0;
  rule.short_window_s = 10.0;
  rule.long_window_s = 30.0;
  TimeSeriesStore store;
  AlertEngine engine(&store, {rule});

  const auto append = [&store](double t, double err, double total) {
    store.Append("err", MetricKind::kCounter, t, err);
    store.Append("total", MetricKind::kCounter, t, total);
  };
  append(0.0, 0.0, 0.0);
  append(10.0, 0.0, 10.0);
  append(20.0, 0.0, 20.0);
  // A blip: 90% of the last 10 s of requests erred, but the long
  // window has absorbed it (9/30 = 30% of budget-normalized 3.0x).
  append(30.0, 9.0, 30.0);
  engine.Evaluate(30.0);
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kInactive);

  // The burn persists: now both windows exceed 5x and the rule fires.
  append(40.0, 18.0, 40.0);
  engine.Evaluate(40.0);
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kFiring);
}

TEST(AlertEngineTest, EveryEdgeIsStampedIntoTheFlightRecorder)
{
  TimeSeriesStore store;
  AlertEngine engine(
      &store, {ThresholdRule("a", 5.0, 0.0), ThresholdRule("b", 5.0, 0.0)});
  obs::FlightRecorder recorder;
  engine.SetRecorder(&recorder);

  store.Append("a", MetricKind::kGauge, 1.0, 9.0);
  store.Append("b", MetricKind::kGauge, 1.0, 1.0);
  engine.Evaluate(1.0);
  store.Append("a", MetricKind::kGauge, 2.0, 1.0);
  store.Append("b", MetricKind::kGauge, 2.0, 9.0);
  engine.Evaluate(2.0);

  const std::vector<obs::FlightRecord> records = recorder.Records();
  // Rule a: pending+firing then resolve; rule b: pending+firing.
  ASSERT_EQ(records.size(), 5u);
  for (const obs::FlightRecord& record : records)
    EXPECT_EQ(record.kind, obs::RecordKind::kAlert);
  EXPECT_EQ(records[0].a, 0);  // rule index
  EXPECT_EQ(records[0].b, static_cast<int>(AlertState::kPending));
  EXPECT_EQ(records[1].b, static_cast<int>(AlertState::kFiring));
  EXPECT_EQ(records[2].a, 0);
  EXPECT_EQ(records[2].b, static_cast<int>(AlertState::kInactive));
  EXPECT_EQ(records[3].a, 1);
  EXPECT_NE(records[0].detail.find("High_a"), std::string::npos);
}

TEST(AlertEngineTest, NotifierSeesEveryEdgeAfterRecording)
{
  TimeSeriesStore store;
  AlertEngine engine(&store, {ThresholdRule("m", 5.0, 0.0)});
  std::vector<AlertState> seen;
  engine.SetNotifier(
      [&seen](const AlertTransition& edge, const obs::AlertStatus& status) {
        EXPECT_EQ(status.rule.name, "High_m");
        seen.push_back(edge.to);
      });
  store.Append("m", MetricKind::kGauge, 1.0, 9.0);
  engine.Evaluate(1.0);
  store.Append("m", MetricKind::kGauge, 2.0, 1.0);
  engine.Evaluate(2.0);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], AlertState::kPending);
  EXPECT_EQ(seen[1], AlertState::kFiring);
  EXPECT_EQ(seen[2], AlertState::kInactive);
}

TEST(AlertEngineTest, SnapshotAndJsonlCarryTheTimeline)
{
  TimeSeriesStore store;
  AlertEngine engine(&store, {ThresholdRule("m", 5.0, 0.0)});
  store.Append("m", MetricKind::kGauge, 1.0, 9.0);
  engine.Evaluate(1.0);

  const obs::AlertsSnapshot snapshot = engine.Snapshot();
  EXPECT_EQ(snapshot.firing, 1);
  EXPECT_EQ(snapshot.worst_firing, AlertSeverity::kWarn);
  ASSERT_EQ(snapshot.statuses.size(), 1u);
  EXPECT_EQ(snapshot.statuses[0].state, AlertState::kFiring);
  EXPECT_EQ(snapshot.timeline.size(), 2u);

  const std::string jsonl = engine.TimelineJsonl();
  EXPECT_NE(jsonl.find("\"rule\":\"High_m\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"to\":\"firing\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Emulation drill: telemetry outage during the failover window.
// ---------------------------------------------------------------------------

emulation::EmulationConfig
DrillConfig(std::uint64_t seed)
{
  emulation::EmulationConfig config;
  config.setup_duration = Seconds(30.0);
  config.failover_at = Seconds(120.0);
  config.restore_at = Seconds(200.0);
  config.end_at = Seconds(260.0);
  config.seed = seed;
  // Node-budgeted placement (not wall-clock) so runs are bit-identical
  // regardless of machine speed — the determinism suite's idiom.
  config.placement_solve_seconds = 1e9;
  config.placement_max_nodes = 2000;
  config.alerts.enabled = true;
  // Kill every poller for 40 s inside the failover window: long enough
  // for the 15 s staleness window plus the 5 s for-duration.
  config.telemetry_outage_at = Seconds(140.0);
  config.telemetry_outage_until = Seconds(180.0);
  return config;
}

TEST(AlertDrillTest, TelemetryOutageFiresAndResolvesHeadless)
{
  emulation::RoomEmulation emulation(DrillConfig(77));
  const emulation::EmulationReport& report = emulation.Run();

  EXPECT_GT(report.alerts_fired, 0u);
  EXPECT_NE(report.alert_fingerprint, 0u);
  EXPECT_NE(report.store_fingerprint, 0u);
  EXPECT_GT(report.store_samples, 0u);

  bool fired = false;
  bool resolved = false;
  for (const AlertTransition& edge : report.alert_timeline) {
    if (edge.rule != "TelemetryStalled")
      continue;
    if (edge.to == AlertState::kFiring) {
      fired = true;
      EXPECT_GE(edge.t, 140.0);
    }
    if (fired && edge.to == AlertState::kInactive) {
      resolved = true;
      EXPECT_GT(edge.t, 180.0);
    }
  }
  EXPECT_TRUE(fired) << "telemetry outage never tripped TelemetryStalled";
  EXPECT_TRUE(resolved) << "TelemetryStalled never resolved after recovery";

  // The engine's live view agrees with the report.
  ASSERT_NE(emulation.alert_engine(), nullptr);
  EXPECT_EQ(emulation.alert_engine()->total_fired(), report.alerts_fired);
  ASSERT_NE(emulation.timeseries(), nullptr);
  EXPECT_EQ(emulation.timeseries()->Fingerprint(), report.store_fingerprint);
}

TEST(AlertDrillTest, AlertTimelineIsBitIdenticalAcrossSweepThreadCounts)
{
  emulation::SweepConfig sweep;
  sweep.base = DrillConfig(2024);
  sweep.variants = 3;

  sweep.threads = 1;
  const emulation::SweepResult serial = RunEmulationSweep(sweep);
  sweep.threads = 2;
  const emulation::SweepResult two = RunEmulationSweep(sweep);
  sweep.threads = 8;
  const emulation::SweepResult eight = RunEmulationSweep(sweep);

  EXPECT_EQ(serial.sample_hash, two.sample_hash);
  EXPECT_EQ(serial.sample_hash, eight.sample_hash);

  ASSERT_EQ(serial.reports.size(), 3u);
  ASSERT_EQ(two.reports.size(), 3u);
  ASSERT_EQ(eight.reports.size(), 3u);
  for (std::size_t i = 0; i < serial.reports.size(); ++i) {
    const emulation::EmulationReport& a = serial.reports[i];
    for (const emulation::SweepResult* other : {&two, &eight}) {
      const emulation::EmulationReport& b = other->reports[i];
      EXPECT_EQ(a.alert_fingerprint, b.alert_fingerprint)
          << "variant " << i << " at " << other->lanes << " lanes";
      EXPECT_EQ(a.store_fingerprint, b.store_fingerprint)
          << "variant " << i << " at " << other->lanes << " lanes";
      EXPECT_EQ(a.alerts_fired, b.alerts_fired);
      EXPECT_EQ(a.store_samples, b.store_samples);
      ASSERT_EQ(a.alert_timeline.size(), b.alert_timeline.size());
      for (std::size_t k = 0; k < a.alert_timeline.size(); ++k) {
        EXPECT_EQ(a.alert_timeline[k].t, b.alert_timeline[k].t);
        EXPECT_EQ(a.alert_timeline[k].rule, b.alert_timeline[k].rule);
        EXPECT_EQ(a.alert_timeline[k].from, b.alert_timeline[k].from);
        EXPECT_EQ(a.alert_timeline[k].to, b.alert_timeline[k].to);
        EXPECT_EQ(a.alert_timeline[k].value, b.alert_timeline[k].value);
        EXPECT_EQ(a.alert_timeline[k].message, b.alert_timeline[k].message);
      }
    }
    // The drill actually drilled: every variant saw the outage fire.
    EXPECT_GT(a.alerts_fired, 0u) << "variant " << i;
  }
}

// ---------------------------------------------------------------------------
// Fault drill: alert-triggered forensic bundle, replayed exactly.
// ---------------------------------------------------------------------------

TEST(AlertForensicsTest, AlertFiringDumpsReplayableBundle)
{
  // Crash both pollers mid-run: telemetry stalls (firing the built-in
  // TelemetryStalled page) but no safety invariant trips, so the
  // bundle's only trigger is the alert itself.
  fault::FaultPlan plan;
  for (int poller = 0; poller < 2; ++poller) {
    fault::FaultEvent event;
    event.at = Seconds(30.0);
    event.kind = fault::FaultKind::kPollerCrash;
    event.target = poller;
    event.duration = Seconds(50.0);
    plan.Add(event);
  }

  const fault::ScenarioConfig config;  // alerts enabled by default
  fault::ForensicsOptions options;
  options.root_dir = ::testing::TempDir() + "alert-forensics";
  options.dump_on_alert = true;

  const fault::RecordedRun run = fault::RunRecordedPlan(config, 7, plan, options);
  EXPECT_TRUE(run.report.violations.empty())
      << "poller crash unexpectedly violated an invariant: "
      << run.report.violation_summary;
  ASSERT_GT(run.report.alerts_fired, 0u)
      << "poller outage never fired TelemetryStalled";
  EXPECT_NE(run.report.alert_fingerprint, 0u);
  EXPECT_TRUE(run.dump_error.empty()) << run.dump_error;
  ASSERT_FALSE(run.bundle_dir.empty()) << "alert did not trigger a dump";

  // The bundle carries the full history and the alert timeline.
  EXPECT_TRUE(std::ifstream(run.bundle_dir + "/timeseries.jsonl").good());
  EXPECT_TRUE(std::ifstream(run.bundle_dir + "/alerts.jsonl").good());

  const fault::ReplayReport replay = fault::ReplayBundle(run.bundle_dir, config);
  ASSERT_TRUE(replay.loaded) << replay.error;
  EXPECT_EQ(replay.manifest.trigger, "alert-firing");
  EXPECT_TRUE(replay.manifest.replayable);
  EXPECT_GT(replay.compared, 0u);
  EXPECT_FALSE(replay.divergence.has_value())
      << replay.divergence->Summary();
  // The replay fires the identical alerts: kAlert records aligned.
  EXPECT_EQ(replay.report.alerts_fired, run.report.alerts_fired);
  EXPECT_EQ(replay.report.alert_fingerprint, run.report.alert_fingerprint);
}

TEST(AlertForensicsTest, DumpOnAlertOffLeavesNoBundle)
{
  fault::FaultPlan plan;
  for (int poller = 0; poller < 2; ++poller) {
    fault::FaultEvent event;
    event.at = Seconds(30.0);
    event.kind = fault::FaultKind::kPollerCrash;
    event.target = poller;
    event.duration = Seconds(50.0);
    plan.Add(event);
  }
  const fault::ScenarioConfig config;
  fault::ForensicsOptions options;
  options.root_dir = ::testing::TempDir() + "alert-forensics-off";
  options.dump_on_alert = false;  // the fuzz-sweep default

  const fault::RecordedRun run = fault::RunRecordedPlan(config, 7, plan, options);
  EXPECT_GT(run.report.alerts_fired, 0u);
  EXPECT_TRUE(run.bundle_dir.empty())
      << "benign alert sprayed a bundle at " << run.bundle_dir;
}

}  // namespace
}  // namespace flex
