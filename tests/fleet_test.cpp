/**
 * @file
 * Fleet-engine determinism and coupling tests.
 *
 * The fleet engine's contract is the repository's house invariant at a
 * new layer: rooms step in parallel across lanes, but every hash, every
 * merged alert edge, and every rollup row is a pure function of the
 * configuration — bit-identical at 1, 2, and 8 lanes, and (for a fleet
 * of one) identical to monolithic RoomEmulation::Run().
 */
#include <gtest/gtest.h>

#include <cmath>

#include "emulation/fleet_emulation.hpp"
#include "emulation/room_emulation.hpp"
#include "emulation/sweep.hpp"
#include "power/substation.hpp"

namespace flex::emulation {
namespace {

/**
 * Short deterministic timeline: node-budgeted placement (not
 * wall-clock) so runs are bit-identical regardless of machine speed,
 * plus the telemetry-outage drill so alert edges exist to merge.
 */
EmulationConfig
FleetRoomConfig(std::uint64_t seed)
{
  EmulationConfig config;
  config.setup_duration = Seconds(30.0);
  config.failover_at = Seconds(120.0);
  config.restore_at = Seconds(200.0);
  config.end_at = Seconds(260.0);
  config.seed = seed;
  config.placement_solve_seconds = 1e9;
  config.placement_max_nodes = 2000;
  config.alerts.enabled = true;
  config.telemetry_outage_at = Seconds(140.0);
  config.telemetry_outage_until = Seconds(180.0);
  return config;
}

FleetConfig
SmallFleet(int rooms, int threads)
{
  FleetConfig config;
  config.room = FleetRoomConfig(2021);
  config.rooms = rooms;
  config.threads = threads;
  config.epoch = Seconds(30.0);
  return config;
}

TEST(FleetEmulationTest, FleetOfOneMatchesMonolithicRun)
{
  // Epoch-bounded driving tiles the same timeline RunUntil would run in
  // one call, so a 1-room fleet must reproduce the standalone room
  // bit-for-bit — series, counters, alert timeline, store contents.
  RoomEmulation standalone(FleetRoomConfig(2021));
  const EmulationReport solo = standalone.Run();

  FleetEmulation fleet(SmallFleet(1, 1));
  const FleetReport report = fleet.Run();

  ASSERT_EQ(report.rooms.size(), 1u);
  const EmulationReport& laned = report.rooms[0].report;
  EXPECT_EQ(HashEmulationReport(solo), HashEmulationReport(laned));
  EXPECT_EQ(solo.alert_fingerprint, laned.alert_fingerprint);
  EXPECT_EQ(solo.store_fingerprint, laned.store_fingerprint);
  EXPECT_EQ(solo.events_executed, laned.events_executed);
  EXPECT_EQ(solo.series.size(), laned.series.size());
}

TEST(FleetEmulationTest, FleetIsBitIdenticalAtOneTwoAndEightLanes)
{
  // The acceptance bar: per-room lane-identity hashes, final report
  // hashes, the merged alert timeline, and every rollup row agree
  // across lane counts. The substation coupling is on, so the barrier
  // feedback path is exercised too.
  const auto run = [](int threads) {
    FleetConfig config = SmallFleet(3, threads);
    config.substation = power::SubstationConfig::ForRooms(
        3, config.room.room, /*headroom_fraction=*/0.9);
    FleetEmulation fleet(config);
    return fleet.Run();
  };
  const FleetReport one = run(1);
  const FleetReport two = run(2);
  const FleetReport eight = run(8);

  EXPECT_EQ(one.lanes, 1);
  EXPECT_GE(two.lanes, 2);
  EXPECT_GE(eight.lanes, 8);

  for (const FleetReport* other : {&two, &eight}) {
    EXPECT_EQ(one.fleet_hash, other->fleet_hash);
    EXPECT_EQ(one.alert_fingerprint, other->alert_fingerprint);
    ASSERT_EQ(one.rooms.size(), other->rooms.size());
    for (std::size_t r = 0; r < one.rooms.size(); ++r) {
      EXPECT_EQ(one.rooms[r].epoch_hash, other->rooms[r].epoch_hash)
          << "room " << r;
      EXPECT_EQ(one.rooms[r].report_hash, other->rooms[r].report_hash)
          << "room " << r;
      EXPECT_EQ(one.rooms[r].report.store_fingerprint,
                other->rooms[r].report.store_fingerprint)
          << "room " << r;
    }
    ASSERT_EQ(one.alert_timeline.size(), other->alert_timeline.size());
    for (std::size_t e = 0; e < one.alert_timeline.size(); ++e) {
      EXPECT_EQ(one.alert_timeline[e].room, other->alert_timeline[e].room);
      EXPECT_EQ(one.alert_timeline[e].edge.t,
                other->alert_timeline[e].edge.t);
      EXPECT_EQ(one.alert_timeline[e].edge.rule,
                other->alert_timeline[e].edge.rule);
    }
    ASSERT_EQ(one.rollup.rows.size(), other->rollup.rows.size());
    for (std::size_t i = 0; i < one.rollup.rows.size(); ++i) {
      EXPECT_EQ(one.rollup.rows[i].name, other->rollup.rows[i].name);
      EXPECT_EQ(one.rollup.rows[i].value, other->rollup.rows[i].value)
          << one.rollup.rows[i].name;
    }
  }

  // The drill fired somewhere, so the merge actually moved edges.
  EXPECT_GT(one.alert_timeline.size(), 0u);
  EXPECT_EQ(one.events_executed, two.events_executed);
}

TEST(FleetEmulationTest, EpochLengthDoesNotChangeRoomOutcomes)
{
  // Tiling the timeline into 30 s epochs vs one whole-run epoch must
  // execute identical event traces per room (EventQueue::RunUntil tiles
  // exactly). Only merge-cadence artifacts (epoch counts, alert-edge
  // interleaving across rooms) may differ.
  FleetConfig fine = SmallFleet(2, 1);
  FleetConfig coarse = SmallFleet(2, 1);
  coarse.epoch = coarse.room.end_at;
  FleetEmulation fine_fleet(fine);
  FleetEmulation coarse_fleet(coarse);
  const FleetReport a = fine_fleet.Run();
  const FleetReport b = coarse_fleet.Run();

  EXPECT_GT(a.epochs, b.epochs);
  EXPECT_EQ(b.epochs, 1u);
  ASSERT_EQ(a.rooms.size(), b.rooms.size());
  for (std::size_t r = 0; r < a.rooms.size(); ++r) {
    EXPECT_EQ(a.rooms[r].report_hash, b.rooms[r].report_hash) << "room " << r;
  }
  EXPECT_EQ(a.alert_timeline.size(), b.alert_timeline.size());
}

TEST(FleetEmulationTest, SubstationCouplingIsObservationalOnly)
{
  // The shared-cap verdict feeds back only as a metrics gauge; it must
  // never change any room's event trace or recorded outcomes.
  FleetConfig without = SmallFleet(2, 1);
  FleetConfig with = SmallFleet(2, 1);
  with.substation = power::SubstationConfig::ForRooms(
      2, with.room.room, /*headroom_fraction=*/0.5);  // tight: overloads
  FleetEmulation plain_fleet(without);
  FleetEmulation coupled_fleet(with);
  const FleetReport plain = plain_fleet.Run();
  const FleetReport coupled = coupled_fleet.Run();

  ASSERT_EQ(plain.rooms.size(), coupled.rooms.size());
  for (std::size_t r = 0; r < plain.rooms.size(); ++r) {
    EXPECT_EQ(plain.rooms[r].report_hash, coupled.rooms[r].report_hash)
        << "room " << r;
  }
  // The coupled fleet actually evaluated the feed.
  EXPECT_GT(coupled.peak_substation_utilization, 0.0);
  EXPECT_EQ(plain.peak_substation_utilization, 0.0);
  const obs::MetricRow* gauge =
      coupled.rollup.Find("fleet.substation_utilization");
  ASSERT_NE(gauge, nullptr);
  EXPECT_GT(gauge->value, 0.0);
}

TEST(FleetEmulationTest, RollupAndAccountingAreCoherent)
{
  FleetConfig config = SmallFleet(2, 1);
  FleetEmulation fleet(config);
  const int racks = fleet.total_racks();
  EXPECT_GT(racks, 0);
  const FleetReport report = fleet.Run();

  EXPECT_EQ(report.total_racks, racks);
  EXPECT_EQ(report.total_racks,
            report.rooms[0].report.total_racks +
                report.rooms[1].report.total_racks);
  EXPECT_EQ(report.epochs,
            static_cast<std::uint64_t>(std::ceil(
                config.room.end_at.value() / config.epoch.value())));
  EXPECT_GT(report.events_executed, 0u);
  EXPECT_GT(report.step_wall_seconds, 0.0);
  EXPECT_GE(report.merge_wall_seconds, 0.0);
  EXPECT_GT(report.lane_busy_seconds, 0.0);

  const obs::MetricRow* rooms_row = report.rollup.Find("fleet.rooms");
  ASSERT_NE(rooms_row, nullptr);
  EXPECT_EQ(rooms_row->value, 2.0);
  const obs::MetricRow* racks_row = report.rollup.Find("fleet.total_racks");
  ASSERT_NE(racks_row, nullptr);
  EXPECT_EQ(racks_row->value, static_cast<double>(racks));
  const obs::MetricRow* events_row =
      report.rollup.Find("fleet.events_executed");
  ASSERT_NE(events_row, nullptr);
  EXPECT_GT(events_row->value, 0.0);
  // Rollup rows honour the MetricsSnapshot sorted-by-name contract.
  for (std::size_t i = 1; i < report.rollup.rows.size(); ++i)
    EXPECT_LT(report.rollup.rows[i - 1].name, report.rollup.rows[i].name);
}

}  // namespace
}  // namespace flex::emulation
