/**
 * @file
 * Unit tests for the workload substrate: deployments, impact functions,
 * trace generation, rack power models.
 */
#include <set>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "workload/deployment.hpp"
#include "workload/impact.hpp"
#include "workload/rack_power.hpp"
#include "workload/trace.hpp"

namespace flex::workload {
namespace {

Deployment
MakeDeployment(Category category, int racks = 20,
               double flex_fraction = 0.8)
{
  Deployment d;
  d.id = 0;
  d.workload = "test";
  d.category = category;
  d.num_racks = racks;
  d.power_per_rack = KiloWatts(14.4);
  d.flex_power_fraction =
      category == Category::kSoftwareRedundant ? 0.0 : flex_fraction;
  return d;
}

TEST(DeploymentTest, AllocatedPowerIsRacksTimesPerRack)
{
  const Deployment d = MakeDeployment(Category::kNonRedundantCapable);
  EXPECT_NEAR(d.AllocatedPower().kilowatts(), 288.0, 1e-9);
}

TEST(DeploymentTest, CappedPowerFollowsEq3)
{
  // Software-redundant: shut down entirely -> 0.
  EXPECT_NEAR(MakeDeployment(Category::kSoftwareRedundant)
                  .CappedPower().value(), 0.0, 1e-9);
  // Cap-able: flex power fraction of the allocation.
  EXPECT_NEAR(MakeDeployment(Category::kNonRedundantCapable, 20, 0.8)
                  .CappedPower().kilowatts(), 288.0 * 0.8, 1e-6);
  // Non-cap-able: nothing recoverable.
  const Deployment nc = MakeDeployment(Category::kNonRedundantNonCapable);
  EXPECT_NEAR(nc.CappedPower().kilowatts(), 288.0, 1e-9);
  EXPECT_NEAR(nc.ShaveablePower().value(), 0.0, 1e-9);
}

TEST(DeploymentTest, ShaveablePlusCappedEqualsAllocated)
{
  for (const Category c : {Category::kSoftwareRedundant,
                           Category::kNonRedundantCapable,
                           Category::kNonRedundantNonCapable}) {
    const Deployment d = MakeDeployment(c);
    EXPECT_NEAR((d.ShaveablePower() + d.CappedPower()).value(),
                d.AllocatedPower().value(), 1e-6);
  }
}

TEST(DeploymentTest, ValidateRejectsBadFields)
{
  Deployment d = MakeDeployment(Category::kNonRedundantCapable);
  d.num_racks = 0;
  EXPECT_THROW(d.Validate(), ConfigError);
  d = MakeDeployment(Category::kNonRedundantCapable);
  d.power_per_rack = Watts(0.0);
  EXPECT_THROW(d.Validate(), ConfigError);
  d = MakeDeployment(Category::kNonRedundantCapable);
  d.flex_power_fraction = 1.5;
  EXPECT_THROW(d.Validate(), ConfigError);
  d = MakeDeployment(Category::kNonRedundantCapable);
  d.workload.clear();
  EXPECT_THROW(d.Validate(), ConfigError);
}

TEST(DeploymentTest, CategoryNamesAreStable)
{
  EXPECT_STREQ(CategoryName(Category::kSoftwareRedundant),
               "software-redundant");
  EXPECT_STREQ(CategoryName(Category::kNonRedundantCapable),
               "non-redundant-capable");
  EXPECT_STREQ(CategoryName(Category::kNonRedundantNonCapable),
               "non-redundant-non-capable");
}

TEST(ImpactFunctionTest, RejectsOutOfRangeOrDecreasing)
{
  EXPECT_THROW(ImpactFunction(PiecewiseLinear{{0.0, 0.0}, {1.0, 1.5}}),
               ConfigError);
  EXPECT_THROW(ImpactFunction(PiecewiseLinear{{0.0, 0.5}, {1.0, 0.2}}),
               ConfigError);
  EXPECT_THROW(ImpactFunction::Linear()(1.5), ConfigError);
}

TEST(ImpactFunctionTest, Fig8ShapesAreSensible)
{
  const ImpactFunction a = ImpactFunction::Fig8A();
  const ImpactFunction b = ImpactFunction::Fig8B();
  const ImpactFunction c = ImpactFunction::Fig8C();
  // A: impact from the first rack; critical tail.
  EXPECT_GT(a(0.2), 0.0);
  EXPECT_NEAR(a(1.0), 1.0, 1e-12);
  // B: free until 60%.
  EXPECT_NEAR(b(0.5), 0.0, 1e-12);
  EXPECT_GT(b(0.9), 0.0);
  EXPECT_LT(b(1.0), 1.0);  // no critical racks: stateless
  // C: free growth buffer then incremental then critical.
  EXPECT_NEAR(c(0.1), 0.0, 1e-12);
  EXPECT_GT(c(0.5), 0.0);
  EXPECT_NEAR(c(1.0), 1.0, 1e-12);
}

TEST(ImpactFunctionTest, ZeroAndCriticalExtremes)
{
  EXPECT_NEAR(ImpactFunction::Zero()(1.0), 0.0, 1e-12);
  EXPECT_NEAR(ImpactFunction::Critical()(0.01), 1.0, 1e-9);
  EXPECT_NEAR(ImpactFunction::Critical()(0.0), 0.0, 1e-12);
}

TEST(ImpactScenarioTest, AllFourScenariosExist)
{
  const auto scenarios = ImpactScenario::AllScenarios();
  ASSERT_EQ(scenarios.size(), 4u);
  EXPECT_EQ(scenarios[0].name, "Extreme-1");
  EXPECT_EQ(scenarios[1].name, "Extreme-2");
  EXPECT_EQ(scenarios[2].name, "Realistic-1");
  EXPECT_EQ(scenarios[3].name, "Realistic-2");
  // Extreme-1: shutting down SR is free, throttling is critical.
  EXPECT_NEAR(scenarios[0].software_redundant(0.8), 0.0, 1e-12);
  EXPECT_NEAR(scenarios[0].capable(0.1), 1.0, 1e-9);
  // Extreme-2 is the mirror image.
  EXPECT_NEAR(scenarios[1].capable(0.8), 0.0, 1e-12);
  EXPECT_NEAR(scenarios[1].software_redundant(0.1), 1.0, 1e-9);
}

TEST(ImpactScenarioTest, Realistic1PrefersShutdownRealistic2Throttling)
{
  const ImpactScenario r1 = ImpactScenario::Realistic1();
  const ImpactScenario r2 = ImpactScenario::Realistic2();
  // At moderate affected fractions, Realistic-1 charges less for
  // shutting down than throttling; Realistic-2 is the opposite.
  EXPECT_LT(r1.software_redundant(0.3), r1.capable(0.3));
  EXPECT_GT(r2.software_redundant(0.5), r2.capable(0.5));
}

TEST(TraceTest, GeneratesApproximatelyTargetDemand)
{
  Rng rng(1);
  const TraceConfig config;
  const Watts provisioned = MegaWatts(9.6);
  const auto trace = GenerateTrace(config, provisioned, rng);
  const Watts total = TotalAllocatedPower(trace);
  // Demand should be ~115% of provisioned (within one deployment size).
  EXPECT_GE(total.megawatts(), 9.6 * 1.15 - 0.4);
  EXPECT_LE(total.megawatts(), 9.6 * 1.15 + 0.4);
}

TEST(TraceTest, CategoryMixTracksConfiguredFractions)
{
  Rng rng(2);
  const TraceConfig config;
  const auto trace = GenerateTrace(config, MegaWatts(9.6), rng);
  const CategoryMix mix = MixOf(trace);
  EXPECT_NEAR(mix.software_redundant, 0.13, 0.04);
  EXPECT_NEAR(mix.capable, 0.56, 0.05);
  EXPECT_NEAR(mix.non_capable, 0.31, 0.05);
  EXPECT_NEAR(mix.software_redundant + mix.capable + mix.non_capable, 1.0,
              1e-9);
}

TEST(TraceTest, DeploymentFieldsAreWithinConfig)
{
  Rng rng(3);
  const TraceConfig config;
  const auto trace = GenerateTrace(config, MegaWatts(9.6), rng);
  ASSERT_FALSE(trace.empty());
  for (const Deployment& d : trace) {
    EXPECT_TRUE(d.num_racks == 20 || d.num_racks == 10 || d.num_racks == 5);
    EXPECT_TRUE(d.power_per_rack.ApproxEquals(KiloWatts(14.4)) ||
                d.power_per_rack.ApproxEquals(KiloWatts(17.2)));
    if (d.category == Category::kNonRedundantCapable) {
      EXPECT_GE(d.flex_power_fraction, 0.75);
      EXPECT_LE(d.flex_power_fraction, 0.85);
    }
    if (d.category == Category::kSoftwareRedundant) {
      EXPECT_DOUBLE_EQ(d.flex_power_fraction, 0.0);
    }
    EXPECT_NO_THROW(d.Validate());
  }
}

TEST(TraceTest, IdsAreSequential)
{
  Rng rng(4);
  const auto trace = GenerateTrace(TraceConfig{}, MegaWatts(9.6), rng);
  for (std::size_t i = 0; i < trace.size(); ++i)
    EXPECT_EQ(trace[i].id, static_cast<DeploymentId>(i));
}

TEST(TraceTest, ShuffledVariantsPreserveMultiset)
{
  Rng rng(5);
  const auto trace = GenerateTrace(TraceConfig{}, MegaWatts(9.6), rng);
  const auto variants = ShuffledVariants(trace, 10, rng);
  ASSERT_EQ(variants.size(), 10u);
  const Watts original = TotalAllocatedPower(trace);
  for (const auto& variant : variants) {
    EXPECT_EQ(variant.size(), trace.size());
    EXPECT_NEAR(TotalAllocatedPower(variant).value(), original.value(), 1e-6);
    for (std::size_t i = 0; i < variant.size(); ++i)
      EXPECT_EQ(variant[i].id, static_cast<DeploymentId>(i));
  }
  // First variant is the original order.
  for (std::size_t i = 0; i < trace.size(); ++i)
    EXPECT_EQ(variants[0][i].workload, trace[i].workload);
}

TEST(TraceTest, CapDeploymentSizesSplitsLargeDeployments)
{
  Rng rng(6);
  const auto trace = GenerateTrace(TraceConfig{}, MegaWatts(9.6), rng);
  const auto capped = CapDeploymentSizes(trace, 10);
  const Watts original = TotalAllocatedPower(trace);
  EXPECT_NEAR(TotalAllocatedPower(capped).value(), original.value(), 1e-6);
  for (const Deployment& d : capped)
    EXPECT_LE(d.num_racks, 10);
  EXPECT_GT(capped.size(), trace.size());
}

TEST(TraceTest, ZeroSoftwareRedundantConfigProducesNone)
{
  Rng rng(7);
  TraceConfig config;
  config.software_redundant_fraction = 0.0;
  config.capable_fraction = 0.69;
  const auto trace = GenerateTrace(config, MegaWatts(9.6), rng);
  for (const Deployment& d : trace)
    EXPECT_NE(d.category, Category::kSoftwareRedundant);
}

TEST(TraceTest, ValidatesConfig)
{
  Rng rng(8);
  TraceConfig config;
  config.demand_multiple = 0.0;
  EXPECT_THROW(GenerateTrace(config, MegaWatts(9.6), rng), ConfigError);
  config = TraceConfig{};
  config.software_redundant_fraction = 0.8;
  config.capable_fraction = 0.8;
  EXPECT_THROW(GenerateTrace(config, MegaWatts(9.6), rng), ConfigError);
  config = TraceConfig{};
  config.flex_power_min = 0.9;
  config.flex_power_max = 0.8;
  EXPECT_THROW(GenerateTrace(config, MegaWatts(9.6), rng), ConfigError);
}

TEST(RackPowerTest, SampleStaysWithinAllocation)
{
  Rng rng(9);
  const RackPowerModel model;
  const std::vector<Watts> allocations(100, KiloWatts(14.4));
  const std::vector<Watts> draws = model.Sample(allocations, rng);
  ASSERT_EQ(draws.size(), 100u);
  for (const Watts d : draws) {
    EXPECT_GE(d.kilowatts(), 14.4 * 0.30 - 1e-9);
    EXPECT_LE(d.kilowatts(), 14.4 + 1e-9);
  }
}

TEST(RackPowerTest, SampleAtUtilizationHitsTarget)
{
  Rng rng(10);
  const RackPowerModel model;
  const std::vector<Watts> allocations(200, KiloWatts(17.2));
  for (const double target : {0.5, 0.74, 0.80, 0.85}) {
    const auto draws = model.SampleAtUtilization(allocations, target, rng);
    Watts total(0.0);
    for (const Watts d : draws)
      total += d;
    const Watts allocation_total = KiloWatts(17.2) * 200.0;
    EXPECT_NEAR(total / allocation_total, target, 0.01) << target;
    for (std::size_t i = 0; i < draws.size(); ++i)
      EXPECT_LE(draws[i].value(), allocations[i].value() + 1e-6);
  }
}

TEST(RackPowerTest, RejectsBadInputs)
{
  Rng rng(11);
  RackPowerModelConfig bad;
  bad.min_utilization = 0.9;
  bad.max_utilization = 0.5;
  EXPECT_THROW(RackPowerModel{bad}, ConfigError);
  const RackPowerModel model;
  EXPECT_THROW(model.SampleAtUtilization({KiloWatts(10.0)}, 1.5, rng),
               ConfigError);
}

}  // namespace
}  // namespace flex::workload
