/**
 * @file
 * Unit tests for the observability subsystem: metrics registry,
 * histograms, reaction tracer, exporters, and the structured logger.
 * The determinism tests drive the real telemetry pipeline twice with
 * the same seed and require bit-identical exports — the property the
 * seed-replay tooling depends on.
 */
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/forensics.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/observability.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "telemetry/pipeline.hpp"

namespace flex::obs {
namespace {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, ExponentialEdgesAreGeometric)
{
  const HistogramConfig config = HistogramConfig::Exponential(1.0, 2.0, 4);
  EXPECT_EQ(config.edges, (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  EXPECT_THROW(HistogramConfig::Exponential(0.0, 2.0, 4), ConfigError);
  EXPECT_THROW(HistogramConfig::Exponential(1.0, 1.0, 4), ConfigError);
  EXPECT_THROW(HistogramConfig::Exponential(1.0, 2.0, 0), ConfigError);
}

TEST(HistogramTest, SamplesLandInTheFirstBucketWithEdgeAtLeastSample)
{
  HistogramConfig config;
  config.edges = {1.0, 2.0, 4.0};
  Histogram histogram(config);
  histogram.Observe(0.5);  // below first edge -> bucket 0
  histogram.Observe(1.0);  // exactly on an edge -> that bucket (edge >= x)
  histogram.Observe(1.5);  // bucket 1 (edge 2.0)
  histogram.Observe(4.0);  // last real bucket
  histogram.Observe(9.0);  // above all edges -> overflow
  EXPECT_EQ(histogram.bucket_counts(),
            (std::vector<std::uint64_t>{2, 1, 1, 1}));
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 16.0);
  EXPECT_DOUBLE_EQ(histogram.min(), 0.5);
  EXPECT_DOUBLE_EQ(histogram.max(), 9.0);
}

TEST(HistogramTest, RejectsUnsortedOrDuplicateEdges)
{
  HistogramConfig unsorted;
  unsorted.edges = {2.0, 1.0};
  EXPECT_THROW(Histogram{unsorted}, ConfigError);
  HistogramConfig duplicate;
  duplicate.edges = {1.0, 1.0};
  EXPECT_THROW(Histogram{duplicate}, ConfigError);
  HistogramConfig empty;
  EXPECT_THROW(Histogram{empty}, ConfigError);
}

TEST(HistogramTest, SingleSampleQuantilesReportThatSample)
{
  Histogram histogram(HistogramConfig::LatencySeconds());
  histogram.Observe(1.7);
  for (const double q : {0.0, 0.5, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(histogram.Quantile(q), 1.7);
}

TEST(HistogramTest, QuantilesAreMonotoneAndClampedToObservedRange)
{
  Histogram histogram(HistogramConfig::LatencySeconds());
  for (int i = 1; i <= 1000; ++i)
    histogram.Observe(0.001 * i);  // 1 ms .. 1 s
  double previous = histogram.Quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double value = histogram.Quantile(q);
    EXPECT_GE(value, previous);
    previous = value;
  }
  EXPECT_GE(histogram.Quantile(0.0), histogram.min());
  EXPECT_LE(histogram.Quantile(1.0), histogram.max());
  // The median of a uniform 1 ms..1 s sweep sits near 0.5 s.
  EXPECT_NEAR(histogram.Quantile(0.5), 0.5, 0.1);
  EXPECT_THROW(histogram.Quantile(1.5), ConfigError);
}

TEST(HistogramTest, EmptyHistogramIsAllZeroes)
{
  Histogram histogram(HistogramConfig::LatencySeconds());
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.min(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.mean(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.99), 0.0);
}

TEST(HistogramTest, ResetClearsSamplesButKeepsBuckets)
{
  Histogram histogram(HistogramConfig::Exponential(1.0, 2.0, 3));
  histogram.Observe(1.5);
  histogram.Observe(100.0);
  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 0.0);
  EXPECT_EQ(histogram.edges().size(), 3u);
  for (const std::uint64_t c : histogram.bucket_counts())
    EXPECT_EQ(c, 0u);
  histogram.Observe(2.5);
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 2.5);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, FindOrCreateReturnsStableReferences)
{
  MetricsRegistry registry;
  Counter& counter = registry.counter("pipeline.readings");
  counter.Increment();
  counter.Increment(2.5);
  EXPECT_DOUBLE_EQ(registry.counter("pipeline.readings").value(), 3.5);
  // Creating more metrics must not invalidate the cached reference.
  for (int i = 0; i < 64; ++i)
    registry.gauge("gauge.g" + std::to_string(i));
  counter.Increment();
  EXPECT_DOUBLE_EQ(registry.counter("pipeline.readings").value(), 4.5);
  EXPECT_EQ(registry.size(), 65u);
}

TEST(MetricsRegistryTest, RejectsKindMismatch)
{
  MetricsRegistry registry;
  registry.counter("a.b");
  EXPECT_THROW(registry.gauge("a.b"), ConfigError);
  EXPECT_THROW(registry.histogram("a.b"), ConfigError);
  registry.histogram("h.h");
  EXPECT_THROW(registry.counter("h.h"), ConfigError);
}

TEST(MetricsRegistryTest, ValidatesMetricNames)
{
  MetricsRegistry registry;
  EXPECT_NO_THROW(registry.counter("a"));
  EXPECT_NO_THROW(registry.counter("pipeline.publish_lag_s"));
  EXPECT_NO_THROW(registry.counter("power.ups0.soc_2"));
  EXPECT_THROW(registry.counter(""), ConfigError);
  EXPECT_THROW(registry.counter(".a"), ConfigError);
  EXPECT_THROW(registry.counter("a."), ConfigError);
  EXPECT_THROW(registry.counter("a..b"), ConfigError);
  EXPECT_THROW(registry.counter("Upper.case"), ConfigError);
  EXPECT_THROW(registry.counter("with space"), ConfigError);
  EXPECT_THROW(registry.counter("dash-ed"), ConfigError);
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndStampedWithSimTime)
{
  sim::EventQueue queue;
  MetricsRegistry registry(&queue);
  registry.counter("z.last").Increment(7.0);
  registry.gauge("a.first").Set(1.0);
  registry.histogram("m.middle").Observe(0.25);
  queue.Schedule(Seconds(12.5), [] {});
  queue.RunUntil(Seconds(12.5));

  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.sim_time_seconds, 12.5);
  ASSERT_EQ(snapshot.rows.size(), 3u);
  EXPECT_EQ(snapshot.rows[0].name, "a.first");
  EXPECT_EQ(snapshot.rows[1].name, "m.middle");
  EXPECT_EQ(snapshot.rows[2].name, "z.last");
  EXPECT_EQ(snapshot.rows[1].kind, MetricKind::kHistogram);
  EXPECT_EQ(snapshot.rows[1].count, 1u);
  EXPECT_DOUBLE_EQ(snapshot.rows[1].p50, 0.25);
  ASSERT_NE(snapshot.Find("z.last"), nullptr);
  EXPECT_DOUBLE_EQ(snapshot.Find("z.last")->value, 7.0);
  EXPECT_EQ(snapshot.Find("missing"), nullptr);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsRegistrations)
{
  MetricsRegistry registry;
  Counter& counter = registry.counter("c.c");
  Gauge& gauge = registry.gauge("g.g");
  Histogram& histogram = registry.histogram("h.h");
  counter.Increment(5.0);
  gauge.Set(3.0);
  histogram.Observe(1.0);
  registry.Reset();
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_DOUBLE_EQ(counter.value(), 0.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  EXPECT_EQ(histogram.count(), 0u);
  // Cached references stay live after Reset.
  counter.Increment();
  EXPECT_DOUBLE_EQ(registry.Snapshot().Find("c.c")->value, 1.0);
}

// ---------------------------------------------------------------------------
// ReactionTracer
// ---------------------------------------------------------------------------

TEST(ReactionTracerTest, StitchesOneTracePerEpisode)
{
  MetricsRegistry registry;
  TracerConfig config;
  config.budget = Seconds(10.0);
  ReactionTracer tracer(config, &registry);

  tracer.OnDetection(0, 2, Seconds(100.0), Seconds(100.6), Seconds(100.7));
  ASSERT_NE(tracer.active(), nullptr);
  EXPECT_EQ(tracer.active()->ups_index, 2);
  EXPECT_EQ(tracer.active()->detecting_replica, 0);

  // A second replica detects the same overload: absorbed as duplicate.
  tracer.OnDetection(1, 2, Seconds(100.2), Seconds(100.9), Seconds(101.0));
  EXPECT_EQ(tracer.traces().size(), 1u);
  EXPECT_EQ(tracer.active()->duplicate_detections, 1);

  tracer.OnDecision(0, 5, Seconds(100.8));
  tracer.OnEnforced(0, Seconds(101.9));
  EXPECT_EQ(tracer.complete_count(), 1u);
  EXPECT_EQ(tracer.within_budget_count(), 1u);

  const ReactionTrace& trace = tracer.traces().front();
  EXPECT_TRUE(trace.complete);
  EXPECT_FALSE(trace.closed);
  EXPECT_EQ(trace.actions, 5);
  EXPECT_NEAR(trace.EndToEnd().value(), 1.9, 1e-12);
  EXPECT_TRUE(trace.WithinBudget());
  EXPECT_NEAR(trace.StageLatency(ReactionStage::kPublish).value(), 0.6,
              1e-12);
  EXPECT_NEAR(trace.StageLatency(ReactionStage::kObserve).value(), 0.1,
              1e-12);
  EXPECT_NEAR(trace.StageLatency(ReactionStage::kDecide).value(), 0.1, 1e-12);
  EXPECT_NEAR(trace.StageLatency(ReactionStage::kActuate).value(), 1.1,
              1e-12);

  // Completed traces feed the reaction.* metrics.
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_NE(snapshot.Find("reaction.episodes"), nullptr);
  EXPECT_DOUBLE_EQ(snapshot.Find("reaction.episodes")->value, 1.0);
  ASSERT_NE(snapshot.Find("reaction.end_to_end_s"), nullptr);
  EXPECT_EQ(snapshot.Find("reaction.end_to_end_s")->count, 1u);
  // Nothing went over budget, so the over-budget counter never appears.
  EXPECT_EQ(snapshot.Find("reaction.over_budget"), nullptr);

  // Release closes the episode; the next detection opens trace #2.
  tracer.OnEpisodeClosed(0, Seconds(140.0));
  EXPECT_EQ(tracer.active(), nullptr);
  EXPECT_TRUE(tracer.traces().front().closed);
  tracer.OnDetection(1, 0, Seconds(200.0), Seconds(200.5), Seconds(200.6));
  ASSERT_EQ(tracer.traces().size(), 2u);
  EXPECT_EQ(tracer.traces().back().id, 2u);
  EXPECT_EQ(tracer.traces().back().detecting_replica, 1);
}

TEST(ReactionTracerTest, LaterWavesCountAsDuplicates)
{
  ReactionTracer tracer;
  tracer.OnDetection(0, 1, Seconds(10.0), Seconds(10.4), Seconds(10.5));
  tracer.OnDecision(0, 3, Seconds(10.6));
  tracer.OnDecision(1, 4, Seconds(10.9));  // racing replica's wave
  tracer.OnEnforced(1, Seconds(11.5));
  tracer.OnEnforced(0, Seconds(12.0));  // later completion: already done
  const ReactionTrace& trace = tracer.traces().front();
  EXPECT_EQ(trace.actions, 3);
  // Both the racing decision and the late enforcement are duplicates.
  EXPECT_EQ(trace.duplicate_waves, 2);
  // The FIRST completed wave closes the chain.
  EXPECT_DOUBLE_EQ(trace.enforced_at.value(), 11.5);
  EXPECT_EQ(tracer.complete_count(), 1u);
}

TEST(ReactionTracerTest, OverBudgetReactionsAreCounted)
{
  MetricsRegistry registry;
  TracerConfig config;
  config.budget = Seconds(1.0);
  ReactionTracer tracer(config, &registry);
  tracer.OnDetection(0, 0, Seconds(0.0), Seconds(0.5), Seconds(0.6));
  tracer.OnDecision(0, 1, Seconds(0.7));
  tracer.OnEnforced(0, Seconds(5.0));
  EXPECT_EQ(tracer.complete_count(), 1u);
  EXPECT_EQ(tracer.within_budget_count(), 0u);
  EXPECT_FALSE(tracer.traces().front().WithinBudget());
  EXPECT_DOUBLE_EQ(registry.Snapshot().Find("reaction.over_budget")->value,
                   1.0);
}

TEST(ReactionTracerTest, EnforcementWithoutDetectionIsIgnored)
{
  ReactionTracer tracer;
  EXPECT_NO_THROW(tracer.OnDecision(0, 2, Seconds(1.0)));
  EXPECT_NO_THROW(tracer.OnEnforced(0, Seconds(2.0)));
  EXPECT_NO_THROW(tracer.OnEpisodeClosed(0, Seconds(3.0)));
  EXPECT_TRUE(tracer.traces().empty());
  EXPECT_EQ(tracer.complete_count(), 0u);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(ExportTest, TraceJsonHasFixedKeyOrderAndStages)
{
  TracerConfig config;
  config.budget = Seconds(10.0);
  ReactionTracer tracer(config);
  tracer.OnDetection(0, 3, Seconds(1.0), Seconds(1.5), Seconds(1.6));
  tracer.OnDecision(0, 2, Seconds(1.7));
  tracer.OnEnforced(0, Seconds(2.5));
  const std::string json = TraceToJson(tracer.traces().front());
  EXPECT_EQ(json.find("{\"trace_id\":1,\"ups\":3,\"replica\":0,"
                      "\"complete\":true,\"actions\":2"),
            0u);
  EXPECT_NE(json.find("\"meter_sample\":1"), std::string::npos);
  EXPECT_NE(json.find("\"end_to_end_s\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"within_budget\":true"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);

  const std::string jsonl = TracesToJsonl(tracer);
  EXPECT_EQ(jsonl, json + "\n");
}

TEST(ExportTest, SnapshotCsvHasFixedHeaderAndOneRowPerMetric)
{
  MetricsRegistry registry;
  registry.counter("c.events").Increment(3.0);
  registry.histogram("h.lat").Observe(0.5);
  const std::string csv = SnapshotToCsv(registry.Snapshot());
  EXPECT_EQ(csv.find("name,kind,value,count,sum,min,max,p50,p99\n"), 0u);
  EXPECT_NE(csv.find("c.events,counter,3"), std::string::npos);
  EXPECT_NE(csv.find("h.lat,histogram"), std::string::npos);
}

TEST(ExportTest, BenchJsonLineIsSingleLineWithBenchName)
{
  MetricsRegistry registry;
  registry.gauge("bench.end_to_end_s").Set(3.5);
  const std::string line = BenchJsonLine("bench_demo", registry.Snapshot());
  EXPECT_EQ(line.find("{\"bench\":\"bench_demo\",\"sim_time_s\":0"), 0u);
  EXPECT_NE(
      line.find("\"bench.end_to_end_s\":{\"type\":\"gauge\",\"value\":3.5}"),
      std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(ExportTest, SummaryTableListsMetricsAndTraceVerdicts)
{
  MetricsRegistry registry;
  TracerConfig config;
  config.budget = Seconds(10.0);
  ReactionTracer tracer(config, &registry);
  tracer.OnDetection(0, 1, Seconds(0.0), Seconds(0.4), Seconds(0.5));
  tracer.OnDecision(0, 1, Seconds(0.6));
  tracer.OnEnforced(0, Seconds(1.4));
  registry.counter("pipeline.readings_delivered").Increment(42.0);
  const std::string table = SummaryTable(registry.Snapshot(), &tracer);
  EXPECT_NE(table.find("pipeline.readings_delivered"), std::string::npos);
  EXPECT_NE(table.find("reaction.end_to_end_s"), std::string::npos);
  EXPECT_NE(table.find("OK"), std::string::npos);
  EXPECT_EQ(table.find("OVER"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Determinism: two identical seeded runs export bit-identical bytes
// ---------------------------------------------------------------------------

namespace {

class SteadySource : public telemetry::PowerSource {
 public:
  Watts
  CurrentPower(telemetry::DeviceId device) const override
  {
    return device.kind == telemetry::DeviceKind::kUps ? MegaWatts(1.0)
                                                      : KiloWatts(15.0);
  }
};

std::string
RunSeededPipeline(std::uint64_t seed)
{
  sim::EventQueue queue;
  Observability observability;
  observability.BindClock(queue);
  SteadySource source;
  telemetry::PipelineConfig config;
  config.obs = &observability;
  telemetry::TelemetryPipeline pipeline(queue, source, 2, 12, config, seed);
  pipeline.Subscribe([](const telemetry::DeviceReading&) {});
  pipeline.Start();
  queue.RunUntil(Minutes(2.0));
  return SnapshotToJson(observability.metrics().Snapshot()) +
         SnapshotToCsv(observability.metrics().Snapshot());
}

}  // namespace

TEST(DeterminismTest, IdenticalSeedsProduceBitIdenticalExports)
{
  const std::string first = RunSeededPipeline(2021);
  const std::string second = RunSeededPipeline(2021);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("pipeline.publish_lag_s"), std::string::npos);
  // A different seed jitters deliveries differently.
  EXPECT_NE(first, RunSeededPipeline(77));
}

// ---------------------------------------------------------------------------
// Logger
// ---------------------------------------------------------------------------

/** Captures log output and restores global logger state afterwards. */
class LogTest : public ::testing::Test {
 protected:
  LogTest()
  {
    saved_level_ = GetLogLevel();
    SetLogSink([this](LogLevel level, const std::string& line) {
      levels_.push_back(level);
      lines_.push_back(line);
    });
  }

  ~LogTest() override
  {
    SetLogSink({});
    SetLogLevel(saved_level_);
    SetLogClock(nullptr);
  }

  LogLevel saved_level_;
  std::vector<LogLevel> levels_;
  std::vector<std::string> lines_;
};

TEST_F(LogTest, ParsesLevelNamesCaseInsensitively)
{
  EXPECT_EQ(ParseLogLevel("trace"), LogLevel::kTrace);
  EXPECT_EQ(ParseLogLevel("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("Info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("warning"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("off"), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("none"), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("bogus", LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel(nullptr, LogLevel::kError), LogLevel::kError);
}

TEST_F(LogTest, ThresholdFiltersRecords)
{
  SetLogLevel(LogLevel::kWarn);
  FLEX_LOG(LogLevel::kInfo, "test", "dropped %d", 1);
  FLEX_LOG(LogLevel::kWarn, "test", "kept %d", 2);
  FLEX_LOG(LogLevel::kError, "test", "kept %d", 3);
  ASSERT_EQ(lines_.size(), 2u);
  EXPECT_EQ(levels_[0], LogLevel::kWarn);
  EXPECT_NE(lines_[0].find("kept 2"), std::string::npos);
  EXPECT_NE(lines_[1].find("kept 3"), std::string::npos);
  EXPECT_NE(lines_[0].find("test:"), std::string::npos);
}

TEST_F(LogTest, MacroSkipsArgumentEvaluationWhenFiltered)
{
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] { return ++evaluations; };
  FLEX_LOG(LogLevel::kDebug, "test", "value %d", expensive());
  EXPECT_EQ(evaluations, 0);
  FLEX_LOG(LogLevel::kError, "test", "value %d", expensive());
  EXPECT_EQ(evaluations, 1);
  EXPECT_FALSE(LogEnabled(LogLevel::kWarn));
  EXPECT_TRUE(LogEnabled(LogLevel::kError));
}

TEST_F(LogTest, OffSilencesEverything)
{
  SetLogLevel(LogLevel::kOff);
  FLEX_LOG(LogLevel::kError, "test", "never seen");
  EXPECT_TRUE(lines_.empty());
  EXPECT_FALSE(LogEnabled(LogLevel::kError));
}

TEST_F(LogTest, FileSinkTeesEveryRecordEvenUnderSinkRedirection)
{
  SetLogLevel(LogLevel::kInfo);
  const std::string path =
      ::testing::TempDir() + "obs_test_log_sink.log";
  std::remove(path.c_str());
  ASSERT_TRUE(SetLogFile(path));
  FLEX_LOG(LogLevel::kInfo, "filesink", "teed %d", 7);
  FLEX_LOG(LogLevel::kDebug, "filesink", "filtered out");
  ASSERT_TRUE(SetLogFile(""));  // close, flushing the handle

  std::ifstream stream(path);
  std::ostringstream content;
  content << stream.rdbuf();
  // The fixture redirected the sink into lines_, yet the file still got
  // the record — and in the same format the sink saw.
  EXPECT_NE(content.str().find("filesink: teed 7"), std::string::npos);
  EXPECT_EQ(content.str().find("filtered out"), std::string::npos);
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_NE(content.str().find(lines_[0]), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(LogTest, RateLimiterUsesSimClockWhenRegistered)
{
  LogRateLimiter limiter(/*min_interval_s=*/5.0, /*every_nth=*/100);
  sim::EventQueue queue;
  SetLogClock(&queue);

  EXPECT_TRUE(limiter.Admit());  // first call always passes
  EXPECT_FALSE(limiter.Admit());  // same instant: suppressed
  EXPECT_EQ(limiter.suppressed(), 1u);

  queue.Schedule(Seconds(5.0), [] {});
  queue.RunUntil(Seconds(5.0));
  EXPECT_TRUE(limiter.Admit());  // interval elapsed, counter reset
  EXPECT_EQ(limiter.suppressed(), 0u);
  EXPECT_EQ(limiter.total_suppressed(), 1u);
  SetLogClock(nullptr);
}

TEST_F(LogTest, RateLimiterFallsBackToEveryNthWithoutClock)
{
  LogRateLimiter limiter(/*min_interval_s=*/5.0, /*every_nth=*/4);
  EXPECT_TRUE(limiter.Admit());
  EXPECT_FALSE(limiter.Admit());
  EXPECT_FALSE(limiter.Admit());
  EXPECT_FALSE(limiter.Admit());
  EXPECT_EQ(limiter.suppressed(), 3u);
  EXPECT_TRUE(limiter.Admit());  // every 4th call passes
  EXPECT_EQ(limiter.suppressed(), 0u);
  EXPECT_EQ(limiter.total_suppressed(), 3u);
}

TEST_F(LogTest, RateLimitedMacroAnnotatesSuppressedCount)
{
  SetLogLevel(LogLevel::kInfo);
  sim::EventQueue queue;
  SetLogClock(&queue);
  // The limiter is per expansion site, so every call must go through
  // the same macro instance — hence the lambda.
  auto emit = [](int i) {
    FLEX_LOG_RATE_LIMITED(LogLevel::kInfo, "limited", "burst %d", i);
  };
  for (int i = 0; i < 3; ++i)
    emit(i);
  ASSERT_EQ(lines_.size(), 1u);  // one instant: only the first passed
  EXPECT_NE(lines_[0].find("burst 0"), std::string::npos);

  queue.Schedule(Seconds(10.0), [] {});
  queue.RunUntil(Seconds(10.0));
  emit(3);
  ASSERT_EQ(lines_.size(), 2u);
  EXPECT_NE(lines_[1].find("burst 3 (suppressed 2 similar)"),
            std::string::npos);
  SetLogClock(nullptr);
}

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

TEST(FlightRecorderTest, RingWrapsDroppingOldestFirst)
{
  FlightRecorder recorder(RecorderConfig{4});
  for (int i = 0; i < 10; ++i) {
    recorder.Record(Seconds(static_cast<double>(i)), RecordKind::kAnnotation,
                    i);
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.capacity(), 4u);
  EXPECT_EQ(recorder.dropped_count(), 6u);
  EXPECT_EQ(recorder.next_sequence(), 10u);

  const std::vector<FlightRecord> records = recorder.Records();
  ASSERT_EQ(records.size(), 4u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].sequence, 6u + i);  // oldest retained first
    EXPECT_EQ(records[i].a, static_cast<int>(6 + i));
  }
  // Sequences stay strictly monotone across the wrap.
  for (std::size_t i = 1; i < records.size(); ++i)
    EXPECT_LT(records[i - 1].sequence, records[i].sequence);
}

TEST(FlightRecorderTest, ClearEmptiesRingButKeepsSequenceNumbering)
{
  FlightRecorder recorder(RecorderConfig{4});
  recorder.Record(Seconds(1.0), RecordKind::kDetection, 0, 1);
  recorder.Record(Seconds(2.0), RecordKind::kDecision, 0);
  recorder.Clear();
  EXPECT_EQ(recorder.size(), 0u);
  recorder.Record(Seconds(3.0), RecordKind::kEnforced, 0);
  const std::vector<FlightRecord> records = recorder.Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].sequence, 2u);  // numbering continued
}

TEST(FlightRecorderTest, JsonRoundTripPreservesEveryFieldAndEscapes)
{
  FlightRecord record;
  record.sequence = 41;
  record.t = 12.25;
  record.kind = RecordKind::kViolation;
  record.a = 3;
  record.b = -1;
  record.value = 0.125;
  record.detail = "say \"no\"\\path\nline2\ttab";

  FlightRecord parsed;
  ASSERT_TRUE(ParseRecordJson(RecordToJson(record), &parsed));
  EXPECT_EQ(parsed.sequence, record.sequence);
  EXPECT_EQ(parsed.t, record.t);
  EXPECT_EQ(parsed.kind, record.kind);
  EXPECT_EQ(parsed.a, record.a);
  EXPECT_EQ(parsed.b, record.b);
  EXPECT_EQ(parsed.value, record.value);
  EXPECT_EQ(parsed.detail, record.detail);
}

TEST(FlightRecorderTest, JsonlParsingRejectsMalformedLines)
{
  FlightRecorder recorder(RecorderConfig{8});
  recorder.Record(Seconds(1.0), RecordKind::kMeterSample, 0, 1, 150e3);
  recorder.Record(Seconds(2.0), RecordKind::kRackCommand, 5, 0, 25e3);

  std::vector<FlightRecord> parsed;
  std::string error;
  ASSERT_TRUE(
      ParseRecordsJsonl(RecordsToJsonl(recorder.Records()), &parsed, &error));
  EXPECT_EQ(parsed.size(), 2u);
  EXPECT_FALSE(FirstDivergence(recorder.Records(), parsed).has_value());

  EXPECT_FALSE(ParseRecordsJsonl("{\"seq\":0\nnot json\n", &parsed, &error));
  EXPECT_FALSE(error.empty());
}

TEST(FlightRecorderTest, FirstDivergenceFlagsPerturbedAndMissingRecords)
{
  FlightRecorder recorder(RecorderConfig{8});
  recorder.Record(Seconds(1.0), RecordKind::kDetection, 0, 2);
  recorder.Record(Seconds(2.0), RecordKind::kDecision, 0, -1, 3.0);
  recorder.Record(Seconds(3.0), RecordKind::kEnforced, 0, -1, 1.5);
  const std::vector<FlightRecord> expected = recorder.Records();

  EXPECT_FALSE(FirstDivergence(expected, expected).has_value());

  // Perturb one field: the diff names the sequence and the field.
  std::vector<FlightRecord> perturbed = expected;
  perturbed[1].value = 4.0;
  auto divergence = FirstDivergence(expected, perturbed);
  ASSERT_TRUE(divergence.has_value());
  EXPECT_EQ(divergence->sequence, 1u);
  EXPECT_EQ(divergence->field, "value");

  // Drop a record: reported as missing at that sequence.
  std::vector<FlightRecord> truncated = expected;
  truncated.erase(truncated.begin() + 1);
  divergence = FirstDivergence(expected, truncated);
  ASSERT_TRUE(divergence.has_value());
  EXPECT_EQ(divergence->sequence, 1u);
  EXPECT_EQ(divergence->field, "missing");

  // Extra history outside the expected window is legitimately ignored.
  std::vector<FlightRecord> extended = expected;
  FlightRecord extra;
  extra.sequence = 99;
  extra.t = 9.0;
  extended.push_back(extra);
  EXPECT_FALSE(FirstDivergence(expected, extended).has_value());
}

// ---------------------------------------------------------------------------
// Forensic bundles
// ---------------------------------------------------------------------------

TEST(ForensicsBundleTest, WriteLoadRoundTrip)
{
  FlightRecorder recorder(RecorderConfig{16});
  recorder.Record(Seconds(1.5), RecordKind::kFaultBegin, 2, 0, 0.0,
                  "ups_failover ups 2");
  recorder.Record(Seconds(2.0), RecordKind::kViolation, -1, -1, 0.0,
                  "[ups-trip] \"quoted\" detail");

  MetricsRegistry metrics;
  metrics.counter("test.counter").Increment(3.0);

  BundleSpec spec;
  spec.trigger = "invariant-violation";
  spec.scenario = "unit-test";
  spec.seed = 777;
  spec.sim_time_s = 2.0;
  spec.horizon_s = 120.0;
  spec.replayable = true;
  spec.records = recorder.Records();
  spec.metrics = &metrics;
  spec.fault_plan_text = "listing";
  spec.fault_plan_jsonl = "{\"at\":1.5}\n";
  spec.racks_csv = "rack,category\n0,1\n";
  spec.notes.push_back("t=2 [ups-trip] \"quoted\" detail");

  const std::string dir =
      UniqueBundleDir(::testing::TempDir(), "obs-test-bundle");
  std::string error;
  ASSERT_TRUE(WriteForensicBundle(dir, spec, &error)) << error;

  LoadedBundle bundle;
  ASSERT_TRUE(LoadForensicBundle(dir, &bundle, &error)) << error;
  EXPECT_EQ(bundle.manifest.format, kBundleFormat);
  EXPECT_EQ(bundle.manifest.trigger, "invariant-violation");
  EXPECT_EQ(bundle.manifest.scenario, "unit-test");
  EXPECT_EQ(bundle.manifest.seed, 777u);
  EXPECT_EQ(bundle.manifest.sim_time_s, 2.0);
  EXPECT_EQ(bundle.manifest.horizon_s, 120.0);
  EXPECT_TRUE(bundle.manifest.replayable);
  EXPECT_EQ(bundle.manifest.first_sequence, 0u);
  EXPECT_EQ(bundle.manifest.last_sequence, 1u);
  EXPECT_EQ(bundle.manifest.num_records, 2u);
  ASSERT_EQ(bundle.manifest.notes.size(), 1u);
  EXPECT_EQ(bundle.manifest.notes[0], "t=2 [ups-trip] \"quoted\" detail");
  EXPECT_EQ(bundle.fault_plan_jsonl, "{\"at\":1.5}\n");
  ASSERT_EQ(bundle.records.size(), 2u);
  EXPECT_FALSE(FirstDivergence(spec.records, bundle.records).has_value());
}

TEST(ForensicsBundleTest, LoadFailsWithoutManifest)
{
  LoadedBundle bundle;
  std::string error;
  EXPECT_FALSE(LoadForensicBundle(
      ::testing::TempDir() + "does-not-exist", &bundle, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(LogTest, SimClockStampsLines)
{
  SetLogLevel(LogLevel::kInfo);
  sim::EventQueue queue;
  queue.Schedule(Seconds(3.25), [] {});
  queue.RunUntil(Seconds(3.25));
  SetLogClock(&queue);
  FLEX_LOG(LogLevel::kInfo, "clock", "stamped");
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_NE(lines_[0].find("t=3.250"), std::string::npos);
  SetLogClock(nullptr);
  FLEX_LOG(LogLevel::kInfo, "clock", "bare");
  ASSERT_EQ(lines_.size(), 2u);
  EXPECT_EQ(lines_[1].find("t="), std::string::npos);
}

}  // namespace
}  // namespace flex::obs
