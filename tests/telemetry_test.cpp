/**
 * @file
 * Unit tests for the telemetry substrate: meters, consensus, pipeline.
 */
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/event_queue.hpp"
#include "telemetry/meter.hpp"
#include "telemetry/pipeline.hpp"

namespace flex::telemetry {
namespace {

TEST(PhysicalMeterTest, ReadsTrackTruthWithinNoise)
{
  MeterConfig config;
  config.noise_fraction = 0.01;
  config.refresh_interval = Seconds(0.0);
  PhysicalMeter meter(config, Rng(1));
  for (int i = 0; i < 100; ++i) {
    const auto reading = meter.Sample(Seconds(i), KiloWatts(100.0));
    ASSERT_TRUE(reading.has_value());
    EXPECT_NEAR(reading->kilowatts(), 100.0, 5.0);
  }
}

TEST(PhysicalMeterTest, StuckReadingsRepeatWithinRefreshInterval)
{
  MeterConfig config;
  config.refresh_interval = Seconds(5.0);  // the paper's legacy UPS meters
  PhysicalMeter meter(config, Rng(2));
  const auto first = meter.Sample(Seconds(0.0), KiloWatts(100.0));
  // Truth changes, but polls inside the window return the cached value.
  const auto second = meter.Sample(Seconds(2.0), KiloWatts(500.0));
  const auto third = meter.Sample(Seconds(4.9), KiloWatts(900.0));
  ASSERT_TRUE(first && second && third);
  EXPECT_DOUBLE_EQ(first->value(), second->value());
  EXPECT_DOUBLE_EQ(first->value(), third->value());
  // After the window the meter refreshes.
  const auto fourth = meter.Sample(Seconds(5.1), KiloWatts(900.0));
  ASSERT_TRUE(fourth);
  EXPECT_NEAR(fourth->kilowatts(), 900.0, 50.0);
}

TEST(PhysicalMeterTest, FailedMeterReturnsNothing)
{
  PhysicalMeter meter(MeterConfig{}, Rng(3));
  meter.SetFailed(true);
  EXPECT_FALSE(meter.Sample(Seconds(0.0), KiloWatts(10.0)).has_value());
  meter.SetFailed(false);
  EXPECT_TRUE(meter.Sample(Seconds(1.0), KiloWatts(10.0)).has_value());
}

TEST(PhysicalMeterTest, RejectsBadConfig)
{
  MeterConfig bad;
  bad.noise_fraction = -0.1;
  EXPECT_THROW(PhysicalMeter(bad, Rng(4)), ConfigError);
  bad = MeterConfig{};
  bad.misread_probability = 1.5;
  EXPECT_THROW(PhysicalMeter(bad, Rng(4)), ConfigError);
}

TEST(LogicalMeterTest, MedianMasksOneMisreadingMeter)
{
  MeterConfig config;
  config.noise_fraction = 0.001;
  config.refresh_interval = Seconds(0.0);
  config.misread_probability = 0.0;
  Rng rng(5);
  LogicalMeter logical(3, config, rng);
  // Make one meter grossly misread by failing it and checking consensus
  // still works, then observe median behaviour with all three healthy.
  const auto healthy = logical.Read(Seconds(0.0), KiloWatts(100.0));
  ASSERT_TRUE(healthy);
  EXPECT_NEAR(healthy->kilowatts(), 100.0, 2.0);
}

TEST(LogicalMeterTest, MisreadingsAreFilteredByMedian)
{
  // One of three meters misreads on every refresh: the median must stay
  // near truth anyway.
  MeterConfig config;
  config.noise_fraction = 0.001;
  config.refresh_interval = Seconds(0.0);
  Rng rng(6);
  LogicalMeter logical(3, config, rng);
  logical.meter(0).SetFailed(false);
  // Rebuild meter 0 as a chronically misreading meter is not directly
  // supported; instead verify the end-to-end property statistically with
  // a per-read misread probability on all meters. P(two simultaneous
  // misreads) = 3 * 0.1^2 ~ 3%, so the vast majority of reads are good.
  MeterConfig flaky = config;
  flaky.misread_probability = 0.1;
  Rng rng2(7);
  LogicalMeter flaky_logical(3, flaky, rng2);
  int good = 0;
  const int trials = 500;
  for (int i = 0; i < trials; ++i) {
    const auto reading =
        flaky_logical.Read(Seconds(static_cast<double>(i)), KiloWatts(100.0));
    ASSERT_TRUE(reading);
    if (std::abs(reading->kilowatts() - 100.0) < 10.0)
      ++good;
  }
  EXPECT_GT(good, trials * 9 / 10);
}

TEST(LogicalMeterTest, ToleratesOneFailedMeter)
{
  Rng rng(8);
  LogicalMeter logical(3, MeterConfig{}, rng);
  logical.meter(1).SetFailed(true);
  const auto reading = logical.Read(Seconds(0.0), KiloWatts(100.0));
  ASSERT_TRUE(reading);
  EXPECT_NEAR(reading->kilowatts(), 100.0, 5.0);
}

TEST(LogicalMeterTest, LosesQuorumWithTwoFailedMeters)
{
  Rng rng(9);
  LogicalMeter logical(3, MeterConfig{}, rng);
  logical.meter(0).SetFailed(true);
  logical.meter(2).SetFailed(true);
  EXPECT_FALSE(logical.Read(Seconds(0.0), KiloWatts(100.0)).has_value());
}

class PipelineTest : public ::testing::Test, public PowerSource {
 protected:
  PipelineTest()
  {
    config_.meter.refresh_interval = Seconds(0.5);
  }

  Watts
  CurrentPower(DeviceId device) const override
  {
    return device.kind == DeviceKind::kUps ? KiloWatts(1000.0)
                                           : KiloWatts(10.0 + device.index);
  }

  sim::EventQueue queue_;
  PipelineConfig config_;
};

TEST_F(PipelineTest, DeliversReadingsToSubscribers)
{
  TelemetryPipeline pipeline(queue_, *this, 4, 8, config_, 1);
  int ups_readings = 0;
  int rack_readings = 0;
  pipeline.Subscribe([&](const DeviceReading& r) {
    if (r.device.kind == DeviceKind::kUps)
      ++ups_readings;
    else
      ++rack_readings;
    EXPECT_GE(r.DataLatency().value(), 0.0);
  });
  pipeline.Start();
  queue_.RunUntil(Seconds(10.0));
  EXPECT_GT(ups_readings, 0);
  EXPECT_GT(rack_readings, 0);
  EXPECT_GT(pipeline.delivered_count(), 0u);
}

TEST_F(PipelineTest, DataLatencyIsUnderOneSecond)
{
  // The paper's observed pipeline latency is < 1 s.
  TelemetryPipeline pipeline(queue_, *this, 4, 16, config_, 2);
  pipeline.Subscribe([](const DeviceReading&) {});
  pipeline.Start();
  queue_.RunUntil(Seconds(30.0));
  ASSERT_GT(pipeline.latency_stats().count(), 0u);
  EXPECT_LT(pipeline.latency_stats().max(), 1.0);
}

TEST_F(PipelineTest, SurvivesSinglePollerFailure)
{
  TelemetryPipeline pipeline(queue_, *this, 2, 2, config_, 3);
  std::size_t readings = 0;
  pipeline.Subscribe([&](const DeviceReading&) { ++readings; });
  pipeline.Start();
  pipeline.SetPollerFailed(0, true);
  queue_.RunUntil(Seconds(10.0));
  EXPECT_GT(readings, 0u);
  // Every reading came through poller 1.
}

TEST_F(PipelineTest, SurvivesSingleBusFailure)
{
  TelemetryPipeline pipeline(queue_, *this, 2, 2, config_, 4);
  std::size_t readings = 0;
  pipeline.Subscribe([&](const DeviceReading& r) {
    ++readings;
    EXPECT_EQ(r.bus, 1);  // bus 0 is down
  });
  pipeline.SetBusFailed(0, true);
  pipeline.Start();
  queue_.RunUntil(Seconds(10.0));
  EXPECT_GT(readings, 0u);
}

TEST_F(PipelineTest, AllPollersDownStopsDelivery)
{
  TelemetryPipeline pipeline(queue_, *this, 2, 2, config_, 5);
  std::size_t readings = 0;
  pipeline.Subscribe([&](const DeviceReading&) { ++readings; });
  pipeline.SetPollerFailed(0, true);
  pipeline.SetPollerFailed(1, true);
  pipeline.Start();
  queue_.RunUntil(Seconds(10.0));
  EXPECT_EQ(readings, 0u);
}

TEST_F(PipelineTest, MeterFailureDropsOnlyThatDevice)
{
  TelemetryPipeline pipeline(queue_, *this, 2, 2, config_, 6);
  std::size_t ups0 = 0;
  std::size_t ups1 = 0;
  pipeline.Subscribe([&](const DeviceReading& r) {
    if (r.device.kind != DeviceKind::kUps)
      return;
    if (r.device.index == 0)
      ++ups0;
    else
      ++ups1;
  });
  // Take out two of UPS 0's three meters: quorum lost for UPS 0 only.
  pipeline.SetMeterFailed(DeviceId{DeviceKind::kUps, 0}, 0, true);
  pipeline.SetMeterFailed(DeviceId{DeviceKind::kUps, 0}, 1, true);
  pipeline.Start();
  queue_.RunUntil(Seconds(10.0));
  EXPECT_EQ(ups0, 0u);
  EXPECT_GT(ups1, 0u);
}

TEST_F(PipelineTest, RedundantDeliveryProducesDuplicates)
{
  // 2 pollers x 2 buses = up to 4 copies of each device sample window.
  TelemetryPipeline pipeline(queue_, *this, 1, 0, config_, 7);
  std::size_t readings = 0;
  pipeline.Subscribe([&](const DeviceReading&) { ++readings; });
  pipeline.Start();
  queue_.RunUntil(Seconds(config_.ups_poll_period.value() * 4));
  // More readings than polling rounds of a single poller/bus pair.
  EXPECT_GT(readings, 4u);
}

TEST_F(PipelineTest, StopHaltsPolling)
{
  TelemetryPipeline pipeline(queue_, *this, 2, 2, config_, 8);
  pipeline.Subscribe([](const DeviceReading&) {});
  pipeline.Start();
  queue_.RunUntil(Seconds(5.0));
  const std::size_t at_stop = pipeline.delivered_count();
  EXPECT_GT(at_stop, 0u);
  pipeline.Stop();
  queue_.RunUntil(Seconds(30.0));
  // In-flight deliveries may land, but no new polls happen.
  EXPECT_LE(pipeline.delivered_count(), at_stop + 64);
}

TEST_F(PipelineTest, RejectsBadConfig)
{
  PipelineConfig bad = config_;
  bad.num_pollers = 0;
  EXPECT_THROW(TelemetryPipeline(queue_, *this, 1, 1, bad, 9), ConfigError);
  bad = config_;
  bad.ups_poll_period = Seconds(0.0);
  EXPECT_THROW(TelemetryPipeline(queue_, *this, 1, 1, bad, 9), ConfigError);
}

TEST_F(PipelineTest, RackPollGroupsMustCoverEveryRackExactlyOnce)
{
  TelemetryPipeline pipeline(queue_, *this, 1, 6, config_, 10);
  // Out-of-range rack id.
  EXPECT_THROW(pipeline.SetRackPollGroups({{0, 1, 2}, {3, 4, 6}}),
               ConfigError);
  // Duplicate rack.
  EXPECT_THROW(pipeline.SetRackPollGroups({{0, 1, 2}, {2, 3, 4, 5}}),
               ConfigError);
  // Missing rack.
  EXPECT_THROW(pipeline.SetRackPollGroups({{0, 1, 2}, {3, 4}}), ConfigError);
  // Exact cover in any order, with empty groups dropped, is fine.
  EXPECT_NO_THROW(pipeline.SetRackPollGroups({{5, 0}, {}, {2, 4}, {1, 3}}));
  EXPECT_NO_THROW(pipeline.SetRackPollOrder({3, 1, 4, 0, 5, 2}));
}

TEST_F(PipelineTest, GroupedPollingDeliversIdenticalReadings)
{
  // Splitting a rack tick into per-group batches must not change the
  // delivered readings in any way — same values, same timestamps, same
  // order — because all of a tick's batches share the per-bus delivery
  // delays. Only the event-queue granularity differs.
  struct Delivered {
    double now;
    int index;
    double value;
    double sampled_at;
    int poller;
    int bus;
  };
  const auto run = [this](const std::vector<std::vector<int>>* groups) {
    sim::EventQueue queue;
    TelemetryPipeline pipeline(queue, *this, 2, 8, config_, 11);
    if (groups != nullptr)
      pipeline.SetRackPollGroups(*groups);
    std::vector<Delivered> log;
    pipeline.Subscribe([&](const DeviceReading& r) {
      if (r.device.kind != DeviceKind::kRack)
        return;
      log.push_back({queue.Now().value(), r.device.index, r.value.value(),
                     r.sampled_at.value(), r.poller, r.bus});
    });
    pipeline.Start();
    queue.RunUntil(Seconds(20.0));
    return log;
  };

  const std::vector<Delivered> single = run(nullptr);
  const std::vector<std::vector<int>> groups = {{0, 1, 2}, {3}, {4, 5, 6, 7}};
  const std::vector<Delivered> grouped = run(&groups);

  ASSERT_GT(single.size(), 0u);
  ASSERT_EQ(single.size(), grouped.size());
  for (std::size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(single[i].now, grouped[i].now) << "reading " << i;
    EXPECT_EQ(single[i].index, grouped[i].index) << "reading " << i;
    EXPECT_EQ(single[i].value, grouped[i].value) << "reading " << i;
    EXPECT_EQ(single[i].sampled_at, grouped[i].sampled_at) << "reading " << i;
    EXPECT_EQ(single[i].poller, grouped[i].poller) << "reading " << i;
    EXPECT_EQ(single[i].bus, grouped[i].bus) << "reading " << i;
  }
}

TEST_F(PipelineTest, SteadyStatePollingReusesReadingBatches)
{
  TelemetryPipeline pipeline(queue_, *this, 4, 32, config_, 12);
  pipeline.SetRackPollGroups({{0, 1, 2, 3, 4, 5, 6, 7},
                              {8, 9, 10, 11, 12, 13, 14, 15},
                              {16, 17, 18, 19, 20, 21, 22, 23},
                              {24, 25, 26, 27, 28, 29, 30, 31}});
  pipeline.Subscribe([](const DeviceReading&) {});
  pipeline.Start();
  // Warm up the batch arena, then verify the free list recycles batches
  // for the rest of the run: the arena must track the in-flight
  // high-water mark (a rare phase alignment can add one or two), not
  // grow with the number of ticks.
  queue_.RunUntil(Seconds(30.0));
  const std::size_t warm = pipeline.batch_arena_size();
  ASSERT_GT(warm, 0u);
  const std::size_t delivered_warm = pipeline.delivered_count();
  queue_.RunUntil(Seconds(600.0));
  EXPECT_LE(pipeline.batch_arena_size(), warm + 2);
  // ~1900 further batch publications got recycled through the arena.
  EXPECT_GT(pipeline.delivered_count(), delivered_warm * 10);
}

}  // namespace
}  // namespace flex::telemetry
