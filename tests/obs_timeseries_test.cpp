/**
 * @file
 * Tests for the deterministic multi-resolution time-series store:
 * ring eviction, tier bucketing, staleness/delta queries, fingerprints,
 * and a 200-seed property test proving the tiered aggregates exactly
 * match a brute-force recomputation — including across ring-eviction
 * boundaries, where off-by-ones would silently corrupt history.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "obs/timeseries.hpp"

namespace flex::obs {
namespace {

MetricRow
GaugeRow(const std::string& name, double value)
{
  MetricRow row;
  row.name = name;
  row.kind = MetricKind::kGauge;
  row.value = value;
  return row;
}

TEST(TimeSeriesStoreTest, RetainsRawPointsOldestFirst)
{
  TimeSeriesStore store;
  store.Append("m", MetricKind::kGauge, 1.0, 10.0);
  store.Append("m", MetricKind::kGauge, 2.0, 20.0);
  store.Append("m", MetricKind::kGauge, 3.0, 30.0);

  const std::vector<RawPoint> raw = store.QueryRaw("m", 0.0);
  ASSERT_EQ(raw.size(), 3u);
  EXPECT_EQ(raw[0].t, 1.0);
  EXPECT_EQ(raw[0].value, 10.0);
  EXPECT_EQ(raw[2].t, 3.0);
  EXPECT_EQ(raw[2].value, 30.0);
  EXPECT_EQ(store.series_count(), 1u);
  EXPECT_EQ(store.total_samples(), 3u);
}

TEST(TimeSeriesStoreTest, RawRingEvictsOldest)
{
  TimeSeriesConfig config;
  config.raw_capacity = 4;
  TimeSeriesStore store(config);
  for (int i = 0; i < 10; ++i)
    store.Append("m", MetricKind::kGauge, i, 100.0 + i);

  const std::vector<RawPoint> raw = store.QueryRaw("m", 0.0);
  ASSERT_EQ(raw.size(), 4u);
  EXPECT_EQ(raw.front().t, 6.0);
  EXPECT_EQ(raw.back().t, 9.0);
  EXPECT_EQ(raw.back().value, 109.0);
}

TEST(TimeSeriesStoreTest, QueryRawAppliesTrailingWindow)
{
  TimeSeriesStore store;
  for (int i = 0; i <= 10; ++i)
    store.Append("m", MetricKind::kGauge, i * 10.0, i);

  // Window relative to the latest point (t = 100): keep t >= 70.
  const std::vector<RawPoint> raw = store.QueryRaw("m", 30.0);
  ASSERT_EQ(raw.size(), 4u);
  EXPECT_EQ(raw.front().t, 70.0);
  EXPECT_EQ(raw.back().t, 100.0);
}

TEST(TimeSeriesStoreTest, SampleRecordsHistogramsAsP99)
{
  MetricsSnapshot snapshot;
  snapshot.sim_time_seconds = 5.0;
  MetricRow histogram;
  histogram.name = "reaction.end_to_end_s";
  histogram.kind = MetricKind::kHistogram;
  histogram.value = 1.0;  // would be wrong to store
  histogram.p99 = 7.5;
  snapshot.rows.push_back(histogram);

  TimeSeriesStore store;
  store.Sample(snapshot);
  double value = 0.0;
  ASSERT_TRUE(store.LatestValue("reaction.end_to_end_s", &value));
  EXPECT_EQ(value, 7.5);
}

TEST(TimeSeriesStoreTest, SampleSkipsNonAdvancingSnapshots)
{
  MetricsSnapshot snapshot;
  snapshot.sim_time_seconds = 10.0;
  snapshot.rows.push_back(GaugeRow("m", 1.0));

  TimeSeriesStore store;
  store.Sample(snapshot);
  store.Sample(snapshot);  // shutdown re-publish: same stamp
  snapshot.sim_time_seconds = 5.0;
  store.Sample(snapshot);  // older stamp
  EXPECT_EQ(store.total_samples(), 1u);
  EXPECT_EQ(store.QueryRaw("m", 0.0).size(), 1u);
  EXPECT_EQ(store.last_sample_t(), 10.0);
}

TEST(TimeSeriesStoreTest, OutOfOrderAppendsAreDroppedAndCounted)
{
  TimeSeriesStore store;
  store.Append("m", MetricKind::kGauge, 10.0, 1.0);
  store.Append("m", MetricKind::kGauge, 5.0, 2.0);   // dropped
  store.Append("m", MetricKind::kGauge, 10.0, 3.0);  // equal time: kept

  EXPECT_EQ(store.out_of_order_drops(), 1u);
  const std::vector<RawPoint> raw = store.QueryRaw("m", 0.0);
  ASSERT_EQ(raw.size(), 2u);
  EXPECT_EQ(raw.back().value, 3.0);
}

TEST(TimeSeriesStoreTest, LastChangeTimeTracksValueChanges)
{
  TimeSeriesStore store;
  EXPECT_LT(store.LastChangeTime("m"), 0.0);  // unknown: "fresh"

  store.Append("m", MetricKind::kCounter, 1.0, 42.0);
  EXPECT_EQ(store.LastChangeTime("m"), 1.0);
  store.Append("m", MetricKind::kCounter, 2.0, 42.0);
  store.Append("m", MetricKind::kCounter, 3.0, 42.0);
  EXPECT_EQ(store.LastChangeTime("m"), 1.0);  // flat: no progress
  store.Append("m", MetricKind::kCounter, 4.0, 43.0);
  EXPECT_EQ(store.LastChangeTime("m"), 4.0);
}

TEST(TimeSeriesStoreTest, DeltaOverComputesTrailingDelta)
{
  TimeSeriesStore store;
  store.Append("m", MetricKind::kCounter, 0.0, 0.0);
  store.Append("m", MetricKind::kCounter, 10.0, 5.0);
  store.Append("m", MetricKind::kCounter, 20.0, 9.0);

  double delta = 0.0;
  ASSERT_TRUE(store.DeltaOver("m", 10.0, &delta));
  EXPECT_EQ(delta, 4.0);  // 9 - value at t <= 10
  ASSERT_TRUE(store.DeltaOver("m", 1000.0, &delta));
  EXPECT_EQ(delta, 9.0);  // clamped to the oldest retained point
  EXPECT_FALSE(store.DeltaOver("unknown", 10.0, &delta));
}

TEST(TimeSeriesStoreTest, QueryAggSelectsTierByResolution)
{
  TimeSeriesConfig config;
  config.tiers = {{10.0, 8}, {60.0, 8}};
  TimeSeriesStore store(config);
  for (int i = 0; i < 20; ++i)
    store.Append("m", MetricKind::kGauge, i * 5.0, i);

  EXPECT_EQ(store.QueryAgg("m", 0.0, 0.0).resolution_s, 10.0);
  EXPECT_EQ(store.QueryAgg("m", 10.0, 0.0).resolution_s, 10.0);
  EXPECT_EQ(store.QueryAgg("m", 30.0, 0.0).resolution_s, 60.0);
  EXPECT_EQ(store.QueryAgg("m", 1e6, 0.0).resolution_s, 60.0);  // coarsest
}

TEST(TimeSeriesStoreTest, AggBucketsAggregateAndIncludeOpenBucket)
{
  TimeSeriesConfig config;
  config.tiers = {{10.0, 8}};
  TimeSeriesStore store(config);
  store.Append("m", MetricKind::kGauge, 1.0, 5.0);
  store.Append("m", MetricKind::kGauge, 2.0, 1.0);
  store.Append("m", MetricKind::kGauge, 3.0, 9.0);
  store.Append("m", MetricKind::kGauge, 12.0, 4.0);  // finalizes [0, 10)

  const AggQueryResult result = store.QueryAgg("m", 10.0, 0.0);
  ASSERT_EQ(result.points.size(), 2u);
  const AggPoint& closed = result.points[0];
  EXPECT_EQ(closed.t, 0.0);
  EXPECT_EQ(closed.min, 1.0);
  EXPECT_EQ(closed.max, 9.0);
  EXPECT_EQ(closed.mean, 5.0);
  EXPECT_EQ(closed.last, 9.0);
  EXPECT_EQ(closed.count, 3u);
  const AggPoint& open = result.points[1];
  EXPECT_EQ(open.t, 10.0);
  EXPECT_EQ(open.count, 1u);
  EXPECT_EQ(open.last, 4.0);
}

TEST(TimeSeriesStoreTest, MaxSeriesBoundDropsAndCounts)
{
  TimeSeriesConfig config;
  config.max_series = 2;
  TimeSeriesStore store(config);
  store.Append("a", MetricKind::kGauge, 1.0, 1.0);
  store.Append("b", MetricKind::kGauge, 1.0, 2.0);
  store.Append("c", MetricKind::kGauge, 1.0, 3.0);
  store.Append("c", MetricKind::kGauge, 2.0, 4.0);

  EXPECT_EQ(store.series_count(), 2u);
  EXPECT_EQ(store.dropped_series(), 2u);
  double value = 0.0;
  EXPECT_FALSE(store.LatestValue("c", &value));
}

TEST(TimeSeriesStoreTest, FingerprintIsReproducibleAndSensitive)
{
  const auto fill = [](TimeSeriesStore& store, double tweak) {
    for (int i = 0; i < 50; ++i) {
      store.Append("a", MetricKind::kGauge, i, std::sin(i * 0.3));
      store.Append("b", MetricKind::kCounter, i, i + tweak);
    }
  };
  TimeSeriesStore first;
  TimeSeriesStore second;
  TimeSeriesStore different;
  fill(first, 0.0);
  fill(second, 0.0);
  fill(different, 1e-9);
  EXPECT_EQ(first.Fingerprint(), second.Fingerprint());
  EXPECT_NE(first.Fingerprint(), different.Fingerprint());
}

TEST(TimeSeriesStoreTest, SnapshotAndJsonlCoverEverySeries)
{
  TimeSeriesStore store;
  store.Append("alpha", MetricKind::kGauge, 1.0, 2.0);
  store.Append("beta", MetricKind::kCounter, 1.0, 3.0);

  const TimeSeriesSnapshot snapshot = store.Snapshot();
  ASSERT_EQ(snapshot.series.size(), 2u);
  EXPECT_EQ(snapshot.series[0].name, "alpha");  // sorted
  ASSERT_NE(snapshot.Find("beta"), nullptr);
  EXPECT_EQ(snapshot.Find("beta")->kind, MetricKind::kCounter);
  EXPECT_EQ(snapshot.Find("missing"), nullptr);

  const std::string jsonl = store.ToJsonl();
  EXPECT_NE(jsonl.find("\"series\":\"alpha\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"series\":\"beta\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"counter\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Property test: tiered aggregates == brute-force recomputation.
// ---------------------------------------------------------------------------

/**
 * Recomputes one tier from the full append history. Groups consecutive
 * points by bucket start; every group except the last is finalized, the
 * last is the open bucket. Accumulates the sum in append order so the
 * mean is bit-identical to the store's (same FP operations, same order).
 */
std::vector<AggPoint>
BruteForceTier(const std::vector<RawPoint>& appends, double resolution_s,
               std::size_t capacity)
{
  std::vector<AggPoint> groups;
  std::vector<double> sums;
  for (const RawPoint& p : appends) {
    const double start = std::floor(p.t / resolution_s) * resolution_s;
    if (groups.empty() || start > groups.back().t) {
      AggPoint g;
      g.t = start;
      g.min = g.max = g.last = p.value;
      g.count = 0;
      groups.push_back(g);
      sums.push_back(0.0);
    }
    AggPoint& g = groups.back();
    g.min = std::min(g.min, p.value);
    g.max = std::max(g.max, p.value);
    g.last = p.value;
    ++g.count;
    sums.back() += p.value;
  }
  for (std::size_t i = 0; i < groups.size(); ++i)
    groups[i].mean = sums[i] / static_cast<double>(groups[i].count);

  // Ring eviction applies to *finalized* buckets only; the open bucket
  // (the last group) always survives and is appended after them.
  if (groups.empty())
    return groups;
  const AggPoint open = groups.back();
  groups.pop_back();
  if (groups.size() > capacity)
    groups.erase(groups.begin(),
                 groups.begin() + static_cast<std::ptrdiff_t>(
                                      groups.size() - capacity));
  groups.push_back(open);
  return groups;
}

TEST(TimeSeriesPropertyTest, TieredAggregatesMatchBruteForceOver200Seeds)
{
  // Small rings so every seed crosses eviction boundaries many times.
  TimeSeriesConfig config;
  config.raw_capacity = 16;
  config.tiers = {{5.0, 4}, {20.0, 3}};

  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> num_appends(30, 300);
    std::uniform_real_distribution<double> step(0.0, 7.0);
    std::uniform_real_distribution<double> level(-100.0, 100.0);

    TimeSeriesStore store(config);
    std::vector<RawPoint> appends;
    double t = 0.0;
    const int n = num_appends(rng);
    for (int i = 0; i < n; ++i) {
      // step can be zero: equal-time appends are part of the contract.
      t += step(rng);
      const double value = level(rng);
      store.Append("m", MetricKind::kGauge, t, value);
      appends.push_back(RawPoint{t, value});
    }

    // Raw ring: the newest raw_capacity points, oldest first.
    const std::vector<RawPoint> raw = store.QueryRaw("m", 0.0);
    const std::size_t expected_raw =
        std::min<std::size_t>(appends.size(), config.raw_capacity);
    ASSERT_EQ(raw.size(), expected_raw) << "seed " << seed;
    for (std::size_t i = 0; i < expected_raw; ++i) {
      const RawPoint& expected =
          appends[appends.size() - expected_raw + i];
      ASSERT_EQ(raw[i].t, expected.t) << "seed " << seed << " point " << i;
      ASSERT_EQ(raw[i].value, expected.value)
          << "seed " << seed << " point " << i;
    }

    // Every tier: finalized rings + open bucket vs the brute force.
    for (const TierConfig& tier : config.tiers) {
      const std::vector<AggPoint> expected =
          BruteForceTier(appends, tier.resolution_s, tier.capacity);
      const AggQueryResult actual =
          store.QueryAgg("m", tier.resolution_s, 0.0);
      ASSERT_EQ(actual.resolution_s, tier.resolution_s) << "seed " << seed;
      ASSERT_EQ(actual.points.size(), expected.size())
          << "seed " << seed << " tier " << tier.resolution_s;
      for (std::size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(actual.points[i].t, expected[i].t)
            << "seed " << seed << " tier " << tier.resolution_s
            << " bucket " << i;
        ASSERT_EQ(actual.points[i].min, expected[i].min)
            << "seed " << seed << " bucket " << i;
        ASSERT_EQ(actual.points[i].max, expected[i].max)
            << "seed " << seed << " bucket " << i;
        ASSERT_EQ(actual.points[i].mean, expected[i].mean)
            << "seed " << seed << " bucket " << i;
        ASSERT_EQ(actual.points[i].last, expected[i].last)
            << "seed " << seed << " bucket " << i;
        ASSERT_EQ(actual.points[i].count, expected[i].count)
            << "seed " << seed << " bucket " << i;
      }
    }
  }
}

}  // namespace
}  // namespace flex::obs
