/**
 * @file
 * Unit tests for the LP simplex and branch-and-bound MILP solvers.
 */
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "solver/branch_and_bound.hpp"
#include "solver/model.hpp"
#include "solver/presolve.hpp"
#include "solver/simplex.hpp"

namespace flex::solver {
namespace {

TEST(SimplexTest, SolvesTrivialSingleVariable)
{
  Model m;
  const VarIndex x = m.AddContinuous("x", 0.0, 10.0, 1.0);
  const LpResult r = SimplexSolver().Solve(m);
  ASSERT_TRUE(r.IsOptimal());
  EXPECT_NEAR(r.objective, 10.0, 1e-6);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(x)], 10.0, 1e-6);
}

TEST(SimplexTest, SolvesTwoVariableLp)
{
  // maximize 3x + 2y s.t. x + y <= 4, x + 3y <= 6; optimum (4, 0) -> 12.
  Model m;
  const VarIndex x = m.AddContinuous("x", 0.0, 1e9, 3.0);
  const VarIndex y = m.AddContinuous("y", 0.0, 1e9, 2.0);
  m.AddConstraint("c1", {{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 4.0);
  m.AddConstraint("c2", {{x, 1.0}, {y, 3.0}}, Relation::kLessEqual, 6.0);
  const LpResult r = SimplexSolver().Solve(m);
  ASSERT_TRUE(r.IsOptimal());
  EXPECT_NEAR(r.objective, 12.0, 1e-6);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(x)], 4.0, 1e-6);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(y)], 0.0, 1e-6);
}

TEST(SimplexTest, HandlesGreaterEqualAndEquality)
{
  // minimize 2x + 3y s.t. x + y = 10, x >= 4; optimum (10, 0)? x>=4, y>=0:
  // x=10, y=0 -> 20.
  Model m;
  m.SetSense(Sense::kMinimize);
  const VarIndex x = m.AddContinuous("x", 0.0, 1e9, 2.0);
  const VarIndex y = m.AddContinuous("y", 0.0, 1e9, 3.0);
  m.AddConstraint("sum", {{x, 1.0}, {y, 1.0}}, Relation::kEqual, 10.0);
  m.AddConstraint("min_x", {{x, 1.0}}, Relation::kGreaterEqual, 4.0);
  const LpResult r = SimplexSolver().Solve(m);
  ASSERT_TRUE(r.IsOptimal());
  EXPECT_NEAR(r.objective, 20.0, 1e-6);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(x)], 10.0, 1e-6);
}

TEST(SimplexTest, DetectsInfeasibility)
{
  Model m;
  const VarIndex x = m.AddContinuous("x", 0.0, 5.0, 1.0);
  m.AddConstraint("impossible", {{x, 1.0}}, Relation::kGreaterEqual, 6.0);
  const LpResult r = SimplexSolver().Solve(m);
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnboundedness)
{
  Model m;
  const VarIndex x = m.AddContinuous(
      "x", 0.0, std::numeric_limits<double>::infinity(), 1.0);
  m.AddConstraint("weak", {{x, -1.0}}, Relation::kLessEqual, 1.0);
  const LpResult r = SimplexSolver().Solve(m);
  EXPECT_EQ(r.status, LpStatus::kUnbounded);
}

TEST(SimplexTest, RespectsNonZeroLowerBounds)
{
  // minimize x + y with x in [2, 8], y in [3, 9] -> 5 at (2, 3).
  Model m;
  m.SetSense(Sense::kMinimize);
  const VarIndex x = m.AddContinuous("x", 2.0, 8.0, 1.0);
  const VarIndex y = m.AddContinuous("y", 3.0, 9.0, 1.0);
  const LpResult r = SimplexSolver().Solve(m);
  ASSERT_TRUE(r.IsOptimal());
  EXPECT_NEAR(r.objective, 5.0, 1e-6);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(x)], 2.0, 1e-6);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(y)], 3.0, 1e-6);
}

TEST(SimplexTest, SubstitutesFixedVariables)
{
  // x fixed at 3 via equal bounds; maximize x + y, y <= 4.
  Model m;
  m.AddContinuous("x", 3.0, 3.0, 1.0);
  const VarIndex y = m.AddContinuous("y", 0.0, 4.0, 1.0);
  const LpResult r = SimplexSolver().Solve(m);
  ASSERT_TRUE(r.IsOptimal());
  EXPECT_NEAR(r.objective, 7.0, 1e-6);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(y)], 4.0, 1e-6);
}

TEST(SimplexTest, BoundOverridesTightenTheFeasibleRegion)
{
  Model m;
  const VarIndex x = m.AddContinuous("x", 0.0, 10.0, 1.0);
  BoundOverrides overrides(1);
  overrides[static_cast<std::size_t>(x)] = {0.0, 4.0};
  const LpResult r = SimplexSolver().SolveWithBounds(m, overrides);
  ASSERT_TRUE(r.IsOptimal());
  EXPECT_NEAR(r.objective, 4.0, 1e-6);
}

TEST(SimplexTest, ConflictingOverridesAreInfeasible)
{
  Model m;
  m.AddContinuous("x", 2.0, 10.0, 1.0);
  BoundOverrides overrides(1);
  overrides[0] = {0.0, 1.0};  // intersects model bounds to empty
  const LpResult r = SimplexSolver().SolveWithBounds(m, overrides);
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
}

TEST(SimplexTest, HandlesDegenerateProblemsWithoutCycling)
{
  // Classic Beale cycling example (will cycle under naive Dantzig rule
  // without anti-cycling); just assert we terminate at the optimum 0.05.
  Model m;
  const VarIndex x1 = m.AddContinuous("x1", 0.0, 1e9, 0.75);
  const VarIndex x2 = m.AddContinuous("x2", 0.0, 1e9, -150.0);
  const VarIndex x3 = m.AddContinuous("x3", 0.0, 1e9, 0.02);
  const VarIndex x4 = m.AddContinuous("x4", 0.0, 1e9, -6.0);
  m.AddConstraint("r1",
                  {{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
                  Relation::kLessEqual, 0.0);
  m.AddConstraint("r2",
                  {{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
                  Relation::kLessEqual, 0.0);
  m.AddConstraint("r3", {{x3, 1.0}}, Relation::kLessEqual, 1.0);
  const LpResult r = SimplexSolver().Solve(m);
  ASSERT_TRUE(r.IsOptimal());
  EXPECT_NEAR(r.objective, 0.05, 1e-6);
}

TEST(BranchAndBoundTest, SolvesSmallKnapsack)
{
  // values {10, 13, 7}, weights {4, 6, 3}, capacity 9 -> best {10, 7} = 17?
  // {13, 7} weight 9 value 20. Optimal 20.
  Model m;
  const VarIndex a = m.AddBinary("a", 10.0);
  const VarIndex b = m.AddBinary("b", 13.0);
  const VarIndex c = m.AddBinary("c", 7.0);
  m.AddConstraint("cap", {{a, 4.0}, {b, 6.0}, {c, 3.0}},
                  Relation::kLessEqual, 9.0);
  const MipResult r = BranchAndBoundSolver().Solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 20.0, 1e-6);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(a)], 0.0, 1e-6);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(b)], 1.0, 1e-6);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(c)], 1.0, 1e-6);
}

TEST(BranchAndBoundTest, SolvesAssignmentProblem)
{
  // 3 tasks x 3 agents, costs; minimize. Known optimum 5 (1+1+3? compute):
  // cost matrix {{4,1,3},{2,0,5},{3,2,2}} -> assignment t0->a1(1),
  // t1->a0(2), t2->a2(2) = 5.
  const double cost[3][3] = {{4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  Model m;
  m.SetSense(Sense::kMinimize);
  VarIndex x[3][3];
  for (int t = 0; t < 3; ++t) {
    for (int a = 0; a < 3; ++a)
      x[t][a] = m.AddBinary("x", cost[t][a]);
  }
  for (int t = 0; t < 3; ++t) {
    m.AddConstraint("task",
                    {{x[t][0], 1.0}, {x[t][1], 1.0}, {x[t][2], 1.0}},
                    Relation::kEqual, 1.0);
  }
  for (int a = 0; a < 3; ++a) {
    m.AddConstraint("agent",
                    {{x[0][a], 1.0}, {x[1][a], 1.0}, {x[2][a], 1.0}},
                    Relation::kEqual, 1.0);
  }
  const MipResult r = BranchAndBoundSolver().Solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 5.0, 1e-6);
}

TEST(BranchAndBoundTest, ReportsInfeasibleIntegerProblems)
{
  Model m;
  const VarIndex a = m.AddBinary("a", 1.0);
  const VarIndex b = m.AddBinary("b", 1.0);
  m.AddConstraint("sum2", {{a, 1.0}, {b, 1.0}}, Relation::kEqual, 2.0);
  m.AddConstraint("cap", {{a, 1.0}, {b, 1.0}}, Relation::kLessEqual, 1.0);
  const MipResult r = BranchAndBoundSolver().Solve(m);
  EXPECT_EQ(r.status, MipStatus::kInfeasible);
  EXPECT_FALSE(r.HasSolution());
}

TEST(BranchAndBoundTest, HandlesMixedIntegerContinuous)
{
  // maximize 5b + z with z <= 2.5, b binary, b + z <= 3 -> b=1, z=2 -> 7.
  Model m;
  const VarIndex b = m.AddBinary("b", 5.0);
  const VarIndex z = m.AddContinuous("z", 0.0, 2.5, 1.0);
  m.AddConstraint("link", {{b, 1.0}, {z, 1.0}}, Relation::kLessEqual, 3.0);
  const MipResult r = BranchAndBoundSolver().Solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 7.0, 1e-6);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(b)], 1.0, 1e-6);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(z)], 2.0, 1e-6);
}

TEST(BranchAndBoundTest, SolvesGeneralIntegerVariables)
{
  // maximize x with 3x <= 10, x integer -> 3.
  Model m;
  const VarIndex x = m.AddInteger("x", 0.0, 100.0, 1.0);
  m.AddConstraint("c", {{x, 3.0}}, Relation::kLessEqual, 10.0);
  const MipResult r = BranchAndBoundSolver().Solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-6);
}

TEST(BranchAndBoundTest, LargerKnapsackMatchesDynamicProgramming)
{
  // 18-item knapsack cross-checked against a DP solution computed here.
  const std::vector<double> values = {12, 7,  11, 8,  9,  6, 13, 5, 14,
                                      10, 4,  15, 3,  16, 2, 17, 1, 18};
  const std::vector<int> weights = {4, 2, 3, 5, 2, 3, 6, 1, 7,
                                    4, 2, 6, 1, 8, 1, 9, 1, 10};
  const int capacity = 25;

  // DP over integer weights.
  std::vector<double> dp(static_cast<std::size_t>(capacity) + 1, 0.0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    for (int w = capacity; w >= weights[i]; --w) {
      dp[static_cast<std::size_t>(w)] =
          std::max(dp[static_cast<std::size_t>(w)],
                   dp[static_cast<std::size_t>(w - weights[i])] + values[i]);
    }
  }
  const double best = dp[static_cast<std::size_t>(capacity)];

  Model m;
  std::vector<std::pair<VarIndex, double>> terms;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const VarIndex v = m.AddBinary("item", values[i]);
    terms.push_back({v, static_cast<double>(weights[i])});
  }
  m.AddConstraint("cap", terms, Relation::kLessEqual,
                  static_cast<double>(capacity));
  const MipResult r = BranchAndBoundSolver().Solve(m);
  ASSERT_TRUE(r.HasSolution());
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, best, 1e-6);
}

TEST(BranchAndBoundTest, HonoursNodeBudgetAndStillReturnsIncumbent)
{
  BranchAndBoundSolver::Options options;
  options.max_nodes = 3;
  Model m;
  std::vector<std::pair<VarIndex, double>> terms;
  for (int i = 0; i < 30; ++i) {
    const VarIndex v = m.AddBinary("b", 1.0 + 0.01 * i);
    terms.push_back({v, 1.0 + 0.013 * i});
  }
  m.AddConstraint("cap", terms, Relation::kLessEqual, 7.7);
  const MipResult r = BranchAndBoundSolver(options).Solve(m);
  // The greedy dive should have produced some incumbent even with only
  // three nodes explored.
  EXPECT_TRUE(r.HasSolution());
  EXPECT_LE(r.nodes_explored, 3);
  EXPECT_GE(r.bound, r.objective - 1e-9);
}

TEST(BranchAndBoundTest, WarmStartSeedsTheIncumbent)
{
  // A fractional root (a = 1, b = 0.5) plus a zero-node budget: without
  // a warm start this returns no solution; with one, the caller's
  // feasible point is the incumbent.
  Model m;
  const VarIndex a = m.AddBinary("a", 1.0);
  const VarIndex b = m.AddBinary("b", 1.0);
  m.AddConstraint("cap", {{a, 2.0}, {b, 2.0}}, Relation::kLessEqual, 3.0);

  BranchAndBoundSolver::Options options;
  options.max_nodes = 0;
  options.dive_depth = 0;
  const MipResult cold = BranchAndBoundSolver(options).Solve(m);
  EXPECT_FALSE(cold.HasSolution());

  options.warm_start = {1.0, 0.0};  // feasible, objective 1
  const MipResult warm = BranchAndBoundSolver(options).Solve(m);
  ASSERT_TRUE(warm.HasSolution());
  EXPECT_NEAR(warm.objective, 1.0, 1e-9);
}

TEST(BranchAndBoundTest, InfeasibleWarmStartIsIgnored)
{
  Model m;
  const VarIndex a = m.AddBinary("a", 3.0);
  const VarIndex b = m.AddBinary("b", 2.0);
  m.AddConstraint("cap", {{a, 1.0}, {b, 1.0}}, Relation::kLessEqual, 1.0);
  BranchAndBoundSolver::Options options;
  options.warm_start = {1.0, 1.0};  // violates the constraint
  const MipResult result = BranchAndBoundSolver(options).Solve(m);
  // Solved normally to the true optimum despite the bogus seed.
  ASSERT_EQ(result.status, MipStatus::kOptimal);
  EXPECT_NEAR(result.objective, 3.0, 1e-9);
}

TEST(BranchAndBoundTest, WarmStartNeverWorseThanItsSeed)
{
  // Even with a tiny budget the reported objective is at least the
  // warm start's.
  Rng rng(55);
  Model m;
  std::vector<std::pair<VarIndex, double>> terms;
  std::vector<double> seed;
  for (int i = 0; i < 40; ++i) {
    const VarIndex v = m.AddBinary("b", rng.Uniform(1.0, 5.0));
    terms.push_back({v, rng.Uniform(1.0, 3.0)});
    seed.push_back(i % 4 == 0 ? 1.0 : 0.0);
  }
  m.AddConstraint("cap", terms, Relation::kLessEqual, 25.0);
  if (!m.IsFeasible(seed))
    seed.assign(40, 0.0);
  const double seed_value = m.ObjectiveValue(seed);

  BranchAndBoundSolver::Options options;
  options.time_budget_seconds = 0.05;
  options.warm_start = seed;
  const MipResult result = BranchAndBoundSolver(options).Solve(m);
  ASSERT_TRUE(result.HasSolution());
  EXPECT_GE(result.objective, seed_value - 1e-9);
}

TEST(SimplexTest, ImpliedBoundEliminationPreservesCorrectness)
{
  // Binary-style variables whose x <= 1 bound is implied by a
  // "place once" row: the optimizer must still respect it.
  Model m;
  const VarIndex x = m.AddContinuous("x", 0.0, 1.0, 5.0);
  const VarIndex y = m.AddContinuous("y", 0.0, 1.0, 3.0);
  m.AddConstraint("once", {{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 1.0);
  const LpResult r = SimplexSolver().Solve(m);
  ASSERT_TRUE(r.IsOptimal());
  EXPECT_NEAR(r.objective, 5.0, 1e-6);
  EXPECT_LE(r.x[static_cast<std::size_t>(x)], 1.0 + 1e-9);
  EXPECT_LE(r.x[static_cast<std::size_t>(y)], 1.0 + 1e-9);
}

TEST(SimplexTest, NonImpliedBoundsStillEnforced)
{
  // The constraint does NOT imply the bound (rhs/coef > upper): the
  // explicit bound row must survive elimination.
  Model m;
  const VarIndex x = m.AddContinuous("x", 0.0, 2.0, 1.0);
  m.AddConstraint("loose", {{x, 1.0}}, Relation::kLessEqual, 10.0);
  const LpResult r = SimplexSolver().Solve(m);
  ASSERT_TRUE(r.IsOptimal());
  EXPECT_NEAR(r.objective, 2.0, 1e-6);
}

TEST(SimplexTest, WarmBasisReSolveMatchesColdSolve)
{
  // maximize 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> (4, 0). Tightening
  // x <= 2 moves the unique optimum to (2, 4/3). The warm re-solve from
  // the parent basis must land exactly where a cold solve does.
  Model m;
  const VarIndex x = m.AddContinuous("x", 0.0, 1e9, 3.0);
  const VarIndex y = m.AddContinuous("y", 0.0, 1e9, 2.0);
  m.AddConstraint("c1", {{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 4.0);
  m.AddConstraint("c2", {{x, 1.0}, {y, 3.0}}, Relation::kLessEqual, 6.0);

  const SimplexSolver solver;
  SimplexWorkspace workspace;
  SimplexBasis basis;
  BoundOverrides overrides(2);
  const LpResult parent =
      solver.SolveWithBounds(m, overrides, &workspace, nullptr, &basis);
  ASSERT_TRUE(parent.IsOptimal());
  ASSERT_FALSE(basis.empty());
  EXPECT_FALSE(parent.warm_start_attempted);

  overrides[static_cast<std::size_t>(x)] = {0.0, 2.0};
  const LpResult warm =
      solver.SolveWithBounds(m, overrides, &workspace, &basis, nullptr);
  const LpResult cold = solver.SolveWithBounds(m, overrides);
  ASSERT_TRUE(warm.IsOptimal());
  ASSERT_TRUE(cold.IsOptimal());
  EXPECT_TRUE(warm.warm_start_attempted);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
  ASSERT_EQ(warm.x.size(), cold.x.size());
  for (std::size_t i = 0; i < warm.x.size(); ++i)
    EXPECT_NEAR(warm.x[i], cold.x[i], 1e-9);
  EXPECT_NEAR(warm.x[static_cast<std::size_t>(x)], 2.0, 1e-9);
  EXPECT_NEAR(warm.x[static_cast<std::size_t>(y)], 4.0 / 3.0, 1e-9);
}

TEST(SimplexTest, WarmBasisFallsBackWhenBoundsChangeFeasibility)
{
  // The parent's optimal basis becomes infeasible when x is forced up;
  // the warm path must detect this and silently re-solve cold.
  Model m;
  m.SetSense(Sense::kMinimize);
  const VarIndex x = m.AddContinuous("x", 0.0, 10.0, 1.0);
  const VarIndex y = m.AddContinuous("y", 0.0, 10.0, 1.0);
  m.AddConstraint("sum", {{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 2.0);

  const SimplexSolver solver;
  SimplexWorkspace workspace;
  SimplexBasis basis;
  BoundOverrides overrides(2);
  const LpResult parent =
      solver.SolveWithBounds(m, overrides, &workspace, nullptr, &basis);
  ASSERT_TRUE(parent.IsOptimal());

  overrides[static_cast<std::size_t>(x)] = {5.0, 10.0};
  const LpResult warm =
      solver.SolveWithBounds(m, overrides, &workspace, &basis, nullptr);
  ASSERT_TRUE(warm.IsOptimal());
  EXPECT_NEAR(warm.objective, 5.0, 1e-9);
  EXPECT_NEAR(warm.x[static_cast<std::size_t>(x)], 5.0, 1e-9);
}

TEST(BranchAndBoundTest, ParallelSolveIsBitIdenticalToSerial)
{
  // The wave-synchronous design promises the same incumbent, bound, and
  // node count at any thread width. Exercise 1 vs explicit 2- and
  // 8-lane pools on a knapsack that branches substantially.
  Rng rng(99);
  Model m;
  std::vector<std::pair<VarIndex, double>> terms;
  for (int i = 0; i < 26; ++i) {
    const VarIndex v = m.AddBinary("b", rng.Uniform(1.0, 9.0));
    terms.push_back({v, rng.Uniform(1.0, 5.0)});
  }
  m.AddConstraint("cap", terms, Relation::kLessEqual, 20.0);

  BranchAndBoundSolver::Options serial_options;
  serial_options.threads = 1;
  const MipResult serial = BranchAndBoundSolver(serial_options).Solve(m);
  ASSERT_EQ(serial.status, MipStatus::kOptimal);
  EXPECT_EQ(serial.threads_used, 1);

  for (const int threads : {2, 8}) {
    common::ThreadPool pool(threads);
    BranchAndBoundSolver::Options options;
    options.pool = &pool;
    const MipResult parallel = BranchAndBoundSolver(options).Solve(m);
    ASSERT_EQ(parallel.status, MipStatus::kOptimal);
    EXPECT_EQ(parallel.threads_used, threads);
    // Bit-identical, not just close: same incumbent vector, objective,
    // bound, and explored-node count.
    EXPECT_EQ(parallel.objective, serial.objective);
    EXPECT_EQ(parallel.bound, serial.bound);
    EXPECT_EQ(parallel.x, serial.x);
    EXPECT_EQ(parallel.nodes_explored, serial.nodes_explored);
    EXPECT_EQ(parallel.lp_solves, serial.lp_solves);
    // Lane attribution is telemetry, but it must account for every node.
    std::int64_t lane_sum = 0;
    for (const std::int64_t n : parallel.nodes_per_thread)
      lane_sum += n;
    EXPECT_EQ(lane_sum, parallel.nodes_explored);
  }
}

TEST(BranchAndBoundTest, ReportsBasisReuseTelemetry)
{
  Rng rng(7);
  Model m;
  std::vector<std::pair<VarIndex, double>> terms;
  for (int i = 0; i < 20; ++i) {
    const VarIndex v = m.AddBinary("b", rng.Uniform(1.0, 9.0));
    terms.push_back({v, rng.Uniform(1.0, 5.0)});
  }
  m.AddConstraint("cap", terms, Relation::kLessEqual, 15.0);
  const MipResult r = BranchAndBoundSolver().Solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  // Every non-root LP carries the parent basis; most installs succeed.
  EXPECT_GT(r.basis_reuse_attempts, 0);
  EXPECT_GT(r.basis_reuse_hits, 0);
  EXPECT_LE(r.basis_reuse_hits, r.basis_reuse_attempts);
}

TEST(SolverTraceTest, SolveEmitsConvergenceCurveAndCsv)
{
  // Knapsack large enough that the solve branches at least once.
  Model m;
  std::vector<VarIndex> items;
  const double values[] = {10, 13, 7, 9, 4, 11};
  const double weights[] = {4, 6, 3, 5, 2, 6};
  std::vector<std::pair<VarIndex, double>> cap_terms;
  for (int i = 0; i < 6; ++i) {
    std::string name = "x";
    name += std::to_string(i);
    items.push_back(m.AddBinary(name, values[i]));
    cap_terms.emplace_back(items.back(), weights[i]);
  }
  m.AddConstraint("cap", cap_terms, Relation::kLessEqual, 12.0);

  SolverTrace trace;
  BranchAndBoundSolver::Options options;
  options.trace = &trace;
  options.trace_node_interval = 1;  // sample every node
  const MipResult result = BranchAndBoundSolver(options).Solve(m);
  ASSERT_TRUE(result.HasSolution());
  EXPECT_GT(result.lp_solves, 0);
  EXPECT_GT(result.simplex_pivots, 0);

  ASSERT_GE(trace.size(), 2u);
  const auto& points = trace.points();
  EXPECT_EQ(points.front().label, "root");
  EXPECT_EQ(points.back().label, "final");
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i - 1].elapsed_s, points[i].elapsed_s);
    EXPECT_LE(points[i - 1].nodes, points[i].nodes);
    EXPECT_LE(points[i - 1].lp_solves, points[i].lp_solves);
  }
  // The final point mirrors the result's counters and objective.
  EXPECT_EQ(points.back().nodes, result.nodes_explored);
  EXPECT_EQ(points.back().lp_solves, result.lp_solves);
  EXPECT_EQ(points.back().pivots, result.simplex_pivots);
  EXPECT_TRUE(points.back().has_incumbent);
  EXPECT_NEAR(points.back().incumbent, result.objective, 1e-9);

  const std::string csv = trace.ToCsv();
  EXPECT_EQ(csv.rfind(
                "label,elapsed_s,nodes,lp_solves,pivots,bound,incumbent,gap",
                0),
            0u);
  EXPECT_NE(csv.find("\nfinal,"), std::string::npos);
}

TEST(SolverTraceTest, WarmStartAppearsAsImmediateIncumbent)
{
  Model m;
  const VarIndex a = m.AddBinary("a", 10.0);
  const VarIndex b = m.AddBinary("b", 13.0);
  m.AddConstraint("cap", {{a, 4.0}, {b, 6.0}}, Relation::kLessEqual, 6.0);

  SolverTrace trace;
  BranchAndBoundSolver::Options options;
  options.trace = &trace;
  options.warm_start = {1.0, 0.0};  // feasible, value 10
  BranchAndBoundSolver(options).Solve(m);
  ASSERT_FALSE(trace.empty());
  // The seeded incumbent is traced before the root relaxation point.
  EXPECT_EQ(trace.points().front().label, "incumbent");
  EXPECT_TRUE(trace.points().front().has_incumbent);
  EXPECT_NEAR(trace.points().front().incumbent, 10.0, 1e-9);
}

/** Random bounded MIP used by the presolve round-trip property test.
 * Finite bounds everywhere, so every instance is optimal or infeasible. */
Model
MakeRandomMip(std::uint64_t seed)
{
  Rng rng(seed * 0xD1342543DE82EF95ULL + 0x2545F4914F6CDD1DULL);
  Model m;
  m.SetSense(rng.Bernoulli(0.5) ? Sense::kMaximize : Sense::kMinimize);
  const int n = 1 + static_cast<int>(rng.UniformInt(0, 9));
  const int rows = 1 + static_cast<int>(rng.UniformInt(0, 7));
  for (int j = 0; j < n; ++j) {
    const double roll = rng.NextDouble();
    const double obj = rng.Uniform(-6.0, 6.0);
    if (roll < 0.4) {
      m.AddBinary("b" + std::to_string(j), obj);
    } else if (roll < 0.6) {
      const double lo = static_cast<double>(rng.UniformInt(-3, 0));
      m.AddInteger("i" + std::to_string(j), lo,
                   lo + static_cast<double>(rng.UniformInt(1, 6)), obj);
    } else {
      const double lo = rng.Uniform(-4.0, 4.0);
      m.AddContinuous("x" + std::to_string(j), lo,
                      lo + rng.Uniform(0.0, 8.0), obj);
    }
  }
  for (int i = 0; i < rows; ++i) {
    std::vector<std::pair<VarIndex, double>> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.Bernoulli(0.7))
        terms.emplace_back(j, rng.Uniform(-4.0, 4.0));
    }
    m.AddConstraint("c" + std::to_string(i), std::move(terms),
                    static_cast<Relation>(rng.UniformInt(0, 2)),
                    rng.Uniform(-8.0, 8.0));
  }
  return m;
}

TEST(PresolveTest, RoundTripPreservesOptimumOn200RandomModels)
{
  // Property: presolve -> solve reduced -> postsolve yields a feasible
  // point of the ORIGINAL model whose objective (plus the presolve
  // offset) matches solving the original model unreduced. Checked both
  // at the Presolve/Postsolve API level and through the B&B presolve
  // option.
  BranchAndBoundSolver::Options raw;
  raw.presolve = false;
  raw.threads = 1;
  BranchAndBoundSolver::Options pre_on;
  pre_on.presolve = true;
  pre_on.threads = 1;
  int reduced_something = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const Model m = MakeRandomMip(seed);
    const MipResult baseline = BranchAndBoundSolver(raw).Solve(m);
    ASSERT_TRUE(baseline.status == MipStatus::kOptimal ||
                baseline.status == MipStatus::kInfeasible);

    Presolved pre;
    if (Presolve(m, &pre) == PresolveStatus::kInfeasible) {
      EXPECT_EQ(baseline.status, MipStatus::kInfeasible);
      continue;
    }
    if (pre.rows_removed > 0 || pre.cols_removed > 0)
      ++reduced_something;
    const MipResult reduced = BranchAndBoundSolver(raw).Solve(pre.reduced);
    ASSERT_EQ(reduced.status == MipStatus::kOptimal,
              baseline.status == MipStatus::kOptimal);
    if (reduced.status == MipStatus::kOptimal) {
      std::vector<double> full;
      Postsolve(pre, reduced.x, &full);
      EXPECT_TRUE(m.IsFeasible(full, 1e-6));
      const double scale = std::max(1.0, std::fabs(baseline.objective));
      EXPECT_NEAR(reduced.objective + pre.objective_offset,
                  baseline.objective, 1e-6 * scale);
      EXPECT_NEAR(m.ObjectiveValue(full), baseline.objective, 1e-6 * scale);
    }

    // End-to-end through the solver option.
    const MipResult through = BranchAndBoundSolver(pre_on).Solve(m);
    ASSERT_EQ(through.status == MipStatus::kOptimal,
              baseline.status == MipStatus::kOptimal);
    if (through.status == MipStatus::kOptimal) {
      EXPECT_TRUE(m.IsFeasible(through.x, 1e-6));
      const double scale = std::max(1.0, std::fabs(baseline.objective));
      EXPECT_NEAR(through.objective, baseline.objective, 1e-6 * scale);
    }
  }
  // The property is vacuous if presolve never fires on this corpus.
  EXPECT_GE(reduced_something, 20);
}

TEST(PresolveTest, FixturesUnchangedByPresolve)
{
  // The MIP fixtures elsewhere in this file, solved with presolve on and
  // off: identical status and optimal value.
  std::vector<Model> fixtures;
  {
    Model m;  // knapsack: optimum 20
    const VarIndex a = m.AddBinary("a", 10.0);
    const VarIndex b = m.AddBinary("b", 13.0);
    const VarIndex c = m.AddBinary("c", 7.0);
    m.AddConstraint("cap", {{a, 4.0}, {b, 6.0}, {c, 3.0}},
                    Relation::kLessEqual, 9.0);
    fixtures.push_back(std::move(m));
  }
  {
    Model m;  // mixed integer/continuous: optimum 7
    const VarIndex b = m.AddBinary("b", 5.0);
    const VarIndex z = m.AddContinuous("z", 0.0, 2.5, 1.0);
    m.AddConstraint("link", {{b, 1.0}, {z, 1.0}}, Relation::kLessEqual, 3.0);
    fixtures.push_back(std::move(m));
  }
  {
    Model m;  // infeasible: sum == 2 but cap <= 1
    const VarIndex a = m.AddBinary("a", 1.0);
    const VarIndex b = m.AddBinary("b", 1.0);
    m.AddConstraint("sum2", {{a, 1.0}, {b, 1.0}}, Relation::kEqual, 2.0);
    m.AddConstraint("cap", {{a, 1.0}, {b, 1.0}}, Relation::kLessEqual, 1.0);
    fixtures.push_back(std::move(m));
  }
  for (std::size_t i = 0; i < fixtures.size(); ++i) {
    SCOPED_TRACE("fixture " + std::to_string(i));
    BranchAndBoundSolver::Options on;
    on.presolve = true;
    BranchAndBoundSolver::Options off;
    off.presolve = false;
    const MipResult with = BranchAndBoundSolver(on).Solve(fixtures[i]);
    const MipResult without = BranchAndBoundSolver(off).Solve(fixtures[i]);
    ASSERT_EQ(with.status, without.status);
    if (with.HasSolution()) {
      EXPECT_NEAR(with.objective, without.objective, 1e-9);
      EXPECT_TRUE(fixtures[i].IsFeasible(with.x, 1e-6));
    }
  }
}

TEST(SimplexTest, BothImplementationsSurviveBealeCycling)
{
  // Beale's cycling LP again, but explicitly on each implementation:
  // the sparse path must hit its Bland's-rule fallback rather than spin
  // to the iteration limit.
  Model m;
  const VarIndex x1 = m.AddContinuous("x1", 0.0, 1e9, 0.75);
  const VarIndex x2 = m.AddContinuous("x2", 0.0, 1e9, -150.0);
  const VarIndex x3 = m.AddContinuous("x3", 0.0, 1e9, 0.02);
  const VarIndex x4 = m.AddContinuous("x4", 0.0, 1e9, -6.0);
  m.AddConstraint("r1", {{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
                  Relation::kLessEqual, 0.0);
  m.AddConstraint("r2", {{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
                  Relation::kLessEqual, 0.0);
  m.AddConstraint("r3", {{x3, 1.0}}, Relation::kLessEqual, 1.0);
  for (const SimplexImpl impl : {SimplexImpl::kSparse, SimplexImpl::kDense}) {
    SimplexSolver::Options options;
    options.impl = impl;
    const LpResult r = SimplexSolver(options).Solve(m);
    ASSERT_TRUE(r.IsOptimal()) << "impl " << static_cast<int>(impl);
    EXPECT_NEAR(r.objective, 0.05, 1e-6);
  }
}

TEST(SimplexTest, SingularWarmBasisFallsBackToColdSolve)
{
  // A warm basis naming two structural columns that BOTH live only in
  // row 0 is singular; Refactorize must reject it and the solve must
  // recover through the cold two-phase path.
  Model m;
  const VarIndex u = m.AddContinuous("u", 0.0, 2.0, 1.0);
  const VarIndex v = m.AddContinuous("v", 0.0, 2.0, 1.0);
  const VarIndex w = m.AddContinuous("w", 0.0, 2.0, 1.0);
  m.AddConstraint("r0", {{u, 1.0}, {v, 1.0}}, Relation::kLessEqual, 1.0);
  m.AddConstraint("r1", {{w, 1.0}}, Relation::kLessEqual, 1.0);

  SimplexBasis bogus;
  bogus.rows.push_back({0, SimplexBasis::Kind::kStructural, u});
  bogus.rows.push_back({1, SimplexBasis::Kind::kStructural, v});

  SimplexWorkspace workspace;
  const LpResult r = SimplexSolver().SolveWithBounds(
      m, BoundOverrides(3), &workspace, &bogus, nullptr);
  ASSERT_TRUE(r.IsOptimal());
  EXPECT_TRUE(r.warm_start_attempted);
  EXPECT_FALSE(r.warm_start_used);
  EXPECT_NEAR(r.objective, 2.0, 1e-9);  // u + v = 1, w = 1
}

TEST(SimplexTest, NearZeroCoefficientsAreNotPivotedOn)
{
  // A 1e-13 coefficient sits below the pivot tolerance; the ratio test
  // must skip it instead of dividing by it and exploding the iterate.
  for (const SimplexImpl impl : {SimplexImpl::kSparse, SimplexImpl::kDense}) {
    SimplexSolver::Options options;
    options.impl = impl;
    {
      Model m;
      const VarIndex x = m.AddContinuous("x", 0.0, 10.0, 0.0);
      const VarIndex y = m.AddContinuous("y", 0.0, 10.0, 1.0);
      m.AddConstraint("tiny", {{x, 1e-13}, {y, 1.0}},
                      Relation::kLessEqual, 1.0);
      const LpResult r = SimplexSolver(options).Solve(m);
      ASSERT_TRUE(r.IsOptimal()) << "impl " << static_cast<int>(impl);
      EXPECT_NEAR(r.objective, 1.0, 1e-6);
    }
    {
      Model m;
      m.SetSense(Sense::kMinimize);
      const VarIndex x = m.AddContinuous("x", 0.0, 10.0, 0.0);
      const VarIndex y = m.AddContinuous("y", 0.0, 10.0, 1.0);
      m.AddConstraint("tiny", {{x, 1e-13}, {y, 1.0}},
                      Relation::kGreaterEqual, 1.0);
      const LpResult r = SimplexSolver(options).Solve(m);
      ASSERT_TRUE(r.IsOptimal()) << "impl " << static_cast<int>(impl);
      EXPECT_NEAR(r.objective, 1.0, 1e-6);
    }
  }
}

TEST(BranchAndBoundTest, DenseAndSparseLpBackendsAgreeOnStudyModel)
{
  // The full search on the 26-item study knapsack, once per LP backend.
  // Objectives must agree to LP tolerance; the sparse run must also
  // report factorization telemetry the dense run cannot produce.
  Rng rng(99);
  Model m;
  std::vector<std::pair<VarIndex, double>> terms;
  for (int i = 0; i < 26; ++i) {
    const VarIndex v = m.AddBinary("b", rng.Uniform(1.0, 9.0));
    terms.push_back({v, rng.Uniform(1.0, 5.0)});
  }
  m.AddConstraint("cap", terms, Relation::kLessEqual, 20.0);

  BranchAndBoundSolver::Options sparse_opts;
  sparse_opts.threads = 1;
  sparse_opts.lp.impl = SimplexImpl::kSparse;
  BranchAndBoundSolver::Options dense_opts;
  dense_opts.threads = 1;
  dense_opts.lp.impl = SimplexImpl::kDense;
  const MipResult sparse = BranchAndBoundSolver(sparse_opts).Solve(m);
  const MipResult dense = BranchAndBoundSolver(dense_opts).Solve(m);
  ASSERT_EQ(sparse.status, MipStatus::kOptimal);
  ASSERT_EQ(dense.status, MipStatus::kOptimal);
  EXPECT_NEAR(sparse.objective, dense.objective, 1e-9);
  EXPECT_TRUE(m.IsFeasible(sparse.x, 1e-6));
  EXPECT_TRUE(m.IsFeasible(dense.x, 1e-6));
  EXPECT_GT(sparse.simplex_refactors, 0);
  EXPECT_EQ(dense.simplex_refactors, 0);
  EXPECT_EQ(dense.eta_updates, 0);
}

TEST(BranchAndBoundTest, ParallelSolveBitIdenticalWithPresolveDisabled)
{
  // The determinism promise must hold on the pure factorized
  // warm-basis path too (presolve off exercises different node bounds).
  Rng rng(99);
  Model m;
  std::vector<std::pair<VarIndex, double>> terms;
  for (int i = 0; i < 26; ++i) {
    const VarIndex v = m.AddBinary("b", rng.Uniform(1.0, 9.0));
    terms.push_back({v, rng.Uniform(1.0, 5.0)});
  }
  m.AddConstraint("cap", terms, Relation::kLessEqual, 20.0);

  BranchAndBoundSolver::Options serial_options;
  serial_options.threads = 1;
  serial_options.presolve = false;
  const MipResult serial = BranchAndBoundSolver(serial_options).Solve(m);
  ASSERT_EQ(serial.status, MipStatus::kOptimal);

  for (const int threads : {2, 8}) {
    common::ThreadPool pool(threads);
    BranchAndBoundSolver::Options options;
    options.pool = &pool;
    options.presolve = false;
    const MipResult parallel = BranchAndBoundSolver(options).Solve(m);
    ASSERT_EQ(parallel.status, MipStatus::kOptimal);
    EXPECT_EQ(parallel.objective, serial.objective);
    EXPECT_EQ(parallel.bound, serial.bound);
    EXPECT_EQ(parallel.x, serial.x);
    EXPECT_EQ(parallel.nodes_explored, serial.nodes_explored);
    EXPECT_EQ(parallel.lp_solves, serial.lp_solves);
  }
}

TEST(ModelTest, FeasibilityCheckerCatchesViolations)
{
  Model m;
  const VarIndex x = m.AddBinary("x", 1.0);
  const VarIndex y = m.AddContinuous("y", 0.0, 2.0, 1.0);
  m.AddConstraint("c", {{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 2.0);

  EXPECT_TRUE(m.IsFeasible({1.0, 1.0}));
  EXPECT_FALSE(m.IsFeasible({1.0, 1.5}));   // constraint violated
  EXPECT_FALSE(m.IsFeasible({0.5, 0.5}));   // integrality violated
  EXPECT_FALSE(m.IsFeasible({0.0, 3.0}));   // bound violated
  EXPECT_FALSE(m.IsFeasible({1.0}));        // wrong arity
}

TEST(ModelTest, ObjectiveValueMatchesCoefficients)
{
  Model m;
  m.AddContinuous("x", 0.0, 1.0, 2.0);
  m.AddContinuous("y", 0.0, 1.0, -3.0);
  EXPECT_DOUBLE_EQ(m.ObjectiveValue({0.5, 1.0}), 2.0 * 0.5 - 3.0);
}

TEST(ModelTest, RejectsConstraintsOnUnknownVariables)
{
  Model m;
  m.AddBinary("x", 1.0);
  EXPECT_THROW(
      m.AddConstraint("bad", {{5, 1.0}}, Relation::kLessEqual, 1.0),
      flex::ConfigError);
}

TEST(BranchAndBoundTest, PropagationPrunesAContradictedChildWithoutAnLp)
{
  // minimize x s.t. 2x >= 1, x binary. The root LP relaxes to x = 0.5,
  // so the search branches; the x <= 0 child's bound override empties
  // the row's activity box (max activity 0 < rhs 1), which node-local
  // propagation must detect and prune before any LP solve — the
  // propagation_prunes counter is the proof it fired. Presolve is off
  // because its singleton-row folding would absorb the row into the
  // variable bound and leave nothing to propagate.
  Model m;
  m.SetSense(Sense::kMinimize);
  const VarIndex x = m.AddBinary("x", 1.0);
  m.AddConstraint("half", {{x, 2.0}}, Relation::kGreaterEqual, 1.0);

  BranchAndBoundSolver::Options options;
  options.presolve = false;
  options.threads = 1;
  const MipResult r = BranchAndBoundSolver(options).Solve(m);

  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-9);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(x)], 1.0, 1e-9);
  EXPECT_GE(r.propagation_prunes, 1)
      << "the contradicted x<=0 child was not pruned by propagation";
  // Both children of the root were explored: the x >= 1 child via its
  // LP, the x <= 0 child via the propagation prune.
  EXPECT_GE(r.nodes_explored, 2);
}

}  // namespace
}  // namespace flex::solver
