/**
 * @file
 * Unit tests for the discrete-event simulation kernel.
 */
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/event_queue.hpp"

namespace flex::sim {
namespace {

TEST(EventQueueTest, RunsEventsInTimeOrder)
{
  EventQueue q;
  std::vector<int> order;
  q.Schedule(Seconds(3.0), [&] { order.push_back(3); });
  q.Schedule(Seconds(1.0), [&] { order.push_back(1); });
  q.Schedule(Seconds(2.0), [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_NEAR(q.Now().value(), 3.0, 1e-12);
}

TEST(EventQueueTest, EqualTimestampsFireFifo)
{
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    q.Schedule(Seconds(1.0), [&order, i] { order.push_back(i); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, RunUntilStopsAtHorizon)
{
  EventQueue q;
  int fired = 0;
  q.Schedule(Seconds(1.0), [&] { ++fired; });
  q.Schedule(Seconds(5.0), [&] { ++fired; });
  const std::size_t executed = q.RunUntil(Seconds(2.0));
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_NEAR(q.Now().value(), 2.0, 1e-12);
  EXPECT_EQ(q.PendingCount(), 1u);
  q.RunUntil(Seconds(10.0));
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, TimeAdvancesToHorizonEvenWhenIdle)
{
  EventQueue q;
  q.RunUntil(Seconds(42.0));
  EXPECT_NEAR(q.Now().value(), 42.0, 1e-12);
}

TEST(EventQueueTest, CancelPreventsExecution)
{
  EventQueue q;
  int fired = 0;
  const EventId id = q.Schedule(Seconds(1.0), [&] { ++fired; });
  q.Schedule(Seconds(2.0), [&] { ++fired; });
  q.Cancel(id);
  q.RunAll();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, CancelIsIdempotentAndToleratesBadIds)
{
  EventQueue q;
  const EventId id = q.Schedule(Seconds(1.0), [] {});
  q.Cancel(id);
  q.Cancel(id);
  q.Cancel(0);
  q.Cancel(9999);
  EXPECT_NO_THROW(q.RunAll());
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents)
{
  EventQueue q;
  std::vector<double> times;
  q.Schedule(Seconds(1.0), [&] {
    times.push_back(q.Now().value());
    q.Schedule(Seconds(1.0), [&] { times.push_back(q.Now().value()); });
  });
  q.RunAll();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_NEAR(times[0], 1.0, 1e-12);
  EXPECT_NEAR(times[1], 2.0, 1e-12);
}

TEST(EventQueueTest, ScheduleAtAbsoluteTime)
{
  EventQueue q;
  q.RunUntil(Seconds(5.0));
  double fired_at = -1.0;
  q.ScheduleAt(Seconds(8.0), [&] { fired_at = q.Now().value(); });
  EXPECT_THROW(q.ScheduleAt(Seconds(3.0), [] {}), ConfigError);
  q.RunAll();
  EXPECT_NEAR(fired_at, 8.0, 1e-12);
}

TEST(EventQueueTest, RejectsNegativeDelay)
{
  EventQueue q;
  EXPECT_THROW(q.Schedule(Seconds(-1.0), [] {}), ConfigError);
}

TEST(EventQueueTest, StepRunsExactlyOneEvent)
{
  EventQueue q;
  int fired = 0;
  q.Schedule(Seconds(1.0), [&] { ++fired; });
  q.Schedule(Seconds(2.0), [&] { ++fired; });
  EXPECT_TRUE(q.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.Step());
  EXPECT_FALSE(q.Step());
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, PeriodicTicksUntilCallbackReturnsFalse)
{
  EventQueue q;
  int ticks = 0;
  SchedulePeriodic(q, Seconds(1.5), [&] {
    ++ticks;
    return ticks < 4;
  });
  q.RunUntil(Seconds(100.0));
  EXPECT_EQ(ticks, 4);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, PeriodicTickSpacingMatchesPeriod)
{
  EventQueue q;
  std::vector<double> times;
  SchedulePeriodic(q, Seconds(2.0), [&] {
    times.push_back(q.Now().value());
    return times.size() < 3;
  });
  q.RunAll();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_NEAR(times[0], 2.0, 1e-12);
  EXPECT_NEAR(times[1], 4.0, 1e-12);
  EXPECT_NEAR(times[2], 6.0, 1e-12);
}

TEST(EventQueueTest, PendingCountTracksLiveEvents)
{
  EventQueue q;
  const EventId a = q.Schedule(Seconds(1.0), [] {});
  q.Schedule(Seconds(2.0), [] {});
  EXPECT_EQ(q.PendingCount(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.PendingCount(), 1u);
  q.RunAll();
  EXPECT_EQ(q.PendingCount(), 0u);
  EXPECT_TRUE(q.Empty());
}

}  // namespace
}  // namespace flex::sim
