/**
 * @file
 * Unit tests for the discrete-event simulation kernel.
 */
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/event_queue.hpp"

namespace flex::sim {
namespace {

TEST(EventQueueTest, RunsEventsInTimeOrder)
{
  EventQueue q;
  std::vector<int> order;
  q.Schedule(Seconds(3.0), [&] { order.push_back(3); });
  q.Schedule(Seconds(1.0), [&] { order.push_back(1); });
  q.Schedule(Seconds(2.0), [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_NEAR(q.Now().value(), 3.0, 1e-12);
}

TEST(EventQueueTest, EqualTimestampsFireFifo)
{
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    q.Schedule(Seconds(1.0), [&order, i] { order.push_back(i); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, RunUntilStopsAtHorizon)
{
  EventQueue q;
  int fired = 0;
  q.Schedule(Seconds(1.0), [&] { ++fired; });
  q.Schedule(Seconds(5.0), [&] { ++fired; });
  const std::size_t executed = q.RunUntil(Seconds(2.0));
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_NEAR(q.Now().value(), 2.0, 1e-12);
  EXPECT_EQ(q.PendingCount(), 1u);
  q.RunUntil(Seconds(10.0));
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, TimeAdvancesToHorizonEvenWhenIdle)
{
  EventQueue q;
  q.RunUntil(Seconds(42.0));
  EXPECT_NEAR(q.Now().value(), 42.0, 1e-12);
}

TEST(EventQueueTest, NextEventTimeTracksEarliestPendingAcrossBackends)
{
  EventQueue q;
  EXPECT_TRUE(std::isinf(q.NextEventTime().value()));
  // Far event lands in the overflow heap, near event in the calendar
  // wheel; NextEventTime must report the minimum across both.
  q.Schedule(Seconds(5000.0), [] {});
  EXPECT_NEAR(q.NextEventTime().value(), 5000.0, 1e-12);
  const EventId near = q.Schedule(Seconds(1.0), [] {});
  EXPECT_NEAR(q.NextEventTime().value(), 1.0, 1e-12);
  q.Cancel(near);
  EXPECT_NEAR(q.NextEventTime().value(), 5000.0, 1e-12);
  q.RunAll();
  EXPECT_TRUE(std::isinf(q.NextEventTime().value()));
}

TEST(EventQueueTest, RunUntilTilesExactly)
{
  // The fleet engine drives each room in fixed epochs; a tiled drive
  // RunUntil(t1); RunUntil(t2) must be indistinguishable from one
  // RunUntil(t2), including events landing exactly on a tile boundary.
  std::vector<double> tiled;
  std::vector<double> whole;
  const auto load = [](EventQueue& q, std::vector<double>& out) {
    for (double t : {0.5, 2.0, 2.5, 3.999, 4.0, 7.25})
      q.ScheduleAt(Seconds(t), [&out, &q] { out.push_back(q.Now().value()); });
  };
  EventQueue a;
  load(a, tiled);
  std::size_t tiled_count = 0;
  for (double h = 2.0; h <= 8.0; h += 2.0)
    tiled_count += a.RunUntil(Seconds(h));
  EventQueue b;
  load(b, whole);
  const std::size_t whole_count = b.RunUntil(Seconds(8.0));
  EXPECT_EQ(tiled_count, whole_count);
  EXPECT_EQ(tiled, whole);
  EXPECT_NEAR(a.Now().value(), b.Now().value(), 1e-12);
}

TEST(EventQueueTest, CancelPreventsExecution)
{
  EventQueue q;
  int fired = 0;
  const EventId id = q.Schedule(Seconds(1.0), [&] { ++fired; });
  q.Schedule(Seconds(2.0), [&] { ++fired; });
  q.Cancel(id);
  q.RunAll();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, CancelIsIdempotentAndToleratesBadIds)
{
  EventQueue q;
  const EventId id = q.Schedule(Seconds(1.0), [] {});
  q.Cancel(id);
  q.Cancel(id);
  q.Cancel(0);
  q.Cancel(9999);
  EXPECT_NO_THROW(q.RunAll());
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents)
{
  EventQueue q;
  std::vector<double> times;
  q.Schedule(Seconds(1.0), [&] {
    times.push_back(q.Now().value());
    q.Schedule(Seconds(1.0), [&] { times.push_back(q.Now().value()); });
  });
  q.RunAll();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_NEAR(times[0], 1.0, 1e-12);
  EXPECT_NEAR(times[1], 2.0, 1e-12);
}

TEST(EventQueueTest, ScheduleAtAbsoluteTime)
{
  EventQueue q;
  q.RunUntil(Seconds(5.0));
  double fired_at = -1.0;
  q.ScheduleAt(Seconds(8.0), [&] { fired_at = q.Now().value(); });
  EXPECT_THROW(q.ScheduleAt(Seconds(3.0), [] {}), ConfigError);
  q.RunAll();
  EXPECT_NEAR(fired_at, 8.0, 1e-12);
}

TEST(EventQueueTest, RejectsNegativeDelay)
{
  EventQueue q;
  EXPECT_THROW(q.Schedule(Seconds(-1.0), [] {}), ConfigError);
}

TEST(EventQueueTest, StepRunsExactlyOneEvent)
{
  EventQueue q;
  int fired = 0;
  q.Schedule(Seconds(1.0), [&] { ++fired; });
  q.Schedule(Seconds(2.0), [&] { ++fired; });
  EXPECT_TRUE(q.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.Step());
  EXPECT_FALSE(q.Step());
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, PeriodicTicksUntilCallbackReturnsFalse)
{
  EventQueue q;
  int ticks = 0;
  SchedulePeriodic(q, Seconds(1.5), [&] {
    ++ticks;
    return ticks < 4;
  });
  q.RunUntil(Seconds(100.0));
  EXPECT_EQ(ticks, 4);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, PeriodicTickSpacingMatchesPeriod)
{
  EventQueue q;
  std::vector<double> times;
  SchedulePeriodic(q, Seconds(2.0), [&] {
    times.push_back(q.Now().value());
    return times.size() < 3;
  });
  q.RunAll();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_NEAR(times[0], 2.0, 1e-12);
  EXPECT_NEAR(times[1], 4.0, 1e-12);
  EXPECT_NEAR(times[2], 6.0, 1e-12);
}

TEST(EventQueueTest, PendingCountTracksLiveEvents)
{
  EventQueue q;
  const EventId a = q.Schedule(Seconds(1.0), [] {});
  q.Schedule(Seconds(2.0), [] {});
  EXPECT_EQ(q.PendingCount(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.PendingCount(), 1u);
  q.RunAll();
  EXPECT_EQ(q.PendingCount(), 0u);
  EXPECT_TRUE(q.Empty());
}

// ---------------------------------------------------------------------------
// Regressions: lazy cancellation under churn must not disturb the FIFO
// guarantee for equal timestamps, and cancelled entries must never leak
// into execution or the executed-event count.
// ---------------------------------------------------------------------------

TEST(EventQueueTest, FifoOrderSurvivesHeavyCancelChurn)
{
  // Interleave live and doomed events at the same timestamp, cancel
  // every other one, and verify the survivors still fire in exact
  // insertion order. Lazy cancellation leaves tombstones in the heap;
  // popping them must not reorder equal-time survivors.
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> doomed;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 20; ++i) {
      const int label = round * 100 + i;
      const EventId id =
          q.Schedule(Seconds(1.0), [&order, label] { order.push_back(label); });
      if (i % 2 == 1)
        doomed.push_back(id);
    }
  }
  for (const EventId id : doomed)
    q.Cancel(id);
  q.RunAll();
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_LT(order[i - 1], order[i]) << "FIFO order broken at " << i;
  EXPECT_EQ(q.executed_count(), 100u);
}

TEST(EventQueueTest, CancellingAllEqualTimeEventsLeavesQueueClean)
{
  EventQueue q;
  int fired = 0;
  std::vector<EventId> ids;
  for (int i = 0; i < 50; ++i)
    ids.push_back(q.Schedule(Seconds(2.0), [&] { ++fired; }));
  for (const EventId id : ids)
    q.Cancel(id);
  EXPECT_EQ(q.PendingCount(), 0u);
  q.RunUntil(Seconds(5.0));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(q.executed_count(), 0u);
  EXPECT_TRUE(q.Empty());
  EXPECT_NEAR(q.Now().value(), 5.0, 1e-12);
}

TEST(EventQueueTest, CancelDuringExecutionSuppressesLaterEqualTimeEvent)
{
  // An event may cancel a sibling scheduled for the same instant that
  // has not yet run; the sibling must then be skipped even though it is
  // already at the top of the heap region being drained.
  EventQueue q;
  std::vector<int> order;
  EventId second = 0;
  q.Schedule(Seconds(1.0), [&] {
    order.push_back(1);
    q.Cancel(second);
  });
  second = q.Schedule(Seconds(1.0), [&] { order.push_back(2); });
  q.Schedule(Seconds(1.0), [&] { order.push_back(3); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, ChurnedPeriodicRescheduleKeepsDeterministicOrder)
{
  // Cancel-and-reschedule loops (the pattern telemetry pollers use)
  // must produce the same trace every run: two identical queues driven
  // identically yield identical event sequences.
  const auto drive = [] {
    EventQueue q;
    std::vector<std::pair<double, int>> trace;
    std::vector<EventId> pending;
    for (int i = 0; i < 8; ++i) {
      const EventId id = q.Schedule(Seconds(1.0 + 0.5 * i), [&trace, &q, i] {
        trace.push_back({q.Now().value(), i});
      });
      pending.push_back(id);
    }
    // Churn: cancel half, reschedule replacements at colliding times.
    for (int i = 0; i < 8; i += 2)
      q.Cancel(pending[static_cast<std::size_t>(i)]);
    for (int i = 0; i < 8; i += 2) {
      q.Schedule(Seconds(2.0), [&trace, &q, i] {
        trace.push_back({q.Now().value(), 100 + i});
      });
    }
    q.RunAll();
    return trace;
  };
  EXPECT_EQ(drive(), drive());
}

TEST(EventQueueTest, ObserverSeesEveryExecutedEvent)
{
  EventQueue q;
  std::vector<double> observed;
  q.SetObserver([&](Seconds now) { observed.push_back(now.value()); });
  q.Schedule(Seconds(1.0), [] {});
  const EventId cancelled = q.Schedule(Seconds(1.5), [] {});
  q.Schedule(Seconds(2.0), [] {});
  q.Cancel(cancelled);
  q.RunAll();
  ASSERT_EQ(observed.size(), 2u);  // cancelled events are not observed
  EXPECT_NEAR(observed[0], 1.0, 1e-12);
  EXPECT_NEAR(observed[1], 2.0, 1e-12);
  EXPECT_EQ(q.executed_count(), 2u);

  // Step() drives the observer too, and the observer can be detached.
  q.Schedule(Seconds(3.0), [] {});
  EXPECT_TRUE(q.Step());
  EXPECT_EQ(observed.size(), 3u);
  q.SetObserver(nullptr);
  q.Schedule(Seconds(4.0), [] {});
  q.RunAll();
  EXPECT_EQ(observed.size(), 3u);
  EXPECT_EQ(q.executed_count(), 4u);
}

TEST(EventQueueTest, MultipleObserversAllSeeEachEvent)
{
  EventQueue q;
  int first = 0;
  int second = 0;
  const ObserverId first_id = q.AddObserver([&](Seconds) { ++first; });
  q.AddObserver([&](Seconds) { ++second; });
  EXPECT_EQ(q.observer_count(), 2u);
  q.Schedule(Seconds(1.0), [] {});
  q.Schedule(Seconds(2.0), [] {});
  q.RunAll();
  EXPECT_EQ(first, 2);
  EXPECT_EQ(second, 2);

  // Removing one observer leaves the other attached.
  q.RemoveObserver(first_id);
  EXPECT_EQ(q.observer_count(), 1u);
  q.Schedule(Seconds(3.0), [] {});
  q.RunAll();
  EXPECT_EQ(first, 2);
  EXPECT_EQ(second, 3);
  // Removing an already-removed id is a harmless no-op.
  EXPECT_NO_THROW(q.RemoveObserver(first_id));
  EXPECT_THROW(q.AddObserver(nullptr), ConfigError);
}

TEST(EventQueueTest, LegacySetObserverCoexistsWithAddObserver)
{
  EventQueue q;
  int legacy = 0;
  int registered = 0;
  q.AddObserver([&](Seconds) { ++registered; });
  q.SetObserver([&](Seconds) { ++legacy; });
  q.Schedule(Seconds(1.0), [] {});
  q.RunAll();
  EXPECT_EQ(registered, 1);
  EXPECT_EQ(legacy, 1);

  // SetObserver replaces only the legacy slot, never AddObserver's.
  int replacement = 0;
  q.SetObserver([&](Seconds) { ++replacement; });
  q.Schedule(Seconds(2.0), [] {});
  q.RunAll();
  EXPECT_EQ(legacy, 1);
  EXPECT_EQ(replacement, 1);
  EXPECT_EQ(registered, 2);

  // And SetObserver(nullptr) detaches only the legacy slot.
  q.SetObserver(nullptr);
  EXPECT_EQ(q.observer_count(), 1u);
  q.Schedule(Seconds(3.0), [] {});
  q.RunAll();
  EXPECT_EQ(replacement, 1);
  EXPECT_EQ(registered, 3);
}

// ---------------------------------------------------------------------------
// Backing-store matrix: every ordering guarantee must hold identically on
// the binary heap and on the two-level calendar wheel (including events
// past the wheel span, which the calendar parks in its far-future heap).
// ---------------------------------------------------------------------------

class EventQueueImplTest : public ::testing::TestWithParam<EventQueue::Impl> {
};

TEST_P(EventQueueImplTest, SameTimestampFifoStability)
{
  EventQueue q(GetParam());
  std::vector<int> order;
  for (int i = 0; i < 200; ++i)
    q.Schedule(Seconds(1.0), [&order, i] { order.push_back(i); });
  q.RunAll();
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST_P(EventQueueImplTest, CancelThenRescheduleChurn)
{
  // The telemetry-poller pattern: cancel a pending event and put a
  // replacement at a colliding timestamp, repeatedly. Survivors and
  // replacements must fire in exact schedule order.
  EventQueue q(GetParam());
  std::vector<int> order;
  std::vector<EventId> pending;
  for (int i = 0; i < 40; ++i) {
    pending.push_back(
        q.Schedule(Seconds(2.0 + 0.25 * (i % 4)), [&order, i] {
          order.push_back(i);
        }));
  }
  for (int i = 0; i < 40; i += 2)
    q.Cancel(pending[static_cast<std::size_t>(i)]);
  for (int i = 0; i < 40; i += 2) {
    q.Schedule(Seconds(2.0 + 0.25 * (i % 4)), [&order, i] {
      order.push_back(1000 + i);
    });
  }
  q.RunAll();
  ASSERT_EQ(order.size(), 40u);
  // Same timestamp bucket => original survivors (odd labels) precede the
  // rescheduled replacements, each group in insertion order.
  std::vector<int> expected;
  for (int slot = 0; slot < 4; ++slot) {
    for (int i = 0; i < 40; ++i)
      if (i % 4 == slot && i % 2 == 1)
        expected.push_back(i);
    for (int i = 0; i < 40; i += 2)
      if (i % 4 == slot)
        expected.push_back(1000 + i);
  }
  EXPECT_EQ(order, expected);
}

TEST_P(EventQueueImplTest, ObserversFireInInstallationOrderAfterEachEvent)
{
  EventQueue q(GetParam());
  std::vector<int> sequence;
  q.AddObserver([&](Seconds) { sequence.push_back(1); });
  q.AddObserver([&](Seconds) { sequence.push_back(2); });
  q.Schedule(Seconds(1.0), [&] { sequence.push_back(0); });
  q.Schedule(Seconds(2.0), [&] { sequence.push_back(0); });
  q.RunAll();
  EXPECT_EQ(sequence, (std::vector<int>{0, 1, 2, 0, 1, 2}));
}

TEST_P(EventQueueImplTest, FarFutureEventsBeyondTheWheelSpan)
{
  // The calendar wheel spans ~51.2 s; everything past it lives in the
  // far-future heap until the wheel rotates forward. Interleave near and
  // far events and verify global time order either way.
  EventQueue q(GetParam());
  std::vector<double> fired;
  const auto record = [&] { fired.push_back(q.Now().value()); };
  q.Schedule(Seconds(500.0), record);
  q.Schedule(Seconds(1.0), record);
  q.Schedule(Seconds(100.0), record);
  q.Schedule(Seconds(51.3), record);
  q.Schedule(Seconds(0.01), record);
  q.Schedule(Seconds(2000.0), record);
  q.RunAll();
  const std::vector<double> expected{0.01, 1.0, 51.3, 100.0, 500.0, 2000.0};
  ASSERT_EQ(fired.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_NEAR(fired[i], expected[i], 1e-9);
  EXPECT_NEAR(q.Now().value(), 2000.0, 1e-9);
}

TEST_P(EventQueueImplTest, EventsLandingBehindARebasedWheelStillRun)
{
  // After the wheel rebases onto a far-future event, a handler may
  // schedule a short-delay follow-up that lands "before" the new wheel
  // origin's bucket grid; it must still run, in order.
  EventQueue q(GetParam());
  std::vector<double> fired;
  q.Schedule(Seconds(100.0), [&] {
    fired.push_back(q.Now().value());
    q.Schedule(Seconds(0.001), [&] { fired.push_back(q.Now().value()); });
    q.Schedule(Seconds(0.0), [&] { fired.push_back(q.Now().value()); });
  });
  q.RunAll();
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_NEAR(fired[0], 100.0, 1e-9);
  EXPECT_NEAR(fired[1], 100.0, 1e-9);    // zero-delay follow-up
  EXPECT_NEAR(fired[2], 100.001, 1e-9);  // then the 1 ms one
}

TEST_P(EventQueueImplTest, PeriodicTicksAcrossManyWheelRotations)
{
  EventQueue q(GetParam());
  int ticks = 0;
  double last = 0.0;
  SchedulePeriodic(q, Seconds(1.7), [&] {
    ++ticks;
    EXPECT_NEAR(q.Now().value() - last, 1.7, 1e-9);
    last = q.Now().value();
    return q.Now() < Seconds(400.0);
  });
  q.RunUntil(Seconds(500.0));
  EXPECT_EQ(ticks, 236);  // ceil(400 / 1.7): last tick at 401.2 s
}

TEST_P(EventQueueImplTest, CancelFarFutureEvent)
{
  EventQueue q(GetParam());
  int fired = 0;
  const EventId far = q.Schedule(Seconds(300.0), [&] { ++fired; });
  q.Schedule(Seconds(400.0), [&] { ++fired; });
  q.Cancel(far);
  EXPECT_EQ(q.PendingCount(), 1u);
  q.RunAll();
  EXPECT_EQ(fired, 1);
  EXPECT_NEAR(q.Now().value(), 400.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Impls, EventQueueImplTest,
    ::testing::Values(EventQueue::Impl::kCalendar, EventQueue::Impl::kHeap),
    [](const ::testing::TestParamInfo<EventQueue::Impl>& info) {
      return info.param == EventQueue::Impl::kCalendar ? "Calendar" : "Heap";
    });

TEST(EventQueueEquivalenceTest, RandomizedTraceMatchesBetweenImpls)
{
  // Drive both implementations with the same pseudo-random schedule /
  // cancel / horizon workload and require identical execution traces.
  const auto drive = [](EventQueue::Impl impl, std::uint64_t seed) {
    EventQueue q(impl);
    Rng rng(seed);
    std::vector<std::pair<double, int>> trace;
    std::vector<EventId> live;
    int label = 0;
    for (int round = 0; round < 50; ++round) {
      const int burst = static_cast<int>(rng.UniformInt(1, 8));
      for (int i = 0; i < burst; ++i) {
        // Mix sub-bucket, cross-bucket, and far-future delays.
        const double delay = rng.Bernoulli(0.2)
                                 ? rng.Uniform(60.0, 300.0)
                                 : rng.Uniform(0.0, 10.0);
        const int this_label = label++;
        live.push_back(q.Schedule(Seconds(delay), [&trace, &q, this_label] {
          trace.push_back({q.Now().value(), this_label});
        }));
      }
      while (!live.empty() && rng.Bernoulli(0.3)) {
        const std::size_t victim = static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
        q.Cancel(live[victim]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      }
      q.RunUntil(q.Now() + Seconds(rng.Uniform(0.0, 20.0)));
    }
    q.RunAll();
    return trace;
  };
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    EXPECT_EQ(drive(EventQueue::Impl::kCalendar, seed),
              drive(EventQueue::Impl::kHeap, seed))
        << "trace diverged at seed " << seed;
  }
}

}  // namespace
}  // namespace flex::sim
