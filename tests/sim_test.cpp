/**
 * @file
 * Unit tests for the discrete-event simulation kernel.
 */
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/event_queue.hpp"

namespace flex::sim {
namespace {

TEST(EventQueueTest, RunsEventsInTimeOrder)
{
  EventQueue q;
  std::vector<int> order;
  q.Schedule(Seconds(3.0), [&] { order.push_back(3); });
  q.Schedule(Seconds(1.0), [&] { order.push_back(1); });
  q.Schedule(Seconds(2.0), [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_NEAR(q.Now().value(), 3.0, 1e-12);
}

TEST(EventQueueTest, EqualTimestampsFireFifo)
{
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    q.Schedule(Seconds(1.0), [&order, i] { order.push_back(i); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, RunUntilStopsAtHorizon)
{
  EventQueue q;
  int fired = 0;
  q.Schedule(Seconds(1.0), [&] { ++fired; });
  q.Schedule(Seconds(5.0), [&] { ++fired; });
  const std::size_t executed = q.RunUntil(Seconds(2.0));
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_NEAR(q.Now().value(), 2.0, 1e-12);
  EXPECT_EQ(q.PendingCount(), 1u);
  q.RunUntil(Seconds(10.0));
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, TimeAdvancesToHorizonEvenWhenIdle)
{
  EventQueue q;
  q.RunUntil(Seconds(42.0));
  EXPECT_NEAR(q.Now().value(), 42.0, 1e-12);
}

TEST(EventQueueTest, CancelPreventsExecution)
{
  EventQueue q;
  int fired = 0;
  const EventId id = q.Schedule(Seconds(1.0), [&] { ++fired; });
  q.Schedule(Seconds(2.0), [&] { ++fired; });
  q.Cancel(id);
  q.RunAll();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, CancelIsIdempotentAndToleratesBadIds)
{
  EventQueue q;
  const EventId id = q.Schedule(Seconds(1.0), [] {});
  q.Cancel(id);
  q.Cancel(id);
  q.Cancel(0);
  q.Cancel(9999);
  EXPECT_NO_THROW(q.RunAll());
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents)
{
  EventQueue q;
  std::vector<double> times;
  q.Schedule(Seconds(1.0), [&] {
    times.push_back(q.Now().value());
    q.Schedule(Seconds(1.0), [&] { times.push_back(q.Now().value()); });
  });
  q.RunAll();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_NEAR(times[0], 1.0, 1e-12);
  EXPECT_NEAR(times[1], 2.0, 1e-12);
}

TEST(EventQueueTest, ScheduleAtAbsoluteTime)
{
  EventQueue q;
  q.RunUntil(Seconds(5.0));
  double fired_at = -1.0;
  q.ScheduleAt(Seconds(8.0), [&] { fired_at = q.Now().value(); });
  EXPECT_THROW(q.ScheduleAt(Seconds(3.0), [] {}), ConfigError);
  q.RunAll();
  EXPECT_NEAR(fired_at, 8.0, 1e-12);
}

TEST(EventQueueTest, RejectsNegativeDelay)
{
  EventQueue q;
  EXPECT_THROW(q.Schedule(Seconds(-1.0), [] {}), ConfigError);
}

TEST(EventQueueTest, StepRunsExactlyOneEvent)
{
  EventQueue q;
  int fired = 0;
  q.Schedule(Seconds(1.0), [&] { ++fired; });
  q.Schedule(Seconds(2.0), [&] { ++fired; });
  EXPECT_TRUE(q.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.Step());
  EXPECT_FALSE(q.Step());
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, PeriodicTicksUntilCallbackReturnsFalse)
{
  EventQueue q;
  int ticks = 0;
  SchedulePeriodic(q, Seconds(1.5), [&] {
    ++ticks;
    return ticks < 4;
  });
  q.RunUntil(Seconds(100.0));
  EXPECT_EQ(ticks, 4);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, PeriodicTickSpacingMatchesPeriod)
{
  EventQueue q;
  std::vector<double> times;
  SchedulePeriodic(q, Seconds(2.0), [&] {
    times.push_back(q.Now().value());
    return times.size() < 3;
  });
  q.RunAll();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_NEAR(times[0], 2.0, 1e-12);
  EXPECT_NEAR(times[1], 4.0, 1e-12);
  EXPECT_NEAR(times[2], 6.0, 1e-12);
}

TEST(EventQueueTest, PendingCountTracksLiveEvents)
{
  EventQueue q;
  const EventId a = q.Schedule(Seconds(1.0), [] {});
  q.Schedule(Seconds(2.0), [] {});
  EXPECT_EQ(q.PendingCount(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.PendingCount(), 1u);
  q.RunAll();
  EXPECT_EQ(q.PendingCount(), 0u);
  EXPECT_TRUE(q.Empty());
}

// ---------------------------------------------------------------------------
// Regressions: lazy cancellation under churn must not disturb the FIFO
// guarantee for equal timestamps, and cancelled entries must never leak
// into execution or the executed-event count.
// ---------------------------------------------------------------------------

TEST(EventQueueTest, FifoOrderSurvivesHeavyCancelChurn)
{
  // Interleave live and doomed events at the same timestamp, cancel
  // every other one, and verify the survivors still fire in exact
  // insertion order. Lazy cancellation leaves tombstones in the heap;
  // popping them must not reorder equal-time survivors.
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> doomed;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 20; ++i) {
      const int label = round * 100 + i;
      const EventId id =
          q.Schedule(Seconds(1.0), [&order, label] { order.push_back(label); });
      if (i % 2 == 1)
        doomed.push_back(id);
    }
  }
  for (const EventId id : doomed)
    q.Cancel(id);
  q.RunAll();
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_LT(order[i - 1], order[i]) << "FIFO order broken at " << i;
  EXPECT_EQ(q.executed_count(), 100u);
}

TEST(EventQueueTest, CancellingAllEqualTimeEventsLeavesQueueClean)
{
  EventQueue q;
  int fired = 0;
  std::vector<EventId> ids;
  for (int i = 0; i < 50; ++i)
    ids.push_back(q.Schedule(Seconds(2.0), [&] { ++fired; }));
  for (const EventId id : ids)
    q.Cancel(id);
  EXPECT_EQ(q.PendingCount(), 0u);
  q.RunUntil(Seconds(5.0));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(q.executed_count(), 0u);
  EXPECT_TRUE(q.Empty());
  EXPECT_NEAR(q.Now().value(), 5.0, 1e-12);
}

TEST(EventQueueTest, CancelDuringExecutionSuppressesLaterEqualTimeEvent)
{
  // An event may cancel a sibling scheduled for the same instant that
  // has not yet run; the sibling must then be skipped even though it is
  // already at the top of the heap region being drained.
  EventQueue q;
  std::vector<int> order;
  EventId second = 0;
  q.Schedule(Seconds(1.0), [&] {
    order.push_back(1);
    q.Cancel(second);
  });
  second = q.Schedule(Seconds(1.0), [&] { order.push_back(2); });
  q.Schedule(Seconds(1.0), [&] { order.push_back(3); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, ChurnedPeriodicRescheduleKeepsDeterministicOrder)
{
  // Cancel-and-reschedule loops (the pattern telemetry pollers use)
  // must produce the same trace every run: two identical queues driven
  // identically yield identical event sequences.
  const auto drive = [] {
    EventQueue q;
    std::vector<std::pair<double, int>> trace;
    std::vector<EventId> pending;
    for (int i = 0; i < 8; ++i) {
      const EventId id = q.Schedule(Seconds(1.0 + 0.5 * i), [&trace, &q, i] {
        trace.push_back({q.Now().value(), i});
      });
      pending.push_back(id);
    }
    // Churn: cancel half, reschedule replacements at colliding times.
    for (int i = 0; i < 8; i += 2)
      q.Cancel(pending[static_cast<std::size_t>(i)]);
    for (int i = 0; i < 8; i += 2) {
      q.Schedule(Seconds(2.0), [&trace, &q, i] {
        trace.push_back({q.Now().value(), 100 + i});
      });
    }
    q.RunAll();
    return trace;
  };
  EXPECT_EQ(drive(), drive());
}

TEST(EventQueueTest, ObserverSeesEveryExecutedEvent)
{
  EventQueue q;
  std::vector<double> observed;
  q.SetObserver([&](Seconds now) { observed.push_back(now.value()); });
  q.Schedule(Seconds(1.0), [] {});
  const EventId cancelled = q.Schedule(Seconds(1.5), [] {});
  q.Schedule(Seconds(2.0), [] {});
  q.Cancel(cancelled);
  q.RunAll();
  ASSERT_EQ(observed.size(), 2u);  // cancelled events are not observed
  EXPECT_NEAR(observed[0], 1.0, 1e-12);
  EXPECT_NEAR(observed[1], 2.0, 1e-12);
  EXPECT_EQ(q.executed_count(), 2u);

  // Step() drives the observer too, and the observer can be detached.
  q.Schedule(Seconds(3.0), [] {});
  EXPECT_TRUE(q.Step());
  EXPECT_EQ(observed.size(), 3u);
  q.SetObserver(nullptr);
  q.Schedule(Seconds(4.0), [] {});
  q.RunAll();
  EXPECT_EQ(observed.size(), 3u);
  EXPECT_EQ(q.executed_count(), 4u);
}

TEST(EventQueueTest, MultipleObserversAllSeeEachEvent)
{
  EventQueue q;
  int first = 0;
  int second = 0;
  const ObserverId first_id = q.AddObserver([&](Seconds) { ++first; });
  q.AddObserver([&](Seconds) { ++second; });
  EXPECT_EQ(q.observer_count(), 2u);
  q.Schedule(Seconds(1.0), [] {});
  q.Schedule(Seconds(2.0), [] {});
  q.RunAll();
  EXPECT_EQ(first, 2);
  EXPECT_EQ(second, 2);

  // Removing one observer leaves the other attached.
  q.RemoveObserver(first_id);
  EXPECT_EQ(q.observer_count(), 1u);
  q.Schedule(Seconds(3.0), [] {});
  q.RunAll();
  EXPECT_EQ(first, 2);
  EXPECT_EQ(second, 3);
  // Removing an already-removed id is a harmless no-op.
  EXPECT_NO_THROW(q.RemoveObserver(first_id));
  EXPECT_THROW(q.AddObserver(nullptr), ConfigError);
}

TEST(EventQueueTest, LegacySetObserverCoexistsWithAddObserver)
{
  EventQueue q;
  int legacy = 0;
  int registered = 0;
  q.AddObserver([&](Seconds) { ++registered; });
  q.SetObserver([&](Seconds) { ++legacy; });
  q.Schedule(Seconds(1.0), [] {});
  q.RunAll();
  EXPECT_EQ(registered, 1);
  EXPECT_EQ(legacy, 1);

  // SetObserver replaces only the legacy slot, never AddObserver's.
  int replacement = 0;
  q.SetObserver([&](Seconds) { ++replacement; });
  q.Schedule(Seconds(2.0), [] {});
  q.RunAll();
  EXPECT_EQ(legacy, 1);
  EXPECT_EQ(replacement, 1);
  EXPECT_EQ(registered, 2);

  // And SetObserver(nullptr) detaches only the legacy slot.
  q.SetObserver(nullptr);
  EXPECT_EQ(q.observer_count(), 1u);
  q.Schedule(Seconds(3.0), [] {});
  q.RunAll();
  EXPECT_EQ(replacement, 1);
  EXPECT_EQ(registered, 3);
}

}  // namespace
}  // namespace flex::sim
