/**
 * @file
 * Tests for multi-room site placement, oversubscription composition,
 * and power-emergency notifications.
 */
#include <gtest/gtest.h>

#include "analysis/oversubscription.hpp"
#include "common/error.hpp"
#include "offline/metrics.hpp"
#include "offline/site.hpp"
#include "online/notifications.hpp"
#include "power/loads.hpp"
#include "workload/trace.hpp"

namespace flex {
namespace {

power::RoomConfig
SmallRoom()
{
  power::RoomConfig config;
  config.ups_capacity = KiloWatts(600.0);
  config.pdu_pairs_per_ups_pair = 1;
  config.rows_per_pdu_pair = 2;
  config.racks_per_row = 10;
  return config;
}

TEST(SitePlacerTest, OverflowRoutesToLaterRooms)
{
  const power::RoomTopology room_a{SmallRoom()};
  const power::RoomTopology room_b{SmallRoom()};
  const power::RoomTopology room_c{SmallRoom()};
  offline::SitePlacer site(
      {&room_a, &room_b, &room_c},
      [] { return std::make_unique<offline::BalancedRoundRobinPolicy>(); });

  // Demand sized for ~2.2 rooms.
  Rng rng(41);
  workload::TraceConfig config;
  config.demand_multiple = 2.2;
  const auto trace = workload::GenerateTrace(
      config, room_a.TotalProvisionedPower(), rng);

  const offline::SitePlacement placement = site.Place(trace);
  ASSERT_EQ(placement.rooms.size(), 3u);
  // Every room took something; the site placed most of the demand.
  EXPECT_GT(placement.rooms[0].NumPlaced(), 0);
  EXPECT_GT(placement.rooms[1].NumPlaced(), 0);
  EXPECT_GT(placement.PlacedFraction(trace), 0.80);
  // Each room individually remains safe.
  for (std::size_t r = 0; r < 3; ++r) {
    if (placement.rooms[r].deployments.empty())
      continue;
    const power::RoomTopology& room =
        r == 0 ? room_a : (r == 1 ? room_b : room_c);
    EXPECT_TRUE(power::ValidateFailoverSafety(
                    room, placement.rooms[r].CappedPduLoads(room))
                    .safe);
  }
}

TEST(SitePlacerTest, NoDoublePlacementAcrossRooms)
{
  const power::RoomTopology room_a{SmallRoom()};
  const power::RoomTopology room_b{SmallRoom()};
  offline::SitePlacer site(
      {&room_a, &room_b},
      [] { return std::make_unique<offline::FirstFitPolicy>(); });
  Rng rng(43);
  workload::TraceConfig config;
  config.demand_multiple = 1.6;
  const auto trace = workload::GenerateTrace(
      config, room_a.TotalProvisionedPower(), rng);
  const offline::SitePlacement placement = site.Place(trace);

  std::set<workload::DeploymentId> placed_ids;
  for (const offline::Placement& room : placement.rooms) {
    for (std::size_t i = 0; i < room.deployments.size(); ++i) {
      if (room.assignment[i].has_value()) {
        EXPECT_TRUE(placed_ids.insert(room.deployments[i].id).second)
            << "deployment placed twice";
      }
    }
  }
  for (const workload::Deployment& d : placement.unplaced)
    EXPECT_EQ(placed_ids.count(d.id), 0u);
  // Conservation: placed + unplaced = trace.
  EXPECT_EQ(placed_ids.size() + placement.unplaced.size(), trace.size());
}

TEST(SitePlacerTest, SingleRoomBehavesLikeThePolicyAlone)
{
  const power::RoomTopology room{SmallRoom()};
  offline::SitePlacer site(
      {&room},
      [] { return std::make_unique<offline::BalancedRoundRobinPolicy>(); });
  Rng rng(47);
  const auto trace = workload::GenerateTrace(
      workload::TraceConfig{}, room.TotalProvisionedPower(), rng);
  const offline::SitePlacement via_site = site.Place(trace);
  offline::BalancedRoundRobinPolicy direct;
  const offline::Placement via_policy = direct.Place(room, trace);
  EXPECT_NEAR(via_site.PlacedPower().value(),
              via_policy.PlacedPower().value(), 1e-6);
}

TEST(SitePlacerTest, Validation)
{
  EXPECT_THROW(
      offline::SitePlacer({}, [] {
        return std::unique_ptr<offline::PlacementPolicy>{};
      }),
      ConfigError);
  const power::RoomTopology room{SmallRoom()};
  EXPECT_THROW(offline::SitePlacer({&room, nullptr},
                                   [] {
                                     return std::make_unique<
                                         offline::FirstFitPolicy>();
                                   }),
               ConfigError);
}

TEST(OversubscriptionTest, AggregationAllowsOversubscription)
{
  analysis::OversubscriptionParams params;
  const analysis::OversubscriptionResult result =
      analysis::EvaluateOversubscription(params);
  // 600 racks at mean 72% with tiny aggregate stddev: the quantile sits
  // well under 100% of nameplate, so the ratio clears 1.3x.
  EXPECT_GT(result.oversubscription_ratio, 1.2);
  EXPECT_LT(result.oversubscription_ratio, 1.5);
  EXPECT_LE(result.provisioning_quantile, 1.0);
}

TEST(OversubscriptionTest, FewerRacksMeansLessSmoothing)
{
  analysis::OversubscriptionParams many;
  analysis::OversubscriptionParams few = many;
  few.num_racks = 4;
  EXPECT_LT(analysis::EvaluateOversubscription(few).oversubscription_ratio,
            analysis::EvaluateOversubscription(many).oversubscription_ratio);
}

TEST(OversubscriptionTest, CombinedGainStacksWithFlex)
{
  // Paper: Flex alone gives +33% (4N/3); stacked with ~1.3x
  // oversubscription the total clears +70%.
  const double gain = analysis::CombinedDensityGain(4, 3, 1.3);
  EXPECT_NEAR(gain, 4.0 / 3.0 * 1.3 - 1.0, 1e-12);
  EXPECT_GT(gain, 0.70);
  // No oversubscription: pure Flex.
  EXPECT_NEAR(analysis::CombinedDensityGain(4, 3, 1.0), 1.0 / 3.0, 1e-12);
}

TEST(OversubscriptionTest, InverseNormalCdfSanity)
{
  EXPECT_NEAR(analysis::InverseNormalCdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(analysis::InverseNormalCdf(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(analysis::InverseNormalCdf(0.0228), -2.0, 0.01);
  EXPECT_THROW(analysis::InverseNormalCdf(0.0), ConfigError);
  EXPECT_THROW(analysis::InverseNormalCdf(1.0), ConfigError);
}

TEST(NotificationBusTest, RoutesByWorkload)
{
  online::NotificationBus bus;
  int search_events = 0;
  int all_events = 0;
  bus.Subscribe("websearch", [&](const online::PowerEmergencyNotification&) {
    ++search_events;
  });
  bus.Subscribe("", [&](const online::PowerEmergencyNotification&) {
    ++all_events;
  });

  online::PowerEmergencyNotification n;
  n.workload = "websearch";
  n.racks = {1, 2, 3};
  bus.Publish(n);
  n.workload = "analytics";
  bus.Publish(n);

  EXPECT_EQ(search_events, 1);
  EXPECT_EQ(all_events, 2);
  EXPECT_EQ(bus.published_count(), 2u);
}

TEST(NotificationBusTest, RejectsNullCallback)
{
  online::NotificationBus bus;
  EXPECT_THROW(bus.Subscribe("x", nullptr), ConfigError);
}

}  // namespace
}  // namespace flex
