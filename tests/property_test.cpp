/**
 * @file
 * Property-based tests: invariants that must hold across randomized
 * inputs and parameter sweeps, checked with parameterized gtest.
 */
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "offline/metrics.hpp"
#include "offline/policies.hpp"
#include "online/decision.hpp"
#include "fault/scenario.hpp"
#include "power/incremental.hpp"
#include "power/loads.hpp"
#include "solver/branch_and_bound.hpp"
#include "workload/rack_power.hpp"
#include "workload/trace.hpp"

namespace flex {
namespace {

using offline::BalancedRoundRobinPolicy;
using offline::FirstFitPolicy;
using offline::Placement;
using offline::RandomPolicy;
using power::RoomConfig;
using power::RoomTopology;
using workload::Category;

// ---------------------------------------------------------------------------
// Solver: branch-and-bound must match brute-force enumeration on random
// small binary programs.
// ---------------------------------------------------------------------------

class SolverExactnessTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SolverExactnessTest, MatchesBruteForceOnRandomBinaryPrograms)
{
  Rng rng(GetParam());
  const int n = 10;
  const int m = 4;
  solver::Model model;
  std::vector<double> objective;
  for (int j = 0; j < n; ++j) {
    const double c = rng.Uniform(-5.0, 10.0);
    objective.push_back(c);
    model.AddBinary("b", c);
  }
  std::vector<std::vector<double>> rows;
  std::vector<double> rhs;
  for (int i = 0; i < m; ++i) {
    std::vector<std::pair<solver::VarIndex, double>> terms;
    std::vector<double> row;
    for (int j = 0; j < n; ++j) {
      const double a = rng.Uniform(0.0, 4.0);
      row.push_back(a);
      terms.push_back({j, a});
    }
    const double b = rng.Uniform(4.0, 12.0);
    rows.push_back(row);
    rhs.push_back(b);
    model.AddConstraint("c", std::move(terms), solver::Relation::kLessEqual,
                        b);
  }

  // Brute force over all 2^10 assignments.
  double best = 0.0;  // all-zeros is always feasible here
  for (int mask = 0; mask < (1 << n); ++mask) {
    bool feasible = true;
    for (int i = 0; i < m && feasible; ++i) {
      double lhs = 0.0;
      for (int j = 0; j < n; ++j) {
        if (mask & (1 << j))
          lhs += rows[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      }
      feasible = lhs <= rhs[static_cast<std::size_t>(i)] + 1e-9;
    }
    if (!feasible)
      continue;
    double value = 0.0;
    for (int j = 0; j < n; ++j) {
      if (mask & (1 << j))
        value += objective[static_cast<std::size_t>(j)];
    }
    best = std::max(best, value);
  }

  const solver::MipResult result =
      solver::BranchAndBoundSolver().Solve(model);
  ASSERT_TRUE(result.HasSolution());
  EXPECT_EQ(result.status, solver::MipStatus::kOptimal);
  EXPECT_NEAR(result.objective, best, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, SolverExactnessTest,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Power: failover conservation and share invariants across redundancy
// shapes.
// ---------------------------------------------------------------------------

class RedundancyShapeTest
    : public ::testing::TestWithParam<std::pair<int, int>> {
};

TEST_P(RedundancyShapeTest, FailoverConservesLoadAndSharesEvenly)
{
  const auto [x, y] = GetParam();
  RoomConfig config;
  config.num_ups = x;
  config.redundancy_y = y;
  config.ups_capacity = MegaWatts(1.0);
  const RoomTopology room{config};

  Rng rng(static_cast<std::uint64_t>(x * 100 + y));
  power::PduPairLoads loads;
  for (int p = 0; p < room.NumPduPairs(); ++p)
    loads.push_back(KiloWatts(rng.Uniform(10.0, 200.0)));
  double total = 0.0;
  for (const Watts w : loads)
    total += w.value();

  for (power::UpsId f = 0; f < room.NumUpses(); ++f) {
    const std::vector<Watts> after = power::FailoverUpsLoads(room, loads, f);
    double sum = 0.0;
    for (const Watts w : after)
      sum += w.value();
    EXPECT_NEAR(sum, total, 1e-6);
    EXPECT_NEAR(after[static_cast<std::size_t>(f)].value(), 0.0, 1e-9);
    // With uniform loads the share rule is exactly 1/(x-1); with random
    // loads it still holds structurally.
    for (power::UpsId u = 0; u < room.NumUpses(); ++u)
      EXPECT_NEAR(room.FailoverShare(f, u), u == f ? 0.0 : 1.0 / (x - 1),
                  1e-12);
  }
  // The failover budget fraction is y/x by construction.
  EXPECT_NEAR(room.FailoverBudget() / room.TotalProvisionedPower(),
              static_cast<double>(y) / x, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RedundancyShapeTest,
    ::testing::Values(std::make_pair(3, 2), std::make_pair(4, 3),
                      std::make_pair(5, 4), std::make_pair(5, 3),
                      std::make_pair(6, 5)));

// ---------------------------------------------------------------------------
// Placement: every policy must produce a safe room on every trace.
// ---------------------------------------------------------------------------

class PlacementSafetyTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
};

TEST_P(PlacementSafetyTest, AllPoliciesSatisfyEq2AndEq4)
{
  const auto [policy_index, seed] = GetParam();
  RoomConfig config;
  config.ups_capacity = KiloWatts(800.0);
  config.pdu_pairs_per_ups_pair = 1;
  config.rows_per_pdu_pair = 2;
  config.racks_per_row = 12;
  const RoomTopology room{config};

  Rng rng(seed);
  const auto trace = workload::GenerateTrace(
      workload::TraceConfig{}, room.TotalProvisionedPower(), rng);

  Placement placement;
  switch (policy_index) {
    case 0:
      placement = RandomPolicy(seed).Place(room, trace);
      break;
    case 1:
      placement = BalancedRoundRobinPolicy().Place(room, trace);
      break;
    default:
      placement = FirstFitPolicy().Place(room, trace);
      break;
  }

  // Eq. 2: normal operation fits.
  EXPECT_TRUE(power::ValidateNormalOperation(
      room, placement.AllocatedPduLoads(room)));
  // Eq. 4: failover with corrective actions fits.
  EXPECT_TRUE(
      power::ValidateFailoverSafety(room, placement.CappedPduLoads(room))
          .safe);
  // Accounting: stranded + placed = provisioned.
  const Watts stranded =
      power::StrandedPower(room, placement.AllocatedPduLoads(room));
  EXPECT_NEAR((stranded + placement.PlacedPower()).value(),
              room.TotalProvisionedPower().value(), 1.0);
  // The rack layout expands exactly to the placed rack count.
  const auto layout = offline::BuildRackLayout(room, placement);
  int placed_racks = 0;
  for (std::size_t i = 0; i < placement.deployments.size(); ++i) {
    if (placement.assignment[i].has_value())
      placed_racks += placement.deployments[i].num_racks;
  }
  EXPECT_EQ(static_cast<int>(layout.size()), placed_racks);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, PlacementSafetyTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(11u, 22u, 33u, 44u)));

// ---------------------------------------------------------------------------
// Decisions: Algorithm 1 invariants across utilizations and scenarios.
// ---------------------------------------------------------------------------

class DecisionInvariantTest
    : public ::testing::TestWithParam<std::tuple<double, int>> {
};

TEST_P(DecisionInvariantTest, ActionsAreLegalAndEffective)
{
  const auto [utilization, scenario_index] = GetParam();
  const auto scenario =
      workload::ImpactScenario::AllScenarios()[static_cast<std::size_t>(
          scenario_index)];

  RoomConfig config;
  config.ups_capacity = KiloWatts(500.0);
  config.pdu_pairs_per_ups_pair = 1;
  const RoomTopology room{config};

  // Synthetic racks spread over all pairs, one third per category.
  Rng rng(777);
  online::DecisionInput input;
  input.impact.emplace("sr", scenario.software_redundant);
  input.impact.emplace("cap", scenario.capable);
  for (power::PduPairId p = 0; p < room.NumPduPairs(); ++p)
    input.pdu_to_ups.push_back(room.UpsesOfPduPair(p));
  power::PduPairLoads pdu_loads(
      static_cast<std::size_t>(room.NumPduPairs()), Watts(0.0));
  for (int i = 0; i < 120; ++i) {
    online::RackSnapshot rack;
    rack.rack_id = i;
    const int c = i % 3;
    rack.category = c == 0 ? Category::kSoftwareRedundant
                           : (c == 1 ? Category::kNonRedundantCapable
                                     : Category::kNonRedundantNonCapable);
    rack.workload = c == 0 ? "sr" : (c == 1 ? "cap" : "nc");
    rack.pdu_pair = i % room.NumPduPairs();
    const Watts allocation = KiloWatts(25.0);
    rack.current_power =
        allocation * rng.TruncatedNormal(utilization, 0.1, 0.3, 1.0);
    rack.flex_power = allocation * 0.8;
    pdu_loads[static_cast<std::size_t>(rack.pdu_pair)] += rack.current_power;
    input.racks.push_back(std::move(rack));
  }
  const std::vector<Watts> ups = power::FailoverUpsLoads(room, pdu_loads, 0);
  for (power::UpsId u = 0; u < room.NumUpses(); ++u) {
    input.ups_power.push_back(ups[static_cast<std::size_t>(u)]);
    input.ups_limit.push_back(room.UpsCapacity(u));
  }
  input.buffer = KiloWatts(5.0);

  const online::DecisionResult result = online::DecideActions(input);

  std::set<int> acted;
  for (const online::Action& action : result.actions) {
    // No duplicate actions.
    EXPECT_TRUE(acted.insert(action.rack_id).second);
    const auto& rack =
        input.racks[static_cast<std::size_t>(action.rack_id)];
    // Never act on non-cap-able racks.
    EXPECT_NE(rack.category, Category::kNonRedundantNonCapable);
    // Action type matches category (Algorithm 1 line 8).
    if (rack.category == Category::kSoftwareRedundant)
      EXPECT_EQ(action.type, online::ActionType::kShutdown);
    else
      EXPECT_EQ(action.type, online::ActionType::kThrottle);
    // Recovery is non-negative and bounded by the rack's power.
    EXPECT_GE(action.estimated_recovery.value(), -1e-9);
    EXPECT_LE(action.estimated_recovery.value(),
              rack.current_power.value() + 1e-9);
  }
  // Projected power never increases and is consistent with satisfied.
  double projected_total = 0.0;
  double input_total = 0.0;
  for (std::size_t u = 0; u < input.ups_power.size(); ++u) {
    EXPECT_LE(result.projected_ups_power[u].value(),
              input.ups_power[u].value() + 1e-9);
    projected_total += result.projected_ups_power[u].value();
    input_total += input.ups_power[u].value();
  }
  EXPECT_LE(projected_total, input_total + 1e-9);
  if (result.satisfied) {
    for (std::size_t u = 0; u < input.ups_power.size(); ++u) {
      EXPECT_LE(result.projected_ups_power[u].value(),
                (input.ups_limit[u] - input.buffer).value() + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    UtilizationsAndScenarios, DecisionInvariantTest,
    ::testing::Combine(::testing::Values(0.70, 0.78, 0.85, 0.95),
                       ::testing::Values(0, 1, 2, 3)));

// ---------------------------------------------------------------------------
// Rack power model: the rescaled snapshot hits any target utilization.
// ---------------------------------------------------------------------------

class RackPowerTargetTest : public ::testing::TestWithParam<double> {
};

TEST_P(RackPowerTargetTest, SnapshotHitsTargetAcrossUtilizations)
{
  const double target = GetParam();
  Rng rng(31337);
  const workload::RackPowerModel model;
  std::vector<Watts> allocations;
  for (int i = 0; i < 300; ++i)
    allocations.push_back(KiloWatts(10.0 + (i % 5)));
  const auto draws = model.SampleAtUtilization(allocations, target, rng);
  Watts total(0.0);
  Watts allocated(0.0);
  for (std::size_t i = 0; i < draws.size(); ++i) {
    total += draws[i];
    allocated += allocations[i];
    EXPECT_LE(draws[i].value(), allocations[i].value() + 1e-6);
    EXPECT_GE(draws[i].value(), 0.0);
  }
  EXPECT_NEAR(total / allocated, target, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Targets, RackPowerTargetTest,
                         ::testing::Values(0.45, 0.60, 0.74, 0.80, 0.85,
                                           0.92));

// ---------------------------------------------------------------------------
// Incremental aggregation: a randomized rack power-walk — arbitrary
// power deltas interleaved with failover edges and resyncs — must keep
// the running per-UPS sums equal to a brute-force rescan after every
// single mutation. 200 seeds, sharded like the fault-fuzz sweep so
// ctest spreads the work across workers; a failure names the seed.
// ---------------------------------------------------------------------------

class IncrementalAggregationWalkTest : public ::testing::TestWithParam<int> {
};

TEST_P(IncrementalAggregationWalkTest, RunningSumsMatchBruteForceRescan)
{
  constexpr int kSeedsPerShard = 25;
  constexpr int kSteps = 160;
  // Drift bound: ~1e2 deltas on ~1e7 W sums leaves O(1e-6) W of
  // accumulated rounding; 1e-3 W is far above that yet far below any
  // physically meaningful load difference.
  constexpr double kToleranceWatts = 1e-3;
  const std::uint64_t base =
      static_cast<std::uint64_t>(GetParam()) * kSeedsPerShard;
  for (std::uint64_t seed = base; seed < base + kSeedsPerShard; ++seed) {
    Rng rng(0x1caa6b11ull ^ (seed * 0x9e3779b97f4a7c15ull));

    // Random room shape per seed.
    RoomConfig config;
    config.num_ups = 3 + static_cast<int>(rng.NextU64() % 6);  // 3..8
    config.redundancy_y = config.num_ups - 1;
    config.ups_capacity = MegaWatts(2.0);
    config.pdu_pairs_per_ups_pair = 1 + static_cast<int>(rng.NextU64() % 3);
    const RoomTopology room{config};
    const auto num_pairs = static_cast<std::size_t>(room.NumPduPairs());

    power::IncrementalUpsLoads agg(room);
    power::PduPairLoads shadow(num_pairs, Watts(0.0));
    power::UpsId failed = -1;

    const auto check = [&](const char* op, int step) {
      // The PDU sums see the identical `+=` sequence as the shadow, so
      // they must match bit for bit.
      for (std::size_t p = 0; p < num_pairs; ++p) {
        ASSERT_EQ(agg.PduLoads()[p].value(), shadow[p].value())
            << "seed " << seed << " step " << step << " (" << op
            << ") pair " << p;
      }
      // The UPS sums may carry bounded `+= delta` rounding drift
      // relative to the fresh left-to-right brute-force sum.
      const std::vector<Watts> brute =
          failed < 0 ? power::NormalUpsLoads(room, shadow)
                     : power::FailoverUpsLoads(room, shadow, failed);
      ASSERT_EQ(agg.UpsLoads().size(), brute.size());
      for (std::size_t u = 0; u < brute.size(); ++u) {
        ASSERT_NEAR(agg.UpsLoads()[u].value(), brute[u].value(),
                    kToleranceWatts)
            << "seed " << seed << " step " << step << " (" << op
            << ") ups " << u << " after " << agg.delta_count() << " deltas";
      }
      ASSERT_LE(agg.MaxUpsErrorWatts(), kToleranceWatts)
          << "seed " << seed << " step " << step << " (" << op << ")";
    };

    for (int step = 0; step < kSteps; ++step) {
      const double dice = rng.NextDouble();
      if (dice < 0.08) {
        // Failover edge: fail a random UPS, or restore if one is down.
        failed = (failed >= 0 && rng.NextDouble() < 0.5)
                     ? -1
                     : static_cast<power::UpsId>(
                           rng.NextU64() %
                           static_cast<std::uint64_t>(room.NumUpses()));
        agg.SetFailedUps(failed);
        check("SetFailedUps", step);
      } else if (dice < 0.12) {
        // Exact resync: afterwards the running sums must equal the
        // rescan bit for bit, not just within tolerance.
        agg.Resync();
        const std::vector<Watts> rescan = agg.RescanUpsLoads();
        for (std::size_t u = 0; u < rescan.size(); ++u) {
          ASSERT_EQ(agg.UpsLoads()[u].value(), rescan[u].value())
              << "seed " << seed << " step " << step << " ups " << u;
        }
        check("Resync", step);
      } else if (dice < 0.15) {
        // Wholesale replacement (the workload-step path).
        for (std::size_t p = 0; p < num_pairs; ++p)
          shadow[p] = KiloWatts(rng.Uniform(0.0, 400.0));
        agg.SetAllPduLoads(shadow);
        check("SetAllPduLoads", step);
      } else {
        // The common case: one rack-sized power delta on one PDU pair,
        // clamped so the pair's load stays non-negative.
        const std::size_t p =
            static_cast<std::size_t>(rng.NextU64() % num_pairs);
        double delta_w = rng.Uniform(-30'000.0, 30'000.0);
        if (shadow[p].value() + delta_w < 0.0)
          delta_w = -shadow[p].value();
        shadow[p] += Watts(delta_w);
        agg.ApplyDelta(static_cast<power::PduPairId>(p), Watts(delta_w));
        check("ApplyDelta", step);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TwoHundredSeeds, IncrementalAggregationWalkTest,
                         ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Fault fuzzing: for any fault plan inside the paper's tolerated
// envelope, the online stack must keep every safety invariant — no UPS
// trips, no illegal rack action, no unsafe release, no missed overload.
// Sharded so ctest runs the 200-seed sweep in parallel; a failure
// prints the offending seed and its full fault plan for replay.
// ---------------------------------------------------------------------------

class FaultFuzzSweepTest : public ::testing::TestWithParam<int> {
};

TEST_P(FaultFuzzSweepTest, RandomFaultPlansKeepAllSafetyInvariants)
{
  constexpr int kSeedsPerShard = 25;
  const std::uint64_t base =
      static_cast<std::uint64_t>(GetParam()) * kSeedsPerShard;
  const fault::ScenarioConfig config;
  for (std::uint64_t seed = base; seed < base + kSeedsPerShard; ++seed) {
    std::string plan_trace;
    const fault::ScenarioReport report =
        fault::RunFuzzedScenario(config, seed, &plan_trace);
    EXPECT_TRUE(report.violations.empty())
        << "invariant violation for seed " << seed
        << " — replay with RunFuzzedScenario(config, " << seed << ")\n"
        << "fault plan:\n"
        << plan_trace << "violations:\n"
        << report.violation_summary;
    // The run must have exercised the room, not idled through it.
    EXPECT_GT(report.readings_delivered, 0u) << "seed " << seed;
    EXPECT_GT(report.events_executed, 0u) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(TwoHundredSeeds, FaultFuzzSweepTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace flex
