/**
 * @file
 * Tests for the deeper substrate features: battery energy model, PDU
 * 2N constraints, flex-power estimation via statistical multiplexing,
 * rack power forecasting, and corrective-model comparisons.
 */
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "offline/flex_offline.hpp"
#include "offline/placement.hpp"
#include "offline/policies.hpp"
#include "online/forecaster.hpp"
#include "power/battery.hpp"
#include "workload/flex_power_estimator.hpp"
#include "workload/trace.hpp"

namespace flex {
namespace {

using workload::Category;

// --- Battery model ---------------------------------------------------------

TEST(BatteryTest, CalibrationMatchesTripCurveAnchors)
{
  const Watts rated = MegaWatts(1.2);
  power::BatteryModel end_of_life(power::BatteryConfig::ForBatteryLife(
      power::BatteryLife::kEndOfLife, rated));
  power::BatteryModel begin_of_life(power::BatteryConfig::ForBatteryLife(
      power::BatteryLife::kBeginOfLife, rated));
  // 10 s / 30 s at the worst-case 133% failover load.
  EXPECT_NEAR(end_of_life.TimeToTrip(rated * (4.0 / 3.0)).value(), 10.0,
              0.2);
  EXPECT_NEAR(begin_of_life.TimeToTrip(rated * (4.0 / 3.0)).value(), 30.0,
              0.5);
}

TEST(BatteryTest, DeeperOverloadTripsDisproportionatelyFaster)
{
  const Watts rated = MegaWatts(1.2);
  power::BatteryModel battery(power::BatteryConfig::ForBatteryLife(
      power::BatteryLife::kEndOfLife, rated));
  const double t133 = battery.TimeToTrip(rated * 1.33).value();
  const double t200 = battery.TimeToTrip(rated * 2.0).value();
  // Peukert effect: 3x the overload, much less than 1/3 the time.
  EXPECT_LT(t200, t133 / 3.0);
  EXPECT_LT(t200, 2.0);
}

TEST(BatteryTest, AdvanceDrainsAndTrips)
{
  const Watts rated = KiloWatts(100.0);
  power::BatteryModel battery(power::BatteryConfig::ForBatteryLife(
      power::BatteryLife::kEndOfLife, rated));
  EXPECT_DOUBLE_EQ(battery.StateOfCharge(), 1.0);
  // Ride the 133% overload for 5 s: about half the budget gone.
  for (int i = 0; i < 5; ++i)
    battery.Advance(rated * (4.0 / 3.0), Seconds(1.0));
  EXPECT_FALSE(battery.tripped());
  EXPECT_NEAR(battery.StateOfCharge(), 0.5, 0.05);
  // Six more seconds exhausts it.
  for (int i = 0; i < 6; ++i)
    battery.Advance(rated * (4.0 / 3.0), Seconds(1.0));
  EXPECT_TRUE(battery.tripped());
  EXPECT_DOUBLE_EQ(battery.StateOfCharge(), 0.0);
}

TEST(BatteryTest, RechargesWhenUnderloaded)
{
  const Watts rated = KiloWatts(100.0);
  power::BatteryModel battery(power::BatteryConfig::ForBatteryLife(
      power::BatteryLife::kEndOfLife, rated));
  battery.Advance(rated * 1.33, Seconds(4.0));
  const double drained = battery.StateOfCharge();
  ASSERT_LT(drained, 1.0);
  battery.Advance(rated * 0.8, Minutes(10.0));
  EXPECT_GT(battery.StateOfCharge(), drained);
  EXPECT_LE(battery.StateOfCharge(), 1.0);
}

TEST(BatteryTest, AtOrBelowRatedNeverTrips)
{
  const Watts rated = KiloWatts(100.0);
  power::BatteryModel battery(power::BatteryConfig::ForBatteryLife(
      power::BatteryLife::kEndOfLife, rated));
  battery.Advance(rated, Hours(2.0));
  EXPECT_FALSE(battery.tripped());
  EXPECT_GE(battery.TimeToTrip(rated).value(), 1e6);
}

// --- PDU 2N constraint -----------------------------------------------------

TEST(PduConstraintTest, PairAllocationCappedAtSinglePduRating)
{
  power::RoomConfig config;
  config.ups_capacity = MegaWatts(2.4);
  config.pdu_rating = KiloWatts(300.0);  // deliberately binding
  config.pdu_pairs_per_ups_pair = 1;
  config.rows_per_pdu_pair = 2;
  config.racks_per_row = 20;
  const power::RoomTopology room{config};
  offline::CapacityTracker tracker(room);

  workload::Deployment d;
  d.id = 0;
  d.workload = "sr";
  d.category = Category::kSoftwareRedundant;
  d.num_racks = 10;
  d.power_per_rack = KiloWatts(20.0);  // 200 kW per deployment
  d.flex_power_fraction = 0.0;
  ASSERT_TRUE(tracker.CanPlace(d, 0));
  tracker.Place(d, 0);
  // A second 200 kW deployment would push the pair to 400 kW > 300 kW
  // even though slots and UPS power are plentiful.
  EXPECT_FALSE(tracker.CanPlace(d, 0));
  EXPECT_TRUE(tracker.CanPlace(d, 1));
}

// --- Corrective models -----------------------------------------------------

TEST(CorrectiveModelTest, CappedPowerPerModel)
{
  workload::Deployment sr;
  sr.id = 0;
  sr.workload = "sr";
  sr.category = Category::kSoftwareRedundant;
  sr.num_racks = 10;
  sr.power_per_rack = KiloWatts(10.0);
  sr.flex_power_fraction = 0.0;
  workload::Deployment cap = sr;
  cap.category = Category::kNonRedundantCapable;
  cap.flex_power_fraction = 0.8;

  using offline::CappedPowerUnder;
  using offline::CorrectiveModel;
  // Flex: SR shuts down entirely; cap-able throttles to flex power.
  EXPECT_NEAR(CappedPowerUnder(CorrectiveModel::kFlex, sr).value(), 0.0,
              1e-9);
  EXPECT_NEAR(CappedPowerUnder(CorrectiveModel::kFlex, cap).kilowatts(),
              80.0, 1e-6);
  // Throttle-only (CapMaestro-like): SR cannot be shut down.
  EXPECT_NEAR(
      CappedPowerUnder(CorrectiveModel::kThrottleOnly, sr).kilowatts(),
      100.0, 1e-6);
  EXPECT_NEAR(
      CappedPowerUnder(CorrectiveModel::kThrottleOnly, cap).kilowatts(),
      80.0, 1e-6);
  // Conventional: nothing recoverable.
  EXPECT_NEAR(CappedPowerUnder(CorrectiveModel::kNone, sr).kilowatts(),
              100.0, 1e-6);
}

TEST(CorrectiveModelTest, FlexUnlocksMoreReserveThanThrottleOnly)
{
  const power::RoomTopology room(power::RoomConfig::EvaluationRoom());
  Rng rng(2024);
  const auto trace = workload::GenerateTrace(
      workload::TraceConfig{}, room.TotalProvisionedPower(), rng);

  auto conventional = offline::MakeConventionalPolicy();
  auto capmaestro = offline::MakeCapMaestroLikePolicy();
  offline::BalancedRoundRobinPolicy flex;

  const Watts p_conventional =
      conventional.Place(room, trace).PlacedPower();
  const Watts p_capmaestro = capmaestro.Place(room, trace).PlacedPower();
  const Watts p_flex = flex.Place(room, trace).PlacedPower();

  // Conventional cannot exceed the failover budget.
  EXPECT_LE(p_conventional.value(), room.FailoverBudget().value() + 1e-3);
  // Throttle-only unlocks some reserve; Flex unlocks more.
  EXPECT_GT(p_capmaestro.value(), p_conventional.value());
  EXPECT_GT(p_flex.value(), p_capmaestro.value());
}

// --- Flex power estimation -------------------------------------------------

TEST(FlexPowerEstimatorTest, ColdRacksAllowDeepCaps)
{
  const workload::FlexPowerEstimator estimator;
  // Racks that never exceed 60%: capping at the minimum fraction is free.
  const std::vector<double> cold(200, 0.55);
  EXPECT_NEAR(estimator.EstimateFraction(cold),
              estimator.config().min_fraction, 1e-9);
}

TEST(FlexPowerEstimatorTest, HotRacksForceHighFlexPower)
{
  const workload::FlexPowerEstimator estimator;
  // Racks pinned at 95%: a cap at c cuts (0.95-c)/0.95; keeping that
  // under 10% needs c >= 0.855.
  const std::vector<double> hot(200, 0.95);
  const double fraction = estimator.EstimateFraction(hot);
  EXPECT_NEAR(fraction, 0.95 * 0.9, 0.01);
  EXPECT_NEAR(estimator.AverageReductionAt(hot, fraction), 0.10, 0.005);
}

TEST(FlexPowerEstimatorTest, MultiplexedMixLandsInThePapersRange)
{
  // A realistic spread of rack utilizations: statistical multiplexing
  // lets the estimator pick a cap in the paper's 0.75-0.85 band while
  // bounding average reduction at 10%.
  Rng rng(99);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i)
    samples.push_back(rng.TruncatedNormal(0.78, 0.10, 0.4, 1.0));
  const workload::FlexPowerEstimator estimator;
  const double fraction = estimator.EstimateFraction(samples);
  EXPECT_GT(fraction, 0.70);
  EXPECT_LT(fraction, 0.90);
  EXPECT_LE(estimator.AverageReductionAt(samples, fraction), 0.10 + 1e-6);
}

TEST(FlexPowerEstimatorTest, ReductionIsMonotoneInCap)
{
  Rng rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i)
    samples.push_back(rng.Uniform(0.5, 1.0));
  const workload::FlexPowerEstimator estimator;
  double previous = 1.0;
  for (double c = 0.5; c <= 1.0; c += 0.05) {
    const double reduction = estimator.AverageReductionAt(samples, c);
    EXPECT_LE(reduction, previous + 1e-12);
    previous = reduction;
  }
  EXPECT_NEAR(estimator.AverageReductionAt(samples, 1.0), 0.0, 1e-12);
}

TEST(FlexPowerEstimatorTest, ValidatesInputs)
{
  workload::FlexPowerEstimatorConfig bad;
  bad.min_fraction = 0.9;
  bad.max_fraction = 0.5;
  EXPECT_THROW(workload::FlexPowerEstimator{bad}, ConfigError);
  const workload::FlexPowerEstimator estimator;
  EXPECT_THROW(estimator.EstimateFraction({}), ConfigError);
}

// --- Forecaster ------------------------------------------------------------

TEST(ForecasterTest, FirstObservationIsTheForecast)
{
  online::HoltForecaster forecaster;
  EXPECT_FALSE(forecaster.Forecast(Seconds(0.0)).has_value());
  forecaster.Observe(Seconds(0.0), KiloWatts(10.0));
  const auto forecast = forecaster.Forecast(Seconds(2.0));
  ASSERT_TRUE(forecast);
  EXPECT_NEAR(forecast->kilowatts(), 10.0, 1e-9);
}

TEST(ForecasterTest, TracksALinearRamp)
{
  online::HoltForecaster forecaster(0.6, 0.4);
  // 1 kW/s ramp sampled every 2 s.
  for (int i = 0; i <= 20; ++i)
    forecaster.Observe(Seconds(2.0 * i), KiloWatts(10.0 + 2.0 * i));
  // Project 2 s ahead: should be near 52 kW (the ramp continued).
  const auto forecast = forecaster.Forecast(Seconds(42.0));
  ASSERT_TRUE(forecast);
  EXPECT_NEAR(forecast->kilowatts(), 52.0, 3.0);
}

TEST(ForecasterTest, DampsStaleExtrapolation)
{
  online::HoltForecaster forecaster(0.6, 0.4);
  for (int i = 0; i <= 10; ++i)
    forecaster.Observe(Seconds(2.0 * i), KiloWatts(10.0 + 2.0 * i));
  // An hour with no data: the trend must not extrapolate unboundedly.
  const auto forecast = forecaster.Forecast(Hours(1.0));
  ASSERT_TRUE(forecast);
  EXPECT_LT(forecast->kilowatts(), 60.0);
}

TEST(ForecasterTest, NeverForecastsNegativePower)
{
  online::HoltForecaster forecaster(0.9, 0.9);
  forecaster.Observe(Seconds(0.0), KiloWatts(10.0));
  forecaster.Observe(Seconds(2.0), KiloWatts(1.0));
  const auto forecast = forecaster.Forecast(Seconds(10.0));
  ASSERT_TRUE(forecast);
  EXPECT_GE(forecast->value(), 0.0);
}

TEST(ForecasterTest, DuplicateDeliveriesAreHarmless)
{
  online::HoltForecaster forecaster;
  forecaster.Observe(Seconds(1.0), KiloWatts(10.0));
  forecaster.Observe(Seconds(1.0), KiloWatts(10.0));  // redundant bus copy
  forecaster.Observe(Seconds(1.0), KiloWatts(10.0));
  const auto forecast = forecaster.Forecast(Seconds(3.0));
  ASSERT_TRUE(forecast);
  EXPECT_NEAR(forecast->kilowatts(), 10.0, 1e-6);
}

TEST(ForecasterBankTest, PerRackIsolation)
{
  online::RackPowerForecasterBank bank(4);
  bank.Observe(0, Seconds(0.0), KiloWatts(5.0));
  bank.Observe(2, Seconds(0.0), KiloWatts(9.0));
  EXPECT_NEAR(bank.Forecast(0, Seconds(1.0))->kilowatts(), 5.0, 1e-9);
  EXPECT_NEAR(bank.Forecast(2, Seconds(1.0))->kilowatts(), 9.0, 1e-9);
  EXPECT_FALSE(bank.Forecast(1, Seconds(1.0)).has_value());
  EXPECT_THROW(bank.Observe(9, Seconds(0.0), Watts(1.0)), ConfigError);
}

// --- Forecast-aware placement ----------------------------------------------

TEST(ForecastAwarePolicyTest, PlacesSafelyAndNamesItself)
{
  power::RoomConfig config;
  config.ups_capacity = KiloWatts(600.0);
  config.pdu_pairs_per_ups_pair = 1;
  config.rows_per_pdu_pair = 2;
  config.racks_per_row = 10;
  const power::RoomTopology room{config};
  Rng rng(2030);
  const auto trace = workload::GenerateTrace(
      workload::TraceConfig{}, room.TotalProvisionedPower(), rng);

  offline::FlexOfflinePolicy policy =
      offline::FlexOfflinePolicy::ForecastAware(trace, 0.7, 2.0);
  EXPECT_EQ(policy.Name(), "Flex-Offline-Forecast");
  const offline::Placement placement = policy.Place(room, trace);
  EXPECT_GT(placement.NumPlaced(), 0);
  EXPECT_TRUE(power::ValidateFailoverSafety(
                  room, placement.CappedPduLoads(room))
                  .safe);
}

TEST(ForecastAwarePolicyTest, RejectsBadConfidence)
{
  EXPECT_THROW(offline::FlexOfflinePolicy::ForecastAware({}, 1.5),
               ConfigError);
}

}  // namespace
}  // namespace flex
