/**
 * @file
 * Tests for the emulation module: workload models and a shortened
 * end-to-end room emulation (the full Section V-C run lives in
 * bench_end_to_end).
 */
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "emulation/room_emulation.hpp"
#include "emulation/workload_model.hpp"

namespace flex::emulation {
namespace {

TEST(OuProcessTest, StaysWithinBounds)
{
  OuProcessConfig config;
  config.min = 0.4;
  config.max = 0.9;
  OuProcess process(config, 0.8);
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const double value = process.Step(Seconds(1.0), rng);
    EXPECT_GE(value, 0.4);
    EXPECT_LE(value, 0.9);
  }
}

TEST(OuProcessTest, RevertsTowardTheMean)
{
  OuProcessConfig config;
  config.mean = 0.8;
  config.volatility = 0.0;  // deterministic decay
  config.reversion_rate = 0.1;
  OuProcess process(config, 0.5);
  Rng rng(2);
  double previous = process.value();
  for (int i = 0; i < 50; ++i) {
    const double value = process.Step(Seconds(1.0), rng);
    EXPECT_GE(value, previous - 1e-12);
    previous = value;
  }
  EXPECT_NEAR(previous, 0.8, 0.01);
}

TEST(OuProcessTest, LongRunAverageNearMean)
{
  OuProcessConfig config;
  config.mean = 0.75;
  OuProcess process(config, 0.75);
  Rng rng(3);
  double sum = 0.0;
  const int steps = 20000;
  for (int i = 0; i < steps; ++i)
    sum += process.Step(Seconds(1.0), rng);
  EXPECT_NEAR(sum / steps, 0.75, 0.05);
}

TEST(OuProcessTest, ClampsInitialValueAndValidates)
{
  OuProcessConfig config;
  config.min = 0.4;
  config.max = 0.9;
  EXPECT_NEAR(OuProcess(config, 2.0).value(), 0.9, 1e-12);
  config.min = 1.0;
  config.max = 0.0;
  EXPECT_THROW(OuProcess(config, 0.5), ConfigError);
}

TEST(LatencyModelTest, NoSlowdownMeansNoInflation)
{
  const LatencyModel model(0.5);
  EXPECT_NEAR(model.P95Factor(1.0), 1.0, 1e-12);
}

TEST(LatencyModelTest, InflationGrowsAsSpeedDrops)
{
  const LatencyModel model(0.5);
  double previous = model.P95Factor(1.0);
  for (double speed = 0.95; speed > 0.55; speed -= 0.05) {
    const double factor = model.P95Factor(speed);
    EXPECT_GT(factor, previous);
    previous = factor;
  }
}

TEST(LatencyModelTest, SaturatesNearQueueCollapse)
{
  const LatencyModel model(0.5);
  EXPECT_NEAR(model.P95Factor(0.5), 50.0, 1e-9);
  EXPECT_NEAR(model.P95Factor(0.2), 50.0, 1e-9);
}

TEST(LatencyModelTest, SpeedUnderCap)
{
  EXPECT_NEAR(LatencyModel::SpeedUnderCap(KiloWatts(10.0), KiloWatts(8.5)),
              0.85, 1e-12);
  // Demand below the cap: full speed.
  EXPECT_NEAR(LatencyModel::SpeedUnderCap(KiloWatts(8.0), KiloWatts(8.5)),
              1.0, 1e-12);
  EXPECT_NEAR(LatencyModel::SpeedUnderCap(Watts(0.0), KiloWatts(8.5)), 1.0,
              1e-12);
}

TEST(LatencyModelTest, RejectsBadInputs)
{
  EXPECT_THROW(LatencyModel(0.0), ConfigError);
  EXPECT_THROW(LatencyModel(1.0), ConfigError);
  const LatencyModel model(0.5);
  EXPECT_THROW(model.P95Factor(0.0), ConfigError);
}

/** A compressed end-to-end run: same stages, shorter timeline. */
TEST(RoomEmulationTest, ShortEndToEndRunReproducesTheStages)
{
  EmulationConfig config;
  config.setup_duration = Seconds(30.0);
  config.failover_at = Seconds(120.0);
  config.restore_at = Seconds(240.0);
  config.end_at = Seconds(360.0);
  config.controller.release_delay = Seconds(20.0);
  config.seed = 7;

  RoomEmulation emulation(config);
  const EmulationReport report = emulation.Run();

  // The room placed a realistic number of racks.
  EXPECT_GT(report.total_racks, 250);
  EXPECT_GT(report.sr_racks, 0);
  EXPECT_GT(report.capable_racks, 0);
  EXPECT_GT(report.noncap_racks, 0);

  // Overdraw was detected and corrected within the UPS tolerance.
  EXPECT_GT(report.overdraw_events, 0);
  EXPECT_FALSE(report.safety_violated);
  EXPECT_GT(report.time_to_safe_seconds, 0.0);
  EXPECT_LT(report.time_to_safe_seconds, 10.0);  // the paper's budget

  // Corrective actions hit the right categories and nothing else.
  EXPECT_GT(report.sr_shutdown_peak + report.capable_capped_peak, 0);
  EXPECT_EQ(report.noncap_acted, 0);

  // Telemetry stayed within the paper's production envelope.
  EXPECT_GT(report.data_latency_p999, 0.0);
  EXPECT_LT(report.data_latency_p999, 1.5);

  // Batteries rode through the overload without exhausting.
  EXPECT_FALSE(report.battery_tripped);
  EXPECT_GT(report.min_battery_state_of_charge, 0.0);

  // The software-redundant service was notified, scaled out in the
  // other AZ, and never fought the controller with local restarts.
  if (report.sr_shutdown_peak > 0) {
    EXPECT_GT(report.notifications_published, 0);
    EXPECT_GE(report.sr_capacity_after_scaleout,
              report.sr_capacity_min_fraction);
  }
  EXPECT_EQ(report.sr_inhibited_auto_recoveries, 0);

  // The series covers the whole timeline and shows the failover dip.
  ASSERT_FALSE(report.series.empty());
  EXPECT_NEAR(report.series.back().t_seconds, 360.0, 10.0);
  bool saw_failed_ups = false;
  for (const EmulationSample& s : report.series) {
    if (s.t_seconds > 125.0 && s.t_seconds < 235.0 &&
        s.ups_mw[static_cast<std::size_t>(config.failed_ups)] < 0.01)
      saw_failed_ups = true;
  }
  EXPECT_TRUE(saw_failed_ups);
}

TEST(RoomEmulationTest, ActionsAreReleasedAfterRestore)
{
  EmulationConfig config;
  config.setup_duration = Seconds(30.0);
  config.failover_at = Seconds(120.0);
  config.restore_at = Seconds(200.0);
  config.end_at = Seconds(400.0);
  config.controller.release_delay = Seconds(15.0);
  config.seed = 11;

  RoomEmulation emulation(config);
  const EmulationReport report = emulation.Run();
  ASSERT_FALSE(report.series.empty());
  const EmulationSample& last = report.series.back();
  EXPECT_EQ(last.racks_capped, 0);
  EXPECT_EQ(last.racks_off, 0);
}

TEST(RoomEmulationTest, SurvivesDegradedTelemetryDuringFailover)
{
  // One poller, one bus, and one physical meter of every UPS are dead
  // for the whole run: the redundant pipeline still feeds the
  // controllers and the room is still saved within the budget.
  EmulationConfig config;
  config.setup_duration = Seconds(30.0);
  config.failover_at = Seconds(120.0);
  config.restore_at = Seconds(240.0);
  config.end_at = Seconds(300.0);
  config.seed = 21;

  RoomEmulation emulation(config);
  emulation.pipeline().SetPollerFailed(0, true);
  emulation.pipeline().SetBusFailed(1, true);
  for (int u = 0; u < emulation.topology().NumUpses(); ++u) {
    emulation.pipeline().SetMeterFailed(
        {telemetry::DeviceKind::kUps, u}, 0, true);
  }

  const EmulationReport report = emulation.Run();
  EXPECT_GT(report.overdraw_events, 0);
  EXPECT_FALSE(report.safety_violated);
  EXPECT_FALSE(report.battery_tripped);
  EXPECT_GT(report.time_to_safe_seconds, 0.0);
  EXPECT_LT(report.time_to_safe_seconds, 10.0);
}

/** The room is symmetric: any UPS can be the one that fails. */
class FailedUpsSweepTest : public ::testing::TestWithParam<int> {
};

TEST_P(FailedUpsSweepTest, AnySingleUpsFailureIsHandled)
{
  EmulationConfig config;
  config.setup_duration = Seconds(30.0);
  config.failover_at = Seconds(120.0);
  config.restore_at = Seconds(200.0);
  config.end_at = Seconds(240.0);
  config.failed_ups = GetParam();
  config.seed = 100 + static_cast<std::uint64_t>(GetParam());

  RoomEmulation emulation(config);
  const EmulationReport report = emulation.Run();
  EXPECT_GT(report.overdraw_events, 0);
  EXPECT_FALSE(report.safety_violated);
  EXPECT_FALSE(report.battery_tripped);
  EXPECT_LT(report.time_to_safe_seconds, 10.0);
  EXPECT_EQ(report.noncap_acted, 0);
}

INSTANTIATE_TEST_SUITE_P(AllUpses, FailedUpsSweepTest,
                         ::testing::Values(0, 1, 2, 3));

TEST(RoomEmulationTest, ValidatesTimeline)
{
  EmulationConfig config;
  config.failover_at = Minutes(20.0);
  config.restore_at = Minutes(10.0);
  EXPECT_THROW(RoomEmulation{config}, ConfigError);
  config = EmulationConfig{};
  config.failed_ups = 9;
  EXPECT_THROW(RoomEmulation{config}, ConfigError);
  config = EmulationConfig{};
  config.target_utilization = 0.0;
  EXPECT_THROW(RoomEmulation{config}, ConfigError);
}

}  // namespace
}  // namespace flex::emulation
