/**
 * @file
 * Tests for the emulation module: workload models and a shortened
 * end-to-end room emulation (the full Section V-C run lives in
 * bench_end_to_end).
 */
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "emulation/room_emulation.hpp"
#include "emulation/sweep.hpp"
#include "emulation/workload_model.hpp"

namespace flex::emulation {
namespace {

TEST(OuProcessTest, StaysWithinBounds)
{
  OuProcessConfig config;
  config.min = 0.4;
  config.max = 0.9;
  OuProcess process(config, 0.8);
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const double value = process.Step(Seconds(1.0), rng);
    EXPECT_GE(value, 0.4);
    EXPECT_LE(value, 0.9);
  }
}

TEST(OuProcessTest, RevertsTowardTheMean)
{
  OuProcessConfig config;
  config.mean = 0.8;
  config.volatility = 0.0;  // deterministic decay
  config.reversion_rate = 0.1;
  OuProcess process(config, 0.5);
  Rng rng(2);
  double previous = process.value();
  for (int i = 0; i < 50; ++i) {
    const double value = process.Step(Seconds(1.0), rng);
    EXPECT_GE(value, previous - 1e-12);
    previous = value;
  }
  EXPECT_NEAR(previous, 0.8, 0.01);
}

TEST(OuProcessTest, LongRunAverageNearMean)
{
  OuProcessConfig config;
  config.mean = 0.75;
  OuProcess process(config, 0.75);
  Rng rng(3);
  double sum = 0.0;
  const int steps = 20000;
  for (int i = 0; i < steps; ++i)
    sum += process.Step(Seconds(1.0), rng);
  EXPECT_NEAR(sum / steps, 0.75, 0.05);
}

TEST(OuProcessTest, ClampsInitialValueAndValidates)
{
  OuProcessConfig config;
  config.min = 0.4;
  config.max = 0.9;
  EXPECT_NEAR(OuProcess(config, 2.0).value(), 0.9, 1e-12);
  config.min = 1.0;
  config.max = 0.0;
  EXPECT_THROW(OuProcess(config, 0.5), ConfigError);
}

TEST(LatencyModelTest, NoSlowdownMeansNoInflation)
{
  const LatencyModel model(0.5);
  EXPECT_NEAR(model.P95Factor(1.0), 1.0, 1e-12);
}

TEST(LatencyModelTest, InflationGrowsAsSpeedDrops)
{
  const LatencyModel model(0.5);
  double previous = model.P95Factor(1.0);
  for (double speed = 0.95; speed > 0.55; speed -= 0.05) {
    const double factor = model.P95Factor(speed);
    EXPECT_GT(factor, previous);
    previous = factor;
  }
}

TEST(LatencyModelTest, SaturatesNearQueueCollapse)
{
  const LatencyModel model(0.5);
  EXPECT_NEAR(model.P95Factor(0.5), 50.0, 1e-9);
  EXPECT_NEAR(model.P95Factor(0.2), 50.0, 1e-9);
}

TEST(LatencyModelTest, SpeedUnderCap)
{
  EXPECT_NEAR(LatencyModel::SpeedUnderCap(KiloWatts(10.0), KiloWatts(8.5)),
              0.85, 1e-12);
  // Demand below the cap: full speed.
  EXPECT_NEAR(LatencyModel::SpeedUnderCap(KiloWatts(8.0), KiloWatts(8.5)),
              1.0, 1e-12);
  EXPECT_NEAR(LatencyModel::SpeedUnderCap(Watts(0.0), KiloWatts(8.5)), 1.0,
              1e-12);
}

TEST(LatencyModelTest, RejectsBadInputs)
{
  EXPECT_THROW(LatencyModel(0.0), ConfigError);
  EXPECT_THROW(LatencyModel(1.0), ConfigError);
  const LatencyModel model(0.5);
  EXPECT_THROW(model.P95Factor(0.0), ConfigError);
}

/** A compressed end-to-end run: same stages, shorter timeline. */
TEST(RoomEmulationTest, ShortEndToEndRunReproducesTheStages)
{
  EmulationConfig config;
  config.setup_duration = Seconds(30.0);
  config.failover_at = Seconds(120.0);
  config.restore_at = Seconds(240.0);
  config.end_at = Seconds(360.0);
  config.controller.release_delay = Seconds(20.0);
  config.seed = 7;

  RoomEmulation emulation(config);
  const EmulationReport report = emulation.Run();

  // The room placed a realistic number of racks.
  EXPECT_GT(report.total_racks, 250);
  EXPECT_GT(report.sr_racks, 0);
  EXPECT_GT(report.capable_racks, 0);
  EXPECT_GT(report.noncap_racks, 0);

  // Overdraw was detected and corrected within the UPS tolerance.
  EXPECT_GT(report.overdraw_events, 0);
  EXPECT_FALSE(report.safety_violated);
  EXPECT_GT(report.time_to_safe_seconds, 0.0);
  EXPECT_LT(report.time_to_safe_seconds, 10.0);  // the paper's budget

  // Corrective actions hit the right categories and nothing else.
  EXPECT_GT(report.sr_shutdown_peak + report.capable_capped_peak, 0);
  EXPECT_EQ(report.noncap_acted, 0);

  // Telemetry stayed within the paper's production envelope.
  EXPECT_GT(report.data_latency_p999, 0.0);
  EXPECT_LT(report.data_latency_p999, 1.5);

  // Batteries rode through the overload without exhausting.
  EXPECT_FALSE(report.battery_tripped);
  EXPECT_GT(report.min_battery_state_of_charge, 0.0);

  // The software-redundant service was notified, scaled out in the
  // other AZ, and never fought the controller with local restarts.
  if (report.sr_shutdown_peak > 0) {
    EXPECT_GT(report.notifications_published, 0);
    EXPECT_GE(report.sr_capacity_after_scaleout,
              report.sr_capacity_min_fraction);
  }
  EXPECT_EQ(report.sr_inhibited_auto_recoveries, 0);

  // The series covers the whole timeline and shows the failover dip.
  ASSERT_FALSE(report.series.empty());
  EXPECT_NEAR(report.series.back().t_seconds, 360.0, 10.0);
  bool saw_failed_ups = false;
  for (const EmulationSample& s : report.series) {
    if (s.t_seconds > 125.0 && s.t_seconds < 235.0 &&
        s.ups_mw[static_cast<std::size_t>(config.failed_ups)] < 0.01)
      saw_failed_ups = true;
  }
  EXPECT_TRUE(saw_failed_ups);
}

TEST(RoomEmulationTest, ActionsAreReleasedAfterRestore)
{
  EmulationConfig config;
  config.setup_duration = Seconds(30.0);
  config.failover_at = Seconds(120.0);
  config.restore_at = Seconds(200.0);
  config.end_at = Seconds(400.0);
  config.controller.release_delay = Seconds(15.0);
  config.seed = 11;

  RoomEmulation emulation(config);
  const EmulationReport report = emulation.Run();
  ASSERT_FALSE(report.series.empty());
  const EmulationSample& last = report.series.back();
  EXPECT_EQ(last.racks_capped, 0);
  EXPECT_EQ(last.racks_off, 0);
}

TEST(RoomEmulationTest, SurvivesDegradedTelemetryDuringFailover)
{
  // One poller, one bus, and one physical meter of every UPS are dead
  // for the whole run: the redundant pipeline still feeds the
  // controllers and the room is still saved within the budget.
  EmulationConfig config;
  config.setup_duration = Seconds(30.0);
  config.failover_at = Seconds(120.0);
  config.restore_at = Seconds(240.0);
  config.end_at = Seconds(300.0);
  config.seed = 21;

  RoomEmulation emulation(config);
  emulation.pipeline().SetPollerFailed(0, true);
  emulation.pipeline().SetBusFailed(1, true);
  for (int u = 0; u < emulation.topology().NumUpses(); ++u) {
    emulation.pipeline().SetMeterFailed(
        {telemetry::DeviceKind::kUps, u}, 0, true);
  }

  const EmulationReport report = emulation.Run();
  EXPECT_GT(report.overdraw_events, 0);
  EXPECT_FALSE(report.safety_violated);
  EXPECT_FALSE(report.battery_tripped);
  EXPECT_GT(report.time_to_safe_seconds, 0.0);
  EXPECT_LT(report.time_to_safe_seconds, 10.0);
}

/** The room is symmetric: any UPS can be the one that fails. */
class FailedUpsSweepTest : public ::testing::TestWithParam<int> {
};

TEST_P(FailedUpsSweepTest, AnySingleUpsFailureIsHandled)
{
  EmulationConfig config;
  config.setup_duration = Seconds(30.0);
  config.failover_at = Seconds(120.0);
  config.restore_at = Seconds(200.0);
  config.end_at = Seconds(240.0);
  config.failed_ups = GetParam();
  config.seed = 100 + static_cast<std::uint64_t>(GetParam());

  RoomEmulation emulation(config);
  const EmulationReport report = emulation.Run();
  EXPECT_GT(report.overdraw_events, 0);
  EXPECT_FALSE(report.safety_violated);
  EXPECT_FALSE(report.battery_tripped);
  EXPECT_LT(report.time_to_safe_seconds, 10.0);
  EXPECT_EQ(report.noncap_acted, 0);
}

INSTANTIATE_TEST_SUITE_P(AllUpses, FailedUpsSweepTest,
                         ::testing::Values(0, 1, 2, 3));

/** Shared short timeline for the engine-mode comparisons below. */
EmulationConfig
ShortTimelineConfig(std::uint64_t seed)
{
  EmulationConfig config;
  config.setup_duration = Seconds(30.0);
  config.failover_at = Seconds(120.0);
  config.restore_at = Seconds(200.0);
  config.end_at = Seconds(260.0);
  config.seed = seed;
  // Node-budgeted placement: several tests build the same room twice
  // and compare runs sample-for-sample, so a wall-clock solve budget
  // would let machine load truncate the two placements differently.
  config.placement_solve_seconds = 1e9;
  config.placement_max_nodes = 2000;
  return config;
}

TEST(RoomEmulationTest, IncrementalEngineMatchesTheFullRescanBaseline)
{
  // The incremental engine (running sums + calendar queue) and the
  // pre-PR full-rescan path (brute-force UPS scans + binary heap) are
  // two implementations of the same physics: the per-step Resync bounds
  // the running sums' rounding drift to well under a watt, so every
  // recorded outcome must agree to tight tolerance.
  RoomEmulation incremental(ShortTimelineConfig(31));
  const EmulationReport fast = incremental.Run();

  EmulationConfig slow_config = ShortTimelineConfig(31);
  slow_config.incremental_aggregation = false;
  slow_config.queue_impl = sim::EventQueue::Impl::kHeap;
  RoomEmulation legacy(slow_config);
  const EmulationReport slow = legacy.Run();

  // Only the scaled path maintains running sums.
  EXPECT_GT(fast.aggregate_deltas + fast.aggregate_resyncs, 0u);
  EXPECT_EQ(slow.aggregate_deltas, 0u);
  EXPECT_EQ(slow.aggregate_resyncs, 0u);

  EXPECT_EQ(fast.total_racks, slow.total_racks);
  EXPECT_EQ(fast.sr_racks, slow.sr_racks);
  EXPECT_EQ(fast.capable_racks, slow.capable_racks);
  EXPECT_EQ(fast.noncap_racks, slow.noncap_racks);
  EXPECT_EQ(fast.sr_shutdown_peak, slow.sr_shutdown_peak);
  EXPECT_EQ(fast.capable_capped_peak, slow.capable_capped_peak);
  EXPECT_EQ(fast.noncap_acted, slow.noncap_acted);
  EXPECT_EQ(fast.safety_violated, slow.safety_violated);
  EXPECT_EQ(fast.battery_tripped, slow.battery_tripped);
  EXPECT_EQ(fast.overdraw_events, slow.overdraw_events);
  EXPECT_NEAR(fast.time_to_safe_seconds, slow.time_to_safe_seconds, 1e-9);

  ASSERT_EQ(fast.series.size(), slow.series.size());
  for (std::size_t i = 0; i < fast.series.size(); ++i) {
    const EmulationSample& a = fast.series[i];
    const EmulationSample& b = slow.series[i];
    EXPECT_EQ(a.t_seconds, b.t_seconds);
    EXPECT_EQ(a.racks_off, b.racks_off) << "sample " << i;
    EXPECT_EQ(a.racks_capped, b.racks_capped) << "sample " << i;
    // During the setup ramp the two paths record different snapshots by
    // design: the running sums hold the piecewise-constant power of the
    // last workload step (ramp at step time), while the rescan
    // recomputes with the ramp at the sample instant — up to one ramp
    // step (~5% relative) apart. From the end of setup on, ramp == 1
    // and the recorded powers must agree to rounding drift.
    if (a.t_seconds <= slow_config.setup_duration.value())
      continue;
    EXPECT_NEAR(a.total_rack_mw, b.total_rack_mw, 1e-9) << "sample " << i;
    ASSERT_EQ(a.ups_mw.size(), b.ups_mw.size());
    for (std::size_t u = 0; u < a.ups_mw.size(); ++u)
      EXPECT_NEAR(a.ups_mw[u], b.ups_mw[u], 1e-9) << "sample " << i;
  }
}

TEST(RoomEmulationTest, VerifyAggregationCrossChecksEverySample)
{
  // The debug cross-check (on by default under FLEX_SANITIZE) rescans
  // every UPS at every sample and FLEX_CHECKs the running sums against
  // it; a clean run proves the incremental path never diverged.
  EmulationConfig config = ShortTimelineConfig(33);
  config.verify_aggregation = true;
  RoomEmulation emulation(config);
  const EmulationReport report = emulation.Run();
  EXPECT_GE(report.verify_rescans, report.series.size());
  EXPECT_FALSE(report.safety_violated);
}

TEST(RoomEmulationTest, DedicatedMonitorRefinesOverloadTracking)
{
  // Monitoring is observation only — it must not perturb the dynamics.
  // A dedicated 20 Hz monitor evaluates the overload state at a strict
  // superset of the 5 s sampler's instants, so it can only see a worse
  // (or equal) peak overload, never a smaller one.
  const EmulationReport sampled = [] {
    RoomEmulation emulation(ShortTimelineConfig(35));
    return emulation.Run();
  }();
  EmulationConfig config = ShortTimelineConfig(35);
  config.monitor_period = Seconds(0.05);
  RoomEmulation emulation(config);
  const EmulationReport monitored = emulation.Run();

  // Folded into the sampler: one monitor evaluation per sample.
  EXPECT_EQ(sampled.monitor_ticks, sampled.series.size());
  // Dedicated cadence: ~100x the evaluations over the same timeline.
  EXPECT_GT(monitored.monitor_ticks, sampled.monitor_ticks * 50);
  // The fine cadence tracks at least the peak the coarse sampler saw.
  // Not exactly: at coincident timestamps (every workload step lands on
  // a monitor tick) the evaluation order can straddle the step, and
  // corrective actions can land within the 50 ms to the next tick — so
  // allow a sliver below the sampled peak.
  EXPECT_GE(monitored.worst_overload_fraction,
            sampled.worst_overload_fraction - 1e-2);
  // Identical dynamics: the recorded series must not change at all.
  ASSERT_EQ(monitored.series.size(), sampled.series.size());
  for (std::size_t i = 0; i < monitored.series.size(); ++i) {
    EXPECT_EQ(monitored.series[i].total_rack_mw,
              sampled.series[i].total_rack_mw)
        << "sample " << i;
  }
  EXPECT_FALSE(monitored.safety_violated);
}

TEST(EmulationSweepTest, ParallelSweepIsBitIdenticalToSerial)
{
  // Variants fan out across pool lanes but merge serially in seed
  // order; the full-series fingerprint must not depend on the thread
  // count. Placement solves are truncated by a node budget instead of
  // wall clock (solve_seconds effectively infinite), so the placements
  // — and therefore the hashes — cannot depend on machine speed either.
  SweepConfig sweep;
  sweep.base = ShortTimelineConfig(2021);
  sweep.base.restore_at = Seconds(150.0);
  sweep.base.end_at = Seconds(180.0);
  sweep.base.placement_solve_seconds = 1e9;
  sweep.base.placement_max_nodes = 2000;
  sweep.variants = 2;
  sweep.threads = 1;
  const SweepResult serial = RunEmulationSweep(sweep);
  sweep.threads = 2;
  const SweepResult parallel = RunEmulationSweep(sweep);

  EXPECT_EQ(serial.lanes, 1);
  EXPECT_EQ(parallel.lanes, 2);
  ASSERT_EQ(serial.reports.size(), parallel.reports.size());
  ASSERT_EQ(static_cast<int>(serial.reports.size()), sweep.variants);
  EXPECT_EQ(serial.sample_hash, parallel.sample_hash);
  for (std::size_t i = 0; i < serial.reports.size(); ++i) {
    EXPECT_EQ(HashEmulationReport(serial.reports[i]),
              HashEmulationReport(parallel.reports[i]))
        << "variant " << i;
  }
  // Different seeds produce different traces; the hash is not a
  // constant.
  EXPECT_NE(HashEmulationReport(serial.reports[0]),
            HashEmulationReport(serial.reports[1]));
}

TEST(RoomEmulationTest, ValidatesTimeline)
{
  EmulationConfig config;
  config.failover_at = Minutes(20.0);
  config.restore_at = Minutes(10.0);
  EXPECT_THROW(RoomEmulation{config}, ConfigError);
  config = EmulationConfig{};
  config.failed_ups = 9;
  EXPECT_THROW(RoomEmulation{config}, ConfigError);
  config = EmulationConfig{};
  config.target_utilization = 0.0;
  EXPECT_THROW(RoomEmulation{config}, ConfigError);
}

}  // namespace
}  // namespace flex::emulation
