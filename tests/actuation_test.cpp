/**
 * @file
 * Unit tests for the actuation substrate: rack managers and the
 * firmware/network background monitor.
 */
#include <gtest/gtest.h>

#include "actuation/firmware_monitor.hpp"
#include "actuation/rack_manager.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "sim/event_queue.hpp"

namespace flex::actuation {
namespace {

class RackManagerTest : public ::testing::Test {
 protected:
  sim::EventQueue queue_;
  RackManagerConfig config_;
};

TEST_F(RackManagerTest, ThrottleInstallsCapAfterLatency)
{
  RackManager rm(queue_, 0, config_, Rng(1));
  bool completed = false;
  rm.Throttle(KiloWatts(12.0), [&](bool ok) {
    completed = true;
    EXPECT_TRUE(ok);
  });
  EXPECT_FALSE(rm.state().power_cap.has_value());  // not yet
  queue_.RunUntil(Seconds(10.0));
  EXPECT_TRUE(completed);
  ASSERT_TRUE(rm.state().power_cap.has_value());
  EXPECT_NEAR(rm.state().power_cap->kilowatts(), 12.0, 1e-9);
}

TEST_F(RackManagerTest, ShutdownAndRestoreCyclePower)
{
  RackManager rm(queue_, 0, config_, Rng(2));
  rm.Shutdown([](bool ok) { EXPECT_TRUE(ok); });
  queue_.RunUntil(Seconds(10.0));
  EXPECT_FALSE(rm.state().powered_on);
  rm.Restore([](bool ok) { EXPECT_TRUE(ok); });
  queue_.RunUntil(Seconds(200.0));
  EXPECT_TRUE(rm.state().powered_on);
}

TEST_F(RackManagerTest, RestoreTakesMuchLongerThanCapActions)
{
  RackManager rm(queue_, 0, config_, Rng(3));
  double cap_done = -1.0;
  double restore_done = -1.0;
  rm.Throttle(KiloWatts(1.0), [&](bool) { cap_done = queue_.Now().value(); });
  rm.Restore([&](bool) { restore_done = queue_.Now().value(); });
  queue_.RunUntil(Seconds(500.0));
  ASSERT_GE(cap_done, 0.0);
  ASSERT_GE(restore_done, 0.0);
  EXPECT_GT(restore_done, cap_done * 5.0);
}

TEST_F(RackManagerTest, RemoveCapClearsThrottle)
{
  RackManager rm(queue_, 0, config_, Rng(4));
  rm.Throttle(KiloWatts(5.0), [](bool) {});
  queue_.RunUntil(Seconds(10.0));
  rm.RemoveCap([](bool ok) { EXPECT_TRUE(ok); });
  queue_.RunUntil(Seconds(20.0));
  EXPECT_FALSE(rm.state().power_cap.has_value());
}

TEST_F(RackManagerTest, ActionsAreIdempotent)
{
  RackManager rm(queue_, 0, config_, Rng(5));
  rm.Shutdown([](bool) {});
  rm.Shutdown([](bool) {});
  rm.Throttle(KiloWatts(7.0), [](bool) {});
  rm.Throttle(KiloWatts(7.0), [](bool) {});
  queue_.RunUntil(Seconds(10.0));
  EXPECT_FALSE(rm.state().powered_on);
  ASSERT_TRUE(rm.state().power_cap.has_value());
  EXPECT_NEAR(rm.state().power_cap->kilowatts(), 7.0, 1e-9);
}

TEST_F(RackManagerTest, UnreachableRackFailsCommands)
{
  RackManager rm(queue_, 0, config_, Rng(6));
  rm.SetUnreachable(true);
  bool ok = true;
  rm.Shutdown([&](bool success) { ok = success; });
  queue_.RunUntil(Seconds(10.0));
  EXPECT_FALSE(ok);
  EXPECT_TRUE(rm.state().powered_on);  // action never took effect
}

TEST_F(RackManagerTest, StaleFirmwareAcknowledgesButDoesNothing)
{
  RackManager rm(queue_, 0, config_, Rng(7));
  rm.SetFirmwareStale(true);
  bool ok = true;
  rm.Throttle(KiloWatts(3.0), [&](bool success) { ok = success; });
  queue_.RunUntil(Seconds(10.0));
  EXPECT_FALSE(ok);
  EXPECT_FALSE(rm.state().power_cap.has_value());
  rm.RedeployFirmware();
  EXPECT_TRUE(rm.Probe());
}

TEST_F(RackManagerTest, LatencyDistributionMatchesProductionEnvelope)
{
  // The paper reports ~2 s action latency at p99.9; check the model's
  // cap/shutdown latency tail lands in that neighbourhood.
  RackManager rm(queue_, 0, config_, Rng(8));
  for (int i = 0; i < 2000; ++i)
    rm.Throttle(KiloWatts(1.0), [](bool) {});
  queue_.RunUntil(Seconds(1000.0));
  const auto& samples = rm.action_latencies();
  ASSERT_EQ(samples.size(), 2000u);
  const double p999 = Percentile(samples, 99.9);
  EXPECT_GT(p999, 1.0);
  EXPECT_LT(p999, 3.5);
  const double median = Percentile(samples, 50.0);
  EXPECT_GT(median, 0.3);
  EXPECT_LT(median, 1.5);
}

TEST(ActuationPlaneTest, ProvidesIndependentRackManagers)
{
  sim::EventQueue queue;
  ActuationPlane plane(queue, 8, RackManagerConfig{}, 9);
  EXPECT_EQ(plane.num_racks(), 8);
  plane.rack(3).Shutdown([](bool) {});
  queue.RunUntil(Seconds(10.0));
  EXPECT_FALSE(plane.rack(3).state().powered_on);
  EXPECT_TRUE(plane.rack(4).state().powered_on);
  EXPECT_THROW(plane.rack(8), ConfigError);
  EXPECT_FALSE(plane.AllActionLatencies().empty());
}

class FirmwareMonitorTest : public ::testing::Test {
 protected:
  FirmwareMonitorTest() : plane_(queue_, 16, RackManagerConfig{}, 10) {}

  sim::EventQueue queue_;
  ActuationPlane plane_;
  FirmwareMonitorConfig config_;
};

TEST_F(FirmwareMonitorTest, HealthyFleetRaisesNoWarnings)
{
  FirmwareMonitor monitor(queue_, plane_, config_, 11);
  monitor.Start();
  queue_.RunUntil(Seconds(600.0));
  EXPECT_GT(monitor.sweeps_completed(), 0u);
  EXPECT_TRUE(monitor.warnings().empty());
}

TEST_F(FirmwareMonitorTest, DetectsUnreachableRackManagers)
{
  FirmwareMonitor monitor(queue_, plane_, config_, 12);
  plane_.rack(5).SetUnreachable(true);
  int callbacks = 0;
  monitor.OnWarning([&](const MonitorWarning& w) {
    ++callbacks;
    EXPECT_EQ(w.rack_id, 5);
  });
  monitor.Start();
  queue_.RunUntil(Seconds(120.0));
  EXPECT_GT(callbacks, 0);
}

TEST_F(FirmwareMonitorTest, DetectsFirmwareRegressions)
{
  FirmwareMonitor monitor(queue_, plane_, config_, 13);
  plane_.rack(2).SetFirmwareStale(true);
  monitor.Start();
  queue_.RunUntil(Seconds(120.0));
  ASSERT_FALSE(monitor.warnings().empty());
  EXPECT_EQ(monitor.warnings().front().rack_id, 2);
  EXPECT_EQ(monitor.warnings().front().reason, "firmware regression detected");
}

TEST_F(FirmwareMonitorTest, FakeActionsLeaveStateUnchanged)
{
  FirmwareMonitorConfig config;
  config.fake_action_fraction = 1.0;  // exercise every rack every sweep
  FirmwareMonitor monitor(queue_, plane_, config, 14);
  plane_.rack(0).Throttle(KiloWatts(9.0), [](bool) {});
  queue_.RunUntil(Seconds(10.0));
  monitor.Start();
  queue_.RunUntil(Seconds(600.0));
  // The pre-existing cap must survive the fake-action cycles.
  ASSERT_TRUE(plane_.rack(0).state().power_cap.has_value());
  EXPECT_NEAR(plane_.rack(0).state().power_cap->kilowatts(), 9.0, 1e-9);
  EXPECT_TRUE(plane_.rack(1).state().powered_on);
  EXPECT_FALSE(plane_.rack(1).state().power_cap.has_value());
}

TEST_F(FirmwareMonitorTest, StopEndsSweeps)
{
  FirmwareMonitor monitor(queue_, plane_, config_, 15);
  monitor.Start();
  queue_.RunUntil(Seconds(120.0));
  const std::size_t sweeps = monitor.sweeps_completed();
  monitor.Stop();
  queue_.RunUntil(Seconds(600.0));
  EXPECT_EQ(monitor.sweeps_completed(), sweeps);
}

TEST_F(FirmwareMonitorTest, RejectsBadConfig)
{
  FirmwareMonitorConfig bad;
  bad.probe_period = Seconds(0.0);
  EXPECT_THROW(FirmwareMonitor(queue_, plane_, bad, 16), ConfigError);
  bad = FirmwareMonitorConfig{};
  bad.fake_action_fraction = 2.0;
  EXPECT_THROW(FirmwareMonitor(queue_, plane_, bad, 16), ConfigError);
}

}  // namespace
}  // namespace flex::actuation
