/**
 * @file
 * Cross-module integration tests, headlined by the paper's safety
 * theorem: a placement that satisfies Eq. 4 guarantees that Flex-Online
 * (Algorithm 1) can bring every surviving UPS back under its rated
 * capacity after any single-UPS failure, even at 100% utilization.
 */
#include <gtest/gtest.h>

#include "offline/flex_offline.hpp"
#include "offline/metrics.hpp"
#include "offline/policies.hpp"
#include "online/decision.hpp"
#include "power/loads.hpp"
#include "workload/rack_power.hpp"
#include "workload/trace.hpp"

namespace flex {
namespace {

using offline::Placement;
using power::RoomConfig;
using power::RoomTopology;
using workload::Category;

RoomConfig
MidRoomConfig()
{
  RoomConfig config;
  config.ups_capacity = KiloWatts(900.0);
  config.pdu_pairs_per_ups_pair = 1;
  config.rows_per_pdu_pair = 2;
  config.racks_per_row = 13;
  return config;
}

/** Builds Algorithm 1 inputs from a placement at a given utilization. */
online::DecisionInput
BuildInput(const RoomTopology& room, const std::vector<offline::Rack>& layout,
           const std::vector<Watts>& draws, power::UpsId failed,
           Watts buffer)
{
  online::DecisionInput input;
  input.buffer = buffer;
  power::PduPairLoads pdu_loads(
      static_cast<std::size_t>(room.NumPduPairs()), Watts(0.0));
  for (std::size_t i = 0; i < layout.size(); ++i)
    pdu_loads[static_cast<std::size_t>(layout[i].pdu_pair)] += draws[i];
  const std::vector<Watts> ups =
      power::FailoverUpsLoads(room, pdu_loads, failed);
  for (power::UpsId u = 0; u < room.NumUpses(); ++u) {
    input.ups_power.push_back(ups[static_cast<std::size_t>(u)]);
    input.ups_limit.push_back(room.UpsCapacity(u));
  }
  for (power::PduPairId p = 0; p < room.NumPduPairs(); ++p)
    input.pdu_to_ups.push_back(room.UpsesOfPduPair(p));
  for (std::size_t i = 0; i < layout.size(); ++i) {
    online::RackSnapshot snapshot;
    snapshot.rack_id = layout[i].id;
    snapshot.workload = layout[i].workload;
    snapshot.category = layout[i].category;
    snapshot.pdu_pair = layout[i].pdu_pair;
    snapshot.current_power = draws[i];
    snapshot.flex_power = layout[i].capped;
    input.racks.push_back(std::move(snapshot));
  }
  return input;
}

class SafetyTheoremTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SafetyTheoremTest, AnyEq4PlacementIsRecoverableAtFullUtilization)
{
  const RoomTopology room{MidRoomConfig()};
  Rng rng(GetParam());
  const auto trace = workload::GenerateTrace(
      workload::TraceConfig{}, room.TotalProvisionedPower(), rng);
  offline::BalancedRoundRobinPolicy policy;
  const Placement placement = policy.Place(room, trace);
  const auto layout = offline::BuildRackLayout(room, placement);
  ASSERT_FALSE(layout.empty());

  // Worst case: every rack draws its full allocation (100% utilization).
  std::vector<Watts> draws;
  for (const offline::Rack& rack : layout)
    draws.push_back(rack.allocated);

  for (power::UpsId failed = 0; failed < room.NumUpses(); ++failed) {
    online::DecisionInput input =
        BuildInput(room, layout, draws, failed, /*buffer=*/Watts(0.0));
    const online::DecisionResult result = online::DecideActions(input);
    EXPECT_TRUE(result.satisfied)
        << "failure of UPS " << failed << " not recoverable";
    for (power::UpsId u = 0; u < room.NumUpses(); ++u) {
      EXPECT_LE(result.projected_ups_power[static_cast<std::size_t>(u)]
                    .value(),
                room.UpsCapacity(u).value() + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SafetyTheoremTest,
                         ::testing::Values(3u, 17u, 23u, 57u, 91u));

TEST(SafetyTheoremTest, FlexOfflinePlacementIsAlsoRecoverable)
{
  const RoomTopology room{MidRoomConfig()};
  Rng rng(5);
  const auto trace = workload::GenerateTrace(
      workload::TraceConfig{}, room.TotalProvisionedPower(), rng);
  offline::FlexOfflinePolicy policy = offline::FlexOfflinePolicy::Short(2.0);
  const Placement placement = policy.Place(room, trace);
  const auto layout = offline::BuildRackLayout(room, placement);
  std::vector<Watts> draws;
  for (const offline::Rack& rack : layout)
    draws.push_back(rack.allocated);
  for (power::UpsId failed = 0; failed < room.NumUpses(); ++failed) {
    const online::DecisionResult result = online::DecideActions(
        BuildInput(room, layout, draws, failed, Watts(0.0)));
    EXPECT_TRUE(result.satisfied);
  }
}

TEST(OfflineOnlineIntegrationTest, RealisticSnapshotsNeedFewerActions)
{
  // At realistic (sub-worst-case) utilizations the action count shrinks
  // and disappears below the failover budget.
  const RoomTopology room{MidRoomConfig()};
  Rng rng(9);
  const auto trace = workload::GenerateTrace(
      workload::TraceConfig{}, room.TotalProvisionedPower(), rng);
  offline::BalancedRoundRobinPolicy policy;
  const Placement placement = policy.Place(room, trace);
  const auto layout = offline::BuildRackLayout(room, placement);
  std::vector<Watts> allocations;
  for (const offline::Rack& rack : layout)
    allocations.push_back(rack.allocated);
  const workload::RackPowerModel model;

  std::size_t previous_actions = layout.size() + 1;
  for (const double utilization : {0.95, 0.85, 0.70}) {
    const auto draws =
        model.SampleAtUtilization(allocations, utilization, rng);
    const online::DecisionResult result = online::DecideActions(
        BuildInput(room, layout, draws, 0, KiloWatts(5.0)));
    EXPECT_TRUE(result.satisfied);
    EXPECT_LE(result.actions.size(), previous_actions);
    previous_actions = result.actions.size();
  }
  EXPECT_EQ(previous_actions, 0u);  // no actions needed at 70%
}

TEST(OfflineOnlineIntegrationTest, StrandedPowerAndSafetyTradeoff)
{
  // A placement with zero software-redundant and zero cap-able power
  // cannot use the reserve: Eq. 4 must reject deployments beyond the
  // failover budget.
  const RoomTopology room{MidRoomConfig()};
  Rng rng(13);
  workload::TraceConfig config;
  config.software_redundant_fraction = 0.0;
  config.capable_fraction = 0.0;  // everything non-cap-able
  const auto trace = workload::GenerateTrace(
      config, room.TotalProvisionedPower(), rng);
  offline::FirstFitPolicy policy;
  const Placement placement = policy.Place(room, trace);
  // Allocated power can never exceed the failover budget.
  EXPECT_LE(placement.PlacedPower().value(),
            room.FailoverBudget().value() + 1e-3);
  // And the room safely loses any UPS with no corrective actions at all.
  EXPECT_TRUE(power::ValidateFailoverSafety(
                  room, placement.CappedPduLoads(room))
                  .safe);
}

}  // namespace
}  // namespace flex
