/**
 * @file
 * Tests for the deterministic fault-injection engine: plan scheduling,
 * envelope-respecting fuzzing, seed replay, each fault kind in
 * isolation, and the safety-invariant monitor's detectors — plus the
 * forensic-bundle dump/replay loop built on top of them.
 */
#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "fault/fault_fuzzer.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "fault/forensics.hpp"
#include "fault/invariant_monitor.hpp"
#include "fault/scenario.hpp"
#include "obs/flight_recorder.hpp"

namespace flex::fault {
namespace {

using telemetry::DeviceKind;

FaultEvent
MakeEvent(double at, FaultKind kind, int target, double duration,
          double magnitude = 0.0)
{
  FaultEvent event;
  event.at = Seconds(at);
  event.kind = kind;
  event.target = target;
  event.magnitude = magnitude;
  event.duration = Seconds(duration);
  return event;
}

// ---------------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, SortByTimeIsStableForEqualTimes)
{
  FaultPlan plan;
  plan.Add(MakeEvent(5.0, FaultKind::kPollerCrash, 0, 1.0));
  plan.Add(MakeEvent(2.0, FaultKind::kBusOutage, 1, 1.0));
  plan.Add(MakeEvent(5.0, FaultKind::kBusOutage, 0, 1.0));
  plan.Add(MakeEvent(2.0, FaultKind::kPollerCrash, 1, 1.0));
  plan.SortByTime();
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kBusOutage);
  EXPECT_EQ(plan.events()[0].target, 1);
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kPollerCrash);
  EXPECT_EQ(plan.events()[1].target, 1);
  // Equal-time events keep insertion order (poller before bus at t=5).
  EXPECT_EQ(plan.events()[2].kind, FaultKind::kPollerCrash);
  EXPECT_EQ(plan.events()[2].target, 0);
  EXPECT_EQ(plan.events()[3].kind, FaultKind::kBusOutage);
  EXPECT_EQ(plan.events()[3].target, 0);
}

TEST(FaultPlanTest, LastEndTimeSpansBeginPlusDuration)
{
  FaultPlan plan;
  EXPECT_NEAR(plan.LastEndTime().value(), 0.0, 1e-12);
  plan.Add(MakeEvent(10.0, FaultKind::kUpsFailover, 0, 30.0));
  plan.Add(MakeEvent(35.0, FaultKind::kPollerCrash, 0, 2.0));
  EXPECT_NEAR(plan.LastEndTime().value(), 40.0, 1e-12);
}

TEST(FaultPlanTest, DebugStringNamesEveryEvent)
{
  FaultPlan plan;
  plan.Add(MakeEvent(1.0, FaultKind::kUpsFailover, 2, 10.0));
  FaultEvent meter = MakeEvent(2.0, FaultKind::kMeterDrift, 4, 5.0, 0.01);
  meter.device_kind = DeviceKind::kRack;
  meter.meter_index = 1;
  plan.Add(meter);
  const std::string text = plan.DebugString();
  EXPECT_NE(text.find("ups_failover"), std::string::npos);
  EXPECT_NE(text.find("meter_drift"), std::string::npos);
  EXPECT_NE(text.find("rack=4 meter=1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// FaultFuzzer: determinism and envelope
// ---------------------------------------------------------------------------

TEST(FaultFuzzerTest, SameSeedSamplesIdenticalPlan)
{
  const FaultFuzzer fuzzer{ScenarioShape{}};
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    EXPECT_EQ(fuzzer.SamplePlan(seed).DebugString(),
              fuzzer.SamplePlan(seed).DebugString())
        << "seed " << seed;
  }
}

TEST(FaultFuzzerTest, DifferentSeedsSampleDifferentPlans)
{
  const FaultFuzzer fuzzer{ScenarioShape{}};
  std::set<std::string> plans;
  for (std::uint64_t seed = 0; seed < 20; ++seed)
    plans.insert(fuzzer.SamplePlan(seed).DebugString());
  EXPECT_GT(plans.size(), 15u);  // near-universal distinctness
}

TEST(FaultFuzzerTest, PlansStayInsideToleratedEnvelope)
{
  const ScenarioShape shape;
  const FaultFuzzer fuzzer{shape};
  const FuzzerConfig& config = fuzzer.config();
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const FaultPlan plan = fuzzer.SamplePlan(seed);
    std::vector<std::pair<double, double>> failovers;
    std::set<std::pair<int, int>> meter_devices;
    int pollers = 0;
    int outages = 0;
    int unreachable = 0;
    int pauses = 0;
    for (const FaultEvent& event : plan.events()) {
      EXPECT_GE(event.at.value(), 0.0);
      EXPECT_LE((event.at).value(),
                shape.horizon.value() - config.settle_tail.value());
      switch (event.kind) {
        case FaultKind::kUpsFailover:
          EXPECT_LT(event.target, shape.num_ups);
          failovers.push_back({event.at.value(),
                               (event.at + event.duration).value()});
          break;
        case FaultKind::kMeterFailure:
        case FaultKind::kMeterStuck:
        case FaultKind::kMeterDrift:
          EXPECT_LT(event.meter_index, shape.meters_per_device);
          EXPECT_TRUE(
              meter_devices
                  .insert({static_cast<int>(event.device_kind), event.target})
                  .second)
              << "two meter faults on one device would break the quorum";
          EXPECT_LE(std::abs(event.magnitude), config.max_drift_rate);
          break;
        case FaultKind::kPollerCrash:
          EXPECT_LT(event.target, shape.num_pollers);
          ++pollers;
          break;
        case FaultKind::kBusOutage:
          EXPECT_LT(event.target, shape.num_buses);
          ++outages;
          break;
        case FaultKind::kBusDelay:
          EXPECT_LE(event.magnitude, config.max_bus_delay.value());
          break;
        case FaultKind::kBusDuplicate:
          break;
        case FaultKind::kRackManagerTimeout:
          EXPECT_LT(event.target, shape.num_racks);
          EXPECT_LE(event.magnitude,
                    config.max_rack_manager_extra.value());
          break;
        case FaultKind::kRackManagerUnreachable:
          EXPECT_LT(event.target, shape.num_racks);
          ++unreachable;
          break;
        case FaultKind::kControllerPause:
          EXPECT_LT(event.target, shape.num_controllers);
          ++pauses;
          break;
      }
    }
    // Failovers never overlap: xN/y tolerates one failure at a time.
    std::sort(failovers.begin(), failovers.end());
    for (std::size_t i = 1; i < failovers.size(); ++i) {
      EXPECT_GE(failovers[i].first,
                failovers[i - 1].second + config.failover_gap.value() - 1e-9);
    }
    EXPECT_LE(pollers, 1) << "one poller must survive";
    EXPECT_LE(outages, 1) << "one bus must survive";
    EXPECT_LE(unreachable, 1);
    EXPECT_LE(pauses, shape.num_controllers - 1);
  }
}

// ---------------------------------------------------------------------------
// FaultInjector: validation and single-fault application
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, RejectsOutOfRangeTargets)
{
  FaultScenario scenario({}, 1);
  FaultInjector injector(scenario.targets());
  FaultPlan bad_bus;
  bad_bus.Add(MakeEvent(1.0, FaultKind::kBusOutage, 7, 1.0));
  EXPECT_THROW(injector.Arm(bad_bus), ConfigError);
  FaultPlan bad_ups;
  bad_ups.Add(MakeEvent(1.0, FaultKind::kUpsFailover, 3, 1.0));
  EXPECT_THROW(injector.Arm(bad_ups), ConfigError);
  FaultPlan bad_time;
  bad_time.Add(MakeEvent(-1.0, FaultKind::kPollerCrash, 0, 1.0));
  EXPECT_THROW(injector.Arm(bad_time), ConfigError);
  EXPECT_EQ(injector.scheduled_count(), 0);
}

TEST(FaultInjectorTest, SchedulesBeginAndRepairPerDurationFault)
{
  FaultScenario scenario({}, 1);
  FaultInjector injector(scenario.targets());
  FaultPlan plan;
  plan.Add(MakeEvent(1.0, FaultKind::kPollerCrash, 0, 5.0));
  plan.Add(MakeEvent(2.0, FaultKind::kBusOutage, 0, 0.0));  // never repaired
  injector.Arm(plan);
  EXPECT_EQ(injector.scheduled_count(), 3);
  scenario.queue().RunUntil(Seconds(4.0));  // before the t=6 repair
  ASSERT_EQ(injector.executed_trace().size(), 2u);
  EXPECT_NE(injector.executed_trace()[0].find("begin"), std::string::npos);
  EXPECT_NE(injector.executed_trace()[0].find("poller_crash"),
            std::string::npos);
  EXPECT_NE(injector.executed_trace()[1].find("bus_outage"),
            std::string::npos);
  scenario.queue().RunUntil(Seconds(20.0));
  ASSERT_EQ(injector.executed_trace().size(), 3u);
  EXPECT_NE(injector.executed_trace()[2].find("repair"), std::string::npos);
  EXPECT_NE(injector.executed_trace()[2].find("poller_crash"),
            std::string::npos);
}

TEST(FaultInjectorTest, UpsFailoverTogglesAndRestores)
{
  FaultScenario scenario({}, 7);
  FaultInjector injector(scenario.targets());
  FaultPlan plan;
  plan.Add(MakeEvent(10.0, FaultKind::kUpsFailover, 1, 15.0));
  injector.Arm(plan);
  scenario.queue().RunUntil(Seconds(12.0));
  EXPECT_EQ(scenario.failed_ups(), 1);
  scenario.queue().RunUntil(Seconds(30.0));
  EXPECT_EQ(scenario.failed_ups(), -1);
}

TEST(FaultInjectorTest, RackManagerFaultsApplyAndRepair)
{
  FaultScenario scenario({}, 7);
  FaultInjector injector(scenario.targets());
  FaultPlan plan;
  plan.Add(MakeEvent(5.0, FaultKind::kRackManagerTimeout, 3, 10.0, 2.5));
  plan.Add(MakeEvent(5.0, FaultKind::kRackManagerUnreachable, 6, 10.0));
  injector.Arm(plan);
  scenario.queue().RunUntil(Seconds(8.0));
  EXPECT_NEAR(scenario.plane().rack(3).extra_latency().value(), 2.5, 1e-12);
  EXPECT_TRUE(scenario.plane().rack(6).unreachable());
  scenario.queue().RunUntil(Seconds(20.0));
  EXPECT_NEAR(scenario.plane().rack(3).extra_latency().value(), 0.0, 1e-12);
  EXPECT_FALSE(scenario.plane().rack(6).unreachable());
}

TEST(FaultInjectorTest, ControllerPauseSuspendsOneReplica)
{
  FaultScenario scenario({}, 7);
  InjectorTargets targets = scenario.targets();
  FaultInjector injector(targets);
  FaultPlan plan;
  plan.Add(MakeEvent(5.0, FaultKind::kControllerPause, 1, 8.0));
  injector.Arm(plan);
  scenario.queue().RunUntil(Seconds(6.0));
  EXPECT_FALSE(targets.controllers[0]->suspended());
  EXPECT_TRUE(targets.controllers[1]->suspended());
  scenario.queue().RunUntil(Seconds(14.0));
  EXPECT_FALSE(targets.controllers[1]->suspended());
}

TEST(FaultInjectorTest, TelemetrySurvivesEachPipelineFaultInIsolation)
{
  // One faulty stage at a time must never stop the data: redundant
  // meters, pollers, and buses are exactly the paper's no-SPOF claim.
  const FaultKind kinds[] = {
      FaultKind::kMeterFailure, FaultKind::kMeterStuck,
      FaultKind::kMeterDrift,   FaultKind::kPollerCrash,
      FaultKind::kBusOutage,    FaultKind::kBusDelay,
      FaultKind::kBusDuplicate,
  };
  for (const FaultKind kind : kinds) {
    ScenarioConfig config;
    config.shape.horizon = Seconds(40.0);
    FaultScenario scenario(config, 11);
    FaultEvent event = MakeEvent(5.0, kind, 0, 20.0);
    if (kind == FaultKind::kMeterDrift)
      event.magnitude = 0.01;
    if (kind == FaultKind::kBusDelay)
      event.magnitude = 0.5;
    FaultPlan plan;
    plan.Add(event);
    const ScenarioReport report = scenario.Run(plan);
    EXPECT_GT(report.readings_delivered, 500u)
        << FaultKindName(kind) << " starved the pipeline";
    EXPECT_TRUE(report.violations.empty())
        << FaultKindName(kind) << ":\n"
        << report.violation_summary;
  }
}

// ---------------------------------------------------------------------------
// Seed replay: the tentpole determinism guarantee
// ---------------------------------------------------------------------------

TEST(SeedReplayTest, SameSeedReproducesIdenticalRun)
{
  const ScenarioConfig config;
  for (const std::uint64_t seed : {3ull, 17ull, 92ull}) {
    std::string trace_a;
    std::string trace_b;
    const ScenarioReport a = RunFuzzedScenario(config, seed, &trace_a);
    const ScenarioReport b = RunFuzzedScenario(config, seed, &trace_b);
    EXPECT_EQ(trace_a, trace_b) << "plan diverged for seed " << seed;
    EXPECT_EQ(a.fault_trace, b.fault_trace)
        << "interleaving diverged for seed " << seed;
    EXPECT_EQ(a.events_executed, b.events_executed);
    EXPECT_EQ(a.readings_delivered, b.readings_delivered);
    EXPECT_EQ(a.throttle_commands, b.throttle_commands);
    EXPECT_EQ(a.shutdown_commands, b.shutdown_commands);
    EXPECT_EQ(a.restore_commands, b.restore_commands);
    EXPECT_DOUBLE_EQ(a.worst_overload_fraction, b.worst_overload_fraction);
  }
}

// ---------------------------------------------------------------------------
// InvariantMonitor detectors
// ---------------------------------------------------------------------------

TEST(InvariantMonitorTest, FlagsIllegalCapAndIllegalShutdown)
{
  FaultScenario scenario({}, 5);
  // Rack 3 is non-cap-able (pattern index % 4): capping it is illegal.
  scenario.plane().rack(3).Throttle(KiloWatts(25.0), [](bool) {});
  // Rack 1 is cap-able but not software-redundant: power-off is illegal.
  scenario.plane().rack(1).Shutdown([](bool) {});
  scenario.queue().RunUntil(Seconds(5.0));
  const auto& violations = scenario.monitor().violations();
  ASSERT_EQ(violations.size(), 2u) << scenario.monitor().Summary();
  EXPECT_EQ(violations[0].invariant, "illegal-action");
  EXPECT_EQ(violations[1].invariant, "illegal-action");
  EXPECT_NE(scenario.monitor().Summary().find("illegally"),
            std::string::npos);
}

TEST(InvariantMonitorTest, LegalActionsRaiseNoViolation)
{
  FaultScenario scenario({}, 5);
  scenario.plane().rack(1).Throttle(KiloWatts(25.0), [](bool) {});  // cap-able
  scenario.plane().rack(0).Shutdown([](bool) {});  // software-redundant
  scenario.queue().RunUntil(Seconds(5.0));
  EXPECT_TRUE(scenario.monitor().violations().empty())
      << scenario.monitor().Summary();
}

TEST(InvariantMonitorTest, DetectsMissedOverloadAndTripWhenUnmanaged)
{
  // Freeze utilization at the cap and suspend every replica: the
  // failover overload then persists unanswered, which must trip both
  // the missed-overload deadline and, later, the trip-curve bound.
  ScenarioConfig config;
  config.mean_utilization = 0.84;
  config.utilization_sigma = 0.0;
  config.min_utilization = 0.84;
  config.max_utilization = 0.84;
  config.utilization_jitter = 0.0;
  config.shape.horizon = Seconds(70.0);
  FaultScenario scenario(config, 13);
  for (online::FlexController* controller : scenario.targets().controllers)
    controller->SetSuspended(true);
  FaultPlan plan;
  plan.Add(MakeEvent(20.0, FaultKind::kUpsFailover, 0, 0.0));  // no repair
  const ScenarioReport report = scenario.Run(plan);
  // Survivors carry 1.5x their share: 12 racks * 50 kW * 0.84 / 2 = 252 kW
  // per 200 kW UPS.
  EXPECT_NEAR(report.worst_overload_fraction, 1.26, 0.01);
  std::set<std::string> kinds;
  for (const Violation& violation : report.violations)
    kinds.insert(violation.invariant);
  EXPECT_TRUE(kinds.count("missed-overload")) << report.violation_summary;
  EXPECT_TRUE(kinds.count("ups-trip")) << report.violation_summary;
}

TEST(InvariantMonitorTest, ManagedFailoverStaysViolationFree)
{
  // The same overload with live controllers must be answered in time:
  // zero violations and at least one corrective command.
  ScenarioConfig config;
  config.shape.horizon = Seconds(90.0);
  FaultScenario scenario(config, 21);
  FaultPlan plan;
  plan.Add(MakeEvent(20.0, FaultKind::kUpsFailover, 0, 14.0));
  const ScenarioReport report = scenario.Run(plan);
  EXPECT_GT(report.worst_overload_fraction, 1.0);
  EXPECT_TRUE(report.violations.empty()) << report.violation_summary;
  EXPECT_GT(report.throttle_commands + report.shutdown_commands, 0);
  EXPECT_GT(scenario.monitor().checks_run(), 500u);
}

// ---------------------------------------------------------------------------
// Forensic bundles: dump on violation, replay, divergence detection
// ---------------------------------------------------------------------------

/**
 * Utilization frozen at the cap plus an all-replica pause: the fault
 * plan itself induces the violation, so the recipe replays from the
 * persisted plan alone (unlike the monitor tests above, which suspend
 * controllers by hand).
 */
ScenarioConfig
InducedViolationConfig()
{
  ScenarioConfig config;
  config.mean_utilization = 0.84;
  config.utilization_sigma = 0.0;
  config.min_utilization = 0.84;
  config.max_utilization = 0.84;
  config.utilization_jitter = 0.0;
  config.shape.horizon = Seconds(70.0);
  return config;
}

FaultPlan
InducedViolationPlan()
{
  FaultPlan plan;
  // Pause both replicas for the whole run (duration 0 = never repaired),
  // then fail over a UPS: the overload persists unanswered.
  plan.Add(MakeEvent(0.5, FaultKind::kControllerPause, 0, 0.0));
  plan.Add(MakeEvent(0.5, FaultKind::kControllerPause, 1, 0.0));
  plan.Add(MakeEvent(20.0, FaultKind::kUpsFailover, 0, 0.0));
  return plan;
}

TEST(FaultForensicsTest, PlanJsonlRoundTripIsExact)
{
  FaultPlan plan;
  plan.Add(MakeEvent(81.16920958214399, FaultKind::kUpsFailover, 1,
                     14.000000000000002));
  plan.Add(MakeEvent(12.25, FaultKind::kBusDelay, 0, 30.0, 0.75));
  FaultEvent meter = MakeEvent(3.5, FaultKind::kMeterDrift, 4, 60.0, 0.01);
  meter.device_kind = DeviceKind::kRack;
  meter.meter_index = 1;
  plan.Add(meter);

  FaultPlan parsed;
  std::string error;
  ASSERT_TRUE(ParseFaultPlanJsonl(FaultPlanToJsonl(plan), &parsed, &error))
      << error;
  ASSERT_EQ(parsed.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const FaultEvent& a = plan.events()[i];
    const FaultEvent& b = parsed.events()[i];
    // Bit-exact: one LSB of drift in a fault time walks the replay off
    // the recorded timeline.
    EXPECT_EQ(a.at.value(), b.at.value());
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.target, b.target);
    EXPECT_EQ(a.device_kind, b.device_kind);
    EXPECT_EQ(a.meter_index, b.meter_index);
    EXPECT_EQ(a.magnitude, b.magnitude);
    EXPECT_EQ(a.duration.value(), b.duration.value());
  }
}

TEST(FaultForensicsTest, InducedViolationDumpsBundleAndReplaysExactly)
{
  const ScenarioConfig config = InducedViolationConfig();
  ForensicsOptions options;
  options.root_dir = ::testing::TempDir() + "fault-forensics";

  const RecordedRun run =
      RunRecordedPlan(config, 13, InducedViolationPlan(), options);
  ASSERT_FALSE(run.report.violations.empty())
      << "recipe no longer induces a violation";
  EXPECT_TRUE(run.dump_error.empty()) << run.dump_error;
  ASSERT_FALSE(run.bundle_dir.empty()) << "violation did not trigger a dump";
  EXPECT_FALSE(run.records.empty());

  const ReplayReport replay = ReplayBundle(run.bundle_dir, config);
  ASSERT_TRUE(replay.loaded) << replay.error;
  EXPECT_EQ(replay.manifest.trigger, "invariant-violation");
  EXPECT_TRUE(replay.manifest.replayable);
  EXPECT_GT(replay.compared, 0u);
  EXPECT_FALSE(replay.divergence.has_value())
      << replay.divergence->Summary();
  // Same seed, same plan: the replay reproduces the identical failure.
  EXPECT_EQ(replay.report.violation_summary, run.report.violation_summary);
  EXPECT_EQ(replay.report.violations.size(), run.report.violations.size());
}

TEST(FaultForensicsTest, PerturbedBundleRecordIsReportedAsDivergence)
{
  ForensicsOptions options;
  options.root_dir = ::testing::TempDir() + "fault-forensics-perturbed";
  options.force_dump = true;

  const ScenarioConfig config;
  const RecordedRun run = RunRecordedScenario(config, 42, options);
  ASSERT_FALSE(run.bundle_dir.empty()) << run.dump_error;

  // Corrupt one mid-timeline record's value in events.jsonl.
  const std::string events_path = run.bundle_dir + "/events.jsonl";
  std::vector<obs::FlightRecord> records;
  {
    std::ifstream in(events_path);
    std::ostringstream raw;
    raw << in.rdbuf();
    std::string error;
    ASSERT_TRUE(obs::ParseRecordsJsonl(raw.str(), &records, &error)) << error;
  }
  ASSERT_GT(records.size(), 2u);
  const std::size_t victim = records.size() / 2;
  records[victim].value += 1.0;
  {
    std::ofstream out(events_path, std::ios::trunc);
    out << obs::RecordsToJsonl(records);
  }

  const ReplayReport replay = ReplayBundle(run.bundle_dir, config);
  ASSERT_TRUE(replay.loaded) << replay.error;
  ASSERT_TRUE(replay.divergence.has_value())
      << "perturbed record went undetected";
  EXPECT_EQ(replay.divergence->sequence, records[victim].sequence);
  EXPECT_EQ(replay.divergence->field, "value");
}

}  // namespace
}  // namespace flex::fault
