/**
 * @file
 * Tests for the cooling redundancy substrate (Section VI): thermal
 * dynamics, the minutes-scale mitigation window, and the
 * migrate-then-cap mitigation ladder.
 */
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "cooling/cooling_domain.hpp"
#include "sim/event_queue.hpp"

namespace flex::cooling {
namespace {

CoolingDomainConfig
DefaultConfig()
{
  // 4 units x 3.2 MW = 12.8 MW cooling for a 9.6 MW room: N+1-ish.
  return CoolingDomainConfig{};
}

TEST(CoolingDomainTest, HealthyDomainHoldsSupplyTemperature)
{
  CoolingDomain domain(DefaultConfig());
  for (int i = 0; i < 600; ++i)
    domain.Advance(MegaWatts(9.6), Seconds(1.0));
  EXPECT_NEAR(domain.temperature_c(), 22.0, 0.1);
  EXPECT_FALSE(domain.Overheated());
}

TEST(CoolingDomainTest, SingleUnitLossIsAbsorbedByRedundancy)
{
  CoolingDomain domain(DefaultConfig());
  domain.SetUnitFailed(0, true);
  // 3 x 3.2 = 9.6 MW still covers the 9.6 MW load.
  EXPECT_NEAR(domain.AvailableCooling().megawatts(), 9.6, 1e-9);
  for (int i = 0; i < 600; ++i)
    domain.Advance(MegaWatts(9.6), Seconds(1.0));
  EXPECT_FALSE(domain.Overheated());
  EXPECT_GE(domain.TimeToOverheat(MegaWatts(9.6)).value(), 1e6);
}

TEST(CoolingDomainTest, DeficitWarmsTheRoomGradually)
{
  CoolingDomain domain(DefaultConfig());
  domain.SetUnitFailed(0, true);
  domain.SetUnitFailed(1, true);  // 6.4 MW cooling vs 9.6 MW load
  const double before = domain.temperature_c();
  domain.Advance(MegaWatts(9.6), Minutes(1.0));
  EXPECT_GT(domain.temperature_c(), before);
  EXPECT_FALSE(domain.Overheated());  // one minute is not enough to trip
}

TEST(CoolingDomainTest, MitigationWindowIsMinutesNotSeconds)
{
  // The paper's contrast: power failover gives ~10 s; cooling loss gives
  // several minutes.
  CoolingDomain domain(DefaultConfig());
  domain.SetUnitFailed(0, true);
  domain.SetUnitFailed(1, true);
  const Seconds window = domain.TimeToOverheat(MegaWatts(9.6));
  EXPECT_GT(window.value(), 120.0);   // minutes...
  EXPECT_LT(window.value(), 3600.0);  // ...not unbounded
}

TEST(CoolingDomainTest, RecoversTowardSupplyAfterRepair)
{
  CoolingDomain domain(DefaultConfig());
  domain.SetUnitFailed(0, true);
  domain.SetUnitFailed(1, true);
  domain.Advance(MegaWatts(9.6), Minutes(5.0));
  const double hot = domain.temperature_c();
  ASSERT_GT(hot, 22.5);
  domain.SetUnitFailed(0, false);
  domain.SetUnitFailed(1, false);
  domain.Advance(MegaWatts(9.6), Minutes(10.0));
  EXPECT_LT(domain.temperature_c(), hot);
  EXPECT_NEAR(domain.temperature_c(), 22.0, 0.5);
}

TEST(CoolingDomainTest, Validation)
{
  CoolingDomainConfig bad = DefaultConfig();
  bad.num_units = 0;
  EXPECT_THROW(CoolingDomain{bad}, ConfigError);
  bad = DefaultConfig();
  bad.max_safe_temperature_c = 20.0;  // below supply
  EXPECT_THROW(CoolingDomain{bad}, ConfigError);
  CoolingDomain domain(DefaultConfig());
  EXPECT_THROW(domain.SetUnitFailed(9, true), ConfigError);
  EXPECT_THROW(domain.Advance(Watts(-1.0), Seconds(1.0)), ConfigError);
}

class HandlerTest : public ::testing::Test {
 protected:
  HandlerTest() : domain_(DefaultConfig()) {}

  void
  MakeHandler(Watts load)
  {
    load_ = load;
    handler_ = std::make_unique<CoolingFailureHandler>(
        queue_, domain_, CoolingMitigationConfig{}, [this] { return load_; },
        [this](Watts cut) { last_cut_ = cut; });
    handler_->Start();
    // Thermal integration alongside the handler's checks.
    sim::SchedulePeriodic(queue_, Seconds(1.0), [this] {
      domain_.Advance(handler_->EffectiveLoad(), Seconds(1.0));
      return true;
    });
  }

  sim::EventQueue queue_;
  CoolingDomain domain_;
  std::unique_ptr<CoolingFailureHandler> handler_;
  Watts load_{0.0};
  Watts last_cut_{0.0};
};

TEST_F(HandlerTest, NoDeficitMeansNoAction)
{
  MakeHandler(MegaWatts(9.6));
  domain_.SetUnitFailed(0, true);  // redundancy absorbs it
  queue_.RunUntil(Minutes(10.0));
  EXPECT_EQ(handler_->flex_engagements(), 0);
  EXPECT_NEAR(handler_->migrated_load().value(), 0.0, 1e-9);
  EXPECT_FALSE(domain_.Overheated());
}

TEST_F(HandlerTest, MigrationResolvesAModerateDeficit)
{
  MakeHandler(MegaWatts(9.6));
  domain_.SetUnitFailed(0, true);
  domain_.SetUnitFailed(1, true);  // 6.4 MW cooling vs 9.6 MW load
  queue_.RunUntil(Minutes(10.0));
  // Migration moved 40%: 5.76 MW remaining fits under 6.4 MW cooling.
  EXPECT_GT(handler_->migrated_load().megawatts(), 3.0);
  EXPECT_EQ(handler_->flex_engagements(), 0);  // never needed Flex
  EXPECT_FALSE(domain_.Overheated());
}

TEST_F(HandlerTest, SevereDeficitEngagesFlexCapping)
{
  MakeHandler(MegaWatts(9.6));
  domain_.SetUnitFailed(0, true);
  domain_.SetUnitFailed(1, true);
  domain_.SetUnitFailed(2, true);  // 3.2 MW cooling vs 9.6 MW load
  queue_.RunUntil(Minutes(10.0));
  // Migration (40%) leaves 5.76 MW > 3.2 MW: Flex must shave the rest.
  EXPECT_GT(handler_->flex_engagements(), 0);
  EXPECT_GT(last_cut_.megawatts(), 1.0);
}

TEST_F(HandlerTest, MigratedLoadDrainsBackAfterRepair)
{
  MakeHandler(MegaWatts(9.6));
  domain_.SetUnitFailed(0, true);
  domain_.SetUnitFailed(1, true);
  queue_.RunUntil(Minutes(10.0));
  ASSERT_GT(handler_->migrated_load().value(), 0.0);
  domain_.SetUnitFailed(0, false);
  domain_.SetUnitFailed(1, false);
  queue_.RunUntil(Minutes(20.0));
  EXPECT_NEAR(handler_->migrated_load().value(), 0.0, 1e-9);
}

}  // namespace
}  // namespace flex::cooling
