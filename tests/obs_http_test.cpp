/**
 * @file
 * Tests for the live observability plane: the embedded HTTP server, the
 * Prometheus/JSON exporters, the in-process profiler and stall
 * watchdog, and — the house invariant — proof that a scraper hammering
 * every endpoint cannot change one bit of a deterministic sweep.
 */
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "emulation/room_emulation.hpp"
#include "emulation/sweep.hpp"
#include "obs/alerts.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/http_export.hpp"
#include "obs/http_server.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "solver/branch_and_bound.hpp"
#include "solver/model.hpp"

namespace flex::obs {
namespace {

/** Minimal blocking HTTP/1.0-style client for exercising the server. */
struct ClientResponse {
  int status = 0;
  std::string body;
};

ClientResponse
HttpGet(int port, const std::string& path)
{
  ClientResponse response;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    return response;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return response;
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  ssize_t unused = ::send(fd, request.data(), request.size(), 0);
  (void)unused;
  std::string raw;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0)
    raw.append(buffer, static_cast<std::size_t>(n));
  ::close(fd);
  if (raw.compare(0, 9, "HTTP/1.1 ") == 0)
    response.status = std::atoi(raw.c_str() + 9);
  const std::size_t split = raw.find("\r\n\r\n");
  if (split != std::string::npos)
    response.body = raw.substr(split + 4);
  return response;
}

/**
 * Sends raw bytes (in timed chunks) and parses whatever comes back —
 * for exercising the protocol-abuse paths a well-formed GET never hits.
 * Each element of @p chunks is sent after @p pause_between.
 */
ClientResponse
RawRequest(int port, const std::vector<std::string>& chunks,
           std::chrono::milliseconds pause_between = {})
{
  ClientResponse response;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    return response;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return response;
  }
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    if (i > 0 && pause_between.count() > 0)
      std::this_thread::sleep_for(pause_between);
    if (::send(fd, chunks[i].data(), chunks[i].size(), MSG_NOSIGNAL) < 0)
      break;  // the server may already have answered and closed
  }
  std::string raw;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0)
    raw.append(buffer, static_cast<std::size_t>(n));
  ::close(fd);
  if (raw.compare(0, 9, "HTTP/1.1 ") == 0)
    response.status = std::atoi(raw.c_str() + 9);
  const std::size_t split = raw.find("\r\n\r\n");
  if (split != std::string::npos)
    response.body = raw.substr(split + 4);
  return response;
}

/**
 * Validates Prometheus text-exposition grammar on @p text: every
 * non-comment line is `name value` or `name{labels} value` with a
 * finite-or-inf numeric value, and every series name was announced by a
 * preceding # TYPE line (histogram/summary series match their family
 * prefix).
 */
void
ValidateExposition(const std::string& text)
{
  std::map<std::string, std::string> type_of;  // family -> type
  std::istringstream stream(text);
  std::string line;
  int series = 0;
  while (std::getline(stream, line)) {
    if (line.empty())
      continue;
    if (line.compare(0, 7, "# TYPE ") == 0) {
      std::istringstream header(line.substr(7));
      std::string family, type;
      header >> family >> type;
      ASSERT_FALSE(family.empty()) << line;
      ASSERT_TRUE(type == "counter" || type == "gauge" ||
                  type == "histogram" || type == "summary")
          << line;
      type_of[family] = type;
      continue;
    }
    ASSERT_NE(line.front(), '#') << "unexpected comment: " << line;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string series_name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    ASSERT_EQ(*end, '\0') << "non-numeric value in: " << line;
    const std::size_t brace = series_name.find('{');
    if (brace != std::string::npos) {
      ASSERT_EQ(series_name.back(), '}') << line;
      series_name = series_name.substr(0, brace);
    }
    // The series must belong to an announced family: either the name
    // itself or, for histogram/summary expansions, its prefix before
    // _bucket/_sum/_count.
    bool announced = type_of.count(series_name) > 0;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      if (announced)
        break;
      const std::string s(suffix);
      if (series_name.size() > s.size() &&
          series_name.compare(series_name.size() - s.size(), s.size(), s) ==
              0) {
        announced =
            type_of.count(series_name.substr(0, series_name.size() -
                                                    s.size())) > 0;
      }
    }
    EXPECT_TRUE(announced) << "series without # TYPE: " << series_name;
    ++series;
  }
  EXPECT_GT(series, 0);
}

TEST(PrometheusExportTest, NameSanitization)
{
  EXPECT_EQ(PrometheusName("pipeline.publish_lag_s"),
            "flex_pipeline_publish_lag_s");
  EXPECT_EQ(PrometheusName("room.events_executed"),
            "flex_room_events_executed");
  EXPECT_EQ(PrometheusName("weird-name with spaces"),
            "flex_weird_name_with_spaces");
}

TEST(PrometheusExportTest, SnapshotRendersValidExposition)
{
  MetricsRegistry registry;
  registry.counter("controller.overdraw_events").Increment(3.0);
  registry.gauge("room.total_mw").Set(4.8);
  Histogram& h = registry.histogram("pipeline.publish_lag_s");
  h.Observe(0.01);
  h.Observe(0.5);
  h.Observe(2.0);

  const std::string text = SnapshotToPrometheus(registry.Snapshot());
  ValidateExposition(text);
  EXPECT_NE(text.find("# TYPE flex_controller_overdraw_events_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("flex_controller_overdraw_events_total 3"),
            std::string::npos);
  EXPECT_NE(text.find("flex_room_total_mw 4.8"), std::string::npos);
  EXPECT_NE(text.find("# TYPE flex_pipeline_publish_lag_s summary"),
            std::string::npos);
  EXPECT_NE(text.find("flex_pipeline_publish_lag_s_count 3"),
            std::string::npos);
  EXPECT_NE(text.find("flex_sim_time_seconds 0"), std::string::npos);
}

TEST(PrometheusExportTest, ProfilerHistogramBucketsAreCumulative)
{
  Profiler profiler;
  profiler.Record("unit.phase", 3.0, 2.0);     // ~2 us bucket
  profiler.Record("unit.phase", 100.0, 80.0);  // ~128 us bucket
  profiler.Record("unit.phase", 1e7, 1e7);     // overflow (+Inf only)

  LiveHub hub;
  ObservabilityServer server(hub);
  server.SetProfiler(&profiler);
  const std::string text = server.RenderMetrics();
  ValidateExposition(text);

  // Walk the wall-time bucket series: counts must be monotonically
  // non-decreasing and the +Inf bucket must equal _count.
  std::istringstream stream(text);
  std::string line;
  std::uint64_t previous = 0;
  std::uint64_t inf_count = 0;
  int buckets = 0;
  while (std::getline(stream, line)) {
    if (line.rfind("flex_phase_wall_microseconds_bucket{", 0) == 0) {
      const std::uint64_t count = std::strtoull(
          line.c_str() + line.rfind(' ') + 1, nullptr, 10);
      EXPECT_GE(count, previous) << line;
      previous = count;
      ++buckets;
      if (line.find("le=\"+Inf\"") != std::string::npos)
        inf_count = count;
    }
  }
  EXPECT_GT(buckets, 1);
  EXPECT_EQ(inf_count, 3u);
  EXPECT_NE(text.find("flex_phase_wall_microseconds_count{phase=\"unit.phase\"} 3"),
            std::string::npos);
}

TEST(HttpServerTest, ServesRegisteredRoutesOverRealSockets)
{
  HttpServer server;
  server.Route("/ping", [](const HttpRequest& request) {
    HttpResponse response;
    response.body = "pong " + request.query;
    return response;
  });
  ASSERT_TRUE(server.Start(0));
  ASSERT_GT(server.port(), 0);

  const ClientResponse ok = HttpGet(server.port(), "/ping?x=1");
  EXPECT_EQ(ok.status, 200);
  EXPECT_EQ(ok.body, "pong x=1");

  const ClientResponse missing = HttpGet(server.port(), "/nope");
  EXPECT_EQ(missing.status, 404);

  EXPECT_GE(server.requests_served(), 2u);
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(HttpServerTest, OversizedHeaderBlockAnswers431)
{
  HttpServerConfig config;
  config.max_request_bytes = 256;
  HttpServer server(config);
  server.Route("/ping", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start(0));

  // A legitimate request still fits under the shrunken cap.
  EXPECT_EQ(HttpGet(server.port(), "/ping").status, 200);

  // One giant header blows past it: the server must refuse with 431
  // instead of buffering unbounded attacker-controlled bytes.
  const std::string huge =
      "GET /ping HTTP/1.1\r\nX-Padding: " + std::string(4096, 'a') +
      "\r\n\r\n";
  const ClientResponse refused = RawRequest(server.port(), {huge});
  EXPECT_EQ(refused.status, 431);
  server.Stop();
}

TEST(HttpServerTest, SlowDripClientAnswers408)
{
  HttpServerConfig config;
  config.connection_deadline_s = 0.25;
  config.recv_timeout_s = 0.1;
  HttpServer server(config);
  server.Route("/ping", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start(0));

  // Drip the request one fragment at a time, never finishing the header
  // block before the wall deadline: each chunk resets nothing — the
  // deadline is absolute per connection, so the server answers 408
  // rather than letting a slowloris client pin the accept thread.
  const std::vector<std::string> drip = {"GET /pi", "ng HT", "TP/1.1\r\n",
                                         "Host: x\r\n", "X: 1\r\n",
                                         "Y: 2\r\n",   "Z: 3\r\n"};
  const ClientResponse timed_out =
      RawRequest(server.port(), drip, std::chrono::milliseconds(80));
  EXPECT_EQ(timed_out.status, 408);

  // The server survives the abuse and keeps serving normal traffic.
  EXPECT_EQ(HttpGet(server.port(), "/ping").status, 200);
  server.Stop();
}

TEST(HttpServerTest, HealthzTransitionsWithHubAndWatchdog)
{
  LiveHub hub;
  ObservabilityServer server(hub);
  WatchdogConfig wd_config;
  wd_config.threshold_seconds = 0.05;
  wd_config.forensic_hint = "bundles/latest";
  StallWatchdog watchdog(wd_config);
  server.SetWatchdog(&watchdog);
  const int wd = watchdog.RegisterThread("unit-loop");

  // Healthy by default.
  int status = 0;
  std::string body = server.RenderHealth(&status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"ok\":true"), std::string::npos);

  // An invariant violation published by the harness flips to 503.
  HealthSnapshot bad;
  bad.ok = false;
  bad.violations = 2;
  bad.detail = "[ups-trip] UPS 1 overloaded";
  hub.PublishHealth(bad);
  body = server.RenderHealth(&status);
  EXPECT_EQ(status, 503);
  EXPECT_NE(body.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(body.find("ups-trip"), std::string::npos);

  // Back healthy — but a stalled thread still answers 503.
  hub.PublishHealth(HealthSnapshot{});
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  watchdog.CheckNow();
  EXPECT_TRUE(watchdog.any_stalled());
  body = server.RenderHealth(&status);
  EXPECT_EQ(status, 503);
  EXPECT_NE(body.find("\"stalled\":true"), std::string::npos);
  EXPECT_NE(body.find("bundles/latest"), std::string::npos);

  // A heartbeat clears the stall and the endpoint recovers.
  watchdog.Beat(wd);
  watchdog.CheckNow();
  EXPECT_FALSE(watchdog.any_stalled());
  body = server.RenderHealth(&status);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(watchdog.stall_events(), 1u);

  // A loop that finished cleanly is retired: silent forever, never
  // stalled again.
  watchdog.MarkDone(wd);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  watchdog.CheckNow();
  EXPECT_FALSE(watchdog.any_stalled());
  body = server.RenderHealth(&status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"done\":true"), std::string::npos);
  EXPECT_EQ(watchdog.stall_events(), 1u);
}

TEST(TraceJsonTest, RoundTripsEveryField)
{
  ReactionTrace trace;
  trace.id = 7;
  trace.detecting_replica = 2;
  trace.ups_index = 1;
  trace.actions = 42;
  trace.duplicate_detections = 3;
  trace.duplicate_waves = 1;
  trace.sampled_at = Seconds(12.25);
  trace.delivered_at = Seconds(12.5);
  trace.detected_at = Seconds(12.625);
  trace.decided_at = Seconds(12.75);
  trace.enforced_at = Seconds(13.125);
  trace.complete = true;
  trace.closed = false;
  trace.budget = Seconds(10.0);

  ReactionTrace parsed;
  ASSERT_TRUE(ParseReactionTraceJson(ReactionTraceToJson(trace), &parsed));
  EXPECT_EQ(parsed.id, trace.id);
  EXPECT_EQ(parsed.detecting_replica, trace.detecting_replica);
  EXPECT_EQ(parsed.ups_index, trace.ups_index);
  EXPECT_EQ(parsed.actions, trace.actions);
  EXPECT_EQ(parsed.duplicate_detections, trace.duplicate_detections);
  EXPECT_EQ(parsed.duplicate_waves, trace.duplicate_waves);
  EXPECT_EQ(parsed.sampled_at.value(), trace.sampled_at.value());
  EXPECT_EQ(parsed.delivered_at.value(), trace.delivered_at.value());
  EXPECT_EQ(parsed.detected_at.value(), trace.detected_at.value());
  EXPECT_EQ(parsed.decided_at.value(), trace.decided_at.value());
  EXPECT_EQ(parsed.enforced_at.value(), trace.enforced_at.value());
  EXPECT_EQ(parsed.complete, trace.complete);
  EXPECT_EQ(parsed.closed, trace.closed);
  EXPECT_EQ(parsed.budget.value(), trace.budget.value());

  ReactionTrace bad;
  EXPECT_FALSE(ParseReactionTraceJson("{\"id\":1}", &bad));
  EXPECT_FALSE(ParseReactionTraceJson("not json", &bad));
}

TEST(TraceJsonTest, TraceEndpointServesPublishedTail)
{
  LiveHub hub;
  std::vector<ReactionTrace> traces(40);
  for (std::size_t i = 0; i < traces.size(); ++i)
    traces[i].id = i + 1;
  hub.PublishTraces(traces);  // default tail 32

  ObservabilityServer server(hub);
  const std::string body = server.RenderTrace();
  // The tail keeps the LAST 32: ids 9..40.
  EXPECT_EQ(hub.LatestTraces().size(), 32u);
  EXPECT_EQ(hub.LatestTraces().front().id, 9u);
  EXPECT_EQ(body.front(), '[');
  // Every object line in the array must parse back.
  std::size_t parsed = 0;
  std::size_t at = 0;
  while ((at = body.find('{', at)) != std::string::npos) {
    const std::size_t end = body.find('}', at);
    ASSERT_NE(end, std::string::npos);
    ReactionTrace t;
    ASSERT_TRUE(
        ParseReactionTraceJson(body.substr(at, end - at + 1), &t));
    ++parsed;
    at = end;
  }
  EXPECT_EQ(parsed, 32u);
}

TEST(RecorderEndpointTest, TailRoundTripsThroughJsonl)
{
  FlightRecorder recorder;
  for (int i = 0; i < 10; ++i)
    recorder.Record(Seconds(i * 1.5), RecordKind::kMeterSample, i, i % 4,
                    1.25 * i);
  LiveHub hub;
  hub.PublishRecorderTail(recorder, 4);

  ObservabilityServer server(hub);
  std::vector<FlightRecord> parsed;
  std::string error;
  ASSERT_TRUE(ParseRecordsJsonl(server.RenderRecorder(), &parsed, &error))
      << error;
  ASSERT_EQ(parsed.size(), 4u);
  EXPECT_EQ(parsed.front().sequence, 6u);  // last 4 of 10
  EXPECT_EQ(parsed.back().sequence, 9u);
}

TEST(ProfilerTest, AggregatesPhasesAcrossThreads)
{
  Profiler profiler;
  const auto record = [&profiler] {
    for (int i = 0; i < 50; ++i) {
      ScopedPhaseTimer timer("test.phase", &profiler);
    }
  };
  std::thread a(record);
  std::thread b(record);
  a.join();
  b.join();
  profiler.Record("test.other", 5.0, 4.0);

  const auto rows = profiler.Snapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].phase, "test.other");  // sorted by name
  EXPECT_EQ(rows[1].phase, "test.phase");
  EXPECT_EQ(rows[1].threads, 2);
  EXPECT_EQ(rows[1].wall.count(), 100u);
  EXPECT_EQ(rows[1].cpu.count(), 100u);
  EXPECT_EQ(profiler.record_count(), 101u);

  profiler.Reset();
  EXPECT_TRUE(profiler.Snapshot().empty());
}

TEST(LogMetricsTest, SuppressedCountsSurfaceAsCounter)
{
  // Swallow output while hammering a rate-limited callsite.
  SetLogSink([](LogLevel, const std::string&) {});
  const std::uint64_t before = LogSuppressedTotal();
  for (int i = 0; i < 250; ++i)
    FLEX_LOG_RATE_LIMITED(LogLevel::kWarn, "test", "storm %d", i);
  SetLogSink(LogSink{});
  EXPECT_GT(LogSuppressedTotal(), before);

  MetricsRegistry registry;
  UpdateLogMetrics(registry);
  const MetricsSnapshot snapshot = registry.Snapshot();
  const MetricRow* row = snapshot.Find("log.suppressed_total");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->kind, MetricKind::kCounter);
  EXPECT_EQ(row->value, static_cast<double>(LogSuppressedTotal()));
  // Idempotent: a second fold with no new suppressions adds nothing.
  UpdateLogMetrics(registry);
  EXPECT_EQ(registry.counter("log.suppressed_total").value(),
            static_cast<double>(LogSuppressedTotal()));
}

TEST(LiveSolverStatsTest, SolverPublishesProgressThroughLiveGauges)
{
  // A small knapsack-style MILP that needs real branching.
  solver::Model model;
  std::vector<solver::VarIndex> x;
  std::vector<std::pair<solver::VarIndex, double>> weights;
  const double values[] = {9.0, 7.5, 6.1, 5.2, 4.9, 3.3, 2.8, 1.7};
  const double costs[] = {5.0, 4.0, 3.5, 3.0, 2.9, 2.0, 1.8, 1.1};
  for (int i = 0; i < 8; ++i) {
    x.push_back(model.AddBinary("x" + std::to_string(i), values[i]));
    weights.push_back({x.back(), costs[i]});
  }
  model.AddConstraint("capacity", weights, solver::Relation::kLessEqual,
                      10.0);

  solver::LiveSolverStats live;
  solver::BranchAndBoundSolver::Options options;
  options.threads = 1;
  options.presolve = false;
  options.live = &live;
  const solver::MipResult result =
      solver::BranchAndBoundSolver(options).Solve(model);
  ASSERT_TRUE(result.HasSolution());

  EXPECT_EQ(live.solves_started.load(), 1);
  EXPECT_EQ(live.solves_finished.load(), 1);
  EXPECT_FALSE(live.active());
  EXPECT_EQ(live.nodes_explored.load(), result.nodes_explored);
  EXPECT_GE(live.lp_solves.load(), result.nodes_explored);
  EXPECT_EQ(live.wave_nodes.load(), 0);  // cleared on exit

  LiveHub hub;
  ObservabilityServer server(hub);
  server.AddLiveGauge("flex_solver_nodes_explored", [&live] {
    return static_cast<double>(live.nodes_explored.load());
  });
  server.AddLiveGauge("flex_solver_basis_hit_rate", [&live] {
    const double attempts =
        static_cast<double>(live.basis_reuse_attempts.load());
    return attempts > 0.0
               ? static_cast<double>(live.basis_reuse_hits.load()) / attempts
               : 0.0;
  });
  const std::string text = server.RenderMetrics();
  ValidateExposition(text);
  EXPECT_NE(text.find("flex_solver_nodes_explored " +
                      std::to_string(result.nodes_explored)),
            std::string::npos);
}

TEST(ObservabilityServerTest, EndpointsServeOverHttpWithThreadPoolGauges)
{
  LiveHub hub;
  MetricsRegistry registry;
  registry.counter("unit.requests").Increment(5.0);
  hub.PublishMetrics(registry.Snapshot());

  ObservabilityServerConfig config;
  config.run_info = {{"bench", "unit"}, {"seed", "2021"}};
  ObservabilityServer server(hub, config);
  common::ThreadPool pool(2);
  server.WireThreadPool(pool);
  ASSERT_TRUE(server.Start());

  const ClientResponse metrics = HttpGet(server.port(), "/metrics");
  EXPECT_EQ(metrics.status, 200);
  ValidateExposition(metrics.body);
  EXPECT_NE(metrics.body.find(
                "flex_build_info{bench=\"unit\",seed=\"2021\"} 1"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("flex_unit_requests_total 5"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("flex_pool_size 2"), std::string::npos);
  EXPECT_NE(metrics.body.find("flex_hub_publishes_total 1"),
            std::string::npos);

  const ClientResponse health = HttpGet(server.port(), "/healthz");
  EXPECT_EQ(health.status, 200);
  const ClientResponse trace = HttpGet(server.port(), "/trace");
  EXPECT_EQ(trace.status, 200);
  EXPECT_EQ(trace.body.front(), '[');
  const ClientResponse recorder = HttpGet(server.port(), "/recorder");
  EXPECT_EQ(recorder.status, 200);
  server.Stop();
}

TEST(ObservabilityServerTest, AlertsAndQueryEndpointsServeLiveState)
{
  // One firing rule plus a short history, published the way harnesses
  // do: the engine/store live on the sim thread, the hub carries deep
  // copies to the HTTP thread.
  TimeSeriesStore store;
  AlertRule rule;
  rule.name = "UnitHot";
  rule.metric = "unit.level";
  rule.severity = AlertSeverity::kWarn;
  rule.kind = AlertRuleKind::kThreshold;
  rule.compare = AlertCompare::kGreaterThan;
  rule.threshold = 5.0;
  AlertEngine engine(&store, {rule});
  for (int i = 0; i <= 8; ++i) {
    store.Append("unit.level", MetricKind::kGauge, i * 10.0, i);
    engine.Evaluate(i * 10.0);
  }

  LiveHub hub;
  AlertsSnapshot alerts = engine.Snapshot();
  alerts.sim_time_seconds = 80.0;
  hub.PublishAlerts(alerts);
  hub.PublishSeries(store.Snapshot());

  ObservabilityServer server(hub);
  ASSERT_TRUE(server.Start());

  const ClientResponse alerts_body = HttpGet(server.port(), "/alerts");
  EXPECT_EQ(alerts_body.status, 200);
  EXPECT_NE(alerts_body.body.find("\"name\":\"UnitHot\""),
            std::string::npos);
  EXPECT_NE(alerts_body.body.find("\"state\":\"firing\""),
            std::string::npos);
  EXPECT_NE(alerts_body.body.find("\"worst_firing\":\"warn\""),
            std::string::npos);
  EXPECT_NE(alerts_body.body.find("\"to\":\"firing\""), std::string::npos);

  // The Prometheus-convention ALERTS series joins /metrics.
  const ClientResponse metrics = HttpGet(server.port(), "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("ALERTS{alertname=\"UnitHot\",severity="
                              "\"warn\",alertstate=\"firing\"} 1"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("flex_alerts_firing 1"), std::string::npos);

  // /query serves raw points, windows them, and aggregates on demand.
  const ClientResponse raw =
      HttpGet(server.port(), "/query?metric=unit.level");
  EXPECT_EQ(raw.status, 200);
  EXPECT_NE(raw.body.find("\"metric\":\"unit.level\""), std::string::npos);
  EXPECT_NE(raw.body.find("[0,0]"), std::string::npos);
  EXPECT_NE(raw.body.find("[80,8]"), std::string::npos);

  const ClientResponse windowed =
      HttpGet(server.port(), "/query?metric=unit.level&window=20");
  EXPECT_EQ(windowed.status, 200);
  EXPECT_EQ(windowed.body.find("[0,0]"), std::string::npos);
  EXPECT_NE(windowed.body.find("[80,8]"), std::string::npos);

  const ClientResponse agg =
      HttpGet(server.port(), "/query?metric=unit.level&res=30");
  EXPECT_EQ(agg.status, 200);
  EXPECT_NE(agg.body.find("\"res\":30"), std::string::npos);

  const ClientResponse unknown =
      HttpGet(server.port(), "/query?metric=no.such");
  EXPECT_EQ(unknown.status, 404);
  const ClientResponse missing = HttpGet(server.port(), "/query");
  EXPECT_EQ(missing.status, 400);
  server.Stop();
}

TEST(ObservabilityServerTest, HealthzDegradesOnlyOnPageSeverityAlerts)
{
  TimeSeriesStore store;
  AlertRule warn;
  warn.name = "WarnOnly";
  warn.metric = "unit.warn";
  warn.severity = AlertSeverity::kWarn;
  warn.threshold = 0.0;
  AlertRule page;
  page.name = "PageNow";
  page.metric = "unit.page";
  page.severity = AlertSeverity::kPage;
  page.threshold = 0.0;
  AlertEngine engine(&store, {warn, page});

  LiveHub hub;
  ObservabilityServer server(hub);

  // A firing warn-severity alert is reported but does not 503: ops see
  // it on /alerts, load balancers keep routing.
  store.Append("unit.warn", MetricKind::kGauge, 1.0, 1.0);
  engine.Evaluate(1.0);
  hub.PublishAlerts(engine.Snapshot());
  int status = 0;
  std::string body = server.RenderHealth(&status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"alerts_firing\":1"), std::string::npos);
  EXPECT_NE(body.find("\"worst_firing\":\"warn\""), std::string::npos);

  // A page-severity alert joining it flips the rollup to 503.
  store.Append("unit.page", MetricKind::kGauge, 2.0, 1.0);
  engine.Evaluate(2.0);
  hub.PublishAlerts(engine.Snapshot());
  body = server.RenderHealth(&status);
  EXPECT_EQ(status, 503);
  EXPECT_NE(body.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(body.find("\"alerts_firing\":2"), std::string::npos);
  EXPECT_NE(body.find("\"worst_firing\":\"page\""), std::string::npos);

  // Both resolve: healthy again.
  store.Append("unit.warn", MetricKind::kGauge, 3.0, -1.0);
  store.Append("unit.page", MetricKind::kGauge, 3.0, -1.0);
  engine.Evaluate(3.0);
  hub.PublishAlerts(engine.Snapshot());
  body = server.RenderHealth(&status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"worst_firing\":\"none\""), std::string::npos);
}

TEST(ConcurrentScrapeTest, SweepStaysBitIdenticalUnderScrapeLoad)
{
  // The tentpole guarantee: a scraper hammering every endpoint while a
  // parallel sweep runs cannot change a single sample. Placement solves
  // are node-budgeted (not wall-clock-budgeted), so the baseline and
  // the scraped runs are comparable bit-for-bit.
  emulation::SweepConfig sweep;
  sweep.base.setup_duration = Seconds(30.0);
  sweep.base.failover_at = Seconds(120.0);
  sweep.base.restore_at = Seconds(150.0);
  sweep.base.end_at = Seconds(180.0);
  sweep.base.seed = 2021;
  sweep.base.placement_solve_seconds = 1e9;
  sweep.base.placement_max_nodes = 2000;
  sweep.variants = 2;
  sweep.threads = 1;
  const emulation::SweepResult baseline = emulation::RunEmulationSweep(sweep);

  LiveHub hub;
  WatchdogConfig wd_config;
  wd_config.threshold_seconds = 60.0;  // generous: CI boxes stall briefly
  StallWatchdog watchdog(wd_config);
  solver::LiveSolverStats solver_live;
  ObservabilityServer server(hub);
  server.SetWatchdog(&watchdog);
  server.SetProfiler(&Profiler::Global());
  server.WireThreadPool(common::ThreadPool::Shared());
  server.AddLiveGauge("flex_solver_wave_nodes", [&solver_live] {
    return static_cast<double>(solver_live.wave_nodes.load());
  });
  server.AddLiveGauge("flex_solver_nodes_explored", [&solver_live] {
    return static_cast<double>(solver_live.nodes_explored.load());
  });
  server.AddLiveGauge("flex_solver_dual_pivots", [&solver_live] {
    return static_cast<double>(solver_live.dual_pivots.load());
  });
  server.AddLiveGauge("flex_solver_warm_dual_restarts", [&solver_live] {
    return static_cast<double>(solver_live.warm_dual_restarts.load());
  });
  ASSERT_TRUE(server.Start());
  const int port = server.port();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scrapes{0};
  std::thread scraper([port, &stop, &scrapes] {
    const char* paths[] = {"/metrics", "/healthz", "/trace", "/recorder"};
    std::size_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const ClientResponse r = HttpGet(port, paths[i++ % 4]);
      if (r.status != 0)
        scrapes.fetch_add(1, std::memory_order_relaxed);
    }
  });

  sweep.base.live = &hub;
  sweep.base.watchdog = &watchdog;
  sweep.base.solver_live = &solver_live;
  sweep.threads = 2;
  const emulation::SweepResult scraped = emulation::RunEmulationSweep(sweep);

  // The acceptance surface: a live /metrics scrape carries valid
  // exposition with pool utilization, solver progress, and phase-timer
  // histograms, all while the sweep is bit-identical below.
  const std::string metrics = server.RenderMetrics();
  ValidateExposition(metrics);
  EXPECT_NE(metrics.find("flex_pool_utilization"), std::string::npos);
  EXPECT_NE(metrics.find("flex_solver_wave_nodes"), std::string::npos);
  EXPECT_NE(metrics.find("flex_solver_nodes_explored"), std::string::npos);
  EXPECT_NE(metrics.find("flex_solver_dual_pivots"), std::string::npos);
  EXPECT_NE(metrics.find("flex_solver_warm_dual_restarts"),
            std::string::npos);
  EXPECT_NE(metrics.find("flex_phase_wall_microseconds_bucket"),
            std::string::npos);
  EXPECT_GT(solver_live.solves_finished.load(), 0);

  stop.store(true, std::memory_order_release);
  scraper.join();
  server.Stop();

  EXPECT_EQ(scraped.sample_hash, baseline.sample_hash);
  ASSERT_EQ(scraped.reports.size(), baseline.reports.size());
  for (std::size_t i = 0; i < baseline.reports.size(); ++i) {
    EXPECT_EQ(emulation::HashEmulationReport(scraped.reports[i]),
              emulation::HashEmulationReport(baseline.reports[i]))
        << "variant " << i;
  }
  // The scrape load and the publishes were real, not vacuous.
  EXPECT_GT(scrapes.load(), 0u);
  EXPECT_GT(server.requests_served(), 0u);
  EXPECT_GT(hub.publish_count(), 0u);
  EXPECT_FALSE(watchdog.any_stalled());
}

}  // namespace
}  // namespace flex::obs
