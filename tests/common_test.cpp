/**
 * @file
 * Unit tests for common utilities: units, RNG, piecewise functions,
 * stats, and the work-stealing thread pool.
 */
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/piecewise.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"

namespace flex {
namespace {

using common::ThreadPool;

TEST(UnitsTest, WattsArithmetic)
{
  const Watts a = KiloWatts(14.4);
  const Watts b = KiloWatts(17.2);
  EXPECT_NEAR((a + b).kilowatts(), 31.6, 1e-9);
  EXPECT_NEAR((b - a).kilowatts(), 2.8, 1e-9);
  EXPECT_NEAR((a * 2.0).kilowatts(), 28.8, 1e-9);
  EXPECT_NEAR(a / b, 14.4 / 17.2, 1e-12);
  EXPECT_LT(a, b);
  EXPECT_NEAR(MegaWatts(9.6).value(), 9.6e6, 1e-3);
}

TEST(UnitsTest, WattsCompoundAssignment)
{
  Watts w = KiloWatts(1.0);
  w += KiloWatts(2.0);
  w -= KiloWatts(0.5);
  w *= 2.0;
  EXPECT_NEAR(w.kilowatts(), 5.0, 1e-9);
}

TEST(UnitsTest, SecondsConversions)
{
  EXPECT_NEAR(Minutes(3.5).value(), 210.0, 1e-9);
  EXPECT_NEAR(Hours(1.0).value(), 3600.0, 1e-9);
  EXPECT_NEAR(Milliseconds(1500.0).value(), 1.5, 1e-9);
  EXPECT_NEAR(Seconds(7200.0).hours(), 2.0, 1e-12);
}

TEST(UnitsTest, EnergyIsPowerTimesTime)
{
  const Joules j = KiloWatts(1.2) * Seconds(10.0);
  EXPECT_NEAR(j.value(), 12000.0, 1e-9);
}

TEST(UnitsTest, ApproxEquals)
{
  EXPECT_TRUE(Watts(100.0).ApproxEquals(Watts(100.0 + 1e-9)));
  EXPECT_FALSE(Watts(100.0).ApproxEquals(Watts(101.0)));
}

TEST(RngTest, DeterministicAcrossInstances)
{
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge)
{
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64())
      ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformStaysInRange)
{
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusively)
{
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NormalMomentsAreApproximatelyCorrect)
{
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i)
    stats.Add(rng.Normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(RngTest, TruncatedNormalRespectsBounds)
{
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.TruncatedNormal(0.5, 1.0, 0.0, 1.0);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(RngTest, BernoulliFrequencyTracksP)
{
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, ExponentialMeanIsCorrect)
{
  Rng rng(29);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i)
    stats.Add(rng.Exponential(4.0));
  EXPECT_NEAR(stats.mean(), 4.0, 0.15);
}

TEST(RngTest, ShuffleIsAPermutation)
{
  Rng rng(31);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::multiset<int> a(items.begin(), items.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkProducesIndependentStream)
{
  Rng parent(37);
  Rng child = parent.Fork();
  EXPECT_NE(parent.NextU64(), child.NextU64());
}

TEST(PiecewiseTest, InterpolatesLinearly)
{
  const PiecewiseLinear f({{0.0, 0.0}, {1.0, 1.0}});
  EXPECT_DOUBLE_EQ(f(0.5), 0.5);
  EXPECT_DOUBLE_EQ(f(0.25), 0.25);
}

TEST(PiecewiseTest, FlatExtrapolationOutsideRange)
{
  const PiecewiseLinear f({{0.2, 1.0}, {0.8, 3.0}});
  EXPECT_DOUBLE_EQ(f(0.0), 1.0);
  EXPECT_DOUBLE_EQ(f(1.0), 3.0);
}

TEST(PiecewiseTest, MultiSegment)
{
  const PiecewiseLinear f({{0.0, 0.0}, {0.5, 0.0}, {1.0, 1.0}});
  EXPECT_DOUBLE_EQ(f(0.25), 0.0);
  EXPECT_DOUBLE_EQ(f(0.75), 0.5);
  EXPECT_TRUE(f.IsNonDecreasing());
}

TEST(PiecewiseTest, RejectsNonMonotonicX)
{
  EXPECT_THROW(PiecewiseLinear({{0.5, 0.0}, {0.5, 1.0}}), ConfigError);
  EXPECT_THROW(PiecewiseLinear({{0.5, 0.0}, {0.2, 1.0}}), ConfigError);
  EXPECT_THROW(PiecewiseLinear(std::vector<PiecewiseLinear::Point>{}),
               ConfigError);
}

TEST(PiecewiseTest, ConstantFunction)
{
  const PiecewiseLinear f = PiecewiseLinear::Constant(0.7);
  EXPECT_DOUBLE_EQ(f(-5.0), 0.7);
  EXPECT_DOUBLE_EQ(f(123.0), 0.7);
}

TEST(PiecewiseTest, MinMaxY)
{
  const PiecewiseLinear f({{0.0, 0.3}, {0.4, 0.1}, {1.0, 0.9}});
  EXPECT_DOUBLE_EQ(f.MinY(), 0.1);
  EXPECT_DOUBLE_EQ(f.MaxY(), 0.9);
  EXPECT_FALSE(f.IsNonDecreasing());
}

TEST(PiecewiseTest, ScaledY)
{
  const PiecewiseLinear f({{0.0, 0.0}, {1.0, 1.0}});
  const PiecewiseLinear g = f.ScaledY(0.5);
  EXPECT_DOUBLE_EQ(g(1.0), 0.5);
  EXPECT_DOUBLE_EQ(g(0.5), 0.25);
}

TEST(StatsTest, RunningStatsBasics)
{
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StatsTest, EmptyRunningStatsAreZero)
{
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StatsTest, PercentileInterpolates)
{
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 2.5);
  EXPECT_THROW(Percentile({}, 50.0), ConfigError);
  EXPECT_THROW(Percentile(xs, 101.0), ConfigError);
}

TEST(StatsTest, BoxStatsFiveNumberSummary)
{
  std::vector<double> xs;
  for (int i = 1; i <= 9; ++i)
    xs.push_back(static_cast<double>(i));
  const BoxStats box = BoxStats::FromSamples(xs);
  EXPECT_DOUBLE_EQ(box.min, 1.0);
  EXPECT_DOUBLE_EQ(box.median, 5.0);
  EXPECT_DOUBLE_EQ(box.max, 9.0);
  EXPECT_DOUBLE_EQ(box.p25, 3.0);
  EXPECT_DOUBLE_EQ(box.p75, 7.0);
  EXPECT_FALSE(box.ToString().empty());
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce)
{
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> sum{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 1; i <= 100; ++i)
    tasks.push_back([&sum, i] { sum.fetch_add(i); });
  pool.Run(std::move(tasks));
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, SizeOnePoolRunsInline)
{
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  int calls = 0;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 8; ++i)
    tasks.push_back([&calls] { ++calls; });
  pool.Run(std::move(tasks));
  EXPECT_EQ(calls, 8);
}

TEST(ThreadPoolTest, RethrowsFirstTaskException)
{
  ThreadPool pool(2);
  std::vector<std::function<void()>> tasks;
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    tasks.push_back([&ran, i] {
      ran.fetch_add(1);
      if (i == 5)
        throw std::runtime_error("task failed");
    });
  }
  EXPECT_THROW(pool.Run(std::move(tasks)), std::runtime_error);
  // All tasks still ran to completion before the rethrow.
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, NestedRunDoesNotDeadlock)
{
  // Every outer task fans out again on the same pool: with a naive
  // blocking wait this deadlocks once the pool is full of waiters.
  ThreadPool pool(2);
  std::atomic<int> inner{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < 4; ++i) {
    outer.push_back([&pool, &inner] {
      std::vector<std::function<void()>> tasks;
      for (int j = 0; j < 4; ++j)
        tasks.push_back([&inner] { inner.fetch_add(1); });
      pool.Run(std::move(tasks));
    });
  }
  pool.Run(std::move(outer));
  EXPECT_EQ(inner.load(), 16);
}

TEST(ThreadPoolTest, ConfiguredThreadsHonoursEnvironment)
{
  ::setenv("FLEX_SOLVER_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::ConfiguredThreads(), 3);
  ::setenv("FLEX_SOLVER_THREADS", "0", 1);
  EXPECT_GE(ThreadPool::ConfiguredThreads(), 1);  // invalid: falls back
  ::unsetenv("FLEX_SOLVER_THREADS");
  EXPECT_GE(ThreadPool::ConfiguredThreads(), 1);
}

TEST(ThreadPoolTest, WorkerIndexIsStablePerLane)
{
  ThreadPool pool(3);
  // External threads (including this one) report -1.
  EXPECT_EQ(ThreadPool::WorkerIndex(), -1);
  std::mutex mu;
  std::set<int> seen;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back([&mu, &seen] {
      const int index = ThreadPool::WorkerIndex();
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(index);
    });
  }
  pool.Run(std::move(tasks));
  // Tasks ran on the caller (-1) and/or workers (1..size-1); never on an
  // out-of-range lane.
  for (const int index : seen) {
    EXPECT_TRUE(index == -1 || (index >= 1 && index < pool.size()))
        << "unexpected lane " << index;
  }
}

TEST(ErrorTest, CheckMacrosThrowTheRightTypes)
{
  EXPECT_THROW(FLEX_CHECK(false), InternalError);
  EXPECT_THROW(FLEX_CHECK_MSG(1 == 2, "nope"), InternalError);
  EXPECT_THROW(FLEX_REQUIRE(false, "bad input"), ConfigError);
  EXPECT_NO_THROW(FLEX_CHECK(true));
  EXPECT_NO_THROW(FLEX_REQUIRE(true, "fine"));
}

}  // namespace
}  // namespace flex
