/**
 * @file
 * Out-of-band rack actuation: the rack manager (RM) / BMC model.
 *
 * Flex-Online enforces its decisions through rack managers: RAPL-style
 * power caps for throttling and power-off for shutdown (paper Sections
 * IV-D and VI). Actions complete after a latency drawn from a
 * distribution calibrated to the paper's production numbers (~2 s at the
 * 99.9th percentile), and can fail when the RM is unreachable or its
 * firmware has regressed — the failure modes the paper's background
 * monitoring service exists to catch.
 */
#ifndef FLEX_ACTUATION_RACK_MANAGER_HPP_
#define FLEX_ACTUATION_RACK_MANAGER_HPP_

#include <functional>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "obs/observability.hpp"
#include "sim/event_queue.hpp"

namespace flex::actuation {

/** Power-control state of one rack. */
struct RackState {
  bool powered_on = true;
  /** Active power cap, if any (absolute watts). */
  std::optional<Watts> power_cap;
};

/** Latency / failure knobs for rack managers. */
struct RackManagerConfig {
  /** Lognormal action latency; defaults give ~0.8 s median, ~2 s p99.9. */
  double latency_log_mean = -0.25;   ///< mu of underlying normal (log s)
  double latency_log_sigma = 0.28;   ///< sigma of underlying normal
  /** Probability an action is lost because the RM is unreachable. */
  double unreachable_probability = 0.0;
  /** Optional instrumentation sink (null: not instrumented). */
  obs::Observability* obs = nullptr;
};

/**
 * One rack's out-of-band controller.
 *
 * Commands are asynchronous: the completion callback fires on the event
 * queue after the action latency, reporting success. Commands are
 * idempotent (re-throttling an already-capped rack simply overwrites the
 * cap), which is what lets Flex run multiple controller replicas safely.
 */
class RackManager {
 public:
  RackManager(sim::EventQueue& queue, int rack_id, RackManagerConfig config,
              Rng rng);

  using Completion = std::function<void(bool success)>;

  /** Notified with the rack id after a command changes this rack's state. */
  using StateListener = std::function<void(int rack_id)>;

  /** Installs an absolute power cap (RAPL-like). */
  void Throttle(Watts cap, Completion done);
  /** Cuts rack power. */
  void Shutdown(Completion done);
  /** Removes any power cap. */
  void RemoveCap(Completion done);
  /** Powers the rack back on (boot takes longer than a cap action). */
  void Restore(Completion done);

  const RackState& state() const { return state_; }
  int rack_id() const { return rack_id_; }

  /**
   * Installs the state-change hook (one per rack; pass an empty function
   * to detach). Fires after a successful command mutates state(), at the
   * command's completion time on the event queue — the moment the rack's
   * electrical draw actually changes. RoomEmulation uses it to apply
   * incremental power deltas instead of rescanning the room.
   */
  void SetStateListener(StateListener listener)
  {
    state_listener_ = std::move(listener);
  }

  // --- Failure injection & monitoring hooks -------------------------------

  /** Makes the RM drop all commands (management network issue). */
  void SetUnreachable(bool unreachable) { unreachable_ = unreachable; }
  bool unreachable() const { return unreachable_; }

  /** Marks firmware as regressed: actions complete but have no effect. */
  void SetFirmwareStale(bool stale) { firmware_stale_ = stale; }
  bool firmware_stale() const { return firmware_stale_; }

  /**
   * Adds a fixed delay to every command (management-network congestion /
   * slow BMC firmware). Applies to failure timeouts too; 0 clears it.
   */
  void SetExtraLatency(Seconds extra);
  Seconds extra_latency() const { return extra_latency_; }

  /** Health probe: true when reachable with healthy firmware. */
  bool Probe() const { return !unreachable_ && !firmware_stale_; }

  /** Re-flashes firmware (clears the stale flag). */
  void RedeployFirmware() { firmware_stale_ = false; }

  /** Latency samples of completed actions (seconds). */
  const std::vector<double>& action_latencies() const {
    return action_latencies_;
  }

 private:
  enum class Kind { kThrottle, kShutdown, kRemoveCap, kRestore };

  void Execute(Kind kind, std::optional<Watts> cap, Completion done);
  Seconds DrawLatency(Kind kind);

  sim::EventQueue& queue_;
  int rack_id_;
  RackManagerConfig config_;
  Rng rng_;
  RackState state_;
  bool unreachable_ = false;
  bool firmware_stale_ = false;
  Seconds extra_latency_{0.0};
  StateListener state_listener_;
  std::vector<double> action_latencies_;

  // Cached metric objects (registry lookups stay off the hot path).
  obs::Counter* commands_metric_ = nullptr;
  obs::Counter* failed_metric_ = nullptr;
  obs::Counter* dropped_metric_ = nullptr;
  obs::Histogram* latency_metric_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
};

/**
 * All rack managers of a room plus aggregate statistics.
 */
class ActuationPlane {
 public:
  ActuationPlane(sim::EventQueue& queue, int num_racks,
                 RackManagerConfig config, std::uint64_t seed);

  RackManager& rack(int rack_id);
  const RackManager& rack(int rack_id) const;
  int num_racks() const { return static_cast<int>(racks_.size()); }

  /** Pooled action-latency samples across all racks (seconds). */
  std::vector<double> AllActionLatencies() const;

  /** Installs @p listener on every rack (see RackManager::SetStateListener). */
  void SetStateListener(RackManager::StateListener listener);

 private:
  std::vector<RackManager> racks_;
};

}  // namespace flex::actuation

#endif  // FLEX_ACTUATION_RACK_MANAGER_HPP_
