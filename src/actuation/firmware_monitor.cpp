#include "firmware_monitor.hpp"

#include <utility>

#include "common/error.hpp"

namespace flex::actuation {

FirmwareMonitor::FirmwareMonitor(sim::EventQueue& queue,
                                 ActuationPlane& plane,
                                 FirmwareMonitorConfig config,
                                 std::uint64_t seed)
    : queue_(queue), plane_(plane), config_(config), rng_(seed)
{
  FLEX_REQUIRE(config_.probe_period.value() > 0.0,
               "probe period must be positive");
  FLEX_REQUIRE(config_.fake_action_fraction >= 0.0 &&
                   config_.fake_action_fraction <= 1.0,
               "fake action fraction must be in [0, 1]");
}

void
FirmwareMonitor::OnWarning(WarningCallback callback)
{
  FLEX_REQUIRE(static_cast<bool>(callback), "null warning callback");
  callbacks_.push_back(std::move(callback));
}

void
FirmwareMonitor::Start()
{
  FLEX_REQUIRE(!running_, "monitor already started");
  running_ = true;
  sim::SchedulePeriodic(queue_, config_.probe_period, [this] {
    if (!running_)
      return false;
    Sweep();
    return true;
  });
}

void
FirmwareMonitor::Stop()
{
  running_ = false;
}

void
FirmwareMonitor::Warn(int rack_id, std::string reason)
{
  MonitorWarning warning{rack_id, std::move(reason), queue_.Now()};
  warnings_.push_back(warning);
  for (const WarningCallback& callback : callbacks_)
    callback(warning);
}

void
FirmwareMonitor::Sweep()
{
  for (int r = 0; r < plane_.num_racks(); ++r) {
    RackManager& rm = plane_.rack(r);
    if (rm.unreachable()) {
      Warn(r, "rack manager unreachable");
      continue;
    }
    if (rm.firmware_stale()) {
      Warn(r, "firmware regression detected");
      continue;
    }
    // Exercise a fake action on a sample of healthy racks: a no-op cap
    // change that exists purely to prove the control path end to end.
    if (rng_.Bernoulli(config_.fake_action_fraction)) {
      const auto previous_cap = rm.state().power_cap;
      auto restore = [&rm, previous_cap, this, r](bool ok) {
        if (!ok) {
          Warn(r, "fake action failed");
          return;
        }
        if (previous_cap)
          rm.Throttle(*previous_cap, [](bool) {});
        else
          rm.RemoveCap([](bool) {});
      };
      rm.Throttle(Watts(1e9), restore);  // effectively a no-op cap
    }
  }
  ++sweeps_;
}

}  // namespace flex::actuation
