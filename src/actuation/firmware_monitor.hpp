/**
 * @file
 * Background firmware/network health monitor (paper Section VI).
 *
 * Production Flex runs a service that continuously checks that every
 * rack manager is reachable and running current firmware, and that
 * periodically injects failures and takes fake actions, so that no
 * regression silently breaks actuation before a real maintenance event.
 * Problems raise warnings for operators to remediate.
 */
#ifndef FLEX_ACTUATION_FIRMWARE_MONITOR_HPP_
#define FLEX_ACTUATION_FIRMWARE_MONITOR_HPP_

#include <functional>
#include <string>
#include <vector>

#include "actuation/rack_manager.hpp"
#include "sim/event_queue.hpp"

namespace flex::actuation {

/** A warning raised by the monitor. */
struct MonitorWarning {
  int rack_id = -1;
  std::string reason;
  Seconds raised_at;
};

/** Configuration of the background monitor. */
struct FirmwareMonitorConfig {
  /** Interval between full probe sweeps. */
  Seconds probe_period = Seconds(60.0);
  /** Fraction of racks that get a fake (dry-run) action each sweep. */
  double fake_action_fraction = 0.05;
};

/**
 * Periodically probes all rack managers and exercises fake actions.
 */
class FirmwareMonitor {
 public:
  using WarningCallback = std::function<void(const MonitorWarning&)>;

  FirmwareMonitor(sim::EventQueue& queue, ActuationPlane& plane,
                  FirmwareMonitorConfig config, std::uint64_t seed);

  /** Registers a warning sink (e.g. the operator alert channel). */
  void OnWarning(WarningCallback callback);

  /** Starts the periodic sweeps. */
  void Start();

  /** Stops future sweeps. */
  void Stop();

  std::size_t sweeps_completed() const { return sweeps_; }
  const std::vector<MonitorWarning>& warnings() const { return warnings_; }

 private:
  void Sweep();
  void Warn(int rack_id, std::string reason);

  sim::EventQueue& queue_;
  ActuationPlane& plane_;
  FirmwareMonitorConfig config_;
  Rng rng_;
  bool running_ = false;
  std::size_t sweeps_ = 0;
  std::vector<MonitorWarning> warnings_;
  std::vector<WarningCallback> callbacks_;
};

}  // namespace flex::actuation

#endif  // FLEX_ACTUATION_FIRMWARE_MONITOR_HPP_
