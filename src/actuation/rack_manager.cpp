#include "rack_manager.hpp"

#include <utility>

#include "common/error.hpp"

namespace flex::actuation {

RackManager::RackManager(sim::EventQueue& queue, int rack_id,
                         RackManagerConfig config, Rng rng)
    : queue_(queue), rack_id_(rack_id), config_(config), rng_(rng)
{
  FLEX_REQUIRE(config_.unreachable_probability >= 0.0 &&
                   config_.unreachable_probability <= 1.0,
               "unreachable probability must be in [0, 1]");
  if (config_.obs != nullptr) {
    obs::MetricsRegistry& metrics = config_.obs->metrics();
    commands_metric_ = &metrics.counter("actuation.commands");
    failed_metric_ = &metrics.counter("actuation.failed_commands");
    dropped_metric_ = &metrics.counter("actuation.dropped_commands");
    latency_metric_ = &metrics.histogram("actuation.action_latency_s");
    recorder_ = &config_.obs->recorder();
  }
}

Seconds
RackManager::DrawLatency(Kind kind)
{
  const double base =
      rng_.LogNormal(config_.latency_log_mean, config_.latency_log_sigma);
  // Powering a rack back on includes boot time; caps/shutdowns are fast
  // out-of-band commands.
  const double scale = kind == Kind::kRestore ? 30.0 : 1.0;
  return Seconds(base * scale);
}

void
RackManager::SetExtraLatency(Seconds extra)
{
  FLEX_REQUIRE(extra.value() >= 0.0, "negative extra latency");
  extra_latency_ = extra;
}

void
RackManager::Execute(Kind kind, std::optional<Watts> cap, Completion done)
{
  FLEX_REQUIRE(static_cast<bool>(done), "null completion callback");
  if (commands_metric_ != nullptr)
    commands_metric_->Increment();
  if (recorder_ != nullptr)
    recorder_->Record(queue_.Now(), obs::RecordKind::kRackCommand, rack_id_,
                      static_cast<int>(kind),
                      cap.has_value() ? cap->value() : 0.0);
  if (unreachable_ || rng_.Bernoulli(config_.unreachable_probability)) {
    // The command is lost; report failure after a timeout-ish delay so
    // callers see realistic failure detection latency.
    if (dropped_metric_ != nullptr)
      dropped_metric_->Increment();
    queue_.Schedule(Seconds(2.0) + extra_latency_, [done] { done(false); });
    return;
  }
  const Seconds latency = DrawLatency(kind) + extra_latency_;
  const bool stale = firmware_stale_;
  queue_.Schedule(latency, [this, kind, cap, done, latency, stale] {
    action_latencies_.push_back(latency.value());
    if (latency_metric_ != nullptr)
      latency_metric_->Observe(latency.value());
    if (stale) {
      // Regression: the RM acknowledges but the action has no effect.
      if (failed_metric_ != nullptr)
        failed_metric_->Increment();
      done(false);
      return;
    }
    switch (kind) {
      case Kind::kThrottle:
        state_.power_cap = cap;
        break;
      case Kind::kShutdown:
        state_.powered_on = false;
        break;
      case Kind::kRemoveCap:
        state_.power_cap.reset();
        break;
      case Kind::kRestore:
        state_.powered_on = true;
        break;
    }
    if (state_listener_)
      state_listener_(rack_id_);
    done(true);
  });
}

void
RackManager::Throttle(Watts cap, Completion done)
{
  FLEX_REQUIRE(cap >= Watts(0.0), "negative power cap");
  Execute(Kind::kThrottle, cap, std::move(done));
}

void
RackManager::Shutdown(Completion done)
{
  Execute(Kind::kShutdown, std::nullopt, std::move(done));
}

void
RackManager::RemoveCap(Completion done)
{
  Execute(Kind::kRemoveCap, std::nullopt, std::move(done));
}

void
RackManager::Restore(Completion done)
{
  Execute(Kind::kRestore, std::nullopt, std::move(done));
}

ActuationPlane::ActuationPlane(sim::EventQueue& queue, int num_racks,
                               RackManagerConfig config, std::uint64_t seed)
{
  FLEX_REQUIRE(num_racks >= 0, "negative rack count");
  Rng seed_rng(seed);
  racks_.reserve(static_cast<std::size_t>(num_racks));
  for (int i = 0; i < num_racks; ++i)
    racks_.emplace_back(queue, i, config, seed_rng.Fork());
}

RackManager&
ActuationPlane::rack(int rack_id)
{
  FLEX_REQUIRE(rack_id >= 0 && rack_id < num_racks(),
               "rack id out of range");
  return racks_[static_cast<std::size_t>(rack_id)];
}

const RackManager&
ActuationPlane::rack(int rack_id) const
{
  FLEX_REQUIRE(rack_id >= 0 && rack_id < num_racks(),
               "rack id out of range");
  return racks_[static_cast<std::size_t>(rack_id)];
}

void
ActuationPlane::SetStateListener(RackManager::StateListener listener)
{
  for (RackManager& rack : racks_)
    rack.SetStateListener(listener);
}

std::vector<double>
ActuationPlane::AllActionLatencies() const
{
  std::vector<double> all;
  for (const RackManager& rack : racks_) {
    all.insert(all.end(), rack.action_latencies().begin(),
               rack.action_latencies().end());
  }
  return all;
}

}  // namespace flex::actuation
