/**
 * @file
 * Always-on safety-invariant monitor.
 *
 * Hooks the sim::EventQueue's observer so that after *every* executed
 * event it re-checks the paper's safety claims against ground truth:
 *
 *  (a) trip safety — no UPS sustains an overload longer than its trip
 *      curve tolerates (Sections III, Fig. 6);
 *  (b) action legality — power caps only ever appear on non-redundant
 *      cap-able racks (Algorithm 1 never caps SR or non-cap-able ones);
 *  (c) safe release — controllers issue release commands (uncap or
 *      restore) only when the room has recently had headroom, modulo a
 *      telemetry-staleness grace window;
 *  (d) no missed overload — a sustained overload is answered by at
 *      least one controller replica within a response deadline
 *      (idempotent overcorrection is fine, silence is not).
 *
 * The monitor is a pure observer: it never schedules events or touches
 * component state, so attaching it cannot perturb the simulation — the
 * event interleaving with and without the monitor is identical.
 */
#ifndef FLEX_FAULT_INVARIANT_MONITOR_HPP_
#define FLEX_FAULT_INVARIANT_MONITOR_HPP_

#include <functional>
#include <string>
#include <vector>

#include "actuation/rack_manager.hpp"
#include "common/units.hpp"
#include "obs/http_export.hpp"
#include "obs/observability.hpp"
#include "online/controller.hpp"
#include "power/topology.hpp"
#include "sim/event_queue.hpp"
#include "workload/deployment.hpp"

namespace flex::fault {

/** Monitor tuning. */
struct MonitorConfig {
  /**
   * How long the room may have been unsafe before a release decision
   * counts as a violation of (c). Covers end-to-end telemetry latency:
   * a release racing a brand-new failover inside this window is an
   * unavoidable (and self-correcting) stale-data decision.
   */
  Seconds release_grace = Seconds(5.0);
  /** Deadline for (d): sustained overload must see some action by then. */
  Seconds response_deadline = Seconds(15.0);
  /** Relative slack on the load fraction before "unsafe" (meter noise). */
  double overload_epsilon = 1e-9;
  /** Optional instrumentation sink (null: not instrumented). */
  obs::Observability* obs = nullptr;
};

/** One detected invariant violation. */
struct Violation {
  Seconds at{0.0};
  std::string invariant;  ///< "ups-trip", "illegal-cap", ...
  std::string message;
};

/**
 * The monitor. Construct it with the room's ground-truth surfaces,
 * Attach() it to the queue, and read violations() after the run.
 */
class InvariantMonitor {
 public:
  /**
   * @param true_ups_loads returns the instantaneous true per-UPS load
   *        (post-failover redistribution), indexed by UpsId.
   */
  InvariantMonitor(sim::EventQueue& queue,
                   const power::RoomTopology& topology,
                   std::vector<workload::Category> rack_categories,
                   const actuation::ActuationPlane& plane,
                   std::function<std::vector<Watts>()> true_ups_loads,
                   MonitorConfig config = {});

  /** Adds a controller replica to watch for (c) and (d). */
  void AddController(const online::FlexController* controller);

  /**
   * Mirrors health onto the live observability plane: every violation
   * publishes an unhealthy HealthSnapshot to @p hub, which `/healthz`
   * answers with HTTP 503. Pass nullptr to detach. Publishing happens
   * on the sim thread (the hub is the thread-safe mailbox); the monitor
   * stays a pure observer of the simulation either way.
   */
  void SetLiveHub(obs::LiveHub* hub) { live_hub_ = hub; }

  /** Installs the monitor as an event observer on the queue. */
  void Attach();

  /** Uninstalls the observer; a no-op when not attached. */
  void Detach();

  /** Runs every invariant check at the current instant. */
  void Check();

  const std::vector<Violation>& violations() const { return violations_; }

  /** Worst true UPS load fraction seen (1.0 = rated capacity). */
  double worst_overload_fraction() const { return worst_fraction_; }

  /** Number of Check() invocations (≈ executed events once attached). */
  std::uint64_t checks_run() const { return checks_run_; }

  /** Newline-joined violation messages; empty when all invariants held. */
  std::string Summary() const;

 private:
  void AddViolation(const char* invariant, const std::string& message);
  std::size_t TotalReleaseCommands() const;
  bool AnyControllerActed() const;

  sim::EventQueue& queue_;
  const power::RoomTopology& topology_;
  std::vector<workload::Category> categories_;
  const actuation::ActuationPlane& plane_;
  std::function<std::vector<Watts>()> true_ups_loads_;
  MonitorConfig config_;
  std::vector<const online::FlexController*> controllers_;
  sim::ObserverId observer_id_ = 0;  // 0: not attached

  // (a) per-UPS overload episodes.
  std::vector<double> overload_since_;  // <0: not overloaded
  std::vector<bool> trip_reported_;
  // (b) per-rack cap-violation dedup.
  std::vector<bool> cap_reported_;
  // (c)/(d) room-level unsafe episode.
  double unsafe_since_ = -1.0;
  bool missed_reported_ = false;
  std::size_t seen_release_commands_ = 0;

  double worst_fraction_ = 0.0;
  std::uint64_t checks_run_ = 0;
  std::vector<Violation> violations_;

  // Cached instrumentation (null: not instrumented).
  obs::Counter* violations_metric_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
  obs::LiveHub* live_hub_ = nullptr;
};

}  // namespace flex::fault

#endif  // FLEX_FAULT_INVARIANT_MONITOR_HPP_
