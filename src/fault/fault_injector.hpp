/**
 * @file
 * Arms FaultPlans onto a live room.
 *
 * The injector turns a FaultPlan (plain data) into scheduled events on
 * the room's sim::EventQueue: every fault gets a begin event at its
 * start time and, when it has a finite duration, a repair event at
 * start + duration. Execution is recorded into a textual trace in
 * exact firing order, which is what the seed-replay tests compare —
 * two runs of the same seed must produce byte-identical traces.
 */
#ifndef FLEX_FAULT_FAULT_INJECTOR_HPP_
#define FLEX_FAULT_FAULT_INJECTOR_HPP_

#include <functional>
#include <string>
#include <vector>

#include "actuation/rack_manager.hpp"
#include "fault/fault_plan.hpp"
#include "online/controller.hpp"
#include "sim/event_queue.hpp"
#include "telemetry/pipeline.hpp"

namespace flex::fault {

/**
 * The injectable surfaces of one room. Null members simply make the
 * corresponding fault kinds invalid (Arm rejects such plans), so tests
 * can target a bare pipeline or a bare actuation plane.
 */
struct InjectorTargets {
  sim::EventQueue* queue = nullptr;                  ///< required
  telemetry::TelemetryPipeline* pipeline = nullptr;  ///< telemetry faults
  actuation::ActuationPlane* plane = nullptr;        ///< rack-manager faults
  /** Fails (true) / restores (false) a UPS; enables kUpsFailover. */
  std::function<void(int ups, bool failed)> set_ups_failed;
  /** Replicas, indexed by target; enables kControllerPause. */
  std::vector<online::FlexController*> controllers;
  /** Number of UPSes, for kUpsFailover target validation. */
  int num_ups = 0;
  /** Optional flight recorder fed with begin/repair records. */
  obs::FlightRecorder* recorder = nullptr;
};

/**
 * Schedules a FaultPlan's events and applies them as they fire.
 */
class FaultInjector {
 public:
  explicit FaultInjector(InjectorTargets targets);

  /**
   * Validates every event against the targets and schedules it. May be
   * called multiple times (plans compose). Events whose begin time is
   * already in the past fire immediately on the next queue step.
   */
  void Arm(const FaultPlan& plan);

  /** Begin/repair records in execution order ("t=... begin ..."). */
  const std::vector<std::string>& executed_trace() const { return trace_; }

  /** Queue events scheduled so far (begin + repair). */
  int scheduled_count() const { return scheduled_; }

 private:
  void Validate(const FaultEvent& event) const;
  /** Applies the begin (start=true) or repair (start=false) half. */
  void Apply(const FaultEvent& event, bool start);
  void Record(const FaultEvent& event, bool start);

  InjectorTargets targets_;
  std::vector<std::string> trace_;
  int scheduled_ = 0;
};

}  // namespace flex::fault

#endif  // FLEX_FAULT_FAULT_INJECTOR_HPP_
