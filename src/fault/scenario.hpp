/**
 * @file
 * Small self-contained room for fault fuzzing.
 *
 * Wires a 3N/2 room (3 UPSes, 3 PDU pairs, 12 racks) through the full
 * online stack — redundant telemetry, multi-primary controllers,
 * rack-manager actuation — with the InvariantMonitor attached, and runs
 * a FaultPlan against it. Deliberately smaller than the Section V-C
 * emulation room: one scenario executes a few thousand events, so the
 * property tests can sweep hundreds of seeds in seconds.
 *
 * Everything is derived from one seed (workloads, telemetry jitter,
 * actuation latencies, the fault plan), so a failing seed replays the
 * exact same run.
 */
#ifndef FLEX_FAULT_SCENARIO_HPP_
#define FLEX_FAULT_SCENARIO_HPP_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "actuation/rack_manager.hpp"
#include "common/rng.hpp"
#include "fault/fault_fuzzer.hpp"
#include "fault/fault_injector.hpp"
#include "fault/invariant_monitor.hpp"
#include "obs/alerts.hpp"
#include "obs/timeseries.hpp"
#include "online/controller.hpp"
#include "power/topology.hpp"
#include "sim/event_queue.hpp"
#include "telemetry/pipeline.hpp"
#include "workload/deployment.hpp"

namespace flex::fault {

/** Scenario knobs; defaults keep the room inside the safety envelope. */
struct ScenarioConfig {
  ScenarioShape shape;
  /** Rated capacity of each UPS. */
  Watts ups_capacity = KiloWatts(200.0);
  /** Per-rack allocation (12 racks × 50 kW = 600 kW provisioned). */
  Watts rack_allocation = KiloWatts(50.0);
  /** Flex power (lowest cap) as a fraction of allocation. */
  double flex_power_fraction = 0.5;
  /** Per-rack base utilization: truncated normal over [min, max]. */
  double mean_utilization = 0.78;
  double utilization_sigma = 0.05;
  double min_utilization = 0.60;
  double max_utilization = 0.84;
  /** Per-step random-walk jitter on utilization. */
  double utilization_jitter = 0.004;
  Seconds workload_step{1.0};
  bool attach_monitor = true;
  MonitorConfig monitor;
  telemetry::PipelineConfig pipeline;
  actuation::RackManagerConfig rack_manager;
  online::ControllerConfig controller;
  /**
   * Optional instrumentation sink, fanned out into every component's
   * config (and the injector's flight-recorder feed). The scenario
   * binds the registry clock to its own queue.
   */
  obs::Observability* obs = nullptr;
  /**
   * Time-series history + alert rules, active only when obs is
   * attached (the rules read registry metrics). Enabled by default so
   * recorded runs and their replays evaluate the same rule set — the
   * kAlert flight records must align record-for-record — while fuzz
   * sweeps, which force obs = nullptr per lane, stay byte-identical to
   * the pre-alerting behaviour.
   */
  obs::AlertsConfig alerts;

  ScenarioConfig();
};

/** What one scenario run measured. */
struct ScenarioReport {
  std::uint64_t events_executed = 0;
  std::size_t readings_delivered = 0;
  int overdraw_events = 0;
  int throttle_commands = 0;
  int shutdown_commands = 0;
  int restore_commands = 0;
  int uncap_commands = 0;
  int failed_commands = 0;
  double worst_overload_fraction = 0.0;
  std::vector<Violation> violations;
  /** Human-readable violation listing; empty when all invariants held. */
  std::string violation_summary;
  /** The injector's begin/repair trace in execution order. */
  std::vector<std::string> fault_trace;
  /** Alerting results (zero/empty when no engine was attached). */
  std::uint64_t alerts_fired = 0;
  std::vector<obs::AlertTransition> alert_timeline;
  std::uint64_t alert_fingerprint = 0;
  std::uint64_t store_fingerprint = 0;
};

/**
 * One fuzzable room. Construct, optionally Arm() extra plans, Run().
 */
class FaultScenario : public telemetry::PowerSource {
 public:
  FaultScenario(ScenarioConfig config, std::uint64_t seed);
  ~FaultScenario() override;

  // telemetry::PowerSource:
  Watts CurrentPower(telemetry::DeviceId device) const override;

  /** Runs @p plan against the room and reports. */
  ScenarioReport Run(const FaultPlan& plan);

  /** Injectable surfaces, for tests that drive the injector directly. */
  InjectorTargets targets();

  /** Ground-truth per-UPS loads after failover redistribution. */
  std::vector<Watts> TrueUpsLoads() const;

  /** Fails / restores a UPS (the kUpsFailover handler). */
  void SetUpsFailed(int ups, bool failed);

  sim::EventQueue& queue() { return queue_; }
  const sim::EventQueue& queue() const { return queue_; }
  telemetry::TelemetryPipeline& pipeline() { return *pipeline_; }
  actuation::ActuationPlane& plane() { return *plane_; }
  const actuation::ActuationPlane& plane() const { return *plane_; }
  const power::RoomTopology& topology() const { return topology_; }
  const InvariantMonitor& monitor() const { return *monitor_; }
  const std::vector<workload::Category>& categories() const {
    return categories_;
  }
  int failed_ups() const { return failed_ups_; }

  /** History store / alert engine; nullptr unless obs + alerts.enabled. */
  const obs::TimeSeriesStore* timeseries() const { return ts_store_.get(); }
  const obs::AlertEngine* alert_engine() const {
    return alert_engine_.get();
  }

 private:
  Watts TrueRackPower(int rack_id) const;
  void StepWorkloads();

  ScenarioConfig config_;
  power::RoomTopology topology_;
  sim::EventQueue queue_;
  Rng rng_;

  std::vector<double> utilization_;  ///< per rack, random-walked
  std::vector<workload::Category> categories_;

  std::unique_ptr<actuation::ActuationPlane> plane_;
  std::unique_ptr<telemetry::TelemetryPipeline> pipeline_;
  std::vector<std::unique_ptr<online::FlexController>> controllers_;
  std::unique_ptr<InvariantMonitor> monitor_;
  std::unique_ptr<obs::TimeSeriesStore> ts_store_;
  std::unique_ptr<obs::AlertEngine> alert_engine_;

  int failed_ups_ = -1;
};

/**
 * Samples a plan for @p seed, runs it on a fresh scenario, and returns
 * the report. When @p trace_out is non-null it receives the plan's
 * DebugString — print it alongside the seed on violation so the failure
 * is reproducible from the test log alone.
 */
ScenarioReport RunFuzzedScenario(const ScenarioConfig& config,
                                 std::uint64_t seed,
                                 std::string* trace_out = nullptr);

/**
 * Runs RunFuzzedScenario for seeds first_seed .. first_seed+count-1,
 * fanning independent scenarios out across thread-pool lanes (0 = the
 * shared pool, 1 = inline serial, n = a private pool of n lanes) and
 * merging serially in seed order — reports[i] is seed first_seed+i for
 * any thread count. Each lane forces obs = nullptr (the registry is
 * single-threaded). When @p traces is non-null it receives the plan
 * DebugStrings, also in seed order.
 */
std::vector<ScenarioReport> RunFuzzSweep(const ScenarioConfig& config,
                                         std::uint64_t first_seed, int count,
                                         int threads = 0,
                                         std::vector<std::string>* traces =
                                             nullptr);

}  // namespace flex::fault

#endif  // FLEX_FAULT_SCENARIO_HPP_
