#include "scenario.hpp"

#include <algorithm>
#include <functional>
#include <utility>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "power/loads.hpp"

namespace flex::fault {

using telemetry::DeviceId;
using telemetry::DeviceKind;
using workload::Category;

namespace {

/** 3N/2 room sized to the scenario shape. */
power::RoomConfig
BuildRoomConfig(const ScenarioConfig& config)
{
  power::RoomConfig room;
  room.num_ups = config.shape.num_ups;
  room.redundancy_y = config.shape.num_ups - 1;
  room.ups_capacity = config.ups_capacity;
  room.pdu_pairs_per_ups_pair = 1;
  room.rows_per_pdu_pair = 2;
  room.racks_per_row = 2;
  return room;
}

/**
 * Category pattern per PDU pair (4 racks each): one software-redundant,
 * two cap-able, one non-cap-able — every pair has both recovery levers
 * plus an untouchable rack, like the paper's mixed rooms.
 */
Category
CategoryFor(int rack_id)
{
  switch (rack_id % 4) {
    case 0:
      return Category::kSoftwareRedundant;
    case 1:
    case 2:
      return Category::kNonRedundantCapable;
    default:
      return Category::kNonRedundantNonCapable;
  }
}

const char*
WorkloadNameFor(Category category)
{
  switch (category) {
    case Category::kSoftwareRedundant:
      return "sr-batch";
    case Category::kNonRedundantCapable:
      return "capable-txn";
    case Category::kNonRedundantNonCapable:
      return "noncap-storage";
  }
  FLEX_CONFIG_ERROR("unknown category");
}

}  // namespace

ScenarioConfig::ScenarioConfig()
{
  // A small room reacts faster than the 9.6 MW evaluation room; shrink
  // the controller's margins to match (defaults target megawatt scale).
  controller.buffer = KiloWatts(8.0);
  controller.release_delay = Seconds(10.0);
  // On by default: the engine only runs when obs is attached, and
  // recorded runs + replays must evaluate identical rule sets.
  alerts.enabled = true;
}

FaultScenario::FaultScenario(ScenarioConfig config, std::uint64_t seed)
    : config_(std::move(config)),
      topology_(BuildRoomConfig(config_)),
      rng_(seed)
{
  const ScenarioShape& shape = config_.shape;
  FLEX_REQUIRE(topology_.NumRows() * topology_.RacksPerRow() ==
                   shape.num_racks,
               "scenario shape does not match the 3N/2 room layout");
  FLEX_REQUIRE(config_.min_utilization <= config_.mean_utilization &&
                   config_.mean_utilization <= config_.max_utilization,
               "utilization bounds must bracket the mean");

  if (config_.obs != nullptr) {
    // One obs handle instruments the whole room; fan it out before the
    // components cache their metric pointers.
    config_.obs->BindClock(queue_);
    config_.pipeline.obs = config_.obs;
    config_.rack_manager.obs = config_.obs;
    config_.controller.obs = config_.obs;
    config_.monitor.obs = config_.obs;
  }

  categories_.reserve(static_cast<std::size_t>(shape.num_racks));
  utilization_.reserve(static_cast<std::size_t>(shape.num_racks));
  for (int r = 0; r < shape.num_racks; ++r) {
    categories_.push_back(CategoryFor(r));
    utilization_.push_back(rng_.TruncatedNormal(
        config_.mean_utilization, config_.utilization_sigma,
        config_.min_utilization, config_.max_utilization));
  }

  plane_ = std::make_unique<actuation::ActuationPlane>(
      queue_, shape.num_racks, config_.rack_manager, rng_.NextU64());

  telemetry::PipelineConfig pipeline_config = config_.pipeline;
  pipeline_config.meters_per_device = shape.meters_per_device;
  pipeline_config.num_pollers = shape.num_pollers;
  pipeline_config.num_buses = shape.num_buses;
  pipeline_ = std::make_unique<telemetry::TelemetryPipeline>(
      queue_, *this, shape.num_ups, shape.num_racks, pipeline_config,
      rng_.NextU64());

  std::vector<online::ManagedRack> managed;
  managed.reserve(static_cast<std::size_t>(shape.num_racks));
  for (int r = 0; r < shape.num_racks; ++r) {
    online::ManagedRack m;
    m.rack_id = r;
    m.category = categories_[static_cast<std::size_t>(r)];
    m.workload = WorkloadNameFor(m.category);
    m.pdu_pair = topology_.PduPairOfRow(r / topology_.RacksPerRow());
    m.allocated = config_.rack_allocation;
    m.flex_power = config_.rack_allocation * config_.flex_power_fraction;
    managed.push_back(std::move(m));
  }

  for (int c = 0; c < shape.num_controllers; ++c) {
    controllers_.push_back(std::make_unique<online::FlexController>(
        queue_, topology_, managed, *plane_, online::ImpactRegistry{},
        config_.controller, c));
    online::FlexController* controller = controllers_.back().get();
    pipeline_->Subscribe([controller](const telemetry::DeviceReading& r) {
      controller->OnReading(r);
    });
  }

  if (config_.attach_monitor) {
    monitor_ = std::make_unique<InvariantMonitor>(
        queue_, topology_, categories_, *plane_,
        [this] { return TrueUpsLoads(); }, config_.monitor);
    for (const auto& controller : controllers_)
      monitor_->AddController(controller.get());
    monitor_->Attach();
  }

  if (config_.obs != nullptr && config_.alerts.enabled) {
    ts_store_ = std::make_unique<obs::TimeSeriesStore>(config_.alerts.store);
    std::vector<obs::AlertRule> rules = config_.alerts.rules;
    if (rules.empty())
      rules = obs::BuiltinAlertRules();
    alert_engine_ =
        std::make_unique<obs::AlertEngine>(ts_store_.get(), std::move(rules));
    alert_engine_->SetRecorder(&config_.obs->recorder());
  }
}

FaultScenario::~FaultScenario() = default;

Watts
FaultScenario::TrueRackPower(int rack_id) const
{
  const actuation::RackState& state = plane_->rack(rack_id).state();
  if (!state.powered_on)
    return Watts(0.0);
  Watts demand = config_.rack_allocation *
                 utilization_[static_cast<std::size_t>(rack_id)];
  if (state.power_cap && demand > *state.power_cap)
    demand = *state.power_cap;
  return demand;
}

std::vector<Watts>
FaultScenario::TrueUpsLoads() const
{
  power::PduPairLoads pdu_loads(
      static_cast<std::size_t>(topology_.NumPduPairs()), Watts(0.0));
  for (int r = 0; r < config_.shape.num_racks; ++r) {
    const power::PduPairId pair =
        topology_.PduPairOfRow(r / topology_.RacksPerRow());
    pdu_loads[static_cast<std::size_t>(pair)] += TrueRackPower(r);
  }
  if (failed_ups_ >= 0)
    return power::FailoverUpsLoads(topology_, pdu_loads, failed_ups_);
  return power::NormalUpsLoads(topology_, pdu_loads);
}

Watts
FaultScenario::CurrentPower(DeviceId device) const
{
  if (device.kind == DeviceKind::kRack)
    return TrueRackPower(device.index);
  return TrueUpsLoads()[static_cast<std::size_t>(device.index)];
}

void
FaultScenario::SetUpsFailed(int ups, bool failed)
{
  FLEX_REQUIRE(ups >= 0 && ups < config_.shape.num_ups,
               "UPS index out of range");
  if (failed) {
    FLEX_CHECK_MSG(failed_ups_ < 0 || failed_ups_ == ups,
                   "fault envelope allows only one failed UPS at a time");
    failed_ups_ = ups;
  } else if (failed_ups_ == ups) {
    failed_ups_ = -1;
  }
}

InjectorTargets
FaultScenario::targets()
{
  InjectorTargets targets;
  targets.queue = &queue_;
  targets.pipeline = pipeline_.get();
  targets.plane = plane_.get();
  targets.set_ups_failed = [this](int ups, bool failed) {
    SetUpsFailed(ups, failed);
  };
  for (const auto& controller : controllers_)
    targets.controllers.push_back(controller.get());
  targets.num_ups = config_.shape.num_ups;
  if (config_.obs != nullptr)
    targets.recorder = &config_.obs->recorder();
  return targets;
}

void
FaultScenario::StepWorkloads()
{
  for (double& utilization : utilization_) {
    utilization = std::clamp(
        utilization + rng_.Normal(0.0, config_.utilization_jitter),
        config_.min_utilization, config_.max_utilization);
  }
}

ScenarioReport
FaultScenario::Run(const FaultPlan& plan)
{
  FaultInjector injector(targets());
  injector.Arm(plan);

  pipeline_->Start();
  const Seconds horizon = config_.shape.horizon;
  sim::SchedulePeriodic(queue_, config_.workload_step, [this, horizon] {
    StepWorkloads();
    // The monitor→rule bridge: the registry snapshot carries the
    // monitor's invariants.violations counter (and every other metric)
    // into the history store, then the rules judge it on sim time.
    if (alert_engine_ != nullptr) {
      ts_store_->Sample(config_.obs->metrics().Snapshot());
      alert_engine_->Evaluate(queue_.Now().value());
    }
    return queue_.Now() < horizon;
  });
  queue_.RunUntil(horizon);
  pipeline_->Stop();
  // Drain in-flight deliveries and actuation completions.
  queue_.RunUntil(horizon + Seconds(8.0));

  ScenarioReport report;
  report.events_executed = queue_.executed_count();
  report.readings_delivered = pipeline_->delivered_count();
  for (const auto& controller : controllers_) {
    const online::ControllerStats& stats = controller->stats();
    report.overdraw_events += stats.overdraw_events;
    report.throttle_commands += stats.throttle_commands;
    report.shutdown_commands += stats.shutdown_commands;
    report.restore_commands += stats.restore_commands;
    report.uncap_commands += stats.uncap_commands;
    report.failed_commands += stats.failed_commands;
  }
  if (monitor_) {
    report.worst_overload_fraction = monitor_->worst_overload_fraction();
    report.violations = monitor_->violations();
    report.violation_summary = monitor_->Summary();
  }
  report.fault_trace = injector.executed_trace();
  if (alert_engine_ != nullptr) {
    report.alerts_fired = alert_engine_->total_fired();
    report.alert_timeline = alert_engine_->timeline();
    report.alert_fingerprint = alert_engine_->Fingerprint();
    report.store_fingerprint = ts_store_->Fingerprint();
  }
  return report;
}

ScenarioReport
RunFuzzedScenario(const ScenarioConfig& config, std::uint64_t seed,
                  std::string* trace_out)
{
  FaultFuzzer fuzzer(config.shape);
  const FaultPlan plan = fuzzer.SamplePlan(seed);
  if (trace_out != nullptr)
    *trace_out = plan.DebugString();
  FaultScenario scenario(config, seed);
  return scenario.Run(plan);
}

std::vector<ScenarioReport>
RunFuzzSweep(const ScenarioConfig& config, std::uint64_t first_seed,
             int count, int threads, std::vector<std::string>* traces)
{
  FLEX_REQUIRE(count >= 0, "negative sweep count");
  FLEX_REQUIRE(threads >= 0, "negative thread count");

  std::vector<ScenarioReport> reports(static_cast<std::size_t>(count));
  if (traces != nullptr) {
    traces->clear();
    traces->resize(static_cast<std::size_t>(count));
  }

  // Each lane derives everything from its seed; the config is shared
  // read-only except for obs, which must be detached (the registry is
  // single-threaded).
  const auto run_one = [&config, &reports, traces, first_seed](int i) {
    ScenarioConfig lane_config = config;
    lane_config.obs = nullptr;
    const std::size_t slot = static_cast<std::size_t>(i);
    std::string* trace = traces != nullptr ? &(*traces)[slot] : nullptr;
    reports[slot] = RunFuzzedScenario(
        lane_config, first_seed + static_cast<std::uint64_t>(i), trace);
  };

  if (threads == 1 || count <= 1) {
    for (int i = 0; i < count; ++i)
      run_one(i);
    return reports;
  }

  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    tasks.push_back([&run_one, i] { run_one(i); });
  if (threads == 0) {
    common::ThreadPool::Shared().Run(std::move(tasks));
  } else {
    common::ThreadPool pool(threads);
    pool.Run(std::move(tasks));
  }
  return reports;
}

}  // namespace flex::fault
