#include "forensics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace flex::fault {

namespace {

/** %.9g, matching the obs exporters' number formatting. */
std::string
Num(double value)
{
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

/**
 * %.17g: bit-exact double round trip. Plan inputs must survive
 * serialization unchanged — a fault that replays one LSB late walks the
 * whole downstream timeline off the recorded rails.
 */
std::string
FullNum(double value)
{
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::size_t
ValueOffset(const std::string& json, const char* key)
{
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = json.find(needle);
  return at == std::string::npos ? std::string::npos : at + needle.size();
}

bool
ParseNumberField(const std::string& json, const char* key, double* out)
{
  const std::size_t at = ValueOffset(json, key);
  if (at == std::string::npos)
    return false;
  char* end = nullptr;
  const double value = std::strtod(json.c_str() + at, &end);
  if (end == json.c_str() + at)
    return false;
  *out = value;
  return true;
}

std::vector<std::string>
SplitLines(const std::string& text)
{
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos)
      end = text.size();
    if (end > start)
      lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

}  // namespace

std::string
FaultPlanToJsonl(const FaultPlan& plan)
{
  // Numeric kinds keep the format trivially parseable; fault_plan.txt in
  // the same bundle carries the human-readable listing.
  std::string out;
  for (const FaultEvent& event : plan.events()) {
    out += "{\"at\":" + FullNum(event.at.value());
    out += ",\"kind\":" + std::to_string(static_cast<int>(event.kind));
    out += ",\"target\":" + std::to_string(event.target);
    out += ",\"device_kind\":" +
           std::to_string(static_cast<int>(event.device_kind));
    out += ",\"meter_index\":" + std::to_string(event.meter_index);
    out += ",\"magnitude\":" + FullNum(event.magnitude);
    out += ",\"duration\":" + FullNum(event.duration.value());
    out += "}\n";
  }
  return out;
}

bool
ParseFaultPlanJsonl(const std::string& jsonl, FaultPlan* out,
                    std::string* error)
{
  *out = FaultPlan();
  std::size_t line_number = 0;
  for (const std::string& line : SplitLines(jsonl)) {
    ++line_number;
    double at = 0.0;
    double kind = 0.0;
    double target = 0.0;
    double device_kind = 0.0;
    double meter_index = 0.0;
    double magnitude = 0.0;
    double duration = 0.0;
    const bool ok = ParseNumberField(line, "at", &at) &&
                    ParseNumberField(line, "kind", &kind) &&
                    ParseNumberField(line, "target", &target) &&
                    ParseNumberField(line, "device_kind", &device_kind) &&
                    ParseNumberField(line, "meter_index", &meter_index) &&
                    ParseNumberField(line, "magnitude", &magnitude) &&
                    ParseNumberField(line, "duration", &duration);
    const int kind_int = static_cast<int>(kind);
    if (!ok || kind_int < static_cast<int>(FaultKind::kUpsFailover) ||
        kind_int > static_cast<int>(FaultKind::kControllerPause)) {
      if (error != nullptr)
        *error = "malformed fault event at line " + std::to_string(line_number);
      return false;
    }
    FaultEvent event;
    event.at = Seconds(at);
    event.kind = static_cast<FaultKind>(kind_int);
    event.target = static_cast<int>(target);
    event.device_kind = static_cast<telemetry::DeviceKind>(
        static_cast<int>(device_kind));
    event.meter_index = static_cast<int>(meter_index);
    event.magnitude = magnitude;
    event.duration = Seconds(duration);
    out->Add(event);
  }
  return true;
}

std::string
RacksCsv(const FaultScenario& scenario)
{
  std::string out = "rack,category,powered_on,power_cap_w,true_power_w\n";
  const auto& categories = scenario.categories();
  for (int r = 0; r < static_cast<int>(categories.size()); ++r) {
    const actuation::RackState& state = scenario.plane().rack(r).state();
    const Watts power = scenario.CurrentPower(
        telemetry::DeviceId{telemetry::DeviceKind::kRack, r});
    out += std::to_string(r) + ",";
    out += std::to_string(
               static_cast<int>(categories[static_cast<std::size_t>(r)])) +
           ",";
    out += state.powered_on ? "1," : "0,";
    out += state.power_cap.has_value() ? Num(state.power_cap->value()) : "";
    out += ",";
    out += Num(power.value());
    out += "\n";
  }
  return out;
}

RecordedRun
RunRecordedPlan(const ScenarioConfig& config, std::uint64_t seed,
                const FaultPlan& plan, const ForensicsOptions& options)
{
  obs::ObservabilityConfig obs_config;
  obs_config.recorder.capacity = options.recorder_capacity;
  obs::Observability obs(obs_config);

  ScenarioConfig recorded_config = config;
  recorded_config.obs = &obs;
  FaultScenario scenario(recorded_config, seed);

  RecordedRun run;
  run.report = scenario.Run(plan);
  run.records = obs.recorder().Records();

  const bool violated = !run.report.violations.empty();
  const bool alerted = run.report.alerts_fired > 0;
  if (!options.force_dump && !(options.dump_on_violation && violated) &&
      !(options.dump_on_alert && alerted))
    return run;

  obs::BundleSpec spec;
  spec.trigger = violated ? "invariant-violation"
                 : alerted ? "alert-firing"
                           : "manual";
  spec.scenario = "fault-fuzz";
  spec.seed = seed;
  spec.sim_time_s = scenario.queue().Now().value();
  spec.horizon_s = config.shape.horizon.value();
  spec.replayable = true;
  spec.records = run.records;
  spec.metrics = &obs.metrics();
  spec.tracer = &obs.tracer();
  spec.fault_plan_text = plan.DebugString();
  spec.fault_plan_jsonl = FaultPlanToJsonl(plan);
  spec.racks_csv = RacksCsv(scenario);
  if (scenario.timeseries() != nullptr) {
    spec.timeseries_jsonl = scenario.timeseries()->ToJsonl();
    spec.alerts_jsonl = scenario.alert_engine()->TimelineJsonl();
  }
  for (const Violation& violation : run.report.violations)
    spec.notes.push_back("t=" + Num(violation.at.value()) + " [" +
                         violation.invariant + "] " + violation.message);
  for (const obs::AlertTransition& edge : run.report.alert_timeline) {
    if (edge.to != obs::AlertState::kFiring)
      continue;
    spec.notes.push_back("t=" + Num(edge.t) + " [alert] " + edge.rule +
                         " fired: " + edge.message);
  }

  const std::string root = options.root_dir.empty()
                               ? obs::ForensicsRootDir()
                               : options.root_dir;
  const std::string dir = obs::UniqueBundleDir(
      root, "bundle-seed" + std::to_string(seed));
  std::string error;
  if (obs::WriteForensicBundle(dir, spec, &error)) {
    run.bundle_dir = dir;
    FLEX_LOG(obs::LogLevel::kWarn, "forensics", "dumped bundle to %s (%s)",
             dir.c_str(), spec.trigger.c_str());
  } else {
    run.dump_error = error;
    FLEX_LOG(obs::LogLevel::kError, "forensics", "bundle dump failed: %s",
             error.c_str());
  }
  return run;
}

RecordedRun
RunRecordedScenario(const ScenarioConfig& config, std::uint64_t seed,
                    const ForensicsOptions& options)
{
  FaultFuzzer fuzzer(config.shape);
  return RunRecordedPlan(config, seed, fuzzer.SamplePlan(seed), options);
}

ReplayReport
ReplayBundle(const std::string& bundle_dir, const ScenarioConfig& config)
{
  ReplayReport replay;

  obs::LoadedBundle bundle;
  if (!obs::LoadForensicBundle(bundle_dir, &bundle, &replay.error))
    return replay;
  replay.manifest = bundle.manifest;
  if (!bundle.manifest.replayable) {
    replay.error = "bundle is not marked replayable";
    return replay;
  }

  FaultPlan plan;
  if (!ParseFaultPlanJsonl(bundle.fault_plan_jsonl, &plan, &replay.error))
    return replay;
  replay.loaded = true;

  // Re-execute in a fresh room on the bundle's seed, recording with a
  // ring at least as large as the bundle window so the replay retains
  // everything the bundle retained.
  ForensicsOptions replay_options;
  replay_options.dump_on_violation = false;
  replay_options.force_dump = false;
  replay_options.recorder_capacity =
      std::max<std::size_t>(bundle.records.size(), 1) * 2;
  RecordedRun rerun =
      RunRecordedPlan(config, bundle.manifest.seed, plan, replay_options);
  replay.report = rerun.report;
  replay.compared = bundle.records.size();
  replay.divergence = obs::FirstDivergence(bundle.records, rerun.records);
  return replay;
}

}  // namespace flex::fault
