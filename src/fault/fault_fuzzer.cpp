#include "fault_fuzzer.hpp"

#include <set>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace flex::fault {

using telemetry::DeviceKind;

FaultFuzzer::FaultFuzzer(ScenarioShape shape, FuzzerConfig config)
    : shape_(shape), config_(config)
{
  FLEX_REQUIRE(shape_.num_ups >= 2, "fuzzing needs a redundant UPS level");
  FLEX_REQUIRE(shape_.num_racks >= 1, "fuzzing needs racks");
  FLEX_REQUIRE(shape_.num_pollers >= 2 && shape_.num_buses >= 2,
               "fault envelope requires redundant telemetry stages");
  FLEX_REQUIRE(shape_.meters_per_device >= 3,
               "fault envelope requires a meter quorum");
  FLEX_REQUIRE(shape_.num_controllers >= 1, "fuzzing needs a controller");
  FLEX_REQUIRE(
      shape_.horizon.value() >
          (config_.warmup + config_.max_failover_duration +
           config_.settle_tail)
              .value(),
      "horizon too short for even one failover");
}

FaultPlan
FaultFuzzer::SamplePlan(std::uint64_t seed) const
{
  // All draws come from this one generator, in the fixed textual order
  // below. Adding a draw anywhere changes every later draw for every
  // seed — append new fault families at the end.
  Rng rng(seed);
  FaultPlan plan;
  const double horizon = shape_.horizon.value();
  const double latest = horizon - config_.settle_tail.value();

  // 1. UPS failovers: strictly sequential windows with a recovery gap.
  const int failovers =
      static_cast<int>(rng.UniformInt(0, config_.max_failovers));
  double next_start =
      rng.Uniform(config_.warmup.value(), config_.warmup.value() + 12.0);
  for (int i = 0; i < failovers; ++i) {
    const double duration =
        rng.Uniform(config_.min_failover_duration.value(),
                    config_.max_failover_duration.value());
    const int target = static_cast<int>(rng.UniformInt(0, shape_.num_ups - 1));
    if (next_start + duration > latest)
      break;
    FaultEvent event;
    event.at = Seconds(next_start);
    event.kind = FaultKind::kUpsFailover;
    event.target = target;
    event.duration = Seconds(duration);
    plan.Add(event);
    next_start += duration + config_.failover_gap.value() +
                  rng.Uniform(0.0, 8.0);
  }

  // 2. Meter faults: at most one faulty physical meter per device, so
  // the 2-of-3 median quorum always survives.
  const int meter_faults =
      static_cast<int>(rng.UniformInt(0, config_.max_meter_faults));
  std::set<std::pair<int, int>> used_devices;  // (kind, index)
  for (int i = 0; i < meter_faults; ++i) {
    const int device = static_cast<int>(
        rng.UniformInt(0, shape_.num_ups + shape_.num_racks - 1));
    const int flavor = static_cast<int>(rng.UniformInt(0, 2));
    const int meter_index =
        static_cast<int>(rng.UniformInt(0, shape_.meters_per_device - 1));
    const double start = rng.Uniform(5.0, latest - 10.0);
    const double duration = rng.Uniform(10.0, 50.0);
    const double drift = rng.Uniform(-config_.max_drift_rate,
                                     config_.max_drift_rate);
    const bool is_ups = device < shape_.num_ups;
    const std::pair<int, int> key{is_ups ? 0 : 1,
                                  is_ups ? device : device - shape_.num_ups};
    if (!used_devices.insert(key).second)
      continue;  // keep the quorum: one fault per device
    FaultEvent event;
    event.at = Seconds(start);
    event.kind = flavor == 0   ? FaultKind::kMeterFailure
                 : flavor == 1 ? FaultKind::kMeterStuck
                               : FaultKind::kMeterDrift;
    event.device_kind = is_ups ? DeviceKind::kUps : DeviceKind::kRack;
    event.target = key.second;
    event.meter_index = meter_index;
    event.magnitude = event.kind == FaultKind::kMeterDrift ? drift : 0.0;
    event.duration = Seconds(duration);
    plan.Add(event);
  }

  // 3. One poller crash at most (the sibling keeps polling).
  if (rng.Bernoulli(config_.poller_crash_probability)) {
    FaultEvent event;
    event.at = Seconds(rng.Uniform(5.0, latest - 10.0));
    event.kind = FaultKind::kPollerCrash;
    event.target = static_cast<int>(rng.UniformInt(0, shape_.num_pollers - 1));
    event.duration = Seconds(rng.Uniform(5.0, 30.0));
    plan.Add(event);
  }

  // 4. One bus outage at most (the sibling keeps delivering).
  if (rng.Bernoulli(config_.bus_outage_probability)) {
    FaultEvent event;
    event.at = Seconds(rng.Uniform(5.0, latest - 10.0));
    event.kind = FaultKind::kBusOutage;
    event.target = static_cast<int>(rng.UniformInt(0, shape_.num_buses - 1));
    event.duration = Seconds(rng.Uniform(5.0, 25.0));
    plan.Add(event);
  }

  // 5. Bus congestion (bounded extra lag; delivery remains ordered).
  if (rng.Bernoulli(config_.bus_delay_probability)) {
    FaultEvent event;
    event.at = Seconds(rng.Uniform(5.0, latest - 10.0));
    event.kind = FaultKind::kBusDelay;
    event.target = static_cast<int>(rng.UniformInt(0, shape_.num_buses - 1));
    event.magnitude = rng.Uniform(0.1, config_.max_bus_delay.value());
    event.duration = Seconds(rng.Uniform(10.0, 40.0));
    plan.Add(event);
  }

  // 6. At-least-once redelivery storms (controllers must be idempotent).
  if (rng.Bernoulli(config_.bus_duplicate_probability)) {
    FaultEvent event;
    event.at = Seconds(rng.Uniform(5.0, latest - 15.0));
    event.kind = FaultKind::kBusDuplicate;
    event.target = static_cast<int>(rng.UniformInt(0, shape_.num_buses - 1));
    event.duration = Seconds(rng.Uniform(15.0, 60.0));
    plan.Add(event);
  }

  // 7. Slow rack managers (commands land late but land).
  const int rm_timeouts =
      static_cast<int>(rng.UniformInt(0, config_.max_rack_manager_timeouts));
  std::set<int> slow_racks;
  for (int i = 0; i < rm_timeouts; ++i) {
    const int rack = static_cast<int>(rng.UniformInt(0, shape_.num_racks - 1));
    const double start = rng.Uniform(5.0, latest - 10.0);
    const double extra =
        rng.Uniform(0.5, config_.max_rack_manager_extra.value());
    const double duration = rng.Uniform(10.0, 40.0);
    if (!slow_racks.insert(rack).second)
      continue;
    FaultEvent event;
    event.at = Seconds(start);
    event.kind = FaultKind::kRackManagerTimeout;
    event.target = rack;
    event.magnitude = extra;
    event.duration = Seconds(duration);
    plan.Add(event);
  }

  // 8. At most one unreachable rack manager — the room's headroom is
  // sized so the controllers can recover around one silent rack.
  if (rng.Bernoulli(config_.rack_manager_unreachable_probability)) {
    FaultEvent event;
    event.at = Seconds(rng.Uniform(config_.warmup.value(), latest - 25.0));
    event.kind = FaultKind::kRackManagerUnreachable;
    event.target = static_cast<int>(rng.UniformInt(0, shape_.num_racks - 1));
    event.duration = Seconds(rng.Uniform(8.0, 25.0));
    plan.Add(event);
  }

  // 9. Controller replica crash — never all replicas at once.
  if (shape_.num_controllers >= 2 &&
      rng.Bernoulli(config_.controller_pause_probability)) {
    FaultEvent event;
    event.at = Seconds(rng.Uniform(5.0, latest - 10.0));
    event.kind = FaultKind::kControllerPause;
    event.target =
        static_cast<int>(rng.UniformInt(0, shape_.num_controllers - 1));
    event.duration = Seconds(rng.Uniform(10.0, 40.0));
    plan.Add(event);
  }

  plan.SortByTime();
  return plan;
}

}  // namespace flex::fault
