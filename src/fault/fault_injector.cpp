#include "fault_injector.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"
#include "obs/log.hpp"

namespace flex::fault {

using telemetry::DeviceId;
using telemetry::DeviceKind;

FaultInjector::FaultInjector(InjectorTargets targets)
    : targets_(std::move(targets))
{
  FLEX_REQUIRE(targets_.queue != nullptr, "injector needs an event queue");
}

void
FaultInjector::Validate(const FaultEvent& event) const
{
  FLEX_REQUIRE(event.at.value() >= 0.0, "fault begins before t=0");
  FLEX_REQUIRE(event.duration.value() >= 0.0, "negative fault duration");
  const auto& config =
      targets_.pipeline ? targets_.pipeline->config()
                        : telemetry::PipelineConfig{};
  switch (event.kind) {
    case FaultKind::kUpsFailover:
      FLEX_REQUIRE(static_cast<bool>(targets_.set_ups_failed),
                   "no UPS failure handler wired");
      FLEX_REQUIRE(event.target >= 0 && event.target < targets_.num_ups,
                   "UPS target out of range");
      break;
    case FaultKind::kMeterFailure:
    case FaultKind::kMeterStuck:
    case FaultKind::kMeterDrift:
      FLEX_REQUIRE(targets_.pipeline != nullptr, "no telemetry pipeline");
      FLEX_REQUIRE(event.meter_index >= 0 &&
                       event.meter_index < config.meters_per_device,
                   "meter index out of range");
      break;
    case FaultKind::kPollerCrash:
      FLEX_REQUIRE(targets_.pipeline != nullptr, "no telemetry pipeline");
      FLEX_REQUIRE(event.target >= 0 && event.target < config.num_pollers,
                   "poller target out of range");
      break;
    case FaultKind::kBusOutage:
    case FaultKind::kBusDelay:
    case FaultKind::kBusDuplicate:
      FLEX_REQUIRE(targets_.pipeline != nullptr, "no telemetry pipeline");
      FLEX_REQUIRE(event.target >= 0 && event.target < config.num_buses,
                   "bus target out of range");
      break;
    case FaultKind::kRackManagerTimeout:
    case FaultKind::kRackManagerUnreachable:
      FLEX_REQUIRE(targets_.plane != nullptr, "no actuation plane");
      FLEX_REQUIRE(event.target >= 0 &&
                       event.target < targets_.plane->num_racks(),
                   "rack target out of range");
      break;
    case FaultKind::kControllerPause:
      FLEX_REQUIRE(event.target >= 0 &&
                       static_cast<std::size_t>(event.target) <
                           targets_.controllers.size(),
                   "controller target out of range");
      break;
  }
  if (event.kind == FaultKind::kBusDelay ||
      event.kind == FaultKind::kRackManagerTimeout) {
    FLEX_REQUIRE(event.magnitude >= 0.0, "negative latency magnitude");
  }
}

void
FaultInjector::Apply(const FaultEvent& event, bool start)
{
  const DeviceId device{event.device_kind, event.target};
  switch (event.kind) {
    case FaultKind::kUpsFailover:
      targets_.set_ups_failed(event.target, start);
      break;
    case FaultKind::kMeterFailure:
      targets_.pipeline->SetMeterFailed(device, event.meter_index, start);
      break;
    case FaultKind::kMeterStuck:
      targets_.pipeline->SetMeterStuck(device, event.meter_index, start);
      break;
    case FaultKind::kMeterDrift:
      if (start) {
        targets_.pipeline->SetMeterDrift(device, event.meter_index,
                                         event.magnitude);
      } else {
        targets_.pipeline->ClearMeterDrift(device, event.meter_index);
      }
      break;
    case FaultKind::kPollerCrash:
      targets_.pipeline->SetPollerFailed(event.target, start);
      break;
    case FaultKind::kBusOutage:
      targets_.pipeline->SetBusFailed(event.target, start);
      break;
    case FaultKind::kBusDelay:
      targets_.pipeline->SetBusLag(
          event.target, Seconds(start ? event.magnitude : 0.0));
      break;
    case FaultKind::kBusDuplicate:
      targets_.pipeline->SetBusDuplicate(event.target, start);
      break;
    case FaultKind::kRackManagerTimeout:
      targets_.plane->rack(event.target)
          .SetExtraLatency(Seconds(start ? event.magnitude : 0.0));
      break;
    case FaultKind::kRackManagerUnreachable:
      targets_.plane->rack(event.target).SetUnreachable(start);
      break;
    case FaultKind::kControllerPause:
      targets_.controllers[static_cast<std::size_t>(event.target)]
          ->SetSuspended(start);
      break;
  }
  Record(event, start);
}

void
FaultInjector::Record(const FaultEvent& event, bool start)
{
  char buffer[192];
  std::snprintf(buffer, sizeof(buffer), "t=%.3f %s %s",
                targets_.queue->Now().value(), start ? "begin" : "repair",
                event.DebugString().c_str());
  trace_.emplace_back(buffer);
  FLEX_LOG(obs::LogLevel::kInfo, "fault", "%s %s",
           start ? "begin" : "repair", event.DebugString().c_str());
  if (targets_.recorder != nullptr)
    targets_.recorder->Record(targets_.queue->Now(),
                              start ? obs::RecordKind::kFaultBegin
                                    : obs::RecordKind::kFaultRepair,
                              event.target, static_cast<int>(event.kind), 0.0,
                              event.DebugString());
}

void
FaultInjector::Arm(const FaultPlan& plan)
{
  for (const FaultEvent& event : plan.events())
    Validate(event);
  FLEX_LOG(obs::LogLevel::kDebug, "fault", "arming plan with %zu event(s)",
           plan.events().size());
  for (const FaultEvent& event : plan.events()) {
    FLEX_LOG(obs::LogLevel::kDebug, "fault", "scheduled %s",
             event.DebugString().c_str());
    const Seconds now = targets_.queue->Now();
    targets_.queue->ScheduleAt(std::max(event.at, now),
                               [this, event] { Apply(event, true); });
    ++scheduled_;
    if (event.duration.value() > 0.0) {
      targets_.queue->ScheduleAt(std::max(event.at + event.duration, now),
                                 [this, event] { Apply(event, false); });
      ++scheduled_;
    }
  }
}

}  // namespace flex::fault
