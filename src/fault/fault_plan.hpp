/**
 * @file
 * Typed fault schedules for deterministic fault injection.
 *
 * A FaultPlan is a time-ordered list of fault events covering every
 * failure mode the paper's availability argument leans on: UPS
 * failovers (Section III), telemetry-stage failures — meters, pollers,
 * pub/sub buses (Section IV-C, Fig. 7) — rack-manager actuation defects
 * (Section VI), and controller-replica crashes (Section IV-D). Plans
 * are plain data: the FaultInjector arms them onto a live room and the
 * FaultFuzzer samples them from a seeded Rng, so a failing seed replays
 * the exact same event interleaving.
 */
#ifndef FLEX_FAULT_FAULT_PLAN_HPP_
#define FLEX_FAULT_FAULT_PLAN_HPP_

#include <string>
#include <vector>

#include "common/units.hpp"
#include "telemetry/pipeline.hpp"

namespace flex::fault {

/** Every injectable failure mode. */
enum class FaultKind {
  kUpsFailover,             ///< a UPS fails; restored after `duration`
  kMeterFailure,            ///< one physical meter returns no readings
  kMeterStuck,              ///< one physical meter freezes its output
  kMeterDrift,              ///< one physical meter drifts (`magnitude`/s)
  kPollerCrash,             ///< a telemetry poller crashes, then restarts
  kBusOutage,               ///< a pub/sub bus drops all deliveries
  kBusDelay,                ///< a bus adds `magnitude` seconds of lag
  kBusDuplicate,            ///< a bus redelivers every batch twice
  kRackManagerTimeout,      ///< RM commands take `magnitude` extra seconds
  kRackManagerUnreachable,  ///< RM drops all commands
  kControllerPause,         ///< a controller replica crashes, then restarts
};

/** Human-readable fault kind name. */
const char* FaultKindName(FaultKind kind);

/** One scheduled fault. */
struct FaultEvent {
  /** When the fault begins (simulated seconds). */
  Seconds at{0.0};
  FaultKind kind = FaultKind::kUpsFailover;
  /**
   * Index of the faulted component: UPS, poller, bus, rack, controller
   * replica, or — for meter faults — the metered device's index.
   */
  int target = 0;
  /** For meter faults: whether the device is a UPS or a rack meter. */
  telemetry::DeviceKind device_kind = telemetry::DeviceKind::kUps;
  /** For meter faults: which physical meter of the logical meter. */
  int meter_index = 0;
  /** Drift rate (1/s) or extra latency (s), per FaultKind. */
  double magnitude = 0.0;
  /** How long the fault lasts; 0 means it is never repaired. */
  Seconds duration{0.0};

  /** One-line description, e.g. "t=12.400 ups_failover target=1 dur=10.0". */
  std::string DebugString() const;
};

/**
 * A schedule of fault events. Order-preserving container with a stable
 * time sort so equal-time faults keep their insertion order (mirroring
 * the event queue's FIFO tie-break).
 */
class FaultPlan {
 public:
  void Add(FaultEvent event) { events_.push_back(std::move(event)); }

  /** Stable-sorts events by begin time. */
  void SortByTime();

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /** Latest begin-or-repair instant in the plan (0 when empty). */
  Seconds LastEndTime() const;

  /** Multi-line listing of every event, for golden traces and logs. */
  std::string DebugString() const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace flex::fault

#endif  // FLEX_FAULT_FAULT_PLAN_HPP_
