/**
 * @file
 * Replayable forensic bundles for fault-fuzz scenarios.
 *
 * Builds on the scenario's seed-determinism: workloads, telemetry
 * jitter, actuation latencies and the fault plan all derive from one
 * seed, so a bundle holding {seed, fault plan, recorded timeline} is a
 * complete reproduction recipe. RunRecordedScenario runs one fuzzed
 * seed with a FlightRecorder attached and dumps a bundle when an
 * invariant trips (or unconditionally, for drills); ReplayBundle loads
 * a bundle, re-executes the stored plan on the stored seed in a fresh
 * room, and diffs the two timelines record-by-record — zero divergence
 * is the determinism proof, a divergence pinpoints the first event
 * where the re-execution left the recorded rails.
 *
 * The plan is persisted machine-readably (fault_plan.jsonl) rather than
 * re-sampled from the seed, so hand-built plans — the induced-violation
 * drills in fault_test — replay exactly like fuzzed ones.
 */
#ifndef FLEX_FAULT_FORENSICS_HPP_
#define FLEX_FAULT_FORENSICS_HPP_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fault/scenario.hpp"
#include "obs/forensics.hpp"

namespace flex::fault {

/** Serializes @p plan as one JSON object per event (numeric kinds). */
std::string FaultPlanToJsonl(const FaultPlan& plan);

/** Parses FaultPlanToJsonl output. False + @p error on malformed input. */
bool ParseFaultPlanJsonl(const std::string& jsonl, FaultPlan* out,
                         std::string* error = nullptr);

/** Per-rack ground-truth state table (the bundle's racks.csv). */
std::string RacksCsv(const FaultScenario& scenario);

/** Recorded-run tuning. */
struct ForensicsOptions {
  /** Where bundles land; "" resolves via FLEX_FORENSICS_DIR. */
  std::string root_dir;
  /** Dump a bundle when the run ends with invariant violations. */
  bool dump_on_violation = true;
  /**
   * Dump a bundle when any alert rule fired, even with every invariant
   * intact (trigger "alert-firing"). Off by default: fuzz sweeps fire
   * benign alerts (telemetry staleness under injected bus outages) and
   * must not spray bundles; alerting drills opt in.
   */
  bool dump_on_alert = false;
  /** Dump unconditionally (drills, bundle-format tests). */
  bool force_dump = false;
  /** Ring capacity for the run's recorder. */
  std::size_t recorder_capacity = 8192;
};

/** One recorded run's outcome. */
struct RecordedRun {
  ScenarioReport report;
  /** The recorder's retained timeline at run end. */
  std::vector<obs::FlightRecord> records;
  /** Bundle directory, or "" when no dump was triggered. */
  std::string bundle_dir;
  /** Non-empty when a triggered dump failed to write. */
  std::string dump_error;
};

/**
 * Runs @p plan on a fresh scenario for @p seed with full observability
 * attached (config.obs is overridden), dumping a forensic bundle per
 * @p options. The config must describe the same room on replay.
 */
RecordedRun RunRecordedPlan(const ScenarioConfig& config, std::uint64_t seed,
                            const FaultPlan& plan,
                            const ForensicsOptions& options = {});

/** Samples the fuzzer's plan for @p seed, then RunRecordedPlan. */
RecordedRun RunRecordedScenario(const ScenarioConfig& config,
                                std::uint64_t seed,
                                const ForensicsOptions& options = {});

/** What a replay found. */
struct ReplayReport {
  /** False when the bundle could not be loaded (see error). */
  bool loaded = false;
  std::string error;
  obs::BundleManifest manifest;
  /** The re-executed run's report. */
  ScenarioReport report;
  /** Records from the bundle that the replay was compared against. */
  std::size_t compared = 0;
  /** First timeline mismatch; nullopt means the replay tracked exactly. */
  std::optional<obs::RecordDivergence> divergence;
};

/**
 * Loads the bundle at @p bundle_dir and re-executes it: same seed (from
 * the manifest), same fault plan (from fault_plan.jsonl), fresh room
 * built from @p config. Compares the bundle's timeline against the
 * replay's, aligned by sequence number.
 */
ReplayReport ReplayBundle(const std::string& bundle_dir,
                          const ScenarioConfig& config = {});

}  // namespace flex::fault

#endif  // FLEX_FAULT_FORENSICS_HPP_
