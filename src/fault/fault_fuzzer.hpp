/**
 * @file
 * Seeded random fault-plan generation.
 *
 * The fuzzer samples FaultPlans from the paper's *tolerated* fault
 * envelope — the set of failures Flex is designed to absorb: at most
 * one UPS failed at a time (xN/y powers exactly one failover), a meter
 * quorum alive on every device (≤1 faulty physical meter of 3), at
 * least one live poller and one live pub/sub bus, at most one
 * unreachable rack manager, and at most num_controllers − 1 paused
 * replicas. Within that envelope the safety invariants must hold for
 * EVERY plan, which is exactly what the property tests assert over
 * hundreds of seeds.
 *
 * Sampling is fully deterministic: all draws come from one seeded
 * common::Rng in a fixed order, so a failing seed reproduces the exact
 * same plan — and, through the deterministic event queue, the exact
 * same interleaving.
 */
#ifndef FLEX_FAULT_FAULT_FUZZER_HPP_
#define FLEX_FAULT_FAULT_FUZZER_HPP_

#include <cstdint>

#include "common/units.hpp"
#include "fault/fault_plan.hpp"

namespace flex::fault {

/** Dimensions of the room a plan is sampled for. */
struct ScenarioShape {
  int num_ups = 3;
  int num_racks = 12;
  int num_pollers = 2;
  int num_buses = 2;
  int meters_per_device = 3;
  int num_controllers = 2;
  /** Simulated time the scenario runs for. */
  Seconds horizon{120.0};
};

/** Envelope bounds; defaults encode the paper's tolerated fault model. */
struct FuzzerConfig {
  /** UPS failovers are sequential — never concurrent — per xN/y design. */
  int max_failovers = 2;
  /** No fault begins before telemetry has warmed up. */
  Seconds warmup{12.0};
  /** Quiet tail so the room can settle before the run ends. */
  Seconds settle_tail{15.0};
  Seconds min_failover_duration{8.0};
  Seconds max_failover_duration{16.0};
  /**
   * Minimum quiet time between a failover's repair and the next
   * failover, sized so restores (~25 s boot) finish in between.
   */
  Seconds failover_gap{45.0};
  /** At most one faulty physical meter per device (quorum survives). */
  int max_meter_faults = 3;
  double max_drift_rate = 0.02;  ///< 1/s; ~2%/s calibration drift
  double poller_crash_probability = 0.5;   ///< ≤1 of 2 pollers
  double bus_outage_probability = 0.5;     ///< ≤1 of 2 buses
  double bus_delay_probability = 0.5;
  Seconds max_bus_delay{1.0};
  double bus_duplicate_probability = 0.5;
  int max_rack_manager_timeouts = 2;
  Seconds max_rack_manager_extra{3.0};
  double rack_manager_unreachable_probability = 0.4;  ///< ≤1 rack
  double controller_pause_probability = 0.5;  ///< ≤ replicas − 1
};

/**
 * Samples fault plans for a fixed room shape.
 */
class FaultFuzzer {
 public:
  explicit FaultFuzzer(ScenarioShape shape, FuzzerConfig config = {});

  /**
   * Samples one plan. Same seed ⇒ byte-identical plan. The result is
   * time-sorted and always within the tolerated envelope.
   */
  FaultPlan SamplePlan(std::uint64_t seed) const;

  const ScenarioShape& shape() const { return shape_; }
  const FuzzerConfig& config() const { return config_; }

 private:
  ScenarioShape shape_;
  FuzzerConfig config_;
};

}  // namespace flex::fault

#endif  // FLEX_FAULT_FAULT_FUZZER_HPP_
