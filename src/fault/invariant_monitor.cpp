#include "invariant_monitor.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "obs/log.hpp"

namespace flex::fault {

InvariantMonitor::InvariantMonitor(
    sim::EventQueue& queue, const power::RoomTopology& topology,
    std::vector<workload::Category> rack_categories,
    const actuation::ActuationPlane& plane,
    std::function<std::vector<Watts>()> true_ups_loads, MonitorConfig config)
    : queue_(queue),
      topology_(topology),
      categories_(std::move(rack_categories)),
      plane_(plane),
      true_ups_loads_(std::move(true_ups_loads)),
      config_(config)
{
  FLEX_REQUIRE(static_cast<int>(categories_.size()) == plane_.num_racks(),
               "one workload category per rack required");
  FLEX_REQUIRE(static_cast<bool>(true_ups_loads_),
               "monitor needs a ground-truth UPS load source");
  overload_since_.assign(static_cast<std::size_t>(topology_.NumUpses()), -1.0);
  trip_reported_.assign(overload_since_.size(), false);
  cap_reported_.assign(categories_.size(), false);
  if (config_.obs != nullptr) {
    violations_metric_ = &config_.obs->metrics().counter("invariants.violations");
    recorder_ = &config_.obs->recorder();
  }
}

void
InvariantMonitor::AddController(const online::FlexController* controller)
{
  FLEX_REQUIRE(controller != nullptr, "null controller");
  controllers_.push_back(controller);
}

void
InvariantMonitor::Attach()
{
  if (observer_id_ != 0)
    return;  // already attached
  observer_id_ = queue_.AddObserver([this](Seconds) { Check(); });
}

void
InvariantMonitor::Detach()
{
  if (observer_id_ == 0)
    return;
  queue_.RemoveObserver(observer_id_);
  observer_id_ = 0;
}

std::size_t
InvariantMonitor::TotalReleaseCommands() const
{
  std::size_t total = 0;
  for (const auto* controller : controllers_) {
    total += static_cast<std::size_t>(controller->stats().uncap_commands) +
             static_cast<std::size_t>(controller->stats().restore_commands);
  }
  return total;
}

bool
InvariantMonitor::AnyControllerActed() const
{
  for (const auto* controller : controllers_) {
    if (controller->actions_in_force())
      return true;
  }
  return false;
}

void
InvariantMonitor::AddViolation(const char* invariant,
                               const std::string& message)
{
  violations_.push_back({queue_.Now(), invariant, message});
  FLEX_LOG(obs::LogLevel::kError, "invariant", "[%s] %s", invariant,
           message.c_str());
  if (violations_metric_ != nullptr)
    violations_metric_->Increment();
  if (recorder_ != nullptr)
    recorder_->Record(queue_.Now(), obs::RecordKind::kViolation, -1, -1, 0.0,
                      std::string("[") + invariant + "] " + message);
  if (live_hub_ != nullptr) {
    obs::HealthSnapshot health;
    health.ok = false;
    health.sim_time_seconds = queue_.Now().value();
    health.violations = violations_.size();
    health.detail = std::string("[") + invariant + "] " + message;
    live_hub_->PublishHealth(health);
  }
}

void
InvariantMonitor::Check()
{
  ++checks_run_;
  const double now = queue_.Now().value();
  const std::vector<Watts> loads = true_ups_loads_();
  FLEX_CHECK_MSG(static_cast<int>(loads.size()) == topology_.NumUpses(),
                 "ground-truth load vector has wrong arity");

  // (a) trip safety, per UPS. An episode's duration is measured from the
  // instant the UPS first went above rated load; the tolerance is taken
  // at the *current* fraction, which is conservative when the overload
  // deepened mid-episode and exact for flat overloads.
  bool any_overloaded = false;
  for (std::size_t u = 0; u < loads.size(); ++u) {
    const double capacity =
        topology_.UpsCapacity(static_cast<power::UpsId>(u)).value();
    const double fraction = capacity > 0.0 ? loads[u].value() / capacity : 0.0;
    if (fraction > worst_fraction_)
      worst_fraction_ = fraction;
    if (fraction > 1.0 + config_.overload_epsilon) {
      any_overloaded = true;
      if (overload_since_[u] < 0.0)
        overload_since_[u] = now;
      const Seconds held(now - overload_since_[u]);
      if (!trip_reported_[u] &&
          topology_.trip_curve().Exceeds(fraction, held)) {
        char buffer[160];
        std::snprintf(buffer, sizeof(buffer),
                      "UPS %zu at %.3fx rated for %.2fs exceeds trip curve "
                      "(tolerates %.2fs)",
                      u, fraction, held.value(),
                      topology_.trip_curve().ToleranceAt(fraction).value());
        AddViolation("ups-trip", buffer);
        trip_reported_[u] = true;
      }
    } else {
      overload_since_[u] = -1.0;
      trip_reported_[u] = false;
    }
  }

  // (b) action legality, per rack. Caps are legal only on cap-able
  // racks; power-off is legal only on software-redundant racks.
  for (int r = 0; r < plane_.num_racks(); ++r) {
    const actuation::RackState& state = plane_.rack(r).state();
    const workload::Category category =
        categories_[static_cast<std::size_t>(r)];
    const bool illegal_cap =
        state.power_cap.has_value() &&
        category != workload::Category::kNonRedundantCapable;
    const bool illegal_off =
        !state.powered_on &&
        category != workload::Category::kSoftwareRedundant;
    if (illegal_cap || illegal_off) {
      if (!cap_reported_[static_cast<std::size_t>(r)]) {
        char buffer[128];
        std::snprintf(buffer, sizeof(buffer),
                      "rack %d (category %d) illegally %s", r,
                      static_cast<int>(category),
                      illegal_cap ? "power-capped" : "shut down");
        AddViolation("illegal-action", buffer);
        cap_reported_[static_cast<std::size_t>(r)] = true;
      }
    } else {
      cap_reported_[static_cast<std::size_t>(r)] = false;
    }
  }

  // (c) + (d): room-level unsafe episodes.
  if (!any_overloaded) {
    unsafe_since_ = -1.0;
    missed_reported_ = false;
    // Releases while the room is safe are always fine.
    seen_release_commands_ = TotalReleaseCommands();
    return;
  }
  if (unsafe_since_ < 0.0)
    unsafe_since_ = now;
  const double unsafe_for = now - unsafe_since_;

  const std::size_t releases = TotalReleaseCommands();
  if (releases > seen_release_commands_) {
    // A release decided while the room has been unsafe longer than the
    // telemetry-staleness grace window means the controller released
    // without real headroom: invariant (c).
    if (unsafe_for > config_.release_grace.value()) {
      char buffer[128];
      std::snprintf(buffer, sizeof(buffer),
                    "%zu release command(s) issued while room unsafe for "
                    "%.2fs (> %.2fs grace)",
                    releases - seen_release_commands_, unsafe_for,
                    config_.release_grace.value());
      AddViolation("unsafe-release", buffer);
    }
    seen_release_commands_ = releases;
  }

  // (d) A sustained overload must be answered by *some* replica.
  // Overcorrection is acceptable; silence past the deadline is not.
  if (!missed_reported_ && unsafe_for > config_.response_deadline.value() &&
      !AnyControllerActed()) {
    char buffer[128];
    std::snprintf(buffer, sizeof(buffer),
                  "room unsafe for %.2fs (> %.2fs deadline) with no "
                  "controller action in force",
                  unsafe_for, config_.response_deadline.value());
    AddViolation("missed-overload", buffer);
    missed_reported_ = true;
  }
}

std::string
InvariantMonitor::Summary() const
{
  std::string out;
  for (const Violation& violation : violations_) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "t=%.3f [%s] ",
                  violation.at.value(), violation.invariant.c_str());
    out += buffer;
    out += violation.message;
    out += '\n';
  }
  return out;
}

}  // namespace flex::fault
