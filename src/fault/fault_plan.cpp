#include "fault_plan.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"
#include "obs/log.hpp"

namespace flex::fault {

const char*
FaultKindName(FaultKind kind)
{
  switch (kind) {
    case FaultKind::kUpsFailover:
      return "ups_failover";
    case FaultKind::kMeterFailure:
      return "meter_failure";
    case FaultKind::kMeterStuck:
      return "meter_stuck";
    case FaultKind::kMeterDrift:
      return "meter_drift";
    case FaultKind::kPollerCrash:
      return "poller_crash";
    case FaultKind::kBusOutage:
      return "bus_outage";
    case FaultKind::kBusDelay:
      return "bus_delay";
    case FaultKind::kBusDuplicate:
      return "bus_duplicate";
    case FaultKind::kRackManagerTimeout:
      return "rack_manager_timeout";
    case FaultKind::kRackManagerUnreachable:
      return "rack_manager_unreachable";
    case FaultKind::kControllerPause:
      return "controller_pause";
  }
  FLEX_CONFIG_ERROR("unknown fault kind");
}

namespace {

bool
IsMeterFault(FaultKind kind)
{
  return kind == FaultKind::kMeterFailure || kind == FaultKind::kMeterStuck ||
         kind == FaultKind::kMeterDrift;
}

}  // namespace

std::string
FaultEvent::DebugString() const
{
  char buffer[160];
  if (IsMeterFault(kind)) {
    std::snprintf(buffer, sizeof(buffer),
                  "t=%.3f %s %s=%d meter=%d mag=%.4f dur=%.3f", at.value(),
                  FaultKindName(kind),
                  device_kind == telemetry::DeviceKind::kUps ? "ups" : "rack",
                  target, meter_index, magnitude, duration.value());
  } else {
    std::snprintf(buffer, sizeof(buffer),
                  "t=%.3f %s target=%d mag=%.4f dur=%.3f", at.value(),
                  FaultKindName(kind), target, magnitude, duration.value());
  }
  return buffer;
}

void
FaultPlan::SortByTime()
{
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  FLEX_LOG(obs::LogLevel::kTrace, "fault", "plan sorted: %zu event(s)",
           events_.size());
}

Seconds
FaultPlan::LastEndTime() const
{
  Seconds last(0.0);
  for (const FaultEvent& event : events_)
    last = std::max(last, event.at + event.duration);
  return last;
}

std::string
FaultPlan::DebugString() const
{
  std::string out;
  for (const FaultEvent& event : events_) {
    out += event.DebugString();
    out += '\n';
  }
  return out;
}

}  // namespace flex::fault
