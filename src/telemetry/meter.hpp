/**
 * @file
 * Power meter models with realistic failure modes.
 *
 * The paper's production lessons (Section VI) call out exactly the
 * defects modeled here: meters that return a stale value for seconds at
 * a time ("repeated polling of the UPS meters would often return the
 * same value for up to 5 seconds"), reading noise, and outright meter
 * failure. A logical meter reaches consensus over three physical meters
 * so any single failure or misreading is tolerated (Section IV-C).
 */
#ifndef FLEX_TELEMETRY_METER_HPP_
#define FLEX_TELEMETRY_METER_HPP_

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace flex::telemetry {

/** Behavioural knobs for one physical meter. */
struct MeterConfig {
  /** Multiplicative Gaussian reading noise (fraction of true value). */
  double noise_fraction = 0.005;
  /**
   * Minimum time between output refreshes: polls within this window see
   * the same cached value (the paper's ~5 s legacy UPS meters vs. the
   * ~1 s dedicated Flex meters).
   */
  Seconds refresh_interval = Seconds(1.0);
  /**
   * Probability that any given refresh produces a gross misreading
   * (modeled as a 3x over-report, i.e. corrupted scaling).
   */
  double misread_probability = 0.0;
};

/**
 * One physical meter attached to a power signal.
 *
 * The meter holds a cached output that refreshes at most every
 * refresh_interval; Sample() never sees the true value directly once the
 * cache is warm. A failed meter returns no reading until restored.
 */
class PhysicalMeter {
 public:
  PhysicalMeter(MeterConfig config, Rng rng);

  /**
   * Samples the meter at simulated time @p now given the instantaneous
   * true power @p true_value. Returns nullopt while failed.
   */
  std::optional<Watts> Sample(Seconds now, Watts true_value);

  /** Marks the meter failed (no readings) or restores it. */
  void SetFailed(bool failed) { failed_ = failed; }
  bool failed() const { return failed_; }

  /**
   * Freezes the meter's output at its cached value (the paper's "same
   * value for up to 5 seconds" defect, taken to its pathological limit).
   * The first sample after sticking still populates an empty cache.
   */
  void SetStuck(bool stuck) { stuck_ = stuck; }
  bool stuck() const { return stuck_; }

  /**
   * Starts a calibration drift: refreshed readings are scaled by
   * (1 + rate * elapsed-since-@p now), modeling a meter whose output
   * creeps away from the truth. Clear with ClearDrift().
   */
  void SetDrift(double rate_per_second, Seconds now);
  void ClearDrift() { drift_rate_ = 0.0; }
  double drift_rate() const { return drift_rate_; }

 private:
  MeterConfig config_;
  Rng rng_;
  bool failed_ = false;
  bool stuck_ = false;
  double drift_rate_ = 0.0;
  Seconds drift_since_{0.0};
  bool has_cache_ = false;
  Seconds last_refresh_{-1e18};
  Watts cached_;
};

/**
 * Consensus over redundant physical meters measuring the same quantity.
 *
 * With three meters the median tolerates one failure or misreading;
 * with two survivors the average is used; with fewer than two, no
 * consensus is reached and the caller must treat data as missing.
 */
class LogicalMeter {
 public:
  /** Builds @p redundancy physical meters with the given config. */
  LogicalMeter(int redundancy, MeterConfig config, Rng& seed_rng);

  /** Consensus reading, or nullopt when quorum is lost. */
  std::optional<Watts> Read(Seconds now, Watts true_value);

  int redundancy() const { return static_cast<int>(meters_.size()); }

  /** Direct access for failure injection in tests and demos. */
  PhysicalMeter& meter(int index);

 private:
  std::vector<PhysicalMeter> meters_;
  std::vector<double> scratch_;  // reused across Reads: no per-read allocation
};

}  // namespace flex::telemetry

#endif  // FLEX_TELEMETRY_METER_HPP_
