#include "pipeline.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace flex::telemetry {

TelemetryPipeline::TelemetryPipeline(sim::EventQueue& queue,
                                     const PowerSource& source, int num_ups,
                                     int num_racks, PipelineConfig config,
                                     std::uint64_t seed)
    : queue_(queue),
      source_(source),
      config_(config),
      num_ups_(num_ups),
      num_racks_(num_racks)
{
  FLEX_REQUIRE(num_ups_ >= 0 && num_racks_ >= 0, "negative device count");
  FLEX_REQUIRE(config_.num_pollers >= 1, "need at least one poller");
  FLEX_REQUIRE(config_.num_buses >= 1, "need at least one bus");
  FLEX_REQUIRE(config_.meters_per_device >= 1, "need at least one meter");
  FLEX_REQUIRE(config_.ups_poll_period.value() > 0.0 &&
                   config_.rack_poll_period.value() > 0.0,
               "poll periods must be positive");

  Rng seed_rng(seed);
  jitter_rng_ = seed_rng.Fork();
  ups_meters_.reserve(static_cast<std::size_t>(num_ups_));
  for (int i = 0; i < num_ups_; ++i)
    ups_meters_.emplace_back(config_.meters_per_device, config_.meter,
                             seed_rng);
  rack_meters_.reserve(static_cast<std::size_t>(num_racks_));
  for (int i = 0; i < num_racks_; ++i)
    rack_meters_.emplace_back(config_.meters_per_device, config_.meter,
                              seed_rng);
  poller_failed_.assign(static_cast<std::size_t>(config_.num_pollers), false);
  bus_failed_.assign(static_cast<std::size_t>(config_.num_buses), false);
  bus_extra_delay_.assign(static_cast<std::size_t>(config_.num_buses),
                          Seconds(0.0));
  bus_duplicate_.assign(static_cast<std::size_t>(config_.num_buses), false);

  if (config_.obs != nullptr) {
    obs::MetricsRegistry& metrics = config_.obs->metrics();
    readings_delivered_metric_ = &metrics.counter("pipeline.readings_delivered");
    no_quorum_metric_ = &metrics.counter("pipeline.meter_no_quorum");
    poller_skipped_metric_ = &metrics.counter("pipeline.poller_skipped_ticks");
    publish_lag_metric_ = &metrics.histogram("pipeline.publish_lag_s");
    recorder_ = &config_.obs->recorder();
  }
}

void
TelemetryPipeline::Subscribe(Subscriber subscriber)
{
  FLEX_REQUIRE(static_cast<bool>(subscriber), "null subscriber");
  subscribers_.push_back(std::move(subscriber));
}

void
TelemetryPipeline::SetRackPollOrder(std::vector<int> order)
{
  std::vector<std::vector<int>> groups;
  groups.push_back(std::move(order));
  SetRackPollGroups(std::move(groups));
}

void
TelemetryPipeline::SetRackPollGroups(std::vector<std::vector<int>> groups)
{
  std::size_t covered = 0;
  std::vector<char> seen(static_cast<std::size_t>(num_racks_), 0);
  for (const std::vector<int>& group : groups) {
    for (const int rack : group) {
      FLEX_REQUIRE(rack >= 0 && rack < num_racks_, "rack index out of range");
      FLEX_REQUIRE(!seen[static_cast<std::size_t>(rack)],
                   "duplicate rack in poll groups");
      seen[static_cast<std::size_t>(rack)] = 1;
      ++covered;
    }
  }
  FLEX_REQUIRE(covered == static_cast<std::size_t>(num_racks_),
               "poll groups must cover every rack exactly once");
  groups.erase(std::remove_if(groups.begin(), groups.end(),
                              [](const std::vector<int>& g) {
                                return g.empty();
                              }),
               groups.end());
  rack_poll_groups_ = std::move(groups);
}

void
TelemetryPipeline::Start()
{
  FLEX_REQUIRE(!running_, "pipeline already started");
  running_ = true;
  for (int poller = 0; poller < config_.num_pollers; ++poller) {
    const Seconds stagger = config_.poller_stagger * static_cast<double>(poller);
    // UPS schedule.
    queue_.Schedule(stagger, [this, poller] {
      if (!running_)
        return;
      PollerTick(poller, DeviceKind::kUps);
      sim::SchedulePeriodic(queue_, config_.ups_poll_period, [this, poller] {
        if (!running_)
          return false;
        PollerTick(poller, DeviceKind::kUps);
        return true;
      });
    });
    // Rack schedule.
    queue_.Schedule(stagger, [this, poller] {
      if (!running_)
        return;
      PollerTick(poller, DeviceKind::kRack);
      sim::SchedulePeriodic(queue_, config_.rack_poll_period, [this, poller] {
        if (!running_)
          return false;
        PollerTick(poller, DeviceKind::kRack);
        return true;
      });
    });
  }
}

void
TelemetryPipeline::Stop()
{
  running_ = false;
}

LogicalMeter&
TelemetryPipeline::MeterFor(DeviceId device)
{
  if (device.kind == DeviceKind::kUps) {
    FLEX_REQUIRE(device.index >= 0 && device.index < num_ups_,
                 "UPS index out of range");
    return ups_meters_[static_cast<std::size_t>(device.index)];
  }
  FLEX_REQUIRE(device.index >= 0 && device.index < num_racks_,
               "rack index out of range");
  return rack_meters_[static_cast<std::size_t>(device.index)];
}

void
TelemetryPipeline::SetMeterFailed(DeviceId device, int meter_index,
                                  bool failed)
{
  MeterFor(device).meter(meter_index).SetFailed(failed);
}

void
TelemetryPipeline::SetMeterStuck(DeviceId device, int meter_index,
                                 bool stuck)
{
  MeterFor(device).meter(meter_index).SetStuck(stuck);
}

void
TelemetryPipeline::SetMeterDrift(DeviceId device, int meter_index,
                                 double rate_per_second)
{
  MeterFor(device).meter(meter_index).SetDrift(rate_per_second, queue_.Now());
}

void
TelemetryPipeline::ClearMeterDrift(DeviceId device, int meter_index)
{
  MeterFor(device).meter(meter_index).ClearDrift();
}

void
TelemetryPipeline::SetPollerFailed(int poller, bool failed)
{
  FLEX_REQUIRE(poller >= 0 && poller < config_.num_pollers,
               "poller index out of range");
  poller_failed_[static_cast<std::size_t>(poller)] = failed;
}

void
TelemetryPipeline::SetBusFailed(int bus, bool failed)
{
  FLEX_REQUIRE(bus >= 0 && bus < config_.num_buses, "bus index out of range");
  bus_failed_[static_cast<std::size_t>(bus)] = failed;
}

void
TelemetryPipeline::SetBusLag(int bus, Seconds extra)
{
  FLEX_REQUIRE(bus >= 0 && bus < config_.num_buses, "bus index out of range");
  FLEX_REQUIRE(extra.value() >= 0.0, "negative bus lag");
  bus_extra_delay_[static_cast<std::size_t>(bus)] = extra;
}

void
TelemetryPipeline::SetBusDuplicate(int bus, bool duplicate)
{
  FLEX_REQUIRE(bus >= 0 && bus < config_.num_buses, "bus index out of range");
  bus_duplicate_[static_cast<std::size_t>(bus)] = duplicate;
}

TelemetryPipeline::Batch*
TelemetryPipeline::AcquireBatch()
{
  if (batch_free_.empty()) {
    batch_arena_.push_back(std::make_unique<Batch>());
    batch_free_.push_back(batch_arena_.back().get());
  }
  Batch* batch = batch_free_.back();
  batch_free_.pop_back();
  batch->readings.clear();
  batch->refs = 0;
  return batch;
}

void
TelemetryPipeline::DeliverBatch(Batch* batch, int bus)
{
  for (const DeviceReading& original : batch->readings) {
    DeviceReading reading = original;
    reading.bus = bus;
    reading.delivered_at = queue_.Now();
    ++delivered_count_;
    const double latency = reading.DataLatency().value();
    latency_stats_.Add(latency);
    latency_samples_.push_back(latency);
    if (readings_delivered_metric_ != nullptr) {
      readings_delivered_metric_->Increment();
      publish_lag_metric_->Observe(latency);
    }
    // UPS deliveries only: rack readings arrive every tick per rack
    // and would flush the ring's useful window in seconds.
    if (recorder_ != nullptr && reading.device.kind == DeviceKind::kUps)
      recorder_->Record(reading.delivered_at, obs::RecordKind::kMeterSample,
                        reading.device.index, bus, reading.value.value());
    for (const Subscriber& subscriber : subscribers_)
      subscriber(reading);
  }
  if (--batch->refs == 0)
    batch_free_.push_back(batch);
}

void
TelemetryPipeline::PollerTick(int poller, DeviceKind kind)
{
  if (poller_failed_[static_cast<std::size_t>(poller)]) {
    if (poller_skipped_metric_ != nullptr)
      poller_skipped_metric_->Increment();
    return;
  }

  const int count = kind == DeviceKind::kUps ? num_ups_ : num_racks_;
  // Sampling happens after the meter-to-poller network hop. Ground truth
  // for the whole tick comes from one batch call: sources with aggregate
  // state answer it without a per-device scan.
  const Seconds sampled_at = queue_.Now();
  truth_scratch_.assign(static_cast<std::size_t>(count), Watts(0.0));
  source_.CurrentPowerBatch(kind, truth_scratch_);

  // Every batch published this tick shares the same per-bus delivery
  // delays, drawn up front (one jitter draw per live bus, plus the
  // redelivery draw on duplicating buses — the same draws the
  // single-batch path makes). Splitting the poll into per-group batches
  // therefore changes neither the jitter stream nor any delivered
  // reading's value, order, or timestamp.
  bus_delay_scratch_.assign(static_cast<std::size_t>(config_.num_buses),
                            Seconds(0.0));
  bus_redelivery_scratch_.assign(static_cast<std::size_t>(config_.num_buses),
                                 Seconds(0.0));
  for (int bus = 0; bus < config_.num_buses; ++bus) {
    if (bus_failed_[static_cast<std::size_t>(bus)])
      continue;
    const Seconds delay =
        config_.network_latency + config_.bus_latency +
        bus_extra_delay_[static_cast<std::size_t>(bus)] +
        Seconds(jitter_rng_.Uniform(0.0, config_.delivery_jitter.value()));
    bus_delay_scratch_[static_cast<std::size_t>(bus)] = delay;
    if (bus_duplicate_[static_cast<std::size_t>(bus)]) {
      bus_redelivery_scratch_[static_cast<std::size_t>(bus)] =
          delay +
          Seconds(jitter_rng_.Uniform(0.0, config_.delivery_jitter.value()));
    }
  }

  // Reads every device in @p ids into @p batch (quorum permitting).
  const auto read_into = [&](const int i, Batch* batch) {
    const DeviceId device{kind, i};
    const Watts truth = truth_scratch_[static_cast<std::size_t>(i)];
    const auto reading = MeterFor(device).Read(sampled_at, truth);
    if (!reading) {
      // No quorum: data missing for this device this tick.
      if (no_quorum_metric_ != nullptr)
        no_quorum_metric_->Increment();
      FLEX_LOG_RATE_LIMITED(obs::LogLevel::kWarn, "telemetry",
                            "meter quorum lost on %s %d",
                            kind == DeviceKind::kUps ? "ups" : "rack", i);
      return;
    }
    DeviceReading r;
    r.device = device;
    r.value = *reading;
    r.sampled_at = sampled_at;
    r.poller = poller;
    batch->readings.push_back(r);
  };

  // Publishes through every live bus; subscribers see duplicates, which
  // is intended (redundant delivery; controller actions are idempotent).
  // Deliveries share the pooled batch; the refcount returns it to the
  // free list after the last one lands.
  const auto publish = [&](Batch* batch) {
    if (batch->readings.empty()) {
      batch_free_.push_back(batch);
      return;
    }
    for (int bus = 0; bus < config_.num_buses; ++bus) {
      if (bus_failed_[static_cast<std::size_t>(bus)])
        continue;
      const auto deliver = [this, batch, bus] { DeliverBatch(batch, bus); };
      ++batch->refs;
      queue_.Schedule(bus_delay_scratch_[static_cast<std::size_t>(bus)],
                      deliver);
      if (bus_duplicate_[static_cast<std::size_t>(bus)]) {
        // At-least-once redelivery: the same batch lands a second time.
        ++batch->refs;
        queue_.Schedule(
            bus_redelivery_scratch_[static_cast<std::size_t>(bus)], deliver);
      }
    }
    if (batch->refs == 0)
      batch_free_.push_back(batch);  // every bus was down: nothing in flight
  };

  if (kind == DeviceKind::kRack && !rack_poll_groups_.empty()) {
    // One batch — one delivery event per bus — per poll group.
    for (const std::vector<int>& group : rack_poll_groups_) {
      Batch* batch = AcquireBatch();
      batch->readings.reserve(group.size());
      for (const int i : group)
        read_into(i, batch);
      publish(batch);
    }
    return;
  }
  Batch* batch = AcquireBatch();
  batch->readings.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    read_into(i, batch);
  publish(batch);
}

}  // namespace flex::telemetry
