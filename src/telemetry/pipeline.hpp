/**
 * @file
 * Highly available power telemetry pipeline (paper Section IV-C, Fig. 7).
 *
 * Wires logical meters (triple-redundant physical meters) through
 * redundant pollers and redundant pub/sub buses to subscribers (the Flex
 * controllers). Every stage can be failed independently; as long as one
 * poller, one bus, and a meter quorum survive, readings keep flowing —
 * there is no single point of failure.
 */
#ifndef FLEX_TELEMETRY_PIPELINE_HPP_
#define FLEX_TELEMETRY_PIPELINE_HPP_

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "obs/observability.hpp"
#include "sim/event_queue.hpp"
#include "telemetry/meter.hpp"

namespace flex::telemetry {

/** What kind of power device a reading describes. */
enum class DeviceKind { kUps, kRack };

/** Identifies a monitored device. */
struct DeviceId {
  DeviceKind kind = DeviceKind::kUps;
  int index = 0;

  bool
  operator==(const DeviceId& other) const
  {
    return kind == other.kind && index == other.index;
  }
};

/** A delivered power reading. */
struct DeviceReading {
  DeviceId device;
  Watts value;
  Seconds sampled_at;    ///< when the meter was read
  Seconds delivered_at;  ///< when the subscriber received it
  int poller = -1;
  int bus = -1;

  /** End-to-end data latency for this reading. */
  Seconds DataLatency() const { return delivered_at - sampled_at; }
};

/** Supplies instantaneous ground-truth power for each device. */
class PowerSource {
 public:
  virtual ~PowerSource() = default;
  virtual Watts CurrentPower(DeviceId device) const = 0;

  /**
   * Fills @p out (pre-sized to the device count by the caller) with the
   * instantaneous power of every device of @p kind. The pipeline polls
   * through this batch entry point so sources that maintain aggregate
   * state (e.g. RoomEmulation's incremental per-UPS sums) answer a whole
   * tick in one call instead of one virtual call per device. The default
   * falls back to per-device CurrentPower().
   */
  virtual void
  CurrentPowerBatch(DeviceKind kind, std::vector<Watts>& out) const
  {
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i] = CurrentPower(DeviceId{kind, static_cast<int>(i)});
  }
};

/** Configuration of the telemetry pipeline. */
struct PipelineConfig {
  int meters_per_device = 3;  ///< physical meters per logical meter
  int num_pollers = 2;        ///< independent pollers (separate fault domains)
  int num_buses = 2;          ///< independent pub/sub systems
  Seconds ups_poll_period = Seconds(1.5);   ///< paper: ~1.5 s UPS telemetry
  Seconds rack_poll_period = Seconds(2.0);  ///< paper: ~2 s rack telemetry
  /** Stagger between pollers so they do not sample in lockstep. */
  Seconds poller_stagger = Seconds(0.4);
  /** Meter-to-poller network latency. */
  Seconds network_latency = Milliseconds(60.0);
  /** Pub/sub delivery latency (poller to subscriber). */
  Seconds bus_latency = Milliseconds(250.0);
  /**
   * Uniform jitter added on top of each delivery (network queueing and
   * pub/sub batching variability; the paper's "windowing delay").
   */
  Seconds delivery_jitter = Milliseconds(400.0);
  MeterConfig meter;
  /** Optional instrumentation sink (null: not instrumented). */
  obs::Observability* obs = nullptr;
};

/**
 * The end-to-end telemetry pipeline, driven by a sim::EventQueue.
 */
class TelemetryPipeline {
 public:
  using Subscriber = std::function<void(const DeviceReading&)>;

  TelemetryPipeline(sim::EventQueue& queue, const PowerSource& source,
                    int num_ups, int num_racks, PipelineConfig config,
                    std::uint64_t seed);

  /** Registers a subscriber; all buses deliver to all subscribers. */
  void Subscribe(Subscriber subscriber);

  /**
   * Sets the order in which rack meters are visited each tick. Must be a
   * permutation of [0, num_racks). Equivalent to SetRackPollGroups with
   * a single group: every rack still publishes in one batch per tick.
   */
  void SetRackPollOrder(std::vector<int> order);

  /**
   * Splits each rack poll tick into one batch per group (RoomEmulation
   * passes racks grouped by their PDU pair's primary UPS, so each batch
   * covers one electrical domain). The groups together must cover
   * [0, num_racks) exactly once; empty groups are dropped. All batches
   * of a tick share the same per-bus delivery delays, so the delivered
   * readings — values, order, and timestamps — are identical to the
   * single-batch path; only the event granularity changes: the queue
   * sees one delivery event per group per bus instead of one monolithic
   * room-sized event.
   */
  void SetRackPollGroups(std::vector<std::vector<int>> groups);

  /** Begins the periodic polling schedules. */
  void Start();

  /** Stops future polls (events already in flight still deliver). */
  void Stop();

  // --- Fault injection ----------------------------------------------------

  /** Fails/restores one physical meter of a device's logical meter. */
  void SetMeterFailed(DeviceId device, int meter_index, bool failed);
  /** Freezes/unfreezes one physical meter at its cached value. */
  void SetMeterStuck(DeviceId device, int meter_index, bool stuck);
  /** Starts a calibration drift on one physical meter (per-second rate). */
  void SetMeterDrift(DeviceId device, int meter_index,
                     double rate_per_second);
  /** Clears a meter drift started with SetMeterDrift. */
  void ClearMeterDrift(DeviceId device, int meter_index);
  /** Fails/restores a poller (it skips its ticks while failed). */
  void SetPollerFailed(int poller, bool failed);
  /** Fails/restores a pub/sub bus (it drops deliveries while failed). */
  void SetBusFailed(int bus, bool failed);
  /** Adds @p extra delivery delay on a bus (congestion); 0 clears it. */
  void SetBusLag(int bus, Seconds extra);
  /** Makes a bus deliver every batch twice (at-least-once redelivery). */
  void SetBusDuplicate(int bus, bool duplicate);

  // --- Introspection --------------------------------------------------------

  /** Count of readings delivered to subscribers so far. */
  std::size_t delivered_count() const { return delivered_count_; }

  /** Latency statistics over delivered readings. */
  const RunningStats& latency_stats() const { return latency_stats_; }

  /** Raw latency samples (seconds), for percentile reporting. */
  const std::vector<double>& latency_samples() const {
    return latency_samples_;
  }

  const PipelineConfig& config() const { return config_; }

  /**
   * Reading batches ever allocated. Steady-state polling recycles them
   * through a free list, so this stabilizes after the first few ticks —
   * asserted by the pipeline tests.
   */
  std::size_t batch_arena_size() const { return batch_arena_.size(); }

 private:
  /**
   * A reusable reading batch. Batches live in an arena owned by the
   * pipeline and cycle through a free list; `refs` counts scheduled bus
   * deliveries still holding the batch, and the last delivery returns it
   * to the free list. Steady-state polling therefore performs no
   * per-tick allocations once the arena and scratch buffers are warm.
   */
  struct Batch {
    std::vector<DeviceReading> readings;
    int refs = 0;
  };

  LogicalMeter& MeterFor(DeviceId device);

  /** One poller samples every device of @p kind and publishes. */
  void PollerTick(int poller, DeviceKind kind);

  /** Pops a batch from the free list (or grows the arena). */
  Batch* AcquireBatch();
  /** Delivers @p batch on @p bus and releases it when refs hits zero. */
  void DeliverBatch(Batch* batch, int bus);

  sim::EventQueue& queue_;
  const PowerSource& source_;
  PipelineConfig config_;
  int num_ups_;
  int num_racks_;
  bool running_ = false;

  Rng jitter_rng_{0};
  std::vector<LogicalMeter> ups_meters_;
  std::vector<LogicalMeter> rack_meters_;
  std::vector<bool> poller_failed_;
  std::vector<bool> bus_failed_;
  std::vector<Seconds> bus_extra_delay_;
  std::vector<bool> bus_duplicate_;
  std::vector<Subscriber> subscribers_;
  // Rack poll batches: each inner vector is one batch of rack ids per
  // tick. Empty: a single batch in rack-id order.
  std::vector<std::vector<int>> rack_poll_groups_;

  // Steady-state scratch: the arena recycles reading batches across
  // ticks; truth_scratch_ holds one tick's ground-truth powers, and the
  // bus scratch vectors hold the tick's shared per-bus delivery delays.
  std::vector<std::unique_ptr<Batch>> batch_arena_;
  std::vector<Batch*> batch_free_;
  std::vector<Watts> truth_scratch_;
  std::vector<Seconds> bus_delay_scratch_;
  std::vector<Seconds> bus_redelivery_scratch_;

  std::size_t delivered_count_ = 0;
  RunningStats latency_stats_;
  std::vector<double> latency_samples_;

  // Cached metric objects (registry lookups stay off the hot path).
  obs::Counter* readings_delivered_metric_ = nullptr;
  obs::Counter* no_quorum_metric_ = nullptr;
  obs::Counter* poller_skipped_metric_ = nullptr;
  obs::Histogram* publish_lag_metric_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
};

}  // namespace flex::telemetry

#endif  // FLEX_TELEMETRY_PIPELINE_HPP_
