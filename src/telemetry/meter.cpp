#include "meter.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace flex::telemetry {

PhysicalMeter::PhysicalMeter(MeterConfig config, Rng rng)
    : config_(config), rng_(rng)
{
  FLEX_REQUIRE(config_.noise_fraction >= 0.0, "negative meter noise");
  FLEX_REQUIRE(config_.refresh_interval.value() >= 0.0,
               "negative refresh interval");
  FLEX_REQUIRE(config_.misread_probability >= 0.0 &&
                   config_.misread_probability <= 1.0,
               "misread probability must be in [0, 1]");
}

void
PhysicalMeter::SetDrift(double rate_per_second, Seconds now)
{
  drift_rate_ = rate_per_second;
  drift_since_ = now;
}

std::optional<Watts>
PhysicalMeter::Sample(Seconds now, Watts true_value)
{
  if (failed_)
    return std::nullopt;
  if (stuck_ && has_cache_)
    return cached_;  // frozen output: the cache never refreshes
  if (!has_cache_ ||
      (now - last_refresh_).value() >= config_.refresh_interval.value()) {
    double value = true_value.value() *
                   (1.0 + config_.noise_fraction * rng_.Normal());
    if (rng_.Bernoulli(config_.misread_probability))
      value *= 3.0;  // gross misreading: corrupted scale factor
    if (drift_rate_ != 0.0)
      value *= 1.0 + drift_rate_ * (now - drift_since_).value();
    cached_ = Watts(std::max(0.0, value));
    last_refresh_ = now;
    has_cache_ = true;
  }
  return cached_;
}

LogicalMeter::LogicalMeter(int redundancy, MeterConfig config, Rng& seed_rng)
{
  FLEX_REQUIRE(redundancy >= 1, "logical meter needs at least one meter");
  meters_.reserve(static_cast<std::size_t>(redundancy));
  for (int i = 0; i < redundancy; ++i)
    meters_.emplace_back(config, seed_rng.Fork());
  scratch_.reserve(static_cast<std::size_t>(redundancy));
}

std::optional<Watts>
LogicalMeter::Read(Seconds now, Watts true_value)
{
  std::vector<double>& readings = scratch_;
  readings.clear();
  for (PhysicalMeter& meter : meters_) {
    if (const auto reading = meter.Sample(now, true_value))
      readings.push_back(reading->value());
  }
  // Quorum rule: a single meter cannot be trusted when the design calls
  // for redundancy — except in the degenerate single-meter configuration.
  const std::size_t quorum = meters_.size() >= 2 ? 2 : 1;
  if (readings.size() < quorum)
    return std::nullopt;
  std::sort(readings.begin(), readings.end());
  const std::size_t n = readings.size();
  if (n % 2 == 1)
    return Watts(readings[n / 2]);
  return Watts(0.5 * (readings[n / 2 - 1] + readings[n / 2]));
}

PhysicalMeter&
LogicalMeter::meter(int index)
{
  FLEX_REQUIRE(index >= 0 && index < redundancy(), "meter index out of range");
  return meters_[static_cast<std::size_t>(index)];
}

}  // namespace flex::telemetry
