#include "impact.hpp"

#include "common/error.hpp"

namespace flex::workload {

ImpactFunction::ImpactFunction(PiecewiseLinear curve)
    : curve_(std::move(curve))
{
  FLEX_REQUIRE(curve_.MinY() >= 0.0 && curve_.MaxY() <= 1.0,
               "impact must stay within [0, 1]");
  FLEX_REQUIRE(curve_.IsNonDecreasing(),
               "impact functions must be non-decreasing");
}

double
ImpactFunction::operator()(double affected_fraction) const
{
  FLEX_REQUIRE(affected_fraction >= 0.0 && affected_fraction <= 1.0,
               "affected fraction must be in [0, 1]");
  return curve_(affected_fraction);
}

ImpactFunction
ImpactFunction::Fig8A()
{
  // Incremental impact from the first rack, with the last ~10% being
  // critical management racks.
  return ImpactFunction(PiecewiseLinear{
      {0.0, 0.0}, {0.9, 0.6}, {0.901, 1.0}, {1.0, 1.0}});
}

ImpactFunction
ImpactFunction::Fig8B()
{
  // Stateless software-redundant: ~60% of racks can disappear for free,
  // then impact ramps as capacity headroom vanishes.
  return ImpactFunction(PiecewiseLinear{
      {0.0, 0.0}, {0.6, 0.0}, {1.0, 0.8}});
}

ImpactFunction
ImpactFunction::Fig8C()
{
  // Stateful software-redundant: ~20% growth buffer free, incremental
  // impact across the working set, ~10% critical management racks.
  return ImpactFunction(PiecewiseLinear{
      {0.0, 0.0}, {0.2, 0.0}, {0.9, 0.7}, {0.901, 1.0}, {1.0, 1.0}});
}

ImpactFunction
ImpactFunction::Zero()
{
  return ImpactFunction(PiecewiseLinear::Constant(0.0));
}

ImpactFunction
ImpactFunction::Critical()
{
  return ImpactFunction(PiecewiseLinear{{0.0, 0.0}, {1e-6, 1.0}, {1.0, 1.0}});
}

ImpactFunction
ImpactFunction::Linear()
{
  return ImpactFunction(PiecewiseLinear{{0.0, 0.0}, {1.0, 1.0}});
}

ImpactScenario
ImpactScenario::Extreme1()
{
  // Shutting down software-redundant racks has no impact; throttling any
  // cap-able rack is maximally undesirable.
  return ImpactScenario{"Extreme-1", ImpactFunction::Zero(),
                        ImpactFunction::Critical()};
}

ImpactScenario
ImpactScenario::Extreme2()
{
  // Throttling is free; shutting down software-redundant racks is
  // maximally undesirable.
  return ImpactScenario{"Extreme-2", ImpactFunction::Critical(),
                        ImpactFunction::Zero()};
}

ImpactScenario
ImpactScenario::Realistic1()
{
  // Shutdown cheaper than throttling: software-redundant has a large
  // free buffer (Fig. 8C-like) while the cap-able service sees impact
  // from the first throttled rack (Fig. 8A-like).
  return ImpactScenario{"Realistic-1",
                        ImpactFunction(PiecewiseLinear{{0.0, 0.0},
                                                       {0.4, 0.0},
                                                       {0.9, 0.5},
                                                       {0.901, 1.0},
                                                       {1.0, 1.0}}),
                        ImpactFunction(PiecewiseLinear{{0.0, 0.0},
                                                       {0.9, 0.8},
                                                       {0.901, 1.0},
                                                       {1.0, 1.0}})};
}

ImpactScenario
ImpactScenario::Realistic2()
{
  // Throttling cheaper than shutdown: the cap-able service tolerates
  // caps well while the software-redundant one is stateful and pays for
  // every rack lost.
  return ImpactScenario{"Realistic-2",
                        ImpactFunction(PiecewiseLinear{{0.0, 0.0},
                                                       {0.15, 0.0},
                                                       {0.9, 0.8},
                                                       {0.901, 1.0},
                                                       {1.0, 1.0}}),
                        ImpactFunction(PiecewiseLinear{{0.0, 0.0},
                                                       {0.7, 0.25},
                                                       {0.9, 0.5},
                                                       {0.901, 1.0},
                                                       {1.0, 1.0}})};
}

std::vector<ImpactScenario>
ImpactScenario::AllScenarios()
{
  return {Extreme1(), Extreme2(), Realistic1(), Realistic2()};
}

}  // namespace flex::workload
