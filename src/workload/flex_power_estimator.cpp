#include "flex_power_estimator.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace flex::workload {

FlexPowerEstimator::FlexPowerEstimator(FlexPowerEstimatorConfig config)
    : config_(config)
{
  FLEX_REQUIRE(config_.max_average_reduction >= 0.0 &&
                   config_.max_average_reduction <= 1.0,
               "max average reduction must be in [0, 1]");
  FLEX_REQUIRE(config_.high_utilization_threshold >= 0.0 &&
                   config_.high_utilization_threshold <= 1.0,
               "high utilization threshold must be in [0, 1]");
  FLEX_REQUIRE(config_.min_fraction >= 0.0 &&
                   config_.min_fraction <= config_.max_fraction &&
                   config_.max_fraction <= 1.0,
               "flex fraction search bounds must satisfy 0 <= min <= max <= 1");
}

std::vector<double>
FlexPowerEstimator::HighSamples(
    const std::vector<double>& utilization_samples) const
{
  std::vector<double> high;
  for (const double u : utilization_samples) {
    FLEX_REQUIRE(u >= 0.0 && u <= 1.5,
                 "utilization samples must be sane fractions");
    if (u >= config_.high_utilization_threshold)
      high.push_back(u);
  }
  return high;
}

double
FlexPowerEstimator::AverageReductionAt(
    const std::vector<double>& utilization_samples, double fraction) const
{
  const std::vector<double> high = HighSamples(utilization_samples);
  if (high.empty())
    return 0.0;  // the rack never runs hot: capping costs nothing
  double total_draw = 0.0;
  double total_cut = 0.0;
  for (const double u : high) {
    total_draw += u;
    total_cut += std::max(0.0, u - fraction);
  }
  return total_draw > 0.0 ? total_cut / total_draw : 0.0;
}

double
FlexPowerEstimator::EstimateFraction(
    const std::vector<double>& utilization_samples) const
{
  FLEX_REQUIRE(!utilization_samples.empty(),
               "need historical samples to estimate flex power");
  // Reduction is monotonically non-increasing in the cap fraction, so
  // bisect for the smallest acceptable fraction.
  if (AverageReductionAt(utilization_samples, config_.min_fraction) <=
      config_.max_average_reduction)
    return config_.min_fraction;
  double lo = config_.min_fraction;   // too much reduction
  double hi = config_.max_fraction;   // no reduction (cap at allocation)
  for (int i = 0; i < 50; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (AverageReductionAt(utilization_samples, mid) <=
        config_.max_average_reduction)
      hi = mid;
    else
      lo = mid;
  }
  return hi;
}

}  // namespace flex::workload
