#include "trace.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"

namespace flex::workload {

void
TraceConfig::Validate() const
{
  FLEX_REQUIRE(demand_multiple > 0.0, "demand multiple must be positive");
  FLEX_REQUIRE(!deployment_sizes.empty() &&
                   deployment_sizes.size() == size_weights.size(),
               "deployment sizes and weights must align");
  for (const int racks : deployment_sizes)
    FLEX_REQUIRE(racks > 0, "deployment sizes must be positive");
  double weight_sum = 0.0;
  for (const double w : size_weights) {
    FLEX_REQUIRE(w >= 0.0, "negative size weight");
    weight_sum += w;
  }
  FLEX_REQUIRE(weight_sum > 0.0, "size weights must not all be zero");
  FLEX_REQUIRE(!rack_powers.empty(), "need at least one rack power option");
  for (const Watts w : rack_powers)
    FLEX_REQUIRE(w > Watts(0.0), "rack powers must be positive");
  FLEX_REQUIRE(software_redundant_fraction >= 0.0 && capable_fraction >= 0.0,
               "category fractions must be non-negative");
  FLEX_REQUIRE(software_redundant_fraction + capable_fraction <= 1.0 + 1e-9,
               "category fractions exceed 1");
  FLEX_REQUIRE(flex_power_min >= 0.0 && flex_power_max <= 1.0 &&
                   flex_power_min <= flex_power_max,
               "flex power range must be within [0, 1] and ordered");
  FLEX_REQUIRE(max_deployment_racks >= 0, "negative deployment cap");
}

namespace {

/** Workload names per category; cycled to create multiple workloads. */
const char* const kSoftwareRedundantNames[] = {"websearch", "analytics",
                                               "messaging"};
const char* const kCapableNames[] = {"iaas-vm", "paas-web", "internal-batch"};
const char* const kNonCapableNames[] = {"gpu-train", "storage", "net-app"};

int
PickWeighted(const std::vector<double>& weights, Rng& rng)
{
  double total = 0.0;
  for (const double w : weights)
    total += w;
  double draw = rng.Uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw <= 0.0)
      return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

}  // namespace

std::vector<Deployment>
GenerateTrace(const TraceConfig& config, Watts provisioned_power, Rng& rng)
{
  config.Validate();
  FLEX_REQUIRE(provisioned_power > Watts(0.0),
               "provisioned power must be positive");

  const Watts target = provisioned_power * config.demand_multiple;

  // Remaining power budget per category; deployments are drawn against
  // the categories with budget left so the realized mix tracks the
  // configured fractions.
  const double non_capable_fraction = std::max(
      0.0, 1.0 - config.software_redundant_fraction - config.capable_fraction);
  Watts budget[3] = {target * config.software_redundant_fraction,
                     target * config.capable_fraction,
                     target * non_capable_fraction};
  int name_counter[3] = {0, 0, 0};

  std::vector<Deployment> trace;
  Watts total(0.0);
  while (total < target) {
    // Pick the category with the largest remaining budget, with a random
    // tie-break to avoid deterministic striping.
    int category = 0;
    for (int c = 1; c < 3; ++c) {
      if (budget[c] > budget[category] ||
          (budget[c].ApproxEquals(budget[category]) && rng.Bernoulli(0.5)))
        category = c;
    }
    if (budget[category] <= Watts(0.0))
      break;  // every category budget exhausted

    Deployment d;
    d.id = static_cast<DeploymentId>(trace.size());
    const int size_index = PickWeighted(config.size_weights, rng);
    d.num_racks = config.deployment_sizes[static_cast<std::size_t>(size_index)];
    d.power_per_rack = config.rack_powers[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(config.rack_powers.size()) -
                              1))];
    switch (category) {
      case 0:
        d.category = Category::kSoftwareRedundant;
        d.workload = kSoftwareRedundantNames[name_counter[0]++ % 3];
        d.flex_power_fraction = 0.0;  // shut down entirely
        break;
      case 1:
        d.category = Category::kNonRedundantCapable;
        d.workload = kCapableNames[name_counter[1]++ % 3];
        d.flex_power_fraction =
            rng.Uniform(config.flex_power_min, config.flex_power_max);
        break;
      default:
        d.category = Category::kNonRedundantNonCapable;
        d.workload = kNonCapableNames[name_counter[2]++ % 3];
        d.flex_power_fraction = 1.0;
        break;
    }
    d.Validate();
    budget[category] -= d.AllocatedPower();
    total += d.AllocatedPower();
    trace.push_back(std::move(d));
  }

  if (config.max_deployment_racks > 0)
    return CapDeploymentSizes(trace, config.max_deployment_racks);
  return trace;
}

std::vector<std::vector<Deployment>>
ShuffledVariants(const std::vector<Deployment>& trace, int count, Rng& rng)
{
  FLEX_REQUIRE(count >= 1, "need at least one variant");
  std::vector<std::vector<Deployment>> variants;
  variants.reserve(static_cast<std::size_t>(count));
  variants.push_back(trace);
  for (int i = 1; i < count; ++i) {
    std::vector<Deployment> shuffled = trace;
    rng.Shuffle(shuffled);
    for (std::size_t j = 0; j < shuffled.size(); ++j)
      shuffled[j].id = static_cast<DeploymentId>(j);
    variants.push_back(std::move(shuffled));
  }
  return variants;
}

std::vector<Deployment>
CapDeploymentSizes(const std::vector<Deployment>& trace, int max_racks)
{
  FLEX_REQUIRE(max_racks > 0, "deployment size cap must be positive");
  std::vector<Deployment> capped;
  for (const Deployment& d : trace) {
    int remaining = d.num_racks;
    while (remaining > 0) {
      Deployment piece = d;
      piece.id = static_cast<DeploymentId>(capped.size());
      piece.num_racks = std::min(remaining, max_racks);
      remaining -= piece.num_racks;
      capped.push_back(std::move(piece));
    }
  }
  return capped;
}

CategoryMix
MixOf(const std::vector<Deployment>& trace)
{
  CategoryMix mix;
  Watts total(0.0);
  Watts per_category[3] = {Watts(0.0), Watts(0.0), Watts(0.0)};
  for (const Deployment& d : trace) {
    total += d.AllocatedPower();
    switch (d.category) {
      case Category::kSoftwareRedundant:
        per_category[0] += d.AllocatedPower();
        break;
      case Category::kNonRedundantCapable:
        per_category[1] += d.AllocatedPower();
        break;
      case Category::kNonRedundantNonCapable:
        per_category[2] += d.AllocatedPower();
        break;
    }
  }
  if (total > Watts(0.0)) {
    mix.software_redundant = per_category[0] / total;
    mix.capable = per_category[1] / total;
    mix.non_capable = per_category[2] / total;
  }
  return mix;
}

}  // namespace flex::workload
