/**
 * @file
 * Flex power estimation for external cap-able workloads.
 *
 * Paper Section IV-B: for provider-owned workloads the flex power value
 * comes from benchmarking, but for external workloads (e.g. customer
 * VMs) Flex "leverages historical power utilization coupled with
 * statistical multiplexing to bound the average power reduction to an
 * acceptable threshold (e.g. 10-15%) at high utilization" — without any
 * knowledge of individual workloads, only historical rack power
 * profiles. This module implements that estimator.
 */
#ifndef FLEX_WORKLOAD_FLEX_POWER_ESTIMATOR_HPP_
#define FLEX_WORKLOAD_FLEX_POWER_ESTIMATOR_HPP_

#include <vector>

#include "common/units.hpp"

namespace flex::workload {

/** Tuning for the flex power estimator. */
struct FlexPowerEstimatorConfig {
  /**
   * Maximum acceptable *average* power reduction across the racks, as a
   * fraction of their draw, evaluated at high utilization (when
   * Flex-Online may actually engage). Paper: 10-15%.
   */
  double max_average_reduction = 0.10;
  /**
   * "High utilization" filter: only historical samples above this
   * fraction of the rack allocation enter the estimate (capping only
   * matters when racks are actually drawing).
   */
  double high_utilization_threshold = 0.70;
  /** Search bounds for the resulting flex power fraction. */
  double min_fraction = 0.50;
  double max_fraction = 1.00;
};

/**
 * Estimates the lowest safe flex power fraction from historical rack
 * utilization samples.
 */
class FlexPowerEstimator {
 public:
  explicit FlexPowerEstimator(FlexPowerEstimatorConfig config = {});

  /**
   * Given historical per-rack utilization samples (fractions of rack
   * allocation, pooled across the deployment's racks and time), returns
   * the smallest flex power fraction whose expected reduction at high
   * utilization stays within the configured threshold.
   *
   * Statistical multiplexing is what makes this work: capping a rack at
   * c only removes max(0, u - c) from samples above c, and averaging
   * across many racks bounds the aggregate impact even though any one
   * rack may occasionally be deep-throttled.
   */
  double EstimateFraction(const std::vector<double>& utilization_samples)
      const;

  /**
   * Average power reduction (fraction of draw) that capping at
   * @p fraction would have caused over the high-utilization samples.
   */
  double AverageReductionAt(const std::vector<double>& utilization_samples,
                            double fraction) const;

  const FlexPowerEstimatorConfig& config() const { return config_; }

 private:
  /** High-utilization subset of the samples. */
  std::vector<double> HighSamples(
      const std::vector<double>& utilization_samples) const;

  FlexPowerEstimatorConfig config_;
};

}  // namespace flex::workload

#endif  // FLEX_WORKLOAD_FLEX_POWER_ESTIMATOR_HPP_
