/**
 * @file
 * Statistical rack power-draw model.
 *
 * Substitutes for the paper's historical per-rack power telemetry: racks
 * draw a random fraction of their allocated power (truncated normal),
 * then the snapshot is rescaled so the room-wide aggregate hits an exact
 * target utilization — matching how the paper drives Fig. 12's X-axis.
 */
#ifndef FLEX_WORKLOAD_RACK_POWER_HPP_
#define FLEX_WORKLOAD_RACK_POWER_HPP_

#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace flex::workload {

/** Distributional knobs for per-rack utilization. */
struct RackPowerModelConfig {
  /** Mean utilization of allocated rack power. */
  double mean_utilization = 0.72;
  /** Standard deviation of utilization across racks. */
  double stddev = 0.10;
  /** Truncation bounds. */
  double min_utilization = 0.30;
  double max_utilization = 1.00;
};

/**
 * Draws rack power snapshots from the configured distribution.
 */
class RackPowerModel {
 public:
  explicit RackPowerModel(RackPowerModelConfig config = {});

  /**
   * A snapshot of per-rack draws for racks with the given allocations.
   * No rescaling: each rack draws an independent utilization.
   */
  std::vector<Watts> Sample(const std::vector<Watts>& allocations,
                            Rng& rng) const;

  /**
   * A snapshot whose aggregate equals @p target_utilization of the total
   * allocation exactly (per-rack draws keep their relative shape but are
   * scaled, respecting the per-rack allocation ceiling).
   */
  std::vector<Watts> SampleAtUtilization(const std::vector<Watts>& allocations,
                                         double target_utilization,
                                         Rng& rng) const;

  const RackPowerModelConfig& config() const { return config_; }

 private:
  RackPowerModelConfig config_;
};

}  // namespace flex::workload

#endif  // FLEX_WORKLOAD_RACK_POWER_HPP_
