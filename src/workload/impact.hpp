/**
 * @file
 * Workload impact functions.
 *
 * An impact function (paper Section IV-D, Figs. 8 and 11) maps the
 * fraction of a workload's racks that have been throttled or shut down to
 * a perceived performance/availability impact in [0, 1]. Flex-Online's
 * decision policy greedily picks the rack whose action adds the least
 * impact, so these functions are how workloads express their tolerance.
 */
#ifndef FLEX_WORKLOAD_IMPACT_HPP_
#define FLEX_WORKLOAD_IMPACT_HPP_

#include <string>

#include "common/piecewise.hpp"
#include "workload/deployment.hpp"

namespace flex::workload {

/**
 * Impact in [0, 1] as a function of affected-rack fraction in [0, 1].
 *
 * y = 0: no perceivable impact; y = 1: critical racks that must not be
 * touched except when vital for safety. Functions must be non-decreasing
 * (impacting more racks never helps).
 */
class ImpactFunction {
 public:
  /** Wraps a piecewise-linear curve; validates range and monotonicity. */
  explicit ImpactFunction(PiecewiseLinear curve);

  /** Impact when @p affected_fraction of the racks are acted upon. */
  double operator()(double affected_fraction) const;

  const PiecewiseLinear& curve() const { return curve_; }

  // --- The paper's Fig. 8 example functions -------------------------------

  /**
   * Function A: non-redundant cap-able workload (e.g. a VM service) with
   * incremental impact plus a protected set of critical management racks.
   */
  static ImpactFunction Fig8A();

  /**
   * Function B: stateless software-redundant workload; a large fraction
   * can be shut down with no impact before costs ramp.
   */
  static ImpactFunction Fig8B();

  /**
   * Function C: stateful software-redundant workload with a free growth
   * buffer, an incremental middle, and protected management racks.
   */
  static ImpactFunction Fig8C();

  /** Impact that is zero regardless of how many racks are affected. */
  static ImpactFunction Zero();

  /** Impact that is maximal as soon as any rack is affected. */
  static ImpactFunction Critical();

  /** Linear 0 -> 1 impact. */
  static ImpactFunction Linear();

 private:
  PiecewiseLinear curve_;
};

/**
 * One of the paper's Fig. 11 simulation scenarios: an impact function per
 * workload category (non-cap-able workloads are never acted on, so they
 * carry no function).
 */
struct ImpactScenario {
  std::string name;
  ImpactFunction software_redundant;
  ImpactFunction capable;

  /** Fig. 11(a): shutting down software-redundant racks is free. */
  static ImpactScenario Extreme1();
  /** Fig. 11(b): throttling cap-able racks is free. */
  static ImpactScenario Extreme2();
  /** Fig. 11(c): realistic mix, shutdown cheaper than throttling. */
  static ImpactScenario Realistic1();
  /** Fig. 11(d): realistic mix, throttling cheaper than shutdown. */
  static ImpactScenario Realistic2();

  /** All four scenarios in paper order. */
  static std::vector<ImpactScenario> AllScenarios();
};

}  // namespace flex::workload

#endif  // FLEX_WORKLOAD_IMPACT_HPP_
