#include "deployment.hpp"

#include "common/error.hpp"

namespace flex::workload {

const char*
CategoryName(Category category)
{
  switch (category) {
    case Category::kSoftwareRedundant:
      return "software-redundant";
    case Category::kNonRedundantCapable:
      return "non-redundant-capable";
    case Category::kNonRedundantNonCapable:
      return "non-redundant-non-capable";
  }
  return "unknown";
}

double
Deployment::CfmPerRack() const
{
  return cfm_per_watt * power_per_rack.value();
}

Watts
Deployment::AllocatedPower() const
{
  return power_per_rack * static_cast<double>(num_racks);
}

Watts
Deployment::CappedPowerPerRack() const
{
  switch (category) {
    case Category::kSoftwareRedundant:
      return Watts(0.0);
    case Category::kNonRedundantCapable:
      return power_per_rack * flex_power_fraction;
    case Category::kNonRedundantNonCapable:
      return power_per_rack;
  }
  return power_per_rack;
}

Watts
Deployment::CappedPower() const
{
  return CappedPowerPerRack() * static_cast<double>(num_racks);
}

Watts
Deployment::ShaveablePower() const
{
  return AllocatedPower() - CappedPower();
}

void
Deployment::Validate() const
{
  FLEX_REQUIRE(num_racks > 0, "deployment must have at least one rack");
  FLEX_REQUIRE(power_per_rack > Watts(0.0),
               "deployment rack power must be positive");
  FLEX_REQUIRE(flex_power_fraction >= 0.0 && flex_power_fraction <= 1.0,
               "flex power fraction must be in [0, 1]");
  FLEX_REQUIRE(cfm_per_watt >= 0.0, "cooling requirement must be >= 0");
  FLEX_REQUIRE(!workload.empty(), "deployment must name its workload");
}

Watts
TotalAllocatedPower(const std::vector<Deployment>& deployments)
{
  Watts total(0.0);
  for (const Deployment& d : deployments)
    total += d.AllocatedPower();
  return total;
}

}  // namespace flex::workload
