/**
 * @file
 * Short-term demand trace generation.
 *
 * Substitutes for Microsoft's historical deployment traces with a
 * parameterized synthetic generator matching every statistic the paper
 * publishes (Section V-A): deployment sizes dominated by 20 racks with
 * some 10s and 5s, rack power of 14.4/17.2 kW, a 13%/56%/31% category
 * mix, flex power fractions of 0.75-0.85, and total demand equal to 115%
 * of the room's provisioned power. Shuffled variants study order
 * sensitivity, as the paper's 10 trace variations do.
 */
#ifndef FLEX_WORKLOAD_TRACE_HPP_
#define FLEX_WORKLOAD_TRACE_HPP_

#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "workload/deployment.hpp"

namespace flex::workload {

/** Knobs for the synthetic demand generator. */
struct TraceConfig {
  /** Demand as a multiple of provisioned power (paper: 1.15). */
  double demand_multiple = 1.15;

  /** Deployment rack-count choices and their weights (paper: mostly 20). */
  std::vector<int> deployment_sizes = {20, 10, 5};
  std::vector<double> size_weights = {0.7, 0.2, 0.1};

  /** Per-rack power choices (paper: 14.4 kW and 17.2 kW). */
  std::vector<Watts> rack_powers = {KiloWatts(14.4), KiloWatts(17.2)};

  /** Category mix (paper Fig. 3 average: 13% / 56% / 31%). */
  double software_redundant_fraction = 0.13;
  double capable_fraction = 0.56;
  // non-capable = remainder

  /** Flex power fraction range for cap-able deployments (paper: .75-.85). */
  double flex_power_min = 0.75;
  double flex_power_max = 0.85;

  /**
   * Optional cap on deployment size; larger requests are split (the
   * paper's deployment-size ablation breaks 20-rack deployments into
   * 10s). 0 disables the cap.
   */
  int max_deployment_racks = 0;

  /** Validates ranges; throws ConfigError on nonsense. */
  void Validate() const;
};

/**
 * Generates one short-term demand trace totalling approximately
 * @p provisioned_power * config.demand_multiple of allocated power.
 *
 * Category assignment is quota-driven: deployments draw from the three
 * category budgets so the realized power mix tracks the configured
 * fractions closely even for small traces.
 */
std::vector<Deployment> GenerateTrace(const TraceConfig& config,
                                      Watts provisioned_power, Rng& rng);

/**
 * Produces @p count order-shuffled variants of @p trace (the first
 * variant is the original order), re-numbering deployment ids so each
 * variant is self-consistent.
 */
std::vector<std::vector<Deployment>> ShuffledVariants(
    const std::vector<Deployment>& trace, int count, Rng& rng);

/**
 * Splits deployments larger than @p max_racks into equal chunks no
 * larger than the cap (the paper's deployment-size study).
 */
std::vector<Deployment> CapDeploymentSizes(
    const std::vector<Deployment>& trace, int max_racks);

/** Fraction of total allocated power per category, for sanity checks. */
struct CategoryMix {
  double software_redundant = 0.0;
  double capable = 0.0;
  double non_capable = 0.0;
};
CategoryMix MixOf(const std::vector<Deployment>& trace);

}  // namespace flex::workload

#endif  // FLEX_WORKLOAD_TRACE_HPP_
