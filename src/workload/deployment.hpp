/**
 * @file
 * Workload deployment requests and categories.
 *
 * A "deployment" is the paper's unit of placement (Section II-C): a block
 * of racks procured for one workload, treated as unbreakable because of
 * networking requirements. Each carries the availability/capping
 * attributes Flex-Offline places by and Flex-Online acts on.
 */
#ifndef FLEX_WORKLOAD_DEPLOYMENT_HPP_
#define FLEX_WORKLOAD_DEPLOYMENT_HPP_

#include <string>
#include <vector>

#include "common/units.hpp"

namespace flex::workload {

/**
 * The paper's three workload categories (Section II-B).
 */
enum class Category {
  /** SaaS-style, replicated across AZs; racks may be shut down. */
  kSoftwareRedundant,
  /** Not redundant, but tolerates power capping (e.g. first-party VMs). */
  kNonRedundantCapable,
  /** Not redundant and not cap-able (e.g. GPU / storage clusters). */
  kNonRedundantNonCapable,
};

/** Human-readable category name. */
const char* CategoryName(Category category);

/** Identifier of a deployment within a trace. */
using DeploymentId = int;

/**
 * One deployment request from the short-term demand trace.
 */
struct Deployment {
  DeploymentId id = -1;
  /** Workload this deployment belongs to (e.g. "websearch", "iaas-vm"). */
  std::string workload;
  Category category = Category::kNonRedundantNonCapable;
  int num_racks = 0;
  /** Conservative per-rack peak power allocation (Section II-C). */
  Watts power_per_rack;
  /**
   * For cap-able deployments: the lowest enforceable cap as a fraction of
   * the per-rack allocation (the paper uses 0.75-0.85). Ignored for other
   * categories.
   */
  double flex_power_fraction = 1.0;
  /**
   * Cooling airflow the racks need per allocated watt (CFM/W); a
   * placement constraint in production per Section VI. The default is a
   * contemporary air-cooled server figure.
   */
  double cfm_per_watt = 0.05;

  /** Airflow needed by one rack of this deployment, in CFM. */
  double CfmPerRack() const;

  /** Total allocated power: Pow_d in the paper. */
  Watts AllocatedPower() const;

  /**
   * Power after worst-case corrective action: CapPow_d (paper Eq. 3).
   * Zero for software-redundant (shut down), flex power for cap-able,
   * full allocation for non-cap-able.
   */
  Watts CappedPower() const;

  /** Per-rack power after corrective action. */
  Watts CappedPowerPerRack() const;

  /** Power recoverable by corrective action: Allocated - Capped. */
  Watts ShaveablePower() const;

  /** Validates invariants; throws ConfigError on violation. */
  void Validate() const;
};

/** Sum of allocated power over @p deployments. */
Watts TotalAllocatedPower(const std::vector<Deployment>& deployments);

}  // namespace flex::workload

#endif  // FLEX_WORKLOAD_DEPLOYMENT_HPP_
