#include "rack_power.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace flex::workload {

RackPowerModel::RackPowerModel(RackPowerModelConfig config) : config_(config)
{
  FLEX_REQUIRE(config_.min_utilization >= 0.0 &&
                   config_.max_utilization <= 1.0 &&
                   config_.min_utilization <= config_.max_utilization,
               "utilization bounds must satisfy 0 <= min <= max <= 1");
}

std::vector<Watts>
RackPowerModel::Sample(const std::vector<Watts>& allocations, Rng& rng) const
{
  std::vector<Watts> draws;
  draws.reserve(allocations.size());
  for (const Watts allocation : allocations) {
    FLEX_REQUIRE(allocation >= Watts(0.0), "negative rack allocation");
    const double util = rng.TruncatedNormal(
        config_.mean_utilization, config_.stddev, config_.min_utilization,
        config_.max_utilization);
    draws.push_back(allocation * util);
  }
  return draws;
}

std::vector<Watts>
RackPowerModel::SampleAtUtilization(const std::vector<Watts>& allocations,
                                    double target_utilization, Rng& rng) const
{
  FLEX_REQUIRE(target_utilization >= 0.0 && target_utilization <= 1.0,
               "target utilization must be in [0, 1]");
  std::vector<Watts> draws = Sample(allocations, rng);

  Watts total_allocation(0.0);
  for (const Watts a : allocations)
    total_allocation += a;
  if (total_allocation <= Watts(0.0))
    return draws;
  const Watts target = total_allocation * target_utilization;

  // Iteratively scale toward the target; clamping at per-rack allocation
  // means one pass may undershoot, so repeat on the unclamped headroom.
  for (int iteration = 0; iteration < 16; ++iteration) {
    Watts current(0.0);
    for (const Watts d : draws)
      current += d;
    if (current.ApproxEquals(target, 1.0) || current <= Watts(0.0))
      break;
    const double scale = target / current;
    Watts clamped_total(0.0);
    for (std::size_t i = 0; i < draws.size(); ++i) {
      draws[i] = draws[i] * scale;
      if (draws[i] > allocations[i])
        draws[i] = allocations[i];
      clamped_total += draws[i];
    }
    if (clamped_total.ApproxEquals(target, 1.0))
      break;
  }
  return draws;
}

}  // namespace flex::workload
