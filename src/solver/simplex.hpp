/**
 * @file
 * Primal simplex solvers for bounded-variable linear programs.
 *
 * Solves the LP relaxation of a Model (integrality ignored). Variable
 * bounds may be overridden per solve, which is how branch-and-bound fixes
 * binaries without copying the model. Two interchangeable implementations
 * live behind one API, selected by Options::impl:
 *
 *  - SimplexImpl::kSparse (default): a bounded-variable revised simplex
 *    on CSC columns. The basis is held as a sparse LU with
 *    Forrest–Tomlin updates (BasisFactorization) and refactorization on
 *    schedule or numerical distress; variable bounds are handled
 *    natively (nonbasic variables sit at either bound and may flip
 *    without a basis change), so no bound rows are ever materialized.
 *    Pricing is partial (rotating segments, Dantzig within a segment)
 *    with a Bland's-rule fallback on stall. A dual-simplex phase
 *    restores primal feasibility of a warm basis that a bound change
 *    pushed out of range, so branching children rarely go cold.
 *  - SimplexImpl::kDense: the original flat-tableau two-phase simplex,
 *    kept in-tree as the independent oracle for the differential LP
 *    test harness (tests/solver_lp_differential_test.cpp).
 *
 * Two features exist for the branch-and-bound caller:
 *  - SimplexWorkspace: all scratch storage (tableau or CSC + LU
 *    factors) lives in caller-owned buffers reused across solves, so a
 *    million node re-solves allocate the same few arrays instead of a
 *    fresh vector-of-vectors each. The workspace also remembers which
 *    basis snapshot its factorization currently represents: a warm
 *    solve handed the snapshot the same workspace just produced adopts
 *    the loaded factors directly — no column rebuild, no
 *    refactorization.
 *  - SimplexBasis: a structural snapshot of the optimal basis. A child
 *    node whose bounds differ from its parent by one variable installs
 *    the parent basis and skips Phase 1 entirely when that basis is
 *    still primal feasible; a basis pushed out of primal range by the
 *    tightened bound is still dual feasible and is repaired by a few
 *    dual-simplex pivots. Only when both routes fail does the solve
 *    silently fall back to the cold two-phase path.
 */
#ifndef FLEX_SOLVER_SIMPLEX_HPP_
#define FLEX_SOLVER_SIMPLEX_HPP_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "solver/basis_lu.hpp"
#include "solver/model.hpp"

namespace flex::solver {

/** Outcome of an LP solve. */
enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

/** Which simplex implementation a solve runs. */
enum class SimplexImpl {
  kSparse,  ///< revised simplex on sparse columns (default)
  kDense,   ///< flat-tableau oracle for differential testing
};

/** Solution of an LP solve. */
struct LpResult {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;               ///< in the model's original sense
  std::vector<double> x;                ///< one entry per model variable
  int iterations = 0;                   ///< pivots (and bound flips) performed
  bool warm_start_attempted = false;    ///< a basis install was tried
  bool warm_start_used = false;         ///< ... and Phase 1 was skipped
  int refactors = 0;                    ///< basis LU refactorizations
  int eta_updates = 0;                  ///< Forrest–Tomlin basis updates
  int dual_pivots = 0;                  ///< dual-simplex pivots performed
  /** The warm basis was primal infeasible under the new bounds and the
   * dual simplex repaired (or refuted) it without a cold Phase 1. */
  bool warm_dual_restart = false;
  /**
   * Optimality certificate, filled by the sparse implementation on
   * kOptimal. Both are stated for the *minimization* orientation of the
   * model (maximize models are solved as minimize -c): at an optimum,
   * reduced_costs[j] >= -tol for variables at their lower bound,
   * <= tol at their upper bound, ~0 for basic variables, and
   * reduced_costs == c_min - A^T dual holds by construction. dual has
   * one entry per model constraint; <= rows have dual <= tol, >= rows
   * have dual >= -tol. Empty for the dense implementation.
   */
  std::vector<double> dual;
  std::vector<double> reduced_costs;

  bool IsOptimal() const { return status == LpStatus::kOptimal; }
};

/** Per-variable [lower, upper] override used by branch-and-bound. */
using BoundOverrides = std::vector<std::optional<std::pair<double, double>>>;

/**
 * Structural snapshot of a simplex basis, stable across the column /
 * row renumbering that bound changes cause. Rows are identified by the
 * model constraint index (>= 0) or, for the explicit upper-bound row of
 * variable j, by ~j (< 0). Basic columns are identified as a structural
 * variable, or the slack/artificial belonging to one of those rows.
 * Entries that no longer exist in the child (fixed variable, pruned
 * bound row) are simply skipped on install.
 */
struct SimplexBasis {
  enum class Kind { kNone, kStructural, kSlack, kArtificial };
  struct RowEntry {
    int row_id = -1;            ///< constraint index, or ~var for bound rows
    Kind kind = Kind::kNone;    ///< what is basic in this row
    int col_id = -1;            ///< var index, or the owning row's row_id
  };
  std::vector<RowEntry> rows;
  /**
   * Structural variables nonbasic at their *upper* bound (sorted var
   * indices). Only the sparse implementation records and consumes this;
   * the dense tableau shifts bounds so nonbasic always means "at
   * lower", and ignores the field on install.
   */
  std::vector<int> at_upper;
  /**
   * Identity of the solve that produced this snapshot (0 = none;
   * process-unique otherwise). A warm solve whose workspace still holds
   * the factorization tagged with this id adopts it directly instead of
   * rebuilding columns and refactorizing. Only equality is ever
   * consulted, so the nondeterministic allocation order of ids across
   * threads cannot influence the search path.
   */
  std::uint64_t id = 0;

  bool empty() const { return rows.empty(); }
  void clear() {
    rows.clear();
    at_upper.clear();
    id = 0;
  }
};

/**
 * Caller-owned scratch buffers for SimplexSolver. Reusing one workspace
 * across solves bounds allocation: every buffer is assign()ed in place,
 * so steady-state re-solves perform no heap allocation at all. Contents
 * between calls are meaningless. Not thread-safe; use one workspace per
 * thread.
 */
struct SimplexWorkspace {
  // --- Dense tableau path ---------------------------------------------
  // Tableau (flat, row-major, stride = cols + 1; last column = rhs).
  std::vector<double> tableau;
  std::vector<double> phase2_cost;
  std::vector<double> phase1_cost;
  std::vector<double> reduced;
  std::vector<int> basis;
  std::vector<char> artificial;
  std::vector<int> col_kind;       // SimplexBasis::Kind per column
  std::vector<int> col_id;         // structural var / owning row per column
  // Presolve products.
  std::vector<double> lower;
  std::vector<double> upper;
  std::vector<int> column_of;
  // Row assembly (flat coefficient matrix over structural columns).
  std::vector<double> row_coef;
  std::vector<int> row_rel;
  std::vector<double> row_rhs;
  std::vector<int> row_id;
  std::vector<int> row_slack_col;
  std::vector<int> row_art_col;
  std::vector<char> row_usable;

  // --- Sparse revised path --------------------------------------------
  BasisFactorization factorization;
  SparseColumns columns;           // structural + slack + artificial columns
  std::vector<double> sp_cost;     // phase-2 cost per column (minimize)
  std::vector<double> sp_lower;    // working bounds per column
  std::vector<double> sp_upper;
  std::vector<double> sp_value;    // current value of every column
  std::vector<signed char> sp_state;  // VarState per column
  std::vector<int> sp_basic_of_row;   // column basic in each row
  std::vector<double> sp_beta;     // values of basic columns, by row
  std::vector<double> sp_alpha;    // Ftran'd entering column
  std::vector<double> sp_rhs;      // working right-hand side per row
  std::vector<double> sp_dual;     // row duals (Btran scratch)
  std::vector<double> sp_dj;       // reduced-cost / dual-pricing scratch

  // Which basis snapshot the sparse-path state (columns, factorization,
  // states/values) currently represents: the id of the SimplexBasis the
  // last solve in this workspace emitted, or 0 when the state is stale.
  // A warm solve matching on (id, model) reuses the loaded factors
  // as-is — zero column rebuilds and zero refactorizations.
  std::uint64_t resident_basis_id = 0;
  const void* resident_model = nullptr;
  int resident_num_cols = 0;
  int resident_first_artificial = 0;
};

/**
 * Bounded-variable primal simplex (sparse revised by default, dense
 * tableau on request).
 *
 * Stateless between solves; safe to reuse for many LPs, and safe to
 * share across threads as long as each thread passes its own workspace.
 */
class SimplexSolver {
 public:
  struct Options {
    double tolerance = 1e-9;        ///< pivoting / feasibility tolerance
    int max_iterations = 0;         ///< 0 = automatic (50 * (rows + cols))
    SimplexImpl impl = SimplexImpl::kSparse;  ///< which implementation
    int refactor_interval = 64;     ///< eta updates between refactorizations
  };

  SimplexSolver() = default;
  explicit SimplexSolver(Options options) : options_(options) {}

  /** Solves the LP relaxation of @p model. */
  LpResult Solve(const Model& model) const;

  /**
   * Solves with per-variable bound overrides; @p overrides may be empty
   * (same as Solve) or have one entry per variable.
   */
  LpResult SolveWithBounds(const Model& model,
                           const BoundOverrides& overrides) const;

  /**
   * Full-control overload. @p workspace supplies reusable scratch
   * storage (nullptr = a throwaway local). @p warm_basis, when non-null
   * and non-empty, is installed before Phase 2; if it is not primal
   * feasible under the new bounds the solve transparently reruns the
   * cold two-phase path (LpResult::warm_start_used reports which path
   * produced the answer). @p basis_out, when non-null, receives the
   * optimal basis snapshot on kOptimal (cleared otherwise).
   */
  LpResult SolveWithBounds(const Model& model, const BoundOverrides& overrides,
                           SimplexWorkspace* workspace,
                           const SimplexBasis* warm_basis,
                           SimplexBasis* basis_out) const;

 private:
  Options options_;
};

}  // namespace flex::solver

#endif  // FLEX_SOLVER_SIMPLEX_HPP_
