/**
 * @file
 * Dense two-phase primal simplex solver for linear programs.
 *
 * Solves the LP relaxation of a Model (integrality ignored). Variable
 * bounds may be overridden per solve, which is how branch-and-bound fixes
 * binaries without copying the model. The implementation is a classic
 * textbook tableau simplex with Dantzig pricing and a Bland's-rule
 * fallback for anti-cycling; the placement LPs it targets are small
 * (hundreds of columns), so a dense tableau is both simple and fast
 * enough.
 */
#ifndef FLEX_SOLVER_SIMPLEX_HPP_
#define FLEX_SOLVER_SIMPLEX_HPP_

#include <optional>
#include <utility>
#include <vector>

#include "solver/model.hpp"

namespace flex::solver {

/** Outcome of an LP solve. */
enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

/** Solution of an LP solve. */
struct LpResult {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;               ///< in the model's original sense
  std::vector<double> x;                ///< one entry per model variable
  int iterations = 0;                   ///< simplex pivots performed

  bool IsOptimal() const { return status == LpStatus::kOptimal; }
};

/** Per-variable [lower, upper] override used by branch-and-bound. */
using BoundOverrides = std::vector<std::optional<std::pair<double, double>>>;

/**
 * Dense two-phase simplex.
 *
 * Stateless between solves; safe to reuse for many LPs.
 */
class SimplexSolver {
 public:
  struct Options {
    double tolerance = 1e-9;        ///< pivoting / feasibility tolerance
    int max_iterations = 0;         ///< 0 = automatic (50 * (rows + cols))
  };

  SimplexSolver() = default;
  explicit SimplexSolver(Options options) : options_(options) {}

  /** Solves the LP relaxation of @p model. */
  LpResult Solve(const Model& model) const;

  /**
   * Solves with per-variable bound overrides; @p overrides may be empty
   * (same as Solve) or have one entry per variable.
   */
  LpResult SolveWithBounds(const Model& model,
                           const BoundOverrides& overrides) const;

 private:
  Options options_;
};

}  // namespace flex::solver

#endif  // FLEX_SOLVER_SIMPLEX_HPP_
