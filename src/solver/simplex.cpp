#include "simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/error.hpp"
#include "solver/revised_simplex.hpp"

namespace flex::solver {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/**
 * Pivot driver over the flat tableau held in a SimplexWorkspace. The
 * workspace must already contain an assembled tableau (see
 * BuildTableau below); this class only pivots and prices.
 */
class TableauSolver {
 public:
  TableauSolver(SimplexWorkspace& ws, int rows, int cols, double tol,
                int max_iters)
      : ws_(ws), rows_(rows), cols_(cols), stride_(cols + 1), tol_(tol),
        max_iters_(max_iters)
  {
  }

  /** Cold solve: Phase 1 from the natural slack/artificial basis. */
  LpStatus RunTwoPhase();

  /** Warm solve: assumes the current basis is already primal feasible. */
  LpStatus RunPhase2();

  /**
   * Prepares for basis-install pivots: a zero reduced row makes the
   * Pivot() reduced-cost update a no-op, so installs do not need a
   * priced-out objective.
   */
  void BeginInstall() { ws_.reduced.assign(static_cast<std::size_t>(stride_), 0.0); }

  void Pivot(int row, int col);

  /** Pivot operations performed across both phases. */
  int pivots() const { return pivots_; }

  double& At(int i, int j) { return ws_.tableau[Idx(i, j)]; }
  double at(int i, int j) const { return ws_.tableau[Idx(i, j)]; }

 private:
  std::size_t
  Idx(int i, int j) const
  {
    return static_cast<std::size_t>(i) * static_cast<std::size_t>(stride_) +
           static_cast<std::size_t>(j);
  }

  /** Rebuilds the reduced-cost row for the given column costs. */
  void PriceOut(const std::vector<double>& cost);

  /** One simplex phase; @p allow_artificial permits artificials entering. */
  LpStatus Phase(bool allow_artificial);

  SimplexWorkspace& ws_;
  int rows_;
  int cols_;
  int stride_;
  double tol_;
  int max_iters_;
  int pivots_ = 0;
};

void
TableauSolver::PriceOut(const std::vector<double>& cost)
{
  ws_.reduced.assign(static_cast<std::size_t>(stride_), 0.0);
  // reduced[j] = z_j - c_j where z_j = c_B^T (B^-1 A_j); the tableau rows
  // already hold B^-1 A.
  for (int i = 0; i < rows_; ++i) {
    const double cb =
        cost[static_cast<std::size_t>(ws_.basis[static_cast<std::size_t>(i)])];
    if (cb == 0.0)
      continue;
    const double* row = &ws_.tableau[Idx(i, 0)];
    for (int j = 0; j <= cols_; ++j)
      ws_.reduced[static_cast<std::size_t>(j)] += cb * row[j];
  }
  for (int j = 0; j < cols_; ++j)
    ws_.reduced[static_cast<std::size_t>(j)] -= cost[static_cast<std::size_t>(j)];
}

void
TableauSolver::Pivot(int row, int col)
{
  ++pivots_;
  double* pivot_row = &ws_.tableau[Idx(row, 0)];
  const double pivot = pivot_row[col];
  FLEX_CHECK_MSG(std::fabs(pivot) > 1e-12, "zero pivot element");
  for (int j = 0; j <= cols_; ++j)
    pivot_row[j] /= pivot;
  for (int i = 0; i < rows_; ++i) {
    if (i == row)
      continue;
    double* other = &ws_.tableau[Idx(i, 0)];
    const double factor = other[col];
    if (factor == 0.0)
      continue;
    for (int j = 0; j <= cols_; ++j)
      other[j] -= factor * pivot_row[j];
    other[col] = 0.0;
  }
  const double rfactor = ws_.reduced[static_cast<std::size_t>(col)];
  if (rfactor != 0.0) {
    for (int j = 0; j <= cols_; ++j)
      ws_.reduced[static_cast<std::size_t>(j)] -= rfactor * pivot_row[j];
    ws_.reduced[static_cast<std::size_t>(col)] = 0.0;
  }
  ws_.basis[static_cast<std::size_t>(row)] = col;
}

LpStatus
TableauSolver::Phase(bool allow_artificial)
{
  int iterations = 0;
  int stalled = 0;
  const int bland_threshold = 2 * (rows_ + cols_);
  double last_objective = -kInf;
  while (true) {
    if (++iterations > max_iters_)
      return LpStatus::kIterationLimit;

    const bool use_bland = stalled > bland_threshold;
    int entering = -1;
    double best = -tol_;
    for (int j = 0; j < cols_; ++j) {
      if (!allow_artificial && ws_.artificial[static_cast<std::size_t>(j)])
        continue;
      const double rc = ws_.reduced[static_cast<std::size_t>(j)];
      if (rc < best - 1e-15) {
        if (use_bland) {
          // Bland: first improving index.
          entering = j;
          break;
        }
        best = rc;
        entering = j;
      }
    }
    if (entering < 0)
      return LpStatus::kOptimal;

    // Ratio test.
    int leaving = -1;
    double best_ratio = kInf;
    for (int i = 0; i < rows_; ++i) {
      const double aij = at(i, entering);
      if (aij > tol_) {
        const double ratio = at(i, cols_) / aij;
        if (ratio < best_ratio - 1e-12 ||
            (use_bland && std::fabs(ratio - best_ratio) <= 1e-12 &&
             leaving >= 0 &&
             ws_.basis[static_cast<std::size_t>(i)] <
                 ws_.basis[static_cast<std::size_t>(leaving)])) {
          best_ratio = ratio;
          leaving = i;
        }
      }
    }
    if (leaving < 0)
      return LpStatus::kUnbounded;

    Pivot(leaving, entering);

    const double objective = ws_.reduced[static_cast<std::size_t>(cols_)];
    if (objective > last_objective + tol_) {
      stalled = 0;
      last_objective = objective;
    } else {
      ++stalled;
    }
  }
}

LpStatus
TableauSolver::RunPhase2()
{
  PriceOut(ws_.phase2_cost);
  return Phase(/*allow_artificial=*/false);
}

LpStatus
TableauSolver::RunTwoPhase()
{
  // Phase 1: maximize -(sum of artificials).
  bool has_artificial = false;
  ws_.phase1_cost.assign(static_cast<std::size_t>(cols_), 0.0);
  for (int j = 0; j < cols_; ++j) {
    if (ws_.artificial[static_cast<std::size_t>(j)]) {
      ws_.phase1_cost[static_cast<std::size_t>(j)] = -1.0;
      has_artificial = true;
    }
  }

  if (has_artificial) {
    PriceOut(ws_.phase1_cost);
    const LpStatus status = Phase(/*allow_artificial=*/true);
    if (status != LpStatus::kOptimal)
      return status == LpStatus::kUnbounded ? LpStatus::kInfeasible : status;
    // The z-row rhs holds the phase-1 objective -(sum of artificials),
    // which is <= 0; a strictly negative optimum means infeasible.
    const double phase1_objective = ws_.reduced[static_cast<std::size_t>(cols_)];
    if (phase1_objective < -1e-6)
      return LpStatus::kInfeasible;
    // Drive basic artificials out where possible; remaining ones sit at
    // zero and are forbidden from re-entering in phase 2.
    for (int i = 0; i < rows_; ++i) {
      const int b = ws_.basis[static_cast<std::size_t>(i)];
      if (!ws_.artificial[static_cast<std::size_t>(b)])
        continue;
      for (int j = 0; j < cols_; ++j) {
        if (ws_.artificial[static_cast<std::size_t>(j)])
          continue;
        if (std::fabs(at(i, j)) > tol_) {
          Pivot(i, j);
          break;
        }
      }
    }
  }

  return RunPhase2();
}

/** Value of column @p j in the current basic solution. */
double
ColumnValue(const SimplexWorkspace& ws, int rows, int cols, int j)
{
  const std::size_t stride = static_cast<std::size_t>(cols) + 1;
  for (int i = 0; i < rows; ++i) {
    if (ws.basis[static_cast<std::size_t>(i)] == j)
      return ws.tableau[static_cast<std::size_t>(i) * stride +
                        static_cast<std::size_t>(cols)];
  }
  return 0.0;
}

}  // namespace

LpResult
SimplexSolver::Solve(const Model& model) const
{
  return SolveWithBounds(model, BoundOverrides{});
}

LpResult
SimplexSolver::SolveWithBounds(const Model& model,
                               const BoundOverrides& overrides) const
{
  return SolveWithBounds(model, overrides, nullptr, nullptr, nullptr);
}

LpResult
SimplexSolver::SolveWithBounds(const Model& model,
                               const BoundOverrides& overrides,
                               SimplexWorkspace* workspace,
                               const SimplexBasis* warm_basis,
                               SimplexBasis* basis_out) const
{
  if (options_.impl == SimplexImpl::kSparse)
    return SolveRevised(model, overrides, workspace, warm_basis, basis_out,
                        options_);

  SimplexWorkspace local;
  SimplexWorkspace& ws = workspace != nullptr ? *workspace : local;
  if (basis_out != nullptr)
    basis_out->clear();

  const int n = model.NumVariables();
  FLEX_REQUIRE(overrides.empty() || static_cast<int>(overrides.size()) == n,
               "bound overrides must be empty or cover every variable");

  // Effective bounds.
  ws.lower.assign(static_cast<std::size_t>(n), 0.0);
  ws.upper.assign(static_cast<std::size_t>(n), 0.0);
  for (int j = 0; j < n; ++j) {
    const Variable& v = model.variables()[static_cast<std::size_t>(j)];
    double lo = v.lower;
    double hi = v.upper;
    if (!overrides.empty() && overrides[static_cast<std::size_t>(j)]) {
      lo = std::max(lo, overrides[static_cast<std::size_t>(j)]->first);
      hi = std::min(hi, overrides[static_cast<std::size_t>(j)]->second);
    }
    if (lo > hi + 1e-12) {
      LpResult infeasible;
      infeasible.status = LpStatus::kInfeasible;
      return infeasible;
    }
    FLEX_REQUIRE(std::isfinite(lo),
                 "simplex requires finite lower bounds on all variables");
    ws.lower[static_cast<std::size_t>(j)] = lo;
    ws.upper[static_cast<std::size_t>(j)] = hi;
  }

  // Shift y_j = x_j - lower_j. Fixed variables (lo == hi) become constants
  // and drop out of the LP entirely.
  ws.column_of.assign(static_cast<std::size_t>(n), -1);
  int n_struct = 0;
  for (int j = 0; j < n; ++j) {
    if (ws.upper[static_cast<std::size_t>(j)] -
            ws.lower[static_cast<std::size_t>(j)] > 1e-12)
      ws.column_of[static_cast<std::size_t>(j)] = n_struct++;
  }

  const double sign = model.sense() == Sense::kMaximize ? 1.0 : -1.0;

  // Rows: model constraints with constants substituted, plus finite upper
  // bounds on the shifted variables. Rows are identified for basis
  // snapshots by row_id: constraint index, or ~var for a bound row.
  ws.row_coef.clear();
  ws.row_rel.clear();
  ws.row_rhs.clear();
  ws.row_id.clear();
  auto append_row = [&](Relation relation, double rhs, int id) {
    ws.row_coef.resize(ws.row_coef.size() + static_cast<std::size_t>(n_struct),
                       0.0);
    ws.row_rel.push_back(static_cast<int>(relation));
    ws.row_rhs.push_back(rhs);
    ws.row_id.push_back(id);
    // data() + offset, not &operator[]: n_struct may be 0 (all
    // variables fixed), where indexing even one-past-the-end of the
    // empty vector is undefined.
    return ws.row_coef.data() +
           (ws.row_coef.size() - static_cast<std::size_t>(n_struct));
  };
  for (std::size_t ci = 0; ci < model.constraints().size(); ++ci) {
    const Constraint& c = model.constraints()[ci];
    double rhs = c.rhs;
    for (const auto& [var, coef] : c.terms)
      rhs -= coef * ws.lower[static_cast<std::size_t>(var)];
    double* coef_row = append_row(c.relation, rhs, static_cast<int>(ci));
    for (const auto& [var, coef] : c.terms) {
      const int col = ws.column_of[static_cast<std::size_t>(var)];
      if (col >= 0)
        coef_row[col] += coef;
    }
  }
  // Upper bounds become explicit rows, except where a model constraint
  // already implies them: if some all-non-negative <= row contains the
  // (shifted) variable with coefficient a > 0 and rhs/a <= bound, then
  // y_j <= rhs/a holds at any feasible point and the extra row would be
  // redundant. This prunes the x <= 1 rows of binary placement
  // indicators (they are implied by the "place once" constraints),
  // which shrinks the tableau dramatically.
  const std::size_t model_rows = ws.row_rhs.size();
  ws.row_usable.assign(model_rows, 0);
  for (std::size_t r = 0; r < model_rows; ++r) {
    if (ws.row_rel[r] != static_cast<int>(Relation::kLessEqual) ||
        ws.row_rhs[r] < 0.0)
      continue;
    const double* coef_row =
        ws.row_coef.data() + r * static_cast<std::size_t>(n_struct);
    bool all_non_negative = true;
    for (int j = 0; j < n_struct; ++j) {
      if (coef_row[j] < 0.0) {
        all_non_negative = false;
        break;
      }
    }
    ws.row_usable[r] = all_non_negative ? 1 : 0;
  }
  for (int j = 0; j < n; ++j) {
    const int col = ws.column_of[static_cast<std::size_t>(j)];
    if (col < 0 || !std::isfinite(ws.upper[static_cast<std::size_t>(j)]))
      continue;
    const double bound = ws.upper[static_cast<std::size_t>(j)] -
                         ws.lower[static_cast<std::size_t>(j)];
    bool implied = false;
    for (std::size_t r = 0; r < model_rows && !implied; ++r) {
      if (!ws.row_usable[r])
        continue;
      const double a =
          ws.row_coef[r * static_cast<std::size_t>(n_struct) +
                      static_cast<std::size_t>(col)];
      implied = a > 0.0 && ws.row_rhs[r] / a <= bound + 1e-12;
    }
    if (implied)
      continue;
    double* coef_row = append_row(Relation::kLessEqual, bound, ~j);
    coef_row[col] = 1.0;
  }

  // Normalize to rhs >= 0 and count slack/artificial columns.
  const int m = static_cast<int>(ws.row_rhs.size());
  int n_slack = 0;
  int n_artificial = 0;
  for (int i = 0; i < m; ++i) {
    const std::size_t r = static_cast<std::size_t>(i);
    if (ws.row_rhs[r] < 0.0) {
      double* coef_row =
          ws.row_coef.data() + r * static_cast<std::size_t>(n_struct);
      for (int j = 0; j < n_struct; ++j)
        coef_row[j] = -coef_row[j];
      ws.row_rhs[r] = -ws.row_rhs[r];
      if (ws.row_rel[r] == static_cast<int>(Relation::kLessEqual))
        ws.row_rel[r] = static_cast<int>(Relation::kGreaterEqual);
      else if (ws.row_rel[r] == static_cast<int>(Relation::kGreaterEqual))
        ws.row_rel[r] = static_cast<int>(Relation::kLessEqual);
    }
    switch (static_cast<Relation>(ws.row_rel[r])) {
      case Relation::kLessEqual:
        ++n_slack;
        break;
      case Relation::kGreaterEqual:
        ++n_slack;
        ++n_artificial;
        break;
      case Relation::kEqual:
        ++n_artificial;
        break;
    }
  }

  const int cols = n_struct + n_slack + n_artificial;
  const std::size_t stride = static_cast<std::size_t>(cols) + 1;

  auto build_tableau = [&]() {
    ws.tableau.assign(static_cast<std::size_t>(m) * stride, 0.0);
    ws.phase2_cost.assign(static_cast<std::size_t>(cols), 0.0);
    ws.basis.assign(static_cast<std::size_t>(m), -1);
    ws.artificial.assign(static_cast<std::size_t>(cols), 0);
    ws.col_kind.assign(static_cast<std::size_t>(cols),
                       static_cast<int>(SimplexBasis::Kind::kStructural));
    ws.col_id.assign(static_cast<std::size_t>(cols), -1);
    ws.row_slack_col.assign(static_cast<std::size_t>(m), -1);
    ws.row_art_col.assign(static_cast<std::size_t>(m), -1);

    for (int j = 0; j < n; ++j) {
      const int col = ws.column_of[static_cast<std::size_t>(j)];
      if (col >= 0) {
        ws.phase2_cost[static_cast<std::size_t>(col)] =
            sign * model.variables()[static_cast<std::size_t>(j)].objective;
        ws.col_id[static_cast<std::size_t>(col)] = j;
      }
    }

    int next_slack = n_struct;
    int next_artificial = n_struct + n_slack;
    for (int i = 0; i < m; ++i) {
      const std::size_t r = static_cast<std::size_t>(i);
      double* tab_row = &ws.tableau[r * stride];
      const double* coef_row =
          ws.row_coef.data() + r * static_cast<std::size_t>(n_struct);
      for (int j = 0; j < n_struct; ++j)
        tab_row[j] = coef_row[j];
      tab_row[cols] = ws.row_rhs[r];
      const auto add_slack = [&](double coef) {
        tab_row[next_slack] = coef;
        ws.col_kind[static_cast<std::size_t>(next_slack)] =
            static_cast<int>(SimplexBasis::Kind::kSlack);
        ws.col_id[static_cast<std::size_t>(next_slack)] = ws.row_id[r];
        ws.row_slack_col[r] = next_slack;
        return next_slack++;
      };
      const auto add_artificial = [&]() {
        tab_row[next_artificial] = 1.0;
        ws.artificial[static_cast<std::size_t>(next_artificial)] = 1;
        ws.col_kind[static_cast<std::size_t>(next_artificial)] =
            static_cast<int>(SimplexBasis::Kind::kArtificial);
        ws.col_id[static_cast<std::size_t>(next_artificial)] = ws.row_id[r];
        ws.row_art_col[r] = next_artificial;
        return next_artificial++;
      };
      switch (static_cast<Relation>(ws.row_rel[r])) {
        case Relation::kLessEqual:
          ws.basis[r] = add_slack(1.0);
          break;
        case Relation::kGreaterEqual:
          add_slack(-1.0);
          ws.basis[r] = add_artificial();
          break;
        case Relation::kEqual:
          ws.basis[r] = add_artificial();
          break;
      }
    }
  };

  const int max_iters = options_.max_iterations > 0
                            ? options_.max_iterations
                            : 50 * (m + cols) + 1000;

  LpResult result;
  LpStatus status = LpStatus::kIterationLimit;
  int pivots_total = 0;
  bool solved = false;

  // Warm path: install the parent basis onto a fresh tableau and skip
  // Phase 1 when it is still primal feasible under the new bounds.
  if (warm_basis != nullptr && !warm_basis->empty() && m > 0) {
    result.warm_start_attempted = true;
    build_tableau();
    TableauSolver warm(ws, m, cols, options_.tolerance, max_iters);
    warm.BeginInstall();

    std::unordered_map<int, int> row_of;
    row_of.reserve(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i)
      row_of.emplace(ws.row_id[static_cast<std::size_t>(i)], i);

    for (const SimplexBasis::RowEntry& entry : warm_basis->rows) {
      const auto row_it = row_of.find(entry.row_id);
      if (row_it == row_of.end())
        continue;  // row pruned in this child (e.g. implied bound)
      const int i = row_it->second;
      int j = -1;
      switch (entry.kind) {
        case SimplexBasis::Kind::kStructural:
          if (entry.col_id >= 0 && entry.col_id < n)
            j = ws.column_of[static_cast<std::size_t>(entry.col_id)];
          break;
        case SimplexBasis::Kind::kSlack:
        case SimplexBasis::Kind::kArtificial: {
          const auto owner_it = row_of.find(entry.col_id);
          if (owner_it != row_of.end()) {
            const std::size_t owner = static_cast<std::size_t>(owner_it->second);
            j = entry.kind == SimplexBasis::Kind::kSlack
                    ? ws.row_slack_col[owner]
                    : ws.row_art_col[owner];
          }
          break;
        }
        case SimplexBasis::Kind::kNone:
          break;
      }
      if (j < 0 || ws.basis[static_cast<std::size_t>(i)] == j)
        continue;  // column gone (fixed variable) or already in place
      bool basic_elsewhere = false;
      for (int r = 0; r < m && !basic_elsewhere; ++r)
        basic_elsewhere = ws.basis[static_cast<std::size_t>(r)] == j;
      if (basic_elsewhere)
        continue;
      if (std::fabs(warm.at(i, j)) <= 1e-7)
        continue;  // numerically unusable pivot; keep the natural column
      warm.Pivot(i, j);
    }

    // Feasibility gate: every rhs non-negative and every still-basic
    // artificial sitting at (numerical) zero; otherwise the basis does
    // not certify feasibility and Phase 1 cannot be skipped.
    bool feasible = true;
    for (int i = 0; i < m && feasible; ++i) {
      const double rhs = warm.at(i, cols);
      if (rhs < -1e-7)
        feasible = false;
      else if (ws.artificial[static_cast<std::size_t>(
                   ws.basis[static_cast<std::size_t>(i)])] &&
               rhs > 1e-6)
        feasible = false;
    }
    if (feasible) {
      for (int i = 0; i < m; ++i) {
        if (warm.at(i, cols) < 0.0)
          warm.At(i, cols) = 0.0;  // clamp the tolerated tiny negatives
      }
      status = warm.RunPhase2();
      pivots_total += warm.pivots();
      if (status == LpStatus::kOptimal) {
        solved = true;
        result.warm_start_used = true;
      }
      // Any other outcome falls back to the cold path below: a warm
      // basis must never change the answer, only the route to it.
    } else {
      pivots_total += warm.pivots();
    }
  }

  if (!solved) {
    build_tableau();
    TableauSolver cold(ws, m, cols, options_.tolerance, max_iters);
    status = cold.RunTwoPhase();
    pivots_total += cold.pivots();
  }

  result.status = status;
  result.iterations = pivots_total;
  if (status != LpStatus::kOptimal)
    return result;

  result.x.assign(static_cast<std::size_t>(n), 0.0);
  for (int j = 0; j < n; ++j) {
    const int col = ws.column_of[static_cast<std::size_t>(j)];
    const double shifted = col >= 0 ? ColumnValue(ws, m, cols, col) : 0.0;
    result.x[static_cast<std::size_t>(j)] =
        ws.lower[static_cast<std::size_t>(j)] + shifted;
  }
  result.objective = model.ObjectiveValue(result.x);

  if (basis_out != nullptr) {
    basis_out->rows.reserve(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) {
      const int b = ws.basis[static_cast<std::size_t>(i)];
      SimplexBasis::RowEntry entry;
      entry.row_id = ws.row_id[static_cast<std::size_t>(i)];
      entry.kind =
          static_cast<SimplexBasis::Kind>(ws.col_kind[static_cast<std::size_t>(b)]);
      entry.col_id = ws.col_id[static_cast<std::size_t>(b)];
      basis_out->rows.push_back(entry);
    }
  }
  return result;
}

}  // namespace flex::solver
