#include "simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace flex::solver {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/**
 * Internal standard-form problem: maximize c^T y, A y = b, 0 <= y, with
 * b >= 0 and an identity starting basis of slacks/artificials.
 */
struct Tableau {
  int rows = 0;                    // constraint rows
  int cols = 0;                    // structural + slack + artificial columns
  std::vector<std::vector<double>> a;  // rows x (cols + 1); last col = rhs
  std::vector<double> phase2_cost;     // c for phase 2, per column
  std::vector<int> basis;              // basic column per row
  std::vector<bool> artificial;        // per column
};

class TableauSolver {
 public:
  TableauSolver(Tableau tab, double tol, int max_iters)
      : t_(std::move(tab)), tol_(tol), max_iters_(max_iters)
  {
  }

  LpStatus Run();

  /** Pivot operations performed across both phases. */
  int pivots() const { return pivots_; }

  /** Value of column @p j in the current basic solution. */
  double
  ColumnValue(int j) const
  {
    for (int i = 0; i < t_.rows; ++i) {
      if (t_.basis[static_cast<std::size_t>(i)] == j)
        return t_.a[static_cast<std::size_t>(i)][static_cast<std::size_t>(t_.cols)];
    }
    return 0.0;
  }

 private:
  /** Rebuilds the reduced-cost row for the given column costs. */
  void PriceOut(const std::vector<double>& cost);

  /** One simplex phase; @p allow_artificial permits artificials entering. */
  LpStatus Phase(bool allow_artificial);

  void Pivot(int row, int col);

  Tableau t_;
  std::vector<double> reduced_;  // size cols + 1; last entry = objective
  double tol_;
  int max_iters_;
  int pivots_ = 0;
};

void
TableauSolver::PriceOut(const std::vector<double>& cost)
{
  reduced_.assign(static_cast<std::size_t>(t_.cols) + 1, 0.0);
  // reduced[j] = z_j - c_j where z_j = c_B^T (B^-1 A_j); the tableau rows
  // already hold B^-1 A.
  for (int j = 0; j <= t_.cols; ++j) {
    double z = 0.0;
    for (int i = 0; i < t_.rows; ++i) {
      const double cb = cost[static_cast<std::size_t>(
          t_.basis[static_cast<std::size_t>(i)])];
      if (cb != 0.0)
        z += cb * t_.a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    }
    reduced_[static_cast<std::size_t>(j)] = z;
  }
  for (int j = 0; j < t_.cols; ++j)
    reduced_[static_cast<std::size_t>(j)] -= cost[static_cast<std::size_t>(j)];
}

void
TableauSolver::Pivot(int row, int col)
{
  ++pivots_;
  auto& pivot_row = t_.a[static_cast<std::size_t>(row)];
  const double pivot = pivot_row[static_cast<std::size_t>(col)];
  FLEX_CHECK_MSG(std::fabs(pivot) > 1e-12, "zero pivot element");
  for (double& value : pivot_row)
    value /= pivot;
  for (int i = 0; i < t_.rows; ++i) {
    if (i == row)
      continue;
    auto& other = t_.a[static_cast<std::size_t>(i)];
    const double factor = other[static_cast<std::size_t>(col)];
    if (factor == 0.0)
      continue;
    for (int j = 0; j <= t_.cols; ++j)
      other[static_cast<std::size_t>(j)] -=
          factor * pivot_row[static_cast<std::size_t>(j)];
    other[static_cast<std::size_t>(col)] = 0.0;
  }
  const double rfactor = reduced_[static_cast<std::size_t>(col)];
  if (rfactor != 0.0) {
    for (int j = 0; j <= t_.cols; ++j)
      reduced_[static_cast<std::size_t>(j)] -=
          rfactor * pivot_row[static_cast<std::size_t>(j)];
    reduced_[static_cast<std::size_t>(col)] = 0.0;
  }
  t_.basis[static_cast<std::size_t>(row)] = col;
}

LpStatus
TableauSolver::Phase(bool allow_artificial)
{
  int iterations = 0;
  int stalled = 0;
  const int bland_threshold = 2 * (t_.rows + t_.cols);
  double last_objective = -kInf;
  while (true) {
    if (++iterations > max_iters_)
      return LpStatus::kIterationLimit;

    const bool use_bland = stalled > bland_threshold;
    int entering = -1;
    double best = -tol_;
    for (int j = 0; j < t_.cols; ++j) {
      if (!allow_artificial && t_.artificial[static_cast<std::size_t>(j)])
        continue;
      const double rc = reduced_[static_cast<std::size_t>(j)];
      if (rc < best - 1e-15) {
        if (use_bland) {
          // Bland: first improving index.
          entering = j;
          break;
        }
        best = rc;
        entering = j;
      }
    }
    if (entering < 0)
      return LpStatus::kOptimal;

    // Ratio test.
    int leaving = -1;
    double best_ratio = kInf;
    for (int i = 0; i < t_.rows; ++i) {
      const double aij =
          t_.a[static_cast<std::size_t>(i)][static_cast<std::size_t>(entering)];
      if (aij > tol_) {
        const double ratio =
            t_.a[static_cast<std::size_t>(i)][static_cast<std::size_t>(t_.cols)] /
            aij;
        if (ratio < best_ratio - 1e-12 ||
            (use_bland && std::fabs(ratio - best_ratio) <= 1e-12 &&
             leaving >= 0 &&
             t_.basis[static_cast<std::size_t>(i)] <
                 t_.basis[static_cast<std::size_t>(leaving)])) {
          best_ratio = ratio;
          leaving = i;
        }
      }
    }
    if (leaving < 0)
      return LpStatus::kUnbounded;

    Pivot(leaving, entering);

    const double objective = reduced_[static_cast<std::size_t>(t_.cols)];
    if (objective > last_objective + tol_) {
      stalled = 0;
      last_objective = objective;
    } else {
      ++stalled;
    }
  }
}

LpStatus
TableauSolver::Run()
{
  // Phase 1: maximize -(sum of artificials).
  bool has_artificial = false;
  std::vector<double> phase1_cost(static_cast<std::size_t>(t_.cols), 0.0);
  for (int j = 0; j < t_.cols; ++j) {
    if (t_.artificial[static_cast<std::size_t>(j)]) {
      phase1_cost[static_cast<std::size_t>(j)] = -1.0;
      has_artificial = true;
    }
  }

  if (has_artificial) {
    PriceOut(phase1_cost);
    const LpStatus status = Phase(/*allow_artificial=*/true);
    if (status != LpStatus::kOptimal)
      return status == LpStatus::kUnbounded ? LpStatus::kInfeasible : status;
    // The z-row rhs holds the phase-1 objective -(sum of artificials),
    // which is <= 0; a strictly negative optimum means infeasible.
    const double phase1_objective = reduced_[static_cast<std::size_t>(t_.cols)];
    if (phase1_objective < -1e-6)
      return LpStatus::kInfeasible;
    // Drive basic artificials out where possible; remaining ones sit at
    // zero and are forbidden from re-entering in phase 2.
    for (int i = 0; i < t_.rows; ++i) {
      const int b = t_.basis[static_cast<std::size_t>(i)];
      if (!t_.artificial[static_cast<std::size_t>(b)])
        continue;
      for (int j = 0; j < t_.cols; ++j) {
        if (t_.artificial[static_cast<std::size_t>(j)])
          continue;
        if (std::fabs(t_.a[static_cast<std::size_t>(i)]
                          [static_cast<std::size_t>(j)]) > tol_) {
          Pivot(i, j);
          break;
        }
      }
    }
  }

  PriceOut(t_.phase2_cost);
  return Phase(/*allow_artificial=*/false);
}

}  // namespace

LpResult
SimplexSolver::Solve(const Model& model) const
{
  return SolveWithBounds(model, BoundOverrides{});
}

LpResult
SimplexSolver::SolveWithBounds(const Model& model,
                               const BoundOverrides& overrides) const
{
  const int n = model.NumVariables();
  FLEX_REQUIRE(overrides.empty() || static_cast<int>(overrides.size()) == n,
               "bound overrides must be empty or cover every variable");

  // Effective bounds.
  std::vector<double> lower(static_cast<std::size_t>(n));
  std::vector<double> upper(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const Variable& v = model.variables()[static_cast<std::size_t>(j)];
    double lo = v.lower;
    double hi = v.upper;
    if (!overrides.empty() && overrides[static_cast<std::size_t>(j)]) {
      lo = std::max(lo, overrides[static_cast<std::size_t>(j)]->first);
      hi = std::min(hi, overrides[static_cast<std::size_t>(j)]->second);
    }
    if (lo > hi + 1e-12) {
      LpResult infeasible;
      infeasible.status = LpStatus::kInfeasible;
      return infeasible;
    }
    FLEX_REQUIRE(std::isfinite(lo),
                 "simplex requires finite lower bounds on all variables");
    lower[static_cast<std::size_t>(j)] = lo;
    upper[static_cast<std::size_t>(j)] = hi;
  }

  // Shift y_j = x_j - lower_j. Fixed variables (lo == hi) become constants
  // and drop out of the LP entirely.
  std::vector<int> column_of(static_cast<std::size_t>(n), -1);
  int n_struct = 0;
  for (int j = 0; j < n; ++j) {
    if (upper[static_cast<std::size_t>(j)] -
            lower[static_cast<std::size_t>(j)] > 1e-12)
      column_of[static_cast<std::size_t>(j)] = n_struct++;
  }

  const double sign = model.sense() == Sense::kMaximize ? 1.0 : -1.0;

  // Rows: model constraints with constants substituted, plus finite upper
  // bounds on the shifted variables.
  struct Row {
    std::vector<double> coef;  // dense over structural columns
    Relation relation;
    double rhs;
  };
  std::vector<Row> rows;
  rows.reserve(model.constraints().size() + static_cast<std::size_t>(n));
  for (const Constraint& c : model.constraints()) {
    Row row;
    row.coef.assign(static_cast<std::size_t>(n_struct), 0.0);
    row.relation = c.relation;
    row.rhs = c.rhs;
    for (const auto& [var, coef] : c.terms) {
      row.rhs -= coef * lower[static_cast<std::size_t>(var)];
      const int col = column_of[static_cast<std::size_t>(var)];
      if (col >= 0)
        row.coef[static_cast<std::size_t>(col)] += coef;
    }
    rows.push_back(std::move(row));
  }
  // Upper bounds become explicit rows, except where a model constraint
  // already implies them: if some all-non-negative <= row contains the
  // (shifted) variable with coefficient a > 0 and rhs/a <= bound, then
  // y_j <= rhs/a holds at any feasible point and the extra row would be
  // redundant. This prunes the x <= 1 rows of binary placement
  // indicators (they are implied by the "place once" constraints),
  // which shrinks the tableau dramatically.
  const std::size_t model_rows = rows.size();
  std::vector<bool> row_usable(model_rows, false);
  for (std::size_t r = 0; r < model_rows; ++r) {
    const Row& row = rows[r];
    if (row.relation != Relation::kLessEqual || row.rhs < 0.0)
      continue;
    bool all_non_negative = true;
    for (const double c : row.coef) {
      if (c < 0.0) {
        all_non_negative = false;
        break;
      }
    }
    row_usable[r] = all_non_negative;
  }
  for (int j = 0; j < n; ++j) {
    const int col = column_of[static_cast<std::size_t>(j)];
    if (col < 0 || !std::isfinite(upper[static_cast<std::size_t>(j)]))
      continue;
    const double bound = upper[static_cast<std::size_t>(j)] -
                         lower[static_cast<std::size_t>(j)];
    bool implied = false;
    for (std::size_t r = 0; r < model_rows && !implied; ++r) {
      if (!row_usable[r])
        continue;
      const double a = rows[r].coef[static_cast<std::size_t>(col)];
      implied = a > 0.0 && rows[r].rhs / a <= bound + 1e-12;
    }
    if (implied)
      continue;
    Row row;
    row.coef.assign(static_cast<std::size_t>(n_struct), 0.0);
    row.coef[static_cast<std::size_t>(col)] = 1.0;
    row.relation = Relation::kLessEqual;
    row.rhs = bound;
    rows.push_back(std::move(row));
  }

  // Objective constant from fixed variables and bound shifts.
  double objective_shift = 0.0;
  for (int j = 0; j < n; ++j) {
    objective_shift += model.variables()[static_cast<std::size_t>(j)].objective *
                       lower[static_cast<std::size_t>(j)];
  }

  // Assemble the tableau: structural | slack/surplus | artificial.
  const int m = static_cast<int>(rows.size());
  int n_slack = 0;
  int n_artificial = 0;
  for (Row& row : rows) {
    if (row.rhs < 0.0) {
      // Normalize to rhs >= 0.
      for (double& c : row.coef)
        c = -c;
      row.rhs = -row.rhs;
      if (row.relation == Relation::kLessEqual)
        row.relation = Relation::kGreaterEqual;
      else if (row.relation == Relation::kGreaterEqual)
        row.relation = Relation::kLessEqual;
    }
    switch (row.relation) {
      case Relation::kLessEqual:
        ++n_slack;
        break;
      case Relation::kGreaterEqual:
        ++n_slack;
        ++n_artificial;
        break;
      case Relation::kEqual:
        ++n_artificial;
        break;
    }
  }

  Tableau tab;
  tab.rows = m;
  tab.cols = n_struct + n_slack + n_artificial;
  tab.a.assign(static_cast<std::size_t>(m),
               std::vector<double>(static_cast<std::size_t>(tab.cols) + 1, 0.0));
  tab.phase2_cost.assign(static_cast<std::size_t>(tab.cols), 0.0);
  tab.basis.assign(static_cast<std::size_t>(m), -1);
  tab.artificial.assign(static_cast<std::size_t>(tab.cols), false);

  for (int j = 0; j < n; ++j) {
    const int col = column_of[static_cast<std::size_t>(j)];
    if (col >= 0) {
      tab.phase2_cost[static_cast<std::size_t>(col)] =
          sign * model.variables()[static_cast<std::size_t>(j)].objective;
    }
  }

  int next_slack = n_struct;
  int next_artificial = n_struct + n_slack;
  for (int i = 0; i < m; ++i) {
    const Row& row = rows[static_cast<std::size_t>(i)];
    auto& tab_row = tab.a[static_cast<std::size_t>(i)];
    for (int j = 0; j < n_struct; ++j)
      tab_row[static_cast<std::size_t>(j)] = row.coef[static_cast<std::size_t>(j)];
    tab_row[static_cast<std::size_t>(tab.cols)] = row.rhs;
    switch (row.relation) {
      case Relation::kLessEqual:
        tab_row[static_cast<std::size_t>(next_slack)] = 1.0;
        tab.basis[static_cast<std::size_t>(i)] = next_slack;
        ++next_slack;
        break;
      case Relation::kGreaterEqual:
        tab_row[static_cast<std::size_t>(next_slack)] = -1.0;
        ++next_slack;
        tab_row[static_cast<std::size_t>(next_artificial)] = 1.0;
        tab.artificial[static_cast<std::size_t>(next_artificial)] = true;
        tab.basis[static_cast<std::size_t>(i)] = next_artificial;
        ++next_artificial;
        break;
      case Relation::kEqual:
        tab_row[static_cast<std::size_t>(next_artificial)] = 1.0;
        tab.artificial[static_cast<std::size_t>(next_artificial)] = true;
        tab.basis[static_cast<std::size_t>(i)] = next_artificial;
        ++next_artificial;
        break;
    }
  }

  const int max_iters = options_.max_iterations > 0
                            ? options_.max_iterations
                            : 50 * (tab.rows + tab.cols) + 1000;
  TableauSolver solver(std::move(tab), options_.tolerance, max_iters);
  const LpStatus status = solver.Run();

  LpResult result;
  result.status = status;
  result.iterations = solver.pivots();
  if (status != LpStatus::kOptimal)
    return result;

  result.x.assign(static_cast<std::size_t>(n), 0.0);
  for (int j = 0; j < n; ++j) {
    const int col = column_of[static_cast<std::size_t>(j)];
    const double shifted = col >= 0 ? solver.ColumnValue(col) : 0.0;
    result.x[static_cast<std::size_t>(j)] =
        lower[static_cast<std::size_t>(j)] + shifted;
  }
  result.objective = model.ObjectiveValue(result.x);
  (void)objective_shift;  // folded into ObjectiveValue via result.x
  return result;
}

}  // namespace flex::solver
