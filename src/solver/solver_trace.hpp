/**
 * @file
 * Per-solve convergence traces for the branch-and-bound MILP solver.
 *
 * Real MILP stacks (Gurobi's log, which the paper's authors watched for
 * their 5-minute-budget solves) expose a convergence curve: how the
 * best proven bound and the incumbent objective close on each other
 * over nodes and solve time. This is the equivalent for our solver — a
 * plain value container the BranchAndBoundSolver appends points to at
 * the root relaxation, at every new incumbent, periodically during the
 * node loop, and at termination. The CSV export is what
 * bench_solver_perf / bench_stranded_power write so "where does solve
 * time go" has data behind it.
 *
 * Deliberately dependency-free (no obs::) so flex_solver keeps linking
 * against flex_common only; harnesses that want trace data in a
 * MetricsRegistry copy the final point's counters themselves.
 */
#ifndef FLEX_SOLVER_SOLVER_TRACE_HPP_
#define FLEX_SOLVER_SOLVER_TRACE_HPP_

#include <cstdint>
#include <string>
#include <vector>

namespace flex::solver {

/** One sample of the solver's progress. */
struct SolverTracePoint {
  /** Why this point was emitted: "root", "incumbent", "node", "final". */
  std::string label;
  /** Wall-clock seconds since the solve started. */
  double elapsed_s = 0.0;
  std::int64_t nodes = 0;
  std::int64_t lp_solves = 0;
  std::int64_t pivots = 0;
  /** Best proven bound so far, in the model's objective sense. */
  double bound = 0.0;
  /** Incumbent objective (model sense); meaningless until has_incumbent. */
  double incumbent = 0.0;
  bool has_incumbent = false;
  /** Relative bound/incumbent gap; 0 when no incumbent yet. */
  double gap = 0.0;
  /** Warm-basis installs attempted / accepted so far (PR 4 telemetry). */
  std::int64_t basis_attempts = 0;
  std::int64_t basis_hits = 0;
  /** Revised-simplex + presolve counters (PR 6 telemetry). */
  std::int64_t refactors = 0;
  std::int64_t eta_updates = 0;
  int presolve_rows_removed = 0;
  int presolve_cols_removed = 0;
  /** Dual-simplex warm restarts + node propagation (PR 9 telemetry). */
  std::int64_t dual_pivots = 0;
  std::int64_t warm_dual_restarts = 0;
  std::int64_t propagation_prunes = 0;
  std::int64_t propagated_bounds = 0;
};

/**
 * An append-only convergence curve. One instance records one solve;
 * Clear() between solves, or use a fresh instance per batch.
 */
class SolverTrace {
 public:
  void Add(SolverTracePoint point) { points_.push_back(std::move(point)); }

  void Clear() { points_.clear(); }

  const std::vector<SolverTracePoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }

  /**
   * CSV with header
   * `label,elapsed_s,nodes,lp_solves,pivots,bound,incumbent,gap,basis_attempts,basis_hits,refactors,eta_updates,presolve_rows_removed,presolve_cols_removed,dual_pivots,warm_dual_restarts,propagation_prunes,propagated_bounds`;
   * the incumbent column is empty until the first incumbent exists.
   */
  std::string ToCsv() const;

 private:
  std::vector<SolverTracePoint> points_;
};

}  // namespace flex::solver

#endif  // FLEX_SOLVER_SOLVER_TRACE_HPP_
