/**
 * @file
 * Entry point of the sparse bounded-variable revised simplex.
 *
 * Internal to the solver library: SimplexSolver::SolveWithBounds
 * dispatches here when Options::impl == SimplexImpl::kSparse. The
 * public contract (statuses, warm-basis semantics, workspace reuse) is
 * documented on SimplexSolver in simplex.hpp.
 */
#ifndef FLEX_SOLVER_REVISED_SIMPLEX_HPP_
#define FLEX_SOLVER_REVISED_SIMPLEX_HPP_

#include "solver/simplex.hpp"

namespace flex::solver {

/**
 * Solves the LP relaxation of @p model with the revised simplex.
 * Parameters mirror SimplexSolver::SolveWithBounds; @p workspace may be
 * null (a throwaway local is used).
 */
LpResult SolveRevised(const Model& model, const BoundOverrides& overrides,
                      SimplexWorkspace* workspace,
                      const SimplexBasis* warm_basis, SimplexBasis* basis_out,
                      const SimplexSolver::Options& options);

}  // namespace flex::solver

#endif  // FLEX_SOLVER_REVISED_SIMPLEX_HPP_
