#include "basis_lu.hpp"

#include <cmath>

#include "common/error.hpp"

namespace flex::solver {

namespace {

/** Factor terms smaller than this are dropped; they are roundoff noise
 * and keeping them only densifies the factors. */
constexpr double kDropTolerance = 1e-13;

/** Pivots smaller than this make a refactorization column unusable. */
constexpr double kSingularTolerance = 1e-10;

/** A Forrest–Tomlin update is rejected when the replacement diagonal is
 * below this fraction of the spike's largest entry — committing it
 * would amplify roundoff by the inverse ratio on every later solve. */
constexpr double kFtStabilityRatio = 1e-8;

}  // namespace

void
BasisFactorization::Reset(int rows)
{
  rows_ = rows;
  updates_since_refactor_ = 0;
  eta_kind_.clear();
  eta_pivot_.clear();
  eta_start_.assign(1, 0);
  eta_row_.clear();
  eta_val_.clear();
  ustart_.clear();
  ulen_.clear();
  urow_.clear();
  uval_.clear();
  udiag_.clear();
  pos_of_row_.clear();
  row_of_pos_.clear();
}

bool
BasisFactorization::Refactorize(const SparseColumns& cols,
                                std::vector<int>& basic_of_row)
{
  FLEX_CHECK_MSG(static_cast<int>(basic_of_row.size()) == rows_,
                 "basis size does not match factorization rows");
  eta_kind_.clear();
  eta_pivot_.clear();
  eta_start_.assign(1, 0);
  eta_row_.clear();
  eta_val_.clear();
  ustart_.assign(static_cast<std::size_t>(rows_), 0);
  ulen_.assign(static_cast<std::size_t>(rows_), 0);
  urow_.clear();
  uval_.clear();
  udiag_.assign(static_cast<std::size_t>(rows_), 0.0);
  pos_of_row_.assign(static_cast<std::size_t>(rows_), -1);
  row_of_pos_.assign(static_cast<std::size_t>(rows_), -1);
  updates_since_refactor_ = 0;
  ++stats_.refactors;

  row_assigned_.assign(static_cast<std::size_t>(rows_), 0);
  new_basic_.assign(static_cast<std::size_t>(rows_), -1);
  work_.assign(static_cast<std::size_t>(rows_), 0.0);

  for (int p = 0; p < rows_; ++p) {
    const int col = basic_of_row[static_cast<std::size_t>(p)];
    FLEX_CHECK_MSG(col >= 0 && col < cols.num_cols(),
                   "basis references unknown column");
    // Scatter the raw column, then eliminate it by the L etas built so
    // far (a partial Ftran); the result splits into a U column (already
    // pivoted rows) and the remaining active part.
    for (int k = cols.start[static_cast<std::size_t>(col)];
         k < cols.start[static_cast<std::size_t>(col) + 1]; ++k) {
      work_[static_cast<std::size_t>(
          cols.row[static_cast<std::size_t>(k)])] +=
          cols.value[static_cast<std::size_t>(k)];
    }
    for (std::size_t e = 0; e < eta_pivot_.size(); ++e) {
      const double t = work_[static_cast<std::size_t>(eta_pivot_[e])];
      if (t == 0.0)
        continue;
      for (int k = eta_start_[e]; k < eta_start_[e + 1]; ++k) {
        work_[static_cast<std::size_t>(eta_row_[static_cast<std::size_t>(k)])] -=
            eta_val_[static_cast<std::size_t>(k)] * t;
      }
    }

    // Row partial pivoting over the rows not yet claimed by an earlier
    // column; the max-magnitude choice keeps the LU numerically honest.
    int pivot_row = -1;
    double best = kSingularTolerance;
    for (int i = 0; i < rows_; ++i) {
      if (row_assigned_[static_cast<std::size_t>(i)])
        continue;
      const double v = std::fabs(work_[static_cast<std::size_t>(i)]);
      if (v > best) {
        best = v;
        pivot_row = i;
      }
    }
    if (pivot_row < 0) {
      // Singular: clean up scratch and report; the caller decides how
      // to repair the basis.
      work_.assign(static_cast<std::size_t>(rows_), 0.0);
      return false;
    }
    const double pivot = work_[static_cast<std::size_t>(pivot_row)];

    // Split the eliminated column: pivoted rows feed the U column at
    // position p, unpivoted rows feed the L eta (unit diagonal, so the
    // multipliers carry the 1/pivot).
    ustart_[static_cast<std::size_t>(p)] = static_cast<int>(urow_.size());
    eta_kind_.push_back(0);
    eta_pivot_.push_back(pivot_row);
    for (int i = 0; i < rows_; ++i) {
      const double v = work_[static_cast<std::size_t>(i)];
      work_[static_cast<std::size_t>(i)] = 0.0;
      if (i == pivot_row || std::fabs(v) <= kDropTolerance)
        continue;
      if (row_assigned_[static_cast<std::size_t>(i)]) {
        urow_.push_back(i);
        uval_.push_back(v);
      } else {
        eta_row_.push_back(i);
        eta_val_.push_back(v / pivot);
      }
    }
    eta_start_.push_back(static_cast<int>(eta_row_.size()));
    ulen_[static_cast<std::size_t>(p)] =
        static_cast<int>(urow_.size()) - ustart_[static_cast<std::size_t>(p)];
    udiag_[static_cast<std::size_t>(p)] = pivot;
    row_of_pos_[static_cast<std::size_t>(p)] = pivot_row;
    pos_of_row_[static_cast<std::size_t>(pivot_row)] = p;
    row_assigned_[static_cast<std::size_t>(pivot_row)] = 1;
    new_basic_[static_cast<std::size_t>(pivot_row)] = col;
  }

  basic_of_row = new_basic_;
  return true;
}

void
BasisFactorization::Ftran(std::vector<double>& v) const
{
  // L̃^-1: every eta (refactorization L columns, then Forrest–Tomlin
  // row etas) in creation order.
  for (std::size_t e = 0; e < eta_pivot_.size(); ++e) {
    const int pr = eta_pivot_[e];
    if (eta_kind_[e] == 0) {
      const double t = v[static_cast<std::size_t>(pr)];
      if (t == 0.0)
        continue;
      for (int k = eta_start_[e]; k < eta_start_[e + 1]; ++k) {
        v[static_cast<std::size_t>(eta_row_[static_cast<std::size_t>(k)])] -=
            eta_val_[static_cast<std::size_t>(k)] * t;
      }
    } else {
      double acc = v[static_cast<std::size_t>(pr)];
      for (int k = eta_start_[e]; k < eta_start_[e + 1]; ++k) {
        acc -= eta_val_[static_cast<std::size_t>(k)] *
               v[static_cast<std::size_t>(
                   eta_row_[static_cast<std::size_t>(k)])];
      }
      v[static_cast<std::size_t>(pr)] = acc;
    }
  }
  // U^-1: back substitution, highest position first. Every off-diagonal
  // term of a column sits at a lower position, i.e. a not-yet-solved
  // physical row, so in-place scatter is safe.
  for (int p = rows_; p-- > 0;) {
    const std::size_t sp = static_cast<std::size_t>(p);
    const std::size_t r = static_cast<std::size_t>(row_of_pos_[sp]);
    double x = v[r];
    if (x != 0.0) {
      x /= udiag_[sp];
      for (int k = ustart_[sp]; k < ustart_[sp] + ulen_[sp]; ++k) {
        v[static_cast<std::size_t>(urow_[static_cast<std::size_t>(k)])] -=
            uval_[static_cast<std::size_t>(k)] * x;
      }
      v[r] = x;
    }
  }
}

void
BasisFactorization::Btran(std::vector<double>& v) const
{
  // U^-T: forward substitution, lowest position first; a column's
  // off-diagonal terms reference already-solved positions.
  for (int p = 0; p < rows_; ++p) {
    const std::size_t sp = static_cast<std::size_t>(p);
    const std::size_t r = static_cast<std::size_t>(row_of_pos_[sp]);
    double acc = v[r];
    for (int k = ustart_[sp]; k < ustart_[sp] + ulen_[sp]; ++k) {
      acc -= uval_[static_cast<std::size_t>(k)] *
             v[static_cast<std::size_t>(urow_[static_cast<std::size_t>(k)])];
    }
    v[r] = acc / udiag_[sp];
  }
  // L̃^-T: every eta transposed, reverse creation order. The transpose
  // of a column eta applies like a row eta and vice versa.
  for (std::size_t e = eta_pivot_.size(); e-- > 0;) {
    const int pr = eta_pivot_[e];
    if (eta_kind_[e] == 0) {
      double acc = v[static_cast<std::size_t>(pr)];
      for (int k = eta_start_[e]; k < eta_start_[e + 1]; ++k) {
        acc -= eta_val_[static_cast<std::size_t>(k)] *
               v[static_cast<std::size_t>(
                   eta_row_[static_cast<std::size_t>(k)])];
      }
      v[static_cast<std::size_t>(pr)] = acc;
    } else {
      const double t = v[static_cast<std::size_t>(pr)];
      if (t == 0.0)
        continue;
      for (int k = eta_start_[e]; k < eta_start_[e + 1]; ++k) {
        v[static_cast<std::size_t>(eta_row_[static_cast<std::size_t>(k)])] -=
            eta_val_[static_cast<std::size_t>(k)] * t;
      }
    }
  }
}

bool
BasisFactorization::Update(int pivot_row, const std::vector<double>& alpha)
{
  FLEX_CHECK_MSG(pivot_row >= 0 && pivot_row < rows_,
                 "Forrest–Tomlin update outside the basis");
  const int t = pos_of_row_[static_cast<std::size_t>(pivot_row)];
  const int m = rows_;

  // Spike column in position space: the entering column after the L̃
  // solve is U * alpha (alpha = B^-1 a_q is what the caller pivoted on).
  spike_.assign(static_cast<std::size_t>(m), 0.0);
  double spike_max = 0.0;
  for (int p = 0; p < m; ++p) {
    const std::size_t sp = static_cast<std::size_t>(p);
    const double a = alpha[static_cast<std::size_t>(row_of_pos_[sp])];
    if (a == 0.0)
      continue;
    spike_[sp] += udiag_[sp] * a;
    for (int k = ustart_[sp]; k < ustart_[sp] + ulen_[sp]; ++k) {
      spike_[static_cast<std::size_t>(
          pos_of_row_[static_cast<std::size_t>(
              urow_[static_cast<std::size_t>(k)])])] +=
          uval_[static_cast<std::size_t>(k)] * a;
    }
  }
  for (int p = 0; p < m; ++p) {
    spike_max = std::max(spike_max, std::fabs(spike_[static_cast<std::size_t>(p)]));
  }

  // Eliminate the spiked row t against positions t+1..m-1: the
  // multipliers solve U_JJ^T mu = u_{tJ}^T, a forward substitution that
  // needs only column access (terms of column j at positions in (t, j)).
  mu_.assign(static_cast<std::size_t>(m), 0.0);
  bool has_mu = false;
  for (int j = t + 1; j < m; ++j) {
    const std::size_t sj = static_cast<std::size_t>(j);
    double num = 0.0;
    for (int k = ustart_[sj]; k < ustart_[sj] + ulen_[sj]; ++k) {
      const int p = pos_of_row_[static_cast<std::size_t>(
          urow_[static_cast<std::size_t>(k)])];
      if (p == t)
        num += uval_[static_cast<std::size_t>(k)];
      else if (p > t)
        num -= uval_[static_cast<std::size_t>(k)] *
               mu_[static_cast<std::size_t>(p)];
    }
    if (num != 0.0) {
      const double mu = num / udiag_[sj];
      if (std::fabs(mu) > kDropTolerance) {
        mu_[sj] = mu;
        has_mu = true;
      }
    }
  }

  // The eliminated row's last-column entry becomes the new diagonal.
  double new_diag = spike_[static_cast<std::size_t>(t)];
  for (int j = t + 1; j < m; ++j) {
    if (mu_[static_cast<std::size_t>(j)] != 0.0)
      new_diag -= mu_[static_cast<std::size_t>(j)] *
                  spike_[static_cast<std::size_t>(j)];
  }
  if (std::fabs(new_diag) <= kSingularTolerance ||
      std::fabs(new_diag) < kFtStabilityRatio * spike_max) {
    ++stats_.update_rejections;
    return false;
  }

  // Commit. 1) The batched row eta (physical rows are stable, so the
  // recorded term rows survive later permutation shifts).
  if (has_mu) {
    eta_kind_.push_back(1);
    eta_pivot_.push_back(pivot_row);
    for (int j = t + 1; j < m; ++j) {
      if (mu_[static_cast<std::size_t>(j)] != 0.0) {
        eta_row_.push_back(row_of_pos_[static_cast<std::size_t>(j)]);
        eta_val_.push_back(mu_[static_cast<std::size_t>(j)]);
      }
    }
    eta_start_.push_back(static_cast<int>(eta_row_.size()));
  }

  // 2) The row eta zeroed row t across columns right of t; delete those
  // entries (at most one per column).
  for (int j = t + 1; j < m; ++j) {
    const std::size_t sj = static_cast<std::size_t>(j);
    for (int k = ustart_[sj]; k < ustart_[sj] + ulen_[sj]; ++k) {
      if (urow_[static_cast<std::size_t>(k)] == pivot_row) {
        const int last = ustart_[sj] + ulen_[sj] - 1;
        urow_[static_cast<std::size_t>(k)] =
            urow_[static_cast<std::size_t>(last)];
        uval_[static_cast<std::size_t>(k)] =
            uval_[static_cast<std::size_t>(last)];
        --ulen_[sj];
        break;
      }
    }
  }

  // 3) Collect the surviving spike terms against the *old* position
  // numbering, then cyclically shift positions t+1..m-1 down by one and
  // append the spike as the last column with the replacement diagonal.
  spike_rows_.clear();
  spike_vals_.clear();
  for (int p = 0; p < m; ++p) {
    if (p == t)
      continue;
    const double v = spike_[static_cast<std::size_t>(p)];
    if (std::fabs(v) > kDropTolerance) {
      spike_rows_.push_back(row_of_pos_[static_cast<std::size_t>(p)]);
      spike_vals_.push_back(v);
    }
  }
  for (int p = t; p < m - 1; ++p) {
    const std::size_t sp = static_cast<std::size_t>(p);
    ustart_[sp] = ustart_[sp + 1];
    ulen_[sp] = ulen_[sp + 1];
    udiag_[sp] = udiag_[sp + 1];
    row_of_pos_[sp] = row_of_pos_[sp + 1];
  }
  const std::size_t lastp = static_cast<std::size_t>(m - 1);
  ustart_[lastp] = static_cast<int>(urow_.size());
  ulen_[lastp] = static_cast<int>(spike_rows_.size());
  urow_.insert(urow_.end(), spike_rows_.begin(), spike_rows_.end());
  uval_.insert(uval_.end(), spike_vals_.begin(), spike_vals_.end());
  udiag_[lastp] = new_diag;
  row_of_pos_[lastp] = pivot_row;
  for (int p = t; p < m; ++p) {
    pos_of_row_[static_cast<std::size_t>(
        row_of_pos_[static_cast<std::size_t>(p)])] = p;
  }

  ++updates_since_refactor_;
  ++stats_.eta_updates;
  return true;
}

}  // namespace flex::solver
