#include "basis_lu.hpp"

#include <cmath>

#include "common/error.hpp"

namespace flex::solver {

namespace {

/** Eta terms smaller than this are dropped; they are roundoff noise and
 * keeping them only densifies the eta file. */
constexpr double kEtaDropTolerance = 1e-13;

/** Pivots smaller than this make a refactorization column unusable. */
constexpr double kSingularTolerance = 1e-10;

}  // namespace

void
BasisFactorization::Reset(int rows)
{
  rows_ = rows;
  updates_since_refactor_ = 0;
  eta_pivot_row_.clear();
  eta_pivot_val_.clear();
  eta_start_.assign(1, 0);
  eta_row_.clear();
  eta_val_.clear();
}

void
BasisFactorization::AppendEta(int pivot_row, const std::vector<double>& column)
{
  eta_pivot_row_.push_back(pivot_row);
  eta_pivot_val_.push_back(column[static_cast<std::size_t>(pivot_row)]);
  for (int i = 0; i < rows_; ++i) {
    if (i == pivot_row)
      continue;
    const double v = column[static_cast<std::size_t>(i)];
    if (std::fabs(v) > kEtaDropTolerance) {
      eta_row_.push_back(i);
      eta_val_.push_back(v);
    }
  }
  eta_start_.push_back(static_cast<int>(eta_row_.size()));
}

bool
BasisFactorization::Refactorize(const SparseColumns& cols,
                                std::vector<int>& basic_of_row)
{
  FLEX_CHECK_MSG(static_cast<int>(basic_of_row.size()) == rows_,
                 "basis size does not match factorization rows");
  eta_pivot_row_.clear();
  eta_pivot_val_.clear();
  eta_start_.assign(1, 0);
  eta_row_.clear();
  eta_val_.clear();
  updates_since_refactor_ = 0;
  ++stats_.refactors;

  row_assigned_.assign(static_cast<std::size_t>(rows_), 0);
  new_basic_.assign(static_cast<std::size_t>(rows_), -1);
  work_.assign(static_cast<std::size_t>(rows_), 0.0);
  touched_.clear();

  for (int p = 0; p < rows_; ++p) {
    const int col = basic_of_row[static_cast<std::size_t>(p)];
    FLEX_CHECK_MSG(col >= 0 && col < cols.num_cols(),
                   "basis references unknown column");
    // Scatter the raw column, then transform it by the etas built so
    // far (a partial Ftran); the result is the column of the partially
    // eliminated basis.
    for (int k = cols.start[static_cast<std::size_t>(col)];
         k < cols.start[static_cast<std::size_t>(col) + 1]; ++k) {
      const int r = cols.row[static_cast<std::size_t>(k)];
      work_[static_cast<std::size_t>(r)] += cols.value[static_cast<std::size_t>(k)];
      touched_.push_back(r);
    }
    for (std::size_t e = 0; e < eta_pivot_row_.size(); ++e) {
      const int pr = eta_pivot_row_[e];
      double t = work_[static_cast<std::size_t>(pr)];
      if (t == 0.0)
        continue;
      t /= eta_pivot_val_[e];
      work_[static_cast<std::size_t>(pr)] = t;
      for (int k = eta_start_[e]; k < eta_start_[e + 1]; ++k) {
        const int r = eta_row_[static_cast<std::size_t>(k)];
        work_[static_cast<std::size_t>(r)] -=
            eta_val_[static_cast<std::size_t>(k)] * t;
        touched_.push_back(r);
      }
    }

    // Row partial pivoting over the rows not yet claimed by an earlier
    // column; the max-magnitude choice is what keeps the product-form
    // LU numerically honest.
    int pivot_row = -1;
    double best = kSingularTolerance;
    for (int i = 0; i < rows_; ++i) {
      if (row_assigned_[static_cast<std::size_t>(i)])
        continue;
      const double v = std::fabs(work_[static_cast<std::size_t>(i)]);
      if (v > best) {
        best = v;
        pivot_row = i;
      }
    }
    if (pivot_row < 0) {
      // Singular: clean up scratch and report; the caller decides how
      // to repair the basis.
      for (const int r : touched_)
        work_[static_cast<std::size_t>(r)] = 0.0;
      return false;
    }

    AppendEta(pivot_row, work_);
    row_assigned_[static_cast<std::size_t>(pivot_row)] = 1;
    new_basic_[static_cast<std::size_t>(pivot_row)] = col;
    for (const int r : touched_)
      work_[static_cast<std::size_t>(r)] = 0.0;
    touched_.clear();
  }

  basic_of_row = new_basic_;
  return true;
}

void
BasisFactorization::Ftran(std::vector<double>& v) const
{
  for (std::size_t e = 0; e < eta_pivot_row_.size(); ++e) {
    const int pr = eta_pivot_row_[e];
    double t = v[static_cast<std::size_t>(pr)];
    if (t == 0.0)
      continue;
    t /= eta_pivot_val_[e];
    v[static_cast<std::size_t>(pr)] = t;
    for (int k = eta_start_[e]; k < eta_start_[e + 1]; ++k) {
      v[static_cast<std::size_t>(eta_row_[static_cast<std::size_t>(k)])] -=
          eta_val_[static_cast<std::size_t>(k)] * t;
    }
  }
}

void
BasisFactorization::Btran(std::vector<double>& v) const
{
  for (std::size_t e = eta_pivot_row_.size(); e-- > 0;) {
    const int pr = eta_pivot_row_[e];
    double acc = v[static_cast<std::size_t>(pr)];
    for (int k = eta_start_[e]; k < eta_start_[e + 1]; ++k) {
      acc -= eta_val_[static_cast<std::size_t>(k)] *
             v[static_cast<std::size_t>(eta_row_[static_cast<std::size_t>(k)])];
    }
    v[static_cast<std::size_t>(pr)] = acc / eta_pivot_val_[e];
  }
}

void
BasisFactorization::Update(int pivot_row, const std::vector<double>& alpha)
{
  FLEX_CHECK_MSG(
      std::fabs(alpha[static_cast<std::size_t>(pivot_row)]) > 1e-12,
      "product-form update with a (near-)zero pivot");
  AppendEta(pivot_row, alpha);
  ++updates_since_refactor_;
  ++stats_.eta_updates;
}

}  // namespace flex::solver
