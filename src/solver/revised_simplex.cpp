#include "revised_simplex.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace flex::solver {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Rows whose pivot-column entry is below this do not block the ratio
 * test and are never chosen as pivots. */
constexpr double kRatioTolerance = 1e-9;

/** Minimum magnitude of a committed pivot element. Stricter than
 * kRatioTolerance: an entry can be numerically nonzero yet far too
 * small to divide by — replacing a basis column through a ~1e-9 pivot
 * produces a numerically singular basis that the next refactorization
 * rejects. Rows below this threshold simply do not participate in the
 * ratio test (their basic variable drifts by at most step * 1e-7,
 * within the feasibility tolerances). */
constexpr double kPivotTolerance = 1e-7;

/** Absolute slack allowed when judging a warm basis primal feasible. */
constexpr double kWarmFeasTolerance = 1e-7;

/** Absolute slack allowed when judging a warm basis dual feasible (the
 * entry ticket for the dual-simplex repair path). */
constexpr double kDualFeasTolerance = 1e-7;

/** Phase-1 optimum above this level of residual infeasibility means the
 * LP has no feasible point (matches the dense implementation). */
constexpr double kInfeasibilityTolerance = 1e-6;

/** A variable whose bound range is below this is treated as fixed: it
 * never enters the basis (a "flip" of a fixed variable would loop). */
constexpr double kFixedTolerance = 1e-12;

/** Extraction refactorizes ("polishes") only when at least this many
 * Forrest–Tomlin updates have accumulated; warm re-solves extract
 * straight from the loaded factors. Sits just under the periodic
 * refactor interval (64): the FT stability test bounds per-update
 * drift, so polishing more eagerly than the iteration loop itself
 * refactorizes only burns the refactorizations the adoption/patch
 * routes exist to avoid. */
constexpr int kPolishUpdateThreshold = 48;

/** Process-wide basis snapshot ids; only equality is ever consulted. */
std::atomic<std::uint64_t> g_next_basis_id{0};

/** Where a nonbasic column currently sits. */
enum VarState : signed char {
  kBasic = 0,
  kAtLower = 1,
  kAtUpper = 2,
  kFreeAtZero = 3,  ///< both bounds infinite; parked at zero
};

/**
 * One LP solve over the column space [structural | slacks | artificials].
 * Structural column j is model variable j; the slack of row i is column
 * n + i with coefficient +1 and bounds encoding the relation
 * (<=: [0,inf), >=: (-inf,0], =: [0,0]); artificial columns are appended
 * on demand (cold Phase 1, warm installs of artificial snapshot rows).
 * Costs are kept in minimize orientation throughout.
 */
class RevisedSolver {
 public:
  RevisedSolver(const Model& model, SimplexWorkspace& ws,
                const SimplexSolver::Options& options)
      : model_(model), ws_(ws), tol_(options.tolerance),
        refactor_interval_(std::max(1, options.refactor_interval)),
        max_iterations_(options.max_iterations)
  {
  }

  LpResult Solve(const BoundOverrides& overrides,
                 const SimplexBasis* warm_basis, SimplexBasis* basis_out);

 private:
  bool PrepareBounds(const BoundOverrides& overrides);
  bool UpdateStructuralBounds(const BoundOverrides& overrides);
  void BuildColumns();
  void SetupCosts();
  int AppendColumn(int entry_row, double coef, double lower, double upper);
  void SetNonbasicDefaults(const SimplexBasis* basis);
  void SetupColdBasis();
  bool InstallWarmBasis(const SimplexBasis& basis);
  bool TryAdoptResident(const SimplexBasis& basis);
  bool TryPatchResident(const SimplexBasis& basis,
                        const BoundOverrides& overrides,
                        bool* box_infeasible);
  void ReparkNonbasicStructurals();
  bool PrimalFeasibleClamp();
  bool DualFeasibleBasis();
  bool RefactorizeBasis();
  void ComputeBeta();
  void ComputeDuals(bool phase_one);
  double Cost(int j, bool phase_one) const;
  double ReducedCost(int j, bool phase_one) const;
  double Objective(bool phase_one) const;
  int PriceEntering(bool bland, bool phase_one, double* reduced_cost);
  LpStatus RunTwoPhase(int max_iters, int& iterations);
  LpStatus Iterate(bool phase_one, int max_iters, int& iterations);
  LpStatus IterateDual(int max_iters, int& iterations);

  const Model& model_;
  SimplexWorkspace& ws_;
  const double tol_;
  int refactor_interval_;  ///< mutable: the safe-mode retry shrinks it
  const int max_iterations_;

  int n_ = 0;          ///< structural columns (model variables)
  int m_ = 0;          ///< rows (model constraints)
  int num_cols_ = 0;   ///< total columns including slacks + artificials
  int first_artificial_ = 0;
  int pricing_cursor_ = 0;
  int dual_pivots_ = 0;
  bool used_dual_ = false;
};

bool
RevisedSolver::PrepareBounds(const BoundOverrides& overrides)
{
  ws_.sp_lower.assign(static_cast<std::size_t>(n_), 0.0);
  ws_.sp_upper.assign(static_cast<std::size_t>(n_), 0.0);
  return UpdateStructuralBounds(overrides);
}

/** Writes the effective child bounds of the structural columns into
 * sp_lower/sp_upper[0..n) in place (slack/artificial entries, if any,
 * are untouched). False means the bound box itself is empty. */
bool
RevisedSolver::UpdateStructuralBounds(const BoundOverrides& overrides)
{
  for (int j = 0; j < n_; ++j) {
    const Variable& v = model_.variables()[static_cast<std::size_t>(j)];
    double lo = v.lower;
    double hi = v.upper;
    if (!overrides.empty() && overrides[static_cast<std::size_t>(j)]) {
      lo = std::max(lo, overrides[static_cast<std::size_t>(j)]->first);
      hi = std::min(hi, overrides[static_cast<std::size_t>(j)]->second);
    }
    if (lo > hi + 1e-12)
      return false;
    ws_.sp_lower[static_cast<std::size_t>(j)] = lo;
    ws_.sp_upper[static_cast<std::size_t>(j)] = hi;
  }
  return true;
}

void
RevisedSolver::BuildColumns()
{
  // Rebuilding the column file discards whatever factorization the
  // workspace held, so any resident-basis claim is void from here on.
  ws_.resident_basis_id = 0;
  BuildCsc(model_, &ws_.columns);
  ws_.sp_lower.resize(static_cast<std::size_t>(n_));
  ws_.sp_upper.resize(static_cast<std::size_t>(n_));
  for (int i = 0; i < m_; ++i) {
    ws_.columns.AppendSingleton(i, 1.0);
    switch (model_.constraints()[static_cast<std::size_t>(i)].relation) {
      case Relation::kLessEqual:
        ws_.sp_lower.push_back(0.0);
        ws_.sp_upper.push_back(kInf);
        break;
      case Relation::kGreaterEqual:
        ws_.sp_lower.push_back(-kInf);
        ws_.sp_upper.push_back(0.0);
        break;
      case Relation::kEqual:
        ws_.sp_lower.push_back(0.0);
        ws_.sp_upper.push_back(0.0);
        break;
    }
  }
  num_cols_ = n_ + m_;
  first_artificial_ = num_cols_;
  ws_.sp_value.assign(static_cast<std::size_t>(num_cols_), 0.0);
  ws_.sp_state.assign(static_cast<std::size_t>(num_cols_), kAtLower);
  ws_.factorization.Reset(m_);
  pricing_cursor_ = 0;
}

void
RevisedSolver::SetupCosts()
{
  ws_.sp_cost.assign(static_cast<std::size_t>(num_cols_), 0.0);
  const double sgn = model_.sense() == Sense::kMaximize ? -1.0 : 1.0;
  for (int j = 0; j < n_; ++j) {
    ws_.sp_cost[static_cast<std::size_t>(j)] =
        sgn * model_.variables()[static_cast<std::size_t>(j)].objective;
  }
}

int
RevisedSolver::AppendColumn(int entry_row, double coef, double lower,
                            double upper)
{
  const int c = ws_.columns.AppendSingleton(entry_row, coef);
  ws_.sp_lower.push_back(lower);
  ws_.sp_upper.push_back(upper);
  ws_.sp_cost.push_back(0.0);
  ws_.sp_value.push_back(0.0);
  ws_.sp_state.push_back(kAtLower);
  num_cols_ = c + 1;
  return c;
}

/**
 * Parks every column at its natural nonbasic position: structural
 * variables at a finite bound (lower preferred; @p basis's at_upper
 * list overrides toward the upper bound) or at zero when free; slacks
 * at the zero end of their relation-shaped bounds.
 */
void
RevisedSolver::SetNonbasicDefaults(const SimplexBasis* basis)
{
  for (int j = 0; j < n_; ++j) {
    const std::size_t sj = static_cast<std::size_t>(j);
    const double lo = ws_.sp_lower[sj];
    const double hi = ws_.sp_upper[sj];
    const bool wants_upper =
        basis != nullptr &&
        std::binary_search(basis->at_upper.begin(), basis->at_upper.end(), j);
    if (wants_upper && std::isfinite(hi)) {
      ws_.sp_state[sj] = kAtUpper;
      ws_.sp_value[sj] = hi;
    } else if (std::isfinite(lo)) {
      ws_.sp_state[sj] = kAtLower;
      ws_.sp_value[sj] = lo;
    } else if (std::isfinite(hi)) {
      ws_.sp_state[sj] = kAtUpper;
      ws_.sp_value[sj] = hi;
    } else {
      ws_.sp_state[sj] = kFreeAtZero;
      ws_.sp_value[sj] = 0.0;
    }
  }
  for (int i = 0; i < m_; ++i) {
    const std::size_t s = static_cast<std::size_t>(n_ + i);
    const Relation rel =
        model_.constraints()[static_cast<std::size_t>(i)].relation;
    ws_.sp_state[s] = rel == Relation::kGreaterEqual ? kAtUpper : kAtLower;
    ws_.sp_value[s] = 0.0;
  }
}

void
RevisedSolver::SetupColdBasis()
{
  SetNonbasicDefaults(nullptr);

  // Row residuals with every column nonbasic: r_i = b_i - A x_N.
  ws_.sp_rhs.assign(static_cast<std::size_t>(m_), 0.0);
  for (int i = 0; i < m_; ++i) {
    ws_.sp_rhs[static_cast<std::size_t>(i)] =
        model_.constraints()[static_cast<std::size_t>(i)].rhs;
  }
  for (int j = 0; j < num_cols_; ++j) {
    const double v = ws_.sp_value[static_cast<std::size_t>(j)];
    if (v == 0.0)
      continue;
    for (int k = ws_.columns.start[static_cast<std::size_t>(j)];
         k < ws_.columns.start[static_cast<std::size_t>(j) + 1]; ++k) {
      ws_.sp_rhs[static_cast<std::size_t>(
          ws_.columns.row[static_cast<std::size_t>(k)])] -=
          ws_.columns.value[static_cast<std::size_t>(k)] * v;
    }
  }

  // Each row takes its own slack when the residual fits the slack
  // bounds; otherwise a phase-1 artificial absorbs the residual.
  first_artificial_ = num_cols_;
  ws_.sp_basic_of_row.assign(static_cast<std::size_t>(m_), -1);
  for (int i = 0; i < m_; ++i) {
    const double r = ws_.sp_rhs[static_cast<std::size_t>(i)];
    const std::size_t s = static_cast<std::size_t>(n_ + i);
    if (r >= ws_.sp_lower[s] - kRatioTolerance &&
        r <= ws_.sp_upper[s] + kRatioTolerance) {
      ws_.sp_basic_of_row[static_cast<std::size_t>(i)] = n_ + i;
      ws_.sp_state[s] = kBasic;
      ws_.sp_value[s] = r;
    } else {
      const int a = AppendColumn(i, r >= 0.0 ? 1.0 : -1.0, 0.0, kInf);
      ws_.sp_state[static_cast<std::size_t>(a)] = kBasic;
      ws_.sp_value[static_cast<std::size_t>(a)] = std::fabs(r);
      ws_.sp_basic_of_row[static_cast<std::size_t>(i)] = a;
    }
  }
}

/**
 * Fast warm path: the workspace's loaded factorization already realises
 * the snapshot being installed, so the column file, basis, states, and
 * LU factors are all still valid. Only the structural bounds changed;
 * refresh them, re-park nonbasic structurals on their (possibly moved)
 * bounds, and recompute beta with one Ftran — no column rebuild, no
 * refactorization.
 *
 * Two routes establish the match. The id route recognises the exact
 * snapshot this workspace extracted last (the dive / re-solve pattern).
 * The content route compares the snapshot's row arrangement and
 * nonbasic parking against what is loaded — this is what fires when a
 * sibling re-solves from the parent snapshot after a degenerate child
 * (final basis == parent basis), and it is what lets long solve chains
 * run on Forrest–Tomlin updates alone instead of one refactorization
 * per node.
 */
bool
RevisedSolver::TryAdoptResident(const SimplexBasis& basis)
{
  if (ws_.resident_model != static_cast<const void*>(&model_))
    return false;
  if (ws_.resident_num_cols < n_ + m_ ||
      static_cast<int>(ws_.sp_lower.size()) != ws_.resident_num_cols ||
      static_cast<int>(ws_.sp_state.size()) != ws_.resident_num_cols ||
      static_cast<int>(ws_.sp_basic_of_row.size()) != m_)
    return false;
  const auto adopt = [&] {
    num_cols_ = ws_.resident_num_cols;
    first_artificial_ = ws_.resident_first_artificial;
    return true;
  };
  if (basis.id != 0 && basis.id == ws_.resident_basis_id)
    return adopt();

  // Content route: every row must hold exactly the column the snapshot
  // prescribes (which also proves the basic sets are identical), and
  // every nonbasic column must be parked on the side the install path
  // would choose, so the starting vertex matches a fresh install.
  if (ws_.resident_basis_id == 0 ||
      static_cast<int>(basis.rows.size()) != m_)
    return false;
  std::vector<char> seen(static_cast<std::size_t>(m_), 0);
  for (const SimplexBasis::RowEntry& entry : basis.rows) {
    if (entry.row_id < 0 || entry.row_id >= m_ ||
        seen[static_cast<std::size_t>(entry.row_id)])
      return false;
    seen[static_cast<std::size_t>(entry.row_id)] = 1;
    int expect = -1;
    if (entry.kind == SimplexBasis::Kind::kStructural && entry.col_id >= 0 &&
        entry.col_id < n_) {
      expect = entry.col_id;
    } else if (entry.kind == SimplexBasis::Kind::kSlack &&
               entry.col_id >= 0 && entry.col_id < m_) {
      expect = n_ + entry.col_id;
    } else {
      return false;  // artificial or malformed entry: no content match
    }
    // Set membership, not positional equality: the factorization
    // represents the basis MATRIX, and which factor row a basic column
    // is labelled with is bookkeeping, not mathematics — pivoting
    // permutes rows freely, so a row-permuted loaded basis is just as
    // adoptable as an arrangement-exact one.
    if (ws_.sp_state[static_cast<std::size_t>(expect)] != kBasic)
      return false;
  }
  for (int j = 0; j < n_; ++j) {
    const signed char s = ws_.sp_state[static_cast<std::size_t>(j)];
    if (s == kBasic)
      continue;
    // ReparkNonbasicStructurals resolves kAtLower and kFreeAtZero to
    // the same side SetNonbasicDefaults would pick, so only the
    // at-upper bit has to agree with the snapshot's prescription.
    const bool wants_upper =
        std::binary_search(basis.at_upper.begin(), basis.at_upper.end(), j);
    if (wants_upper != (s == kAtUpper))
      return false;
  }
  for (int i = 0; i < m_; ++i) {
    const std::size_t s = static_cast<std::size_t>(n_ + i);
    if (ws_.sp_state[s] == kBasic)
      continue;
    if (ws_.sp_upper[s] - ws_.sp_lower[s] <= kFixedTolerance)
      continue;  // equality-row slack: both sides are the same point
    const Relation rel =
        model_.constraints()[static_cast<std::size_t>(i)].relation;
    const signed char want =
        rel == Relation::kGreaterEqual ? kAtUpper : kAtLower;
    if (ws_.sp_state[s] != want)
      return false;
  }
  return adopt();
}

/**
 * Middle warm path: the loaded factorization realises a basis that
 * differs from the snapshot in only a few rows (the sibling pattern —
 * the workspace last solved this node's sibling, which started from
 * the same parent snapshot and moved a handful of columns). Instead of
 * rebuilding and refactorizing, pivot each differing row's prescribed
 * column into the factors with one Ftran + Forrest–Tomlin update
 * apiece — the same O(diff · m) a dual pivot costs, against the
 * O(m · nnz) of a refactorization. Any rejected update (singular or
 * unstable intermediate basis, e.g. a row-permuted diff) simply falls
 * back to the install route, which refactorizes from scratch.
 *
 * On success the starting vertex is bit-for-bit what InstallWarmBasis
 * would have produced — same basis arrangement, same nonbasic parking
 * via SetNonbasicDefaults — only the factor representation differs by
 * roundoff, the same accepted trade the id/content adoption routes
 * make.
 */
bool
RevisedSolver::TryPatchResident(const SimplexBasis& basis,
                                const BoundOverrides& overrides,
                                bool* box_infeasible)
{
  if (ws_.resident_basis_id == 0 ||
      ws_.resident_model != static_cast<const void*>(&model_)) {
    return false;
  }
  if (ws_.resident_num_cols < n_ + m_ ||
      static_cast<int>(ws_.sp_lower.size()) != ws_.resident_num_cols ||
      static_cast<int>(ws_.sp_state.size()) != ws_.resident_num_cols ||
      static_cast<int>(ws_.sp_basic_of_row.size()) != m_ ||
      static_cast<int>(basis.rows.size()) != m_) {
    return false;
  }

  // Resolve the snapshot's prescription per row; bail on anything but
  // plain structural/slack entries (artificial rows are the cold
  // path's business) or on duplicate rows.
  std::vector<int> target(static_cast<std::size_t>(m_), -1);
  for (const SimplexBasis::RowEntry& entry : basis.rows) {
    if (entry.row_id < 0 || entry.row_id >= m_ ||
        target[static_cast<std::size_t>(entry.row_id)] >= 0)
      return false;
    int expect = -1;
    if (entry.kind == SimplexBasis::Kind::kStructural && entry.col_id >= 0 &&
        entry.col_id < n_) {
      expect = entry.col_id;
    } else if (entry.kind == SimplexBasis::Kind::kSlack &&
               entry.col_id >= 0 && entry.col_id < m_) {
      expect = n_ + entry.col_id;
    } else {
      return false;
    }
    target[static_cast<std::size_t>(entry.row_id)] = expect;
  }

  // Diff the basic SETS, not the row arrangements: every
  // refactorization re-pivots and so re-permutes rows, which makes the
  // loaded arrangement essentially unrelated to the snapshot's even
  // when the sets are a pivot or two apart (the sibling pattern).
  // Only columns genuinely entering the basis need factor work; a set
  // member sitting in a different row is bookkeeping, not mathematics.
  std::vector<char> wanted(static_cast<std::size_t>(ws_.resident_num_cols),
                           0);
  for (int r = 0; r < m_; ++r)
    wanted[static_cast<std::size_t>(target[static_cast<std::size_t>(r)])] = 1;
  const int max_patch = std::max(2, m_ / 4);
  std::vector<int> out_rows;  // rows whose basic column must leave
  for (int r = 0; r < m_; ++r) {
    const int loaded = ws_.sp_basic_of_row[static_cast<std::size_t>(r)];
    if (loaded >= n_ + m_) {
      // An evicted appended artificial would leave stale state behind
      // (those columns are not covered by SetNonbasicDefaults).
        return false;
    }
    if (!wanted[static_cast<std::size_t>(loaded)]) {
      out_rows.push_back(r);
      if (static_cast<int>(out_rows.size()) > max_patch)
        return false;  // patching stops paying off against a refactor
    }
  }
  std::vector<int> in_cols;  // prescribed columns not currently basic
  for (int r = 0; r < m_; ++r) {
    const int want = target[static_cast<std::size_t>(r)];
    if (ws_.sp_state[static_cast<std::size_t>(want)] != kBasic)
      in_cols.push_back(want);
  }
  if (in_cols.size() != out_rows.size())
    return false;  // states out of sync with the row file: do not touch

  if (!UpdateStructuralBounds(overrides)) {
    *box_infeasible = true;
    return true;
  }

  // Pivot each incoming column into some departing row: Ftran it and
  // greedily take the unmatched departing row with the largest pivot
  // magnitude (deterministic: ties keep the lowest row). A column with
  // no viable pivot, or an update the factorization rejects as
  // unstable, bails to the install route — which rebuilds everything
  // from scratch, so half-patched factors are harmless; the stale
  // residency claim is revoked so nothing can adopt them either.
  bool mutated = false;
  std::vector<char> matched(out_rows.size(), 0);
  for (const int want : in_cols) {
    ws_.sp_alpha.assign(static_cast<std::size_t>(m_), 0.0);
    for (int k = ws_.columns.start[static_cast<std::size_t>(want)];
         k < ws_.columns.start[static_cast<std::size_t>(want) + 1]; ++k) {
      ws_.sp_alpha[static_cast<std::size_t>(
          ws_.columns.row[static_cast<std::size_t>(k)])] =
          ws_.columns.value[static_cast<std::size_t>(k)];
    }
    ws_.factorization.Ftran(ws_.sp_alpha);
    int best = -1;
    double best_mag = kPivotTolerance;
    for (std::size_t o = 0; o < out_rows.size(); ++o) {
      if (matched[o])
        continue;
      const double mag = std::fabs(
          ws_.sp_alpha[static_cast<std::size_t>(out_rows[o])]);
      if (mag > best_mag) {
        best = static_cast<int>(o);
        best_mag = mag;
      }
    }
    if (best < 0 ||
        !ws_.factorization.Update(out_rows[static_cast<std::size_t>(best)],
                                  ws_.sp_alpha)) {
      if (mutated)
        ws_.resident_basis_id = 0;
      return false;
    }
    mutated = true;
    matched[static_cast<std::size_t>(best)] = 1;
    const int row = out_rows[static_cast<std::size_t>(best)];
    const int evicted = ws_.sp_basic_of_row[static_cast<std::size_t>(row)];
    ws_.sp_basic_of_row[static_cast<std::size_t>(row)] = want;
    ws_.sp_state[static_cast<std::size_t>(want)] = kBasic;
    ws_.sp_state[static_cast<std::size_t>(evicted)] = kAtLower;
  }

  // Same basic set as the snapshot now, possibly in a different row
  // arrangement — the same accepted trade the set-adoption route
  // makes. Park every nonbasic column exactly as an install would, so
  // the starting vertex matches InstallWarmBasis bit for bit.
  num_cols_ = ws_.resident_num_cols;
  first_artificial_ = ws_.resident_first_artificial;
  SetNonbasicDefaults(&basis);
  for (int r = 0; r < m_; ++r) {
    ws_.sp_state[static_cast<std::size_t>(
        ws_.sp_basic_of_row[static_cast<std::size_t>(r)])] = kBasic;
  }
  ComputeBeta();
  return true;
}

/** Re-parks every nonbasic structural column on a bound that exists
 * under the current (child) bounds, keeping the previous side where
 * possible so the accompanying basis stays meaningful. */
void
RevisedSolver::ReparkNonbasicStructurals()
{
  for (int j = 0; j < n_; ++j) {
    const std::size_t sj = static_cast<std::size_t>(j);
    if (ws_.sp_state[sj] == kBasic)
      continue;
    const double lo = ws_.sp_lower[sj];
    const double hi = ws_.sp_upper[sj];
    if (ws_.sp_state[sj] == kAtUpper && std::isfinite(hi)) {
      ws_.sp_value[sj] = hi;
    } else if (std::isfinite(lo)) {
      ws_.sp_state[sj] = kAtLower;
      ws_.sp_value[sj] = lo;
    } else if (std::isfinite(hi)) {
      ws_.sp_state[sj] = kAtUpper;
      ws_.sp_value[sj] = hi;
    } else {
      ws_.sp_state[sj] = kFreeAtZero;
      ws_.sp_value[sj] = 0.0;
    }
  }
}

/** Primal feasibility gate over the basic values; on success clamps the
 * within-tolerance roundoff into the bounds and returns true. */
bool
RevisedSolver::PrimalFeasibleClamp()
{
  for (int r = 0; r < m_; ++r) {
    const int b = ws_.sp_basic_of_row[static_cast<std::size_t>(r)];
    const double lo = ws_.sp_lower[static_cast<std::size_t>(b)];
    const double hi = ws_.sp_upper[static_cast<std::size_t>(b)];
    if (ws_.sp_beta[static_cast<std::size_t>(r)] < lo - kWarmFeasTolerance ||
        ws_.sp_beta[static_cast<std::size_t>(r)] > hi + kWarmFeasTolerance)
      return false;
  }
  for (int r = 0; r < m_; ++r) {
    const int b = ws_.sp_basic_of_row[static_cast<std::size_t>(r)];
    double& beta = ws_.sp_beta[static_cast<std::size_t>(r)];
    beta = std::min(std::max(beta, ws_.sp_lower[static_cast<std::size_t>(b)]),
                    ws_.sp_upper[static_cast<std::size_t>(b)]);
  }
  return true;
}

/**
 * Dual feasibility of the current basis under the Phase-2 costs: every
 * nonbasic column's reduced cost has the optimal sign for the side it
 * sits on. A branching child inherits this automatically (costs and
 * basis are the parent's; only bounds moved), which is what licenses
 * the dual-simplex repair instead of a cold Phase 1.
 */
bool
RevisedSolver::DualFeasibleBasis()
{
  ComputeDuals(/*phase_one=*/false);
  const int limit = std::min(num_cols_, first_artificial_);
  for (int j = 0; j < limit; ++j) {
    const signed char s = ws_.sp_state[static_cast<std::size_t>(j)];
    if (s == kBasic)
      continue;
    if (ws_.sp_upper[static_cast<std::size_t>(j)] -
            ws_.sp_lower[static_cast<std::size_t>(j)] <= kFixedTolerance)
      continue;  // fixed columns never move; their sign is irrelevant
    const double rc = ReducedCost(j, /*phase_one=*/false);
    if (s == kAtLower && rc < -kDualFeasTolerance)
      return false;
    if (s == kAtUpper && rc > kDualFeasTolerance)
      return false;
    if (s == kFreeAtZero && std::fabs(rc) > kDualFeasTolerance)
      return false;
  }
  return true;
}

bool
RevisedSolver::InstallWarmBasis(const SimplexBasis& basis)
{
  ws_.sp_basic_of_row.assign(static_cast<std::size_t>(m_), -1);
  std::vector<char> used(static_cast<std::size_t>(num_cols_), 0);

  for (const SimplexBasis::RowEntry& entry : basis.rows) {
    if (entry.row_id < 0 || entry.row_id >= m_)
      continue;  // dense bound row or stale constraint; skip
    if (ws_.sp_basic_of_row[static_cast<std::size_t>(entry.row_id)] >= 0)
      continue;
    int col = -1;
    switch (entry.kind) {
      case SimplexBasis::Kind::kStructural:
        // A variable the child has since fixed (branch pin, propagation)
        // stays basic: the basis then has exactly the parent's columns,
        // which are provably nonsingular, and the dual ratio test drives
        // the variable onto its bound through a proper pivot. The old
        // swap-for-slack fallback routinely produced a singular or
        // dual-infeasible basis (replacing a structural column with a
        // unit column changes the span), which showed up as ~1/3 of all
        // warm installs failing back to the cold two-phase path.
        if (entry.col_id >= 0 && entry.col_id < n_)
          col = entry.col_id;
        break;
      case SimplexBasis::Kind::kSlack:
        if (entry.col_id >= 0 && entry.col_id < m_)
          col = n_ + entry.col_id;
        break;
      case SimplexBasis::Kind::kArtificial:
        // A basic artificial sits at zero; recreate it fixed at zero.
        col = AppendColumn(entry.row_id, 1.0, 0.0, 0.0);
        used.push_back(0);
        break;
      case SimplexBasis::Kind::kNone:
        break;
    }
    if (col < 0 || used[static_cast<std::size_t>(col)])
      continue;
    used[static_cast<std::size_t>(col)] = 1;
    ws_.sp_basic_of_row[static_cast<std::size_t>(entry.row_id)] = col;
  }

  // Unclaimed rows fall back to their own slack, or a zero-fixed
  // artificial if another row already claimed that slack.
  for (int i = 0; i < m_; ++i) {
    if (ws_.sp_basic_of_row[static_cast<std::size_t>(i)] >= 0)
      continue;
    const int slack = n_ + i;
    if (!used[static_cast<std::size_t>(slack)]) {
      used[static_cast<std::size_t>(slack)] = 1;
      ws_.sp_basic_of_row[static_cast<std::size_t>(i)] = slack;
    } else {
      ws_.sp_basic_of_row[static_cast<std::size_t>(i)] =
          AppendColumn(i, 1.0, 0.0, 0.0);
      used.push_back(1);
    }
  }

  SetNonbasicDefaults(&basis);
  for (int i = 0; i < m_; ++i) {
    ws_.sp_state[static_cast<std::size_t>(
        ws_.sp_basic_of_row[static_cast<std::size_t>(i)])] = kBasic;
  }

  if (!RefactorizeBasis())
    return false;  // singular under the child bounds; cold path decides
  ComputeBeta();
  return true;
}

bool
RevisedSolver::RefactorizeBasis()
{
  return ws_.factorization.Refactorize(ws_.columns, ws_.sp_basic_of_row);
}

void
RevisedSolver::ComputeBeta()
{
  ws_.sp_rhs.assign(static_cast<std::size_t>(m_), 0.0);
  for (int i = 0; i < m_; ++i) {
    ws_.sp_rhs[static_cast<std::size_t>(i)] =
        model_.constraints()[static_cast<std::size_t>(i)].rhs;
  }
  for (int j = 0; j < num_cols_; ++j) {
    if (ws_.sp_state[static_cast<std::size_t>(j)] == kBasic)
      continue;
    const double v = ws_.sp_value[static_cast<std::size_t>(j)];
    if (v == 0.0)
      continue;
    for (int k = ws_.columns.start[static_cast<std::size_t>(j)];
         k < ws_.columns.start[static_cast<std::size_t>(j) + 1]; ++k) {
      ws_.sp_rhs[static_cast<std::size_t>(
          ws_.columns.row[static_cast<std::size_t>(k)])] -=
          ws_.columns.value[static_cast<std::size_t>(k)] * v;
    }
  }
  ws_.factorization.Ftran(ws_.sp_rhs);
  ws_.sp_beta.assign(ws_.sp_rhs.begin(), ws_.sp_rhs.end());
}

void
RevisedSolver::ComputeDuals(bool phase_one)
{
  ws_.sp_dual.assign(static_cast<std::size_t>(m_), 0.0);
  for (int r = 0; r < m_; ++r) {
    ws_.sp_dual[static_cast<std::size_t>(r)] =
        Cost(ws_.sp_basic_of_row[static_cast<std::size_t>(r)], phase_one);
  }
  ws_.factorization.Btran(ws_.sp_dual);
}

double
RevisedSolver::Cost(int j, bool phase_one) const
{
  if (phase_one)
    return j >= first_artificial_ ? 1.0 : 0.0;
  return ws_.sp_cost[static_cast<std::size_t>(j)];
}

double
RevisedSolver::ReducedCost(int j, bool phase_one) const
{
  double rc = Cost(j, phase_one);
  for (int k = ws_.columns.start[static_cast<std::size_t>(j)];
       k < ws_.columns.start[static_cast<std::size_t>(j) + 1]; ++k) {
    rc -= ws_.columns.value[static_cast<std::size_t>(k)] *
          ws_.sp_dual[static_cast<std::size_t>(
              ws_.columns.row[static_cast<std::size_t>(k)])];
  }
  return rc;
}

double
RevisedSolver::Objective(bool phase_one) const
{
  double obj = 0.0;
  for (int j = 0; j < num_cols_; ++j) {
    if (ws_.sp_state[static_cast<std::size_t>(j)] != kBasic)
      obj += Cost(j, phase_one) * ws_.sp_value[static_cast<std::size_t>(j)];
  }
  for (int r = 0; r < m_; ++r) {
    obj += Cost(ws_.sp_basic_of_row[static_cast<std::size_t>(r)], phase_one) *
           ws_.sp_beta[static_cast<std::size_t>(r)];
  }
  return obj;
}

/**
 * Picks the entering column, or -1 at an optimum. Partial pricing:
 * columns are scanned in rotating windows starting at a persistent
 * cursor, and the best (most negative improving) reduced cost within
 * the first window containing any eligible column wins. Bland mode
 * scans everything and takes the lowest eligible index.
 */
int
RevisedSolver::PriceEntering(bool bland, bool phase_one, double* reduced_cost)
{
  // Artificials may move in Phase 1 only; in Phase 2 they are pinned.
  const int limit = phase_one ? num_cols_ : std::min(num_cols_, first_artificial_);
  if (limit <= 0)
    return -1;

  const auto eligible = [&](int j, double* d) {
    const signed char s = ws_.sp_state[static_cast<std::size_t>(j)];
    if (s == kBasic)
      return false;
    if (ws_.sp_upper[static_cast<std::size_t>(j)] -
            ws_.sp_lower[static_cast<std::size_t>(j)] <= kFixedTolerance)
      return false;
    const double rc = ReducedCost(j, phase_one);
    const bool can_increase = s == kAtLower || s == kFreeAtZero;
    const bool can_decrease = s == kAtUpper || s == kFreeAtZero;
    if ((can_increase && rc < -tol_) || (can_decrease && rc > tol_)) {
      *d = rc;
      return true;
    }
    return false;
  };

  if (bland) {
    for (int j = 0; j < limit; ++j) {
      if (eligible(j, reduced_cost))
        return j;
    }
    return -1;
  }

  const int window = std::max(32, limit / 8);
  int cursor = pricing_cursor_ % limit;
  int scanned = 0;
  while (scanned < limit) {
    int best = -1;
    double best_score = tol_;
    for (int t = 0; t < window && scanned < limit; ++t, ++scanned) {
      const int j = cursor;
      cursor = cursor + 1 == limit ? 0 : cursor + 1;
      double d = 0.0;
      if (eligible(j, &d) && std::fabs(d) > best_score) {
        best_score = std::fabs(d);
        best = j;
        *reduced_cost = d;
      }
    }
    if (best >= 0) {
      pricing_cursor_ = cursor;
      return best;
    }
  }
  return -1;
}

LpStatus
RevisedSolver::Iterate(bool phase_one, int max_iters, int& iterations)
{
  int stalled = 0;
  const int bland_threshold = 2 * (m_ + num_cols_);
  double last_objective = kInf;
  while (true) {
    if (iterations >= max_iters)
      return LpStatus::kIterationLimit;
    const bool bland = stalled > bland_threshold;

    if (m_ > 0)
      ComputeDuals(phase_one);
    double dq = 0.0;
    const int q = PriceEntering(bland, phase_one, &dq);
    if (q < 0)
      return LpStatus::kOptimal;
    ++iterations;
    // dq < 0 means the entering variable wants to increase.
    const double dir = dq < 0.0 ? 1.0 : -1.0;

    // alpha = P B^-1 a_q, the entering column in row coordinates.
    ws_.sp_alpha.assign(static_cast<std::size_t>(m_), 0.0);
    for (int k = ws_.columns.start[static_cast<std::size_t>(q)];
         k < ws_.columns.start[static_cast<std::size_t>(q) + 1]; ++k) {
      ws_.sp_alpha[static_cast<std::size_t>(
          ws_.columns.row[static_cast<std::size_t>(k)])] =
          ws_.columns.value[static_cast<std::size_t>(k)];
    }
    ws_.factorization.Ftran(ws_.sp_alpha);

    // Bounded ratio test: the step is limited by the first basic
    // variable driven into one of its bounds, or by the entering
    // variable's own opposite bound (a bound flip, no basis change).
    int pr = -1;
    double best_t = kInf;
    double best_mag = 0.0;
    for (int r = 0; r < m_; ++r) {
      const double ar = dir * ws_.sp_alpha[static_cast<std::size_t>(r)];
      const int b = ws_.sp_basic_of_row[static_cast<std::size_t>(r)];
      const double beta = ws_.sp_beta[static_cast<std::size_t>(r)];
      double t;
      if (ar > kPivotTolerance) {
        const double lo = ws_.sp_lower[static_cast<std::size_t>(b)];
        if (lo == -kInf)
          continue;
        t = (beta - lo) / ar;
      } else if (ar < -kPivotTolerance) {
        const double hi = ws_.sp_upper[static_cast<std::size_t>(b)];
        if (hi == kInf)
          continue;
        t = (beta - hi) / ar;
      } else {
        continue;
      }
      if (t < 0.0)
        t = 0.0;  // tiny bound violations from roundoff
      const double mag = std::fabs(ar);
      if (t < best_t - kRatioTolerance) {
        best_t = t;
        pr = r;
        best_mag = mag;
      } else if (pr >= 0 && t < best_t + kRatioTolerance) {
        // Tie: Bland wants the smallest basic index (anti-cycling);
        // otherwise the largest pivot magnitude (stability).
        const bool take =
            bland ? b < ws_.sp_basic_of_row[static_cast<std::size_t>(pr)]
                  : mag > best_mag;
        if (take) {
          best_t = std::min(best_t, t);
          pr = r;
          best_mag = mag;
        }
      }
    }

    const double range = ws_.sp_upper[static_cast<std::size_t>(q)] -
                         ws_.sp_lower[static_cast<std::size_t>(q)];
    if (range <= best_t && std::isfinite(range)) {
      // Bound flip: q jumps to its opposite bound; the basis stays.
      const double t = range;
      for (int r = 0; r < m_; ++r) {
        ws_.sp_beta[static_cast<std::size_t>(r)] -=
            dir * t * ws_.sp_alpha[static_cast<std::size_t>(r)];
      }
      ws_.sp_state[static_cast<std::size_t>(q)] =
          dir > 0.0 ? kAtUpper : kAtLower;
      ws_.sp_value[static_cast<std::size_t>(q)] =
          dir > 0.0 ? ws_.sp_upper[static_cast<std::size_t>(q)]
                    : ws_.sp_lower[static_cast<std::size_t>(q)];
    } else if (pr < 0) {
      return LpStatus::kUnbounded;
    } else {
      // Absorb the pivot into the factors *before* touching any solver
      // state. A rejected (unstable) update leaves both the factors and
      // the iterate untouched, so stale-factor drift — which can
      // manufacture a phantom pivot entry out of a structurally zero
      // one — costs a refactorization and a re-price, never a
      // half-committed pivot on a singular basis.
      const bool fresh = ws_.factorization.updates_since_refactor() == 0;
      const bool absorbed = ws_.factorization.Update(pr, ws_.sp_alpha);
      if (!absorbed && !fresh) {
        if (!RefactorizeBasis())
          return LpStatus::kIterationLimit;  // numerical give-up; see Solve
        ComputeBeta();
        continue;  // re-price against accurate factors
      }
      const double t = best_t;
      const double xq = ws_.sp_value[static_cast<std::size_t>(q)] + dir * t;
      for (int r = 0; r < m_; ++r) {
        if (r != pr) {
          ws_.sp_beta[static_cast<std::size_t>(r)] -=
              dir * t * ws_.sp_alpha[static_cast<std::size_t>(r)];
        }
      }
      const int leaving = ws_.sp_basic_of_row[static_cast<std::size_t>(pr)];
      const double ar = dir * ws_.sp_alpha[static_cast<std::size_t>(pr)];
      if (ar > 0.0) {
        ws_.sp_value[static_cast<std::size_t>(leaving)] =
            ws_.sp_lower[static_cast<std::size_t>(leaving)];
        ws_.sp_state[static_cast<std::size_t>(leaving)] = kAtLower;
      } else {
        ws_.sp_value[static_cast<std::size_t>(leaving)] =
            ws_.sp_upper[static_cast<std::size_t>(leaving)];
        ws_.sp_state[static_cast<std::size_t>(leaving)] = kAtUpper;
      }
      ws_.sp_state[static_cast<std::size_t>(q)] = kBasic;
      ws_.sp_value[static_cast<std::size_t>(q)] = xq;
      ws_.sp_beta[static_cast<std::size_t>(pr)] = xq;
      ws_.sp_basic_of_row[static_cast<std::size_t>(pr)] = q;
      // An update rejected on *fresh* factors means the pair really is
      // marginal; the pivot magnitude still cleared kPivotTolerance, so
      // force the post-pivot basis through a refactorization instead.
      if (!absorbed ||
          ws_.factorization.updates_since_refactor() >= refactor_interval_) {
        // A refusal here means a pivot chosen through drifted update
        // factors landed on a structurally dependent column (drift can
        // exceed kPivotTolerance between refactorizations, so a
        // structurally zero entry can masquerade as a valid pivot).
        // Give up; Solve retries cold with a near-paranoid refactor
        // interval where phantom pivots cannot arise.
        if (!RefactorizeBasis())
          return LpStatus::kIterationLimit;
        ComputeBeta();
      }
    }

    const double objective = Objective(phase_one);
    if (objective < last_objective - tol_) {
      stalled = 0;
      last_objective = objective;
    } else {
      ++stalled;
    }
  }
}

/**
 * Bounded-variable dual simplex: starting from a dual-feasible basis,
 * drives primal infeasibilities out one leaving variable at a time
 * while the reduced-cost signs are preserved by the dual ratio test.
 * Returns kOptimal once every basic value is back inside its bounds
 * (the caller finishes with the primal Phase 2), kInfeasible when an
 * infeasible row admits no eligible entering column — with a
 * dual-feasible basis that row is a Farkas certificate — or
 * kIterationLimit on a stall, which the caller treats as "go cold".
 */
LpStatus
RevisedSolver::IterateDual(int max_iters, int& iterations)
{
  int degenerate = 0;
  const int bland_threshold = 2 * (m_ + num_cols_);
  const int limit = std::min(num_cols_, first_artificial_);
  // Per-call pivot budget. A dual repair that has not converged within a
  // small multiple of m is degenerate cycling, and every pivot past that
  // point compounds Forrest–Tomlin representation error: on room-scale
  // bases the drift eventually corrupts the ratio test badly enough to
  // admit a structurally dependent entering column (observed as a
  // refactorization failure tens of thousands of pivots in). A cold
  // two-phase solve costs ~2m pivots, so bailing here is also the faster
  // route. Deterministic: depends only on m and the pivot count.
  const int dual_pivot_budget = 5 * m_ + 100;
  int dual_pivots_here = 0;
  while (true) {
    if (iterations >= max_iters)
      return LpStatus::kIterationLimit;
    if (dual_pivots_here >= dual_pivot_budget)
      return LpStatus::kIterationLimit;  // caller goes cold

    // Leaving row: the basic variable farthest outside its bounds
    // (deterministic: strictly-worse wins, so ties keep the lowest
    // row). delta is the signed violation.
    int pr = -1;
    double worst = kWarmFeasTolerance;
    double delta = 0.0;
    for (int r = 0; r < m_; ++r) {
      const int b = ws_.sp_basic_of_row[static_cast<std::size_t>(r)];
      const double beta = ws_.sp_beta[static_cast<std::size_t>(r)];
      const double below =
          ws_.sp_lower[static_cast<std::size_t>(b)] - beta;
      const double above =
          beta - ws_.sp_upper[static_cast<std::size_t>(b)];
      if (below > worst) {
        worst = below;
        pr = r;
        delta = -below;
      }
      if (above > worst) {
        worst = above;
        pr = r;
        delta = above;
      }
    }
    if (pr < 0)
      return LpStatus::kOptimal;  // primal feasible again
    ++iterations;
    ++dual_pivots_;
    ++dual_pivots_here;
    const bool bland = degenerate > bland_threshold;

    // rho = row pr of the basis inverse (e_pr through Btran); the
    // pivot-row entry of column j is then a plain dot product.
    ws_.sp_dj.assign(static_cast<std::size_t>(m_), 0.0);
    ws_.sp_dj[static_cast<std::size_t>(pr)] = 1.0;
    ws_.factorization.Btran(ws_.sp_dj);
    ComputeDuals(/*phase_one=*/false);

    // Dual ratio test: among columns whose entry moves the leaving
    // variable toward its violated bound, the smallest |rc/alpha_r|
    // keeps every reduced-cost sign intact. Ties prefer the largest
    // pivot magnitude (stability), then the lowest index; Bland mode
    // (after a degenerate stall) takes the lowest eligible index
    // outright.
    const double dsign = delta > 0.0 ? 1.0 : -1.0;
    int q = -1;
    double best_ratio = kInf;
    double best_mag = 0.0;
    for (int j = 0; j < limit; ++j) {
      const std::size_t sj = static_cast<std::size_t>(j);
      const signed char s = ws_.sp_state[sj];
      if (s == kBasic)
        continue;
      if (ws_.sp_upper[sj] - ws_.sp_lower[sj] <= kFixedTolerance)
        continue;
      double arj = 0.0;
      for (int k = ws_.columns.start[sj]; k < ws_.columns.start[sj + 1];
           ++k) {
        arj += ws_.columns.value[static_cast<std::size_t>(k)] *
               ws_.sp_dj[static_cast<std::size_t>(
                   ws_.columns.row[static_cast<std::size_t>(k)])];
      }
      if (std::fabs(arj) <= kRatioTolerance)
        continue;
      const bool ok = s == kFreeAtZero ||
                      (s == kAtLower && dsign * arj > 0.0) ||
                      (s == kAtUpper && dsign * arj < 0.0);
      if (!ok)
        continue;
      if (bland) {
        q = j;
        break;
      }
      const double ratio =
          std::fabs(ReducedCost(j, /*phase_one=*/false)) / std::fabs(arj);
      const double mag = std::fabs(arj);
      bool take = false;
      if (q < 0 || ratio < best_ratio - kRatioTolerance)
        take = true;
      else if (ratio < best_ratio + kRatioTolerance && mag > best_mag)
        take = true;
      if (take) {
        best_ratio = q < 0 ? ratio : std::min(best_ratio, ratio);
        best_mag = mag;
        q = j;
      }
    }
    if (q < 0) {
      // The infeasibility verdict is trusted as a Farkas certificate, so
      // it must never rest on drifted update factors: resharpen first and
      // re-price; only a verdict reached on fresh factors is returned.
      if (ws_.factorization.updates_since_refactor() > 0) {
        if (!RefactorizeBasis())
          return LpStatus::kIterationLimit;  // caller goes cold
        ComputeBeta();
        continue;
      }
      return LpStatus::kInfeasible;
    }

    // Pivot: q enters through the factorized column, the leaving
    // variable lands exactly on its violated bound.
    ws_.sp_alpha.assign(static_cast<std::size_t>(m_), 0.0);
    for (int k = ws_.columns.start[static_cast<std::size_t>(q)];
         k < ws_.columns.start[static_cast<std::size_t>(q) + 1]; ++k) {
      ws_.sp_alpha[static_cast<std::size_t>(
          ws_.columns.row[static_cast<std::size_t>(k)])] =
          ws_.columns.value[static_cast<std::size_t>(k)];
    }
    ws_.factorization.Ftran(ws_.sp_alpha);
    const double arq = ws_.sp_alpha[static_cast<std::size_t>(pr)];
    if (std::fabs(arq) <= kPivotTolerance) {
      // The factorized entry is too small to pivot on. With stale
      // factors that is usually drift: resharpen and re-price this row.
      // With fresh factors it is structural — hand the solve to the
      // cold path rather than loop on the same tiny pivot.
      if (ws_.factorization.updates_since_refactor() == 0 ||
          !RefactorizeBasis())
        return LpStatus::kIterationLimit;
      ComputeBeta();
      ++degenerate;
      continue;
    }
    // As in the primal loop: absorb the pivot into the factors first,
    // so a stability rejection can fall back to refactorize-and-reprice
    // without unwinding any committed state.
    const bool fresh = ws_.factorization.updates_since_refactor() == 0;
    const bool absorbed = ws_.factorization.Update(pr, ws_.sp_alpha);
    if (!absorbed && !fresh) {
      if (!RefactorizeBasis())
        return LpStatus::kIterationLimit;  // caller goes cold
      ComputeBeta();
      ++degenerate;
      continue;
    }
    const int leaving = ws_.sp_basic_of_row[static_cast<std::size_t>(pr)];
    const double bound = delta > 0.0
                             ? ws_.sp_upper[static_cast<std::size_t>(leaving)]
                             : ws_.sp_lower[static_cast<std::size_t>(leaving)];
    const double step =
        (ws_.sp_beta[static_cast<std::size_t>(pr)] - bound) / arq;
    for (int r = 0; r < m_; ++r) {
      if (r != pr) {
        ws_.sp_beta[static_cast<std::size_t>(r)] -=
            step * ws_.sp_alpha[static_cast<std::size_t>(r)];
      }
    }
    ws_.sp_value[static_cast<std::size_t>(leaving)] = bound;
    ws_.sp_state[static_cast<std::size_t>(leaving)] =
        delta > 0.0 ? kAtUpper : kAtLower;
    const double xq = ws_.sp_value[static_cast<std::size_t>(q)] + step;
    ws_.sp_state[static_cast<std::size_t>(q)] = kBasic;
    ws_.sp_value[static_cast<std::size_t>(q)] = xq;
    ws_.sp_beta[static_cast<std::size_t>(pr)] = xq;
    ws_.sp_basic_of_row[static_cast<std::size_t>(pr)] = q;
    if (!absorbed ||
        ws_.factorization.updates_since_refactor() >= refactor_interval_) {
      // A refactorization refusal here means the committed pivot chain —
      // each step individually clearing kPivotTolerance through the
      // updated factors — has drifted onto a (near-)singular column set.
      // The warm path must never change an answer, so hand the solve to
      // the cold two-phase path, which rebuilds everything from scratch.
      if (!RefactorizeBasis())
        return LpStatus::kIterationLimit;  // caller goes cold
      ComputeBeta();
    }
    // Bland mode is sticky: once a degenerate stall forced it, leaving
    // it on a single improving step could re-enter the same cycle.
    if (bland || best_ratio <= tol_)
      ++degenerate;
    else
      degenerate = 0;
  }
}

LpStatus
RevisedSolver::RunTwoPhase(int max_iters, int& iterations)
{
  SetupColdBasis();
  if (m_ > 0) {
    FLEX_CHECK_MSG(RefactorizeBasis(), "initial simplex basis is singular");
    ComputeBeta();
  }

  if (num_cols_ > first_artificial_) {
    const LpStatus status = Iterate(/*phase_one=*/true, max_iters, iterations);
    if (status != LpStatus::kOptimal) {
      // Phase 1 minimizes a sum bounded below by zero; "unbounded" can
      // only be a numerical artifact of an infeasible system.
      return status == LpStatus::kUnbounded ? LpStatus::kInfeasible : status;
    }
    double infeasibility = 0.0;
    for (int r = 0; r < m_; ++r) {
      if (ws_.sp_basic_of_row[static_cast<std::size_t>(r)] >= first_artificial_)
        infeasibility += std::fabs(ws_.sp_beta[static_cast<std::size_t>(r)]);
    }
    if (infeasibility > kInfeasibilityTolerance)
      return LpStatus::kInfeasible;
    // Pin artificials at zero; basic ones stay basic but can no longer
    // move off zero, and Phase-2 pricing never lets one re-enter.
    for (int a = first_artificial_; a < num_cols_; ++a) {
      ws_.sp_upper[static_cast<std::size_t>(a)] = 0.0;
      if (ws_.sp_state[static_cast<std::size_t>(a)] != kBasic) {
        ws_.sp_state[static_cast<std::size_t>(a)] = kAtLower;
        ws_.sp_value[static_cast<std::size_t>(a)] = 0.0;
      }
    }
  }

  return Iterate(/*phase_one=*/false, max_iters, iterations);
}

LpResult
RevisedSolver::Solve(const BoundOverrides& overrides,
                     const SimplexBasis* warm_basis, SimplexBasis* basis_out)
{
  LpResult result;
  if (basis_out != nullptr)
    basis_out->clear();
  const BasisFactorization::Stats before = ws_.factorization.stats();
  n_ = model_.NumVariables();
  m_ = model_.NumConstraints();
  FLEX_REQUIRE(overrides.empty() || static_cast<int>(overrides.size()) == n_,
               "bound overrides must be empty or cover every variable");

  const int max_iters = max_iterations_ > 0
                            ? max_iterations_
                            : 50 * (n_ + 3 * m_) + 1000;
  int iterations = 0;
  LpStatus status = LpStatus::kIterationLimit;
  bool solved = false;
  bool box_infeasible = false;

  auto finish_counters = [&] {
    const BasisFactorization::Stats after = ws_.factorization.stats();
    result.refactors = static_cast<int>(after.refactors - before.refactors);
    result.eta_updates =
        static_cast<int>(after.eta_updates - before.eta_updates);
    result.dual_pivots = dual_pivots_;
  };

  // Warm cleanup shared by the resident and install routes: a basis
  // still primal feasible goes straight to Phase 2; one pushed out of
  // primal range by the child bounds but still dual feasible (the
  // normal state of a branching child) is repaired by dual pivots
  // first. Either way Phase 1 is skipped. A dual-simplex infeasibility
  // verdict is trusted: with a dual-feasible basis the blocked row is a
  // Farkas certificate.
  auto run_warm = [&]() -> bool {
    if (PrimalFeasibleClamp()) {
      status = Iterate(/*phase_one=*/false, max_iters, iterations);
      return status == LpStatus::kOptimal;
    }
    if (!DualFeasibleBasis())
      return false;
    const LpStatus dual_status = IterateDual(max_iters, iterations);
    if (dual_status == LpStatus::kOptimal && PrimalFeasibleClamp()) {
      used_dual_ = true;
      status = Iterate(/*phase_one=*/false, max_iters, iterations);
      return status == LpStatus::kOptimal;
    }
    if (dual_status == LpStatus::kInfeasible) {
      used_dual_ = true;
      status = LpStatus::kInfeasible;
      return true;
    }
    return false;
  };

  if (warm_basis != nullptr && !warm_basis->empty() && m_ > 0) {
    result.warm_start_attempted = true;
    bool warm_ready = false;
    if (TryAdoptResident(*warm_basis)) {
      if (!UpdateStructuralBounds(overrides)) {
        box_infeasible = true;
      } else {
        ReparkNonbasicStructurals();
        ComputeBeta();
        warm_ready = true;
      }
    } else if (TryPatchResident(*warm_basis, overrides, &box_infeasible)) {
      warm_ready = !box_infeasible;
    } else if (PrepareBounds(overrides)) {
      BuildColumns();
      SetupCosts();
      warm_ready = InstallWarmBasis(*warm_basis);
    } else {
      box_infeasible = true;
    }
    if (warm_ready && run_warm()) {
      solved = true;
      result.warm_start_used = true;
      result.warm_dual_restart = used_dual_;
    }
    if (!solved && !box_infeasible) {
      // A warm basis must never change the answer, only the route:
      // rebuild the column file (installs may have appended artificial
      // columns, and the warm iterations moved everything) and run the
      // cold two-phase path. Structural bounds in sp_lower/sp_upper are
      // already the child's, so they carry over as-is.
      BuildColumns();
      SetupCosts();
    }
  } else if (!PrepareBounds(overrides)) {
    box_infeasible = true;
  } else {
    BuildColumns();
    SetupCosts();
  }
  if (box_infeasible) {
    // An empty bound box is decided before the factors are touched, so
    // whatever resident claim the workspace held is still accurate —
    // keep it for the next solve. (If the failing route was
    // PrepareBounds, its truncated bound arrays invalidate the claim
    // through the adoption size checks instead.)
    result.status = LpStatus::kInfeasible;
    finish_counters();
    return result;
  }
  if (!solved)
    status = RunTwoPhase(max_iters, iterations);
  if (status == LpStatus::kIterationLimit && iterations < max_iters) {
    // Numerical give-up, not budget exhaustion: somewhere a
    // refactorization refused a basis assembled through drifted
    // Forrest–Tomlin factors (between refactorizations the
    // representation error can exceed kPivotTolerance, letting a
    // structurally dependent column pass a ratio test). Retry the cold
    // two-phase path with a near-paranoid refactor interval — factors
    // are then always fresh when pivots are chosen, so phantom pivots
    // cannot arise. Deterministic: the retry depends only on the solve
    // inputs. Callers prune nodes whose LP is not optimal, so quietly
    // returning kIterationLimit here could silently change answers.
    const int saved_interval = refactor_interval_;
    refactor_interval_ = 4;
    status = RunTwoPhase(max_iters, iterations);
    refactor_interval_ = saved_interval;
  }

  result.status = status;
  result.iterations = iterations;
  // Every pivot commits its Forrest–Tomlin update before touching the
  // iterate, so at ANY exit — optimal or not — the loaded factors, row
  // file, and states are mutually consistent and realise a valid basis
  // of this model. Claim residency under a fresh id (no snapshot
  // carries it; only the content/patch adoption routes can match), so
  // the solve after a pruned-infeasible child can still patch instead
  // of refactorizing. A successful extraction below upgrades the claim
  // to the snapshot's own id.
  if (m_ > 0 && static_cast<int>(ws_.sp_basic_of_row.size()) == m_) {
    ws_.resident_basis_id = ++g_next_basis_id;
    ws_.resident_model = static_cast<const void*>(&model_);
    ws_.resident_num_cols = num_cols_;
    ws_.resident_first_artificial = first_artificial_;
  } else {
    ws_.resident_basis_id = 0;
  }
  if (status == LpStatus::kOptimal) {
    // Conditional polish: refactorize before extraction only when
    // enough Forrest–Tomlin updates have accumulated for beta and the
    // duals to have drifted; short warm re-solves (the common
    // branching-child case) extract straight from the loaded factors.
    if (m_ > 0 &&
        ws_.factorization.updates_since_refactor() >= kPolishUpdateThreshold &&
        RefactorizeBasis())
      ComputeBeta();
    for (int r = 0; r < m_; ++r) {
      ws_.sp_value[static_cast<std::size_t>(
          ws_.sp_basic_of_row[static_cast<std::size_t>(r)])] =
          ws_.sp_beta[static_cast<std::size_t>(r)];
    }
    result.x.assign(ws_.sp_value.begin(),
                    ws_.sp_value.begin() + static_cast<std::ptrdiff_t>(n_));
    result.objective = model_.ObjectiveValue(result.x);
    ComputeDuals(/*phase_one=*/false);
    result.dual.assign(ws_.sp_dual.begin(), ws_.sp_dual.end());
    result.reduced_costs.assign(static_cast<std::size_t>(n_), 0.0);
    for (int j = 0; j < n_; ++j) {
      result.reduced_costs[static_cast<std::size_t>(j)] =
          ReducedCost(j, /*phase_one=*/false);
    }
    if (basis_out != nullptr) {
      basis_out->rows.reserve(static_cast<std::size_t>(m_));
      for (int r = 0; r < m_; ++r) {
        const int b = ws_.sp_basic_of_row[static_cast<std::size_t>(r)];
        SimplexBasis::RowEntry entry;
        entry.row_id = r;
        if (b < n_) {
          entry.kind = SimplexBasis::Kind::kStructural;
          entry.col_id = b;
        } else if (b < n_ + m_) {
          entry.kind = SimplexBasis::Kind::kSlack;
          entry.col_id = b - n_;
        } else {
          entry.kind = SimplexBasis::Kind::kArtificial;
          entry.col_id = ws_.columns.row[static_cast<std::size_t>(
              ws_.columns.start[static_cast<std::size_t>(b)])];
        }
        basis_out->rows.push_back(entry);
      }
      for (int j = 0; j < n_; ++j) {
        if (ws_.sp_state[static_cast<std::size_t>(j)] == kAtUpper)
          basis_out->at_upper.push_back(j);
      }
      // Tag the snapshot and leave the workspace claiming it: a
      // follow-up warm solve handed this exact snapshot (the dive /
      // re-solve pattern) adopts the loaded factors with zero rebuild.
      basis_out->id = ++g_next_basis_id;
      ws_.resident_basis_id = basis_out->id;
      ws_.resident_model = static_cast<const void*>(&model_);
      ws_.resident_num_cols = num_cols_;
      ws_.resident_first_artificial = first_artificial_;
    }
  }

  finish_counters();
  return result;
}

}  // namespace

LpResult
SolveRevised(const Model& model, const BoundOverrides& overrides,
             SimplexWorkspace* workspace, const SimplexBasis* warm_basis,
             SimplexBasis* basis_out, const SimplexSolver::Options& options)
{
  SimplexWorkspace local;
  SimplexWorkspace& ws = workspace != nullptr ? *workspace : local;
  RevisedSolver solver(model, ws, options);
  return solver.Solve(overrides, warm_basis, basis_out);
}

}  // namespace flex::solver
