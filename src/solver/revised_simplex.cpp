#include "revised_simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace flex::solver {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Rows whose pivot-column entry is below this do not block the ratio
 * test and are never chosen as pivots. */
constexpr double kRatioTolerance = 1e-9;

/** Absolute slack allowed when judging a warm basis primal feasible. */
constexpr double kWarmFeasTolerance = 1e-7;

/** Phase-1 optimum above this level of residual infeasibility means the
 * LP has no feasible point (matches the dense implementation). */
constexpr double kInfeasibilityTolerance = 1e-6;

/** A variable whose bound range is below this is treated as fixed: it
 * never enters the basis (a "flip" of a fixed variable would loop). */
constexpr double kFixedTolerance = 1e-12;

/** Where a nonbasic column currently sits. */
enum VarState : signed char {
  kBasic = 0,
  kAtLower = 1,
  kAtUpper = 2,
  kFreeAtZero = 3,  ///< both bounds infinite; parked at zero
};

/**
 * One LP solve over the column space [structural | slacks | artificials].
 * Structural column j is model variable j; the slack of row i is column
 * n + i with coefficient +1 and bounds encoding the relation
 * (<=: [0,inf), >=: (-inf,0], =: [0,0]); artificial columns are appended
 * on demand (cold Phase 1, warm installs of artificial snapshot rows).
 * Costs are kept in minimize orientation throughout.
 */
class RevisedSolver {
 public:
  RevisedSolver(const Model& model, SimplexWorkspace& ws,
                const SimplexSolver::Options& options)
      : model_(model), ws_(ws), tol_(options.tolerance),
        refactor_interval_(std::max(1, options.refactor_interval)),
        max_iterations_(options.max_iterations)
  {
  }

  LpResult Solve(const BoundOverrides& overrides,
                 const SimplexBasis* warm_basis, SimplexBasis* basis_out);

 private:
  bool PrepareBounds(const BoundOverrides& overrides);
  void BuildColumns();
  void SetupCosts();
  int AppendColumn(int entry_row, double coef, double lower, double upper);
  void SetNonbasicDefaults(const SimplexBasis* basis);
  void SetupColdBasis();
  bool InstallWarmBasis(const SimplexBasis& basis);
  bool RefactorizeBasis();
  void ComputeBeta();
  void ComputeDuals(bool phase_one);
  double Cost(int j, bool phase_one) const;
  double ReducedCost(int j, bool phase_one) const;
  double Objective(bool phase_one) const;
  int PriceEntering(bool bland, bool phase_one, double* reduced_cost);
  LpStatus RunTwoPhase(int max_iters, int& iterations);
  LpStatus Iterate(bool phase_one, int max_iters, int& iterations);

  const Model& model_;
  SimplexWorkspace& ws_;
  const double tol_;
  const int refactor_interval_;
  const int max_iterations_;

  int n_ = 0;          ///< structural columns (model variables)
  int m_ = 0;          ///< rows (model constraints)
  int num_cols_ = 0;   ///< total columns including slacks + artificials
  int first_artificial_ = 0;
  int pricing_cursor_ = 0;
};

bool
RevisedSolver::PrepareBounds(const BoundOverrides& overrides)
{
  n_ = model_.NumVariables();
  m_ = model_.NumConstraints();
  FLEX_REQUIRE(overrides.empty() || static_cast<int>(overrides.size()) == n_,
               "bound overrides must be empty or cover every variable");
  ws_.sp_lower.assign(static_cast<std::size_t>(n_), 0.0);
  ws_.sp_upper.assign(static_cast<std::size_t>(n_), 0.0);
  for (int j = 0; j < n_; ++j) {
    const Variable& v = model_.variables()[static_cast<std::size_t>(j)];
    double lo = v.lower;
    double hi = v.upper;
    if (!overrides.empty() && overrides[static_cast<std::size_t>(j)]) {
      lo = std::max(lo, overrides[static_cast<std::size_t>(j)]->first);
      hi = std::min(hi, overrides[static_cast<std::size_t>(j)]->second);
    }
    if (lo > hi + 1e-12)
      return false;
    ws_.sp_lower[static_cast<std::size_t>(j)] = lo;
    ws_.sp_upper[static_cast<std::size_t>(j)] = hi;
  }
  return true;
}

void
RevisedSolver::BuildColumns()
{
  BuildCsc(model_, &ws_.columns);
  ws_.sp_lower.resize(static_cast<std::size_t>(n_));
  ws_.sp_upper.resize(static_cast<std::size_t>(n_));
  for (int i = 0; i < m_; ++i) {
    ws_.columns.AppendSingleton(i, 1.0);
    switch (model_.constraints()[static_cast<std::size_t>(i)].relation) {
      case Relation::kLessEqual:
        ws_.sp_lower.push_back(0.0);
        ws_.sp_upper.push_back(kInf);
        break;
      case Relation::kGreaterEqual:
        ws_.sp_lower.push_back(-kInf);
        ws_.sp_upper.push_back(0.0);
        break;
      case Relation::kEqual:
        ws_.sp_lower.push_back(0.0);
        ws_.sp_upper.push_back(0.0);
        break;
    }
  }
  num_cols_ = n_ + m_;
  first_artificial_ = num_cols_;
  ws_.sp_value.assign(static_cast<std::size_t>(num_cols_), 0.0);
  ws_.sp_state.assign(static_cast<std::size_t>(num_cols_), kAtLower);
  ws_.factorization.Reset(m_);
  pricing_cursor_ = 0;
}

void
RevisedSolver::SetupCosts()
{
  ws_.sp_cost.assign(static_cast<std::size_t>(num_cols_), 0.0);
  const double sgn = model_.sense() == Sense::kMaximize ? -1.0 : 1.0;
  for (int j = 0; j < n_; ++j) {
    ws_.sp_cost[static_cast<std::size_t>(j)] =
        sgn * model_.variables()[static_cast<std::size_t>(j)].objective;
  }
}

int
RevisedSolver::AppendColumn(int entry_row, double coef, double lower,
                            double upper)
{
  const int c = ws_.columns.AppendSingleton(entry_row, coef);
  ws_.sp_lower.push_back(lower);
  ws_.sp_upper.push_back(upper);
  ws_.sp_cost.push_back(0.0);
  ws_.sp_value.push_back(0.0);
  ws_.sp_state.push_back(kAtLower);
  num_cols_ = c + 1;
  return c;
}

/**
 * Parks every column at its natural nonbasic position: structural
 * variables at a finite bound (lower preferred; @p basis's at_upper
 * list overrides toward the upper bound) or at zero when free; slacks
 * at the zero end of their relation-shaped bounds.
 */
void
RevisedSolver::SetNonbasicDefaults(const SimplexBasis* basis)
{
  for (int j = 0; j < n_; ++j) {
    const std::size_t sj = static_cast<std::size_t>(j);
    const double lo = ws_.sp_lower[sj];
    const double hi = ws_.sp_upper[sj];
    const bool wants_upper =
        basis != nullptr &&
        std::binary_search(basis->at_upper.begin(), basis->at_upper.end(), j);
    if (wants_upper && std::isfinite(hi)) {
      ws_.sp_state[sj] = kAtUpper;
      ws_.sp_value[sj] = hi;
    } else if (std::isfinite(lo)) {
      ws_.sp_state[sj] = kAtLower;
      ws_.sp_value[sj] = lo;
    } else if (std::isfinite(hi)) {
      ws_.sp_state[sj] = kAtUpper;
      ws_.sp_value[sj] = hi;
    } else {
      ws_.sp_state[sj] = kFreeAtZero;
      ws_.sp_value[sj] = 0.0;
    }
  }
  for (int i = 0; i < m_; ++i) {
    const std::size_t s = static_cast<std::size_t>(n_ + i);
    const Relation rel =
        model_.constraints()[static_cast<std::size_t>(i)].relation;
    ws_.sp_state[s] = rel == Relation::kGreaterEqual ? kAtUpper : kAtLower;
    ws_.sp_value[s] = 0.0;
  }
}

void
RevisedSolver::SetupColdBasis()
{
  SetNonbasicDefaults(nullptr);

  // Row residuals with every column nonbasic: r_i = b_i - A x_N.
  ws_.sp_rhs.assign(static_cast<std::size_t>(m_), 0.0);
  for (int i = 0; i < m_; ++i) {
    ws_.sp_rhs[static_cast<std::size_t>(i)] =
        model_.constraints()[static_cast<std::size_t>(i)].rhs;
  }
  for (int j = 0; j < num_cols_; ++j) {
    const double v = ws_.sp_value[static_cast<std::size_t>(j)];
    if (v == 0.0)
      continue;
    for (int k = ws_.columns.start[static_cast<std::size_t>(j)];
         k < ws_.columns.start[static_cast<std::size_t>(j) + 1]; ++k) {
      ws_.sp_rhs[static_cast<std::size_t>(
          ws_.columns.row[static_cast<std::size_t>(k)])] -=
          ws_.columns.value[static_cast<std::size_t>(k)] * v;
    }
  }

  // Each row takes its own slack when the residual fits the slack
  // bounds; otherwise a phase-1 artificial absorbs the residual.
  first_artificial_ = num_cols_;
  ws_.sp_basic_of_row.assign(static_cast<std::size_t>(m_), -1);
  for (int i = 0; i < m_; ++i) {
    const double r = ws_.sp_rhs[static_cast<std::size_t>(i)];
    const std::size_t s = static_cast<std::size_t>(n_ + i);
    if (r >= ws_.sp_lower[s] - kRatioTolerance &&
        r <= ws_.sp_upper[s] + kRatioTolerance) {
      ws_.sp_basic_of_row[static_cast<std::size_t>(i)] = n_ + i;
      ws_.sp_state[s] = kBasic;
      ws_.sp_value[s] = r;
    } else {
      const int a = AppendColumn(i, r >= 0.0 ? 1.0 : -1.0, 0.0, kInf);
      ws_.sp_state[static_cast<std::size_t>(a)] = kBasic;
      ws_.sp_value[static_cast<std::size_t>(a)] = std::fabs(r);
      ws_.sp_basic_of_row[static_cast<std::size_t>(i)] = a;
    }
  }
}

bool
RevisedSolver::InstallWarmBasis(const SimplexBasis& basis)
{
  ws_.sp_basic_of_row.assign(static_cast<std::size_t>(m_), -1);
  std::vector<char> used(static_cast<std::size_t>(num_cols_), 0);

  for (const SimplexBasis::RowEntry& entry : basis.rows) {
    if (entry.row_id < 0 || entry.row_id >= m_)
      continue;  // dense bound row or stale constraint; skip
    if (ws_.sp_basic_of_row[static_cast<std::size_t>(entry.row_id)] >= 0)
      continue;
    int col = -1;
    switch (entry.kind) {
      case SimplexBasis::Kind::kStructural:
        // A variable the child has since fixed (lo == hi, the normal
        // result of a dive or branch pin) must not stay basic at its
        // stale parent value — that would always fail the feasibility
        // gate below. Skip the entry so the row falls back to its
        // slack; the fixed variable contributes as a nonbasic constant
        // instead. (The dense tableau gets the same semantics by
        // substituting fixed columns out of the model entirely.)
        if (entry.col_id >= 0 && entry.col_id < n_ &&
            ws_.sp_upper[static_cast<std::size_t>(entry.col_id)] -
                    ws_.sp_lower[static_cast<std::size_t>(entry.col_id)] >
                kFixedTolerance)
          col = entry.col_id;
        break;
      case SimplexBasis::Kind::kSlack:
        if (entry.col_id >= 0 && entry.col_id < m_)
          col = n_ + entry.col_id;
        break;
      case SimplexBasis::Kind::kArtificial:
        // A basic artificial sits at zero; recreate it fixed at zero.
        col = AppendColumn(entry.row_id, 1.0, 0.0, 0.0);
        used.push_back(0);
        break;
      case SimplexBasis::Kind::kNone:
        break;
    }
    if (col < 0 || used[static_cast<std::size_t>(col)])
      continue;
    used[static_cast<std::size_t>(col)] = 1;
    ws_.sp_basic_of_row[static_cast<std::size_t>(entry.row_id)] = col;
  }

  // Unclaimed rows fall back to their own slack, or a zero-fixed
  // artificial if another row already claimed that slack.
  for (int i = 0; i < m_; ++i) {
    if (ws_.sp_basic_of_row[static_cast<std::size_t>(i)] >= 0)
      continue;
    const int slack = n_ + i;
    if (!used[static_cast<std::size_t>(slack)]) {
      used[static_cast<std::size_t>(slack)] = 1;
      ws_.sp_basic_of_row[static_cast<std::size_t>(i)] = slack;
    } else {
      ws_.sp_basic_of_row[static_cast<std::size_t>(i)] =
          AppendColumn(i, 1.0, 0.0, 0.0);
      used.push_back(1);
    }
  }

  SetNonbasicDefaults(&basis);
  for (int i = 0; i < m_; ++i) {
    ws_.sp_state[static_cast<std::size_t>(
        ws_.sp_basic_of_row[static_cast<std::size_t>(i)])] = kBasic;
  }

  if (!RefactorizeBasis())
    return false;  // singular under the child bounds; cold path decides
  ComputeBeta();

  // Primal feasibility gate: the snapshot must still be feasible here,
  // or the warm start would change the answer rather than the route.
  for (int r = 0; r < m_; ++r) {
    const int b = ws_.sp_basic_of_row[static_cast<std::size_t>(r)];
    const double lo = ws_.sp_lower[static_cast<std::size_t>(b)];
    const double hi = ws_.sp_upper[static_cast<std::size_t>(b)];
    double& beta = ws_.sp_beta[static_cast<std::size_t>(r)];
    if (beta < lo - kWarmFeasTolerance || beta > hi + kWarmFeasTolerance)
      return false;
    beta = std::min(std::max(beta, lo), hi);
  }
  return true;
}

bool
RevisedSolver::RefactorizeBasis()
{
  return ws_.factorization.Refactorize(ws_.columns, ws_.sp_basic_of_row);
}

void
RevisedSolver::ComputeBeta()
{
  ws_.sp_rhs.assign(static_cast<std::size_t>(m_), 0.0);
  for (int i = 0; i < m_; ++i) {
    ws_.sp_rhs[static_cast<std::size_t>(i)] =
        model_.constraints()[static_cast<std::size_t>(i)].rhs;
  }
  for (int j = 0; j < num_cols_; ++j) {
    if (ws_.sp_state[static_cast<std::size_t>(j)] == kBasic)
      continue;
    const double v = ws_.sp_value[static_cast<std::size_t>(j)];
    if (v == 0.0)
      continue;
    for (int k = ws_.columns.start[static_cast<std::size_t>(j)];
         k < ws_.columns.start[static_cast<std::size_t>(j) + 1]; ++k) {
      ws_.sp_rhs[static_cast<std::size_t>(
          ws_.columns.row[static_cast<std::size_t>(k)])] -=
          ws_.columns.value[static_cast<std::size_t>(k)] * v;
    }
  }
  ws_.factorization.Ftran(ws_.sp_rhs);
  ws_.sp_beta.assign(ws_.sp_rhs.begin(), ws_.sp_rhs.end());
}

void
RevisedSolver::ComputeDuals(bool phase_one)
{
  ws_.sp_dual.assign(static_cast<std::size_t>(m_), 0.0);
  for (int r = 0; r < m_; ++r) {
    ws_.sp_dual[static_cast<std::size_t>(r)] =
        Cost(ws_.sp_basic_of_row[static_cast<std::size_t>(r)], phase_one);
  }
  ws_.factorization.Btran(ws_.sp_dual);
}

double
RevisedSolver::Cost(int j, bool phase_one) const
{
  if (phase_one)
    return j >= first_artificial_ ? 1.0 : 0.0;
  return ws_.sp_cost[static_cast<std::size_t>(j)];
}

double
RevisedSolver::ReducedCost(int j, bool phase_one) const
{
  double rc = Cost(j, phase_one);
  for (int k = ws_.columns.start[static_cast<std::size_t>(j)];
       k < ws_.columns.start[static_cast<std::size_t>(j) + 1]; ++k) {
    rc -= ws_.columns.value[static_cast<std::size_t>(k)] *
          ws_.sp_dual[static_cast<std::size_t>(
              ws_.columns.row[static_cast<std::size_t>(k)])];
  }
  return rc;
}

double
RevisedSolver::Objective(bool phase_one) const
{
  double obj = 0.0;
  for (int j = 0; j < num_cols_; ++j) {
    if (ws_.sp_state[static_cast<std::size_t>(j)] != kBasic)
      obj += Cost(j, phase_one) * ws_.sp_value[static_cast<std::size_t>(j)];
  }
  for (int r = 0; r < m_; ++r) {
    obj += Cost(ws_.sp_basic_of_row[static_cast<std::size_t>(r)], phase_one) *
           ws_.sp_beta[static_cast<std::size_t>(r)];
  }
  return obj;
}

/**
 * Picks the entering column, or -1 at an optimum. Partial pricing:
 * columns are scanned in rotating windows starting at a persistent
 * cursor, and the best (most negative improving) reduced cost within
 * the first window containing any eligible column wins. Bland mode
 * scans everything and takes the lowest eligible index.
 */
int
RevisedSolver::PriceEntering(bool bland, bool phase_one, double* reduced_cost)
{
  // Artificials may move in Phase 1 only; in Phase 2 they are pinned.
  const int limit = phase_one ? num_cols_ : std::min(num_cols_, first_artificial_);
  if (limit <= 0)
    return -1;

  const auto eligible = [&](int j, double* d) {
    const signed char s = ws_.sp_state[static_cast<std::size_t>(j)];
    if (s == kBasic)
      return false;
    if (ws_.sp_upper[static_cast<std::size_t>(j)] -
            ws_.sp_lower[static_cast<std::size_t>(j)] <= kFixedTolerance)
      return false;
    const double rc = ReducedCost(j, phase_one);
    const bool can_increase = s == kAtLower || s == kFreeAtZero;
    const bool can_decrease = s == kAtUpper || s == kFreeAtZero;
    if ((can_increase && rc < -tol_) || (can_decrease && rc > tol_)) {
      *d = rc;
      return true;
    }
    return false;
  };

  if (bland) {
    for (int j = 0; j < limit; ++j) {
      if (eligible(j, reduced_cost))
        return j;
    }
    return -1;
  }

  const int window = std::max(32, limit / 8);
  int cursor = pricing_cursor_ % limit;
  int scanned = 0;
  while (scanned < limit) {
    int best = -1;
    double best_score = tol_;
    for (int t = 0; t < window && scanned < limit; ++t, ++scanned) {
      const int j = cursor;
      cursor = cursor + 1 == limit ? 0 : cursor + 1;
      double d = 0.0;
      if (eligible(j, &d) && std::fabs(d) > best_score) {
        best_score = std::fabs(d);
        best = j;
        *reduced_cost = d;
      }
    }
    if (best >= 0) {
      pricing_cursor_ = cursor;
      return best;
    }
  }
  return -1;
}

LpStatus
RevisedSolver::Iterate(bool phase_one, int max_iters, int& iterations)
{
  int stalled = 0;
  const int bland_threshold = 2 * (m_ + num_cols_);
  double last_objective = kInf;
  while (true) {
    if (iterations >= max_iters)
      return LpStatus::kIterationLimit;
    const bool bland = stalled > bland_threshold;

    if (m_ > 0)
      ComputeDuals(phase_one);
    double dq = 0.0;
    const int q = PriceEntering(bland, phase_one, &dq);
    if (q < 0)
      return LpStatus::kOptimal;
    ++iterations;
    // dq < 0 means the entering variable wants to increase.
    const double dir = dq < 0.0 ? 1.0 : -1.0;

    // alpha = P B^-1 a_q, the entering column in row coordinates.
    ws_.sp_alpha.assign(static_cast<std::size_t>(m_), 0.0);
    for (int k = ws_.columns.start[static_cast<std::size_t>(q)];
         k < ws_.columns.start[static_cast<std::size_t>(q) + 1]; ++k) {
      ws_.sp_alpha[static_cast<std::size_t>(
          ws_.columns.row[static_cast<std::size_t>(k)])] =
          ws_.columns.value[static_cast<std::size_t>(k)];
    }
    ws_.factorization.Ftran(ws_.sp_alpha);

    // Bounded ratio test: the step is limited by the first basic
    // variable driven into one of its bounds, or by the entering
    // variable's own opposite bound (a bound flip, no basis change).
    int pr = -1;
    double best_t = kInf;
    double best_mag = 0.0;
    for (int r = 0; r < m_; ++r) {
      const double ar = dir * ws_.sp_alpha[static_cast<std::size_t>(r)];
      const int b = ws_.sp_basic_of_row[static_cast<std::size_t>(r)];
      const double beta = ws_.sp_beta[static_cast<std::size_t>(r)];
      double t;
      if (ar > kRatioTolerance) {
        const double lo = ws_.sp_lower[static_cast<std::size_t>(b)];
        if (lo == -kInf)
          continue;
        t = (beta - lo) / ar;
      } else if (ar < -kRatioTolerance) {
        const double hi = ws_.sp_upper[static_cast<std::size_t>(b)];
        if (hi == kInf)
          continue;
        t = (beta - hi) / ar;
      } else {
        continue;
      }
      if (t < 0.0)
        t = 0.0;  // tiny bound violations from roundoff
      const double mag = std::fabs(ar);
      if (t < best_t - kRatioTolerance) {
        best_t = t;
        pr = r;
        best_mag = mag;
      } else if (pr >= 0 && t < best_t + kRatioTolerance) {
        // Tie: Bland wants the smallest basic index (anti-cycling);
        // otherwise the largest pivot magnitude (stability).
        const bool take =
            bland ? b < ws_.sp_basic_of_row[static_cast<std::size_t>(pr)]
                  : mag > best_mag;
        if (take) {
          best_t = std::min(best_t, t);
          pr = r;
          best_mag = mag;
        }
      }
    }

    const double range = ws_.sp_upper[static_cast<std::size_t>(q)] -
                         ws_.sp_lower[static_cast<std::size_t>(q)];
    if (range <= best_t && std::isfinite(range)) {
      // Bound flip: q jumps to its opposite bound; the basis stays.
      const double t = range;
      for (int r = 0; r < m_; ++r) {
        ws_.sp_beta[static_cast<std::size_t>(r)] -=
            dir * t * ws_.sp_alpha[static_cast<std::size_t>(r)];
      }
      ws_.sp_state[static_cast<std::size_t>(q)] =
          dir > 0.0 ? kAtUpper : kAtLower;
      ws_.sp_value[static_cast<std::size_t>(q)] =
          dir > 0.0 ? ws_.sp_upper[static_cast<std::size_t>(q)]
                    : ws_.sp_lower[static_cast<std::size_t>(q)];
    } else if (pr < 0) {
      return LpStatus::kUnbounded;
    } else {
      const double t = best_t;
      const double xq = ws_.sp_value[static_cast<std::size_t>(q)] + dir * t;
      for (int r = 0; r < m_; ++r) {
        if (r != pr) {
          ws_.sp_beta[static_cast<std::size_t>(r)] -=
              dir * t * ws_.sp_alpha[static_cast<std::size_t>(r)];
        }
      }
      const int leaving = ws_.sp_basic_of_row[static_cast<std::size_t>(pr)];
      const double ar = dir * ws_.sp_alpha[static_cast<std::size_t>(pr)];
      if (ar > 0.0) {
        ws_.sp_value[static_cast<std::size_t>(leaving)] =
            ws_.sp_lower[static_cast<std::size_t>(leaving)];
        ws_.sp_state[static_cast<std::size_t>(leaving)] = kAtLower;
      } else {
        ws_.sp_value[static_cast<std::size_t>(leaving)] =
            ws_.sp_upper[static_cast<std::size_t>(leaving)];
        ws_.sp_state[static_cast<std::size_t>(leaving)] = kAtUpper;
      }
      ws_.sp_state[static_cast<std::size_t>(q)] = kBasic;
      ws_.sp_value[static_cast<std::size_t>(q)] = xq;
      ws_.sp_beta[static_cast<std::size_t>(pr)] = xq;
      ws_.sp_basic_of_row[static_cast<std::size_t>(pr)] = q;
      ws_.factorization.Update(pr, ws_.sp_alpha);
      if (ws_.factorization.updates_since_refactor() >= refactor_interval_) {
        FLEX_CHECK_MSG(RefactorizeBasis(),
                       "periodic refactorization found a singular basis");
        ComputeBeta();
      }
    }

    const double objective = Objective(phase_one);
    if (objective < last_objective - tol_) {
      stalled = 0;
      last_objective = objective;
    } else {
      ++stalled;
    }
  }
}

LpStatus
RevisedSolver::RunTwoPhase(int max_iters, int& iterations)
{
  SetupColdBasis();
  if (m_ > 0) {
    FLEX_CHECK_MSG(RefactorizeBasis(), "initial simplex basis is singular");
    ComputeBeta();
  }

  if (num_cols_ > first_artificial_) {
    const LpStatus status = Iterate(/*phase_one=*/true, max_iters, iterations);
    if (status != LpStatus::kOptimal) {
      // Phase 1 minimizes a sum bounded below by zero; "unbounded" can
      // only be a numerical artifact of an infeasible system.
      return status == LpStatus::kUnbounded ? LpStatus::kInfeasible : status;
    }
    double infeasibility = 0.0;
    for (int r = 0; r < m_; ++r) {
      if (ws_.sp_basic_of_row[static_cast<std::size_t>(r)] >= first_artificial_)
        infeasibility += std::fabs(ws_.sp_beta[static_cast<std::size_t>(r)]);
    }
    if (infeasibility > kInfeasibilityTolerance)
      return LpStatus::kInfeasible;
    // Pin artificials at zero; basic ones stay basic but can no longer
    // move off zero, and Phase-2 pricing never lets one re-enter.
    for (int a = first_artificial_; a < num_cols_; ++a) {
      ws_.sp_upper[static_cast<std::size_t>(a)] = 0.0;
      if (ws_.sp_state[static_cast<std::size_t>(a)] != kBasic) {
        ws_.sp_state[static_cast<std::size_t>(a)] = kAtLower;
        ws_.sp_value[static_cast<std::size_t>(a)] = 0.0;
      }
    }
  }

  return Iterate(/*phase_one=*/false, max_iters, iterations);
}

LpResult
RevisedSolver::Solve(const BoundOverrides& overrides,
                     const SimplexBasis* warm_basis, SimplexBasis* basis_out)
{
  LpResult result;
  if (basis_out != nullptr)
    basis_out->clear();
  const BasisFactorization::Stats before = ws_.factorization.stats();

  if (!PrepareBounds(overrides)) {
    result.status = LpStatus::kInfeasible;
    return result;
  }
  BuildColumns();
  SetupCosts();

  const int max_iters = max_iterations_ > 0
                            ? max_iterations_
                            : 50 * (n_ + 3 * m_) + 1000;
  int iterations = 0;
  LpStatus status = LpStatus::kIterationLimit;
  bool solved = false;

  if (warm_basis != nullptr && !warm_basis->empty() && m_ > 0) {
    result.warm_start_attempted = true;
    if (InstallWarmBasis(*warm_basis)) {
      status = Iterate(/*phase_one=*/false, max_iters, iterations);
      if (status == LpStatus::kOptimal) {
        solved = true;
        result.warm_start_used = true;
      }
    }
    if (!solved) {
      // A warm basis must never change the answer, only the route:
      // rebuild the column file (installs may have appended artificial
      // columns) and run the cold two-phase path.
      BuildColumns();
      SetupCosts();
    }
  }
  if (!solved)
    status = RunTwoPhase(max_iters, iterations);

  result.status = status;
  result.iterations = iterations;
  if (status == LpStatus::kOptimal) {
    // Final polish: a fresh factorization tightens beta and the duals
    // right before extraction, so certificates are as sharp as one
    // refactorization can make them.
    if (m_ > 0 && RefactorizeBasis())
      ComputeBeta();
    for (int r = 0; r < m_; ++r) {
      ws_.sp_value[static_cast<std::size_t>(
          ws_.sp_basic_of_row[static_cast<std::size_t>(r)])] =
          ws_.sp_beta[static_cast<std::size_t>(r)];
    }
    result.x.assign(ws_.sp_value.begin(),
                    ws_.sp_value.begin() + static_cast<std::ptrdiff_t>(n_));
    result.objective = model_.ObjectiveValue(result.x);
    ComputeDuals(/*phase_one=*/false);
    result.dual.assign(ws_.sp_dual.begin(), ws_.sp_dual.end());
    result.reduced_costs.assign(static_cast<std::size_t>(n_), 0.0);
    for (int j = 0; j < n_; ++j) {
      result.reduced_costs[static_cast<std::size_t>(j)] =
          ReducedCost(j, /*phase_one=*/false);
    }
    if (basis_out != nullptr) {
      basis_out->rows.reserve(static_cast<std::size_t>(m_));
      for (int r = 0; r < m_; ++r) {
        const int b = ws_.sp_basic_of_row[static_cast<std::size_t>(r)];
        SimplexBasis::RowEntry entry;
        entry.row_id = r;
        if (b < n_) {
          entry.kind = SimplexBasis::Kind::kStructural;
          entry.col_id = b;
        } else if (b < n_ + m_) {
          entry.kind = SimplexBasis::Kind::kSlack;
          entry.col_id = b - n_;
        } else {
          entry.kind = SimplexBasis::Kind::kArtificial;
          entry.col_id = ws_.columns.row[static_cast<std::size_t>(
              ws_.columns.start[static_cast<std::size_t>(b)])];
        }
        basis_out->rows.push_back(entry);
      }
      for (int j = 0; j < n_; ++j) {
        if (ws_.sp_state[static_cast<std::size_t>(j)] == kAtUpper)
          basis_out->at_upper.push_back(j);
      }
    }
  }

  const BasisFactorization::Stats after = ws_.factorization.stats();
  result.refactors = static_cast<int>(after.refactors - before.refactors);
  result.eta_updates = static_cast<int>(after.eta_updates - before.eta_updates);
  return result;
}

}  // namespace

LpResult
SolveRevised(const Model& model, const BoundOverrides& overrides,
             SimplexWorkspace* workspace, const SimplexBasis* warm_basis,
             SimplexBasis* basis_out, const SimplexSolver::Options& options)
{
  SimplexWorkspace local;
  SimplexWorkspace& ws = workspace != nullptr ? *workspace : local;
  RevisedSolver solver(model, ws, options);
  return solver.Solve(overrides, warm_basis, basis_out);
}

}  // namespace flex::solver
