#include "presolve.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace flex::solver {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kFeasTolerance = 1e-9;
constexpr double kFixedTolerance = 1e-12;
constexpr double kIntegralityTolerance = 1e-6;

/** Reduction passes before presolve gives up on reaching a fixpoint. */
constexpr int kMaxPasses = 10;

struct WorkState {
  std::vector<double> lower;
  std::vector<double> upper;
  std::vector<char> fixed;
  std::vector<double> value;     // of fixed variables
  std::vector<char> row_active;
};

/** Rounds integer-variable bounds inward to integers. */
bool
TightenIntegerBounds(const Model& model, WorkState& st, int j)
{
  if (!model.variables()[static_cast<std::size_t>(j)].is_integer)
    return true;
  double& lo = st.lower[static_cast<std::size_t>(j)];
  double& hi = st.upper[static_cast<std::size_t>(j)];
  if (std::isfinite(lo))
    lo = std::ceil(lo - kIntegralityTolerance);
  if (std::isfinite(hi))
    hi = std::floor(hi + kIntegralityTolerance);
  return lo <= hi + kFeasTolerance;
}

/** Fixes variable j at @p v; false when v violates integrality/bounds. */
bool
FixVariable(const Model& model, WorkState& st, int j, double v)
{
  const std::size_t sj = static_cast<std::size_t>(j);
  if (model.variables()[sj].is_integer) {
    const double r = std::round(v);
    if (std::fabs(v - r) > kIntegralityTolerance)
      return false;
    v = r;
  }
  if (v < st.lower[sj] - kFeasTolerance || v > st.upper[sj] + kFeasTolerance)
    return false;
  st.fixed[sj] = 1;
  st.value[sj] = v;
  st.lower[sj] = v;
  st.upper[sj] = v;
  return true;
}

}  // namespace

PresolveStatus
Presolve(const Model& model, Presolved* out)
{
  FLEX_CHECK(out != nullptr);
  const int n = model.NumVariables();
  const int m = model.NumConstraints();
  *out = Presolved{};
  out->reduced.SetSense(model.sense());

  WorkState st;
  st.lower.resize(static_cast<std::size_t>(n));
  st.upper.resize(static_cast<std::size_t>(n));
  st.fixed.assign(static_cast<std::size_t>(n), 0);
  st.value.assign(static_cast<std::size_t>(n), 0.0);
  st.row_active.assign(static_cast<std::size_t>(m), 1);

  const auto infeasible = [&]() {
    out->status = PresolveStatus::kInfeasible;
    return out->status;
  };

  for (int j = 0; j < n; ++j) {
    const Variable& v = model.variables()[static_cast<std::size_t>(j)];
    st.lower[static_cast<std::size_t>(j)] = v.lower;
    st.upper[static_cast<std::size_t>(j)] = v.upper;
    if (!TightenIntegerBounds(model, st, j))
      return infeasible();
  }

  // Minimize orientation for cost-direction reasoning.
  const double sgn = model.sense() == Sense::kMaximize ? -1.0 : 1.0;

  std::vector<double> coef_scratch;
  std::vector<int> var_scratch;
  bool changed = true;
  for (int pass = 0; pass < kMaxPasses && changed; ++pass) {
    changed = false;

    // --- Row reductions ------------------------------------------------
    for (int i = 0; i < m; ++i) {
      if (!st.row_active[static_cast<std::size_t>(i)])
        continue;
      const Constraint& c = model.constraints()[static_cast<std::size_t>(i)];
      // Live terms (fixed variables substituted into the rhs) and
      // activity bounds over the live ones.
      coef_scratch.clear();
      var_scratch.clear();
      double rhs = c.rhs;
      double min_act = 0.0;
      double max_act = 0.0;
      for (const auto& [var, coef] : c.terms) {
        const std::size_t sv = static_cast<std::size_t>(var);
        if (coef == 0.0)
          continue;
        if (st.fixed[sv]) {
          rhs -= coef * st.value[sv];
          continue;
        }
        var_scratch.push_back(var);
        coef_scratch.push_back(coef);
        const double lo = st.lower[sv];
        const double hi = st.upper[sv];
        if (coef > 0.0) {
          min_act += std::isfinite(lo) ? coef * lo : -kInf;
          max_act += std::isfinite(hi) ? coef * hi : kInf;
        } else {
          min_act += std::isfinite(hi) ? coef * hi : -kInf;
          max_act += std::isfinite(lo) ? coef * lo : kInf;
        }
      }

      if (var_scratch.empty()) {
        // Empty row: 0 <rel> rhs either always holds or never does.
        switch (c.relation) {
          case Relation::kLessEqual:
            if (rhs < -kFeasTolerance)
              return infeasible();
            break;
          case Relation::kGreaterEqual:
            if (rhs > kFeasTolerance)
              return infeasible();
            break;
          case Relation::kEqual:
            if (std::fabs(rhs) > kFeasTolerance)
              return infeasible();
            break;
        }
        st.row_active[static_cast<std::size_t>(i)] = 0;
        changed = true;
        continue;
      }

      // Activity-bound tests: rows no variable assignment can violate
      // drop; rows no assignment can satisfy prove infeasibility.
      if (c.relation == Relation::kLessEqual) {
        if (min_act > rhs + kFeasTolerance)
          return infeasible();
        if (max_act <= rhs + kFeasTolerance) {
          st.row_active[static_cast<std::size_t>(i)] = 0;
          changed = true;
          continue;
        }
      } else if (c.relation == Relation::kGreaterEqual) {
        if (max_act < rhs - kFeasTolerance)
          return infeasible();
        if (min_act >= rhs - kFeasTolerance) {
          st.row_active[static_cast<std::size_t>(i)] = 0;
          changed = true;
          continue;
        }
      } else {
        if (min_act > rhs + kFeasTolerance || max_act < rhs - kFeasTolerance)
          return infeasible();
      }

      if (var_scratch.size() == 1) {
        // Singleton row: fold into the variable's bounds.
        const int j = var_scratch.front();
        const std::size_t sj = static_cast<std::size_t>(j);
        const double a = coef_scratch.front();
        const double b = rhs / a;
        double& lo = st.lower[sj];
        double& hi = st.upper[sj];
        switch (c.relation) {
          case Relation::kLessEqual:
            if (a > 0.0)
              hi = std::min(hi, b);
            else
              lo = std::max(lo, b);
            break;
          case Relation::kGreaterEqual:
            if (a > 0.0)
              lo = std::max(lo, b);
            else
              hi = std::min(hi, b);
            break;
          case Relation::kEqual:
            lo = std::max(lo, b);
            hi = std::min(hi, b);
            break;
        }
        if (!TightenIntegerBounds(model, st, j))
          return infeasible();
        if (lo > hi + kFeasTolerance)
          return infeasible();
        st.row_active[static_cast<std::size_t>(i)] = 0;
        changed = true;
        continue;
      }
    }

    // --- Column reductions ---------------------------------------------
    // Newly-degenerate bounds become fixings.
    for (int j = 0; j < n; ++j) {
      const std::size_t sj = static_cast<std::size_t>(j);
      if (st.fixed[sj])
        continue;
      if (st.upper[sj] - st.lower[sj] <= kFixedTolerance) {
        if (!FixVariable(model, st, j, 0.5 * (st.lower[sj] + st.upper[sj])))
          return infeasible();
        changed = true;
      }
    }

    // Dominated columns: when every live occurrence of x_j lets it slide
    // toward one bound without tightening any constraint, and the cost
    // favors that direction, fix it there (empty columns are the
    // zero-occurrence case). Bounds that direction must be finite —
    // presolve never concludes "unbounded" (see header).
    std::vector<char> down_safe(static_cast<std::size_t>(n), 1);
    std::vector<char> up_safe(static_cast<std::size_t>(n), 1);
    for (int i = 0; i < m; ++i) {
      if (!st.row_active[static_cast<std::size_t>(i)])
        continue;
      const Constraint& c = model.constraints()[static_cast<std::size_t>(i)];
      for (const auto& [var, coef] : c.terms) {
        const std::size_t sv = static_cast<std::size_t>(var);
        if (coef == 0.0 || st.fixed[sv])
          continue;
        switch (c.relation) {
          case Relation::kLessEqual:
            // Decreasing x relaxes the row iff coef >= 0.
            if (coef < 0.0)
              down_safe[sv] = 0;
            if (coef > 0.0)
              up_safe[sv] = 0;
            break;
          case Relation::kGreaterEqual:
            if (coef > 0.0)
              down_safe[sv] = 0;
            if (coef < 0.0)
              up_safe[sv] = 0;
            break;
          case Relation::kEqual:
            down_safe[sv] = 0;
            up_safe[sv] = 0;
            break;
        }
      }
    }
    for (int j = 0; j < n; ++j) {
      const std::size_t sj = static_cast<std::size_t>(j);
      if (st.fixed[sj])
        continue;
      const double c_min =
          sgn * model.variables()[sj].objective;
      if (down_safe[sj] && c_min >= 0.0 && std::isfinite(st.lower[sj])) {
        if (!FixVariable(model, st, j, st.lower[sj]))
          return infeasible();
        changed = true;
      } else if (up_safe[sj] && c_min <= 0.0 && std::isfinite(st.upper[sj])) {
        if (!FixVariable(model, st, j, st.upper[sj]))
          return infeasible();
        changed = true;
      }
    }
  }

  // --- Emit the reduced model ------------------------------------------
  out->reduced_index.assign(static_cast<std::size_t>(n), -1);
  out->fixed_value.assign(static_cast<std::size_t>(n), 0.0);
  for (int j = 0; j < n; ++j) {
    const std::size_t sj = static_cast<std::size_t>(j);
    const Variable& v = model.variables()[sj];
    if (st.fixed[sj]) {
      out->fixed_value[sj] = st.value[sj];
      out->objective_offset += v.objective * st.value[sj];
      ++out->cols_removed;
      continue;
    }
    const int rj =
        v.is_integer
            ? out->reduced.AddInteger(v.name, st.lower[sj], st.upper[sj],
                                      v.objective)
            : out->reduced.AddContinuous(v.name, st.lower[sj], st.upper[sj],
                                         v.objective);
    out->reduced_index[sj] = rj;
  }

  std::vector<std::pair<VarIndex, double>> terms;
  for (int i = 0; i < m; ++i) {
    if (!st.row_active[static_cast<std::size_t>(i)]) {
      ++out->rows_removed;
      continue;
    }
    const Constraint& c = model.constraints()[static_cast<std::size_t>(i)];
    terms.clear();
    double rhs = c.rhs;
    double max_abs = 0.0;
    for (const auto& [var, coef] : c.terms) {
      const std::size_t sv = static_cast<std::size_t>(var);
      if (coef == 0.0)
        continue;
      if (st.fixed[sv]) {
        rhs -= coef * st.value[sv];
        continue;
      }
      terms.emplace_back(out->reduced_index[sv], coef);
      max_abs = std::max(max_abs, std::fabs(coef));
    }
    if (terms.empty()) {
      // All variables of the row were fixed during the final pass;
      // verify the residual and drop it.
      bool ok = true;
      switch (c.relation) {
        case Relation::kLessEqual:
          ok = rhs >= -kFeasTolerance;
          break;
        case Relation::kGreaterEqual:
          ok = rhs <= kFeasTolerance;
          break;
        case Relation::kEqual:
          ok = std::fabs(rhs) <= kFeasTolerance;
          break;
      }
      if (!ok)
        return infeasible();
      ++out->rows_removed;
      continue;
    }
    // Power-of-two scaling: the largest coefficient lands in [1, 2).
    // Exact in binary floating point, so neither the feasible region
    // nor the primal solution changes by even an ulp.
    if (max_abs > 0.0 && std::isfinite(max_abs)) {
      const double scale = std::exp2(std::floor(std::log2(max_abs)));
      if (scale != 1.0 && scale > 0.0 && std::isfinite(scale)) {
        for (auto& [var, coef] : terms)
          coef /= scale;
        rhs /= scale;
      }
    }
    out->reduced.AddConstraint(c.name, terms, c.relation, rhs);
  }

  out->status = PresolveStatus::kReduced;
  return out->status;
}

PropagateStatus
PropagateBounds(const Model& model,
                std::vector<std::optional<std::pair<double, double>>>* overrides,
                int max_passes, int* tightened)
{
  FLEX_CHECK(overrides != nullptr);
  const int n = model.NumVariables();
  const int m = model.NumConstraints();
  FLEX_CHECK(overrides->empty() ||
             overrides->size() == static_cast<std::size_t>(n));
  if (tightened != nullptr)
    *tightened = 0;

  // Effective bounds: the override where engaged, the model elsewhere.
  std::vector<double> lo(static_cast<std::size_t>(n));
  std::vector<double> hi(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const std::size_t sj = static_cast<std::size_t>(j);
    if (sj < overrides->size() && (*overrides)[sj].has_value()) {
      lo[sj] = (*overrides)[sj]->first;
      hi[sj] = (*overrides)[sj]->second;
    } else {
      lo[sj] = model.variables()[sj].lower;
      hi[sj] = model.variables()[sj].upper;
    }
    if (lo[sj] > hi[sj] + kFeasTolerance)
      return PropagateStatus::kInfeasible;
  }

  // A deduction must move a bound by a meaningful step to count (and to
  // guarantee the pass loop terminates); integer rounding usually turns
  // a fractional implication into a full unit step anyway.
  constexpr double kMinImprove = 1e-6;
  int count = 0;
  bool infeasible = false;

  const auto round_integer = [&](int j, double& v, bool is_lower) {
    if (!model.variables()[static_cast<std::size_t>(j)].is_integer ||
        !std::isfinite(v))
      return;
    v = is_lower ? std::ceil(v - kIntegralityTolerance)
                 : std::floor(v + kIntegralityTolerance);
  };
  const auto tighten_lower = [&](int j, double v) {
    const std::size_t sj = static_cast<std::size_t>(j);
    round_integer(j, v, true);
    if (!(v > lo[sj] + kMinImprove))
      return false;
    lo[sj] = v;
    if (lo[sj] > hi[sj] + kFeasTolerance)
      infeasible = true;
    ++count;
    return true;
  };
  const auto tighten_upper = [&](int j, double v) {
    const std::size_t sj = static_cast<std::size_t>(j);
    round_integer(j, v, false);
    if (!(v < hi[sj] - kMinImprove))
      return false;
    hi[sj] = v;
    if (lo[sj] > hi[sj] + kFeasTolerance)
      infeasible = true;
    ++count;
    return true;
  };

  bool changed = true;
  for (int pass = 0; pass < max_passes && changed && !infeasible; ++pass) {
    changed = false;
    for (int i = 0; i < m && !infeasible; ++i) {
      const Constraint& c = model.constraints()[static_cast<std::size_t>(i)];
      // Finite parts of the activity bounds, plus how many terms
      // contribute an infinity to each. With one infinite contributor
      // the row still implies a bound on that contributor alone.
      double fin_min = 0.0;
      double fin_max = 0.0;
      int inf_min = 0;
      int inf_max = 0;
      for (const auto& [var, coef] : c.terms) {
        if (coef == 0.0)
          continue;
        const std::size_t sv = static_cast<std::size_t>(var);
        const double l = coef > 0.0 ? lo[sv] : hi[sv];
        const double u = coef > 0.0 ? hi[sv] : lo[sv];
        if (std::isfinite(l))
          fin_min += coef * l;
        else
          ++inf_min;
        if (std::isfinite(u))
          fin_max += coef * u;
        else
          ++inf_max;
      }
      const double min_act = inf_min > 0 ? -kInf : fin_min;
      const double max_act = inf_max > 0 ? kInf : fin_max;

      const bool needs_le = c.relation != Relation::kGreaterEqual;
      const bool needs_ge = c.relation != Relation::kLessEqual;
      if ((needs_le && min_act > c.rhs + kFeasTolerance) ||
          (needs_ge && max_act < c.rhs - kFeasTolerance)) {
        infeasible = true;
        break;
      }

      for (const auto& [var, coef] : c.terms) {
        if (coef == 0.0)
          continue;
        const std::size_t sv = static_cast<std::size_t>(var);
        // Activity of the row *excluding* this term, from each side.
        // Defined when every other term is finite on that side.
        const double l = coef > 0.0 ? lo[sv] : hi[sv];
        const double u = coef > 0.0 ? hi[sv] : lo[sv];
        const bool min_rest_ok = inf_min == (std::isfinite(l) ? 0 : 1);
        const bool max_rest_ok = inf_max == (std::isfinite(u) ? 0 : 1);
        const double min_rest =
            fin_min - (std::isfinite(l) ? coef * l : 0.0);
        const double max_rest =
            fin_max - (std::isfinite(u) ? coef * u : 0.0);
        if (needs_le && min_rest_ok) {
          // sum <= rhs: coef * x <= rhs - min(rest).
          const double b = (c.rhs - min_rest) / coef;
          changed |= coef > 0.0 ? tighten_upper(var, b)
                                : tighten_lower(var, b);
        }
        if (needs_ge && max_rest_ok) {
          // sum >= rhs: coef * x >= rhs - max(rest).
          const double b = (c.rhs - max_rest) / coef;
          changed |= coef > 0.0 ? tighten_lower(var, b)
                                : tighten_upper(var, b);
        }
        if (infeasible)
          break;
      }
    }
  }

  if (tightened != nullptr)
    *tightened = count;
  if (infeasible)
    return PropagateStatus::kInfeasible;
  if (count == 0)
    return PropagateStatus::kUnchanged;

  // Write the tightened box back as overrides.
  if (overrides->empty())
    overrides->resize(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const std::size_t sj = static_cast<std::size_t>(j);
    const Variable& v = model.variables()[sj];
    if ((*overrides)[sj].has_value() || lo[sj] != v.lower || hi[sj] != v.upper)
      (*overrides)[sj] = std::make_pair(lo[sj], hi[sj]);
  }
  return PropagateStatus::kTightened;
}

void
Postsolve(const Presolved& info, const std::vector<double>& reduced_x,
          std::vector<double>* original_x)
{
  FLEX_CHECK(original_x != nullptr);
  const std::size_t n = info.reduced_index.size();
  FLEX_CHECK(reduced_x.size() ==
             static_cast<std::size_t>(info.reduced.NumVariables()));
  original_x->assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    const int rj = info.reduced_index[j];
    (*original_x)[j] = rj >= 0 ? reduced_x[static_cast<std::size_t>(rj)]
                               : info.fixed_value[j];
  }
}

}  // namespace flex::solver
