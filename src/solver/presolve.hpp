/**
 * @file
 * LP/MIP presolve: shrinks a Model before the root relaxation.
 *
 * Presolve applies a fixpoint of safe reductions — singleton rows fold
 * into variable bounds (integer bounds rounded), empty and redundant
 * rows drop, fixed variables substitute out, empty and dominated
 * columns fix at their cost-favorable bound, and rows are rescaled by
 * powers of two so their largest coefficient lands in [1, 2). Every
 * reduction preserves the optimal objective value (dominated-column
 * fixing may select among alternate optima, never change the value),
 * and power-of-two scaling is exact in binary floating point, so the
 * primal solution needs no unscaling.
 *
 * Presolve never claims unboundedness: a column whose improving
 * direction is unbounded is left in the model, because "unbounded
 * column" only implies an unbounded LP when the model is feasible —
 * a question the simplex settles.
 *
 * Postsolve maps a solution of the reduced model back to the original
 * variable space (fixed variables reinstated at their values).
 */
#ifndef FLEX_SOLVER_PRESOLVE_HPP_
#define FLEX_SOLVER_PRESOLVE_HPP_

#include <optional>
#include <utility>
#include <vector>

#include "solver/model.hpp"

namespace flex::solver {

/** Outcome of a presolve pass. */
enum class PresolveStatus {
  kReduced,     ///< reduced model is ready (possibly unchanged)
  kInfeasible,  ///< reductions proved the model has no feasible point
};

/** A presolved model plus everything needed to undo the reductions. */
struct Presolved {
  PresolveStatus status = PresolveStatus::kReduced;
  Model reduced;                 ///< same sense; possibly fewer rows/cols
  double objective_offset = 0.0; ///< obj(x) = obj_reduced(x_red) + offset
  int rows_removed = 0;
  int cols_removed = 0;

  /** Original variable -> reduced column, or -1 when eliminated. */
  std::vector<int> reduced_index;
  /** Value of each eliminated original variable. */
  std::vector<double> fixed_value;
};

/** Runs presolve on @p model into @p out; returns out->status. */
PresolveStatus Presolve(const Model& model, Presolved* out);

/**
 * Expands @p reduced_x (a solution of @p info.reduced) into the
 * original variable space.
 */
void Postsolve(const Presolved& info, const std::vector<double>& reduced_x,
               std::vector<double>* original_x);

/** Outcome of node-local bound propagation. */
enum class PropagateStatus {
  kUnchanged,   ///< fixpoint reached without changing any bound
  kTightened,   ///< at least one bound was tightened in place
  kInfeasible,  ///< the bounds admit no feasible point — prune the node
};

/**
 * Activity-based bound tightening over a fixed model, reading and
 * writing per-variable bound overrides (the branch-and-bound node
 * representation — same layout as simplex.hpp's BoundOverrides: an
 * engaged entry replaces the model's [lower, upper] for that variable).
 *
 * Each pass walks every constraint, forms minimum/maximum row
 * activities from the effective bounds (with infinite contributions
 * counted, so one-infinity rows still tighten their infinite
 * contributor), and derives implied bounds for every variable in the
 * row; integer variables are rounded inward. The loop stops at a
 * fixpoint or after @p max_passes passes. Every deduced bound is valid
 * for *all* feasible points of the node, not just optimal ones, so the
 * reduction is safe under branching.
 *
 * @p overrides may be empty (treated as no overrides; resized to one
 * entry per variable if anything tightens) or sized to the model.
 * @p tightened, when non-null, receives the number of individual bound
 * changes applied. Pure function of (model, *overrides) — deterministic
 * and safe to call concurrently on distinct override vectors.
 */
PropagateStatus PropagateBounds(
    const Model& model,
    std::vector<std::optional<std::pair<double, double>>>* overrides,
    int max_passes, int* tightened);

}  // namespace flex::solver

#endif  // FLEX_SOLVER_PRESOLVE_HPP_
