/**
 * @file
 * LU factorization of a simplex basis with Forrest–Tomlin updates.
 *
 * The revised simplex never forms B^-1 explicitly. This class keeps a
 * true sparse LU of the basis:
 *
 *  - Refactorize() rebuilds L and U from scratch by left-looking
 *    elimination with row partial pivoting. L is held in product form
 *    (one unit-diagonal column eta per basis column); U is held
 *    column-wise in *position* space, with a separate diagonal and a
 *    row permutation (pos_of_row_/row_of_pos_) mapping physical rows to
 *    elimination positions.
 *  - Update() absorbs a simplex pivot with the Forrest–Tomlin scheme:
 *    the spike column U * alpha replaces the leaving column, the spiked
 *    row is eliminated by one batched row eta, and the permutation is
 *    cyclically shifted so U stays upper triangular. Cost is O(nnz(U)),
 *    independent of how many updates came before — unlike the classic
 *    product-form eta file, accuracy and apply cost do not degrade with
 *    the length of the pivot sequence. A stability test rejects updates
 *    whose new diagonal is negligible relative to the spike;
 *    Update() then returns false and the caller refactorizes instead.
 *
 * All vectors are kept in *row* coordinates: Ftran(v) computes P B^-1 v
 * where P is the pivot-order permutation, and the solver's
 * basic-variable-of-row bookkeeping absorbs P, so callers never see it.
 */
#ifndef FLEX_SOLVER_BASIS_LU_HPP_
#define FLEX_SOLVER_BASIS_LU_HPP_

#include <cstdint>
#include <vector>

#include "solver/model.hpp"

namespace flex::solver {

class BasisFactorization {
 public:
  /** Cumulative counters, surfaced as solver telemetry. */
  struct Stats {
    std::int64_t refactors = 0;          ///< Refactorize() calls that ran
    std::int64_t eta_updates = 0;        ///< Forrest–Tomlin updates absorbed
    std::int64_t update_rejections = 0;  ///< updates refused by stability test
  };

  /** Prepares for a basis of @p rows rows; drops the factorization. */
  void Reset(int rows);

  /**
   * Rebuilds the factorization for the basis listed in @p basic_of_row
   * (column ids into @p cols, one per row, order irrelevant on input).
   * On success the vector is permuted so that basic_of_row[r] is the
   * column pivoted in row r — the arrangement every beta/Ftran result
   * is indexed by — and true is returned. On a numerically singular
   * basis, false is returned and the factorization is unusable until
   * the caller repairs the basis and refactorizes again.
   */
  bool Refactorize(const SparseColumns& cols, std::vector<int>& basic_of_row);

  /** v := P B^-1 v (dense @p v of rows() entries). */
  void Ftran(std::vector<double>& v) const;

  /** v := (P B^-1)^T v — dual solves (dense @p v of rows() entries). */
  void Btran(std::vector<double>& v) const;

  /**
   * Forrest–Tomlin update after a pivot: the entering column, already
   * transformed by Ftran into @p alpha (dense, row coordinates),
   * replaces the basic variable of @p pivot_row. Returns false when the
   * update would be numerically unstable (the eliminated diagonal is
   * negligible against the spike); the factorization is then unchanged
   * and the caller must refactorize with the post-pivot basis.
   */
  bool Update(int pivot_row, const std::vector<double>& alpha);

  int rows() const { return rows_; }
  /** Updates absorbed by Update() since the last Refactorize(). */
  int updates_since_refactor() const { return updates_since_refactor_; }
  const Stats& stats() const { return stats_; }

 private:
  int rows_ = 0;
  int updates_since_refactor_ = 0;
  Stats stats_;

  // Eta file, flat, applied in creation order by Ftran (reverse +
  // transposed by Btran). Kind 0 is an L column eta with unit diagonal:
  //   v[row_k] -= val_k * v[pivot]   for each term k.
  // Kind 1 is a Forrest–Tomlin row eta:
  //   v[pivot] -= sum_k val_k * v[row_k].
  // Rows are physical row ids, which never change after creation.
  std::vector<signed char> eta_kind_;
  std::vector<int> eta_pivot_;
  std::vector<int> eta_start_;
  std::vector<int> eta_row_;
  std::vector<double> eta_val_;

  // U, column-wise in position space: the column at position p holds
  // its off-diagonal terms (all at positions < p) in
  // [ustart_[p], ustart_[p] + ulen_[p]) of urow_/uval_, identified by
  // *physical* row; the diagonal lives in udiag_[p]. row_of_pos_[p] is
  // the physical row pivoted at position p, pos_of_row_ its inverse.
  // The pool is append-only between refactorizations; deleted entries
  // simply leak until the next Refactorize() compacts them.
  std::vector<int> ustart_;
  std::vector<int> ulen_;
  std::vector<int> urow_;
  std::vector<double> uval_;
  std::vector<double> udiag_;
  std::vector<int> pos_of_row_;
  std::vector<int> row_of_pos_;

  // Refactorization / update scratch.
  std::vector<double> work_;
  std::vector<char> row_assigned_;
  std::vector<int> new_basic_;
  std::vector<double> spike_;      // spike column, by position
  std::vector<double> mu_;         // row-eta multipliers, by position
  std::vector<int> spike_rows_;    // spike entries surviving the drop tol
  std::vector<double> spike_vals_;
};

}  // namespace flex::solver

#endif  // FLEX_SOLVER_BASIS_LU_HPP_
