/**
 * @file
 * Product-form LU factorization of a simplex basis.
 *
 * The revised simplex never forms B^-1 explicitly. Instead this class
 * maintains B^-1 as a product of elementary eta matrices:
 *
 *  - Refactorize() rebuilds the product from scratch by Gauss-Jordan
 *    elimination of the basis columns with row partial pivoting — one
 *    eta per basis column, which is exactly an LU decomposition kept in
 *    product form (the pivot order plays the role of the row
 *    permutation).
 *  - Update() appends one eta per simplex pivot between refactors, the
 *    classic product-form update. Eta files grow and lose accuracy, so
 *    the solver refactorizes periodically (and on numerical distress);
 *    both events are counted for telemetry.
 *
 * All vectors are kept in *row* coordinates: Ftran(v) computes P B^-1 v
 * where P is the pivot-order permutation, and the solver's
 * basic-variable-of-row bookkeeping absorbs P, so callers never see it.
 */
#ifndef FLEX_SOLVER_BASIS_LU_HPP_
#define FLEX_SOLVER_BASIS_LU_HPP_

#include <cstdint>
#include <vector>

#include "solver/model.hpp"

namespace flex::solver {

class BasisFactorization {
 public:
  /** Cumulative counters, surfaced as solver telemetry. */
  struct Stats {
    std::int64_t refactors = 0;    ///< Refactorize() calls that ran
    std::int64_t eta_updates = 0;  ///< Update() etas appended
  };

  /** Prepares for a basis of @p rows rows; drops all etas. */
  void Reset(int rows);

  /**
   * Rebuilds the factorization for the basis listed in @p basic_of_row
   * (column ids into @p cols, one per row, order irrelevant on input).
   * On success the vector is permuted so that basic_of_row[r] is the
   * column pivoted in row r — the arrangement every beta/Ftran result
   * is indexed by — and true is returned. On a numerically singular
   * basis, false is returned and the factorization is unusable until
   * the caller repairs the basis and refactorizes again.
   */
  bool Refactorize(const SparseColumns& cols, std::vector<int>& basic_of_row);

  /** v := P B^-1 v (dense @p v of rows() entries). */
  void Ftran(std::vector<double>& v) const;

  /** v := (P B^-1)^T v — dual solves (dense @p v of rows() entries). */
  void Btran(std::vector<double>& v) const;

  /**
   * Product-form update after a pivot: the entering column, already
   * transformed by Ftran into @p alpha (dense, row coordinates), replaces
   * the basic variable of @p pivot_row. The caller must have verified
   * |alpha[pivot_row]| is acceptable.
   */
  void Update(int pivot_row, const std::vector<double>& alpha);

  int rows() const { return rows_; }
  /** Etas appended by Update() since the last Refactorize(). */
  int updates_since_refactor() const { return updates_since_refactor_; }
  const Stats& stats() const { return stats_; }

 private:
  void AppendEta(int pivot_row, const std::vector<double>& column);

  int rows_ = 0;
  int updates_since_refactor_ = 0;
  Stats stats_;

  // Eta file, flat: eta e pivots row eta_pivot_row_[e] with pivot value
  // eta_pivot_val_[e]; its off-pivot terms occupy
  // [eta_start_[e], eta_start_[e + 1]) of eta_row_/eta_val_.
  std::vector<int> eta_pivot_row_;
  std::vector<double> eta_pivot_val_;
  std::vector<int> eta_start_;
  std::vector<int> eta_row_;
  std::vector<double> eta_val_;

  // Refactorization scratch.
  std::vector<double> work_;
  std::vector<int> touched_;
  std::vector<char> row_assigned_;
  std::vector<int> new_basic_;
};

}  // namespace flex::solver

#endif  // FLEX_SOLVER_BASIS_LU_HPP_
