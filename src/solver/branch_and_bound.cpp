#include "branch_and_bound.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <queue>
#include <utility>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "solver/presolve.hpp"

namespace flex::solver {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/**
 * Activity-propagation passes per interior node. Two passes catch the
 * dominant pattern (a branched binary tightening its rows' partners);
 * a third sweeps up second-order implications cheaply. More passes give
 * diminishing returns against the LP the node solves anyway.
 */
constexpr int kPropagatePasses = 3;

using Clock = std::chrono::steady_clock;

/**
 * A subproblem, stored as a bound-delta chain: each node records only
 * the single (var, lo, hi) restriction its branch added, plus a pointer
 * to its parent. Materializing the full override vector walks the chain
 * (nearest override wins — branching only ever tightens a bound), so a
 * frontier of a million nodes costs one small struct per node instead
 * of a full override vector per node.
 */
struct Node {
  std::shared_ptr<const Node> parent;
  int var = -1;          // branched variable; -1 for the root
  double lo = 0.0;
  double hi = 0.0;
  double bound = 0.0;    // parent LP bound, in "maximize" orientation
  int depth = 0;
  std::uint64_t seq = 0; // creation order; ties in bound break on this
  /** Parent's optimal LP basis; warm-starts this node's re-solve. */
  std::shared_ptr<const SimplexBasis> basis;
  /**
   * Wave slot in which the parent's LP was solved. Children prefer that
   * slot so the workspace whose factors realise (or sit one sibling
   * away from) the warm-start snapshot gets handed exactly that
   * snapshot — the resident-basis adoption/patch routes then skip the
   * refactorization an install would pay. Purely a placement hint;
   * a pure function of the search history, so it cannot affect results.
   */
  int pref_slot = -1;
};

/**
 * Frontier order: best (largest) bound first, ties newest-first. The
 * newest-first tie-break is best-bound with plunging: a freshly
 * branched child pops before the (often huge) plateau of equal-bound
 * nodes, so it is solved in the wave right after its parent — while
 * the parent's factorized basis is still resident in its wave slot,
 * which is what lets the adopt/patch warm routes skip the
 * refactorization an install would pay. Diving deeper first also
 * reaches integral incumbents sooner, which tightens pruning on the
 * plateau itself. The deterministic seq tie-break makes the pop order
 * — and therefore the wave composition — a pure function of the
 * search history, independent of heap internals and thread count.
 */
struct NodeOrder {
  bool
  operator()(const std::shared_ptr<const Node>& a,
             const std::shared_ptr<const Node>& b) const
  {
    if (a->bound != b->bound)
      return a->bound < b->bound;
    return a->seq < b->seq;
  }
};

/** One wave slot's LP outcome, produced concurrently, merged serially. */
struct WaveResult {
  LpResult lp;
  std::shared_ptr<SimplexBasis> basis;
  int lane = 0;  // pool lane that executed the LP (telemetry only)
  /** Bound propagation proved the node infeasible; no LP was solved. */
  bool propagation_pruned = false;
  int propagated_bounds = 0;  // bound tightenings applied before the LP
};

/** Most-fractional integer variable, or -1 when integral. */
int
PickBranchVariable(const Model& model, const std::vector<double>& x,
                   double tol)
{
  int best = -1;
  double best_score = tol;
  for (int j = 0; j < model.NumVariables(); ++j) {
    if (!model.variables()[static_cast<std::size_t>(j)].is_integer)
      continue;
    const double value = x[static_cast<std::size_t>(j)];
    const double frac = std::fabs(value - std::round(value));
    // Distance from integrality, maximized at 0.5.
    if (frac > best_score) {
      best_score = frac;
      best = j;
    }
  }
  return best;
}

double
RelativeGap(double bound, double incumbent)
{
  return std::fabs(bound - incumbent) / std::max(1.0, std::fabs(incumbent));
}

}  // namespace

MipResult
BranchAndBoundSolver::Solve(const Model& model) const
{
  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options_.time_budget_seconds));

  // Live-progress plumbing: additive relaxed stores only, so several
  // concurrent solves can share one sink and a scraper thread can read
  // it mid-solve. The guard clears the per-solve gauges and counts the
  // solve finished on every exit path.
  LiveSolverStats* const live = options_.live;
  struct LiveGuard {
    LiveSolverStats* live;
    ~LiveGuard()
    {
      if (live != nullptr) {
        live->wave_nodes.store(0, std::memory_order_relaxed);
        live->open_nodes.store(0, std::memory_order_relaxed);
        live->solves_finished.fetch_add(1, std::memory_order_relaxed);
      }
    }
  } live_guard{live};
  if (live != nullptr)
    live->solves_started.fetch_add(1, std::memory_order_relaxed);
  const double sense = model.sense() == Sense::kMaximize ? 1.0 : -1.0;
  const SimplexSolver lp(options_.lp);

  // Presolve shrinks the model once, up front; the search then runs
  // entirely in the reduced variable space. Incumbents are postsolved
  // back to the original space (and re-verified against the original
  // model) before acceptance, and every LP bound is shifted by the
  // objective contribution of the eliminated variables.
  Presolved pre;
  bool use_presolve = false;
  double pre_offset = 0.0;
  MipResult result;
  if (options_.presolve) {
    if (Presolve(model, &pre) == PresolveStatus::kInfeasible) {
      result.status = MipStatus::kInfeasible;
      result.presolve_rows_removed = pre.rows_removed;
      result.presolve_cols_removed = pre.cols_removed;
      if (options_.trace != nullptr) {
        SolverTracePoint point;
        point.label = "final";
        options_.trace->Add(std::move(point));
      }
      return result;
    }
    use_presolve = true;
    pre_offset = pre.objective_offset;
    result.presolve_rows_removed = pre.rows_removed;
    result.presolve_cols_removed = pre.cols_removed;
  }
  const Model& search = use_presolve ? pre.reduced : model;
  const int n = search.NumVariables();

  // Resolve the execution width. An explicit pool always wins (tests
  // exercise real concurrency this way even on 1-core machines);
  // otherwise FLEX_SOLVER_THREADS / hardware concurrency decide whether
  // the shared pool is worth involving at all.
  common::ThreadPool* pool = options_.pool;
  if (pool == nullptr) {
    const int resolved = options_.threads > 0
                             ? options_.threads
                             : common::ThreadPool::ConfiguredThreads();
    if (resolved > 1 && options_.threads != 1)
      pool = &common::ThreadPool::Shared();
  }
  if (pool != nullptr && pool->size() <= 1)
    pool = nullptr;
  const int lanes = pool != nullptr ? pool->size() : 1;
  const std::int64_t steals_before = pool != nullptr ? pool->steal_count() : 0;

  result.threads_used = lanes;
  result.nodes_per_thread.assign(static_cast<std::size_t>(lanes), 0);

  // One workspace per wave slot plus one for serial solves (root,
  // dives). Slots are positional, not thread-identified: task i of a
  // wave always uses workspace i, so no two concurrent tasks can share
  // a buffer no matter which pool lane picks them up.
  const int wave_capacity = std::max(1, options_.wave_size);
  std::vector<SimplexWorkspace> workspaces(
      static_cast<std::size_t>(wave_capacity) + 1);
  SimplexWorkspace& serial_ws = workspaces.back();

  double incumbent_max = -kInf;  // incumbent objective, maximize orientation
  double best_bound_max = kInf;  // best proven bound, maximize orientation

  auto solve_lp = [&](const BoundOverrides& overrides,
                      const SimplexBasis* warm, SimplexBasis* basis_out) {
    LpResult sub =
        lp.SolveWithBounds(search, overrides, &serial_ws, warm, basis_out);
    ++result.lp_solves;
    if (live != nullptr)
      live->lp_solves.fetch_add(1, std::memory_order_relaxed);
    result.simplex_pivots += sub.iterations;
    result.simplex_refactors += sub.refactors;
    result.eta_updates += sub.eta_updates;
    result.dual_pivots += sub.dual_pivots;
    if (sub.warm_start_attempted)
      ++result.basis_reuse_attempts;
    if (sub.warm_start_used)
      ++result.basis_reuse_hits;
    if (sub.warm_dual_restart) {
      ++result.warm_dual_restarts;
      if (live != nullptr)
        live->warm_dual_restarts.fetch_add(1, std::memory_order_relaxed);
    }
    if (live != nullptr && sub.dual_pivots > 0)
      live->dual_pivots.fetch_add(sub.dual_pivots, std::memory_order_relaxed);
    return sub;
  };

  auto emit_trace = [&](const char* label) {
    if (options_.trace == nullptr)
      return;
    SolverTracePoint point;
    point.label = label;
    point.elapsed_s =
        std::chrono::duration<double>(Clock::now() - start).count();
    point.nodes = result.nodes_explored;
    point.lp_solves = result.lp_solves;
    point.pivots = result.simplex_pivots;
    point.basis_attempts = result.basis_reuse_attempts;
    point.basis_hits = result.basis_reuse_hits;
    point.refactors = result.simplex_refactors;
    point.eta_updates = result.eta_updates;
    point.presolve_rows_removed = result.presolve_rows_removed;
    point.presolve_cols_removed = result.presolve_cols_removed;
    point.dual_pivots = result.dual_pivots;
    point.warm_dual_restarts = result.warm_dual_restarts;
    point.propagation_prunes = result.propagation_prunes;
    point.propagated_bounds = result.propagated_bounds;
    point.has_incumbent = incumbent_max > -kInf;
    point.incumbent = point.has_incumbent ? sense * incumbent_max : 0.0;
    // Bound unknown until the root relaxation lands (warm-start points).
    point.bound = std::isfinite(best_bound_max) ? sense * best_bound_max
                                                : point.incumbent;
    if (point.has_incumbent && std::isfinite(best_bound_max))
      point.gap = RelativeGap(best_bound_max, incumbent_max);
    options_.trace->Add(std::move(point));
  };

  auto integral = [&](const std::vector<double>& x) {
    return PickBranchVariable(search, x, options_.integrality_tolerance) < 0;
  };

  /**
   * Deterministic incumbent acceptance, in ORIGINAL variable space: a
   * candidate wins on strictly better objective, or — within tie
   * tolerance — on lexicographically smaller solution. The tie rule
   * makes the surviving incumbent a function of the set of candidates
   * seen, not of their arrival order, which keeps equal-objective
   * solves stable across search tweaks. Feasibility is always checked
   * against the original model: postsolve is exact by construction, but
   * the original model is the contract the incumbent must honour.
   */
  auto consider = [&](std::vector<double> candidate) {
    if (!model.IsFeasible(candidate, 1e-6))
      return;
    const double value = sense * model.ObjectiveValue(candidate);
    bool accept = value > incumbent_max + 1e-9;
    if (!accept && std::isfinite(incumbent_max) && !result.x.empty() &&
        value > incumbent_max - 1e-9) {
      accept = std::lexicographical_compare(candidate.begin(), candidate.end(),
                                            result.x.begin(), result.x.end());
    }
    if (!accept)
      return;
    incumbent_max = std::max(incumbent_max, value);
    result.x = std::move(candidate);
    result.objective = sense * value;
    result.status = MipStatus::kFeasible;
    emit_trace("incumbent");
  };

  /** Rounds a search-space LP point, lifts it, and offers it up. */
  auto accept_incumbent = [&](const std::vector<double>& x) {
    std::vector<double> rounded = x;
    for (int j = 0; j < n; ++j) {
      if (search.variables()[static_cast<std::size_t>(j)].is_integer) {
        rounded[static_cast<std::size_t>(j)] =
            std::round(rounded[static_cast<std::size_t>(j)]);
      }
    }
    if (use_presolve) {
      std::vector<double> original;
      Postsolve(pre, rounded, &original);
      consider(std::move(original));
    } else {
      consider(std::move(rounded));
    }
  };

  /**
   * Greedy dive: from a fractional LP solution, fix every near-integral
   * integer variable at once (plus the most fractional one, rounded),
   * re-solve, and repeat. Bulk fixing reaches integer-feasible points in
   * a handful of LP solves even for hundreds of binaries, which is what
   * makes large single-batch (Oracle-style) models productive within
   * small budgets. If a bulk step goes infeasible, retry fixing only the
   * single most fractional variable before giving up. Each re-solve is
   * warm-started from the previous step's basis: fixing variables near
   * their LP values usually leaves that basis primal feasible, so dives
   * are where basis reuse pays off the most.
   */
  auto dive = [&](BoundOverrides overrides, std::vector<double> x,
                  std::shared_ptr<const SimplexBasis> seed_basis) {
    if (overrides.empty())
      overrides.assign(static_cast<std::size_t>(n), std::nullopt);
    SimplexBasis basis_a;
    SimplexBasis basis_b;
    const SimplexBasis* warm =
        seed_basis != nullptr ? seed_basis.get() : nullptr;
    SimplexBasis* out = &basis_a;
    for (int step = 0; step < options_.dive_depth; ++step) {
      if (Clock::now() > deadline)
        return;
      const int j =
          PickBranchVariable(search, x, options_.integrality_tolerance);
      if (j < 0) {
        accept_incumbent(x);
        return;
      }
      BoundOverrides bulk = overrides;
      constexpr double kNearIntegral = 0.05;
      for (int v = 0; v < n; ++v) {
        if (!search.variables()[static_cast<std::size_t>(v)].is_integer)
          continue;
        const double value = x[static_cast<std::size_t>(v)];
        const double rounded = std::round(value);
        if (std::fabs(value - rounded) <= kNearIntegral)
          bulk[static_cast<std::size_t>(v)] = {rounded, rounded};
      }
      const double target = std::round(x[static_cast<std::size_t>(j)]);
      bulk[static_cast<std::size_t>(j)] = {target, target};

      LpResult sub = solve_lp(bulk, warm, out);
      if (sub.IsOptimal()) {
        overrides = std::move(bulk);
      } else {
        // Bulk step infeasible: fall back to fixing just one variable,
        // trying the rounded value first and the other side of the
        // fraction second (in capacity-style models rounding up often
        // dead-ends where rounding down cannot).
        overrides[static_cast<std::size_t>(j)] = {target, target};
        sub = solve_lp(overrides, warm, out);
        if (!sub.IsOptimal()) {
          const Variable& vj = search.variables()[static_cast<std::size_t>(j)];
          const double other = target <= std::floor(x[static_cast<std::size_t>(j)])
                                   ? target + 1.0
                                   : target - 1.0;
          if (other < vj.lower - 1e-9 || other > vj.upper + 1e-9)
            return;  // dive dead-ends; fine, it is only a heuristic
          overrides[static_cast<std::size_t>(j)] = {other, other};
          sub = solve_lp(overrides, warm, out);
          if (!sub.IsOptimal())
            return;
        }
      }
      x = std::move(sub.x);
      warm = out;
      out = out == &basis_a ? &basis_b : &basis_a;
    }
  };

  /** Full override vector of a node: walk the delta chain. */
  auto materialize = [&](const Node* node) {
    BoundOverrides overrides;
    if (node->var < 0 && node->parent == nullptr)
      return overrides;  // root: no overrides at all
    overrides.assign(static_cast<std::size_t>(n), std::nullopt);
    for (const Node* p = node; p != nullptr; p = p->parent.get()) {
      if (p->var >= 0 && !overrides[static_cast<std::size_t>(p->var)])
        overrides[static_cast<std::size_t>(p->var)] = {p->lo, p->hi};
    }
    return overrides;
  };

  // The caller's warm start lives in the original variable space; it is
  // rounded and offered directly, bypassing the search-space lift.
  if (!options_.warm_start.empty() &&
      static_cast<int>(options_.warm_start.size()) == model.NumVariables()) {
    std::vector<double> rounded = options_.warm_start;
    for (int j = 0; j < model.NumVariables(); ++j) {
      if (model.variables()[static_cast<std::size_t>(j)].is_integer) {
        rounded[static_cast<std::size_t>(j)] =
            std::round(rounded[static_cast<std::size_t>(j)]);
      }
    }
    consider(std::move(rounded));
  }

  // Root relaxation.
  auto root_basis = std::make_shared<SimplexBasis>();
  const LpResult root = solve_lp(BoundOverrides{}, nullptr, root_basis.get());
  if (root.status == LpStatus::kInfeasible) {
    result.status = MipStatus::kInfeasible;
    emit_trace("final");
    return result;
  }
  if (root.status == LpStatus::kUnbounded) {
    // With all binaries bounded this means a continuous ray; treat as a
    // configuration error rather than guessing.
    FLEX_CONFIG_ERROR("MILP relaxation is unbounded");
  }
  FLEX_REQUIRE(root.IsOptimal(), "root LP failed to converge");

  best_bound_max = sense * (root.objective + pre_offset);
  emit_trace("root");
  if (integral(root.x)) {
    accept_incumbent(root.x);
    result.status = MipStatus::kOptimal;
    result.bound = root.objective + pre_offset;
    result.gap = 0.0;
    result.nodes_explored = 1;
    result.nodes_per_thread[0] = 1;
    emit_trace("final");
    return result;
  }
  dive(BoundOverrides{}, root.x, root_basis);

  std::priority_queue<std::shared_ptr<const Node>,
                      std::vector<std::shared_ptr<const Node>>, NodeOrder>
      open;
  std::uint64_t next_seq = 0;
  open.push(std::make_shared<const Node>(Node{
      nullptr, -1, 0.0, 0.0, best_bound_max, 0, next_seq++, root_basis}));

  bool exhausted_budget = false;
  std::vector<std::shared_ptr<const Node>> wave_nodes;
  std::vector<WaveResult> wave_results;
  while (!open.empty()) {
    if (Clock::now() > deadline ||
        result.nodes_explored >= options_.max_nodes) {
      exhausted_budget = true;
      break;
    }
    best_bound_max = open.top()->bound;
    if (incumbent_max > -kInf &&
        RelativeGap(best_bound_max, incumbent_max) <=
            options_.gap_tolerance) {
      // Best open bound already proves the incumbent (near-)optimal.
      best_bound_max = std::max(best_bound_max, incumbent_max);
      break;
    }

    // Select the wave: best-bound nodes that can still beat the
    // incumbent. Pruned-at-selection nodes cost no LP and do not count
    // against the node budget (matching the serial bound-prune). The
    // wave is clamped to the remaining node budget so max_nodes is
    // honoured exactly.
    const std::int64_t budget_left =
        options_.max_nodes - result.nodes_explored;
    const int want = static_cast<int>(
        std::min<std::int64_t>(wave_capacity, budget_left));
    wave_nodes.clear();
    while (static_cast<int>(wave_nodes.size()) < want && !open.empty()) {
      std::shared_ptr<const Node> node = open.top();
      open.pop();
      if (incumbent_max > -kInf && node->bound <= incumbent_max + 1e-9)
        continue;  // cannot improve the incumbent
      wave_nodes.push_back(std::move(node));
    }
    if (wave_nodes.empty())
      continue;  // selection drained the queue; loop condition exits

    // Solve the wave's LP relaxations, concurrently when a pool is
    // available. Every task is a pure function of (model, node chain,
    // parent basis) writing only its own slot, so the serial and
    // parallel paths produce byte-identical WaveResults.
    const std::size_t count = wave_nodes.size();
    if (live != nullptr) {
      live->waves.fetch_add(1, std::memory_order_relaxed);
      live->wave_nodes.store(static_cast<std::int64_t>(count),
                             std::memory_order_relaxed);
    }
    wave_results.assign(count, WaveResult{});

    // Workspace placement with parent affinity: a node whose parent
    // was solved in slot s reclaims s, and — crucially — BOTH children
    // of a branching may claim it (up to two claimants per slot).
    // Claimants of one slot run as a sequential chain inside a single
    // task, in wave order: the first usually adopts the parent's
    // still-resident factorization outright, and its sibling then
    // starts from a basis only a few pivots away, which the
    // Forrest–Tomlin patch route absorbs without a refactorization.
    // Everyone else fills the lowest free slots. Deterministic — a
    // pure function of the wave composition and the recorded slots —
    // and collision-free, since a workspace is only ever touched by
    // its own chain's task.
    constexpr int kMaxChain = 2;
    std::vector<int> slot_of(count, -1);
    std::vector<signed char> slot_claims(
        static_cast<std::size_t>(wave_capacity), 0);
    for (std::size_t i = 0; i < count; ++i) {
      const int pref = wave_nodes[i]->pref_slot;
      if (pref >= 0 && pref < wave_capacity &&
          slot_claims[static_cast<std::size_t>(pref)] < kMaxChain) {
        slot_of[i] = pref;
        ++slot_claims[static_cast<std::size_t>(pref)];
      }
    }
    for (std::size_t i = 0, next = 0; i < count; ++i) {
      if (slot_of[i] >= 0)
        continue;
      // Chains never exceed the wave size, so an unclaimed slot always
      // exists for the overflow.
      while (slot_claims[next] != 0)
        ++next;
      slot_of[i] = static_cast<int>(next);
      slot_claims[next] = 1;
    }
    std::vector<std::vector<std::size_t>> chain_of_slot(
        static_cast<std::size_t>(wave_capacity));
    for (std::size_t i = 0; i < count; ++i)
      chain_of_slot[static_cast<std::size_t>(slot_of[i])].push_back(i);

    std::vector<std::function<void()>> tasks;
    tasks.reserve(count);
    for (int slot = 0; slot < wave_capacity; ++slot) {
      const std::vector<std::size_t>& chain =
          chain_of_slot[static_cast<std::size_t>(slot)];
      if (chain.empty())
        continue;
      tasks.push_back([&, slot, &chain = chain_of_slot[static_cast<
                                     std::size_t>(slot)]] {
        for (const std::size_t i : chain) {
          const Node* node = wave_nodes[i].get();
          WaveResult wr;
          wr.basis = std::make_shared<SimplexBasis>();
          BoundOverrides overrides = materialize(node);
          // Node-local domain propagation: the branch just taken often
          // implies further bounds (a placed rack saturating a capacity
          // row forces its sibling indicators to zero). Tightening here
          // shrinks the LP's feasible box — and a propagated
          // contradiction prunes the node without paying for an LP at
          // all. Pure function of (model, overrides), so the answer is
          // thread-independent.
          if (node->var >= 0 &&
              PropagateBounds(search, &overrides, kPropagatePasses,
                              &wr.propagated_bounds) ==
                  PropagateStatus::kInfeasible) {
            wr.propagation_pruned = true;
          } else {
            wr.lp = lp.SolveWithBounds(
                search, overrides,
                &workspaces[static_cast<std::size_t>(slot)],
                node->basis.get(), wr.basis.get());
          }
          const int lane = common::ThreadPool::WorkerIndex();
          wr.lane = lane >= 1 && lane < lanes ? lane : 0;
          wave_results[i] = std::move(wr);
        }
      });
    }
    if (pool != nullptr && count > 1) {
      pool->Run(std::move(tasks));
    } else {
      for (const auto& task : tasks)
        task();
    }

    // Serial merge in wave order: counters, incumbents, branching. All
    // search-state mutation happens here, on one thread, in an order
    // fixed by the frontier — never by task completion order.
    for (std::size_t i = 0; i < count; ++i) {
      const Node* node = wave_nodes[i].get();
      WaveResult& wr = wave_results[i];
      ++result.nodes_explored;
      ++result.nodes_per_thread[static_cast<std::size_t>(wr.lane)];
      result.propagated_bounds += wr.propagated_bounds;
      if (!wr.propagation_pruned) {
        ++result.lp_solves;
        result.simplex_pivots += wr.lp.iterations;
        result.simplex_refactors += wr.lp.refactors;
        result.eta_updates += wr.lp.eta_updates;
        result.dual_pivots += wr.lp.dual_pivots;
        if (wr.lp.warm_start_attempted)
          ++result.basis_reuse_attempts;
        if (wr.lp.warm_start_used)
          ++result.basis_reuse_hits;
        if (wr.lp.warm_dual_restart)
          ++result.warm_dual_restarts;
      } else {
        ++result.propagation_prunes;
      }
      if (live != nullptr) {
        live->nodes_explored.fetch_add(1, std::memory_order_relaxed);
        if (!wr.propagation_pruned) {
          live->lp_solves.fetch_add(1, std::memory_order_relaxed);
          if (wr.lp.warm_start_attempted)
            live->basis_reuse_attempts.fetch_add(1, std::memory_order_relaxed);
          if (wr.lp.warm_start_used)
            live->basis_reuse_hits.fetch_add(1, std::memory_order_relaxed);
          if (wr.lp.warm_dual_restart)
            live->warm_dual_restarts.fetch_add(1, std::memory_order_relaxed);
          if (wr.lp.dual_pivots > 0)
            live->dual_pivots.fetch_add(wr.lp.dual_pivots,
                                        std::memory_order_relaxed);
        }
      }
      if (options_.trace_node_interval > 0 &&
          result.nodes_explored % options_.trace_node_interval == 0)
        emit_trace("node");
      if (wr.propagation_pruned || !wr.lp.IsOptimal())
        continue;  // infeasible subtree (propagated or LP-proven): prune
      const double node_bound = sense * (wr.lp.objective + pre_offset);
      if (node_bound <= incumbent_max + 1e-9)
        continue;  // cannot improve the incumbent

      const int j = PickBranchVariable(search, wr.lp.x,
                                       options_.integrality_tolerance);
      if (j < 0) {
        accept_incumbent(wr.lp.x);
        continue;
      }
      if (node->depth == 0 || (node->depth % 8) == 0)
        dive(materialize(node), wr.lp.x, wr.basis);

      const double value = wr.lp.x[static_cast<std::size_t>(j)];
      const double floor_value = std::floor(value);
      const Variable& var = search.variables()[static_cast<std::size_t>(j)];
      double lo = var.lower;
      double hi = var.upper;
      for (const Node* p = node; p != nullptr; p = p->parent.get()) {
        if (p->var == j) {
          lo = p->lo;
          hi = p->hi;
          break;  // nearest restriction is the tightest
        }
      }
      std::shared_ptr<const Node> parent = wave_nodes[i];
      for (int side = 0; side < 2; ++side) {
        double child_lo = lo;
        double child_hi = hi;
        if (side == 0)
          child_hi = std::min(child_hi, floor_value);  // x_j <= floor
        else
          child_lo = std::max(child_lo, floor_value + 1.0);  // x_j >= ceil
        if (child_lo > child_hi + 1e-12)
          continue;
        open.push(std::make_shared<const Node>(
            Node{parent, j, child_lo, child_hi, node_bound, node->depth + 1,
                 next_seq++, wr.basis, slot_of[i]}));
      }
    }
    if (live != nullptr)
      live->open_nodes.store(static_cast<std::int64_t>(open.size()),
                             std::memory_order_relaxed);
  }

  if (!open.empty() && exhausted_budget) {
    // The tightest open bound still caps the optimum.
    best_bound_max = std::max(best_bound_max, open.top()->bound);
  }
  if (open.empty() && !exhausted_budget) {
    // Tree fully explored: the incumbent (if any) is optimal.
    best_bound_max = incumbent_max;
  }

  result.bound = sense * best_bound_max;
  if (incumbent_max > -kInf) {
    result.gap = RelativeGap(best_bound_max, incumbent_max);
    result.status = result.gap <= options_.gap_tolerance + 1e-12
                        ? MipStatus::kOptimal
                        : MipStatus::kFeasible;
  } else {
    result.status =
        exhausted_budget ? MipStatus::kNoSolution : MipStatus::kInfeasible;
  }
  if (pool != nullptr)
    result.steal_count = pool->steal_count() - steals_before;
  emit_trace("final");
  return result;
}

}  // namespace flex::solver
