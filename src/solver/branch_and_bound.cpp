#include "branch_and_bound.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <queue>

#include "common/error.hpp"

namespace flex::solver {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using Clock = std::chrono::steady_clock;

/** A subproblem: variable bound overrides plus its LP relaxation bound. */
struct Node {
  BoundOverrides overrides;
  double bound;  // LP bound, in "maximize" orientation
  int depth;
};

struct WorseBound {
  bool
  operator()(const std::shared_ptr<Node>& a,
             const std::shared_ptr<Node>& b) const
  {
    return a->bound < b->bound;  // best (largest) bound first
  }
};

/** Most-fractional integer variable, or -1 when integral. */
int
PickBranchVariable(const Model& model, const std::vector<double>& x,
                   double tol)
{
  int best = -1;
  double best_score = tol;
  for (int j = 0; j < model.NumVariables(); ++j) {
    if (!model.variables()[static_cast<std::size_t>(j)].is_integer)
      continue;
    const double value = x[static_cast<std::size_t>(j)];
    const double frac = std::fabs(value - std::round(value));
    // Distance from integrality, maximized at 0.5.
    if (frac > best_score) {
      best_score = frac;
      best = j;
    }
  }
  return best;
}

double
RelativeGap(double bound, double incumbent)
{
  return std::fabs(bound - incumbent) / std::max(1.0, std::fabs(incumbent));
}

}  // namespace

MipResult
BranchAndBoundSolver::Solve(const Model& model) const
{
  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options_.time_budget_seconds));
  const double sense = model.sense() == Sense::kMaximize ? 1.0 : -1.0;
  const SimplexSolver lp(options_.lp);

  MipResult result;
  double incumbent_max = -kInf;  // incumbent objective, maximize orientation
  double best_bound_max = kInf;  // best proven bound, maximize orientation

  auto solve_lp = [&](const BoundOverrides& overrides) {
    LpResult sub = overrides.empty() ? lp.Solve(model)
                                     : lp.SolveWithBounds(model, overrides);
    ++result.lp_solves;
    result.simplex_pivots += sub.iterations;
    return sub;
  };

  auto emit_trace = [&](const char* label) {
    if (options_.trace == nullptr)
      return;
    SolverTracePoint point;
    point.label = label;
    point.elapsed_s =
        std::chrono::duration<double>(Clock::now() - start).count();
    point.nodes = result.nodes_explored;
    point.lp_solves = result.lp_solves;
    point.pivots = result.simplex_pivots;
    point.has_incumbent = incumbent_max > -kInf;
    point.incumbent = point.has_incumbent ? sense * incumbent_max : 0.0;
    // Bound unknown until the root relaxation lands (warm-start points).
    point.bound = std::isfinite(best_bound_max) ? sense * best_bound_max
                                                : point.incumbent;
    if (point.has_incumbent && std::isfinite(best_bound_max))
      point.gap = RelativeGap(best_bound_max, incumbent_max);
    options_.trace->Add(std::move(point));
  };

  auto integral = [&](const std::vector<double>& x) {
    return PickBranchVariable(model, x, options_.integrality_tolerance) < 0;
  };

  auto accept_incumbent = [&](const std::vector<double>& x) {
    std::vector<double> rounded = x;
    for (int j = 0; j < model.NumVariables(); ++j) {
      if (model.variables()[static_cast<std::size_t>(j)].is_integer) {
        rounded[static_cast<std::size_t>(j)] =
            std::round(rounded[static_cast<std::size_t>(j)]);
      }
    }
    if (!model.IsFeasible(rounded, 1e-6))
      return;
    const double value = sense * model.ObjectiveValue(rounded);
    if (value > incumbent_max) {
      incumbent_max = value;
      result.x = std::move(rounded);
      result.objective = sense * incumbent_max;
      result.status = MipStatus::kFeasible;
      emit_trace("incumbent");
    }
  };

  /**
   * Greedy dive: from a fractional LP solution, fix every near-integral
   * integer variable at once (plus the most fractional one, rounded),
   * re-solve, and repeat. Bulk fixing reaches integer-feasible points in
   * a handful of LP solves even for hundreds of binaries, which is what
   * makes large single-batch (Oracle-style) models productive within
   * small budgets. If a bulk step goes infeasible, retry fixing only the
   * single most fractional variable before giving up.
   */
  auto dive = [&](BoundOverrides overrides, std::vector<double> x) {
    if (overrides.empty())
      overrides.assign(static_cast<std::size_t>(model.NumVariables()),
                       std::nullopt);
    for (int step = 0; step < options_.dive_depth; ++step) {
      if (Clock::now() > deadline)
        return;
      const int j =
          PickBranchVariable(model, x, options_.integrality_tolerance);
      if (j < 0) {
        accept_incumbent(x);
        return;
      }
      BoundOverrides bulk = overrides;
      constexpr double kNearIntegral = 0.05;
      for (int v = 0; v < model.NumVariables(); ++v) {
        if (!model.variables()[static_cast<std::size_t>(v)].is_integer)
          continue;
        const double value = x[static_cast<std::size_t>(v)];
        const double rounded = std::round(value);
        if (std::fabs(value - rounded) <= kNearIntegral)
          bulk[static_cast<std::size_t>(v)] = {rounded, rounded};
      }
      const double target = std::round(x[static_cast<std::size_t>(j)]);
      bulk[static_cast<std::size_t>(j)] = {target, target};

      LpResult sub = solve_lp(bulk);
      if (sub.IsOptimal()) {
        overrides = std::move(bulk);
      } else {
        // Bulk step infeasible: fall back to fixing just one variable.
        overrides[static_cast<std::size_t>(j)] = {target, target};
        sub = solve_lp(overrides);
        if (!sub.IsOptimal())
          return;  // dive dead-ends; fine, it is only a heuristic
      }
      x = sub.x;
    }
  };

  if (!options_.warm_start.empty() &&
      static_cast<int>(options_.warm_start.size()) == model.NumVariables())
    accept_incumbent(options_.warm_start);

  // Root relaxation.
  const LpResult root = solve_lp(BoundOverrides{});
  if (root.status == LpStatus::kInfeasible) {
    result.status = MipStatus::kInfeasible;
    emit_trace("final");
    return result;
  }
  if (root.status == LpStatus::kUnbounded) {
    // With all binaries bounded this means a continuous ray; treat as a
    // configuration error rather than guessing.
    FLEX_CONFIG_ERROR("MILP relaxation is unbounded");
  }
  FLEX_REQUIRE(root.IsOptimal(), "root LP failed to converge");

  best_bound_max = sense * root.objective;
  emit_trace("root");
  if (integral(root.x)) {
    accept_incumbent(root.x);
    result.status = MipStatus::kOptimal;
    result.bound = root.objective;
    result.gap = 0.0;
    result.nodes_explored = 1;
    emit_trace("final");
    return result;
  }
  dive(BoundOverrides{}, root.x);

  std::priority_queue<std::shared_ptr<Node>,
                      std::vector<std::shared_ptr<Node>>, WorseBound>
      open;
  open.push(std::make_shared<Node>(
      Node{BoundOverrides{}, best_bound_max, 0}));

  bool exhausted_budget = false;
  while (!open.empty()) {
    if (Clock::now() > deadline ||
        result.nodes_explored >= options_.max_nodes) {
      exhausted_budget = true;
      break;
    }
    auto node = open.top();
    open.pop();
    best_bound_max = node->bound;
    if (incumbent_max > -kInf &&
        RelativeGap(best_bound_max, incumbent_max) <=
            options_.gap_tolerance) {
      // Best open bound already proves the incumbent (near-)optimal.
      best_bound_max = std::max(best_bound_max, incumbent_max);
      break;
    }

    const LpResult relax = solve_lp(node->overrides);
    ++result.nodes_explored;
    if (options_.trace_node_interval > 0 &&
        result.nodes_explored % options_.trace_node_interval == 0)
      emit_trace("node");
    if (!relax.IsOptimal())
      continue;  // infeasible subtree (or stalled LP): prune
    const double node_bound = sense * relax.objective;
    if (node_bound <= incumbent_max + 1e-9)
      continue;  // cannot improve the incumbent

    const int j =
        PickBranchVariable(model, relax.x, options_.integrality_tolerance);
    if (j < 0) {
      accept_incumbent(relax.x);
      continue;
    }
    if (node->depth == 0 || (node->depth % 8) == 0)
      dive(node->overrides, relax.x);

    const double value = relax.x[static_cast<std::size_t>(j)];
    const double floor_value = std::floor(value);
    const Variable& var = model.variables()[static_cast<std::size_t>(j)];

    for (int side = 0; side < 2; ++side) {
      BoundOverrides child = node->overrides;
      if (child.empty())
        child.assign(static_cast<std::size_t>(model.NumVariables()),
                     std::nullopt);
      double lo = var.lower;
      double hi = var.upper;
      if (child[static_cast<std::size_t>(j)]) {
        lo = child[static_cast<std::size_t>(j)]->first;
        hi = child[static_cast<std::size_t>(j)]->second;
      }
      if (side == 0)
        hi = std::min(hi, floor_value);  // x_j <= floor
      else
        lo = std::max(lo, floor_value + 1.0);  // x_j >= ceil
      if (lo > hi + 1e-12)
        continue;
      child[static_cast<std::size_t>(j)] = {lo, hi};
      open.push(std::make_shared<Node>(
          Node{std::move(child), node_bound, node->depth + 1}));
    }
  }

  if (!open.empty() && exhausted_budget) {
    // The tightest open bound still caps the optimum.
    best_bound_max = std::max(best_bound_max, open.top()->bound);
  }
  if (open.empty() && !exhausted_budget) {
    // Tree fully explored: the incumbent (if any) is optimal.
    best_bound_max = incumbent_max;
  }

  result.bound = sense * best_bound_max;
  if (incumbent_max > -kInf) {
    result.gap = RelativeGap(best_bound_max, incumbent_max);
    result.status = result.gap <= options_.gap_tolerance + 1e-12
                        ? MipStatus::kOptimal
                        : MipStatus::kFeasible;
  } else {
    result.status =
        exhausted_budget ? MipStatus::kNoSolution : MipStatus::kInfeasible;
  }
  emit_trace("final");
  return result;
}

}  // namespace flex::solver
