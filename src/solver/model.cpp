#include "model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace flex::solver {

VarIndex
Model::AddContinuous(std::string name, double lower, double upper,
                     double objective)
{
  FLEX_REQUIRE(lower <= upper, "variable lower bound exceeds upper bound");
  variables_.push_back(
      Variable{std::move(name), lower, upper, objective, false});
  return static_cast<VarIndex>(variables_.size()) - 1;
}

VarIndex
Model::AddBinary(std::string name, double objective)
{
  variables_.push_back(Variable{std::move(name), 0.0, 1.0, objective, true});
  return static_cast<VarIndex>(variables_.size()) - 1;
}

VarIndex
Model::AddInteger(std::string name, double lower, double upper,
                  double objective)
{
  FLEX_REQUIRE(lower <= upper, "variable lower bound exceeds upper bound");
  variables_.push_back(
      Variable{std::move(name), lower, upper, objective, true});
  return static_cast<VarIndex>(variables_.size()) - 1;
}

int
Model::AddConstraint(Constraint constraint)
{
  for (const auto& [var, coef] : constraint.terms) {
    FLEX_REQUIRE(var >= 0 && var < NumVariables(),
                 "constraint references unknown variable");
    (void)coef;
  }
  constraints_.push_back(std::move(constraint));
  return static_cast<int>(constraints_.size()) - 1;
}

int
Model::AddConstraint(std::string name,
                     std::vector<std::pair<VarIndex, double>> terms,
                     Relation relation, double rhs)
{
  return AddConstraint(
      Constraint{std::move(name), std::move(terms), relation, rhs});
}

void
Model::SetObjective(VarIndex var, double coefficient)
{
  FLEX_REQUIRE(var >= 0 && var < NumVariables(), "unknown variable");
  variables_[static_cast<std::size_t>(var)].objective = coefficient;
}

std::vector<VarIndex>
Model::IntegerVariables() const
{
  std::vector<VarIndex> indices;
  for (int i = 0; i < NumVariables(); ++i) {
    if (variables_[static_cast<std::size_t>(i)].is_integer)
      indices.push_back(i);
  }
  return indices;
}

double
Model::ObjectiveValue(const std::vector<double>& x) const
{
  FLEX_CHECK(static_cast<int>(x.size()) == NumVariables());
  double value = 0.0;
  for (int i = 0; i < NumVariables(); ++i)
    value += variables_[static_cast<std::size_t>(i)].objective *
             x[static_cast<std::size_t>(i)];
  return value;
}

bool
Model::IsFeasible(const std::vector<double>& x, double tolerance) const
{
  if (static_cast<int>(x.size()) != NumVariables())
    return false;
  for (int i = 0; i < NumVariables(); ++i) {
    const Variable& v = variables_[static_cast<std::size_t>(i)];
    const double xi = x[static_cast<std::size_t>(i)];
    if (xi < v.lower - tolerance || xi > v.upper + tolerance)
      return false;
    if (v.is_integer && std::fabs(xi - std::round(xi)) > tolerance)
      return false;
  }
  for (const Constraint& c : constraints_) {
    double lhs = 0.0;
    for (const auto& [var, coef] : c.terms)
      lhs += coef * x[static_cast<std::size_t>(var)];
    switch (c.relation) {
      case Relation::kLessEqual:
        if (lhs > c.rhs + tolerance)
          return false;
        break;
      case Relation::kGreaterEqual:
        if (lhs < c.rhs - tolerance)
          return false;
        break;
      case Relation::kEqual:
        if (std::fabs(lhs - c.rhs) > tolerance)
          return false;
        break;
    }
  }
  return true;
}

void
BuildCsc(const Model& model, SparseColumns* out)
{
  FLEX_CHECK(out != nullptr);
  const int n = model.NumVariables();
  const int m = model.NumConstraints();
  out->num_rows = m;

  // Count entries per column (duplicates counted; merged below).
  out->start.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const Constraint& c : model.constraints()) {
    for (const auto& [var, coef] : c.terms) {
      (void)coef;
      ++out->start[static_cast<std::size_t>(var) + 1];
    }
  }
  for (int j = 0; j < n; ++j) {
    out->start[static_cast<std::size_t>(j) + 1] +=
        out->start[static_cast<std::size_t>(j)];
  }

  const std::size_t nnz = static_cast<std::size_t>(out->start.back());
  out->row.assign(nnz, 0);
  out->value.assign(nnz, 0.0);
  std::vector<int> cursor(out->start.begin(), out->start.end() - 1);
  for (int i = 0; i < m; ++i) {
    const Constraint& c = model.constraints()[static_cast<std::size_t>(i)];
    for (const auto& [var, coef] : c.terms) {
      const int k = cursor[static_cast<std::size_t>(var)]++;
      out->row[static_cast<std::size_t>(k)] = i;
      out->value[static_cast<std::size_t>(k)] = coef;
    }
  }

  // Scattering constraint-by-constraint leaves each column sorted by
  // row already; merge duplicates and drop exact zeros in one pass.
  std::size_t write = 0;
  int new_start = 0;
  for (int j = 0; j < n; ++j) {
    const std::size_t begin = static_cast<std::size_t>(out->start[static_cast<std::size_t>(j)]);
    const std::size_t end = static_cast<std::size_t>(out->start[static_cast<std::size_t>(j) + 1]);
    out->start[static_cast<std::size_t>(j)] = new_start;
    std::size_t k = begin;
    while (k < end) {
      const int r = out->row[k];
      double sum = out->value[k];
      ++k;
      while (k < end && out->row[k] == r) {
        sum += out->value[k];
        ++k;
      }
      if (sum != 0.0) {
        out->row[write] = r;
        out->value[write] = sum;
        ++write;
      }
    }
    new_start = static_cast<int>(write);
  }
  out->start[static_cast<std::size_t>(n)] = new_start;
  out->row.resize(write);
  out->value.resize(write);
}

}  // namespace flex::solver
