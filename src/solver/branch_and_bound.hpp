/**
 * @file
 * Branch-and-bound solver for mixed 0/1 integer linear programs.
 *
 * Substitutes for the paper's Gurobi dependency. The Flex-Offline
 * placement ILP mixes binary placement indicators with a few continuous
 * auxiliaries (for the throttling-imbalance linearization); this solver
 * branches only on the integer variables, bounds each node with the
 * simplex LP relaxation, and dives greedily for early incumbents. Like
 * the paper's setup (Gurobi stopped after 5 minutes), solves honour a
 * wall-clock budget and report the best incumbent plus the optimality
 * gap.
 */
#ifndef FLEX_SOLVER_BRANCH_AND_BOUND_HPP_
#define FLEX_SOLVER_BRANCH_AND_BOUND_HPP_

#include <cstdint>
#include <vector>

#include "solver/model.hpp"
#include "solver/simplex.hpp"
#include "solver/solver_trace.hpp"

namespace flex::solver {

/** Outcome of a MILP solve. */
enum class MipStatus {
  kOptimal,       ///< incumbent proven optimal (within gap tolerance)
  kFeasible,      ///< budget exhausted with a feasible incumbent
  kInfeasible,    ///< no integer-feasible solution exists
  kNoSolution,    ///< budget exhausted before any incumbent was found
};

/** Solution of a MILP solve. */
struct MipResult {
  MipStatus status = MipStatus::kNoSolution;
  double objective = 0.0;      ///< incumbent objective (model sense)
  std::vector<double> x;       ///< incumbent solution
  double bound = 0.0;          ///< best proven bound on the optimum
  double gap = 0.0;            ///< |bound - objective| / max(1, |objective|)
  std::int64_t nodes_explored = 0;
  std::int64_t lp_solves = 0;      ///< LP relaxations solved (all callers)
  std::int64_t simplex_pivots = 0; ///< pivots summed over those solves

  bool HasSolution() const {
    return status == MipStatus::kOptimal || status == MipStatus::kFeasible;
  }
};

/**
 * Best-first branch-and-bound with LP bounding and greedy diving.
 */
class BranchAndBoundSolver {
 public:
  struct Options {
    double time_budget_seconds = 60.0;  ///< wall-clock cutoff
    std::int64_t max_nodes = 200000;    ///< node cutoff
    double gap_tolerance = 1e-6;        ///< relative gap for kOptimal
    double integrality_tolerance = 1e-6;
    int dive_depth = 64;                ///< greedy dive length for incumbents
    /**
     * Optional feasible starting point (one value per variable). If it
     * checks out against the model it seeds the incumbent, so a solve
     * that exhausts its budget can never return worse than the caller's
     * own heuristic.
     */
    std::vector<double> warm_start;
    SimplexSolver::Options lp;
    /**
     * Optional convergence trace the solve appends to (root, every new
     * incumbent, every trace_node_interval nodes, termination). Not
     * owned; must outlive the Solve call.
     */
    SolverTrace* trace = nullptr;
    std::int64_t trace_node_interval = 32;
  };

  BranchAndBoundSolver() = default;
  explicit BranchAndBoundSolver(Options options) : options_(options) {}

  /** Solves @p model to (near-)optimality within the budgets. */
  MipResult Solve(const Model& model) const;

 private:
  Options options_;
};

}  // namespace flex::solver

#endif  // FLEX_SOLVER_BRANCH_AND_BOUND_HPP_
