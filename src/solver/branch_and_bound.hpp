/**
 * @file
 * Branch-and-bound solver for mixed 0/1 integer linear programs.
 *
 * Substitutes for the paper's Gurobi dependency. The Flex-Offline
 * placement ILP mixes binary placement indicators with a few continuous
 * auxiliaries (for the throttling-imbalance linearization); this solver
 * branches only on the integer variables, bounds each node with the
 * simplex LP relaxation, and dives greedily for early incumbents. Like
 * the paper's setup (Gurobi stopped after 5 minutes), solves honour a
 * wall-clock budget and report the best incumbent plus the optimality
 * gap.
 *
 * Node exploration is wave-synchronous: each iteration pops a fixed-size
 * wave of best-bound nodes, solves their LP relaxations concurrently on
 * a work-stealing pool (each warm-started from the parent basis), then
 * merges results serially in wave order. Because the wave size is
 * independent of the thread count and the merge is serial, a solve that
 * finishes within its budgets produces a bit-identical incumbent,
 * objective, and bound at 1 and N threads; only wall-clock time changes.
 */
#ifndef FLEX_SOLVER_BRANCH_AND_BOUND_HPP_
#define FLEX_SOLVER_BRANCH_AND_BOUND_HPP_

#include <atomic>
#include <cstdint>
#include <vector>

#include "solver/model.hpp"
#include "solver/simplex.hpp"
#include "solver/solver_trace.hpp"

namespace flex::common {
class ThreadPool;
}  // namespace flex::common

namespace flex::solver {

/** Outcome of a MILP solve. */
enum class MipStatus {
  kOptimal,       ///< incumbent proven optimal (within gap tolerance)
  kFeasible,      ///< budget exhausted with a feasible incumbent
  kInfeasible,    ///< no integer-feasible solution exists
  kNoSolution,    ///< budget exhausted before any incumbent was found
};

/** Solution of a MILP solve. */
struct MipResult {
  MipStatus status = MipStatus::kNoSolution;
  double objective = 0.0;      ///< incumbent objective (model sense)
  std::vector<double> x;       ///< incumbent solution
  double bound = 0.0;          ///< best proven bound on the optimum
  double gap = 0.0;            ///< |bound - objective| / max(1, |objective|)
  std::int64_t nodes_explored = 0;
  std::int64_t lp_solves = 0;      ///< LP relaxations solved (all callers)
  std::int64_t simplex_pivots = 0; ///< pivots summed over those solves
  // Revised-simplex + presolve telemetry (PR 6).
  std::int64_t simplex_refactors = 0;   ///< basis LU refactorizations
  std::int64_t eta_updates = 0;         ///< Forrest–Tomlin basis updates
  int presolve_rows_removed = 0;        ///< constraints removed at the root
  int presolve_cols_removed = 0;        ///< variables eliminated at the root
  // Dual-simplex warm restarts + node propagation (PR 9).
  std::int64_t dual_pivots = 0;         ///< dual-simplex pivots, all solves
  std::int64_t warm_dual_restarts = 0;  ///< warm solves repaired by dual phase
  std::int64_t propagation_prunes = 0;  ///< nodes pruned before any LP solve
  std::int64_t propagated_bounds = 0;   ///< node-local bound tightenings
  // Concurrency telemetry (PR 4).
  int threads_used = 1;            ///< pool width the solve ran with
  std::int64_t steal_count = 0;    ///< pool steals during this solve
  std::vector<std::int64_t> nodes_per_thread;  ///< node LPs per pool lane
  std::int64_t basis_reuse_attempts = 0;  ///< warm-basis installs tried
  std::int64_t basis_reuse_hits = 0;      ///< ... that skipped Phase 1

  bool HasSolution() const {
    return status == MipStatus::kOptimal || status == MipStatus::kFeasible;
  }
};

/**
 * Live solve progress, published as plain atomics so an observability
 * scraper on another thread can sample a running solve without locks.
 *
 * flex_solver deliberately does not link flex_obs, so this struct is
 * the solver's entire observability surface: the search loop stores
 * into it at wave boundaries (and the LP callback counts solves), and
 * the HTTP exporter reads it through AddLiveGauge callbacks. Stores and
 * loads are relaxed — each field is an independent progress indicator,
 * not a consistent snapshot, which is all a utilization gauge needs.
 */
struct LiveSolverStats {
  std::atomic<std::int64_t> solves_started{0};
  std::atomic<std::int64_t> solves_finished{0};
  std::atomic<std::int64_t> waves{0};           ///< waves launched (all solves)
  std::atomic<std::int64_t> wave_nodes{0};      ///< nodes in the current wave
  std::atomic<std::int64_t> open_nodes{0};      ///< frontier size after merge
  std::atomic<std::int64_t> nodes_explored{0};
  std::atomic<std::int64_t> lp_solves{0};
  std::atomic<std::int64_t> basis_reuse_attempts{0};
  std::atomic<std::int64_t> basis_reuse_hits{0};
  std::atomic<std::int64_t> dual_pivots{0};         ///< dual-simplex pivots
  std::atomic<std::int64_t> warm_dual_restarts{0};  ///< dual-repaired warms

  /** True while at least one Solve() is inside its search loop. */
  bool active() const {
    return solves_started.load(std::memory_order_relaxed) >
           solves_finished.load(std::memory_order_relaxed);
  }
};

/**
 * Best-first branch-and-bound with LP bounding and greedy diving.
 */
class BranchAndBoundSolver {
 public:
  struct Options {
    double time_budget_seconds = 60.0;  ///< wall-clock cutoff
    std::int64_t max_nodes = 200000;    ///< node cutoff
    double gap_tolerance = 1e-6;        ///< relative gap for kOptimal
    double integrality_tolerance = 1e-6;
    int dive_depth = 64;                ///< greedy dive length for incumbents
    /**
     * Run presolve once before the root relaxation and search the
     * reduced model (incumbents are postsolved back to the original
     * variable space and re-verified against the original model).
     * Reductions preserve the optimal objective value, never the set
     * of alternate optima.
     */
    bool presolve = true;
    /**
     * Solver thread count: 0 resolves via FLEX_SOLVER_THREADS (default:
     * hardware concurrency), 1 forces a serial solve, >1 runs node
     * waves on ThreadPool::Shared(). The search path and final answer
     * are identical at every setting; only wall-clock time changes.
     * Time-budget truncation is the one exception: a solve cut off
     * mid-search may have explored a different prefix of the tree.
     */
    int threads = 0;
    /**
     * Nodes popped per wave. Deliberately independent of the thread
     * count so determinism never depends on the pool width; larger
     * waves expose more parallelism but prune slightly less eagerly.
     */
    int wave_size = 8;
    /**
     * Pool override for tests and embedders; when null and the resolved
     * thread count exceeds 1, ThreadPool::Shared() is used. Not owned.
     */
    common::ThreadPool* pool = nullptr;
    /**
     * Optional feasible starting point (one value per variable). If it
     * checks out against the model it seeds the incumbent, so a solve
     * that exhausts its budget can never return worse than the caller's
     * own heuristic.
     */
    std::vector<double> warm_start;
    SimplexSolver::Options lp;
    /**
     * Optional convergence trace the solve appends to (root, every new
     * incumbent, every trace_node_interval nodes, termination). Not
     * owned; must outlive the Solve call.
     */
    SolverTrace* trace = nullptr;
    std::int64_t trace_node_interval = 32;
    /**
     * Optional live-progress sink updated at wave boundaries for the
     * observability plane. Not owned; must outlive the Solve call.
     * Purely write-only from the solver's perspective — never read back
     * into search decisions, so wiring it cannot change the answer.
     */
    LiveSolverStats* live = nullptr;
  };

  BranchAndBoundSolver() = default;
  explicit BranchAndBoundSolver(Options options) : options_(options) {}

  /** Solves @p model to (near-)optimality within the budgets. */
  MipResult Solve(const Model& model) const;

 private:
  Options options_;
};

}  // namespace flex::solver

#endif  // FLEX_SOLVER_BRANCH_AND_BOUND_HPP_
