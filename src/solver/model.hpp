/**
 * @file
 * Mixed-integer linear program model description.
 *
 * Flex-Offline's placement problem (paper Eq. 1-5) is expressed against
 * this API and solved by the bundled simplex + branch-and-bound solver,
 * substituting for the Gurobi dependency of the original system.
 */
#ifndef FLEX_SOLVER_MODEL_HPP_
#define FLEX_SOLVER_MODEL_HPP_

#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace flex::solver {

/** Index of a decision variable within a Model. */
using VarIndex = int;

/** Relation of a linear constraint's left-hand side to its bound. */
enum class Relation { kLessEqual, kGreaterEqual, kEqual };

/** Optimization direction. */
enum class Sense { kMaximize, kMinimize };

/** One decision variable. */
struct Variable {
  std::string name;
  double lower = 0.0;
  double upper = std::numeric_limits<double>::infinity();
  double objective = 0.0;  ///< coefficient in the objective
  bool is_integer = false;
};

/** One linear constraint: sum(coef * var) <rel> rhs. */
struct Constraint {
  std::string name;
  std::vector<std::pair<VarIndex, double>> terms;
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
};

/**
 * A mutable MILP model.
 *
 * Variables and constraints are appended; the solvers read the model
 * without mutating it, so one model can be solved repeatedly with
 * different variable-bound overrides (used by branch-and-bound).
 */
class Model {
 public:
  /** Adds a continuous variable; returns its index. */
  VarIndex AddContinuous(std::string name, double lower, double upper,
                         double objective = 0.0);

  /** Adds a binary (0/1 integer) variable; returns its index. */
  VarIndex AddBinary(std::string name, double objective = 0.0);

  /** Adds a general integer variable with the given bounds. */
  VarIndex AddInteger(std::string name, double lower, double upper,
                      double objective = 0.0);

  /** Adds a constraint; returns its row index. */
  int AddConstraint(Constraint constraint);

  /** Convenience for building a constraint in one call. */
  int AddConstraint(std::string name,
                    std::vector<std::pair<VarIndex, double>> terms,
                    Relation relation, double rhs);

  void SetSense(Sense sense) { sense_ = sense; }
  Sense sense() const { return sense_; }

  /** Overwrites a variable's objective coefficient. */
  void SetObjective(VarIndex var, double coefficient);

  const std::vector<Variable>& variables() const { return variables_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  int NumVariables() const { return static_cast<int>(variables_.size()); }
  int NumConstraints() const { return static_cast<int>(constraints_.size()); }

  /** Indices of the integer variables. */
  std::vector<VarIndex> IntegerVariables() const;

  /**
   * Evaluates the objective at @p x (must have NumVariables entries).
   */
  double ObjectiveValue(const std::vector<double>& x) const;

  /**
   * True when @p x satisfies all constraints and bounds within
   * @p tolerance (integrality of integer variables included).
   */
  bool IsFeasible(const std::vector<double>& x, double tolerance = 1e-6) const;

 private:
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
  Sense sense_ = Sense::kMaximize;
};

}  // namespace flex::solver

#endif  // FLEX_SOLVER_MODEL_HPP_
