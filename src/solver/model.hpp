/**
 * @file
 * Mixed-integer linear program model description.
 *
 * Flex-Offline's placement problem (paper Eq. 1-5) is expressed against
 * this API and solved by the bundled simplex + branch-and-bound solver,
 * substituting for the Gurobi dependency of the original system.
 */
#ifndef FLEX_SOLVER_MODEL_HPP_
#define FLEX_SOLVER_MODEL_HPP_

#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace flex::solver {

/** Index of a decision variable within a Model. */
using VarIndex = int;

/** Relation of a linear constraint's left-hand side to its bound. */
enum class Relation { kLessEqual, kGreaterEqual, kEqual };

/** Optimization direction. */
enum class Sense { kMaximize, kMinimize };

/** One decision variable. */
struct Variable {
  std::string name;
  double lower = 0.0;
  double upper = std::numeric_limits<double>::infinity();
  double objective = 0.0;  ///< coefficient in the objective
  bool is_integer = false;
};

/** One linear constraint: sum(coef * var) <rel> rhs. */
struct Constraint {
  std::string name;
  std::vector<std::pair<VarIndex, double>> terms;
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
};

/**
 * Compressed sparse column (CSC) view of a constraint matrix. Column j
 * of the matrix occupies entries [start[j], start[j+1]) of row/value;
 * within a column, entries are sorted by row index and duplicates are
 * merged. This is the storage the revised simplex prices and factorizes
 * against, so it also admits appended columns (slacks, artificials).
 */
struct SparseColumns {
  int num_rows = 0;
  std::vector<int> start;     ///< size num_cols() + 1; start[0] == 0
  std::vector<double> value;  ///< nonzero coefficients, column-major
  std::vector<int> row;       ///< row index of each nonzero

  int num_cols() const { return static_cast<int>(start.size()) - 1; }
  int nonzeros() const { return static_cast<int>(row.size()); }

  void
  Clear(int rows)
  {
    num_rows = rows;
    start.assign(1, 0);
    value.clear();
    row.clear();
  }

  /** Appends a column with a single entry; returns its column index. */
  int
  AppendSingleton(int entry_row, double entry_value)
  {
    row.push_back(entry_row);
    value.push_back(entry_value);
    start.push_back(static_cast<int>(row.size()));
    return num_cols() - 1;
  }
};

/**
 * Builds the CSC form of @p model's structural columns (one column per
 * variable, one row per constraint) into @p out, reusing its buffers.
 * Duplicate (row, var) terms are summed; exact zeros are kept out.
 */
void BuildCsc(const class Model& model, SparseColumns* out);

/**
 * A mutable MILP model.
 *
 * Variables and constraints are appended; the solvers read the model
 * without mutating it, so one model can be solved repeatedly with
 * different variable-bound overrides (used by branch-and-bound).
 */
class Model {
 public:
  /** Adds a continuous variable; returns its index. */
  VarIndex AddContinuous(std::string name, double lower, double upper,
                         double objective = 0.0);

  /** Adds a binary (0/1 integer) variable; returns its index. */
  VarIndex AddBinary(std::string name, double objective = 0.0);

  /** Adds a general integer variable with the given bounds. */
  VarIndex AddInteger(std::string name, double lower, double upper,
                      double objective = 0.0);

  /** Adds a constraint; returns its row index. */
  int AddConstraint(Constraint constraint);

  /** Convenience for building a constraint in one call. */
  int AddConstraint(std::string name,
                    std::vector<std::pair<VarIndex, double>> terms,
                    Relation relation, double rhs);

  void SetSense(Sense sense) { sense_ = sense; }
  Sense sense() const { return sense_; }

  /** Overwrites a variable's objective coefficient. */
  void SetObjective(VarIndex var, double coefficient);

  const std::vector<Variable>& variables() const { return variables_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  int NumVariables() const { return static_cast<int>(variables_.size()); }
  int NumConstraints() const { return static_cast<int>(constraints_.size()); }

  /** Indices of the integer variables. */
  std::vector<VarIndex> IntegerVariables() const;

  /**
   * Evaluates the objective at @p x (must have NumVariables entries).
   */
  double ObjectiveValue(const std::vector<double>& x) const;

  /**
   * True when @p x satisfies all constraints and bounds within
   * @p tolerance (integrality of integer variables included).
   */
  bool IsFeasible(const std::vector<double>& x, double tolerance = 1e-6) const;

 private:
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
  Sense sense_ = Sense::kMaximize;
};

}  // namespace flex::solver

#endif  // FLEX_SOLVER_MODEL_HPP_
