#include "solver_trace.hpp"

#include <cstdio>

namespace flex::solver {

std::string
SolverTrace::ToCsv() const
{
  std::string out =
      "label,elapsed_s,nodes,lp_solves,pivots,bound,incumbent,gap,"
      "basis_attempts,basis_hits,refactors,eta_updates,"
      "presolve_rows_removed,presolve_cols_removed,"
      "dual_pivots,warm_dual_restarts,propagation_prunes,propagated_bounds\n";
  char buffer[512];
  for (const SolverTracePoint& point : points_) {
    char incumbent[40] = "";
    if (point.has_incumbent)
      std::snprintf(incumbent, sizeof(incumbent), "%.9g", point.incumbent);
    std::snprintf(buffer, sizeof(buffer),
                  "%s,%.6f,%lld,%lld,%lld,%.9g,%s,%.9g,%lld,%lld,%lld,%lld,"
                  "%d,%d,%lld,%lld,%lld,%lld\n",
                  point.label.c_str(), point.elapsed_s,
                  static_cast<long long>(point.nodes),
                  static_cast<long long>(point.lp_solves),
                  static_cast<long long>(point.pivots), point.bound, incumbent,
                  point.gap, static_cast<long long>(point.basis_attempts),
                  static_cast<long long>(point.basis_hits),
                  static_cast<long long>(point.refactors),
                  static_cast<long long>(point.eta_updates),
                  point.presolve_rows_removed, point.presolve_cols_removed,
                  static_cast<long long>(point.dual_pivots),
                  static_cast<long long>(point.warm_dual_restarts),
                  static_cast<long long>(point.propagation_prunes),
                  static_cast<long long>(point.propagated_bounds));
    out += buffer;
  }
  return out;
}

}  // namespace flex::solver
