#include "solver_trace.hpp"

#include <cstdio>

namespace flex::solver {

std::string
SolverTrace::ToCsv() const
{
  std::string out =
      "label,elapsed_s,nodes,lp_solves,pivots,bound,incumbent,gap,"
      "basis_attempts,basis_hits\n";
  char buffer[320];
  for (const SolverTracePoint& point : points_) {
    char incumbent[40] = "";
    if (point.has_incumbent)
      std::snprintf(incumbent, sizeof(incumbent), "%.9g", point.incumbent);
    std::snprintf(buffer, sizeof(buffer),
                  "%s,%.6f,%lld,%lld,%lld,%.9g,%s,%.9g,%lld,%lld\n",
                  point.label.c_str(), point.elapsed_s,
                  static_cast<long long>(point.nodes),
                  static_cast<long long>(point.lp_solves),
                  static_cast<long long>(point.pivots), point.bound, incumbent,
                  point.gap, static_cast<long long>(point.basis_attempts),
                  static_cast<long long>(point.basis_hits));
    out += buffer;
  }
  return out;
}

}  // namespace flex::solver
