#include "decision.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <queue>
#include <set>

#include "common/error.hpp"

namespace flex::online {

using workload::Category;
using workload::ImpactFunction;

ImpactFunction
DefaultImpact(Category category)
{
  switch (category) {
    case Category::kNonRedundantCapable:
      // Modest, incremental cost: the default "throttle these first".
      return ImpactFunction(PiecewiseLinear{{0.0, 0.0}, {1.0, 0.3}});
    case Category::kSoftwareRedundant:
      // High-but-not-critical cost: shut down only when throttling alone
      // cannot recover enough.
      return ImpactFunction(PiecewiseLinear::Constant(0.9));
    case Category::kNonRedundantNonCapable:
      // Never acted on.
      return ImpactFunction::Critical();
  }
  return ImpactFunction::Critical();
}

namespace {

/** Book-keeping for one workload's racks and impact state. */
struct WorkloadState {
  std::vector<int> remaining;  // snapshot indices not yet acted on
  int total_racks = 0;
  int acted_racks = 0;
  const ImpactFunction* impact = nullptr;
  ImpactFunction fallback;  // used when no registered function

  WorkloadState() : fallback(ImpactFunction::Critical()) {}

  double
  ImpactAfterActing(int additional) const
  {
    const double fraction =
        static_cast<double>(acted_racks + additional) /
        static_cast<double>(total_racks);
    return (*impact)(std::min(1.0, fraction));
  }
};

/** Recovery a corrective action on this rack would produce. */
Watts
Recovery(const RackSnapshot& rack)
{
  if (rack.category == Category::kSoftwareRedundant)
    return rack.current_power;
  // Throttle: only the power above the cap comes back.
  return std::max(Watts(0.0), rack.current_power - rack.flex_power);
}

}  // namespace

DecisionResult
DecideActions(const DecisionInput& input)
{
  const std::size_t num_ups = input.ups_power.size();
  FLEX_REQUIRE(input.ups_limit.size() == num_ups,
               "ups_power / ups_limit size mismatch");
  for (const auto& rack : input.racks) {
    FLEX_REQUIRE(rack.pdu_pair >= 0 &&
                     static_cast<std::size_t>(rack.pdu_pair) <
                         input.pdu_to_ups.size(),
                 "rack references unknown PDU pair");
  }

  DecisionResult result;
  result.projected_ups_power = input.ups_power;

  // Attribute a rack's recovery to UPSes: the failed UPS (power ~0)
  // contributes nothing, so a pair touching it sends everything to the
  // survivor; otherwise the split is 50/50.
  auto recovery_per_ups = [&](const RackSnapshot& rack, Watts recovery)
      -> std::vector<std::pair<std::size_t, Watts>> {
    const auto [u1, u2] =
        input.pdu_to_ups[static_cast<std::size_t>(rack.pdu_pair)];
    const auto a = static_cast<std::size_t>(u1);
    const auto b = static_cast<std::size_t>(u2);
    const bool a_dead = input.ups_power[a] <= Watts(1.0);
    const bool b_dead = input.ups_power[b] <= Watts(1.0);
    if (a_dead && !b_dead)
      return {{b, recovery}};
    if (b_dead && !a_dead)
      return {{a, recovery}};
    return {{a, recovery * 0.5}, {b, recovery * 0.5}};
  };

  auto overloaded = [&](std::size_t u) {
    return result.projected_ups_power[u] >
           input.ups_limit[u] - input.buffer;
  };
  auto any_overloaded = [&] {
    for (std::size_t u = 0; u < num_ups; ++u) {
      if (overloaded(u))
        return true;
    }
    return false;
  };

  // Group actionable racks per workload and bind impact functions.
  std::map<std::string, WorkloadState> workloads;
  const std::set<int> acted(input.already_acted.begin(),
                            input.already_acted.end());
  for (std::size_t i = 0; i < input.racks.size(); ++i) {
    const RackSnapshot& rack = input.racks[i];
    WorkloadState& state = workloads[rack.workload];
    ++state.total_racks;
    if (acted.count(rack.rack_id)) {
      ++state.acted_racks;
      continue;
    }
    if (rack.category == Category::kNonRedundantNonCapable)
      continue;  // never actionable
    state.remaining.push_back(static_cast<int>(i));
  }
  for (auto& [name, state] : workloads) {
    const auto it = input.impact.find(name);
    if (it != input.impact.end()) {
      state.impact = &it->second;
    } else {
      // Category is uniform within a deployment-derived workload; take it
      // from any rack of the workload.
      Category category = Category::kNonRedundantNonCapable;
      for (const RackSnapshot& rack : input.racks) {
        if (rack.workload == name) {
          category = rack.category;
          break;
        }
      }
      state.fallback = DefaultImpact(category);
      state.impact = &state.fallback;
    }
  }

  // Greedy selection loop (Algorithm 1 lines 4-16), driven by a lazy
  // max-heap instead of rebuilding and re-scanning every workload's
  // candidate each round. One heap entry per workload holds its best
  // rack keyed by (post-action impact asc, recovery desc, name asc) —
  // the paper's minimum-impact-per-recovered-watt order. Entries go
  // stale in exactly two monotone ways, so revalidation on pop is
  // sound:
  //  - the workload acted since the entry was computed (acted_racks
  //    moved): its impact and best rack changed — recompute;
  //  - any action since then may have cleared an overload (the
  //    overloaded set only ever shrinks within one decision), so the
  //    stored rack may no longer be useful. If it still is, it is still
  //    the workload's best: usefulness never *grows*, so no other rack
  //    can have overtaken it.
  // A workload whose best candidate is not useful is dropped for good —
  // by the same monotonicity it can never become useful later.
  struct HeapEntry {
    double impact_after = 0.0;
    Watts recovery{0.0};
    std::string workload;
    int snapshot_index = -1;
    ActionType type = ActionType::kThrottle;
    std::uint64_t epoch = 0;  // action count when the entry was computed
    int acted_at = 0;         // the workload's acted_racks at that time
  };
  // priority_queue: returns true when a has LOWER priority than b.
  struct HeapOrder {
    bool
    operator()(const HeapEntry& a, const HeapEntry& b) const
    {
      if (a.impact_after != b.impact_after)
        return a.impact_after > b.impact_after;  // smaller impact first
      if (a.recovery < b.recovery || b.recovery < a.recovery)
        return a.recovery < b.recovery;  // larger recovery first
      return a.workload > b.workload;    // deterministic final tie
    }
  };

  std::uint64_t epoch = 0;
  auto rack_useful = [&](const RackSnapshot& rack) {
    const Watts recovery = Recovery(rack);
    for (const auto& [u, share] : recovery_per_ups(rack, recovery)) {
      if (overloaded(u) && share > Watts(0.0))
        return true;
    }
    return false;
  };
  // PickRack: prefer racks attached to an overloaded UPS, then the
  // largest recovery, then the lowest rack id (deterministic).
  auto compute_best = [&](const std::string& name,
                          const WorkloadState& state)
      -> std::optional<HeapEntry> {
    int best = -1;
    bool best_useful = false;
    Watts best_recovery(-1.0);
    for (const int index : state.remaining) {
      const RackSnapshot& rack = input.racks[static_cast<std::size_t>(index)];
      const Watts recovery = Recovery(rack);
      const bool useful = rack_useful(rack);
      const bool better =
          (useful && !best_useful) ||
          (useful == best_useful &&
           (recovery > best_recovery ||
            (recovery.ApproxEquals(best_recovery) && best >= 0 &&
             rack.rack_id <
                 input.racks[static_cast<std::size_t>(best)].rack_id)));
      if (best < 0 || better) {
        best = index;
        best_useful = useful;
        best_recovery = recovery;
      }
    }
    if (best < 0 || !best_useful)
      return std::nullopt;  // cannot help the overloaded UPSes: drop
    const RackSnapshot& rack = input.racks[static_cast<std::size_t>(best)];
    HeapEntry entry;
    entry.impact_after = state.ImpactAfterActing(1);
    entry.recovery = Recovery(rack);
    entry.workload = name;
    entry.snapshot_index = best;
    entry.type = rack.category == Category::kSoftwareRedundant
                     ? ActionType::kShutdown
                     : ActionType::kThrottle;
    entry.epoch = epoch;
    entry.acted_at = state.acted_racks;
    return entry;
  };

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapOrder> heap;
  const bool initially_overloaded = any_overloaded();
  if (initially_overloaded) {
    for (const auto& [name, state] : workloads) {
      if (auto entry = compute_best(name, state))
        heap.push(std::move(*entry));
    }
  }

  const int max_iterations = static_cast<int>(input.racks.size()) + 1;
  while (any_overloaded() && result.iterations < max_iterations) {
    ++result.iterations;

    std::optional<HeapEntry> chosen;
    while (!heap.empty()) {
      HeapEntry top = heap.top();
      heap.pop();
      const WorkloadState& state = workloads[top.workload];
      const bool stale_workload = top.acted_at != state.acted_racks;
      const bool stale_overloads =
          !stale_workload && top.epoch != epoch &&
          !rack_useful(
              input.racks[static_cast<std::size_t>(top.snapshot_index)]);
      if (stale_workload || stale_overloads) {
        if (auto entry = compute_best(top.workload, state))
          heap.push(std::move(*entry));
        continue;
      }
      chosen = std::move(top);
      break;
    }
    if (!chosen)
      break;  // nothing more can be recovered: unsatisfied

    const RackSnapshot& rack =
        input.racks[static_cast<std::size_t>(chosen->snapshot_index)];
    Action action;
    action.rack_id = rack.rack_id;
    action.type = chosen->type;
    action.estimated_recovery = chosen->recovery;
    action.impact_after = chosen->impact_after;
    result.actions.push_back(action);

    // Line 15: update the estimated UPS power.
    for (const auto& [u, share] : recovery_per_ups(rack, chosen->recovery))
      result.projected_ups_power[u] -= share;

    WorkloadState& state = workloads[chosen->workload];
    state.remaining.erase(std::find(state.remaining.begin(),
                                    state.remaining.end(),
                                    chosen->snapshot_index));
    ++state.acted_racks;
    ++epoch;
    if (auto entry = compute_best(chosen->workload, state))
      heap.push(std::move(*entry));
  }

  result.satisfied = !any_overloaded();
  return result;
}

}  // namespace flex::online
