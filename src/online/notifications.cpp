#include "notifications.hpp"

#include <utility>

#include "common/error.hpp"

namespace flex::online {

void
NotificationBus::Subscribe(const std::string& workload, Callback callback)
{
  FLEX_REQUIRE(static_cast<bool>(callback), "null notification callback");
  subscriptions_.push_back(Subscription{workload, std::move(callback)});
}

void
NotificationBus::Publish(const PowerEmergencyNotification& notification)
{
  ++published_;
  for (const Subscription& subscription : subscriptions_) {
    if (subscription.workload.empty() ||
        subscription.workload == notification.workload)
      subscription.callback(notification);
  }
}

}  // namespace flex::online
